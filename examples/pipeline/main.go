// Pipeline: a multi-stage computation assembled at run time by passing
// link ends — the "loosely-coupled style of programming encouraged by a
// distributed operating system" (§2). A coordinator creates every
// inter-stage link and moves the ends into place over per-stage control
// links; data then flows coordinator -> upper -> reverse -> decorate ->
// coordinator with an RPC per hop.
//
//	go run ./examples/pipeline
//	go run ./examples/pipeline -substrate charlotte -items 5
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/lynx"
)

func main() {
	subName := flag.String("substrate", "chrysalis", "charlotte|soda|chrysalis|ideal")
	items := flag.Int("items", 4, "work items to push through (max 6)")
	flag.Parse()
	sub := map[string]lynx.Substrate{
		"charlotte": lynx.Charlotte,
		"soda":      lynx.SODA,
		"chrysalis": lynx.Chrysalis,
		"ideal":     lynx.Ideal,
	}[*subName]

	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 1})

	// Every stage is identical: over its control link it is told where
	// to send output ("wire", enclosing the downstream end) and where to
	// take input ("serve", enclosing the upstream end). It then serves
	// jobs: transform, forward downstream, reply upstream.
	stage := func(name string, transform func([]byte) []byte) *lynx.ProcRef {
		return sys.Spawn(name, func(t *lynx.Thread, boot []*lynx.End) {
			ctl := boot[0]
			var down, up *lynx.End
			for down == nil || up == nil {
				req, err := t.Receive(ctl)
				if err != nil {
					return
				}
				switch req.Op() {
				case "wire":
					down = req.Links()[0]
				case "serve":
					up = req.Links()[0]
				}
				t.Reply(req, lynx.Msg{})
			}
			t.Serve(up, func(st *lynx.Thread, job *lynx.Request) {
				out := transform(job.Data())
				if _, err := st.Connect(down, "work", lynx.Msg{Data: out}); err != nil {
					return
				}
				st.Reply(job, lynx.Msg{})
			})
		})
	}

	s1 := stage("upper", func(b []byte) []byte { return []byte(strings.ToUpper(string(b))) })
	s2 := stage("reverse", func(b []byte) []byte {
		out := make([]byte, len(b))
		for i, c := range b {
			out[len(b)-1-i] = c
		}
		return out
	})
	s3 := stage("decorate", func(b []byte) []byte { return []byte("<" + string(b) + ">") })

	var results []string
	coord := sys.Spawn("coordinator", func(t *lynx.Thread, boot []*lynx.End) {
		ctl := boot // one control link per stage
		mk := func() (*lynx.End, *lynx.End) {
			a, b, err := t.NewLink()
			if err != nil {
				log.Fatalf("NewLink: %v", err)
			}
			return a, b
		}
		inA, inB := mk()   // coordinator -> s1
		l12a, l12b := mk() // s1 -> s2
		l23a, l23b := mk() // s2 -> s3
		outA, outB := mk() // s3 -> coordinator
		wire := func(i int, op string, end *lynx.End) {
			if _, err := t.Connect(ctl[i], op, lynx.Msg{Links: []*lynx.End{end}}); err != nil {
				log.Fatalf("%s stage %d: %v", op, i, err)
			}
		}
		wire(0, "wire", l12a)  // s1 sends to s2
		wire(1, "wire", l23a)  // s2 sends to s3
		wire(2, "wire", outA)  // s3 sends back to us
		wire(0, "serve", inB)  // s1 takes input from us
		wire(1, "serve", l12b) // s2 takes input from s1
		wire(2, "serve", l23b) // s3 takes input from s2

		// Sink: collect finished items.
		done := 0
		t.Serve(outB, func(st *lynx.Thread, fin *lynx.Request) {
			results = append(results, string(fin.Data()))
			st.Reply(fin, lynx.Msg{})
			done++
		})

		words := []string{"butterfly", "charlotte", "crystal", "chrysalis", "lynx", "soda"}
		n := *items
		if n > len(words) {
			n = len(words)
		}
		for i := 0; i < n; i++ {
			if _, err := t.Connect(inA, "work", lynx.Msg{Data: []byte(words[i])}); err != nil {
				log.Fatalf("push %d: %v", i, err)
			}
		}
		for done < n {
			t.Sleep(10 * lynx.Millisecond)
		}
		// Tear the pipeline down: destroying the links lets every stage
		// exit.
		for _, e := range []*lynx.End{inA, outB, ctl[0], ctl[1], ctl[2]} {
			t.Destroy(e)
		}
	})

	sys.Join(coord, s1)
	sys.Join(coord, s2)
	sys.Join(coord, s3)

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Println(r)
	}
	fmt.Printf("%d items through 3 stages on %s in %v of virtual time\n",
		len(results), sub, sys.Now())
}
