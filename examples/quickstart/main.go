// Quickstart: two LYNX processes, one link, one remote procedure call —
// on your choice of simulated kernel.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -substrate chrysalis
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/lynx"
)

func main() {
	subName := flag.String("substrate", "charlotte", "charlotte|soda|chrysalis|ideal")
	flag.Parse()

	sub := map[string]lynx.Substrate{
		"charlotte": lynx.Charlotte,
		"soda":      lynx.SODA,
		"chrysalis": lynx.Chrysalis,
		"ideal":     lynx.Ideal,
	}[*subName]

	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 1})

	// The client performs one remote operation and reports its latency.
	client := sys.Spawn("client", func(t *lynx.Thread, boot []*lynx.End) {
		start := t.Now()
		reply, err := t.Connect(boot[0], "greet", lynx.Msg{Data: []byte("world")})
		if err != nil {
			log.Fatalf("connect: %v", err)
		}
		rtt := lynx.Duration(t.Now() - start)
		fmt.Printf("reply: %q\n", reply.Data)
		fmt.Printf("round trip on %s: %.2f ms of 1986 virtual time\n", sub, rtt.Milliseconds())
		t.Destroy(boot[0]) // destroying the link lets the server exit
	})

	// The server answers "greet" operations until its link dies.
	server := sys.Spawn("server", func(t *lynx.Thread, boot []*lynx.End) {
		t.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
			st.Reply(req, lynx.Msg{Data: append([]byte("hello, "), req.Data()...)})
		})
	})

	sys.Join(client, server) // boot-time link between the two

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
}
