// Linkmove: a narrated replay of the paper's figure 1 — "link moving at
// both ends". Processes A and D each move their end of link 3,
// independently and simultaneously, so that what used to connect A to D
// now connects B to C. Run it on each substrate to see three very
// different protocols produce the same language-level behavior.
//
//	go run ./examples/linkmove
//	go run ./examples/linkmove -substrate charlotte -v
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/lynx"
)

func main() {
	subName := flag.String("substrate", "soda", "charlotte|soda|chrysalis|ideal")
	verbose := flag.Bool("v", false, "show the kernel-level protocol trace")
	flag.Parse()
	sub := map[string]lynx.Substrate{
		"charlotte": lynx.Charlotte,
		"soda":      lynx.SODA,
		"chrysalis": lynx.Chrysalis,
		"ideal":     lynx.Ideal,
	}[*subName]

	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 1})
	recorded := &sim.RecordingTracer{}
	if *verbose {
		// Fan the one tracer slot out: live terminal trace + in-memory
		// recording; typed kernel events join the same stream.
		sys.Env().SetTracer(obs.NewMultiTracer(&sim.WriterTracer{W: os.Stdout}, recorded))
		sys.Obs().Attach(&obs.TextExporter{W: os.Stdout})
	}
	say := func(who, format string, args ...any) {
		fmt.Printf("%10v  %s: %s\n", sys.Now(), who, fmt.Sprintf(format, args...))
	}

	// Links at boot: 1 connects A-B, 2 connects D-C, 3 connects A-D.
	a := sys.Spawn("A", func(t *lynx.Thread, boot []*lynx.End) {
		toB, l3 := boot[0], boot[1]
		say("A", "enclosing my end of link3 in a message to B")
		if _, err := t.Connect(toB, "take", lynx.Msg{Links: []*lynx.End{l3}}); err != nil {
			log.Fatalf("A: %v", err)
		}
		say("A", "done — I no longer hold link3")
		t.Destroy(toB)
	})
	d := sys.Spawn("D", func(t *lynx.Thread, boot []*lynx.End) {
		toC, l3 := boot[0], boot[1]
		say("D", "enclosing my end of link3 in a message to C (simultaneously)")
		if _, err := t.Connect(toC, "take", lynx.Msg{Links: []*lynx.End{l3}}); err != nil {
			log.Fatalf("D: %v", err)
		}
		say("D", "done — I no longer hold link3")
		t.Destroy(toC)
	})
	b := sys.Spawn("B", func(t *lynx.Thread, boot []*lynx.End) {
		req, err := t.Receive(boot[0])
		if err != nil {
			log.Fatalf("B: %v", err)
		}
		l3 := req.Links()[0]
		t.Reply(req, lynx.Msg{})
		say("B", "received link3's end from A; calling through the hose...")
		reply, err := t.Connect(l3, "who-is-there", lynx.Msg{})
		if err != nil {
			log.Fatalf("B: call over link3: %v", err)
		}
		say("B", "link3 answered: %q", reply.Data)
		t.Destroy(l3)
	})
	c := sys.Spawn("C", func(t *lynx.Thread, boot []*lynx.End) {
		req, err := t.Receive(boot[0])
		if err != nil {
			log.Fatalf("C: %v", err)
		}
		l3 := req.Links()[0]
		t.Reply(req, lynx.Msg{})
		say("C", "received link3's end from D; serving on it")
		r2, err := t.Receive(l3)
		if err != nil {
			log.Fatalf("C: %v", err)
		}
		t.Reply(r2, lynx.Msg{Data: []byte("C here — the hose now runs B<->C")})
	})

	sys.Join(a, b) // link 1
	sys.Join(d, c) // link 2
	sys.Join(a, d) // link 3

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfigure 1 complete on %s at %v of virtual time\n", sub, sys.Now())
	if *verbose {
		fmt.Printf("(%d annotations recorded, %d bytes moved by the kernel)\n",
			len(recorded.Events), sys.Stats().Bytes())
	}
}
