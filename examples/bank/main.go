// Bank: a sharded account service in which every account IS a link.
//
// The shard hosting an account serves the account's link end; the client
// holds the other end and deposits/queries over it with typed RPC. When
// the bank rebalances, the hosting shard ships the account's serving end
// (plus its balance) to the other shard — and the client's end of the
// "hose" keeps working without the client ever learning that the far end
// moved. This is §2.1's movable-links model doing real work: on SODA the
// client's first post-migration call is transparently redirected by the
// hint machinery; on Chrysalis the memory object is remapped; on
// Charlotte the kernel runs its move protocol.
//
//	go run ./examples/bank
//	go run ./examples/bank -substrate chrysalis -accounts 6 -migrations 4
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/lynx"
	"repro/lynx/codec"
)

func main() {
	subName := flag.String("substrate", "soda", "charlotte|soda|chrysalis|ideal")
	nAccounts := flag.Int("accounts", 4, "accounts to open")
	nMigrations := flag.Int("migrations", 3, "account migrations to perform")
	deposits := flag.Int("deposits", 5, "deposits per account")
	flag.Parse()
	sub := map[string]lynx.Substrate{
		"charlotte": lynx.Charlotte,
		"soda":      lynx.SODA,
		"chrysalis": lynx.Chrysalis,
		"ideal":     lynx.Ideal,
	}[*subName]
	runBank(sub, *nAccounts, *nMigrations, *deposits)
}

func runBank(sub lynx.Substrate, nAccounts, nMigrations, deposits int) {
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 1})

	type account struct {
		balance int64
		end     *lynx.End // serving end, owned by the hosting shard
	}

	// --- Shards ------------------------------------------------------
	shardNames := []string{"shard-0", "shard-1"}
	shards := make([]*lynx.ProcRef, 2)
	for i := range shards {
		name := shardNames[i]
		shards[i] = sys.Spawn(name, func(t *lynx.Thread, boot []*lynx.End) {
			dirLink := boot[0]
			accounts := map[string]*account{}

			serveAccount := func(at *lynx.Thread, owner string, acc *account) {
				lynx.ServeEntries(at, acc.end, lynx.Entries{
					"deposit": func(ht *lynx.Thread, req *lynx.Request) (lynx.Msg, error) {
						var amount int64
						if err := codec.Unmarshal(req.Data(), &amount); err != nil {
							return lynx.Msg{}, err
						}
						acc.balance += amount
						return lynx.Msg{Data: codec.MustMarshal(acc.balance)}, nil
					},
					"balance": func(ht *lynx.Thread, req *lynx.Request) (lynx.Msg, error) {
						return lynx.Msg{Data: codec.MustMarshal(acc.balance, name)}, nil
					},
				})
			}

			lynx.ServeEntries(t, dirLink, lynx.Entries{
				// host: create an account here; the client's end of the
				// fresh link travels back through the directory.
				"host": func(ht *lynx.Thread, req *lynx.Request) (lynx.Msg, error) {
					var owner string
					if err := codec.Unmarshal(req.Data(), &owner); err != nil {
						return lynx.Msg{}, err
					}
					mine, theirs, err := ht.NewLink()
					if err != nil {
						return lynx.Msg{}, err
					}
					acc := &account{end: mine}
					accounts[owner] = acc
					serveAccount(ht, owner, acc)
					fmt.Printf("%-8s hosts account %q\n", name, owner)
					return lynx.Msg{Links: []*lynx.End{theirs}}, nil
				},
				// migrate-out: stop serving and ship the serving end plus
				// the balance back through the directory, which forwards
				// both to the other shard.
				"migrate-out": func(ht *lynx.Thread, req *lynx.Request) (lynx.Msg, error) {
					var owner string
					if err := codec.Unmarshal(req.Data(), &owner); err != nil {
						return lynx.Msg{}, err
					}
					acc, ok := accounts[owner]
					if !ok {
						return lynx.Msg{}, fmt.Errorf("%s does not host %q", name, owner)
					}
					delete(accounts, owner)
					// Deregister the handler: the end must be quiescent
					// (no open queue) to be movable.
					ht.Process().ServeEnd(acc.end, nil)
					fmt.Printf("%-8s migrates %q out (balance %d)\n", name, owner, acc.balance)
					return lynx.Msg{
						Data:  codec.MustMarshal(owner, acc.balance),
						Links: []*lynx.End{acc.end},
					}, nil
				},
				// migrate-in: adopt a moved account and resume serving.
				"migrate-in": func(ht *lynx.Thread, req *lynx.Request) (lynx.Msg, error) {
					var owner string
					var balance int64
					if err := codec.Unmarshal(req.Data(), &owner, &balance); err != nil {
						return lynx.Msg{}, err
					}
					acc := &account{balance: balance, end: req.Links()[0]}
					accounts[owner] = acc
					serveAccount(ht, owner, acc)
					fmt.Printf("%-8s migrates %q in  (balance %d)\n", name, owner, balance)
					return lynx.Msg{}, nil
				},
			})
		})
	}

	// --- Directory ---------------------------------------------------
	dir := sys.Spawn("directory", func(t *lynx.Thread, boot []*lynx.End) {
		shardLinks := boot[:2] // joined first in the wiring below
		clientLinks := boot[2:]
		hostedAt := map[string]int{}
		next := 0

		for _, cl := range clientLinks {
			lynx.ServeEntries(t, cl, lynx.Entries{
				"open": func(ht *lynx.Thread, req *lynx.Request) (lynx.Msg, error) {
					var owner string
					if err := codec.Unmarshal(req.Data(), &owner); err != nil {
						return lynx.Msg{}, err
					}
					shard := next % 2
					next++
					reply, err := lynx.Call(ht, shardLinks[shard], "host",
						lynx.Msg{Data: codec.MustMarshal(owner)})
					if err != nil {
						return lynx.Msg{}, err
					}
					hostedAt[owner] = shard
					return lynx.Msg{Links: reply.Links}, nil
				},
			})
		}

		// Rebalancer: periodically move the alphabetically-first account
		// to the other shard, while clients keep depositing.
		t.Fork("rebalancer", func(rt *lynx.Thread) {
			for i := 0; i < nMigrations; i++ {
				rt.Sleep(400 * lynx.Millisecond)
				var owner string
				for o := range hostedAt {
					if owner == "" || o < owner {
						owner = o
					}
				}
				if owner == "" {
					continue
				}
				from := hostedAt[owner]
				to := 1 - from
				out, err := lynx.Call(rt, shardLinks[from], "migrate-out",
					lynx.Msg{Data: codec.MustMarshal(owner)})
				if err != nil {
					log.Printf("migrate-out %q: %v", owner, err)
					continue
				}
				var balance int64
				if err := codec.Unmarshal(out.Data, &owner, &balance); err != nil {
					log.Printf("migrate decode: %v", err)
					continue
				}
				if _, err := lynx.Call(rt, shardLinks[to], "migrate-in",
					lynx.Msg{Data: codec.MustMarshal(owner, balance), Links: out.Links}); err != nil {
					log.Printf("migrate-in %q: %v", owner, err)
					continue
				}
				hostedAt[owner] = to
			}
		})
	})

	// Wiring: the directory's first two boot links must be the shards.
	sys.Join(dir, shards[0])
	sys.Join(dir, shards[1])

	// --- Clients -----------------------------------------------------
	totals := make([]int64, nAccounts)
	finalShards := make([]string, nAccounts)
	for i := 0; i < nAccounts; i++ {
		i := i
		owner := fmt.Sprintf("acct-%02d", i)
		cl := sys.Spawn("client-"+owner, func(t *lynx.Thread, boot []*lynx.End) {
			reply, err := lynx.Call(t, boot[0], "open", lynx.Msg{Data: codec.MustMarshal(owner)})
			if err != nil {
				log.Fatalf("%s open: %v", owner, err)
			}
			acct := reply.Links[0] // our end of the account hose
			for d := 0; d < deposits; d++ {
				amount := int64(10 * (i + 1))
				r, err := lynx.Call(t, acct, "deposit", lynx.Msg{Data: codec.MustMarshal(amount)})
				if err != nil {
					log.Fatalf("%s deposit: %v", owner, err)
				}
				if err := codec.Unmarshal(r.Data, &totals[i]); err != nil {
					log.Fatalf("%s decode: %v", owner, err)
				}
				t.Sleep(300 * lynx.Millisecond) // migrations interleave here
			}
			var where string
			r, err := lynx.Call(t, acct, "balance", lynx.Msg{})
			if err != nil {
				log.Fatalf("%s balance: %v", owner, err)
			}
			if err := codec.Unmarshal(r.Data, &totals[i], &where); err != nil {
				log.Fatalf("%s decode: %v", owner, err)
			}
			finalShards[i] = where
			t.Destroy(acct)
			t.Destroy(boot[0])
		})
		sys.Join(dir, cl)
	}

	if err := sys.RunFor(120 * lynx.Second); err != nil {
		for _, sh := range shards {
			fmt.Print(sh.DebugState())
		}
		fmt.Print(dir.DebugState())
		log.Fatal(err)
	}
	fmt.Println()
	var grand, expect int64
	for i := 0; i < nAccounts; i++ {
		fmt.Printf("acct-%02d: balance %4d (served finally by %s)\n", i, totals[i], finalShards[i])
		grand += totals[i]
		expect += int64(10 * (i + 1) * deposits)
	}
	fmt.Printf("total %d (expected %d) on %v at %v virtual\n", grand, expect, sub, sys.Now())
	if grand != expect {
		log.Fatal("BALANCE MISMATCH: money was lost or duplicated in migration")
	}
}
