// Nameserver: the paper's motivating scenario of "interaction not only
// between the pieces of a multi-process application, but also between
// separate applications and between user programs and long-lived system
// servers" (§2).
//
// A broker process holds a registry of service names. Servers register
// by creating a fresh link and moving one end to the broker; clients ask
// the broker for a service and receive a private link end to that
// server, moved to them inside the reply. All connections are therefore
// built at run time out of link motion — no process but the broker is
// wired to anything at boot.
//
//	go run ./examples/nameserver
//	go run ./examples/nameserver -substrate soda
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/lynx"
)

func main() {
	subName := flag.String("substrate", "chrysalis", "charlotte|soda|chrysalis|ideal")
	flag.Parse()
	sub := map[string]lynx.Substrate{
		"charlotte": lynx.Charlotte,
		"soda":      lynx.SODA,
		"chrysalis": lynx.Chrysalis,
		"ideal":     lynx.Ideal,
	}[*subName]

	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 1})

	// The broker: a long-lived system server. Each boot link connects it
	// to one process; services register and are looked up over them.
	registry := map[string]*lynx.End{} // service name -> link end held in escrow
	broker := sys.Spawn("broker", func(t *lynx.Thread, boot []*lynx.End) {
		for _, e := range boot {
			t.Serve(e, func(st *lynx.Thread, req *lynx.Request) {
				switch req.Op() {
				case "register":
					// The request encloses the service's fresh link end;
					// hold it until someone asks.
					registry[string(req.Data())] = req.Links()[0]
					fmt.Printf("broker: registered %q\n", req.Data())
					st.Reply(req, lynx.Msg{})
				case "lookup":
					end, ok := registry[string(req.Data())]
					if !ok {
						st.Reply(req, lynx.Msg{Data: []byte("unknown")})
						return
					}
					delete(registry, string(req.Data()))
					fmt.Printf("broker: handing %q to a client\n", req.Data())
					// Move the escrowed end to the client in the reply.
					st.Reply(req, lynx.Msg{Data: []byte("ok"), Links: []*lynx.End{end}})
				}
			})
		}
	})

	// A math service: registers itself, then serves on the private link.
	mathServer := sys.Spawn("math-server", func(t *lynx.Thread, boot []*lynx.End) {
		mine, theirs, err := t.NewLink()
		if err != nil {
			log.Fatalf("math: %v", err)
		}
		if _, err := t.Connect(boot[0], "register",
			lynx.Msg{Data: []byte("math"), Links: []*lynx.End{theirs}}); err != nil {
			log.Fatalf("math register: %v", err)
		}
		t.Serve(mine, func(st *lynx.Thread, req *lynx.Request) {
			if req.Op() == "square" {
				n := int(req.Data()[0])
				st.Reply(req, lynx.Msg{Data: []byte{byte(n * n)}})
				return
			}
			st.Reply(req, lynx.Msg{})
		})
		t.Destroy(boot[0]) // done with the broker
	})

	// A client from a "separate application": it knows only the broker.
	client := sys.Spawn("client", func(t *lynx.Thread, boot []*lynx.End) {
		t.Sleep(200 * lynx.Millisecond) // let the service register first
		reply, err := t.Connect(boot[0], "lookup", lynx.Msg{Data: []byte("math")})
		if err != nil || string(reply.Data) != "ok" {
			log.Fatalf("lookup failed: %v %q", err, reply.Data)
		}
		svc := reply.Links[0] // the private link end, moved to us
		ans, err := t.Connect(svc, "square", lynx.Msg{Data: []byte{12}})
		if err != nil {
			log.Fatalf("square: %v", err)
		}
		fmt.Printf("client: square(12) = %d (via a link that moved broker->client)\n", ans.Data[0])
		t.Destroy(svc) // lets the math server exit
		t.Destroy(boot[0])
	})

	sys.Join(broker, mathServer)
	sys.Join(broker, client)

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done at %v of virtual time on %s\n", sys.Now(), sub)
}
