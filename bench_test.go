// Package repro's root benchmark suite: one testing.B benchmark per
// experiment row in DESIGN.md's per-experiment index (E1-E11), each
// regenerating the corresponding table/figure of the paper, plus
// micro-benchmarks of the simulation engine itself.
//
// Experiment benchmarks report two things: the Go implementation's real
// cost of regenerating the result (ns/op), and — via custom metrics —
// the headline virtual-time measurements, so `go test -bench .` prints
// the paper's numbers alongside.
package repro

import (
	"testing"

	"repro/internal/expt"
	"repro/internal/sim"
	"repro/lynx"
)

// benchExperiment runs one experiment per iteration, failing the bench
// if the measured shape stops matching the paper.
func benchExperiment(b *testing.B, run func() *expt.Result) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := run()
		if !r.Pass {
			b.Fatalf("%s: shape mismatch:\n%s", r.ID, r.Render())
		}
	}
}

// BenchmarkE1_CharlotteLatency regenerates §3.3's latency table.
func BenchmarkE1_CharlotteLatency(b *testing.B) { benchExperiment(b, expt.E1) }

// BenchmarkE2_EnclosureProtocol regenerates figure 2's message counts.
func BenchmarkE2_EnclosureProtocol(b *testing.B) { benchExperiment(b, expt.E2) }

// BenchmarkE3_SodaCrossover regenerates §4.3's sweep and crossover.
func BenchmarkE3_SodaCrossover(b *testing.B) { benchExperiment(b, expt.E3) }

// BenchmarkE4_ChrysalisLatency regenerates §5.3's latency table.
func BenchmarkE4_ChrysalisLatency(b *testing.B) { benchExperiment(b, expt.E4) }

// BenchmarkE5_CodeSize regenerates the implementation-size comparison.
func BenchmarkE5_CodeSize(b *testing.B) { benchExperiment(b, expt.E5) }

// BenchmarkE6_SimultaneousMove regenerates figure 1 on all substrates.
func BenchmarkE6_SimultaneousMove(b *testing.B) { benchExperiment(b, expt.E6) }

// BenchmarkE7_UnwantedMessages regenerates the screening comparison.
func BenchmarkE7_UnwantedMessages(b *testing.B) { benchExperiment(b, expt.E7) }

// BenchmarkE8_EnclosureLoss regenerates the lost-enclosure scenario.
func BenchmarkE8_EnclosureLoss(b *testing.B) { benchExperiment(b, expt.E8) }

// BenchmarkE9_ChrysalisTuning regenerates the tuning ablation.
func BenchmarkE9_ChrysalisTuning(b *testing.B) { benchExperiment(b, expt.E9) }

// BenchmarkE10_HintHeuristics regenerates the hint-repair economics.
func BenchmarkE10_HintHeuristics(b *testing.B) { benchExperiment(b, expt.E10) }

// BenchmarkE11_Fairness regenerates the queue-fairness measurement.
func BenchmarkE11_Fairness(b *testing.B) { benchExperiment(b, expt.E11) }

// benchRPC measures the real (wall-clock) cost of simulated LYNX remote
// operations on one substrate, and reports the virtual-time RTT as a
// custom metric (the paper's number).
func benchRPC(b *testing.B, sub lynx.Substrate, payload int) {
	b.ReportAllocs()
	var virtualMS float64
	ops := 0
	for i := 0; i < b.N; i++ {
		sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 1})
		data := make([]byte, payload)
		const opsPerRun = 10
		var rtt lynx.Duration
		c := sys.Spawn("c", func(t *lynx.Thread, boot []*lynx.End) {
			for j := 0; j < opsPerRun; j++ {
				start := t.Now()
				if _, err := t.Connect(boot[0], "op", lynx.Msg{Data: data}); err != nil {
					b.Error(err)
					return
				}
				rtt = lynx.Duration(t.Now() - start)
			}
			t.Destroy(boot[0])
		})
		s := sys.Spawn("s", func(t *lynx.Thread, boot []*lynx.End) {
			t.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
				st.Reply(req, lynx.Msg{Data: req.Data()})
			})
		})
		sys.Join(c, s)
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		virtualMS = rtt.Milliseconds()
		ops += opsPerRun
	}
	b.ReportMetric(virtualMS, "virtual-ms/op")
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "sim-rpc/s")
}

// BenchmarkRPC_Charlotte_0B: simple remote op, Charlotte (paper: 57 ms).
func BenchmarkRPC_Charlotte_0B(b *testing.B) { benchRPC(b, lynx.Charlotte, 0) }

// BenchmarkRPC_Charlotte_1KB: 1000 B each way (paper: 65 ms).
func BenchmarkRPC_Charlotte_1KB(b *testing.B) { benchRPC(b, lynx.Charlotte, 1000) }

// BenchmarkRPC_SODA_0B: simple remote op, SODA (paper predicts ≈3x
// faster than Charlotte).
func BenchmarkRPC_SODA_0B(b *testing.B) { benchRPC(b, lynx.SODA, 0) }

// BenchmarkRPC_SODA_1KB: 1000 B each way, near the crossover.
func BenchmarkRPC_SODA_1KB(b *testing.B) { benchRPC(b, lynx.SODA, 1000) }

// BenchmarkRPC_Chrysalis_0B: simple remote op, Chrysalis (paper: 2.4 ms).
func BenchmarkRPC_Chrysalis_0B(b *testing.B) { benchRPC(b, lynx.Chrysalis, 0) }

// BenchmarkRPC_Chrysalis_1KB: 1000 B each way (paper: 4.6 ms).
func BenchmarkRPC_Chrysalis_1KB(b *testing.B) { benchRPC(b, lynx.Chrysalis, 1000) }

// BenchmarkRPC_Ideal_0B: the perfect-kernel baseline.
func BenchmarkRPC_Ideal_0B(b *testing.B) { benchRPC(b, lynx.Ideal, 0) }

// BenchmarkSimEngine measures the raw discrete-event scheduler:
// timer-driven proc wakeups per second.
func BenchmarkSimEngine(b *testing.B) {
	b.ReportAllocs()
	env := sim.NewEnv(1)
	const procs = 8
	for i := 0; i < procs; i++ {
		env.Spawn("p", func(p *sim.Proc) {
			for {
				p.Delay(sim.Microsecond)
			}
		})
	}
	b.ResetTimer()
	// Each RunUntil step advances by b.N microsecond-ticks across procs.
	if err := env.RunUntil(sim.Time(b.N) * sim.Time(sim.Microsecond) / procs); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWireEncode measures the message codec.
func BenchmarkWireEncode(b *testing.B) {
	b.ReportAllocs()
	m := &wireMsgForBench
	for i := 0; i < b.N; i++ {
		buf, err := m.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := decodeWireForBench(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12_PairLimits regenerates the §4.2.1 limit-pressure table
// (extension experiment: the paper predicted, we measure).
func BenchmarkE12_PairLimits(b *testing.B) { benchExperiment(b, expt.E12) }

// BenchmarkE13_DiscoverLoss regenerates the discover-success-vs-loss
// sweep (extension experiment: §4.2's open question, answered).
func BenchmarkE13_DiscoverLoss(b *testing.B) { benchExperiment(b, expt.E13) }
