package repro

import "repro/internal/core"

// Shared fixtures for bench_test.go.

var wireMsgForBench = core.WireMsg{
	Kind: core.KindRequest,
	Op:   "benchmark-operation",
	Seq:  42,
	Data: make([]byte, 256),
}

func decodeWireForBench(buf []byte) (*core.WireMsg, int, error) {
	return core.DecodeWire(buf)
}
