package obs

// Metric name inventory. Each kernel owns one Recorder (and therefore
// one registry); binding-level metrics are per-process, keyed with
// ProcKey (name{proc=N}). The README's "Observability" section mirrors
// this list.
const (
	// Kernel-level (substrate-wide) counters.
	MKernelMessages   = "kernel_messages_total"   // messages the kernel delivered
	MKernelBytes      = "kernel_bytes_total"      // payload bytes moved by the kernel
	MEnclosureMoves   = "enclosure_moves_total"   // Charlotte: enclosed ends rebound
	MLinkDestroys     = "link_destroys_total"     // Charlotte: links destroyed
	MKernelCalls      = "kernel_calls_total"      // Charlotte: per-call, ProcKey-style {call=Name}
	MKernelRequests   = "kernel_requests_total"   // SODA: requests issued
	MKernelAccepts    = "kernel_accepts_total"    // SODA: accepts completed
	MKernelInterrupts = "kernel_interrupts_total" // SODA: software interrupts raised
	MKernelDiscovers  = "kernel_discovers_total"  // SODA: discover broadcasts
	MKernelBroadcasts = "kernel_broadcasts_total" // SODA: raw broadcasts on the bus
	MKernelRetries    = "kernel_retries_total"    // SODA: redeliveries after re-advertise
	MAtomicOps        = "atomic_ops_total"        // Chrysalis: 16-bit flag operations
	MQueueEnqueues    = "queue_enqueues_total"    // Chrysalis: dual-queue enqueues
	MQueueDequeues    = "queue_dequeues_total"    // Chrysalis: dual-queue dequeues
	MEventPosts       = "event_posts_total"       // Chrysalis: event-block posts
	MEventWaits       = "event_waits_total"       // Chrysalis: event-block waits
	MObjectMaps       = "object_maps_total"       // Chrysalis: memory-object maps
	MObjectUnmaps     = "object_unmaps_total"     // Chrysalis: memory-object unmaps
	MObjectsReclaimed = "objects_reclaimed_total" // Chrysalis: objects garbage-reclaimed
	MTornReads        = "torn_reads_total"        // Chrysalis: torn 32-bit reads observed

	// Binding-level counters, per process (ProcKey).
	MBindKernelSends  = "binding_kernel_sends_total" // Charlotte binding: kernel Sends issued
	MUnwantedReceives = "unwanted_receives_total"    // messages that no queue wanted
	MRetries          = "retries_total"              // Charlotte binding: retry NAKs sent
	MForbids          = "forbids_total"              // Charlotte binding: forbid NAKs sent
	MAllows           = "allows_total"               // Charlotte binding: allow retractions sent
	MGoaheads         = "goaheads_total"             // Charlotte binding: long-message clearances
	MEncPackets       = "enc_packets_total"          // Charlotte binding: enclosure packets
	MDroppedReplies   = "dropped_replies_total"      // Charlotte binding: unwanted replies dropped
	MResentRequests   = "resent_requests_total"      // Charlotte binding: stashed requests resent
	MFailedCancels    = "failed_cancels_total"       // Charlotte binding: Cancel lost the race
	MPuts             = "puts_total"                 // SODA binding: data puts completed
	MAccepts          = "accepts_total"              // SODA binding: requests accepted
	MSavedRequests    = "saved_requests_total"       // SODA binding: unwanted requests held
	MRejectedReplies  = "rejected_replies_total"     // SODA binding: unwanted replies NAKed
	MMovedForwards    = "moved_forwards_total"       // SODA binding: stale-hint forwards
	MHintFixes        = "hint_fixes_total"           // SODA binding: hints repaired
	MHintHits         = "hint_hits_total"            // SODA binding: puts landing on first hint
	MHintMisses       = "hint_misses_total"          // SODA binding: puts needing redirects/recovery
	MDiscovers        = "discovers_total"            // SODA binding: discover attempts
	MFreezes          = "freezes_total"              // SODA binding: absolute searches started
	MFreezeHalts      = "freeze_halts_total"         // SODA binding: processes frozen by a search
	MFrozenTimeNs     = "frozen_time_ns_total"       // SODA binding: virtual ns spent frozen
	MLinkMoves        = "link_moves_total"           // binding: link ends adopted after a move
	MCacheEvictions   = "cache_evictions_total"      // SODA binding: move-cache evictions
	MPairLimitRetries = "pair_limit_retries_total"   // SODA binding: backpressure re-posts
	MNotices          = "notices_total"              // Chrysalis binding: notices enqueued
	MStaleNotices     = "stale_notices_total"        // Chrysalis binding: stale notices ignored
	MFlagRescans      = "flag_rescans_total"         // Chrysalis binding: full flag rescans
	MRejections       = "rejections_total"           // Chrysalis binding: unwanted replies NAKed
	MLostNotices      = "lost_notices_total"         // Chrysalis binding: notice enqueue failed
	MTornNameReads    = "torn_name_reads_total"      // Chrysalis binding: torn queue-name reads

	// Run-time package (core) histograms, per process (ProcKey).
	MQueueWaitNs = "queue_wait_ns" // request sat in an explicit queue before Receive
	MProcBlockNs = "proc_block_ns" // process block point waiting for transport events
)
