// Package flight is the bounded recording layer of the observability
// subsystem: a zero-alloc fixed-size ring buffer that always holds the
// last N protocol events, with per-kind counters, seed-deterministic
// sampling, anomaly-triggered dumps, and incremental export for long
// runs.
//
// The full obs recorder pays for what it exports: at millions of
// events per second, marshalling every event is the hot path. A flight
// Recorder sits between the obs.Recorder and any export sink and
// bounds that cost by mode:
//
//	Full     — every event is forwarded downstream (today's behavior).
//	Sampled  — a seed-deterministic 1-in-K subset is forwarded. The
//	           decision hashes (seed, event ordinal), and events are
//	           delivered in serial replay order even under
//	           sim.EnterParallel, so a sampled trace is byte-identical
//	           at any worker count.
//	Counters — nothing is forwarded; only the ring and the per-kind
//	           counters update.
//
// In every mode the ring holds the most recent events, so a dump —
// requested on demand or fired by an anomaly hook (shape-check
// failure, fault-plan panic, deadline breach) — shows the moments
// before the interesting thing happened regardless of how little was
// exported live.
//
// The hot path (Event) is single-threaded by construction: the
// obs.Recorder delivers events serially (under a parallel partition it
// replays them in the exact serial interleave), so the ring, the
// counters, and the sampling state need no atomics and allocate
// nothing — events are copied into preallocated slots, no interface
// boxing, no per-event heap traffic.
package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"

	"repro/internal/obs"
)

// Mode selects how much of the event stream leaves the recorder. The
// zero value Off means "no flight recorder" — lynx.NewSystem only
// creates one for a non-Off mode, keeping the untraced path free.
type Mode uint8

// Recorder modes.
const (
	Off Mode = iota
	Full
	Sampled
	Counters
)

var modeNames = [...]string{
	Off:      "off",
	Full:     "full",
	Sampled:  "sampled",
	Counters: "counters",
}

func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode resolves a mode name as used by CLIs and the lynxd job API.
// "counters-only" is accepted as an alias for "counters"; the empty
// string parses as Off.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "", "off":
		return Off, nil
	case "full":
		return Full, nil
	case "sampled":
		return Sampled, nil
	case "counters", "counters-only":
		return Counters, nil
	default:
		return Off, fmt.Errorf("unknown trace mode %q (want off, full, sampled or counters)", name)
	}
}

// Config parameterizes a Recorder. The same struct doubles as the
// thread-through carrier in lynx/load, lynx/sweep and lynx/grid: the
// Mode/SampleK/Ring/Seed fields shape the per-run recorder, Sink and
// DumpTo say where its output goes.
type Config struct {
	// Mode selects full / sampled / counters recording. Off builds a
	// recorder that still rings and counts (useful standalone), but the
	// lynx layers skip recorder creation entirely for Off.
	Mode Mode
	// SampleK is the sampling divisor for Sampled mode: one event in K
	// is exported. <= 0 defaults to 64. Ignored by other modes.
	SampleK int
	// Ring is the ring-buffer capacity in events, rounded up to a power
	// of two. <= 0 defaults to 4096.
	Ring int
	// Seed salts the sampling hash so distinct runs sample distinct
	// subsequences; the same seed always samples the same ordinals.
	Seed uint64
	// Sink, when non-nil, receives the exported (full or sampled)
	// events — typically an obs.JSONLExporter or obs.ChromeStream for
	// incremental streaming on long runs.
	Sink obs.Sink
	// DumpTo, when non-nil, receives ring dumps (anomaly hooks and
	// end-of-run). A dump is written as one Write call so concurrent
	// writers interleave at dump granularity, not mid-dump.
	DumpTo io.Writer
}

// DefaultSampleK is the Sampled-mode divisor when Config.SampleK is
// unset.
const DefaultSampleK = 64

// DefaultRing is the ring capacity when Config.Ring is unset.
const DefaultRing = 4096

// Recorder is the flight recorder. It implements obs.Sink, so it
// attaches to an obs.Recorder like any exporter; export sinks attach
// to it (not to the obs.Recorder directly, which would bypass
// sampling). The nil *Recorder is valid everywhere and does nothing —
// anomaly hooks fire unconditionally in instrumented code.
type Recorder struct {
	mode Mode
	k    uint64
	seed uint64

	ring []obs.Event
	mask uint64
	head uint64 // total events ringed; next slot is head & mask

	seen     uint64
	exported uint64
	kinds    [obs.NumKinds]uint64

	sinks     []obs.Sink
	dumpTo    io.Writer
	anomalies []string
	dumps     int

	scratch bytes.Buffer
}

// New creates a recorder for the given config (Sink and DumpTo may
// also be attached later).
func New(cfg Config) *Recorder {
	k := uint64(cfg.SampleK)
	if cfg.SampleK <= 0 {
		k = DefaultSampleK
	}
	n := cfg.Ring
	if n <= 0 {
		n = DefaultRing
	}
	// Round up to a power of two so slot indexing is a mask, not a mod.
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n))
	}
	f := &Recorder{
		mode:   cfg.Mode,
		k:      k,
		seed:   cfg.Seed,
		ring:   make([]obs.Event, n),
		mask:   uint64(n - 1),
		dumpTo: cfg.DumpTo,
	}
	if cfg.Sink != nil {
		f.sinks = append(f.sinks, cfg.Sink)
	}
	return f
}

// Mode returns the recorder's mode (Off for nil).
func (f *Recorder) Mode() Mode {
	if f == nil {
		return Off
	}
	return f.mode
}

// Attach adds a downstream export sink; Full forwards every event to
// it, Sampled one in K, Counters none.
func (f *Recorder) Attach(s obs.Sink) {
	if f != nil && s != nil {
		f.sinks = append(f.sinks, s)
	}
}

// SetDumpWriter directs ring dumps to w (replacing any earlier
// destination).
func (f *Recorder) SetDumpWriter(w io.Writer) {
	if f != nil {
		f.dumpTo = w
	}
}

// Event implements obs.Sink: ring the event, count its kind, and
// forward it downstream according to the mode. This is the hot path —
// it performs no allocation (the slot copy reuses the event's string
// headers) and no locking (delivery is serial by the obs.Recorder's
// replay contract).
func (f *Recorder) Event(ev obs.Event) {
	f.ring[f.head&f.mask] = ev
	f.head++
	f.seen++
	if int(ev.Kind) < len(f.kinds) {
		f.kinds[ev.Kind]++
	}
	switch f.mode {
	case Counters:
		return
	case Sampled:
		// Hash the event ordinal with the seed: the same seed exports
		// the same 1-in-K ordinals at any parallelism, because ordinals
		// are assigned in serial replay order.
		if mix64(f.seed^f.seen)%f.k != 0 {
			return
		}
	}
	f.exported++
	for _, s := range f.sinks {
		s.Event(ev)
	}
}

// WantDetail implements obs.DetailHinter: full mode keeps every
// event's Detail string, counters-only keeps none (events live only in
// the ring and the per-kind counters), and sampled mode keeps Detail
// exactly for the ordinals the deterministic sampler will export. The
// next-event prediction is exact under the same serial-delivery
// contract the ring relies on: between a site's WantDetail check and
// its Emit no other simulation step — and therefore no other event —
// can interleave, so the next ordinal is always seen+1. (Under
// parallel replay the obs.Recorder never consults the hint; see
// obs.Recorder.WantDetail.)
func (f *Recorder) WantDetail() bool {
	if f == nil {
		return false
	}
	switch f.mode {
	case Counters:
		return false
	case Sampled:
		return mix64(f.seed^(f.seen+1))%f.k == 0
	default:
		return true
	}
}

// Seen returns how many events the recorder has observed (0 for nil).
func (f *Recorder) Seen() uint64 {
	if f == nil {
		return 0
	}
	return f.seen
}

// Exported returns how many events were forwarded downstream.
func (f *Recorder) Exported() uint64 {
	if f == nil {
		return 0
	}
	return f.exported
}

// KindCount returns how many events of kind k were observed.
func (f *Recorder) KindCount(k obs.Kind) uint64 {
	if f == nil || int(k) >= len(f.kinds) {
		return 0
	}
	return f.kinds[k]
}

// RingLen returns how many events the ring currently holds (up to its
// capacity).
func (f *Recorder) RingLen() int {
	if f == nil {
		return 0
	}
	if f.head < uint64(len(f.ring)) {
		return int(f.head)
	}
	return len(f.ring)
}

// Snapshot copies the ring's events oldest-first into a fresh slice
// (for tests and on-demand inspection; the hot path never calls this).
func (f *Recorder) Snapshot() []obs.Event {
	if f == nil {
		return nil
	}
	n := uint64(f.RingLen())
	out := make([]obs.Event, 0, n)
	for i := f.head - n; i < f.head; i++ {
		out = append(out, f.ring[i&f.mask])
	}
	return out
}

// Anomaly records an anomaly reason and, when a dump writer is
// attached, dumps the ring so the events leading up to the anomaly are
// preserved even in sampled or counters mode. Nil-safe, so
// instrumented code calls it unconditionally.
func (f *Recorder) Anomaly(reason string) {
	if f == nil {
		return
	}
	f.anomalies = append(f.anomalies, reason)
	if f.dumpTo != nil {
		f.dump(f.dumpTo, "anomaly: "+reason)
	}
}

// Anomalies returns the recorded anomaly reasons in occurrence order.
func (f *Recorder) Anomalies() []string {
	if f == nil {
		return nil
	}
	return f.anomalies
}

// Dumps returns how many ring dumps were written.
func (f *Recorder) Dumps() int {
	if f == nil {
		return 0
	}
	return f.dumps
}

// Dump writes the ring to the configured dump writer (no-op without
// one).
func (f *Recorder) Dump(reason string) error {
	if f == nil || f.dumpTo == nil {
		return nil
	}
	return f.dump(f.dumpTo, reason)
}

// dumpHeader is the first line of a ring dump. The "type" field
// distinguishes dump lines from plain event lines in a mixed JSONL
// stream (lynxd's /jobs/{id}/trace multiplexes both).
type dumpHeader struct {
	Type     string `json:"type"`
	Reason   string `json:"reason"`
	Mode     string `json:"mode"`
	Seen     uint64 `json:"seen"`
	Exported uint64 `json:"exported"`
	Ring     int    `json:"ring"`
}

// DumpJSONL writes the ring as JSONL to w: one header object
// ({"type":"dump",...}), then the ringed events oldest-first, one per
// line. The whole dump is assembled in one buffer and issued as a
// single Write, so a line-splitting consumer (the lynxd job trace
// stream) never interleaves another writer's lines into the middle of
// a dump.
func (f *Recorder) DumpJSONL(w io.Writer, reason string) error {
	if f == nil {
		return nil
	}
	return f.dump(w, reason)
}

func (f *Recorder) dump(w io.Writer, reason string) error {
	f.scratch.Reset()
	hdr, err := json.Marshal(dumpHeader{
		Type:     "dump",
		Reason:   reason,
		Mode:     f.mode.String(),
		Seen:     f.seen,
		Exported: f.exported,
		Ring:     f.RingLen(),
	})
	if err != nil {
		return err
	}
	f.scratch.Write(hdr)
	f.scratch.WriteByte('\n')
	n := uint64(f.RingLen())
	for i := f.head - n; i < f.head; i++ {
		line, err := json.Marshal(f.ring[i&f.mask])
		if err != nil {
			return err
		}
		f.scratch.Write(line)
		f.scratch.WriteByte('\n')
	}
	if _, err := w.Write(f.scratch.Bytes()); err != nil {
		return err
	}
	f.dumps++
	return nil
}

// mix64 is the SplitMix64 finalizer — the same mixer internal/sim uses
// for stream-seed derivation, replicated here so the sampling decision
// is a documented pure function of (seed, ordinal).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
