package flight

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// feed pushes n events with distinct times/seqs through the recorder.
func feed(f *Recorder, n int) {
	for i := 0; i < n; i++ {
		f.Event(obs.Event{
			At:   sim.Time(i) * sim.Time(sim.Microsecond),
			Kind: obs.KindQueueService,
			Proc: i & 7,
			Seq:  uint64(i),
		})
	}
}

// collectSink gathers forwarded events for assertions.
type collectSink struct{ evs []obs.Event }

func (c *collectSink) Event(ev obs.Event) { c.evs = append(c.evs, ev) }

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"", Off, true},
		{"off", Off, true},
		{"full", Full, true},
		{"sampled", Sampled, true},
		{"counters", Counters, true},
		{"counters-only", Counters, true},
		{"verbose", Off, false},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

// The ring keeps exactly the last N events, oldest-first, across wrap.
func TestRingWrap(t *testing.T) {
	f := New(Config{Mode: Counters, Ring: 8})
	feed(f, 20)
	if got := f.RingLen(); got != 8 {
		t.Fatalf("RingLen = %d, want 8", got)
	}
	snap := f.Snapshot()
	for i, ev := range snap {
		if want := uint64(12 + i); ev.Seq != want {
			t.Errorf("snapshot[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if f.Seen() != 20 {
		t.Errorf("Seen = %d, want 20", f.Seen())
	}
	if f.KindCount(obs.KindQueueService) != 20 {
		t.Errorf("KindCount = %d, want 20", f.KindCount(obs.KindQueueService))
	}
}

// Non-power-of-two capacities round up.
func TestRingRoundsUp(t *testing.T) {
	f := New(Config{Ring: 5})
	if got := len(f.ring); got != 8 {
		t.Fatalf("ring capacity = %d, want 8", got)
	}
}

// Counters mode forwards nothing; Full forwards everything.
func TestModesForwarding(t *testing.T) {
	for _, tc := range []struct {
		mode Mode
		want int
	}{{Full, 100}, {Counters, 0}} {
		sink := &collectSink{}
		f := New(Config{Mode: tc.mode, Sink: sink})
		feed(f, 100)
		if len(sink.evs) != tc.want {
			t.Errorf("%v forwarded %d events, want %d", tc.mode, len(sink.evs), tc.want)
		}
		if f.Exported() != uint64(tc.want) {
			t.Errorf("%v Exported = %d, want %d", tc.mode, f.Exported(), tc.want)
		}
	}
}

// Sampled mode exports the same ordinals for the same seed, different
// ordinals for a different seed, and roughly 1-in-K of the stream.
func TestSampledDeterminism(t *testing.T) {
	run := func(seed uint64) []uint64 {
		sink := &collectSink{}
		f := New(Config{Mode: Sampled, SampleK: 16, Seed: seed, Sink: sink})
		feed(f, 4096)
		var seqs []uint64
		for _, ev := range sink.evs {
			seqs = append(seqs, ev.Seq)
		}
		return seqs
	}
	a, b := run(7), run(7)
	if len(a) == 0 {
		t.Fatal("seed 7 sampled nothing in 4096 events at K=16")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed sampled %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at export %d: %d vs %d", i, a[i], b[i])
		}
	}
	// ~4096/16 = 256 expected; a hash this uniform stays well inside 2x.
	if n := len(a); n < 128 || n > 512 {
		t.Errorf("sampled %d of 4096 at K=16, want ~256", n)
	}
	if c := run(8); len(c) == len(a) && func() bool {
		for i := range c {
			if c[i] != a[i] {
				return false
			}
		}
		return true
	}() {
		t.Error("different seeds sampled identical ordinals")
	}
}

// WantDetail predicts exactly the events the sampler will export: an
// emit site that builds Detail only under WantDetail loses no Detail on
// any exported event, and counters mode never wants any.
func TestWantDetailMatchesSampling(t *testing.T) {
	sink := &collectSink{}
	f := New(Config{Mode: Sampled, SampleK: 8, Seed: 3, Sink: sink})
	for i := 0; i < 2048; i++ {
		var detail string
		if f.WantDetail() {
			detail = "kept"
		}
		f.Event(obs.Event{Seq: uint64(i), Detail: detail})
	}
	if len(sink.evs) == 0 {
		t.Fatal("nothing sampled")
	}
	for _, ev := range sink.evs {
		if ev.Detail != "kept" {
			t.Fatalf("exported event %d lost its Detail", ev.Seq)
		}
	}
	ctr := New(Config{Mode: Counters})
	if ctr.WantDetail() {
		t.Error("counters mode wants Detail")
	}
	full := New(Config{Mode: Full})
	if !full.WantDetail() {
		t.Error("full mode declines Detail")
	}
	var nilRec *Recorder
	if nilRec.WantDetail() {
		t.Error("nil recorder wants Detail")
	}
}

// The hot path allocates nothing in any mode (the sink here keeps the
// event without marshalling, like the ring itself).
func TestEventZeroAlloc(t *testing.T) {
	discard := &collectSink{evs: make([]obs.Event, 0, 1<<16)}
	for _, mode := range []Mode{Full, Sampled, Counters} {
		f := New(Config{Mode: mode, Ring: 1024, Sink: discard})
		ev := obs.Event{Kind: obs.KindQueueService, Proc: 1, Seq: 42, Detail: "d"}
		if n := testing.AllocsPerRun(1000, func() { f.Event(ev) }); n != 0 {
			t.Errorf("%v mode: %v allocs per Event, want 0", mode, n)
		}
	}
}

// A dump is one header line plus the ringed events, all valid JSON,
// delivered in a single Write.
func TestDumpJSONL(t *testing.T) {
	f := New(Config{Mode: Counters, Ring: 16})
	feed(f, 40)
	var buf bytes.Buffer
	writes := 0
	if err := f.DumpJSONL(writerFunc(func(p []byte) (int, error) {
		writes++
		return buf.Write(p)
	}), "test-dump"); err != nil {
		t.Fatal(err)
	}
	if writes != 1 {
		t.Fatalf("dump issued %d writes, want 1", writes)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("empty dump")
	}
	var hdr dumpHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("bad dump header: %v", err)
	}
	if hdr.Type != "dump" || hdr.Reason != "test-dump" || hdr.Seen != 40 || hdr.Ring != 16 {
		t.Fatalf("header = %+v", hdr)
	}
	lines := 0
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad dump line %d: %v", lines, err)
		}
		lines++
	}
	if lines != 16 {
		t.Fatalf("dump carried %d events, want 16", lines)
	}
	if f.Dumps() != 1 {
		t.Fatalf("Dumps = %d, want 1", f.Dumps())
	}
}

// Anomaly records the reason and dumps the ring when a writer is
// attached; the nil recorder swallows it.
func TestAnomalyDump(t *testing.T) {
	var buf bytes.Buffer
	f := New(Config{Mode: Counters, Ring: 8, DumpTo: &buf})
	feed(f, 4)
	f.Anomaly("shape-check failure")
	if got := f.Anomalies(); len(got) != 1 || got[0] != "shape-check failure" {
		t.Fatalf("Anomalies = %v", got)
	}
	if f.Dumps() != 1 || buf.Len() == 0 {
		t.Fatal("anomaly did not dump the ring")
	}
	var nilRec *Recorder
	nilRec.Anomaly("ignored") // must not panic
	if nilRec.Dump("ignored") != nil {
		t.Fatal("nil Dump must be a no-op")
	}
}

type writerFunc func(p []byte) (int, error)

func (w writerFunc) Write(p []byte) (int, error) { return w(p) }
