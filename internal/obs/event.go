// Package obs is the observability subsystem: a typed protocol-event
// model plus a metrics registry, shared by all three kernels, all four
// bindings, and the LYNX run-time package. The paper's headline claims
// are counting claims (§6 counts kernel messages, unwanted receives,
// NAK traffic, and hint hit rates); obs makes structured events and
// named counters the single source of truth for those numbers instead
// of ad-hoc fields scattered through the kernels and bindings.
//
// Everything is deterministic: events are emitted synchronously from
// the discrete-event simulation, so the same seed produces a
// byte-identical JSONL stream.
package obs

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Kind classifies a protocol event. The enum spans all three substrates
// plus the kernel-independent run-time package; exporters render it via
// String.
type Kind uint8

const (
	KindUnknown Kind = iota

	// Kernel-level message traffic (any substrate).
	KindKernelSend    // a message handed to the kernel for transmission
	KindKernelReceive // a receive posted to the kernel
	KindKernelCancel  // an outstanding send/receive cancelled
	KindKernelDeliver // the kernel matched and delivered a message

	// Link lifecycle.
	KindLinkMake    // link created
	KindLinkMove    // a link end changed owning process (enclosure / adoption)
	KindLinkDestroy // link destroyed

	// Charlotte binding protocol phases (§3.3).
	KindRetry    // NAK: receiver busy, sender must retry
	KindForbid   // NAK: stop retrying until allowed
	KindAllow    // retraction of an earlier forbid
	KindGoahead  // long-message clearance
	KindEnc      // enclosure packet (one moved end per packet)
	KindUnwanted // a message arrived that no queue wanted

	// SODA kernel verbs (§4.1).
	KindPut      // request carrying data to the receiver
	KindGet      // request asking for data back
	KindSignal   // no-data request
	KindExchange // data both ways
	KindAccept   // receiver accepted a request
	KindDiscover // broadcast name search
	KindFreeze   // absolute-search freeze request
	KindUnfreeze // thaw after an absolute search

	// Chrysalis primitives (§5.1).
	KindFlagSet   // 16-bit atomic flag operation
	KindNotice    // dual-queue notice (binding-level hint)
	KindQueueFlip // dual queue flipped to event-name mode
	KindTornRead  // a non-atomic 32-bit read observed a torn value

	// Run-time package queue/block points.
	KindQueueWait    // a process blocked waiting for transport events
	KindQueueService // a queued request was claimed by a thread

	// Mark is a free-text annotation (bridged from sim.Env.Trace).
	KindMark
)

var kindNames = [...]string{
	KindUnknown:       "unknown",
	KindKernelSend:    "kernel.send",
	KindKernelReceive: "kernel.receive",
	KindKernelCancel:  "kernel.cancel",
	KindKernelDeliver: "kernel.deliver",
	KindLinkMake:      "link.make",
	KindLinkMove:      "link.move",
	KindLinkDestroy:   "link.destroy",
	KindRetry:         "ch.retry",
	KindForbid:        "ch.forbid",
	KindAllow:         "ch.allow",
	KindGoahead:       "ch.goahead",
	KindEnc:           "ch.enc",
	KindUnwanted:      "unwanted",
	KindPut:           "soda.put",
	KindGet:           "soda.get",
	KindSignal:        "soda.signal",
	KindExchange:      "soda.exchange",
	KindAccept:        "soda.accept",
	KindDiscover:      "soda.discover",
	KindFreeze:        "soda.freeze",
	KindUnfreeze:      "soda.unfreeze",
	KindFlagSet:       "chr.flag",
	KindNotice:        "chr.notice",
	KindQueueFlip:     "chr.qflip",
	KindTornRead:      "chr.torn",
	KindQueueWait:     "queue.wait",
	KindQueueService:  "queue.service",
	KindMark:          "mark",
}

// NumKinds is the number of defined kinds — sized for per-kind counter
// arrays (the flight recorder indexes one by Kind).
const NumKinds = len(kindNames)

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON renders the kind as its name so JSONL and Chrome streams
// are self-describing.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON accepts a kind name (for round-tripping exported
// streams in tests and tools).
func (k *Kind) UnmarshalJSON(b []byte) error {
	name := strings.Trim(string(b), `"`)
	for i, n := range kindNames {
		if n == name {
			*k = Kind(i)
			return nil
		}
	}
	*k = KindUnknown
	return nil
}

// Event is one typed protocol event. Fields beyond At/Kind are
// optional; the zero value of each means "not applicable". The struct
// marshals deterministically with encoding/json (fixed field order),
// which the determinism golden test relies on.
type Event struct {
	At        sim.Time     `json:"at"`
	Substrate string       `json:"sub,omitempty"`
	Kind      Kind         `json:"kind"`
	Src       string       `json:"src,omitempty"`    // annotation source (mark events)
	Proc      int          `json:"proc,omitempty"`   // kernel process id
	Peer      int          `json:"peer,omitempty"`   // remote kernel process id
	Link      int          `json:"link,omitempty"`   // link / object id
	Thread    int          `json:"thread,omitempty"` // run-time coroutine id
	Seq       uint64       `json:"seq,omitempty"`    // message / request sequence
	Bytes     int          `json:"bytes,omitempty"`
	Wait      sim.Duration `json:"wait,omitempty"` // queue/block duration
	Detail    string       `json:"detail,omitempty"`
}

// text renders the event for the human exporter, one field per token so
// traces stay greppable.
func (ev Event) text() string {
	var b strings.Builder
	b.WriteString(ev.Kind.String())
	if ev.Proc != 0 {
		fmt.Fprintf(&b, " p%d", ev.Proc)
	}
	if ev.Peer != 0 {
		fmt.Fprintf(&b, "->p%d", ev.Peer)
	}
	if ev.Link != 0 {
		fmt.Fprintf(&b, " link=%d", ev.Link)
	}
	if ev.Thread != 0 {
		fmt.Fprintf(&b, " tid=%d", ev.Thread)
	}
	if ev.Seq != 0 {
		fmt.Fprintf(&b, " seq=%d", ev.Seq)
	}
	if ev.Bytes != 0 {
		fmt.Fprintf(&b, " n=%d", ev.Bytes)
	}
	if ev.Wait != 0 {
		fmt.Fprintf(&b, " wait=%v", ev.Wait)
	}
	if ev.Detail != "" {
		b.WriteString(" ")
		b.WriteString(ev.Detail)
	}
	return b.String()
}
