package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilSafety(t *testing.T) {
	var r *Recorder
	if r.Active() {
		t.Fatal("nil recorder active")
	}
	r.Emit(Event{Kind: KindMark}) // must not panic
	r.Metrics().Counter("x").Inc()
	r.Counter("x").Add(5)
	r.Histogram("h").Observe(3)
	if got := r.Metrics().Value("x"); got != 0 {
		t.Fatalf("nil metrics value = %d", got)
	}
	var c *Counter
	c.Inc()
	var h *Histogram
	h.Observe(10)
	if c.Value() != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("nil instruments recorded something")
	}
	if r.Metrics().Snapshot() != nil || r.Metrics().Names() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	m.Counter("a_total").Add(3)
	m.Counter("a_total").Inc()
	m.Counter(ProcKey("b_total", 2)).Inc()
	m.Histogram("w_ns").Observe(100)
	m.Histogram("w_ns").Observe(300)
	if got := m.Value("a_total"); got != 4 {
		t.Fatalf("a_total = %d", got)
	}
	if got := m.ProcValue("b_total", 2); got != 1 {
		t.Fatalf("b_total{proc=2} = %d", got)
	}
	if got := m.SumPrefix("b_total"); got != 1 {
		t.Fatalf("SumPrefix = %d", got)
	}
	h := m.Histogram("w_ns")
	if h.Count() != 2 || h.Sum() != 400 || h.Mean() != 200 || h.Max() != 300 {
		t.Fatalf("histogram %d %v %v %v", h.Count(), h.Sum(), h.Mean(), h.Max())
	}
	snap := m.Snapshot()
	if snap["a_total"] != 4 || snap["w_ns_count"] != 2 || snap["w_ns_sum_ns"] != 400 {
		t.Fatalf("snapshot %v", snap)
	}
	want := []string{"a_total", "b_total{proc=2}", "w_ns"}
	if got := m.Names(); len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("names %v", got)
	}
}

func TestRecorderEmitAndSinks(t *testing.T) {
	env := sim.NewEnv(1)
	r := NewRecorder(env, "testsub")
	rec1, rec2 := &RecordingSink{}, &RecordingSink{}
	if r.Active() {
		t.Fatal("active before attach")
	}
	r.Attach(rec1)
	r.Attach(rec2)
	env.Spawn("p", func(p *sim.Proc) {
		p.Delay(5 * sim.Microsecond)
		r.Emit(Event{Kind: KindPut, Proc: 1, Peer: 2, Bytes: 7})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for _, rs := range []*RecordingSink{rec1, rec2} {
		if len(rs.Events) != 1 {
			t.Fatalf("events = %d", len(rs.Events))
		}
		ev := rs.Events[0]
		if ev.At != sim.Time(5*sim.Microsecond) || ev.Substrate != "testsub" || ev.Kind != KindPut {
			t.Fatalf("event %+v", ev)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := &JSONLExporter{W: &buf}
	j.Event(Event{At: 42, Substrate: "soda", Kind: KindFreeze, Proc: 3, Detail: "x"})
	line := strings.TrimSpace(buf.String())
	var got Event
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindFreeze || got.At != 42 || got.Proc != 3 || got.Detail != "x" {
		t.Fatalf("round-trip %+v", got)
	}
}

func TestKindJSONNames(t *testing.T) {
	for k := KindUnknown; k <= KindMark; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("kind %v round-tripped to %v", k, back)
		}
	}
}

func TestChromeExporter(t *testing.T) {
	c := NewChromeExporter()
	c.Event(Event{At: sim.Time(1500), Substrate: "charlotte", Kind: KindKernelSend, Proc: 1, Link: 3})
	c.Event(Event{At: sim.Time(2500), Substrate: "charlotte", Kind: KindKernelDeliver, Proc: 2, Link: 3, Bytes: 10})
	var buf bytes.Buffer
	if err := c.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("invalid JSON")
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 || doc.TraceEvents[0].Name != "kernel.send" ||
		doc.TraceEvents[0].Ts != 1.5 || doc.TraceEvents[1].Pid != 2 {
		t.Fatalf("chrome doc %+v", doc)
	}
}

func TestMultiTracerFanOut(t *testing.T) {
	env := sim.NewEnv(1)
	a, b := &sim.RecordingTracer{}, &sim.RecordingTracer{}
	env.SetTracer(NewMultiTracer(a, nil, b))
	env.Spawn("p", func(p *sim.Proc) {
		env.Trace("src", "hello %d", 7)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for _, rt := range []*sim.RecordingTracer{a, b} {
		if len(rt.Events) != 1 || rt.Events[0].Msg != "hello 7" || rt.Events[0].Source != "src" {
			t.Fatalf("fan-out events %+v", rt.Events)
		}
	}
}

func TestTraceAdapterBridgesMarks(t *testing.T) {
	env := sim.NewEnv(1)
	r := NewRecorder(env, "ideal")
	rs := &RecordingSink{}
	r.Attach(rs)
	env.SetTracer(&TraceAdapter{R: r})
	env.Spawn("p", func(p *sim.Proc) {
		p.Delay(time3())
		env.Trace("A", "moving link %d", 3)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rs.Events) != 1 {
		t.Fatalf("events = %d", len(rs.Events))
	}
	ev := rs.Events[0]
	if ev.Kind != KindMark || ev.Src != "A" || ev.Detail != "moving link 3" || ev.At == 0 {
		t.Fatalf("mark %+v", ev)
	}
}

func time3() sim.Duration { return 3 * sim.Millisecond }

func TestTextExporterFormat(t *testing.T) {
	var buf bytes.Buffer
	te := &TextExporter{W: &buf}
	te.Event(Event{At: sim.Time(sim.Millisecond), Substrate: "soda", Kind: KindAccept, Proc: 2, Seq: 9, Bytes: 4})
	out := buf.String()
	if !strings.Contains(out, "soda") || !strings.Contains(out, "soda.accept") ||
		!strings.Contains(out, "p2") || !strings.Contains(out, "seq=9") {
		t.Fatalf("text %q", out)
	}
}

// flushCounter wraps a buffer and counts Flush calls, standing in for
// bufio.Writer / an HTTP chunked response.
type flushCounter struct {
	bytes.Buffer
	flushes int
	err     error
}

func (f *flushCounter) Flush() error { f.flushes++; return f.err }

// The JSONL exporter must push every event to the consumer as it
// arrives: one write and one flush per event, no whole-buffer
// accumulation, and a broken sink stops the stream via Err instead of
// panicking or spinning.
func TestJSONLExporterIncrementalFlush(t *testing.T) {
	w := &flushCounter{}
	j := &JSONLExporter{W: w}
	for i := 0; i < 3; i++ {
		j.Event(Event{Kind: KindKernelSend, Proc: i})
	}
	if w.flushes != 3 {
		t.Fatalf("flushes = %d, want one per event", w.flushes)
	}
	lines := strings.Split(strings.TrimRight(w.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3:\n%s", len(lines), w.String())
	}
	if j.Err != nil {
		t.Fatalf("unexpected exporter error: %v", j.Err)
	}

	w.err = errors.New("consumer hung up")
	j.Event(Event{Kind: KindKernelSend, Proc: 9})
	if j.Err == nil {
		t.Fatal("flush error must surface in Err")
	}
	before := w.Len()
	j.Event(Event{Kind: KindKernelSend, Proc: 10})
	if w.Len() != before {
		t.Fatal("events after a sink error must be dropped")
	}
}
