package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Counter is a monotonically-increasing named count. The nil *Counter
// is a valid no-op, so hot paths can increment unconditionally even
// when no registry is attached. Increments are atomic: shard envs of a
// parallel partition bump shared counters concurrently, and addition
// commutes, so totals are independent of worker interleaving.
type Counter struct{ n atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d. No-op on a nil counter.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.n.Add(d)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Histogram accumulates virtual-time durations: count/sum/min/max plus
// log2 buckets (bucket i counts observations in [2^i, 2^(i+1)) ns).
// The nil *Histogram is a valid no-op. Like Counter, observations are
// atomic and commutative (adds plus monotone extrema CAS), so parallel
// shard envs can observe into one histogram and land identical state
// regardless of interleaving.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	// minPlus holds min+1 so the zero value still means "no
	// observations yet" (observed values are clamped >= 0).
	minPlus atomic.Int64
	max     atomic.Int64
	buckets [48]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d sim.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.lowerMin(v + 1)
	h.raiseMax(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// lowerMin lowers minPlus to vp unless an equal-or-lower value is set.
func (h *Histogram) lowerMin(vp int64) {
	for {
		cur := h.minPlus.Load()
		if cur != 0 && cur <= vp {
			return
		}
		if h.minPlus.CompareAndSwap(cur, vp) {
			return
		}
	}
}

// raiseMax raises max to v unless an equal-or-higher value is set.
func (h *Histogram) raiseMax(v int64) {
	for {
		cur := h.max.Load()
		if cur >= v {
			return
		}
		if h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() sim.Duration {
	if h == nil {
		return 0
	}
	return sim.Duration(h.sum.Load())
}

// Mean returns the average observed duration (0 when empty).
func (h *Histogram) Mean() sim.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return sim.Duration(h.sum.Load() / n)
}

// Max returns the largest observed duration.
func (h *Histogram) Max() sim.Duration {
	if h == nil {
		return 0
	}
	return sim.Duration(h.max.Load())
}

// Min returns the smallest observed duration (0 when empty).
func (h *Histogram) Min() sim.Duration {
	if h == nil {
		return 0
	}
	mp := h.minPlus.Load()
	if mp == 0 {
		return 0
	}
	return sim.Duration(mp - 1)
}

// Merge folds other's observations into h: counts and sums add, the
// extrema widen, and the log2 buckets merge element-wise. Merging
// replica histograms this way is exact for count/sum/min/max and
// bucket-resolution for quantiles. No-op when other is nil or empty.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil || other.count.Load() == 0 {
		return
	}
	if omp := other.minPlus.Load(); omp != 0 {
		h.lowerMin(omp)
	}
	h.raiseMax(other.max.Load())
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	for i := range h.buckets {
		h.buckets[i].Add(other.buckets[i].Load())
	}
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the log2 buckets,
// interpolating linearly inside the bucket the rank lands in. Bucket i
// holds observations in [2^(i-1), 2^i), so the estimate is exact to
// within a factor of two — adequate for the p50/p95/p99 columns of
// sweep reports, where replica-to-replica spread dominates.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	max, min := h.max.Load(), int64(h.Min())
	rank := q * float64(h.count.Load())
	var seen float64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if seen+float64(n) >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - seen) / float64(n)
			v := float64(lo) + frac*float64(hi-lo)
			if v > float64(max) {
				v = float64(max)
			}
			if v < float64(min) {
				v = float64(min)
			}
			return sim.Duration(v)
		}
		seen += float64(n)
	}
	return sim.Duration(max)
}

// bucketBounds returns the value range [lo, hi) covered by log2 bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 1
	}
	return 1 << (i - 1), 1 << i
}

// Metrics is a registry of named counters and histograms. Instrument
// updates are atomic (parallel shard envs increment shared instruments
// concurrently), and the name→instrument maps are guarded by a
// read-write lock so instruments may also be created mid-run — a
// process launched into a running partition allocates its per-process
// counters while other shards execute. Kernels still pre-create their
// fixed-name instruments (the lock's fast path is a read lock, but
// setup-time creation keeps hot paths on cached handles). The nil
// *Metrics hands out nil (no-op) instruments, which is the cheap
// default the instrumentation relies on.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	c, ok := m.counters[name]
	m.mu.RUnlock()
	if ok {
		return c
	}
	m.mu.Lock()
	if c, ok = m.counters[name]; !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	m.mu.Unlock()
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	h, ok := m.hists[name]
	m.mu.RUnlock()
	if ok {
		return h
	}
	m.mu.Lock()
	if h, ok = m.hists[name]; !ok {
		h = &Histogram{}
		m.hists[name] = h
	}
	m.mu.Unlock()
	return h
}

// ProcKey derives the per-process variant of a metric name, e.g.
// ProcKey("unwanted_receives_total", 3) = "unwanted_receives_total{proc=3}".
func ProcKey(name string, proc int) string {
	return fmt.Sprintf("%s{proc=%d}", name, proc)
}

// Value returns the named counter's value without creating it.
func (m *Metrics) Value(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	return c.Value()
}

// ProcValue returns the per-process counter's value without creating it.
func (m *Metrics) ProcValue(name string, proc int) int64 {
	return m.Value(ProcKey(name, proc))
}

// SumPrefix sums every counter whose name starts with prefix — the way
// to aggregate a per-process metric across processes.
func (m *Metrics) SumPrefix(prefix string) int64 {
	if m == nil {
		return 0
	}
	var total int64
	m.mu.RLock()
	for name, c := range m.counters {
		if strings.HasPrefix(name, prefix) {
			total += c.n.Load()
		}
	}
	m.mu.RUnlock()
	return total
}

// Snapshot flattens the registry into name→value pairs: counters under
// their own names, histograms as name_count / name_sum_ns / name_max_ns.
// Iteration order is irrelevant (it is a map), but the content is
// deterministic for a deterministic run.
func (m *Metrics) Snapshot() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	out := make(map[string]int64, len(m.counters)+3*len(m.hists))
	for name, c := range m.counters {
		out[name] = c.n.Load()
	}
	for name, h := range m.hists {
		out[name+"_count"] = h.count.Load()
		out[name+"_sum_ns"] = h.sum.Load()
		out[name+"_max_ns"] = h.max.Load()
	}
	m.mu.RUnlock()
	return out
}

// Merge folds every counter and histogram of other into m, creating
// instruments on first sight: counters sum, histograms bucket-merge.
// Addition commutes, so merging replica registries in any order yields
// the same pooled registry — what lets a parallel sweep aggregate
// per-run metrics independently of worker scheduling. No-op on a nil
// receiver or other.
func (m *Metrics) Merge(other *Metrics) {
	if m == nil || other == nil {
		return
	}
	other.mu.RLock()
	counters, hists := collect(other)
	other.mu.RUnlock()
	for _, e := range counters {
		m.Counter(e.name).Add(e.c.n.Load())
	}
	for _, e := range hists {
		m.Histogram(e.name).Merge(e.h)
	}
}

type counterEntry struct {
	name string
	c    *Counter
}

type histEntry struct {
	name string
	h    *Histogram
}

// collect snapshots the registry's entries (caller holds the lock) so
// merges never hold two registry locks at once.
func collect(m *Metrics) ([]counterEntry, []histEntry) {
	cs := make([]counterEntry, 0, len(m.counters))
	for name, c := range m.counters {
		cs = append(cs, counterEntry{name, c})
	}
	hs := make([]histEntry, 0, len(m.hists))
	for name, h := range m.hists {
		hs = append(hs, histEntry{name, h})
	}
	return cs, hs
}

// MergePrefixed folds other into m like Merge, but files every
// instrument under "prefix/name". A keyed result table uses this to
// pool per-cell registries into one table-wide registry without
// collapsing cells into each other: cell keys become name prefixes, so
// the pooled registry answers both "total kernel messages in cell X"
// (Value("X/kernel_messages_total")) and, via SumPrefix, cross-cell
// rollups. No-op on a nil receiver or other.
func (m *Metrics) MergePrefixed(prefix string, other *Metrics) {
	if m == nil || other == nil {
		return
	}
	other.mu.RLock()
	counters, hists := collect(other)
	other.mu.RUnlock()
	for _, e := range counters {
		m.Counter(prefix + "/" + e.name).Add(e.c.n.Load())
	}
	for _, e := range hists {
		m.Histogram(prefix + "/" + e.name).Merge(e.h)
	}
}

// Names returns every counter and histogram name, sorted (for render
// and debugging).
func (m *Metrics) Names() []string {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.counters)+len(m.hists))
	for n := range m.counters {
		names = append(names, n)
	}
	for n := range m.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
