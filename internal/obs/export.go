package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// TextExporter renders events as human-readable lines in the same
// layout as sim.WriterTracer, so typed kernel events and free-text
// annotations interleave cleanly in one terminal stream.
type TextExporter struct {
	W io.Writer
}

// Event implements Sink.
func (t *TextExporter) Event(ev Event) {
	src := ev.Src
	if src == "" {
		src = ev.Substrate
	}
	fmt.Fprintf(t.W, "%12v  %-12s %s\n", ev.At, src, ev.text())
}

// JSONLExporter writes one JSON object per event per line, directly to
// W as events arrive — it never accumulates the whole stream, so
// million-event runs export in constant memory. Field order is fixed by
// the Event struct, so a deterministic run produces a byte-identical
// stream.
//
// When W exposes a Flush method — bufio.Writer's Flush() error, or
// http.ResponseWriter's Flush() via the http.Flusher interface — the
// exporter calls it after every event, so a consumer tailing the stream
// (lynxd's chunked job-stream endpoint, lynxtrace piped into a pager on
// a long run) sees each event as soon as it is recorded rather than at
// buffer boundaries.
type JSONLExporter struct {
	W io.Writer
	// Err records the first write or flush error; once set, subsequent
	// events are dropped (the stream is broken — typically the consumer
	// hung up).
	Err error

	buf []byte
}

// flusher matches bufio.Writer-style sinks; httpFlusher matches
// http.Flusher without importing net/http.
type flusher interface{ Flush() error }
type httpFlusher interface{ Flush() }

// Event implements Sink.
func (j *JSONLExporter) Event(ev Event) {
	if j.Err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	// Reuse one scratch buffer for the line so steady-state export does
	// not allocate beyond what encoding/json needs.
	j.buf = append(j.buf[:0], b...)
	j.buf = append(j.buf, '\n')
	if _, err := j.W.Write(j.buf); err != nil {
		j.Err = err
		return
	}
	j.Err = j.Flush()
}

// Flush forwards to W's Flush method when it has one (no-op otherwise),
// pushing buffered bytes to the consumer incrementally.
func (j *JSONLExporter) Flush() error {
	switch w := j.W.(type) {
	case flusher:
		return w.Flush()
	case httpFlusher:
		w.Flush()
	}
	return nil
}

// ChromeExporter buffers events and renders them as Chrome
// trace-event JSON (the "JSON Array Format"), loadable in Perfetto or
// chrome://tracing. Every event becomes a thread-scoped instant event;
// virtual nanoseconds map onto trace microseconds.
type ChromeExporter struct {
	events []Event
}

// NewChromeExporter creates an empty exporter.
func NewChromeExporter() *ChromeExporter { return &ChromeExporter{} }

// Event implements Sink.
func (c *ChromeExporter) Event(ev Event) { c.events = append(c.events, ev) }

// chromeEvent is one entry in the traceEvents array. Args is a map, but
// encoding/json sorts map keys, so output stays deterministic.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s"`
	Args  map[string]any `json:"args,omitempty"`
}

// newChromeEvent converts one typed event into its trace-array entry
// (shared by the buffered and streaming Chrome exporters).
func newChromeEvent(ev Event) chromeEvent {
	ce := chromeEvent{
		Name:  ev.Kind.String(),
		Cat:   ev.Substrate,
		Ph:    "i",
		Ts:    float64(ev.At) / 1e3, // virtual ns -> trace µs
		Pid:   ev.Proc,
		Tid:   ev.Thread,
		Scope: "t",
	}
	if ce.Cat == "" {
		ce.Cat = "trace"
	}
	args := make(map[string]any)
	if ev.Src != "" {
		args["src"] = ev.Src
	}
	if ev.Peer != 0 {
		args["peer"] = ev.Peer
	}
	if ev.Link != 0 {
		args["link"] = ev.Link
	}
	if ev.Seq != 0 {
		args["seq"] = ev.Seq
	}
	if ev.Bytes != 0 {
		args["bytes"] = ev.Bytes
	}
	if ev.Wait != 0 {
		args["wait_ns"] = int64(ev.Wait)
	}
	if ev.Detail != "" {
		args["detail"] = ev.Detail
	}
	if len(args) > 0 {
		ce.Args = args
	}
	return ce
}

// Flush writes the buffered events as a complete Chrome trace JSON
// document and clears the buffer.
func (c *ChromeExporter) Flush(w io.Writer) error {
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: make([]chromeEvent, 0, len(c.events))}
	for _, ev := range c.events {
		doc.TraceEvents = append(doc.TraceEvents, newChromeEvent(ev))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	c.events = c.events[:0]
	return nil
}

// ChromeStream renders events as Chrome trace JSON incrementally: each
// event is written (and flushed, when W supports it) as it arrives, so
// a long run streams in constant memory — the flight recorder's
// long-run export path. The JSON Array Format tolerates a missing
// closing bracket, so even an aborted stream loads in Perfetto; Close
// writes the proper terminator.
type ChromeStream struct {
	W io.Writer
	// Err records the first write error; once set, events are dropped.
	Err error

	started bool
}

// NewChromeStream creates a streaming exporter over w.
func NewChromeStream(w io.Writer) *ChromeStream { return &ChromeStream{W: w} }

// Event implements Sink.
func (c *ChromeStream) Event(ev Event) {
	if c.Err != nil {
		return
	}
	sep := ",\n"
	if !c.started {
		sep = "{\"traceEvents\":[\n"
		c.started = true
	}
	b, err := json.Marshal(newChromeEvent(ev))
	if err != nil {
		return
	}
	if _, err := io.WriteString(c.W, sep); err != nil {
		c.Err = err
		return
	}
	if _, err := c.W.Write(b); err != nil {
		c.Err = err
		return
	}
	switch w := c.W.(type) {
	case flusher:
		c.Err = w.Flush()
	case httpFlusher:
		w.Flush()
	}
}

// Close terminates the JSON array. Safe on an empty stream.
func (c *ChromeStream) Close() error {
	if c.Err != nil {
		return c.Err
	}
	doc := "{\"traceEvents\":[]}\n"
	if c.started {
		doc = "\n]}\n"
	}
	if _, err := io.WriteString(c.W, doc); err != nil {
		c.Err = err
	}
	return c.Err
}

// RecordingSink keeps events in memory for test assertions.
type RecordingSink struct {
	Events []Event
}

// Event implements Sink.
func (r *RecordingSink) Event(ev Event) { r.Events = append(r.Events, ev) }
