package obs

import "repro/internal/sim"

// MultiTracer fans one sim.Env tracer slot out to several tracers, so
// a terminal WriterTracer, a RecordingTracer, and a TraceAdapter can
// all watch the same run. It implements sim.Tracer.
type MultiTracer struct {
	Tracers []sim.Tracer
}

// NewMultiTracer builds a fan-out over the given tracers (nils are
// dropped).
func NewMultiTracer(ts ...sim.Tracer) *MultiTracer {
	m := &MultiTracer{}
	for _, t := range ts {
		m.Add(t)
	}
	return m
}

// Add appends another tracer to the fan-out.
func (m *MultiTracer) Add(t sim.Tracer) {
	if t != nil {
		m.Tracers = append(m.Tracers, t)
	}
}

// Resume implements sim.Tracer.
func (m *MultiTracer) Resume(now sim.Time, pid int, name string) {
	for _, t := range m.Tracers {
		t.Resume(now, pid, name)
	}
}

// Event implements sim.Tracer.
func (m *MultiTracer) Event(now sim.Time, source, msg string) {
	for _, t := range m.Tracers {
		t.Event(now, source, msg)
	}
}

// TraceAdapter bridges free-text sim.Env.Trace annotations into a
// Recorder as mark events, so user commentary lands in the same JSONL
// or Chrome stream as the typed kernel events. It implements
// sim.Tracer; install it (alone or inside a MultiTracer) with
// Env.SetTracer.
type TraceAdapter struct {
	R *Recorder
}

// Resume implements sim.Tracer (scheduling is not exported).
func (a *TraceAdapter) Resume(sim.Time, int, string) {}

// Event implements sim.Tracer. The event is stamped with the tracer's
// own timestamp (not the recorder env's clock): replayed parallel-run
// trace callbacks arrive after the env clock has moved on.
func (a *TraceAdapter) Event(now sim.Time, source, msg string) {
	a.R.EmitAt(now, Event{Kind: KindMark, Src: source, Detail: msg})
}
