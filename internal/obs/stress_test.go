package obs

import (
	"sync"
	"testing"

	"repro/internal/sim"
)

// stressValues is the deterministic observation set the stress tests
// shard: a spread of magnitudes so min/max/bucket paths all engage,
// including repeated extrema so the CAS loops race on equal values.
func stressValues() []sim.Duration {
	vals := make([]sim.Duration, 0, 4096)
	v := uint64(12345)
	for i := 0; i < 4096; i++ {
		// xorshift keeps the set seed-free but fixed across runs.
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
		vals = append(vals, sim.Duration(v%1_000_000))
	}
	// Pin exact extrema at known positions in several shards.
	vals[0], vals[1000], vals[2000] = 0, 0, 2_000_000
	vals[3000] = 2_000_000
	return vals
}

// TestMetricsConcurrentStress hammers one shared Counter and one shared
// Histogram from many goroutines — the parallel-partition pattern,
// where shard envs of one simulation observe into the same registry
// concurrently — and checks the result against a serially-built
// reference. Increments commute and the extrema CAS loops are monotone,
// so every interleaving must land the identical state. Run under -race
// (make check does) this also proves the atomics are data-race clean.
func TestMetricsConcurrentStress(t *testing.T) {
	vals := stressValues()
	const workers = 8

	ref := &Histogram{}
	for _, v := range vals {
		ref.Observe(v)
	}

	shared := &Histogram{}
	cnt := &Counter{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(vals); i += workers {
				shared.Observe(vals[i])
				cnt.Inc()
			}
		}(w)
	}
	wg.Wait()

	if cnt.Value() != int64(len(vals)) {
		t.Errorf("counter = %d, want %d", cnt.Value(), len(vals))
	}
	assertHistogramsEqual(t, "concurrent shared", shared, ref)
}

// TestHistogramShardMergeMatchesSerial builds one histogram per shard
// concurrently, merges them, and checks the merged state is exactly the
// serial reference: Merge's adds and widening CAS extrema make the
// shard decomposition invisible. Counters merge through the same Add
// path, asserted alongside.
func TestHistogramShardMergeMatchesSerial(t *testing.T) {
	vals := stressValues()
	const shards = 4

	ref := &Histogram{}
	for _, v := range vals {
		ref.Observe(v)
	}

	parts := make([]*Histogram, shards)
	counts := make([]*Counter, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		parts[s], counts[s] = &Histogram{}, &Counter{}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < len(vals); i += shards {
				parts[s].Observe(vals[i])
				counts[s].Inc()
			}
		}(s)
	}
	wg.Wait()

	merged := &Histogram{}
	total := &Counter{}
	for s := 0; s < shards; s++ {
		merged.Merge(parts[s])
		total.Add(counts[s].Value())
	}
	if total.Value() != int64(len(vals)) {
		t.Errorf("merged counter = %d, want %d", total.Value(), len(vals))
	}
	assertHistogramsEqual(t, "shard-merged", merged, ref)
}

func assertHistogramsEqual(t *testing.T, label string, got, want *Histogram) {
	t.Helper()
	if got.Count() != want.Count() {
		t.Errorf("%s: count = %d, want %d", label, got.Count(), want.Count())
	}
	if got.Sum() != want.Sum() {
		t.Errorf("%s: sum = %d, want %d", label, got.Sum(), want.Sum())
	}
	if got.Min() != want.Min() {
		t.Errorf("%s: min = %d, want %d", label, got.Min(), want.Min())
	}
	if got.Max() != want.Max() {
		t.Errorf("%s: max = %d, want %d", label, got.Max(), want.Max())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if g, w := got.Quantile(q), want.Quantile(q); g != w {
			t.Errorf("%s: q%.0f = %d, want %d", label, q*100, g, w)
		}
	}
}
