package obs

import (
	"testing"

	"repro/internal/sim"
)

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for _, d := range []sim.Duration{10, 100, 1000} {
		a.Observe(d)
	}
	for _, d := range []sim.Duration{5, 50000} {
		b.Observe(d)
	}
	a.Merge(&b)
	if a.Count() != 5 {
		t.Fatalf("merged count = %d, want 5", a.Count())
	}
	if a.Sum() != 10+100+1000+5+50000 {
		t.Fatalf("merged sum = %d", a.Sum())
	}
	if a.Min() != 5 || a.Max() != 50000 {
		t.Fatalf("merged extrema = [%d, %d], want [5, 50000]", a.Min(), a.Max())
	}
	// Merging an empty histogram changes nothing, including extrema.
	var empty Histogram
	c0, s0, mn0, mx0 := a.Count(), a.Sum(), a.Min(), a.Max()
	a.Merge(&empty)
	if a.Count() != c0 || a.Sum() != s0 || a.Min() != mn0 || a.Max() != mx0 {
		t.Fatal("merging an empty histogram changed the receiver")
	}
	// Merging INTO an empty histogram copies the source exactly.
	var c Histogram
	c.Merge(&b)
	if c.Count() != b.Count() || c.Min() != b.Min() || c.Max() != b.Max() || c.Sum() != b.Sum() {
		t.Fatalf("merge into empty: got count=%d min=%d max=%d", c.Count(), c.Min(), c.Max())
	}
	// Nil receiver and nil argument are no-ops, not panics.
	var nilH *Histogram
	nilH.Merge(&b)
	a.Merge(nil)
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 100 observations of exactly 1000ns: every quantile lands in the
	// same bucket and is clamped into [min, max] = [1000, 1000].
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got != 1000 {
			t.Fatalf("Quantile(%.2f) = %d, want 1000", q, got)
		}
	}
	// A bimodal series: 90 fast (≈1µs), 10 slow (≈1ms). p50 must sit in
	// the fast mode, p99 in the slow mode (bucket resolution: factor 2).
	var bi Histogram
	for i := 0; i < 90; i++ {
		bi.Observe(sim.Duration(1000))
	}
	for i := 0; i < 10; i++ {
		bi.Observe(sim.Duration(1000000))
	}
	p50, p99 := bi.Quantile(0.50), bi.Quantile(0.99)
	if p50 < 512 || p50 > 2048 {
		t.Fatalf("p50 = %d, want ≈1000 (within its log2 bucket)", p50)
	}
	if p99 < 500000 || p99 > 1000000 {
		t.Fatalf("p99 = %d, want ≈1000000 (within its log2 bucket, clamped to max)", p99)
	}
}

// Quantile's edge cases: the empty histogram reports 0 at every q, a
// single sample is its own quantile for every q (including the q=0 and
// q=1 endpoints, where bucket interpolation is clamped to the observed
// extrema), and out-of-range q values are clamped rather than wrapped.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty.Quantile(%v) = %d, want 0", q, got)
		}
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram Quantile should be 0")
	}
	var single Histogram
	single.Observe(1234567)
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if got := single.Quantile(q); got != 1234567 {
			t.Fatalf("single.Quantile(%v) = %d, want 1234567", q, got)
		}
	}
	if got := single.Quantile(-3); got != 1234567 {
		t.Fatalf("Quantile(-3) = %d, want clamp to q=0", got)
	}
	if got := single.Quantile(42); got != 1234567 {
		t.Fatalf("Quantile(42) = %d, want clamp to q=1", got)
	}
	// Two distinct samples: q=0 pins the min, q=1 pins the max.
	var two Histogram
	two.Observe(100)
	two.Observe(900000)
	if got := two.Quantile(0); got != 100 {
		t.Fatalf("two.Quantile(0) = %d, want min 100", got)
	}
	if got := two.Quantile(1); got != 900000 {
		t.Fatalf("two.Quantile(1) = %d, want max 900000", got)
	}
}

// MergePrefixed pools a registry under a key prefix: the table-keyed
// merge the grid runner uses to keep per-cell registries distinguishable
// inside one pooled registry.
func TestMetricsMergePrefixed(t *testing.T) {
	cell := NewMetrics()
	cell.Counter("kernel_messages_total").Add(12)
	cell.Histogram("queue_wait_ns").Observe(500)

	table := NewMetrics()
	table.MergePrefixed("substrate=soda/payload=1024", cell)
	table.MergePrefixed("substrate=soda/payload=4096", cell)

	if got := table.Value("substrate=soda/payload=1024/kernel_messages_total"); got != 12 {
		t.Fatalf("prefixed counter = %d, want 12", got)
	}
	if got := table.Histogram("substrate=soda/payload=4096/queue_wait_ns").Count(); got != 1 {
		t.Fatalf("prefixed histogram count = %d, want 1", got)
	}
	// Cross-cell rollup via the existing prefix-sum primitive.
	if got := table.SumPrefix("substrate=soda/"); got != 24 {
		t.Fatalf("rollup = %d, want 24", got)
	}
	// Unprefixed names must not exist: cells never collapse.
	if got := table.Value("kernel_messages_total"); got != 0 {
		t.Fatalf("unprefixed name leaked: %d", got)
	}
	// Nil safety.
	var nilM *Metrics
	nilM.MergePrefixed("k", cell)
	table.MergePrefixed("k", nil)
}

func TestMetricsMerge(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Counter("ops").Add(3)
	b.Counter("ops").Add(4)
	b.Counter("only_b").Add(9)
	a.Histogram("lat").Observe(100)
	b.Histogram("lat").Observe(300)
	b.Histogram("only_b_lat").Observe(7)

	a.Merge(b)
	if got := a.Value("ops"); got != 7 {
		t.Fatalf("ops = %d, want 7", got)
	}
	if got := a.Value("only_b"); got != 9 {
		t.Fatalf("only_b = %d, want 9", got)
	}
	if got := a.Histogram("lat").Count(); got != 2 {
		t.Fatalf("lat count = %d, want 2", got)
	}
	if got := a.Histogram("only_b_lat").Count(); got != 1 {
		t.Fatalf("only_b_lat count = %d, want 1", got)
	}
	// Merge order must not matter for the pooled result.
	x, y := NewMetrics(), NewMetrics()
	x.Counter("ops").Add(4)
	x.Counter("only_b").Add(9)
	x.Histogram("lat").Observe(300)
	y.Counter("ops").Add(3)
	y.Histogram("lat").Observe(100)
	x.Merge(y)
	for k, v := range a.Snapshot() {
		if k == "only_b_lat_count" || k == "only_b_lat_sum_ns" || k == "only_b_lat_max_ns" {
			continue
		}
		if x.Snapshot()[k] != v {
			t.Fatalf("merge not commutative at %s: %d vs %d", k, x.Snapshot()[k], v)
		}
	}
	// Nil safety.
	var nilM *Metrics
	nilM.Merge(a)
	a.Merge(nil)
}
