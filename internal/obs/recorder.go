package obs

import "repro/internal/sim"

// Sink consumes typed events. Exporters implement it; a Recorder fans
// each emitted event out to every attached sink.
type Sink interface {
	Event(ev Event)
}

// Recorder ties a metrics registry and a set of event sinks to one
// simulation environment. Each kernel owns one (created in its
// constructor), the kernel's bindings share it, and lynx.System exposes
// the active one via Obs(). With no sinks attached — the default — the
// event path costs one nil/len check and the metrics still count, so
// instrumented hot paths stay cheap.
//
// The nil *Recorder is valid everywhere: Emit is a no-op and Metrics
// returns the nil (no-op) registry.
type Recorder struct {
	env   *sim.Env
	sub   string
	m     *Metrics
	sinks []Sink
}

// NewRecorder creates a recorder for the given substrate label with a
// fresh metrics registry and no sinks.
func NewRecorder(env *sim.Env, substrate string) *Recorder {
	return &Recorder{env: env, sub: substrate, m: NewMetrics()}
}

// Metrics returns the recorder's registry (nil-safe).
func (r *Recorder) Metrics() *Metrics {
	if r == nil {
		return nil
	}
	return r.m
}

// Substrate returns the substrate label.
func (r *Recorder) Substrate() string {
	if r == nil {
		return ""
	}
	return r.sub
}

// Attach adds a sink; every subsequent event goes to it.
func (r *Recorder) Attach(s Sink) {
	if r != nil && s != nil {
		r.sinks = append(r.sinks, s)
	}
}

// Active reports whether any sink is attached — the gate instrumented
// code checks before building an Event.
func (r *Recorder) Active() bool { return r != nil && len(r.sinks) > 0 }

// DetailHinter is an optional Sink refinement: a sink that discards
// some events' Detail strings (a counters-only or sampled flight
// recorder) reports whether the NEXT event's Detail will be kept, so
// instrumented sites can skip fmt work nobody will ever read.
type DetailHinter interface {
	WantDetail() bool
}

// WantDetail reports whether any attached sink will keep the next
// event's Detail string. Sites check it (after Active) around Detail
// construction only — the event itself is still emitted either way.
// The "next event" prediction is exact because delivery is serial and
// a site emits immediately after the check, with no simulation step in
// between. Under sequenced (parallel-replay) delivery events are
// buffered and delivered later, so "next" is unknowable at the call
// site — and racy to guess — hence always true there: parallel runs
// pay full Detail cost but stay byte-identical to serial output.
func (r *Recorder) WantDetail() bool {
	if !r.Active() {
		return false
	}
	if r.env != nil && (r.env.Sequencing() || r.env.ParallelRunning()) {
		// Sequencing: this recorder's own env is a shard mid-window.
		// ParallelRunning: the recorder holds the partitioned ROOT env
		// (kernel recorders do) while shard contexts call in — consulting
		// the hinters from concurrent shards would both mispredict and
		// data-race, so parallel runs always pay full Detail cost.
		return true
	}
	for _, s := range r.sinks {
		h, ok := s.(DetailHinter)
		if !ok || h.WantDetail() {
			return true
		}
	}
	return false
}

// Emit stamps the event with the current virtual time and the
// recorder's substrate, then fans it out. No-op when inactive.
func (r *Recorder) Emit(ev Event) {
	if !r.Active() { // also guards the nil receiver before touching r.env
		return
	}
	r.EmitEnv(r.env, ev)
}

// EmitEnv is Emit reading the clock of env instead of the recorder's
// own env. Instrumented code executing on a shard env of a parallel
// partition emits through the shard (whose clock is the one advancing);
// the event is then sequenced into the shard's merge log so sink output
// is byte-identical to the serial run at any worker count.
func (r *Recorder) EmitEnv(env *sim.Env, ev Event) {
	if !r.Active() {
		return
	}
	ev.At = env.Now()
	if ev.Substrate == "" {
		ev.Substrate = r.sub
	}
	if env.Sequencing() {
		env.Sequenced(func() { r.deliver(ev) })
		return
	}
	r.deliver(ev)
}

// EmitAt is Emit with an explicit timestamp, for sinks fed from replayed
// trace callbacks whose env clock no longer matches the event.
func (r *Recorder) EmitAt(at sim.Time, ev Event) {
	if !r.Active() {
		return
	}
	ev.At = at
	if ev.Substrate == "" {
		ev.Substrate = r.sub
	}
	r.deliver(ev)
}

func (r *Recorder) deliver(ev Event) {
	for _, s := range r.sinks {
		s.Event(ev)
	}
}

// Counter is shorthand for Metrics().Counter(name).
func (r *Recorder) Counter(name string) *Counter { return r.Metrics().Counter(name) }

// ProcCounter returns the per-process variant of a counter.
func (r *Recorder) ProcCounter(name string, proc int) *Counter {
	return r.Metrics().Counter(ProcKey(name, proc))
}

// Histogram is shorthand for Metrics().Histogram(name).
func (r *Recorder) Histogram(name string) *Histogram { return r.Metrics().Histogram(name) }
