package chrysalis

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/calib"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func newTestKernel() (*sim.Env, *Kernel) {
	env := sim.NewEnv(1)
	k := NewKernel(env, netsim.NewBackplane(), calib.DefaultChrysalis())
	return env, k
}

func TestObjectAllocMapUnmap(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("x", func(p *sim.Proc) {
		o := a.AllocObject(p, 128)
		if refs, ok := k.Refs(o); !ok || refs != 1 {
			t.Fatalf("refs after alloc: %d %v", refs, ok)
		}
		if st := b.Map(p, o); st != OK {
			t.Fatalf("Map: %v", st)
		}
		if refs, _ := k.Refs(o); refs != 2 {
			t.Fatalf("refs after map: %d", refs)
		}
		// Double map is idempotent.
		if st := b.Map(p, o); st != OK {
			t.Fatalf("re-Map: %v", st)
		}
		if refs, _ := k.Refs(o); refs != 2 {
			t.Fatalf("refs after double map: %d", refs)
		}
		if st := b.Unmap(p, o); st != OK {
			t.Fatalf("Unmap: %v", st)
		}
		if st := b.Unmap(p, o); st != NotMapped {
			t.Fatalf("double Unmap: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReclamationAtZeroRefs(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("x", func(p *sim.Proc) {
		o := a.AllocObject(p, 64)
		b.Map(p, o)
		a.FreeWhenUnreferenced(p, o)
		a.Unmap(p, o)
		if _, ok := k.Refs(o); !ok {
			t.Fatal("reclaimed while still mapped by b")
		}
		b.Unmap(p, o)
		if _, ok := k.Refs(o); ok {
			t.Fatal("not reclaimed at zero refs")
		}
		if st := b.Map(p, o); st != NoSuchObject {
			t.Fatalf("Map after reclaim: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Stats().Reclaimed != 1 {
		t.Fatalf("reclaimed = %d", k.Stats().Reclaimed)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	env.Spawn("x", func(p *sim.Proc) {
		o := a.AllocObject(p, 32)
		if st := a.WriteBytes(p, o, 4, []byte("hello")); st != OK {
			t.Fatalf("WriteBytes: %v", st)
		}
		got, st := a.ReadBytes(p, o, 4, 5)
		if st != OK || !bytes.Equal(got, []byte("hello")) {
			t.Fatalf("ReadBytes: %v %q", st, got)
		}
		if st := a.WriteBytes(p, o, 30, []byte("xyz")); st != BadAccess {
			t.Fatalf("overflow write: %v", st)
		}
		if _, st := a.ReadBytes(p, o, -1, 2); st != BadAccess {
			t.Fatalf("negative read: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmappedAccessFails(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("x", func(p *sim.Proc) {
		o := a.AllocObject(p, 32)
		if st := b.WriteBytes(p, o, 0, []byte("no")); st != NotMapped {
			t.Fatalf("unmapped write: %v", st)
		}
		if _, st := b.Flag16(p, o, 0); st != NotMapped {
			t.Fatalf("unmapped flag read: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFlag16Atomic(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	env.Spawn("x", func(p *sim.Proc) {
		o := a.AllocObject(p, 8)
		old, st := a.SetFlag16(p, o, 0, 0xBEEF)
		if st != OK || old != 0 {
			t.Fatalf("SetFlag16: %v old=%x", st, old)
		}
		v, st := a.Flag16(p, o, 0)
		if st != OK || v != 0xBEEF {
			t.Fatalf("Flag16: %v %x", st, v)
		}
		old, _ = a.SetFlag16(p, o, 0, 0x1)
		if old != 0xBEEF {
			t.Fatalf("previous value = %x", old)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWrite32TornRead(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	// Reader on the same node: no backplane charge, so its read lands
	// inside the writer's torn window deterministically.
	b := k.NewProcess(0)
	env.Spawn("setup", func(p *sim.Proc) {
		o := a.AllocObject(p, 8)
		b.Map(p, o)
		a.Write32(p, o, 0, 0xAAAA_BBBB)
		env.Spawn("writer", func(pw *sim.Proc) {
			a.Write32(pw, o, 0, 0x1111_2222)
		})
		env.Spawn("reader", func(pr *sim.Proc) {
			// Land inside the torn window: after the low half, before the
			// high half.
			v, st := b.Read32(pr, o, 0)
			if st != OK {
				t.Errorf("Read32: %v", st)
			}
			// The reader raced the writer; it must see either the old
			// value, the new value, or the torn mix (new low, old high).
			switch v {
			case 0xAAAA_BBBB, 0x1111_2222, 0xAAAA_2222:
			default:
				t.Errorf("impossible read %x", v)
			}
		})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Stats().TornReads == 0 {
		t.Fatal("reader did not land in the torn window (timing drifted)")
	}
}

func TestEventBlockBasics(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("owner", func(p *sim.Proc) {
		ev := a.NewEvent(p)
		env.Spawn("poster", func(pb *sim.Proc) {
			pb.Delay(sim.Millisecond)
			if st := b.EventPost(pb, ev, 42); st != OK {
				t.Errorf("EventPost: %v", st)
			}
		})
		v, st := a.EventWait(p, ev)
		if st != OK || v != 42 {
			t.Errorf("EventWait: %v %d", st, v)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventPostBeforeWait(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	env.Spawn("x", func(p *sim.Proc) {
		ev := a.NewEvent(p)
		a.EventPost(p, ev, 7)
		v, st := a.EventWait(p, ev)
		if st != OK || v != 7 {
			t.Fatalf("EventWait: %v %d", st, v)
		}
		if k.EventPosted(ev) {
			t.Fatal("event still posted after wait")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventOnlyOwnerWaits(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("x", func(p *sim.Proc) {
		ev := a.NewEvent(p)
		if _, st := b.EventWait(p, ev); st != NotOwner {
			t.Fatalf("non-owner wait: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventOverPost(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	env.Spawn("x", func(p *sim.Proc) {
		ev := a.NewEvent(p)
		if st := a.EventPost(p, ev, 1); st != OK {
			t.Fatalf("first post: %v", st)
		}
		if st := a.EventPost(p, ev, 2); st != OverPost {
			t.Fatalf("second post: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDualQueueDataMode(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	env.Spawn("x", func(p *sim.Proc) {
		q := a.NewDualQueue(p, 4)
		for i := uint32(1); i <= 4; i++ {
			if st := a.Enqueue(p, q, i); st != OK {
				t.Fatalf("enqueue %d: %v", i, st)
			}
		}
		if st := a.Enqueue(p, q, 5); st != QueueFull {
			t.Fatalf("overfull enqueue: %v", st)
		}
		ev := a.NewEvent(p)
		for i := uint32(1); i <= 4; i++ {
			v, ok, st := a.Dequeue(p, q, ev)
			if st != OK || !ok || v != i {
				t.Fatalf("dequeue: %v %v %d, want %d", st, ok, v, i)
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDualQueueFlipsToEventMode(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("consumer", func(p *sim.Proc) {
		q := a.NewDualQueue(p, 8)
		ev := a.NewEvent(p)
		// Empty: dequeue enqueues our event name.
		v, ok, st := a.Dequeue(p, q, ev)
		if st != OK || ok {
			t.Fatalf("dequeue on empty: %v %v %d", st, ok, v)
		}
		env.Spawn("producer", func(pb *sim.Proc) {
			pb.Delay(sim.Millisecond)
			// Queue is in event mode: this posts the event instead of
			// buffering.
			if st := b.Enqueue(pb, q, 99); st != OK {
				t.Errorf("enqueue: %v", st)
			}
			if k.QueueLen(q) != 0 {
				t.Error("datum buffered instead of posted")
			}
		})
		got, st := a.EventWait(p, ev)
		if st != OK || got != 99 {
			t.Fatalf("EventWait: %v %d", st, got)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDualQueueMultipleWaiters(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	c := k.NewProcess(2)
	var got []uint32
	env.Spawn("setup", func(p *sim.Proc) {
		q := a.NewDualQueue(p, 8)
		for i, pr := range []*Process{b, c} {
			pr := pr
			delay := sim.Duration(i+1) * sim.Microsecond
			env.Spawn("waiter", func(pw *sim.Proc) {
				pw.Delay(delay)
				ev := pr.NewEvent(pw)
				if _, ok, _ := pr.Dequeue(pw, q, ev); !ok {
					v, _ := pr.EventWait(pw, ev)
					got = append(got, v)
				}
			})
		}
		env.Spawn("producer", func(pp *sim.Proc) {
			pp.Delay(10 * sim.Millisecond)
			a.Enqueue(pp, q, 1)
			a.Enqueue(pp, q, 2)
		})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// FIFO: first waiter gets first datum.
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestTerminateReleasesRefs(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("x", func(p *sim.Proc) {
		o := a.AllocObject(p, 16)
		b.Map(p, o)
		a.FreeWhenUnreferenced(p, o)
		b.Terminate()
		if refs, ok := k.Refs(o); !ok || refs != 1 {
			t.Fatalf("refs after b death: %d %v", refs, ok)
		}
		a.Terminate()
		if _, ok := k.Refs(o); ok {
			t.Fatal("object survived both owners")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTuneFactorScalesFixedCosts(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	var base, tuned sim.Duration
	env.Spawn("x", func(p *sim.Proc) {
		o := a.AllocObject(p, 16)
		t0 := p.Now()
		a.SetFlag16(p, o, 0, 1)
		base = sim.Duration(p.Now() - t0)
		k.TuneFactor = calib.ChrysalisTunedFactor
		t1 := p.Now()
		a.SetFlag16(p, o, 0, 2)
		tuned = sim.Duration(p.Now() - t1)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	ratio := float64(tuned) / float64(base)
	if ratio < 0.6 || ratio > 0.7 {
		t.Fatalf("tuned/base = %.2f, want ≈ %.2f", ratio, calib.ChrysalisTunedFactor)
	}
}

// Property: flag words set then read return the same value for any
// offset/value combination.
func TestFlagRoundTripProperty(t *testing.T) {
	f := func(offRaw uint8, v uint16) bool {
		env, k := newTestKernel()
		a := k.NewProcess(0)
		ok := true
		env.Spawn("x", func(p *sim.Proc) {
			o := a.AllocObject(p, 64)
			off := int(offRaw) % 62
			a.SetFlag16(p, o, off, v)
			got, st := a.Flag16(p, o, off)
			ok = st == OK && got == v
		})
		if err := env.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: dual queue preserves FIFO order for any data sequence that
// fits.
func TestDualQueueFIFOProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) > 64 {
			vals = vals[:64]
		}
		env, k := newTestKernel()
		a := k.NewProcess(0)
		ok := true
		env.Spawn("x", func(p *sim.Proc) {
			q := a.NewDualQueue(p, 64)
			ev := a.NewEvent(p)
			for _, v := range vals {
				if st := a.Enqueue(p, q, v); st != OK {
					ok = false
					return
				}
			}
			for _, want := range vals {
				v, got, st := a.Dequeue(p, q, ev)
				if st != OK || !got || v != want {
					ok = false
					return
				}
			}
		})
		if err := env.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
