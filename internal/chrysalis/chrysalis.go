// Package chrysalis reimplements the BBN Butterfly's Chrysalis operating
// system primitives as described in §5 of the paper, on the sim/netsim
// substrate.
//
// Chrysalis is the paper's lowest-level interface: it provides no
// messages at all. Its (largely microcoded) abstractions are:
//
//   - memory objects, mappable into the address spaces of arbitrarily
//     many processes, with kernel reference counts and reclamation;
//   - event blocks: binary semaphores whose V carries a 32-bit datum
//     returned by a subsequent P; only the owner may wait, but any
//     process that knows the name may post;
//   - dual queues: bounded buffers of 32-bit data that, once drained,
//     flip into queues of event-block names — a dequeue on an empty
//     queue enqueues the caller's event block, and an enqueue on a queue
//     of event names posts the oldest event instead of buffering.
//
// Atomic operations on 16-bit quantities are microcoded and cheap;
// atomic updates wider than 16 bits are costly, so wide writes are
// non-atomic. The simulation makes the resulting torn-read window real:
// Write32 writes two halves separated by virtual time, and a concurrent
// Read32 can observe the mix, exactly the hazard §5.2 tiptoes around
// when a moved link's dual-queue name is updated.
package chrysalis

import (
	"fmt"
	"sort"

	"repro/internal/calib"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Status is the result of a Chrysalis call.
type Status int

// Call status codes.
const (
	OK Status = iota
	// NoSuchObject: the name denotes no live memory object.
	NoSuchObject
	// NotMapped: the process has not mapped the object.
	NotMapped
	// NotOwner: only the owner may wait on an event block.
	NotOwner
	// OverPost: V on an already-posted event block.
	OverPost
	// QueueFull: the dual queue's data buffer is full.
	QueueFull
	// NoSuchEvent: the name denotes no live event block.
	NoSuchEvent
	// NoSuchQueue: the name denotes no live dual queue.
	NoSuchQueue
	// BadAccess: out-of-range object offset.
	BadAccess
)

func (s Status) String() string {
	switch s {
	case OK:
		return "OK"
	case NoSuchObject:
		return "NO_SUCH_OBJECT"
	case NotMapped:
		return "NOT_MAPPED"
	case NotOwner:
		return "NOT_OWNER"
	case OverPost:
		return "OVER_POST"
	case QueueFull:
		return "QUEUE_FULL"
	case NoSuchEvent:
		return "NO_SUCH_EVENT"
	case NoSuchQueue:
		return "NO_SUCH_QUEUE"
	case BadAccess:
		return "BAD_ACCESS"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ObjName is the address-space-independent name of a memory object.
type ObjName uint32

// EventName names an event block.
type EventName uint32

// QueueName names a dual queue. Queue names are wider than 16 bits,
// which is why the paper's link objects update them non-atomically.
type QueueName uint32

// Stats is a snapshot of kernel activity for the experiment harness,
// computed on demand from the kernel's obs metrics.
type Stats struct {
	AtomicOps  int64
	Enqueues   int64
	Dequeues   int64
	EventPosts int64
	EventWaits int64
	Maps       int64
	Unmaps     int64
	BytesMoved int64
	Reclaimed  int64
	TornReads  int64
}

// Kernel is the Chrysalis instance shared by all processors of one
// Butterfly machine.
//
// For conservative parallel runs the kernel is split into groups
// (Partition): each group owns a shard env, a backplane segment,
// strided allocators, and overlay maps for objects/events/queues
// created mid-run, so processes of different groups share no mutable
// kernel state. Structures allocated before partitioning stay in the
// shared boot maps, which are read-only from then on (reclaiming a
// boot object tombstones its record; the map entry survives). Kernel
// names are unforgeable capabilities handed over links, and links
// never cross partition groups, so no correct program reaches another
// group's structures.
type Kernel struct {
	env   *sim.Env
	bp    *netsim.Backplane
	costs calib.ChrysalisCosts

	// Boot maps; read-only once partitioned.
	objects map[ObjName]*memObject
	events  map[EventName]*eventBlock
	queues  map[QueueName]*dualQueue

	def    *kgroup   // the unpartitioned group (boot allocator)
	groups []*kgroup // non-nil after Partition

	rec *obs.Recorder
	// Cached counter handles: atomic flag ops are the hottest path in
	// the whole repo, so increments must not pay a registry probe.
	cAtomicOps, cEnqueues, cDequeues   *obs.Counter
	cEventPosts, cEventWaits           *obs.Counter
	cMaps, cUnmaps                     *obs.Counter
	cBytesMoved, cReclaimed, cTornRead *obs.Counter
	// TuneFactor scales fixed primitive costs (1.0 = paper's measured
	// system; calib.ChrysalisTunedFactor = with the optimizations §5.3
	// says were under development). It does not change per-byte costs.
	TuneFactor float64
}

// kgroup is one partition group of the kernel: the shard env its
// processes run on, the backplane segment their remote accesses
// charge, overlay maps for structures allocated mid-run, and strided
// id allocators whose output depends only on this group's own call
// order.
type kgroup struct {
	k   *Kernel
	idx int // -1 for the default (unpartitioned) group
	env *sim.Env
	bp  *netsim.Backplane

	objects map[ObjName]*memObject    // == k.objects for the default group
	events  map[EventName]*eventBlock // == k.events for the default group
	queues  map[QueueName]*dualQueue  // == k.queues for the default group

	nextID  uint32
	nextPID int
	stride  int
}

func (g *kgroup) newID() uint32 {
	id := g.nextID
	g.nextID += uint32(g.stride)
	return id
}

func (g *kgroup) findObj(name ObjName) (*memObject, bool) {
	if o, ok := g.objects[name]; ok {
		return o, !o.dead
	}
	if g.idx >= 0 {
		if o, ok := g.k.objects[name]; ok {
			return o, !o.dead
		}
	}
	return nil, false
}

func (g *kgroup) findEvent(name EventName) (*eventBlock, bool) {
	if ev, ok := g.events[name]; ok {
		return ev, true
	}
	if g.idx >= 0 {
		ev, ok := g.k.events[name]
		return ev, ok
	}
	return nil, false
}

func (g *kgroup) findQueue(name QueueName) (*dualQueue, bool) {
	if q, ok := g.queues[name]; ok {
		return q, true
	}
	if g.idx >= 0 {
		q, ok := g.k.queues[name]
		return q, ok
	}
	return nil, false
}

// NewKernel creates a Chrysalis kernel over the given backplane.
func NewKernel(env *sim.Env, bp *netsim.Backplane, costs calib.ChrysalisCosts) *Kernel {
	rec := obs.NewRecorder(env, "chrysalis")
	k := &Kernel{
		env:         env,
		bp:          bp,
		costs:       costs,
		objects:     make(map[ObjName]*memObject),
		events:      make(map[EventName]*eventBlock),
		queues:      make(map[QueueName]*dualQueue),
		rec:         rec,
		cAtomicOps:  rec.Counter(obs.MAtomicOps),
		cEnqueues:   rec.Counter(obs.MQueueEnqueues),
		cDequeues:   rec.Counter(obs.MQueueDequeues),
		cEventPosts: rec.Counter(obs.MEventPosts),
		cEventWaits: rec.Counter(obs.MEventWaits),
		cMaps:       rec.Counter(obs.MObjectMaps),
		cUnmaps:     rec.Counter(obs.MObjectUnmaps),
		cBytesMoved: rec.Counter(obs.MKernelBytes),
		cReclaimed:  rec.Counter(obs.MObjectsReclaimed),
		cTornRead:   rec.Counter(obs.MTornReads),
		TuneFactor:  1.0,
	}
	k.def = &kgroup{
		k: k, idx: -1, env: env, bp: bp,
		objects: k.objects, events: k.events, queues: k.queues,
		nextID: 1, nextPID: 1, stride: 1,
	}
	return k
}

// Partition splits the kernel into one group per shard env for a
// conservative parallel run: group i's processes run on envs[i] and
// charge remote accesses to bps[i] (its per-group backplane segment).
// Ids allocated from here on are strided per group, so mid-run
// allocation stays deterministic at any worker count. Call before the
// run starts, then AssignGroup every process.
func (k *Kernel) Partition(envs []*sim.Env, bps []*netsim.Backplane) {
	if len(envs) != len(bps) {
		panic("chrysalis: Partition needs one backplane segment per shard env")
	}
	if k.groups != nil {
		panic("chrysalis: Partition called twice")
	}
	stride := len(envs)
	k.groups = make([]*kgroup, stride)
	for i := range envs {
		k.groups[i] = &kgroup{
			k: k, idx: i, env: envs[i], bp: bps[i],
			objects: make(map[ObjName]*memObject),
			events:  make(map[EventName]*eventBlock),
			queues:  make(map[QueueName]*dualQueue),
			nextID:  k.def.nextID + uint32(i),
			nextPID: k.def.nextPID + i,
			stride:  stride,
		}
	}
}

// Env returns the simulation environment.
func (k *Kernel) Env() *sim.Env { return k.env }

// Obs returns the kernel's observability recorder; the binding shares
// it, and sinks attach to it.
func (k *Kernel) Obs() *obs.Recorder { return k.rec }

// Stats returns a snapshot of the kernel's counters.
func (k *Kernel) Stats() *Stats {
	return &Stats{
		AtomicOps:  k.cAtomicOps.Value(),
		Enqueues:   k.cEnqueues.Value(),
		Dequeues:   k.cDequeues.Value(),
		EventPosts: k.cEventPosts.Value(),
		EventWaits: k.cEventWaits.Value(),
		Maps:       k.cMaps.Value(),
		Unmaps:     k.cUnmaps.Value(),
		BytesMoved: k.cBytesMoved.Value(),
		Reclaimed:  k.cReclaimed.Value(),
		TornReads:  k.cTornRead.Value(),
	}
}

func (k *Kernel) cost(d sim.Duration) sim.Duration {
	return sim.Duration(float64(d) * k.TuneFactor)
}

// charge spends CPU on the calling simproc; calls made from scheduler
// context (boot wiring, notice pumps mid-callback) pass nil and are not
// charged.
func charge(p *sim.Proc, d sim.Duration) {
	if p != nil {
		p.Delay(d)
	}
}

// memObject is a kernel memory object.
type memObject struct {
	name ObjName
	data []byte
	// words shadows 16-bit atomic flags and 32-bit fields; both views
	// alias data.
	refs         int
	freeWhenZero bool
	// dead marks a reclaimed boot object: once the kernel is
	// partitioned the shared boot map is read-only, so reclamation
	// tombstones the record instead of deleting the entry.
	dead bool
	home netsim.NodeID // memory module holding the object
	// midWrite marks a 32-bit field currently half-written: offset -> old
	// high half. Read32 during the window returns the torn mix.
	midWrite map[int]uint16
}

// eventBlock is a binary semaphore with a 32-bit datum.
type eventBlock struct {
	name   EventName
	owner  *Process
	posted bool
	datum  uint32
	wq     *sim.WaitQueue
}

// dualQueue holds either data or event-block names.
type dualQueue struct {
	name     QueueName
	capacity int
	data     []uint32
	waiters  []EventName // event names enqueued by dequeues-on-empty
	dead     bool
}

// Process is a Chrysalis process: an address space plus owned event
// blocks.
type Process struct {
	k      *Kernel
	g      *kgroup
	id     int
	node   netsim.NodeID
	mapped map[ObjName]bool
	dead   bool
}

// NewProcess registers a process on the given node.
func (k *Kernel) NewProcess(node netsim.NodeID) *Process {
	return newProcessIn(k.def, node)
}

// NewProcessIn registers a process directly in partition group g: the
// home-group placement for processes launched after the run has
// started. Its id comes from the group's strided allocator.
func (k *Kernel) NewProcessIn(g int, node netsim.NodeID) *Process {
	return newProcessIn(k.groups[g], node)
}

func newProcessIn(g *kgroup, node netsim.NodeID) *Process {
	id := g.nextPID
	g.nextPID += g.stride
	return &Process{k: g.k, g: g, id: id, node: node, mapped: make(map[ObjName]bool)}
}

// AssignGroup moves a boot-registered process into partition group g.
// Call after Kernel.Partition, before the run starts.
func (pr *Process) AssignGroup(g int) { pr.g = pr.k.groups[g] }

// Group returns the index of the process's partition group (-1 when
// unpartitioned).
func (pr *Process) Group() int { return pr.g.idx }

// ID returns the process id.
func (pr *Process) ID() int { return pr.id }

// Node returns the processor node.
func (pr *Process) Node() netsim.NodeID { return pr.node }

// AllocObject creates a memory object of the given size, mapped into the
// caller's address space with reference count 1. The object's memory
// lives on the caller's node.
func (pr *Process) AllocObject(p *sim.Proc, size int) ObjName {
	charge(p, pr.k.cost(pr.k.costs.MapObject))
	name := ObjName(pr.g.newID())
	pr.g.objects[name] = &memObject{
		name:     name,
		data:     make([]byte, size),
		refs:     1,
		home:     pr.node,
		midWrite: make(map[int]uint16),
	}
	pr.mapped[name] = true
	pr.k.cMaps.Inc()
	return name
}

// Map maps the named object into the caller's address space,
// incrementing its reference count.
func (pr *Process) Map(p *sim.Proc, name ObjName) Status {
	charge(p, pr.k.cost(pr.k.costs.MapObject))
	o, ok := pr.g.findObj(name)
	if !ok {
		return NoSuchObject
	}
	if !pr.mapped[name] {
		o.refs++
		pr.mapped[name] = true
	}
	pr.k.cMaps.Inc()
	return OK
}

// Unmap removes the object from the caller's address space, decrementing
// the reference count and reclaiming the object if it hits zero with
// free-when-unreferenced set.
func (pr *Process) Unmap(p *sim.Proc, name ObjName) Status {
	if p != nil {
		charge(p, pr.k.cost(pr.k.costs.MapObject/2))
	}
	o, ok := pr.g.findObj(name)
	if !ok {
		return NoSuchObject
	}
	if !pr.mapped[name] {
		return NotMapped
	}
	delete(pr.mapped, name)
	o.refs--
	pr.k.cUnmaps.Inc()
	pr.g.maybeReclaim(o)
	return OK
}

// FreeWhenUnreferenced tells the kernel to reclaim the object when its
// reference count reaches zero.
func (pr *Process) FreeWhenUnreferenced(p *sim.Proc, name ObjName) Status {
	o, ok := pr.g.findObj(name)
	if !ok {
		return NoSuchObject
	}
	o.freeWhenZero = true
	pr.g.maybeReclaim(o)
	return OK
}

func (g *kgroup) maybeReclaim(o *memObject) {
	if o.refs <= 0 && o.freeWhenZero && !o.dead {
		o.dead = true
		if _, mine := g.objects[o.name]; mine {
			// The overlay (or the unpartitioned boot map) is private to
			// this group, so the entry itself can go; a boot object under
			// a partitioned kernel keeps its tombstoned entry instead.
			delete(g.objects, o.name)
		}
		k := g.k
		k.cReclaimed.Inc()
		if k.rec.Active() {
			k.rec.EmitEnv(g.env, obs.Event{
				Kind: obs.KindMark, Link: int(o.name), Detail: "object reclaimed",
			})
		}
	}
}

// Refs reports the object's reference count (tests and invariants).
func (k *Kernel) Refs(name ObjName) (int, bool) {
	o, ok := k.objects[name]
	if !ok || o.dead {
		return 0, false
	}
	return o.refs, true
}

// obj validates access and returns the object.
func (pr *Process) obj(name ObjName) (*memObject, Status) {
	o, ok := pr.g.findObj(name)
	if !ok {
		return nil, NoSuchObject
	}
	if !pr.mapped[name] {
		return nil, NotMapped
	}
	return o, OK
}

// remoteCost returns the backplane charge for touching n bytes of an
// object homed on another node, consulting the backplane's fault hook
// (if any). Shared memory cannot lose a write, so faults surface as
// latency: a Drop verdict doubles the transfer (the switch hardware
// retries), a partition's Stall blocks the access until the heal, and
// Extra models a degraded path. With no hook the charge is unchanged.
func (pr *Process) remoteCost(o *memObject, n int) sim.Duration {
	if o.home == pr.node {
		return 0
	}
	g := pr.g
	d := g.bp.SendTime(g.env.Now(), pr.node, o.home, n)
	if h := g.bp.FaultHook(); h != nil {
		v := h.Frame(g.env.Now(), pr.node, o.home, n, d, false)
		if v.Drop {
			d += d // hardware retry: the transfer crosses the switch twice
		}
		d += v.Extra + v.Stall
	}
	return d
}

// SetFlag16 atomically sets a 16-bit flag word at offset (microcoded,
// cheap). Returns the previous value.
func (pr *Process) SetFlag16(p *sim.Proc, name ObjName, offset int, v uint16) (uint16, Status) {
	o, st := pr.obj(name)
	if st != OK {
		return 0, st
	}
	if offset < 0 || offset+2 > len(o.data) {
		return 0, BadAccess
	}
	charge(p, pr.k.cost(pr.k.costs.AtomicOp)+pr.remoteCost(o, 2))
	pr.k.cAtomicOps.Inc()
	old := uint16(o.data[offset]) | uint16(o.data[offset+1])<<8
	o.data[offset] = byte(v)
	o.data[offset+1] = byte(v >> 8)
	if pr.k.rec.Active() {
		pr.k.rec.EmitEnv(pr.g.env, obs.Event{
			Kind: obs.KindFlagSet, Proc: pr.id, Link: int(name),
			Detail: fmt.Sprintf("set@%d=%#x", offset, v),
		})
	}
	return old, OK
}

// OrFlag16 atomically ORs bits into a 16-bit flag word, returning the
// previous value (one microcoded atomic op).
func (pr *Process) OrFlag16(p *sim.Proc, name ObjName, offset int, bits uint16) (uint16, Status) {
	o, st := pr.obj(name)
	if st != OK {
		return 0, st
	}
	if offset < 0 || offset+2 > len(o.data) {
		return 0, BadAccess
	}
	charge(p, pr.k.cost(pr.k.costs.AtomicOp)+pr.remoteCost(o, 2))
	pr.k.cAtomicOps.Inc()
	old := uint16(o.data[offset]) | uint16(o.data[offset+1])<<8
	v := old | bits
	o.data[offset] = byte(v)
	o.data[offset+1] = byte(v >> 8)
	if pr.k.rec.Active() {
		pr.k.rec.EmitEnv(pr.g.env, obs.Event{
			Kind: obs.KindFlagSet, Proc: pr.id, Link: int(name),
			Detail: fmt.Sprintf("or@%d=%#x", offset, bits),
		})
	}
	return old, OK
}

// AndFlag16 atomically ANDs a mask into a 16-bit flag word, returning
// the previous value.
func (pr *Process) AndFlag16(p *sim.Proc, name ObjName, offset int, mask uint16) (uint16, Status) {
	o, st := pr.obj(name)
	if st != OK {
		return 0, st
	}
	if offset < 0 || offset+2 > len(o.data) {
		return 0, BadAccess
	}
	charge(p, pr.k.cost(pr.k.costs.AtomicOp)+pr.remoteCost(o, 2))
	pr.k.cAtomicOps.Inc()
	old := uint16(o.data[offset]) | uint16(o.data[offset+1])<<8
	v := old & mask
	o.data[offset] = byte(v)
	o.data[offset+1] = byte(v >> 8)
	if pr.k.rec.Active() {
		pr.k.rec.EmitEnv(pr.g.env, obs.Event{
			Kind: obs.KindFlagSet, Proc: pr.id, Link: int(name),
			Detail: fmt.Sprintf("and@%d=%#x", offset, mask),
		})
	}
	return old, OK
}

// Flag16 atomically reads a 16-bit flag word.
func (pr *Process) Flag16(p *sim.Proc, name ObjName, offset int) (uint16, Status) {
	o, st := pr.obj(name)
	if st != OK {
		return 0, st
	}
	if offset < 0 || offset+2 > len(o.data) {
		return 0, BadAccess
	}
	charge(p, pr.k.cost(pr.k.costs.AtomicOp)+pr.remoteCost(o, 2))
	pr.k.cAtomicOps.Inc()
	return uint16(o.data[offset]) | uint16(o.data[offset+1])<<8, OK
}

// Write32 writes a 32-bit field non-atomically: the low half lands, a
// torn window of WideWrite virtual time passes, then the high half
// lands. A concurrent Read32 during the window sees the mix.
func (pr *Process) Write32(p *sim.Proc, name ObjName, offset int, v uint32) Status {
	o, st := pr.obj(name)
	if st != OK {
		return st
	}
	if offset < 0 || offset+4 > len(o.data) {
		return BadAccess
	}
	oldHigh := uint16(o.data[offset+2]) | uint16(o.data[offset+3])<<8
	o.midWrite[offset] = oldHigh
	o.data[offset] = byte(v)
	o.data[offset+1] = byte(v >> 8)
	charge(p, pr.k.cost(pr.k.costs.WideWrite)+pr.remoteCost(o, 4))
	o.data[offset+2] = byte(v >> 16)
	o.data[offset+3] = byte(v >> 24)
	delete(o.midWrite, offset)
	return OK
}

// Read32 reads a 32-bit field non-atomically; a read racing a Write32
// observes the torn mix (counted in stats).
func (pr *Process) Read32(p *sim.Proc, name ObjName, offset int) (uint32, Status) {
	o, st := pr.obj(name)
	if st != OK {
		return 0, st
	}
	if offset < 0 || offset+4 > len(o.data) {
		return 0, BadAccess
	}
	charge(p, pr.k.cost(pr.k.costs.WideWrite/2)+pr.remoteCost(o, 4))
	if _, torn := o.midWrite[offset]; torn {
		pr.k.cTornRead.Inc()
		if pr.k.rec.Active() {
			pr.k.rec.EmitEnv(pr.g.env, obs.Event{
				Kind: obs.KindTornRead, Proc: pr.id, Link: int(name),
				Detail: fmt.Sprintf("offset %d", offset),
			})
		}
	}
	return uint32(o.data[offset]) | uint32(o.data[offset+1])<<8 |
		uint32(o.data[offset+2])<<16 | uint32(o.data[offset+3])<<24, OK
}

// WriteBytes copies buf into the object at offset (block copy, charged
// per byte plus backplane time for remote objects).
func (pr *Process) WriteBytes(p *sim.Proc, name ObjName, offset int, buf []byte) Status {
	o, st := pr.obj(name)
	if st != OK {
		return st
	}
	if offset < 0 || offset+len(buf) > len(o.data) {
		return BadAccess
	}
	charge(p, sim.Duration(len(buf))*pr.k.costs.BufferCopy+pr.remoteCost(o, len(buf)))
	copy(o.data[offset:], buf)
	pr.k.cBytesMoved.Add(int64(len(buf)))
	return OK
}

// ReadBytes copies n bytes out of the object at offset.
func (pr *Process) ReadBytes(p *sim.Proc, name ObjName, offset, n int) ([]byte, Status) {
	o, st := pr.obj(name)
	if st != OK {
		return nil, st
	}
	if offset < 0 || offset+n > len(o.data) {
		return nil, BadAccess
	}
	charge(p, sim.Duration(n)*pr.k.costs.BufferCopy+pr.remoteCost(o, n))
	out := make([]byte, n)
	copy(out, o.data[offset:])
	pr.k.cBytesMoved.Add(int64(n))
	return out, OK
}

// NewEvent allocates an event block owned by the caller.
func (pr *Process) NewEvent(p *sim.Proc) EventName {
	charge(p, pr.k.cost(pr.k.costs.EventPost))
	name := EventName(pr.g.newID())
	pr.g.events[name] = &eventBlock{
		name:  name,
		owner: pr,
		// The wait queue lives on the owner's group env: only the owner
		// may wait, and posters are group-local (event names travel over
		// links, which never cross partition groups).
		wq: sim.NewWaitQueue(pr.g.env, fmt.Sprintf("chrysalis.ev%d", name)),
	}
	return name
}

// EventPost performs V: it posts the event with a 32-bit datum, waking
// the owner if it is waiting. Any process that knows the name may post.
func (pr *Process) EventPost(p *sim.Proc, name EventName, datum uint32) Status {
	ev, ok := pr.g.findEvent(name)
	if !ok {
		return NoSuchEvent
	}
	if p != nil {
		charge(p, pr.k.cost(pr.k.costs.EventPost))
	}
	if ev.posted {
		return OverPost
	}
	pr.k.cEventPosts.Inc()
	ev.posted = true
	ev.datum = datum
	ev.wq.WakeValue(datum)
	return OK
}

// EventWait performs P: the owner blocks until the event is posted and
// receives the datum. Only the owner may wait.
func (pr *Process) EventWait(p *sim.Proc, name EventName) (uint32, Status) {
	ev, ok := pr.g.findEvent(name)
	if !ok {
		return 0, NoSuchEvent
	}
	if ev.owner != pr {
		return 0, NotOwner
	}
	charge(p, pr.k.cost(pr.k.costs.EventWait))
	pr.k.cEventWaits.Inc()
	if ev.posted {
		ev.posted = false
		return ev.datum, OK
	}
	v := ev.wq.Wait(p).(uint32)
	ev.posted = false
	return v, OK
}

// EventPosted reports whether the event is currently posted (tests).
func (k *Kernel) EventPosted(name EventName) bool {
	ev, ok := k.events[name]
	return ok && ev.posted
}

// NewDualQueue allocates a dual queue with the given data capacity.
func (pr *Process) NewDualQueue(p *sim.Proc, capacity int) QueueName {
	charge(p, pr.k.cost(pr.k.costs.Enqueue))
	name := QueueName(pr.g.newID())
	pr.g.queues[name] = &dualQueue{name: name, capacity: capacity}
	return name
}

// Enqueue adds a 32-bit datum to the queue — unless the queue holds
// event-block names, in which case the oldest event is posted with the
// datum instead ("an enqueue operation on a queue containing event block
// names actually posts a queued event").
func (pr *Process) Enqueue(p *sim.Proc, name QueueName, datum uint32) Status {
	q, ok := pr.g.findQueue(name)
	if !ok || q.dead {
		return NoSuchQueue
	}
	if p != nil {
		charge(p, pr.k.cost(pr.k.costs.Enqueue))
	}
	pr.k.cEnqueues.Inc()
	if len(q.waiters) > 0 {
		evName := q.waiters[0]
		q.waiters = q.waiters[0:copy(q.waiters, q.waiters[1:])]
		if ev, ok := pr.g.findEvent(evName); ok && !ev.posted {
			pr.k.cEventPosts.Inc()
			if pr.k.rec.Active() {
				pr.k.rec.EmitEnv(pr.g.env, obs.Event{
					Kind: obs.KindQueueFlip, Proc: pr.id, Link: int(name),
					Detail: "enqueue posted queued event",
				})
			}
			ev.posted = true
			ev.datum = datum
			ev.wq.WakeValue(datum)
		}
		return OK
	}
	if len(q.data) >= q.capacity {
		return QueueFull
	}
	q.data = append(q.data, datum)
	return OK
}

// Dequeue removes the oldest datum. If the queue is empty, the caller's
// event block name is enqueued instead and ok=false is returned; the
// caller should then EventWait on that block ("once a queue becomes
// empty, subsequent dequeue operations actually enqueue event block
// names").
func (pr *Process) Dequeue(p *sim.Proc, name QueueName, ev EventName) (uint32, bool, Status) {
	q, ok := pr.g.findQueue(name)
	if !ok || q.dead {
		return 0, false, NoSuchQueue
	}
	charge(p, pr.k.cost(pr.k.costs.Dequeue))
	pr.k.cDequeues.Inc()
	if len(q.data) > 0 {
		v := q.data[0]
		q.data = q.data[0:copy(q.data, q.data[1:])]
		return v, true, OK
	}
	q.waiters = append(q.waiters, ev)
	if pr.k.rec.Active() {
		pr.k.rec.EmitEnv(pr.g.env, obs.Event{
			Kind: obs.KindQueueFlip, Proc: pr.id, Link: int(name),
			Detail: "dequeue on empty enqueued event name",
		})
	}
	return 0, false, OK
}

// QueueLen reports buffered data count (tests).
func (k *Kernel) QueueLen(name QueueName) int {
	if q, ok := k.queues[name]; ok {
		return len(q.data)
	}
	return 0
}

// Terminate releases the process's address space: every mapped object is
// unmapped (running reclamation). Chrysalis lets dying processes run
// cleanup handlers first; callers model that by destroying links before
// calling Terminate.
func (pr *Process) Terminate() {
	if pr.dead {
		return
	}
	pr.dead = true
	if pr.k.rec.Active() {
		pr.k.rec.EmitEnv(pr.g.env, obs.Event{Kind: obs.KindMark, Proc: pr.id, Detail: "terminate"})
	}
	// Walk mapped objects in name order: reclamation emits events, so
	// randomized map order would make same-seed runs diverge.
	names := make([]ObjName, 0, len(pr.mapped))
	for name := range pr.mapped {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	for _, name := range names {
		if o, ok := pr.g.findObj(name); ok {
			o.refs--
			pr.g.maybeReclaim(o)
		}
	}
	pr.mapped = make(map[ObjName]bool)
}

// Dead reports whether the process terminated.
func (pr *Process) Dead() bool { return pr.dead }
