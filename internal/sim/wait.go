package sim

// WaitQueue is a FIFO queue of parked simprocs. It is the basic blocking
// primitive from which kernels build semaphores, message queues, and
// condition variables. All operations must be invoked from scheduler or
// simproc context (the single-runner discipline makes them race-free).
type WaitQueue struct {
	env     *Env
	name    string
	waiters []*Proc
}

// NewWaitQueue creates a named wait queue registered for deadlock
// diagnostics.
func NewWaitQueue(env *Env, name string) *WaitQueue {
	wq := &WaitQueue{env: env, name: name}
	env.allQueues = append(env.allQueues, wq)
	return wq
}

// Name returns the diagnostic label.
func (wq *WaitQueue) Name() string { return wq.name }

// Len reports the number of parked waiters.
func (wq *WaitQueue) Len() int { return len(wq.waiters) }

// Wait parks p until a waker calls Wake/WakeAll/WakeValue. It returns the
// value passed by the waker (nil for plain Wake).
func (wq *WaitQueue) Wait(p *Proc) any {
	p.waitQ = wq
	p.wakeValue = nil
	wq.waiters = append(wq.waiters, p)
	p.park()
	v := p.wakeValue
	p.wakeValue = nil
	return v
}

// Wake readies the oldest waiter. It reports whether a waiter existed.
func (wq *WaitQueue) Wake() bool { return wq.WakeValue(nil) }

// WakeValue readies the oldest waiter, arranging for its Wait to return v.
func (wq *WaitQueue) WakeValue(v any) bool {
	if len(wq.waiters) == 0 {
		return false
	}
	p := wq.waiters[0]
	wq.waiters = wq.waiters[0:copy(wq.waiters, wq.waiters[1:])]
	p.waitQ = nil
	p.wakeValue = v
	// Wake through the proc's own env: a queue created on one env must
	// still ready waiters onto the env that schedules them (relevant
	// when procs live on shard envs of a parallel partition).
	p.env.wake(p)
	return true
}

// WakeAll readies every waiter, preserving FIFO order, and reports how
// many were woken.
func (wq *WaitQueue) WakeAll() int {
	n := len(wq.waiters)
	for wq.WakeValue(nil) {
	}
	return n
}

// remove deletes p from the queue without waking it (Kill path).
func (wq *WaitQueue) remove(p *Proc) {
	for i, w := range wq.waiters {
		if w == p {
			wq.waiters = append(wq.waiters[:i], wq.waiters[i+1:]...)
			p.waitQ = nil
			return
		}
	}
}

// Semaphore is a counting semaphore built on a WaitQueue.
type Semaphore struct {
	wq    *WaitQueue
	count int
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(env *Env, name string, initial int) *Semaphore {
	return &Semaphore{wq: NewWaitQueue(env, name), count: initial}
}

// Acquire decrements the count, parking p while the count is zero.
func (s *Semaphore) Acquire(p *Proc) {
	for s.count == 0 {
		s.wq.Wait(p)
	}
	s.count--
}

// TryAcquire decrements without blocking; reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.count == 0 {
		return false
	}
	s.count--
	return true
}

// Release increments the count and wakes one waiter if any.
func (s *Semaphore) Release() {
	s.count++
	s.wq.Wake()
}

// Count reports the current count.
func (s *Semaphore) Count() int { return s.count }

// Mailbox is an unbounded FIFO of values with blocking receive; the
// lowest-level message queue used by the kernel models.
type Mailbox struct {
	wq    *WaitQueue
	items []any
}

// NewMailbox creates an empty mailbox.
func NewMailbox(env *Env, name string) *Mailbox {
	return &Mailbox{wq: NewWaitQueue(env, name)}
}

// Put appends v and wakes one blocked receiver.
func (m *Mailbox) Put(v any) {
	m.items = append(m.items, v)
	m.wq.Wake()
}

// Get removes and returns the oldest value, parking p while empty.
func (m *Mailbox) Get(p *Proc) any {
	for len(m.items) == 0 {
		m.wq.Wait(p)
	}
	v := m.items[0]
	m.items = m.items[0:copy(m.items, m.items[1:])]
	return v
}

// TryGet removes and returns the oldest value without blocking.
func (m *Mailbox) TryGet() (any, bool) {
	if len(m.items) == 0 {
		return nil, false
	}
	v := m.items[0]
	m.items = m.items[0:copy(m.items, m.items[1:])]
	return v, true
}

// Len reports the number of queued values.
func (m *Mailbox) Len() int { return len(m.items) }
