// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel runs simulated processes ("simprocs") under a strict token
// handoff discipline: exactly one simproc executes at any instant, and
// virtual time advances only when every simproc is parked. This makes
// every run with the same seed bit-for-bit reproducible, which is what
// lets the experiment harness reproduce the paper's latency tables as
// stable virtual-time measurements.
//
// A simproc is an ordinary goroutine wrapped by a *Proc. It may block on
// timers (Delay), on wait queues (WaitQueue), or simply finish. The
// scheduler (Env.Run) resumes runnable simprocs in deterministic FIFO
// order and, when none are runnable, pops the earliest timer and advances
// the virtual clock.
//
// Token discipline: a *Proc's identity may be borrowed by another
// goroutine (the LYNX runtime hands the process token between coroutine
// goroutines), as long as at most one goroutine uses the Proc at a time.
// The channel handoffs used internally establish the happens-before edges
// that make this race-free.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Time is a virtual-time instant in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

func (t Time) String() string {
	return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
}

func (d Duration) String() string {
	return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
}

// Milliseconds reports d as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// ErrDeadlock is returned by Env.Run when live simprocs remain but none
// is runnable and no timer is pending.
var ErrDeadlock = errors.New("sim: deadlock: live procs blocked with no pending timers")

// Env is a simulation environment: a virtual clock, a scheduler, and the
// set of simprocs it multiplexes.
type Env struct {
	now     Time
	ready   []*Proc // FIFO ready queue
	timers  timerHeap
	seq     int64 // tiebreak for simultaneous timers
	nextPID int
	live    int // procs spawned and not yet finished
	rng     *Rand
	yielded chan yieldMsg
	tracer  Tracer
	running bool
	stopped bool
	stopErr error

	// allQueues is populated by NewWaitQueue; used only for deadlock
	// diagnostics.
	allQueues []*WaitQueue
}

type yieldKind int

const (
	yieldPark yieldKind = iota // proc parked on a waiter/timer
	yieldDone                  // proc function returned (or was killed)
)

type yieldMsg struct {
	kind yieldKind
	p    *Proc
}

// NewEnv creates an environment whose random source is seeded with seed.
func NewEnv(seed uint64) *Env {
	return &Env{
		rng:     NewRand(seed),
		yielded: make(chan yieldMsg),
	}
}

// Now reports the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random source.
func (e *Env) Rand() *Rand { return e.rng }

// SetTracer installs a tracer that observes scheduling and user events.
// A nil tracer disables tracing.
func (e *Env) SetTracer(t Tracer) { e.tracer = t }

// Trace emits a user trace event if a tracer is installed. It may be
// called from simproc context or from timer callbacks.
func (e *Env) Trace(source, event string, args ...any) {
	if e.tracer != nil {
		e.tracer.Event(e.now, source, fmt.Sprintf(event, args...))
	}
}

// Spawn creates a new simproc running fn and places it at the back of the
// ready queue. It may be called before Run or from simproc/timer context.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	e.nextPID++
	p := &Proc{
		env:    e,
		id:     e.nextPID,
		name:   name,
		resume: make(chan struct{}),
		fn:     fn,
	}
	e.live++
	e.ready = append(e.ready, p)
	return p
}

// After schedules fn to run in scheduler context at now+d. The callback
// must not block; it may spawn procs, wake waiters, and schedule further
// callbacks. Callbacks are the mechanism kernels use for message
// delivery.
func (e *Env) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.at(e.now+Time(d), fn)
}

// At schedules fn to run in scheduler context at time t (or now, if t is
// in the past).
func (e *Env) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.at(t, fn)
}

func (e *Env) at(t Time, fn func()) *timer {
	e.seq++
	tm := &timer{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.timers, tm)
	return tm
}

// Stop aborts the run: Env.Run returns err (or nil) after the currently
// executing simproc next yields. Remaining procs are left parked.
func (e *Env) Stop(err error) {
	e.stopped = true
	e.stopErr = err
}

// Run executes the simulation until no live simprocs remain, a deadlock
// is detected, or Stop is called. It returns nil on clean completion.
func (e *Env) Run() error {
	return e.RunUntil(-1)
}

// RunUntil is Run with a horizon: once virtual time would advance past
// limit (limit >= 0), the run stops cleanly and returns nil. Procs still
// live at the horizon are abandoned.
func (e *Env) RunUntil(limit Time) error {
	if e.running {
		return errors.New("sim: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()

	for !e.stopped {
		if len(e.ready) > 0 {
			p := e.ready[0]
			e.ready = e.ready[0:copy(e.ready, e.ready[1:])]
			e.step(p)
			continue
		}
		if e.timers.Len() > 0 {
			t := heap.Pop(&e.timers).(*timer)
			if t.cancelled {
				continue // discard without advancing the clock
			}
			if limit >= 0 && t.at > limit {
				return nil
			}
			if t.at > e.now {
				e.now = t.at
			}
			t.fn()
			continue
		}
		if e.live == 0 {
			return nil
		}
		return fmt.Errorf("%w at %v\n%s", ErrDeadlock, e.now, e.diagnose())
	}
	return e.stopErr
}

// step resumes p and waits for it to yield back.
func (e *Env) step(p *Proc) {
	if e.tracer != nil {
		e.tracer.Resume(e.now, p.id, p.name)
	}
	if !p.started {
		p.started = true
		go p.run()
	} else {
		p.resume <- struct{}{}
	}
	m := <-e.yielded
	if m.kind == yieldDone {
		e.live--
	}
}

// wake moves p to the back of the ready queue. It is idempotent per park:
// p must currently be parked and not already readied.
func (e *Env) wake(p *Proc) {
	e.ready = append(e.ready, p)
}

// diagnose renders the set of parked procs for deadlock reports.
func (e *Env) diagnose() string {
	// The env does not keep a central registry of parked procs (they are
	// reachable from their wait queues); wait queues register themselves
	// here on first use so diagnostics can enumerate their waiters.
	var lines []string
	for _, wq := range e.allQueues {
		for _, p := range wq.waiters {
			lines = append(lines, fmt.Sprintf("  proc %d (%s) blocked on %s", p.id, p.name, wq.name))
		}
	}
	sort.Strings(lines)
	if len(lines) == 0 {
		return "  (no registered wait queues; procs blocked on raw parks)"
	}
	return strings.Join(lines, "\n")
}

type timer struct {
	at        Time
	seq       int64
	fn        func()
	cancelled bool
	index     int
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
