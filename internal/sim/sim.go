// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel runs simulated processes ("simprocs") under a strict token
// handoff discipline: exactly one simproc executes at any instant, and
// virtual time advances only when every simproc is parked. This makes
// every run with the same seed bit-for-bit reproducible, which is what
// lets the experiment harness reproduce the paper's latency tables as
// stable virtual-time measurements.
//
// A simproc is an ordinary goroutine wrapped by a *Proc. It may block on
// timers (Delay), on wait queues (WaitQueue), or simply finish. The
// scheduler resumes runnable simprocs in deterministic FIFO order and,
// when none are runnable, pops the earliest timer and advances the
// virtual clock.
//
// Scheduling uses direct handoff: the goroutine that yields the token
// (a parking or finishing simproc) runs the scheduling decision itself
// and passes the token straight to the next runnable simproc — one
// channel operation per context switch instead of a round trip through
// a central scheduler goroutine. When a simproc is its own successor
// (it yielded but is already runnable again, the common case for a lone
// proc driving timers) the handoff is a plain function return with no
// channel operation at all. Env.Run's goroutine only runs scheduling
// until the first handoff, then parks until the run ends.
//
// Token discipline: a *Proc's identity may be borrowed by another
// goroutine (the LYNX runtime hands the process token between coroutine
// goroutines), as long as at most one goroutine uses the Proc at a time.
// The channel handoffs used internally establish the happens-before
// edges that make this race-free.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Time is a virtual-time instant in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

func (t Time) String() string {
	return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
}

func (d Duration) String() string {
	return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
}

// Milliseconds reports d as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// ErrDeadlock is returned by Env.Run when live simprocs remain but none
// is runnable and no timer is pending.
var ErrDeadlock = errors.New("sim: deadlock: live procs blocked with no pending timers")

// endReason records why scheduling stopped; Run's goroutine turns it
// into a return value after it regains the token.
type endReason int

const (
	endDone     endReason = iota // no live procs remain
	endStopped                   // Stop was called
	endLimit                     // virtual time would pass RunUntil's horizon
	endDeadlock                  // live procs, nothing runnable, no timers
)

// Env is a simulation environment: a virtual clock, a scheduler, and the
// set of simprocs it multiplexes.
type Env struct {
	now     Time
	ready   procRing // FIFO ready queue
	timers  timerHeap
	seq     int64 // tiebreak for simultaneous timers
	nextPID int
	live    int // procs spawned and not yet finished
	rng     *Rand
	tracer  Tracer
	running bool
	stopped bool
	stopErr error

	// limit and end are the active run's horizon and exit reason; both
	// are only touched by the goroutine holding the token.
	limit Time
	end   endReason
	// mainGate parks Run's goroutine while simprocs hand the token
	// among themselves; the proc that ends the run signals it.
	mainGate chan struct{}
	// timerFree is a freelist of recycled timers (hot paths schedule
	// and retire one timer per scheduling decision).
	timerFree *timer

	// allQueues is populated by NewWaitQueue; used only for deadlock
	// diagnostics.
	allQueues []*WaitQueue

	// sh is non-nil when this env is one shard (proc group) of a
	// parallel partition; par is non-nil on the root env that owns the
	// partition. See parallel.go.
	sh  *shardState
	par *parCoord
	// overHorizon stashes the timer a windowed (shard) run popped
	// beyond its horizon, so the next window can re-arm it. A serial
	// RunUntil abandons that timer, exactly as before.
	overHorizon *timer
}

// NewEnv creates an environment whose random source is seeded with seed.
func NewEnv(seed uint64) *Env {
	return &Env{
		rng:      NewRand(seed),
		mainGate: make(chan struct{}, 1),
		limit:    -1,
	}
}

// Now reports the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random source.
func (e *Env) Rand() *Rand { return e.rng }

// SetTracer installs a tracer that observes scheduling and user events.
// A nil tracer disables tracing.
func (e *Env) SetTracer(t Tracer) { e.tracer = t }

// Trace emits a user trace event if a tracer is installed. It may be
// called from simproc context or from timer callbacks.
func (e *Env) Trace(source, event string, args ...any) {
	if e.tracer == nil {
		return
	}
	if sh := e.sh; sh != nil && sh.logging && sh.co.running {
		// Defer to the merge replay so the serial interleave is
		// reproduced exactly (see parallel.go).
		tr, now, msg := e.tracer, e.now, fmt.Sprintf(event, args...)
		sh.emit(now, func() { tr.Event(now, source, msg) })
		return
	}
	e.tracer.Event(e.now, source, fmt.Sprintf(event, args...))
}

// Spawn creates a new simproc running fn and places it at the back of the
// ready queue. It may be called before Run, from simproc/timer context,
// or — on a shard env — during a parallel run: a mid-run spawn lands on
// the shard it was issued on (its home shard), draws its pid from that
// shard's strided allocator, and is recorded through the same push
// bookkeeping as every other ready-queue entry, so the serial replay
// reproduces it at any worker count.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		env:  e,
		id:   e.allocPID(),
		name: name,
		gate: make(chan struct{}, 1),
		fn:   fn,
	}
	e.live++
	e.wake(p)
	return p
}

// allocPID assigns the next proc id. Before the partition's first run,
// shard envs draw from the root's counter (so pid assignment matches
// the serial run that would have spawned the same procs in the same
// program order on one env). From the first run on, each shard owns a
// strided pid sequence (base + idx, step = shard count): a shard's pids
// are then a pure function of its own spawn order, never of how
// concurrently executing groups interleave, which keeps mid-run
// launches deterministic at any worker count.
func (e *Env) allocPID() int {
	if e.par != nil {
		panic(fmt.Sprintf(
			"sim: Spawn on the partitioned root env (%d shards); a mid-run launch lives on its creator's home shard — Spawn on that shard env (see Env.EnterParallel / Env.GrowPartition)",
			len(e.par.shards)))
	}
	if sh := e.sh; sh != nil {
		if sh.co.started {
			pid := sh.pidNext
			sh.pidNext += sh.pidStride
			return pid
		}
		sh.co.root.nextPID++
		return sh.co.root.nextPID
	}
	e.nextPID++
	return e.nextPID
}

// After schedules fn to run in scheduler context at now+d. The callback
// must not block; it may spawn procs, wake waiters, and schedule further
// callbacks. Callbacks are the mechanism kernels use for message
// delivery.
func (e *Env) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedFunc(e.now+Time(d), fn)
}

// At schedules fn to run in scheduler context at time t (or now, if t is
// in the past).
func (e *Env) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.schedFunc(t, fn)
}

// schedFunc schedules a callback timer.
func (e *Env) schedFunc(t Time, fn func()) {
	if e.par != nil {
		panic(fmt.Sprintf(
			"sim: timer on the partitioned root env (%d shards); schedule on the home shard env that owns the affected procs — root timers would race the shard windows (see Env.EnterParallel / Env.GrowPartition)",
			len(e.par.shards)))
	}
	tm := e.allocTimer()
	tm.at = t
	e.seq++
	tm.seq = e.seq
	tm.fn = fn
	if sh := e.sh; sh != nil && (sh.logging || !sh.co.running) {
		// Setup-time scheds are always recorded (the prelog must be
		// complete before the run decides whether it is observed).
		sh.onSched(tm)
	}
	e.timers.push(tm)
}

// schedSleep schedules a proc wakeup timer (the allocation-free Delay
// path: no callback closure is needed to wake a proc).
func (e *Env) schedSleep(t Time, p *Proc) *timer {
	tm := e.allocTimer()
	tm.at = t
	e.seq++
	tm.seq = e.seq
	tm.proc = p
	if sh := e.sh; sh != nil && (sh.logging || !sh.co.running) {
		sh.onSched(tm)
	}
	e.timers.push(tm)
	return tm
}

// timerChunk is the arena granularity for shard envs. Shards allocate
// timers in chunks so each group's timer state lives in a handful of
// contiguous blocks owned by that group's cache lines, instead of
// heap-interleaved one-at-a-time allocations shared across groups.
const timerChunk = 256

// allocTimer takes a timer from the freelist, or allocates one.
func (e *Env) allocTimer() *timer {
	if t := e.timerFree; t != nil {
		e.timerFree = t.nextFree
		t.nextFree = nil
		return t
	}
	if e.sh != nil {
		chunk := make([]timer, timerChunk)
		for i := len(chunk) - 1; i > 0; i-- {
			chunk[i].nextFree = e.timerFree
			e.timerFree = &chunk[i]
		}
		return &chunk[0]
	}
	return &timer{}
}

// freeTimer recycles a retired timer. Callers must guarantee no live
// reference remains (Delay's sleepTmr is cleared before its timer fires
// or is cancelled).
func (e *Env) freeTimer(t *timer) {
	t.fn = nil
	t.proc = nil
	t.cancelled = false
	t.nextFree = e.timerFree
	e.timerFree = t
}

// Stop aborts the run: Env.Run returns err (or nil) after the currently
// executing simproc next yields. Remaining procs are left parked.
func (e *Env) Stop(err error) {
	e.stopped = true
	e.stopErr = err
}

// Run executes the simulation until no live simprocs remain, a deadlock
// is detected, or Stop is called. It returns nil on clean completion.
func (e *Env) Run() error {
	return e.RunUntil(-1)
}

// RunUntil is Run with a horizon: once virtual time would advance past
// limit (limit >= 0), the run stops cleanly and returns nil. Procs still
// live at the horizon are abandoned.
func (e *Env) RunUntil(limit Time) error {
	if e.par != nil {
		return e.par.runRoot(limit)
	}
	if sh := e.sh; sh != nil {
		return fmt.Errorf("sim: Run on shard env %d (run the partitioned root env)", sh.idx)
	}
	if e.running {
		return errors.New("sim: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()

	e.runCore(limit)
	switch e.end {
	case endStopped:
		return e.stopErr
	case endDeadlock:
		return fmt.Errorf("%w at %v\n%s", ErrDeadlock, e.now, e.diagnose())
	default: // endDone, endLimit
		return nil
	}
}

// runCore executes scheduling decisions until the run (or, for a shard
// env, the current window) is over; e.end records why it stopped.
func (e *Env) runCore(limit Time) {
	e.limit = limit
	if sh := e.sh; sh != nil {
		sh.inBlock = false
		if t := e.overHorizon; t != nil {
			// Re-arm the timer the previous window popped beyond its
			// bound.
			e.overHorizon = nil
			e.timers.push(t)
		}
	}
	if n := e.next(); n != nil {
		// Hand the token to the first runnable proc; it and its
		// successors schedule each other directly. The token comes back
		// here only when the run is over.
		e.transfer(n)
		<-e.mainGate
	}
}

// next makes one scheduling decision on behalf of whichever goroutine
// holds the token: it returns the next proc to run, firing due timers
// (which advances the virtual clock) until one becomes runnable. A nil
// result means the run is over; e.end says why.
func (e *Env) next() *Proc {
	for {
		if e.stopped {
			e.end = endStopped
			return nil
		}
		if p := e.ready.pop(); p != nil {
			if sh := e.sh; sh != nil && sh.logging {
				sh.onResume(e, p)
			} else if e.tracer != nil {
				e.tracer.Resume(e.now, p.id, p.name)
			}
			return p
		}
		if sh := e.sh; sh != nil {
			// The ready queue drained: the current timer block (if any)
			// has run to completion.
			sh.inBlock = false
		}
		if e.timers.len() > 0 {
			t := e.timers.pop()
			if t.cancelled {
				e.freeTimer(t)
				continue // discard without advancing the clock
			}
			if e.limit >= 0 && t.at > e.limit {
				if e.sh != nil {
					// A windowed run re-arms the timer at the next
					// window; a serial RunUntil abandons it along with
					// the procs.
					e.overHorizon = t
				}
				e.end = endLimit
				return nil
			}
			if t.at > e.now {
				e.now = t.at
			}
			if sh := e.sh; sh != nil && sh.logging {
				sh.onFire(t)
			}
			e.fire(t)
			continue
		}
		if e.live == 0 {
			e.end = endDone
			return nil
		}
		e.end = endDeadlock
		return nil
	}
}

// fire runs one due timer and recycles it.
func (e *Env) fire(t *timer) {
	if p := t.proc; p != nil {
		// Sleep timer: wake the proc directly.
		p.sleepTmr = nil
		e.freeTimer(t)
		e.wake(p)
		return
	}
	fn := t.fn
	e.freeTimer(t)
	fn()
}

// transfer gives the token to p: first dispatch starts its goroutine,
// later ones signal its gate. The gate is buffered so the sender never
// blocks (p is guaranteed to be at, or arriving at, its gate receive).
func (e *Env) transfer(p *Proc) {
	if !p.started {
		p.started = true
		go p.run()
		return
	}
	p.gate <- struct{}{}
}

// handoff passes the token onward after the calling goroutine is done
// with it: to the next runnable proc, or back to Run's goroutine when
// the run is over.
func (e *Env) handoff(n *Proc) {
	if n == nil {
		e.mainGate <- struct{}{}
		return
	}
	e.transfer(n)
}

// finish retires the current proc (already marked done) and passes the
// token onward. Called from the proc's own goroutine as it exits, or
// from a borrower completing the proc's lifecycle.
func (e *Env) finish() {
	e.live--
	e.handoff(e.next())
}

// wake moves p to the back of the ready queue. It is idempotent per park:
// p must currently be parked and not already readied.
func (e *Env) wake(p *Proc) {
	if sh := e.sh; sh != nil && !sh.inBlock && (sh.logging || !sh.co.running) {
		sh.onBootPush()
	}
	e.ready.push(p)
}

// diagnose renders the set of parked procs for deadlock reports.
func (e *Env) diagnose() string {
	lines := e.diagnoseLines()
	sort.Strings(lines)
	if len(lines) == 0 {
		return "  (no registered wait queues; procs blocked on raw parks)"
	}
	return strings.Join(lines, "\n")
}

// diagnoseLines renders one line per parked proc, unsorted (the parallel
// coordinator merges lines from several shards before sorting).
func (e *Env) diagnoseLines() []string {
	// The env does not keep a central registry of parked procs (they are
	// reachable from their wait queues); wait queues register themselves
	// here on first use so diagnostics can enumerate their waiters.
	var lines []string
	for _, wq := range e.allQueues {
		for _, p := range wq.waiters {
			lines = append(lines, fmt.Sprintf("  proc %d (%s) blocked on %s", p.id, p.name, wq.name))
		}
	}
	return lines
}

// procRing is a growable ring buffer of procs: the FIFO ready queue
// without the per-pop slice shift of the old []*Proc representation.
// Capacity is always a power of two.
type procRing struct {
	buf  []*Proc
	head int
	n    int
}

func (r *procRing) push(p *Proc) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

func (r *procRing) pop() *Proc {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

func (r *procRing) grow() {
	size := len(r.buf) * 2
	if size < 16 {
		size = 16
	}
	buf := make([]*Proc, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

type timer struct {
	at  Time
	seq int64
	// Exactly one of fn/proc is set: a callback timer runs fn in
	// scheduler context; a sleep timer wakes proc.
	fn        func()
	proc      *Proc
	cancelled bool
	nextFree  *timer
	// logID identifies this timer in a shard's merge log (parallel.go);
	// meaningful only while the owning shard is logging.
	logID int
}

// timerLess orders timers by firing time, ties broken by scheduling
// order — the total order that makes runs deterministic.
func timerLess(a, b *timer) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// timerHeap is an indexed 4-ary min-heap. The wider fan-out roughly
// halves the levels touched per push/pop versus a binary heap, and the
// concrete element type avoids container/heap's interface boxing on
// every operation.
type timerHeap struct {
	s []*timer
}

func (h *timerHeap) len() int { return len(h.s) }

func (h *timerHeap) push(t *timer) {
	h.s = append(h.s, t)
	i := len(h.s) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !timerLess(t, h.s[parent]) {
			break
		}
		h.s[i] = h.s[parent]
		i = parent
	}
	h.s[i] = t
}

func (h *timerHeap) pop() *timer {
	s := h.s
	top := s[0]
	n := len(s) - 1
	last := s[n]
	s[n] = nil
	h.s = s[:n]
	if n == 0 {
		return top
	}
	// Sift the displaced last element down from the root.
	s = h.s
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		m := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if timerLess(s[c], s[m]) {
				m = c
			}
		}
		if !timerLess(s[m], last) {
			break
		}
		s[i] = s[m]
		i = m
	}
	s[i] = last
	return top
}
