package sim

import "testing"

// StreamSeed must be a pure function of (root, stream): no generator
// state, no call-order dependence — the determinism contract of the
// parallel sweep harness.
func TestStreamSeedStateless(t *testing.T) {
	a := StreamSeed(42, 7)
	for i := 0; i < 3; i++ {
		StreamSeed(uint64(i), uint64(i)) // interleaved unrelated calls
		if got := StreamSeed(42, 7); got != a {
			t.Fatalf("StreamSeed(42,7) changed across calls: %#x then %#x", a, got)
		}
	}
}

func TestStreamSeedDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for root := uint64(0); root < 8; root++ {
		for stream := uint64(0); stream < 256; stream++ {
			s := StreamSeed(root, stream)
			key := string(rune(root)) + "/" + string(rune(stream))
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) and %s both map to %#x", root, stream, prev, s)
			}
			seen[s] = key
		}
	}
}

// StreamSeed2 is exactly the two-level composition of StreamSeed, and
// distinct (a, b) pairs under one root draw distinct seeds — the grid
// runner's cell×replica seeding contract.
func TestStreamSeed2(t *testing.T) {
	if got, want := StreamSeed2(9, 3, 5), StreamSeed(StreamSeed(9, 3), 5); got != want {
		t.Fatalf("StreamSeed2(9,3,5) = %#x, want composed %#x", got, want)
	}
	seen := map[uint64][2]uint64{}
	for a := uint64(0); a < 32; a++ {
		for b := uint64(0); b < 32; b++ {
			s := StreamSeed2(7, a, b)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d) both map to %#x", a, b, prev[0], prev[1], s)
			}
			seen[s] = [2]uint64{a, b}
		}
	}
}

// Nearby roots and streams must produce decorrelated child generators,
// not shifted copies of one stream.
func TestStreamSeedDecorrelated(t *testing.T) {
	r0 := NewRand(StreamSeed(1, 0))
	r1 := NewRand(StreamSeed(1, 1))
	same := 0
	const draws = 64
	for i := 0; i < draws; i++ {
		if r0.Uint64() == r1.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("adjacent streams agreed on %d/%d draws", same, draws)
	}
}
