package sim

import (
	"errors"
	"fmt"
)

// ErrKilled is the panic payload delivered to a simproc resumed after
// Kill. The proc wrapper recovers it; user code that must clean up on
// crash may also recover it, re-panicking if the payload is unexpected.
type killedPanic struct{ p *Proc }

func (k killedPanic) Error() string {
	return fmt.Sprintf("sim: proc %d (%s) killed", k.p.id, k.p.name)
}

// ErrProcDone is returned by operations attempted on a finished proc.
var ErrProcDone = errors.New("sim: proc already finished")

// Proc is a simulated process: a goroutine scheduled by an Env.
type Proc struct {
	env  *Env
	id   int
	name string
	// gate is the proc's token semaphore: the previous token holder
	// signals it to resume this proc. Buffered so handoff never blocks
	// the sender.
	gate    chan struct{}
	fn      func(p *Proc)
	started bool
	done    bool
	killed  bool

	// Park bookkeeping: at most one of these is active while parked.
	waitQ     *WaitQueue // queue this proc is enqueued on, if any
	sleepTmr  *timer     // pending Delay timer, if any
	onKill    []func()   // LIFO cleanup hooks run when the proc dies killed
	wakeValue any        // value passed by the waker, returned by Wait
}

// ID reports the proc's unique id within its Env (1-based, in spawn order).
func (p *Proc) ID() int { return p.id }

// Name reports the label given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now reports current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Killed reports whether Kill has been called on p.
func (p *Proc) Killed() bool { return p.killed }

// Done reports whether the proc's function has returned.
func (p *Proc) Done() bool { return p.done }

// run is the goroutine body wrapping the user function.
func (p *Proc) run() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedPanic); !ok {
				// Re-panicking here would abandon the token mid-run;
				// surface the panic through Stop so Run returns it.
				p.env.Stop(fmt.Errorf("sim: proc %d (%s) panicked: %v", p.id, p.name, r))
			}
			for i := len(p.onKill) - 1; i >= 0; i-- {
				p.onKill[i]()
			}
		}
		p.done = true
		p.env.finish()
	}()
	// The first dispatch granted the token directly; run immediately —
	// unless the proc was killed before it ever ran (spawned and killed
	// within the same scheduling step, e.g. a helper whose owner exits at
	// spawn time). Kill's ready-queue branch relies on the next
	// resume-from-park to observe the flag, but a never-run proc has no
	// park to resume from: without this check its body would start and
	// could block forever on state its (dead) owner will never advance.
	if p.killed {
		panic(killedPanic{p})
	}
	p.fn(p)
}

// park yields the token and blocks until woken. The parking goroutine
// runs the scheduling decision itself: if this proc is its own
// successor, park returns with no channel operation at all (the fast
// path); otherwise the token is handed directly to the next runnable
// proc (one channel operation) and this goroutine blocks on its gate.
// On wake, if the proc was killed while parked, park panics with
// killedPanic, unwinding the user function (deferred cleanups run).
func (p *Proc) park() {
	e := p.env
	if n := e.next(); n != p {
		e.handoff(n)
		<-p.gate
	}
	if p.killed {
		panic(killedPanic{p})
	}
}

// Yield gives up the processor until the scheduler next reaches this proc
// (same virtual instant; other ready procs run first).
func (p *Proc) Yield() {
	p.env.wake(p)
	p.park()
}

// Delay parks the proc for d of virtual time. Delay(0) still yields.
func (p *Proc) Delay(d Duration) {
	if d < 0 {
		d = 0
	}
	p.sleepTmr = p.env.schedSleep(p.env.now+Time(d), p)
	p.park()
}

// OnKill registers fn to run (LIFO) if the proc dies via Kill. Used by
// kernels to model "process termination destroys its resources".
func (p *Proc) OnKill(fn func()) {
	p.onKill = append(p.onKill, fn)
}

// Kill marks the proc dead. If it is parked, it is woken immediately and
// unwinds with cleanup; if it is currently running it unwinds at its next
// park. Killing a finished proc is a no-op.
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	switch {
	case p.waitQ != nil:
		p.waitQ.remove(p)
		p.env.wake(p)
	case p.sleepTmr != nil:
		p.sleepTmr.cancelled = true
		p.sleepTmr = nil
		p.env.wake(p)
	default:
		// Running, or in the ready queue already: it will observe killed
		// at its next resume-from-park. If it is in the ready queue the
		// park() check fires when it is stepped... but a proc in the ready
		// queue is *between* park and resume, so the killed flag is seen
		// when its park() returns. Nothing more to do.
	}
}

// KillAt schedules a Kill at absolute virtual time t (crash injection).
func (p *Proc) KillAt(t Time) {
	p.env.At(t, func() { p.Kill() })
}

// IsKilled reports whether a recovered panic value is the kill signal a
// parked proc receives after Kill. Goroutines that borrow a proc's
// identity use it to distinguish crash unwinding from real panics.
func IsKilled(r any) bool {
	_, ok := r.(killedPanic)
	return ok
}

// FinishFromBorrower completes the proc's lifecycle from a goroutine that
// borrowed the proc's identity and recovered its kill signal: it runs the
// OnKill hooks (LIFO) and passes the token onward. The proc's original
// goroutine is abandoned (it stays parked forever). Hooks must not block
// or park.
func (p *Proc) FinishFromBorrower() {
	for i := len(p.onKill) - 1; i >= 0; i-- {
		p.onKill[i]()
	}
	p.done = true
	p.env.finish()
}
