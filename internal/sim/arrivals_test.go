package sim

import (
	"math"
	"testing"
)

// TestArrivalStreamDeterministic: same seed+rate ⇒ identical schedule;
// different seeds diverge.
func TestArrivalStreamDeterministic(t *testing.T) {
	a := NewArrivalStream(7, 100)
	b := NewArrivalStream(7, 100)
	c := NewArrivalStream(8, 100)
	same, diff := true, false
	for i := 0; i < 1000; i++ {
		av, bv, cv := a.Next(), b.Next(), c.Next()
		if av != bv {
			same = false
		}
		if av != cv {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different schedules")
	}
	if !diff {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestArrivalStreamRate: the empirical mean gap converges to 1/rate.
func TestArrivalStreamRate(t *testing.T) {
	const rate = 250.0
	s := NewArrivalStream(42, rate)
	const n = 50000
	var last Time
	for i := 0; i < n; i++ {
		last = s.Next()
	}
	if s.Last() != last {
		t.Fatalf("Last() = %v, want %v", s.Last(), last)
	}
	meanGap := float64(last) / n
	want := float64(Second) / rate
	if math.Abs(meanGap-want)/want > 0.02 {
		t.Fatalf("mean gap %.0fns, want %.0fns ±2%%", meanGap, want)
	}
}

// TestArrivalStreamMonotone: instants strictly advance for any sane
// rate (gaps are positive).
func TestArrivalStreamMonotone(t *testing.T) {
	s := NewArrivalStream(3, 1e6)
	prev := Time(-1)
	for i := 0; i < 10000; i++ {
		at := s.Next()
		if at <= prev {
			t.Fatalf("arrival %d at %v did not advance past %v", i, at, prev)
		}
		prev = at
	}
}

// TestArrivalStreamRejectsBadRate: a non-positive rate is a
// configuration error.
func TestArrivalStreamRejectsBadRate(t *testing.T) {
	for _, rate := range []float64{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %g: expected panic", rate)
				}
			}()
			NewArrivalStream(1, rate)
		}()
	}
}

// TestExpFloat64UnitMean: the draw has mean ~1 and is always positive.
func TestExpFloat64UnitMean(t *testing.T) {
	r := NewRand(9)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v <= 0 {
			t.Fatalf("draw %d: %g <= 0", i, v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("mean %g, want ~1", mean)
	}
}
