package sim

import (
	"fmt"
	"strings"
	"testing"
)

// fullTracer records both scheduling resumes and user events, so the
// serial-vs-parallel comparisons pin the complete interleave, not just
// user trace points.
type fullTracer struct{ lines []string }

func (t *fullTracer) Resume(now Time, pid int, name string) {
	t.lines = append(t.lines, fmt.Sprintf("%v run p%d(%s)", now, pid, name))
}

func (t *fullTracer) Event(now Time, source, msg string) {
	t.lines = append(t.lines, fmt.Sprintf("%v %s %s", now, source, msg))
}

// buildMixedWorkload constructs the same program over envs[g] per group:
// the serial baseline passes one env for every group, a parallel run
// passes the shard envs. It exercises boot-FIFO interleaving, timer
// cascades (callbacks waking waiters), nested callbacks, same-instant
// timer ties across groups, Yield churn, and a cancelled sleep timer.
func buildMixedWorkload(envs []*Env) {
	for g := range envs {
		g := g
		env := envs[g]
		wq := NewWaitQueue(env, fmt.Sprintf("q%d", g))
		env.Spawn(fmt.Sprintf("cons%d", g), func(p *Proc) {
			for i := 0; i < 3; i++ {
				v := wq.Wait(p)
				env.Trace("cons", "g%d got %v", g, v)
				p.Delay(2 * Microsecond)
			}
		})
		env.Spawn(fmt.Sprintf("prod%d", g), func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Delay(10 * Microsecond) // same instants in every group
				env.Trace("prod", "g%d tick %d", g, i)
				wq.WakeValue(i)
			}
		})
		env.After(25*Microsecond, func() {
			env.Trace("cb", "g%d outer", g)
			env.After(5*Microsecond, func() {
				env.Trace("cb", "g%d inner", g)
			})
		})
		victim := env.Spawn(fmt.Sprintf("victim%d", g), func(p *Proc) {
			p.Delay(Second) // killed long before this completes
		})
		victim.KillAt(Time(40 * Microsecond))
		env.Spawn(fmt.Sprintf("yield%d", g), func(p *Proc) {
			p.Yield()
			p.Yield()
			env.Trace("yield", "g%d done", g)
		})
	}
}

func runMixedSerial(groups int, limit Time) ([]string, Time, error) {
	env := NewEnv(42)
	tr := &fullTracer{}
	env.SetTracer(tr)
	envs := make([]*Env, groups)
	for i := range envs {
		envs[i] = env
	}
	buildMixedWorkload(envs)
	err := env.RunUntil(limit)
	return tr.lines, env.Now(), err
}

func runMixedParallel(groups, workers int, limit Time) ([]string, Time, error) {
	root := NewEnv(42)
	tr := &fullTracer{}
	root.SetTracer(tr)
	shards := root.EnterParallel(ParallelOptions{Groups: groups, Workers: workers})
	buildMixedWorkload(shards)
	err := root.RunUntil(limit)
	return tr.lines, root.Now(), err
}

func diffLines(t *testing.T, label string, want, got []string) {
	t.Helper()
	if strings.Join(want, "\n") == strings.Join(got, "\n") {
		return
	}
	n := len(want)
	if len(got) > n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		w, g := "<none>", "<none>"
		if i < len(want) {
			w = want[i]
		}
		if i < len(got) {
			g = got[i]
		}
		if w != g {
			t.Fatalf("%s: first divergence at line %d:\n  serial:   %s\n  parallel: %s", label, i, w, g)
		}
	}
	t.Fatalf("%s: traces differ in length: %d vs %d", label, len(want), len(got))
}

// TestParallelMatchesSerial pins the core determinism contract: a
// partitioned run of non-interacting groups replays the exact trace of
// the serial run that interleaves the same groups on one env, at any
// worker count.
func TestParallelMatchesSerial(t *testing.T) {
	const groups = 4
	want, wantNow, wantErr := runMixedSerial(groups, -1)
	if wantErr != nil {
		t.Fatalf("serial run: %v", wantErr)
	}
	if len(want) == 0 {
		t.Fatal("serial run produced no trace")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, gotNow, err := runMixedParallel(groups, workers, -1)
		if err != nil {
			t.Fatalf("parallel run (workers=%d): %v", workers, err)
		}
		diffLines(t, fmt.Sprintf("workers=%d", workers), want, got)
		if gotNow != wantNow {
			t.Fatalf("workers=%d: final clock %v, want %v", workers, gotNow, wantNow)
		}
	}
}

// TestParallelMatchesSerialAtHorizon is the same contract under a
// RunUntil horizon that cuts the run mid-flight.
func TestParallelMatchesSerialAtHorizon(t *testing.T) {
	const groups = 3
	const limit = Time(26 * Microsecond) // between the outer and inner callbacks
	want, wantNow, wantErr := runMixedSerial(groups, limit)
	if wantErr != nil {
		t.Fatalf("serial run: %v", wantErr)
	}
	for _, workers := range []int{1, 3} {
		got, gotNow, err := runMixedParallel(groups, workers, limit)
		if err != nil {
			t.Fatalf("parallel run (workers=%d): %v", workers, err)
		}
		diffLines(t, fmt.Sprintf("horizon workers=%d", workers), want, got)
		if gotNow != wantNow {
			t.Fatalf("workers=%d: clock at horizon %v, want %v", workers, gotNow, wantNow)
		}
	}
}

// TestParallelDeadlockMatchesSerial pins that a partitioned deadlock
// reports the identical error string (time and merged diagnostics) the
// serial run produces.
func TestParallelDeadlockMatchesSerial(t *testing.T) {
	build := func(envs []*Env) {
		for g := range envs {
			g := g
			env := envs[g]
			wq := NewWaitQueue(env, fmt.Sprintf("stuckq%d", g))
			env.Spawn(fmt.Sprintf("stuck%d", g), func(p *Proc) {
				p.Delay(Duration(g+1) * Microsecond)
				wq.Wait(p) // never woken
			})
		}
	}
	serial := NewEnv(7)
	envs := []*Env{serial, serial, serial}
	build(envs)
	serialErr := serial.Run()
	if serialErr == nil {
		t.Fatal("serial run should deadlock")
	}
	for _, workers := range []int{1, 2} {
		root := NewEnv(7)
		shards := root.EnterParallel(ParallelOptions{Groups: 3, Workers: workers})
		build(shards)
		err := root.Run()
		if err == nil {
			t.Fatal("parallel run should deadlock")
		}
		if err.Error() != serialErr.Error() {
			t.Fatalf("workers=%d deadlock error:\n  serial:   %q\n  parallel: %q", workers, serialErr, err)
		}
	}
}

// TestParallelUnobserved checks the logging-free path (no tracer): the
// run completes, clocks agree with serial, and no replay machinery is
// engaged.
func TestParallelUnobserved(t *testing.T) {
	const groups = 4
	_, wantNow, err := runMixedSerial(groups, -1)
	if err != nil {
		t.Fatal(err)
	}
	root := NewEnv(42)
	shards := root.EnterParallel(ParallelOptions{Groups: groups, Workers: 4})
	buildMixedWorkload(shards)
	if err := root.Run(); err != nil {
		t.Fatal(err)
	}
	if root.Now() != wantNow {
		t.Fatalf("unobserved final clock %v, want %v", root.Now(), wantNow)
	}
	for _, sh := range shards {
		if len(sh.sh.recs) != 0 {
			t.Fatal("unobserved run kept merge logs")
		}
	}
}

// buildRing wires groups into a SendGroup ring: each group's proc sends
// a message to the next group at exactly the lookahead delay, the
// tightest legal coupling.
func buildRing(envs []*Env, la Duration) {
	for g := range envs {
		g := g
		env := envs[g]
		dst := envs[(g+1)%len(envs)]
		env.Spawn(fmt.Sprintf("ring%d", g), func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Delay(10 * Microsecond)
				i := i
				env.SendGroup(dst, la, func() {
					dst.Trace("msg", "g%d sent #%d", g, i)
				})
			}
		})
	}
}

// TestParallelLookaheadWorkerInvariance pins the finite-lookahead mode:
// cross-group messages exist, and the merged trace is identical at any
// worker count.
func TestParallelLookaheadWorkerInvariance(t *testing.T) {
	const groups = 4
	const la = 50 * Microsecond
	run := func(workers int) []string {
		root := NewEnv(9)
		tr := &fullTracer{}
		root.SetTracer(tr)
		shards := root.EnterParallel(ParallelOptions{Groups: groups, Workers: workers, Lookahead: la})
		buildRing(shards, la)
		if err := root.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tr.lines
	}
	want := run(1)
	delivered := 0
	for _, l := range want {
		if strings.Contains(l, "sent #") {
			delivered++
		}
	}
	if delivered != groups*5 {
		t.Fatalf("delivered %d ring messages, want %d", delivered, groups*5)
	}
	for _, workers := range []int{2, 4} {
		diffLines(t, fmt.Sprintf("ring workers=%d", workers), want, run(workers))
	}
}

func TestSendGroupRejectsShortDelay(t *testing.T) {
	root := NewEnv(1)
	shards := root.EnterParallel(ParallelOptions{Groups: 2, Workers: 2, Lookahead: 10 * Microsecond})
	shards[0].Spawn("sender", func(p *Proc) {
		shards[0].SendGroup(shards[1], 5*Microsecond, func() {})
	})
	err := root.Run()
	if err == nil || !strings.Contains(err.Error(), "below partition lookahead") {
		t.Fatalf("short SendGroup delay: err = %v", err)
	}
}

func TestSendGroupRejectsZeroLookahead(t *testing.T) {
	root := NewEnv(1)
	shards := root.EnterParallel(ParallelOptions{Groups: 2, Workers: 2})
	shards[0].Spawn("sender", func(p *Proc) {
		shards[0].SendGroup(shards[1], 5*Microsecond, func() {})
	})
	err := root.Run()
	if err == nil || !strings.Contains(err.Error(), "without a finite lookahead") {
		t.Fatalf("SendGroup without lookahead: err = %v", err)
	}
}

// TestParallelSpawnRestrictions pins the pid-determinism guards: no
// spawning or timers on the partitioned root (the panic names the
// shard count and points at home-shard placement), while mid-run
// spawning on a shard env is legal and lands on that home shard.
func TestParallelSpawnRestrictions(t *testing.T) {
	root := NewEnv(1)
	shards := root.EnterParallel(ParallelOptions{Groups: 2, Workers: 2})

	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(fmt.Sprint(r), "partitioned root env (2 shards)") ||
				!strings.Contains(fmt.Sprint(r), "home shard") {
				t.Fatalf("Spawn on partitioned root: recover = %v", r)
			}
		}()
		root.Spawn("bad", func(p *Proc) {})
	}()
	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(fmt.Sprint(r), "partitioned root env (2 shards)") ||
				!strings.Contains(fmt.Sprint(r), "home shard") {
				t.Fatalf("After on partitioned root: recover = %v", r)
			}
		}()
		root.After(Microsecond, func() {})
	}()

	// A mid-run spawn on a shard env is a home-shard launch: it runs on
	// the shard that issued it.
	ran := false
	shards[0].Spawn("late-spawner", func(p *Proc) {
		p.Delay(Microsecond)
		shards[0].Spawn("late-child", func(p *Proc) { ran = true })
	})
	if err := root.Run(); err != nil {
		t.Fatalf("run with mid-run shard Spawn: %v", err)
	}
	if !ran {
		t.Fatalf("mid-run spawned proc never ran")
	}
}

// TestParallelMidRunPIDsDeterministic pins the strided mid-run pid
// allocator: pids depend only on each shard's own spawn order, so the
// assignment is identical at any worker count.
func TestParallelMidRunPIDsDeterministic(t *testing.T) {
	run := func(workers int) []int {
		root := NewEnv(7)
		shards := root.EnterParallel(ParallelOptions{Groups: 3, Workers: workers})
		ids := make([]int, 2*len(shards))
		for g, env := range shards {
			g, env := g, env
			env.Spawn(fmt.Sprintf("parent%d", g), func(p *Proc) {
				p.Delay(Duration(g+1) * Microsecond)
				c1 := env.Spawn("c1", func(p *Proc) {})
				p.Delay(Microsecond)
				c2 := env.Spawn("c2", func(p *Proc) {})
				ids[2*g], ids[2*g+1] = c1.ID(), c2.ID()
			})
		}
		if err := root.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return ids
	}
	want := run(1)
	seen := map[int]bool{}
	for _, id := range want {
		if id == 0 || seen[id] {
			t.Fatalf("mid-run pids not unique: %v", want)
		}
		seen[id] = true
	}
	for _, workers := range []int{2, 4} {
		got := run(workers)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("workers=%d mid-run pids %v, want %v", workers, got, want)
		}
	}
}

// TestGrowPartition pins the repartition hook: new shards join between
// runs, run their procs, and pid strides are re-based without
// collisions.
func TestGrowPartition(t *testing.T) {
	root := NewEnv(9)
	shards := root.EnterParallel(ParallelOptions{Groups: 2, Workers: 2})
	pids := make([]int, 6)
	spawnPair := func(env *Env, slot int, tag string) {
		env.Spawn("p"+tag, func(p *Proc) {
			p.Delay(Microsecond)
			c := env.Spawn("c"+tag, func(p *Proc) {})
			pids[slot] = c.ID()
		})
	}
	for i, env := range shards {
		spawnPair(env, i, fmt.Sprintf("a%d", i))
	}
	if err := root.Run(); err != nil {
		t.Fatal(err)
	}
	grown := root.GrowPartition(2)
	if len(grown) != 2 {
		t.Fatalf("GrowPartition returned %d envs", len(grown))
	}
	for i, env := range grown {
		spawnPair(env, 2+i, fmt.Sprintf("b%d", i))
	}
	for i, env := range shards {
		spawnPair(env, 4+i, fmt.Sprintf("c%d", i))
	}
	if err := root.Run(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, id := range pids {
		if id == 0 || seen[id] {
			t.Fatalf("pids not unique after GrowPartition: %v", pids)
		}
		seen[id] = true
	}
	func() {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "not a partitioned root") {
				t.Fatalf("GrowPartition on unpartitioned env: recover = %v", r)
			}
		}()
		NewEnv(1).GrowPartition(1)
	}()
}

// TestParallelShardPIDsMatchSerial pins that pids are assigned in
// program order across shards, identical to the serial run.
func TestParallelShardPIDsMatchSerial(t *testing.T) {
	root := NewEnv(1)
	shards := root.EnterParallel(ParallelOptions{Groups: 3, Workers: 3})
	var ids []int
	for g, env := range shards {
		p1 := env.Spawn(fmt.Sprintf("a%d", g), func(p *Proc) {})
		p2 := env.Spawn(fmt.Sprintf("b%d", g), func(p *Proc) {})
		ids = append(ids, p1.ID(), p2.ID())
	}
	for i, id := range ids {
		if id != i+1 {
			t.Fatalf("pid order %v, want 1..%d in program order", ids, len(ids))
		}
	}
	if err := root.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestEnterParallelGuards pins the preconditions.
func TestEnterParallelGuards(t *testing.T) {
	expectPanic := func(label, want string, fn func()) {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), want) {
				t.Fatalf("%s: recover = %v, want substring %q", label, r, want)
			}
		}()
		fn()
	}
	e := NewEnv(1)
	e.Spawn("p", func(p *Proc) {})
	expectPanic("non-empty env", "already has procs", func() {
		e.EnterParallel(ParallelOptions{Groups: 2})
	})
	e2 := NewEnv(1)
	e2.EnterParallel(ParallelOptions{Groups: 2})
	expectPanic("double partition", "already partitioned", func() {
		e2.EnterParallel(ParallelOptions{Groups: 2})
	})
	expectPanic("zero groups", "at least one group", func() {
		NewEnv(1).EnterParallel(ParallelOptions{Groups: 0})
	})
}

// TestShardRunRejected: shards are driven by the root env only.
func TestShardRunRejected(t *testing.T) {
	root := NewEnv(1)
	shards := root.EnterParallel(ParallelOptions{Groups: 2})
	if err := shards[0].Run(); err == nil || !strings.Contains(err.Error(), "shard env") {
		t.Fatalf("Run on shard: err = %v", err)
	}
}
