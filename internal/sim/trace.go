package sim

import (
	"fmt"
	"io"
)

// Tracer observes scheduling and user events. Implementations must not
// block or mutate simulation state.
type Tracer interface {
	// Resume is called each time a simproc is given the processor.
	Resume(now Time, pid int, name string)
	// Event is called for user trace points (Env.Trace).
	Event(now Time, source, msg string)
}

// WriterTracer renders user events (and optionally scheduling) to an
// io.Writer, one line per event, prefixed with virtual time.
type WriterTracer struct {
	W           io.Writer
	ShowResumes bool
}

// Resume implements Tracer.
func (t *WriterTracer) Resume(now Time, pid int, name string) {
	if t.ShowResumes {
		fmt.Fprintf(t.W, "%12v  run   p%d(%s)\n", now, pid, name)
	}
}

// Event implements Tracer.
func (t *WriterTracer) Event(now Time, source, msg string) {
	fmt.Fprintf(t.W, "%12v  %-12s %s\n", now, source, msg)
}

// RecordingTracer captures events in memory for test assertions.
type RecordingTracer struct {
	Events []TraceEvent
}

// TraceEvent is one recorded user event.
type TraceEvent struct {
	At     Time
	Source string
	Msg    string
}

// Resume implements Tracer (scheduling events are not recorded).
func (t *RecordingTracer) Resume(Time, int, string) {}

// Event implements Tracer.
func (t *RecordingTracer) Event(now Time, source, msg string) {
	t.Events = append(t.Events, TraceEvent{At: now, Source: source, Msg: msg})
}
