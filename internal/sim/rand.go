package sim

// Rand is a small deterministic random source (splitmix64 core) so that
// simulation runs are reproducible across platforms and Go versions
// (math/rand's stream is version-dependent for some helpers).
type Rand struct {
	state uint64
}

// NewRand creates a source seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// DurationN returns a uniform Duration in [0, d).
func (r *Rand) DurationN(d Duration) Duration {
	if d <= 0 {
		return 0
	}
	return Duration(r.Uint64() % uint64(d))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fork derives an independent child source; streams do not overlap for
// practical purposes.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64() ^ 0xa3c59ac2f0136d21)
}

// StreamSeed derives the stream-th child seed from a root seed using a
// stateless splitmix64 split: finalize root to decorrelate nearby
// roots, perturb by the stream index times the splitmix64 increment,
// and finalize again. Unlike Fork it consumes no generator state, so
// replica k of a sweep gets the same seed no matter which worker runs
// it or in what order — the property the parallel run harness's
// determinism contract rests on.
func StreamSeed(root, stream uint64) uint64 {
	return mix64(mix64(root) + (stream+1)*0x9e3779b97f4a7c15)
}

// StreamSeed2 derives the (a, b)-th child seed of a two-level stream
// split: StreamSeed(StreamSeed(root, a), b). It is the seeding scheme
// of keyed configuration grids — cell a's replica b draws the same seed
// no matter how cells and replicas are scheduled across workers — and
// is exposed as a named helper so call sites document the nesting
// order instead of hand-composing splits inconsistently.
func StreamSeed2(root, a, b uint64) uint64 {
	return StreamSeed(StreamSeed(root, a), b)
}

// mix64 is the splitmix64 output finalizer (same constants as
// Rand.Uint64's scrambler).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
