package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyRun(t *testing.T) {
	e := NewEnv(1)
	if err := e.Run(); err != nil {
		t.Fatalf("empty run: %v", err)
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved with no events: %v", e.Now())
	}
}

func TestSingleProcDelay(t *testing.T) {
	e := NewEnv(1)
	var at Time
	e.Spawn("a", func(p *Proc) {
		p.Delay(5 * Millisecond)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(5*Millisecond) {
		t.Fatalf("woke at %v, want 5ms", at)
	}
}

func TestDelayZeroYields(t *testing.T) {
	e := NewEnv(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Delay(0)
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestTimerOrdering(t *testing.T) {
	e := NewEnv(1)
	var fired []int
	// Schedule in reverse; expect firing in time order, ties by insertion.
	e.After(30*Microsecond, func() { fired = append(fired, 30) })
	e.After(10*Microsecond, func() { fired = append(fired, 10) })
	e.After(20*Microsecond, func() { fired = append(fired, 20) })
	e.After(10*Microsecond, func() { fired = append(fired, 11) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{10, 11, 20, 30}
	if len(fired) != len(want) {
		t.Fatalf("fired %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEnv(1)
	wq := NewWaitQueue(e, "never")
	e.Spawn("stuck", func(p *Proc) {
		wq.Wait(p)
	})
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want deadlock, got %v", err)
	}
}

func TestWaitQueueFIFO(t *testing.T) {
	e := NewEnv(1)
	wq := NewWaitQueue(e, "q")
	var order []string
	for _, n := range []string{"a", "b", "c"} {
		name := n
		e.Spawn(name, func(p *Proc) {
			wq.Wait(p)
			order = append(order, name)
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Delay(Millisecond)
		wq.Wake()
		wq.Wake()
		wq.Wake()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[a b c]" {
		t.Fatalf("order %v", order)
	}
}

func TestWakeValue(t *testing.T) {
	e := NewEnv(1)
	wq := NewWaitQueue(e, "q")
	var got any
	e.Spawn("w", func(p *Proc) {
		got = wq.Wait(p)
	})
	e.Spawn("s", func(p *Proc) {
		wq.WakeValue(42)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestWakeAll(t *testing.T) {
	e := NewEnv(1)
	wq := NewWaitQueue(e, "q")
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn(fmt.Sprint("w", i), func(p *Proc) {
			wq.Wait(p)
			woken++
		})
	}
	e.Spawn("s", func(p *Proc) {
		p.Delay(1)
		if n := wq.WakeAll(); n != 5 {
			t.Errorf("WakeAll reported %d", n)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Fatalf("woken = %d", woken)
	}
}

func TestSemaphore(t *testing.T) {
	e := NewEnv(1)
	sem := NewSemaphore(e, "sem", 2)
	running, maxRunning := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn(fmt.Sprint("w", i), func(p *Proc) {
			sem.Acquire(p)
			running++
			if running > maxRunning {
				maxRunning = running
			}
			p.Delay(Millisecond)
			running--
			sem.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxRunning != 2 {
		t.Fatalf("max concurrent holders = %d, want 2", maxRunning)
	}
	if sem.Count() != 2 {
		t.Fatalf("final count %d", sem.Count())
	}
}

func TestMailbox(t *testing.T) {
	e := NewEnv(1)
	mb := NewMailbox(e, "mb")
	var got []any
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Get(p))
		}
	})
	e.Spawn("send", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Delay(Millisecond)
			mb.Put(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1 2]" {
		t.Fatalf("got %v", got)
	}
}

func TestMailboxTryGet(t *testing.T) {
	e := NewEnv(1)
	mb := NewMailbox(e, "mb")
	if _, ok := mb.TryGet(); ok {
		t.Fatal("TryGet on empty succeeded")
	}
	mb.Put("x")
	if v, ok := mb.TryGet(); !ok || v != "x" {
		t.Fatalf("TryGet = %v, %v", v, ok)
	}
	_ = e
}

func TestKillParkedProc(t *testing.T) {
	e := NewEnv(1)
	wq := NewWaitQueue(e, "q")
	cleaned := false
	reached := false
	victim := e.Spawn("victim", func(p *Proc) {
		defer func() {
			if r := recover(); r != nil {
				cleaned = true
				panic(r) // propagate the kill
			}
		}()
		wq.Wait(p)
		reached = true
	})
	e.Spawn("killer", func(p *Proc) {
		p.Delay(Millisecond)
		victim.Kill()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("victim ran past kill point")
	}
	if !cleaned {
		t.Fatal("deferred cleanup did not run")
	}
	if wq.Len() != 0 {
		t.Fatal("victim left on wait queue")
	}
}

func TestKillSleepingProc(t *testing.T) {
	e := NewEnv(1)
	victim := e.Spawn("victim", func(p *Proc) {
		p.Delay(Second)
		t.Error("victim survived kill")
	})
	e.Spawn("killer", func(p *Proc) {
		p.Delay(Millisecond)
		victim.Kill()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() >= Time(Second) {
		t.Fatalf("clock ran to %v; cancelled timer still fired", e.Now())
	}
}

func TestOnKillHooksLIFO(t *testing.T) {
	e := NewEnv(1)
	var order []int
	wq := NewWaitQueue(e, "q")
	victim := e.Spawn("victim", func(p *Proc) {
		p.OnKill(func() { order = append(order, 1) })
		p.OnKill(func() { order = append(order, 2) })
		wq.Wait(p)
	})
	e.Spawn("killer", func(p *Proc) {
		victim.Kill()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[2 1]" {
		t.Fatalf("hook order %v", order)
	}
}

func TestKillFinishedProcNoop(t *testing.T) {
	e := NewEnv(1)
	p := e.Spawn("quick", func(p *Proc) {})
	e.Spawn("killer", func(q *Proc) {
		q.Delay(Millisecond)
		p.Kill()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("proc not done")
	}
}

func TestKillAt(t *testing.T) {
	e := NewEnv(1)
	steps := 0
	victim := e.Spawn("victim", func(p *Proc) {
		for {
			p.Delay(Millisecond)
			steps++
		}
	})
	victim.KillAt(Time(5*Millisecond) + 1)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 5 {
		t.Fatalf("steps = %d, want 5", steps)
	}
}

func TestProcPanicSurfacesThroughRun(t *testing.T) {
	e := NewEnv(1)
	e.Spawn("bad", func(p *Proc) {
		panic("boom")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("panic not surfaced")
	}
}

func TestStop(t *testing.T) {
	e := NewEnv(1)
	e.Spawn("loop", func(p *Proc) {
		for {
			p.Delay(Millisecond)
		}
	})
	sentinel := errors.New("halt")
	e.After(10*Millisecond, func() { e.Stop(sentinel) })
	if err := e.Run(); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEnv(1)
	ticks := 0
	e.Spawn("loop", func(p *Proc) {
		for {
			p.Delay(Millisecond)
			ticks++
		}
	})
	if err := e.RunUntil(Time(10 * Millisecond)); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d", ticks)
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEnv(1)
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Env().Spawn("child", func(c *Proc) {
			c.Delay(Millisecond)
			childRan = true
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestTraceRecording(t *testing.T) {
	e := NewEnv(1)
	rec := &RecordingTracer{}
	e.SetTracer(rec)
	e.Spawn("p", func(p *Proc) {
		p.Delay(Millisecond)
		e.Trace("p", "hello %d", 7)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != 1 || rec.Events[0].Msg != "hello 7" || rec.Events[0].At != Time(Millisecond) {
		t.Fatalf("events %+v", rec.Events)
	}
}

// Property: with the same seed, two identical simulations produce
// identical interleavings.
func TestDeterminism(t *testing.T) {
	run := func(seed uint64) []string {
		var log []string
		e := NewEnv(seed)
		wq := NewWaitQueue(e, "q")
		for i := 0; i < 4; i++ {
			name := fmt.Sprint("p", i)
			e.Spawn(name, func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Delay(Duration(e.Rand().Intn(1000)) * Microsecond)
					log = append(log, fmt.Sprintf("%s@%v", name, p.Now()))
					if e.Rand().Bool(0.5) {
						wq.Wake()
					} else if e.Rand().Bool(0.3) {
						wq.Wait(p)
					}
				}
			})
		}
		e.Spawn("drain", func(p *Proc) {
			for {
				p.Delay(10 * Millisecond)
				if wq.WakeAll() == 0 && p.Now() > Time(Second) {
					return
				}
			}
		})
		_ = e.RunUntil(Time(2 * Second))
		return log
	}
	a, b := run(42), run(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different traces")
	}
	c := run(43)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

// Property: timers always fire in non-decreasing time order.
func TestTimerMonotonicityProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEnv(7)
		var fired []Time
		for _, d := range delays {
			e.After(Duration(d)*Microsecond, func() {
				fired = append(fired, e.Now())
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Rand.Perm returns a permutation.
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRand(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intn stays in range and Float64 in [0,1).
func TestRandRangesProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				return false
			}
			if f := r.Float64(); f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestYield(t *testing.T) {
	e := NewEnv(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[a1 b a2]" {
		t.Fatalf("order %v", order)
	}
	if e.Now() != 0 {
		t.Fatalf("Yield advanced the clock to %v", e.Now())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEnv(1)
	sem := NewSemaphore(e, "s", 1)
	if !sem.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if sem.TryAcquire() {
		t.Fatal("second TryAcquire succeeded")
	}
	sem.Release()
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestWriterTracerOutput(t *testing.T) {
	var buf strings.Builder
	e := NewEnv(1)
	e.SetTracer(&WriterTracer{W: &buf, ShowResumes: true})
	e.Spawn("worker", func(p *Proc) {
		p.Delay(Millisecond)
		e.Trace("worker", "did %s", "thing")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "did thing") {
		t.Fatalf("missing event line: %q", out)
	}
	if !strings.Contains(out, "run") || !strings.Contains(out, "worker") {
		t.Fatalf("missing resume line: %q", out)
	}
}

func TestTraceWithoutTracerIsNoop(t *testing.T) {
	e := NewEnv(1)
	e.Trace("x", "ignored %d", 1) // must not panic
	e.Spawn("p", func(p *Proc) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRandFork(t *testing.T) {
	r := NewRand(7)
	child := r.Fork()
	// Streams should diverge.
	same := 0
	for i := 0; i < 16; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same == 16 {
		t.Fatal("forked stream identical to parent")
	}
	if r.DurationN(0) != 0 {
		t.Fatal("DurationN(0) must be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestTimeDurationStrings(t *testing.T) {
	if Time(1500*Microsecond).String() != "1.500ms" {
		t.Fatalf("Time string %q", Time(1500*Microsecond).String())
	}
	if Duration(2*Millisecond).String() != "2.000ms" {
		t.Fatalf("Duration string %q", Duration(2*Millisecond).String())
	}
	if Duration(Second).Milliseconds() != 1000 {
		t.Fatal("Milliseconds conversion")
	}
}

func TestSemaphoreNameAndQueueName(t *testing.T) {
	e := NewEnv(1)
	wq := NewWaitQueue(e, "queue-name")
	if wq.Name() != "queue-name" || wq.Len() != 0 {
		t.Fatal("wait queue accessors")
	}
}
