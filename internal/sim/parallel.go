// Conservative parallel DES: one Env partitioned into shard envs (one
// per proc group) that execute concurrently inside safe time windows.
//
// # Model
//
// EnterParallel splits a fresh root Env into N shard envs. Each shard is
// a full Env — its own 4-ary timer heap (the sharded event set), ready
// ring, rng stream, and arena-allocated timer state — running the
// ordinary token-handoff scheduler. The coordinator repeatedly computes
// the earliest pending event time across shards, derives a window bound
// from the partition's lookahead, and lets a worker pool run every shard
// with work inside the window concurrently. A barrier follows each
// window; cross-group messages (SendGroup) queued during the window are
// then delivered in deterministic order before the next window opens.
//
// With Lookahead <= 0 the groups are declared non-interacting: the
// window is unbounded (one window runs every shard to completion), which
// is the configuration lynx uses for topologies whose boot graph splits
// into independent components. With Lookahead > 0 cross-group influence
// is permitted but only at >= lookahead delay, the classic conservative
// PDES contract: an event at time t cannot affect another group before
// t+lookahead, so all events in [t, t+lookahead) are safe to execute
// concurrently.
//
// # Determinism
//
// Unobserved runs need no coordination beyond the barrier: shard
// execution is internally deterministic, and shard-crossing state is
// either ordered at barriers or commutative (atomic counters).
//
// Observed runs (a tracer or an obs recorder attached) must reproduce
// the exact event interleave of the equivalent serial run, byte for
// byte, at any worker count. Each shard therefore logs its execution as
// a sequence of records — boot segments (a proc resumed from the initial
// FIFO) and timer blocks (a timer fired plus the cascade of resumes it
// caused) — with the timers each record scheduled and the trace/metric
// emissions it produced, deferred as closures. After the run a replay
// pass reconstructs the serial order:
//
//   - Lookahead <= 0: the serial run would have interleaved the shards
//     on one env, so replay re-derives that order: the boot-time ready
//     FIFO is drained in global push order, then timers are replayed
//     from a priority queue ordered by (time, global scheduling rank) —
//     exactly the (at, seq) order the serial env uses. Scheduling ranks
//     are assigned as records are consumed, mirroring when the serial
//     run would have scheduled each timer. A popped reference whose
//     shard log shows a different timer next is one that was cancelled
//     (or never fired) and is skipped.
//   - Lookahead > 0: no serial equivalent exists (SendGroup only exists
//     under partitioning), so replay is a k-way merge of the shards'
//     emission streams by (time, shard index) — deterministic at any
//     worker count.
//
// Everything that touches shared state mid-run is either deferred into
// those logs (traces, obs events via Env.Sequenced), made commutative
// (obs counters/histograms are atomic), made shard-local (mid-run Spawn
// on a shard env lands on that home shard, with pids drawn from the
// shard's strided allocator), or forbidden and enforced by panics
// (Spawn and timers on the partitioned root env).
package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ParallelOptions configures Env.EnterParallel.
type ParallelOptions struct {
	// Groups is the number of shard envs to create.
	Groups int
	// Workers caps how many shards execute concurrently per window.
	// Values < 1 mean 1. Workers=1 still runs the partitioned engine,
	// but windows execute shards sequentially in index order.
	Workers int
	// Lookahead is the minimum cross-group influence delay. <= 0
	// declares the groups fully independent (no SendGroup, unbounded
	// windows); > 0 enables SendGroup at >= Lookahead delay.
	Lookahead Duration
	// Observed forces merge logging even without a tracer, so obs
	// recorders sequenced through Env.Sequenced replay in serial order.
	Observed bool
	// ObservedFn, when set, is consulted at the start of each run (in
	// addition to Observed and the tracer): it lets callers whose
	// observers attach after partitioning (e.g. obs sinks added between
	// System construction and Run) still engage deterministic logging.
	ObservedFn func() bool
}

// EnterParallel partitions a fresh root env into opt.Groups shard envs.
// The root env must not have procs, timers, or a run in progress. After
// partitioning, procs and timers belong on the shards; Run/RunUntil on
// the root drives all shards. Shard rng streams are split
// deterministically from the root's stream.
func (e *Env) EnterParallel(opt ParallelOptions) []*Env {
	if opt.Groups < 1 {
		panic("sim: EnterParallel needs at least one group")
	}
	if e.par != nil || e.sh != nil {
		panic("sim: EnterParallel on an already partitioned env")
	}
	if e.running {
		panic("sim: EnterParallel during a run")
	}
	if e.live > 0 || e.ready.n > 0 || e.timers.len() > 0 {
		panic("sim: EnterParallel on an env that already has procs or timers")
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	co := &parCoord{
		root:       e,
		workers:    workers,
		lookahead:  opt.Lookahead,
		observed:   opt.Observed,
		observedFn: opt.ObservedFn,
	}
	envs := make([]*Env, opt.Groups)
	for i := range envs {
		sh := NewEnv(e.rng.Uint64())
		sh.tracer = e.tracer
		sh.sh = &shardState{co: co, idx: i}
		co.shards = append(co.shards, sh)
		envs[i] = sh
	}
	e.par = co
	return envs
}

// GrowPartition appends n fresh shard envs to an existing partition —
// the repartition hook: when topology changes between runs (a launched
// group that belongs to no existing component, a regrouping decided by
// the run-time layer), the caller grows the partition instead of
// tearing it down. It must be called on the partitioned root env,
// between runs. New shards draw their rng seeds from the root stream in
// index order (just like EnterParallel), and every shard's strided pid
// allocator is re-based over the new shard count so pids stay unique
// and deterministic. Returns the new shard envs.
func (e *Env) GrowPartition(n int) []*Env {
	co := e.par
	if co == nil {
		panic("sim: GrowPartition on an env that is not a partitioned root")
	}
	if n < 1 {
		panic("sim: GrowPartition needs at least one new group")
	}
	if co.running || e.running {
		panic("sim: GrowPartition during a run")
	}
	envs := make([]*Env, n)
	for i := range envs {
		sh := NewEnv(e.rng.Uint64())
		sh.tracer = e.tracer
		sh.sh = &shardState{co: co, idx: len(co.shards)}
		co.shards = append(co.shards, sh)
		envs[i] = sh
	}
	if co.started {
		// Re-base the strides: all future pids start above everything
		// allocated so far, shard i offset by i with the new stride.
		base := e.nextPID + 1
		for _, sh := range co.shards {
			if sh.sh.pidNext > base {
				base = sh.sh.pidNext
			}
		}
		k := len(co.shards)
		for i, sh := range co.shards {
			sh.sh.pidNext = base + i
			sh.sh.pidStride = k
		}
	}
	return envs
}

// Partitioned reports whether EnterParallel has been called on e.
func (e *Env) Partitioned() bool { return e.par != nil }

// ParallelRunning reports whether e is a partitioned root env currently
// executing a parallel run. Operations that would race across shards
// (e.g. mid-run link creation) use this to fail loudly.
func (e *Env) ParallelRunning() bool { return e.par != nil && e.par.running }

// Sequencing reports whether emissions from e must go through Sequenced
// to appear in deterministic serial order (true only for shard envs of
// an observed partition, during a window).
func (e *Env) Sequencing() bool {
	sh := e.sh
	return sh != nil && sh.logging && sh.co.running
}

// Sequenced runs fn now when e executes serially, or defers it into the
// shard's merge log to run in serial-equivalent order after the parallel
// run. Observers (trace sinks, obs recorders) route their emissions
// through it so output bytes are identical at any worker count.
func (e *Env) Sequenced(fn func()) {
	if sh := e.sh; sh != nil && sh.logging && sh.co.running {
		sh.emit(e.now, fn)
		return
	}
	fn()
}

// SendGroup schedules fn on the shard env dst at now+d. It is the only
// sanctioned cross-group influence under a finite lookahead, and d must
// be >= the partition's lookahead — that bound is what makes the current
// window safe to execute concurrently. Messages are buffered and
// delivered in deterministic (time, sender group, send order) order at
// the next window barrier.
func (e *Env) SendGroup(dst *Env, d Duration, fn func()) {
	sh, dsh := e.sh, dst.sh
	if sh == nil || dsh == nil || sh.co != dsh.co {
		panic("sim: SendGroup needs source and destination shards of one partition")
	}
	co := sh.co
	if co.lookahead <= 0 {
		panic("sim: SendGroup on a partition without a finite lookahead")
	}
	if d < co.lookahead {
		panic(fmt.Sprintf("sim: SendGroup delay %v below partition lookahead %v", d, co.lookahead))
	}
	co.inboxMu.Lock()
	co.inbox = append(co.inbox, inboxMsg{
		dst: dsh.idx,
		at:  e.now + Time(d),
		src: sh.idx,
		seq: sh.sendSeq,
		fn:  fn,
	})
	co.inboxMu.Unlock()
	sh.sendSeq++
}

// parCoord coordinates one partitioned run: window scheduling, the
// worker pool, cross-group delivery, and the deterministic replay.
type parCoord struct {
	root       *Env
	shards     []*Env
	workers    int
	lookahead  Duration
	observed   bool
	observedFn func() bool
	running    bool
	// started flips sticky-true at the partition's first run; from then
	// on every spawn (mid-run or between runs) draws from its shard's
	// strided pid allocator instead of the root counter.
	started bool

	// bootQueue records, during setup, the shard index of every push
	// onto a shard's initial ready FIFO (Spawns and pre-run wakes), in
	// global program order — the seed of the serial replay.
	bootQueue []int
	// prelog records timers scheduled during setup, in global program
	// order: they precede every mid-run scheduling in serial (at, seq)
	// rank order.
	prelog []preSched

	// inbox buffers SendGroup messages during a window; drained at each
	// barrier. inboxMu is the only lock shards share mid-window.
	inboxMu sync.Mutex
	inbox   []inboxMsg
}

// shardState is the per-shard bookkeeping hung off a shard Env.
type shardState struct {
	co  *parCoord
	idx int

	// pidNext/pidStride implement the shard's strided pid allocator,
	// frozen at the partition's first run (and re-based by
	// GrowPartition): pids for mid-run spawns depend only on this
	// shard's own spawn order.
	pidNext   int
	pidStride int

	// logging is true when this run must replay in serial order
	// (refreshed at the start of each run).
	logging bool
	// inBlock is true while the cascade caused by a fired timer is
	// draining (ready pops with no intervening empty-ready state).
	inBlock bool
	// schedN numbers timers scheduled by this shard, in order.
	schedN int
	// cur is the record currently being appended to.
	cur *logRec
	// recs is this run's execution log.
	recs []*logRec
	// sendSeq numbers SendGroup calls from this shard.
	sendSeq int
}

// logRec is one unit of shard execution: a boot segment (timerID -1, one
// proc resumed from the initial FIFO plus everything it ran before
// parking) or a timer block (timer logID fired plus its cascade).
type logRec struct {
	timerID int
	at      Time
	// pushes counts ready pushes observed outside any block — i.e.
	// additional boot-FIFO entries this segment appended (pre-run wakes
	// and Spawns are counted in bootQueue instead).
	pushes int
	emits  []emitRec
	scheds []schedRef
}

type emitRec struct {
	at Time
	fn func()
}

// schedRef records a timer scheduled by this record, in program order.
type schedRef struct {
	at Time
	id int
}

type preSched struct {
	shard int
	at    Time
	id    int
}

type inboxMsg struct {
	dst int
	at  Time
	src int
	seq int
	fn  func()
}

func (sh *shardState) onSched(tm *timer) {
	tm.logID = sh.schedN
	sh.schedN++
	if !sh.co.running {
		sh.co.prelog = append(sh.co.prelog, preSched{shard: sh.idx, at: tm.at, id: tm.logID})
	} else if sh.cur != nil {
		sh.cur.scheds = append(sh.cur.scheds, schedRef{at: tm.at, id: tm.logID})
	}
}

// onBootPush is called for ready pushes outside timer blocks.
func (sh *shardState) onBootPush() {
	if !sh.co.running {
		sh.co.bootQueue = append(sh.co.bootQueue, sh.idx)
	} else if sh.cur != nil {
		sh.cur.pushes++
	}
}

// onResume is called when a shard resumes a proc from its ready queue.
// Outside a timer block this opens a boot-segment record.
func (sh *shardState) onResume(e *Env, p *Proc) {
	if !sh.inBlock {
		sh.newRec(-1, e.now)
	}
	if e.tracer != nil {
		tr, now, id, name := e.tracer, e.now, p.id, p.name
		sh.emit(now, func() { tr.Resume(now, id, name) })
	}
}

// onFire opens a timer-block record for timer t about to fire.
func (sh *shardState) onFire(t *timer) {
	sh.newRec(t.logID, t.at)
	sh.inBlock = true
}

func (sh *shardState) newRec(timerID int, at Time) {
	r := &logRec{timerID: timerID, at: at}
	sh.recs = append(sh.recs, r)
	sh.cur = r
}

// emit defers fn into the current record (or runs it immediately when no
// record is open, which only happens outside runs).
func (sh *shardState) emit(at Time, fn func()) {
	if sh.cur == nil {
		fn()
		return
	}
	sh.cur.emits = append(sh.cur.emits, emitRec{at: at, fn: fn})
}

// nextEventTime reports the earliest instant at which e has work: now if
// procs are ready, else the earliest pending timer (including a stashed
// over-horizon timer). ok=false means e is idle (done, deadlocked, or
// stopped).
func (e *Env) nextEventTime() (Time, bool) {
	if e.stopped {
		return 0, false
	}
	if e.ready.n > 0 {
		return e.now, true
	}
	best, ok := Time(0), false
	if t := e.overHorizon; t != nil {
		best, ok = t.at, true
	}
	if e.timers.len() > 0 {
		if at := e.timers.s[0].at; !ok || at < best {
			best, ok = at, true
		}
	}
	return best, ok
}

// runRoot drives one partitioned run to limit (or completion when
// limit < 0): window loop, barriers, replay, and result folding.
func (co *parCoord) runRoot(limit Time) error {
	root := co.root
	if co.running || root.running {
		return errors.New("sim: Run re-entered")
	}
	if root.stopped {
		return root.stopErr
	}
	root.running = true
	defer func() { root.running = false }()

	if !co.started {
		// Freeze the strided pid bases: every pid handed out so far came
		// from the root counter; from here on shard i allocates
		// nextPID+1+i, +stride, +2·stride, … — unique across shards and
		// independent of worker interleaving.
		co.started = true
		k := len(co.shards)
		for i, sh := range co.shards {
			sh.sh.pidNext = root.nextPID + 1 + i
			sh.sh.pidStride = k
		}
	}

	logging := co.observed || root.tracer != nil || (co.observedFn != nil && co.observedFn())
	for _, sh := range co.shards {
		sh.tracer = root.tracer
		sh.sh.logging = logging
	}

	co.running = true
	hitHorizon := false
	for {
		next, ok := co.nextEventTime()
		if !ok {
			break
		}
		if limit >= 0 && next > limit {
			hitHorizon = true
			break
		}
		bound := limit
		if co.lookahead > 0 {
			// Events in [next, next+lookahead) cannot influence another
			// group (SendGroup enforces delay >= lookahead), so every
			// shard may run through next+lookahead-1 concurrently.
			if b := next + Time(co.lookahead) - 1; bound < 0 || b < bound {
				bound = b
			}
		}
		co.runWindow(bound)
		if _, stopped := co.stopState(); stopped {
			break
		}
		co.deliverInbox()
	}
	co.running = false

	if logging {
		co.replay()
	} else {
		co.resetLogs()
	}
	// Fold shard clocks into the root clock: the latest instant any
	// group reached.
	for _, sh := range co.shards {
		if sh.now > root.now {
			root.now = sh.now
		}
	}
	if err, stopped := co.stopState(); stopped {
		root.stopped = true
		root.stopErr = err
		return err
	}
	live := 0
	for _, sh := range co.shards {
		live += sh.live
	}
	if live > 0 && !hitHorizon {
		return fmt.Errorf("%w at %v\n%s", ErrDeadlock, root.now, co.diagnose())
	}
	return nil
}

// nextEventTime reports the earliest pending event across all shards.
func (co *parCoord) nextEventTime() (Time, bool) {
	best, ok := Time(0), false
	for _, sh := range co.shards {
		if t, shOK := sh.nextEventTime(); shOK && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// runWindow executes every shard with work at or before bound, up to
// workers shards concurrently. Shard runs are mutually independent
// within a window, so execution order cannot affect results; with one
// worker (or one active shard) the goroutine hop is skipped entirely.
func (co *parCoord) runWindow(bound Time) {
	var active []*Env
	for _, sh := range co.shards {
		if t, ok := sh.nextEventTime(); ok && (bound < 0 || t <= bound) {
			active = append(active, sh)
		}
	}
	if co.workers == 1 || len(active) == 1 {
		for _, sh := range active {
			sh.runWindowShard(bound)
		}
		return
	}
	sem := make(chan struct{}, co.workers)
	var wg sync.WaitGroup
	for _, sh := range active {
		sh := sh
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			sh.runWindowShard(bound)
			<-sem
		}()
	}
	wg.Wait()
}

func (e *Env) runWindowShard(bound Time) {
	e.running = true
	e.runCore(bound)
	e.running = false
}

// deliverInbox drains cross-group messages at a barrier, scheduling each
// on its destination shard. Sorting by (time, sender, send order) makes
// delivery order — and therefore destination (at, seq) tiebreaks —
// independent of worker interleaving.
func (co *parCoord) deliverInbox() {
	if len(co.inbox) == 0 {
		return
	}
	msgs := co.inbox
	co.inbox = nil
	sort.Slice(msgs, func(i, j int) bool {
		a, b := msgs[i], msgs[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for _, m := range msgs {
		co.shards[m.dst].schedFunc(m.at, m.fn)
	}
}

// stopState reports the first stopped shard's error (by shard index, a
// deterministic choice), or the root's own Stop.
func (co *parCoord) stopState() (error, bool) {
	if co.root.stopped {
		return co.root.stopErr, true
	}
	for _, sh := range co.shards {
		if sh.stopped {
			return sh.stopErr, true
		}
	}
	return nil, false
}

// diagnose merges deadlock diagnostics across shards into the same
// sorted rendering a serial env produces.
func (co *parCoord) diagnose() string {
	var lines []string
	for _, sh := range co.shards {
		lines = append(lines, sh.diagnoseLines()...)
	}
	sort.Strings(lines)
	if len(lines) == 0 {
		return "  (no registered wait queues; procs blocked on raw parks)"
	}
	return strings.Join(lines, "\n")
}

// replay runs the deferred emissions in deterministic order and resets
// the logs.
func (co *parCoord) replay() {
	if co.lookahead > 0 {
		co.replayMerge()
	} else {
		co.replaySerial()
	}
	co.resetLogs()
}

// resetLogs discards the per-run logging state (after replay, or after
// an unobserved run that recorded only the setup-time prelog).
func (co *parCoord) resetLogs() {
	for _, sh := range co.shards {
		st := sh.sh
		st.recs, st.cur, st.schedN = nil, nil, 0
	}
	co.prelog = co.prelog[:0]
	co.bootQueue = co.bootQueue[:0]
}

// replayRef is a pending timer block in the serial replay, ordered by
// (time, scheduling rank) — the serial env's (at, seq) order. Rank is a
// global counter advanced per scheduling in replay order; within one
// shard it increases in the shard's own scheduling order, which is all
// (at, seq) tiebreaking can observe for timers of one shard, and
// cross-shard ties are resolved exactly as the serial interleave would
// have scheduled them.
type replayRef struct {
	at    Time
	rank  int
	shard int
	id    int
}

func refLess(a, b replayRef) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.rank < b.rank
}

// refHeap is a binary min-heap of replayRefs.
type refHeap []replayRef

func (h *refHeap) push(r replayRef) {
	*h = append(*h, r)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !refLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *refHeap) pop() replayRef {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s = *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && refLess(s[l], s[m]) {
			m = l
		}
		if r < n && refLess(s[r], s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// replaySerial reconstructs the event order of the equivalent serial run
// for non-interacting groups: drain the boot FIFO in global push order,
// then fire timer blocks in (time, scheduling rank) order. Consuming a
// record runs its deferred emissions and registers the timers it
// scheduled; a popped reference not matching its shard's next record
// refers to a timer that was cancelled (or never reached) and is
// skipped.
func (co *parCoord) replaySerial() {
	cur := make([]int, len(co.shards))
	var h refHeap
	rank := 0
	sched := func(shard int, at Time, id int) {
		h.push(replayRef{at: at, rank: rank, shard: shard, id: id})
		rank++
	}
	consume := func(si int) *logRec {
		st := co.shards[si].sh
		r := st.recs[cur[si]]
		cur[si]++
		for _, em := range r.emits {
			em.fn()
		}
		for _, sr := range r.scheds {
			sched(si, sr.at, sr.id)
		}
		return r
	}

	for _, ps := range co.prelog {
		sched(ps.shard, ps.at, ps.id)
	}
	fifo := append([]int(nil), co.bootQueue...)
	for head := 0; head < len(fifo); head++ {
		si := fifo[head]
		st := co.shards[si].sh
		// Each FIFO token consumes one boot-segment record; a missing
		// record means the shard's run ended before draining its FIFO.
		if cur[si] >= len(st.recs) || st.recs[cur[si]].timerID != -1 {
			continue
		}
		r := consume(si)
		for i := 0; i < r.pushes; i++ {
			fifo = append(fifo, si)
		}
	}
	for len(h) > 0 {
		ref := h.pop()
		st := co.shards[ref.shard].sh
		if cur[ref.shard] >= len(st.recs) {
			continue
		}
		if st.recs[cur[ref.shard]].timerID != ref.id {
			continue // cancelled, or the run ended before it fired
		}
		consume(ref.shard)
	}
}

// replayMerge merges the shards' emission streams by (time, shard
// index) for finite-lookahead partitions, where no serial-equivalent
// order exists. Within a shard, emissions replay in execution order.
func (co *parCoord) replayMerge() {
	type cursor struct{ rec, em int }
	cs := make([]cursor, len(co.shards))
	for {
		best := -1
		var bestAt Time
		for si, sh := range co.shards {
			st := sh.sh
			c := &cs[si]
			for c.rec < len(st.recs) && c.em >= len(st.recs[c.rec].emits) {
				c.rec++
				c.em = 0
			}
			if c.rec >= len(st.recs) {
				continue
			}
			if at := st.recs[c.rec].emits[c.em].at; best < 0 || at < bestAt {
				best, bestAt = si, at
			}
		}
		if best < 0 {
			return
		}
		c := &cs[best]
		co.shards[best].sh.recs[c.rec].emits[c.em].fn()
		c.em++
	}
}
