package sim

import "math"

// ExpFloat64 returns a unit-mean exponential draw via the inverse-CDF
// transform of one uniform draw. One Uint64 of generator state is
// consumed per call, and the -ln(u) transform involves no
// platform-varying intrinsics (math.Log is the portable Go
// implementation on the supported targets), so arrival schedules
// derived from it are reproducible across machines.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	if u <= 0 {
		u = 1e-12 // Float64 is in [0,1); guard the measure-zero edge anyway
	}
	return -math.Log(u)
}

// ArrivalStream is a deterministic open-loop arrival process in virtual
// time: successive calls to Next return the instants of a Poisson
// process with the given rate, drawn from a private seeded stream.
//
// It is the first-class generator primitive for workload engines that
// inject traffic into a running simulation. A generator simproc asks
// the stream for the next instant and sleeps until it — it never holds
// a timer of its own between arrivals and never consumes the
// environment's shared Rand, so an arrival process neither perturbs
// other seeded draws nor fights the fast-path scheduler's timer
// freelist with long-lived pending timers.
type ArrivalStream struct {
	rng *Rand
	// mean is the mean interarrival gap in virtual nanoseconds.
	mean float64
	at   Time
}

// NewArrivalStream creates a Poisson arrival stream with ratePerSec
// events per virtual second, drawing from its own stream seeded with
// seed. It panics if ratePerSec is not positive (an arrival process
// with no rate is a configuration error, not a workload).
func NewArrivalStream(seed uint64, ratePerSec float64) *ArrivalStream {
	if ratePerSec <= 0 {
		panic("sim: ArrivalStream rate must be positive")
	}
	return &ArrivalStream{
		rng:  NewRand(seed),
		mean: float64(Second) / ratePerSec,
	}
}

// Next advances the stream by one exponential gap and returns the new
// arrival instant. The first arrival falls one gap after time zero (a
// Poisson process has no event at its origin). Gaps are floored at one
// nanosecond so instants strictly advance — two arrivals never collide
// on the same virtual tick, which keeps downstream event ordering a
// function of the schedule alone.
func (s *ArrivalStream) Next() Time {
	gap := Time(s.mean * s.rng.ExpFloat64())
	if gap < 1 {
		gap = 1
	}
	s.at += gap
	return s.at
}

// Last reports the most recently returned arrival instant (zero before
// the first Next).
func (s *ArrivalStream) Last() Time { return s.at }
