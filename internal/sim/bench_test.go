package sim_test

import (
	"testing"

	"repro/internal/sim"
)

// The scheduler microbenchmarks below are mirrored by cmd/schedbench,
// which records them in BENCH_sched.json and gates allocs/op
// regressions in make check. Keep the workloads in sync.

// BenchmarkSchedTimer8: 8 procs sleeping in lockstep — the timer-heap
// pop + proc wakeup path (one sched event per op).
func BenchmarkSchedTimer8(b *testing.B) {
	b.ReportAllocs()
	env := sim.NewEnv(1)
	const procs = 8
	for i := 0; i < procs; i++ {
		env.Spawn("p", func(p *sim.Proc) {
			for {
				p.Delay(sim.Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := env.RunUntil(sim.Time(b.N) * sim.Time(sim.Microsecond) / procs); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSchedYield: two always-ready procs alternating — the direct
// cross-proc handoff path, no timers (two sched events per op).
func BenchmarkSchedYield(b *testing.B) {
	b.ReportAllocs()
	env := sim.NewEnv(1)
	n := b.N
	for i := 0; i < 2; i++ {
		env.Spawn("y", func(p *sim.Proc) {
			for j := 0; j < n; j++ {
				p.Yield()
			}
		})
	}
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSchedTimer256: 256 sleeping procs — timer-heap depth stress
// (one sched event per op).
func BenchmarkSchedTimer256(b *testing.B) {
	b.ReportAllocs()
	env := sim.NewEnv(1)
	const procs = 256
	for i := 0; i < procs; i++ {
		env.Spawn("p", func(p *sim.Proc) {
			for {
				p.Delay(sim.Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := env.RunUntil(sim.Time(b.N) * sim.Time(sim.Microsecond) / procs); err != nil {
		b.Fatal(err)
	}
}
