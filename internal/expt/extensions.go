package expt

import (
	"fmt"

	sodabind "repro/internal/bind/soda"
	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/soda"
	"repro/lynx"
	"repro/lynx/fault"
)

// The paper leaves two empirical questions open because the SODA
// implementation was never built (§4.2.1, §4.2). Having built it, we can
// answer them. These extension experiments go beyond the paper's own
// evaluation; EXPERIMENTS.md records them separately.

// E12 probes §4.2.1's worry: "Too small a limit on outstanding requests
// would leave the possibility of deadlock when many links connect the
// same pair of processes... there is no way to reflect the limit to the
// user in a semantically-meaningful way." The paper computes that the
// design needs up to three outstanding requests per link (request put,
// reply put, status signal). We connect one process pair with a growing
// number of simultaneously-active links under different per-pair limits.
//
// Measured confirmation: every link awaiting a reply holds one status
// signal outstanding, so once active links exceed the limit the pair
// LIVELOCKS — puts are rejected forever while the retry traffic spins.
// The paper's deadlock prediction is real, and its "half a dozen or so"
// estimate is exactly the failure threshold.
func e12(seed uint64) *Result {
	res := &Result{
		ID:      "E12",
		Title:   "EXT: per-pair outstanding-request limits under many links (§4.2.1)",
		Columns: []string{"links between pair", "pair limit", "completed", "outcome", "backpressure retries"},
		Pass:    true,
	}
	for _, links := range []int{2, 6, 12} {
		for _, limit := range []int{4, 8, 0} {
			done, retries, err := runE12(seed, links, limit)
			if err != nil {
				res.Pass = false
			}
			// The paper's predicted threshold: each active link pins a
			// status signal, so the pair wedges iff links > limit.
			predictStall := limit > 0 && links > limit
			outcome := "ok"
			if done != links {
				outcome = "LIVELOCK (as §4.2.1 predicts)"
			}
			if (done != links) != predictStall {
				res.Pass = false // behavior diverged from the prediction
			}
			limStr := fmt.Sprint(limit)
			if limit == 0 {
				limStr = "∞"
			}
			res.Rows = append(res.Rows, []string{
				fmt.Sprint(links), limStr, fmt.Sprintf("%d/%d", done, links),
				outcome, fmt.Sprint(retries),
			})
		}
	}
	res.Notes = append(res.Notes,
		"each link awaiting a reply holds one status signal outstanding; links > limit wedges the pair",
		"\"correctness would start to depend on global characteristics of the process-interconnection graph\" — confirmed",
		"the kernel cannot reflect the limit meaningfully to the user: the run-time package can only spin")
	return res
}

// runE12 runs `links` concurrent echoes between one process pair with
// the given kernel pair-limit; returns completed ops and retry count.
func runE12(seed uint64, links, pairLimit int) (completed int, retries int64, runErr error) {
	env := sim.NewEnv(sysSeed(seed, 1))
	bus := netsim.NewCSMABus(env.Rand().Fork())
	k := soda.NewKernel(env, bus, calib.DefaultSODA())
	k.PairLimit = pairLimit
	kpA := k.NewProcess(0)
	kpB := k.NewProcess(1)
	cfg := sodabind.DefaultConfig()
	trA := sodabind.New(env, k, kpA, cfg)
	trB := sodabind.New(env, k, kpB, cfg)
	endsA := make([]core.TransEnd, links)
	endsB := make([]core.TransEnd, links)
	for i := range endsA {
		endsA[i], endsB[i] = sodabind.BootLink(trA, trB)
	}
	costs := calib.DefaultSODARuntime()
	core.NewProcess(env, "A", trA, costs, func(t *core.Thread) {
		boot := make([]*core.End, links)
		for i, te := range endsA {
			boot[i] = t.AdoptBootEnd(te)
		}
		done := 0
		for i := 0; i < links; i++ {
			e := boot[i]
			t.Fork(fmt.Sprint("c", i), func(w *core.Thread) {
				if _, err := w.Connect(e, "op", core.Msg{Data: []byte{1}}); err == nil {
					completed++
				}
				done++
				if done == links {
					for _, x := range boot {
						w.Destroy(x)
					}
				}
			})
		}
	})
	core.NewProcess(env, "B", trB, costs, func(t *core.Thread) {
		for _, te := range endsB {
			e := t.AdoptBootEnd(te)
			t.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Sleep(30 * sim.Millisecond) // hold replies so requests pile up
				st.Reply(req, core.Msg{Data: req.Data()})
			})
		}
	})
	runErr = env.RunUntil(sim.Time(60 * sim.Second))
	retries = trA.Stats().PairLimitRetries + trB.Stats().PairLimitRetries
	return completed, retries, runErr
}

// E13 answers §4.2's open question: "Without an actual implementation to
// measure, and without reasonable assumptions about the reliability of
// SODA broadcasts, it is impossible to predict the success rate of the
// heuristics." We sweep the broadcast loss rate and measure how often
// a dormant-link repair is resolved by discover versus escalating to the
// freeze search.
func e13(seed uint64) *Result {
	res := &Result{
		ID:      "E13",
		Title:   "EXT: discover success vs broadcast loss; freeze escalation rate (§4.2)",
		Columns: []string{"bcast loss rate", "episodes", "fixed by discover", "escalated to freeze"},
		Pass:    true,
	}
	const episodes = 12
	var prevDiscover = episodes + 1
	for _, loss := range []float64{0.01, 0.25, 0.60, 0.95} {
		disc, frz := 0, 0
		for ep := 0; ep < episodes; ep++ {
			byDiscover, byFreeze := runE13Episode(loss, sysSeed(seed, uint64(ep+1)))
			if byDiscover {
				disc++
			}
			if byFreeze {
				frz++
			}
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.0f%%", loss*100), fmt.Sprint(episodes),
			fmt.Sprint(disc), fmt.Sprint(frz),
		})
		// Shape: discover's success must degrade monotonically-ish with
		// loss, with freeze picking up the slack.
		if disc > prevDiscover {
			res.Pass = false
		}
		prevDiscover = disc
		if disc+frz < episodes {
			res.Pass = false // some episode resolved neither way
		}
	}
	res.Notes = append(res.Notes,
		"at realistic loss (≈1%) the discover heuristic almost always succeeds — the paper's hope confirmed",
		"the absolute fallback is exercised only as broadcasts become hopeless, at the cost of halting everyone")
	return res
}

// runE13Episode: one dormant-link move with the given broadcast loss
// rate, caches disabled; reports which mechanism repaired the hint.
func runE13Episode(loss float64, seed uint64) (byDiscover, byFreeze bool) {
	opts := lynx.SODAOptions{
		CacheSize:       -1, // cache disabled
		DiscoverRetries: 2,
		HintTimeout:     120 * sim.Millisecond,
	}
	// The loss rate rides on a declarative fault plan (a bcast drop rule
	// overrides the bus's default LossRate; point frames are untouched,
	// so the episode is byte-identical to the old raw-field override).
	sys := lynx.NewSystem(lynx.Config{
		Substrate: lynx.SODA, Seed: seed, SODA: opts,
		Faults: fault.BroadcastLoss(loss),
	})

	a := sys.Spawn("A", func(th *lynx.Thread, boot []*lynx.End) {
		e := boot[0]
		if _, err := th.Connect(e, "one", lynx.Msg{}); err != nil {
			return
		}
		th.Sleep(400 * lynx.Millisecond)
		th.Connect(e, "two", lynx.Msg{})
		th.Destroy(e)
	})
	b := sys.Spawn("B", func(th *lynx.Thread, boot []*lynx.End) {
		e, toC := boot[0], boot[1]
		req, err := th.Receive(e)
		if err != nil {
			return
		}
		th.Reply(req, lynx.Msg{})
		th.Sleep(100 * lynx.Millisecond)
		th.Connect(toC, "take", lynx.Msg{Links: []*lynx.End{e}})
		th.Sleep(6 * lynx.Second)
		th.Destroy(toC)
	})
	c := sys.Spawn("C", func(th *lynx.Thread, boot []*lynx.End) {
		req, err := th.Receive(boot[0])
		if err != nil {
			return
		}
		moved := req.Links()[0]
		th.Reply(req, lynx.Msg{})
		th.Sleep(5 * lynx.Second)
		th.Serve(moved, func(st *lynx.Thread, r2 *lynx.Request) {
			st.Reply(r2, lynx.Msg{})
		})
	})
	sys.Join(a, b)
	sys.Join(b, c)
	if err := sys.RunFor(30 * lynx.Second); err != nil {
		return false, false
	}
	st := a.Stats().SODA()
	return st.HintFixes > 0 && st.Freezes == 0, st.Freezes > 0
}
