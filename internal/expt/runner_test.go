package expt

import (
	"strings"
	"testing"

	"repro/lynx"
)

// The PR's determinism contract: aggregated output (tables, CIs,
// metric snapshots) must be byte-identical for Parallel=1 and
// Parallel=8 at the same root seed.
func TestAllWithDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog twice")
	}
	optsSerial := Options{Parallel: 1, Reps: 2, RootSeed: 7}
	optsWide := Options{Parallel: 8, Reps: 2, RootSeed: 7}
	serial := AllWith(optsSerial)
	wide := AllWith(optsWide)
	if s, w := RenderAll(serial), RenderAll(wide); s != w {
		t.Fatalf("rendered catalog differs between Parallel=1 and Parallel=8:\n--- serial\n%s\n--- parallel\n%s", s, w)
	}
	for i := range serial {
		sm, wm := serial[i].Metrics, wide[i].Metrics
		if len(sm) != len(wm) {
			t.Fatalf("%s: metric key sets differ: %d vs %d", serial[i].ID, len(sm), len(wm))
		}
		for _, k := range sortedMetricKeys(sm) {
			if sm[k] != wm[k] {
				t.Fatalf("%s: metric %s differs: %d vs %d", serial[i].ID, k, sm[k], wm[k])
			}
		}
	}
}

// Replicated runs must keep the canonical replica-0 output embedded:
// with Reps=1 the result is bit-for-bit the single-shot experiment.
func TestSingleRepMatchesLegacy(t *testing.T) {
	legacy := E4()
	viaRunner := ByIDWith("E4", Options{Parallel: 2, Reps: 1})
	if RenderAll([]*Result{legacy}) != RenderAll([]*Result{viaRunner}) {
		t.Fatalf("Reps=1 runner output diverged from the single-shot experiment:\n%s\nvs\n%s",
			legacy.Render(), viaRunner.Render())
	}
}

// A replicated experiment annotates its table with the replication
// note and carries the replica count.
func TestReplicationAnnotation(t *testing.T) {
	r := ByIDWith("E4", Options{Parallel: 2, Reps: 3, RootSeed: 11})
	if r.Replicas != 3 || r.RootSeed != 11 {
		t.Fatalf("replication fields not set: %+v", r)
	}
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "replication: R=3") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no replication note in %v", r.Notes)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("E4 aggregated table lost rows: %v", r.Rows)
	}
}

// Non-replicable experiments run once regardless of Reps.
func TestNonReplicableRunsOnce(t *testing.T) {
	r := ByIDWith("E5", Options{Parallel: 2, Reps: 4})
	if r.Replicas != 0 {
		t.Fatalf("E5 should be single-shot; got Replicas=%d", r.Replicas)
	}
}

// The replication tolerance policy: an aggregated result passes when
// ≥ShapeThreshold of its replicas match the shape (default 0.8),
// replacing the old all-replicas AND, and the annotation reports
// "shape pass k/R (threshold m)".
func TestShapeTolerancePolicy(t *testing.T) {
	mk := func(pass bool) *Result {
		return &Result{ID: "EX", Title: "x", Columns: []string{"a"},
			Rows: [][]string{{"1"}}, Pass: pass}
	}
	replicas := func(passes, fails int) []*Result {
		var rs []*Result
		for i := 0; i < passes; i++ {
			rs = append(rs, mk(true))
		}
		for i := 0; i < fails; i++ {
			rs = append(rs, mk(false))
		}
		return rs
	}
	cases := []struct {
		passes, fails int
		threshold     float64
		want          bool
	}{
		{4, 1, 0, true},    // 4/5 = 0.8 meets the default threshold exactly
		{3, 2, 0, false},   // 3/5 < 0.8
		{4, 1, 1.0, false}, // strict AND restored by threshold 1
		{5, 0, 1.0, true},
		{1, 1, 0.5, true}, // 1/2 meets a 50% threshold
	}
	for _, c := range cases {
		o := Options{Reps: c.passes + c.fails, ShapeThreshold: c.threshold}.normalized()
		agg := aggregateResults(replicas(c.passes, c.fails), o)
		if agg.Pass != c.want {
			t.Errorf("passes=%d fails=%d threshold=%v: Pass=%v, want %v",
				c.passes, c.fails, c.threshold, agg.Pass, c.want)
		}
	}
	o := Options{Reps: 5}.normalized()
	agg := aggregateResults(replicas(4, 1), o)
	found := false
	for _, n := range agg.Notes {
		if strings.Contains(n, "shape pass 4/5 (threshold 0.80)") {
			found = true
		}
	}
	if !found {
		t.Fatalf("annotation missing threshold: %v", agg.Notes)
	}
}

// The grid-ported E3 sweep must reproduce the hand-rolled measurement
// loop cell for cell: the grid abstraction subsumes it.
func TestE3GridSubsumesHandRolledSweep(t *testing.T) {
	tbl := e3Grid(0)
	for _, n := range []int{0, 2048} {
		for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA} {
			direct := echoRTT(0, sub, n, 1, false)
			cell := tbl.CellAt(sub, n)
			if cell == nil {
				t.Fatalf("grid has no cell for (%v, %d)", sub, n)
			}
			if got := lynx.Duration(cell.Agg.Values["rtt_ns"].Mean); got != direct {
				t.Errorf("(%v, %d): grid %v vs hand-rolled %v", sub, n, got, direct)
			}
		}
	}
}

func TestAggregateCell(t *testing.T) {
	cases := []struct {
		in   []string
		want string
	}{
		{[]string{"57", "57", "57"}, "57"},
		{[]string{"SODA", "Charlotte", "SODA"}, "(varies)"},
		{[]string{"2.40", "2.40", "2.44"}, "2.41 ±0.03"},
		{[]string{"10", "14", "12"}, "12.0 ±2.3"},
	}
	for _, c := range cases {
		if got := aggregateCell(c.in); got != c.want {
			t.Errorf("aggregateCell(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCatalogMatchesByID(t *testing.T) {
	for _, e := range Catalog() {
		if ByID(e.ID) == nil {
			t.Errorf("catalog id %s not resolvable via ByID", e.ID)
		}
	}
	if got := len(Catalog()); got != 13 {
		t.Fatalf("catalog size = %d, want 13", got)
	}
}
