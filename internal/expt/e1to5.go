package expt

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"

	"repro/internal/calib"
	"repro/internal/charlotte"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/lynx"
	"repro/lynx/grid"
	"repro/lynx/sweep"
)

// rawCharlotteRTT measures the §3.3 "C programs that make the same
// series of kernel calls" round trip: direct kernel primitives, no LYNX
// run-time package.
func rawCharlotteRTT(seed uint64, payload int) lynx.Duration {
	env := sim.NewEnv(sysSeed(seed, 1))
	net := netsim.NewTokenRing(20)
	k := charlotte.NewKernel(env, net, calib.DefaultCharlotte())
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	ea, eb := k.BootLink(a, b)
	data := make([]byte, payload)
	var rtt lynx.Duration
	env.Spawn("server", func(p *sim.Proc) {
		b.Receive(p, eb, payload+64)
		b.Wait(p)
		b.Send(p, eb, data, charlotte.EndRef{})
		b.Wait(p)
	})
	env.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		a.Receive(p, ea, payload+64)
		a.Send(p, ea, data, charlotte.EndRef{})
		a.Wait(p) // send completion
		a.Wait(p) // reply arrival
		rtt = lynx.Duration(p.Now() - start)
	})
	if err := env.Run(); err != nil {
		panic(err)
	}
	return rtt
}

// E1 regenerates §3.3's Charlotte latency table: simple remote operation
// under LYNX vs the equivalent raw kernel-call sequence, at 0 and 1000
// bytes of parameters in each direction.
//
// Paper: LYNX 57 ms / 65 ms; raw C 55 ms / 60 ms.
func e1(seed uint64) *Result {
	lynx0 := echoRTT(seed, lynx.Charlotte, 0, 1, false)
	lynx1k := echoRTT(seed, lynx.Charlotte, 1000, 1, false)
	raw0 := rawCharlotteRTT(seed, 0)
	raw1k := rawCharlotteRTT(seed, 1000)

	pass := within(lynx0.Milliseconds(), 57, 0.12) &&
		within(lynx1k.Milliseconds(), 65, 0.12) &&
		within(raw0.Milliseconds(), 55, 0.12) &&
		within(raw1k.Milliseconds(), 60, 0.12) &&
		lynx0 > raw0 && lynx1k > raw1k

	return &Result{
		ID:      "E1",
		Title:   "Charlotte simple remote operation latency (§3.3)",
		Columns: []string{"configuration", "paper (ms)", "measured (ms)"},
		Rows: [][]string{
			{"LYNX, no data", "57", ms(lynx0)},
			{"LYNX, 1000B both ways", "65", ms(lynx1k)},
			{"raw kernel calls, no data", "55", ms(raw0)},
			{"raw kernel calls, 1000B both ways", "60", ms(raw1k)},
		},
		Notes: []string{
			"difference LYNX-raw = run-time package overhead (gather/scatter, coroutines, checks)",
		},
		Pass: pass,
	}
}

// E2 regenerates figure 2's link-enclosure protocol: the number of
// kernel messages needed to move k ends in one LYNX request.
//
// Expected: k≤1 needs the plain request+reply pair; k≥2 adds one GOAHEAD
// plus k-1 ENC packets (replies would skip the goahead).
func e2(seed uint64) *Result {
	res := &Result{
		ID:      "E2",
		Title:   "Charlotte link-enclosure protocol (figure 2)",
		Columns: []string{"enclosures", "kernel msgs (measured)", "kernel msgs (protocol)", "goaheads", "enc packets"},
		Pass:    true,
	}
	for _, k := range []int{0, 1, 2, 4, 8} {
		sys := lynx.NewSystem(lynx.Config{Substrate: lynx.Charlotte, Seed: sysSeed(seed, 1)})
		kcount := k
		a := sys.Spawn("a", func(th *lynx.Thread, boot []*lynx.End) {
			var give []*lynx.End
			for i := 0; i < kcount; i++ {
				_, o, err := th.NewLink()
				if err != nil {
					return
				}
				give = append(give, o)
			}
			th.Connect(boot[0], "move", lynx.Msg{Links: give})
			th.Destroy(boot[0])
		})
		b := sys.Spawn("b", func(th *lynx.Thread, boot []*lynx.End) {
			th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
				st.Reply(req, lynx.Msg{})
			})
		})
		sys.Join(a, b)
		if err := sys.Run(); err != nil {
			panic(err)
		}
		msgs := sys.Stats().Charlotte().Messages
		goaheads := b.Stats().Charlotte().Goaheads
		encs := a.Stats().Charlotte().EncPackets
		// Protocol prediction: request + reply, plus goahead and k-1 enc
		// for k >= 2.
		want := int64(2)
		if kcount >= 2 {
			want = 2 + 1 + int64(kcount-1)
		}
		if msgs != want {
			res.Pass = false
		}
		if kcount >= 2 && (goaheads != 1 || encs != int64(kcount-1)) {
			res.Pass = false
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(kcount), fmt.Sprint(msgs), fmt.Sprint(want),
			fmt.Sprint(goaheads), fmt.Sprint(encs),
		})
	}
	// The comparative half of the figure: on the low-level kernels the
	// kernel traffic for a k-end move is INVARIANT in k — no goaheads,
	// no enc packets, no packetization of any kind. Measured as the
	// difference in kernel activity between k=8 and k=1.
	for _, sub := range []lynx.Substrate{lynx.SODA, lynx.Chrysalis} {
		t1 := kernelTrafficForMove(seed, sub, 1)
		t8 := kernelTrafficForMove(seed, sub, 8)
		extra := t8 - t1
		if extra != 0 {
			res.Pass = false
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("1->8 (%s)", sub), fmt.Sprintf("+%d", extra), "+0", "-", "-",
		})
	}
	res.Notes = append(res.Notes,
		"k>=2 on Charlotte: first packet carries data+1st end; GOAHEAD confirms the request is wanted; k-1 ENC packets follow",
		"the 1->8 rows measure EXTRA kernel traffic for 8 enclosures vs 1 on the low-level kernels: zero",
		"Charlotte's same delta is +8 kernel messages (goahead + 7 enc)")
	return res
}

// kernelTrafficForMove runs one k-enclosure request+reply and returns a
// substrate-appropriate kernel traffic count (accepted transfers on
// SODA; dual-queue enqueues on Chrysalis). Absolute values differ per
// substrate; only the k-dependence matters to E2.
func kernelTrafficForMove(seed uint64, sub lynx.Substrate, k int) int64 {
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: sysSeed(seed, 1)})
	snapshot := func() int64 {
		switch sub {
		case lynx.SODA:
			return sys.Stats().SODA().Accepts
		case lynx.Chrysalis:
			return sys.Stats().Chrysalis().Enqueues
		default:
			return 0
		}
	}
	var atMoveDone int64
	a := sys.Spawn("a", func(th *lynx.Thread, boot []*lynx.End) {
		var give []*lynx.End
		for i := 0; i < k; i++ {
			_, o, err := th.NewLink()
			if err != nil {
				return
			}
			give = append(give, o)
		}
		th.Connect(boot[0], "move", lynx.Msg{Links: give})
		// Snapshot BEFORE teardown: destroying k links legitimately
		// costs k notices, but that is not the move's traffic.
		atMoveDone = snapshot()
		th.Destroy(boot[0])
	})
	b := sys.Spawn("b", func(th *lynx.Thread, boot []*lynx.End) {
		th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
			st.Reply(req, lynx.Msg{})
		})
	})
	sys.Join(a, b)
	if err := sys.Run(); err != nil {
		panic(fmt.Sprintf("kernelTrafficForMove(%v,%d): %v", sub, k, err))
	}
	return atMoveDone
}

// e3Sizes are the payload points of the §4.3 sweep.
var e3Sizes = []int{0, 128, 256, 512, 1024, 1536, 2048, 3072, 4000}

// e3Grid runs the E3 payload sweep as a substrate × payload
// configuration grid. The body derives its System seeds from the
// experiment's replica seed (the harness replicates one level up), so
// the grid's own seeding is inert and the table is byte-identical to
// the historical hand-rolled double loop.
func e3Grid(seed uint64) *grid.Table {
	sizes := make([]any, len(e3Sizes))
	for i, n := range e3Sizes {
		sizes[i] = n
	}
	return grid.Run(grid.Spec{
		Name: "E3 payload sweep",
		Axes: []grid.Axis{
			{Name: "substrate", Values: []any{lynx.Charlotte, lynx.SODA}},
			{Name: "payload", Values: sizes},
		},
		Body: func(c grid.Cell, r sweep.Run) sweep.Outcome {
			rtt := echoRTT(seed, c.Value("substrate").(lynx.Substrate), c.Int("payload"), 1, false)
			return sweep.Outcome{Values: map[string]float64{"rtt_ns": float64(rtt)}}
		},
	})
}

// E3 regenerates §4.3's prediction: SODA ≈3x faster than Charlotte for
// small messages, with break-even between 1 KB and 2 KB (kernel-level
// figures; footnote 2). The measurement grid runs through lynx/grid.
func e3(seed uint64) *Result {
	res := &Result{
		ID:      "E3",
		Title:   "SODA vs Charlotte latency sweep and crossover (§4.3)",
		Columns: []string{"payload (B/dir)", "Charlotte LYNX (ms)", "SODA LYNX (ms)", "winner"},
	}
	tbl := e3Grid(seed)
	var crossover int = -1
	var small3x bool
	prevWinner := ""
	for _, n := range e3Sizes {
		ch := lynx.Duration(tbl.CellAt(lynx.Charlotte, n).Agg.Values["rtt_ns"].Mean)
		so := lynx.Duration(tbl.CellAt(lynx.SODA, n).Agg.Values["rtt_ns"].Mean)
		winner := "SODA"
		if ch < so {
			winner = "Charlotte"
		}
		if n == 0 {
			ratio := float64(ch) / float64(so)
			small3x = ratio > 2.2 && ratio < 3.8
		}
		if prevWinner == "SODA" && winner == "Charlotte" && crossover < 0 {
			crossover = n
		}
		prevWinner = winner
		res.Rows = append(res.Rows, []string{fmt.Sprint(n), ms(ch), ms(so), winner})
	}
	// Paper: break-even between 1K and 2K bytes.
	crossOK := crossover >= 1024 && crossover <= 2048
	res.Pass = small3x && crossOK
	res.Notes = append(res.Notes,
		fmt.Sprintf("measured crossover at ≈%d B/direction (paper: between 1K and 2K)", crossover),
		"small messages: SODA ≈3x faster despite a 10x slower wire (kernel path dominates)",
	)
	return res
}

// E4 regenerates §5.3's Chrysalis measurements: 2.4 ms / 4.6 ms, more
// than an order of magnitude faster than Charlotte.
func e4(seed uint64) *Result {
	c0 := echoRTT(seed, lynx.Chrysalis, 0, 1, false)
	c1k := echoRTT(seed, lynx.Chrysalis, 1000, 1, false)
	ch0 := echoRTT(seed, lynx.Charlotte, 0, 1, false)
	ratio := float64(ch0) / float64(c0)
	pass := within(c0.Milliseconds(), 2.4, 0.15) &&
		within(c1k.Milliseconds(), 4.6, 0.15) &&
		ratio > 10
	return &Result{
		ID:      "E4",
		Title:   "Chrysalis simple remote operation latency (§5.3)",
		Columns: []string{"configuration", "paper (ms)", "measured (ms)"},
		Rows: [][]string{
			{"LYNX, no data", "2.4", ms(c0)},
			{"LYNX, 1000B both ways", "4.6", ms(c1k)},
			{"speedup vs Charlotte", ">10x", fmt.Sprintf("%.1fx", ratio)},
		},
		Pass: pass,
	}
}

// countGo counts non-blank lines across a package directory's .go files
// (excluding tests), a stand-in for the paper's implementation-size
// comparison.
func countGo(dir string) (files, lines int) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" ||
			len(name) > 8 && name[len(name)-8:] == "_test.go" {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		if _, err := parser.ParseFile(fset, path, src, parser.PackageClauseOnly); err != nil {
			continue
		}
		files++
		for _, b := range splitLines(src) {
			if len(b) > 0 {
				lines++
			}
		}
	}
	return files, lines
}

func splitLines(src []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, c := range src {
		if c == '\n' {
			line := src[start:i]
			// Trim spaces/tabs for blank detection.
			j := 0
			for j < len(line) && (line[j] == ' ' || line[j] == '\t' || line[j] == '\r') {
				j++
			}
			out = append(out, line[j:])
			start = i + 1
		}
	}
	return out
}

// E5 regenerates the code-size comparison: the Charlotte run-time
// package was 4000 lines of C + 200 asm (≈21KB object, ~45% devoted to
// communication, ~5KB of it to unwanted messages and multiple
// enclosures); the Chrysalis one 3600+200 (15-16KB); SODA was predicted
// to save ≈4KB of special cases. We report our bindings' sizes and
// special-case inventories: the paper's *shape* is Charlotte ≫ others,
// with the excess concentrated in bounce/packetization code.
func e5() *Result {
	root := findRepoRoot()
	_, chLines := countGo(filepath.Join(root, "internal/bind/charlotte"))
	_, soLines := countGo(filepath.Join(root, "internal/bind/soda"))
	_, chrLines := countGo(filepath.Join(root, "internal/bind/chrysalis"))
	_, coreLines := countGo(filepath.Join(root, "internal/core"))

	// Protocol special-case inventory (by construction of the bindings).
	chKinds := 6  // data, enc, goahead, retry, forbid, allow
	soKinds := 2  // data put, status signal (plus recovery verbs)
	chrKinds := 1 // notices only; flags carry the rest

	res := &Result{
		ID:    "E5",
		Title: "Run-time package size and special-case inventory (§3.3/§4.3/§5.3)",
		Columns: []string{"implementation", "paper (lines)", "binding LoC (ours)",
			"protocol msg kinds", "bounce machinery"},
		Rows: [][]string{
			{"Charlotte", "4000 C + 200 asm", fmt.Sprint(chLines), fmt.Sprint(chKinds), "retry/forbid/allow/goahead/enc"},
			{"SODA", "(predicted −4KB)", fmt.Sprint(soLines), fmt.Sprint(soKinds), "none (screening in handler)"},
			{"Chrysalis", "3600 C + 200 asm", fmt.Sprint(chrLines), fmt.Sprint(chrKinds), "none (flags are ground truth)"},
			{"shared core (all three)", "-", fmt.Sprint(coreLines), "-", "-"},
		},
		Notes: []string{
			"SODA's extra LoC versus Chrysalis is hint recovery (discover + freeze), not message bouncing",
			"paper shape: the Charlotte package is the largest, and its excess is the unwanted-message/enclosure code",
		},
	}
	res.Pass = chLines > chrLines && chKinds > soKinds && chKinds > chrKinds
	return res
}

// findRepoRoot walks up from the working directory to the module root.
func findRepoRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}
