package expt

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/sim"
	"repro/lynx/sweep"
)

// Options parameterizes a harness run: how many worker goroutines fan
// the experiments out, and how many replicas each replicable
// experiment runs. The zero value is GOMAXPROCS workers, one replica
// (the canonical paper seeds), root seed 1.
type Options struct {
	// Parallel is the worker goroutine count. Default GOMAXPROCS.
	Parallel int
	// Reps is R, the replicas per replicable experiment. Default 1.
	// Replica 0 always runs the canonical paper seeds; further
	// replicas derive their seeds from RootSeed by stream splitting,
	// so aggregated output is identical for any Parallel.
	Reps int
	// RootSeed seeds replicas 1..R-1. Default 1.
	RootSeed uint64
	// ShapeThreshold is the replication tolerance policy: an aggregated
	// result passes when at least this fraction of its replicas match
	// the paper's shape. Stochastic SODA experiments (broadcast loss,
	// backoff jitter) can legitimately miss the shape at exotic seeds,
	// so the default is 0.8 rather than the strict all-replicas AND;
	// set 1 to restore the AND. Values are clamped into (0, 1].
	ShapeThreshold float64
}

// DefaultShapeThreshold is the fraction of replicas that must match
// the paper's shape for a replicated experiment to pass.
const DefaultShapeThreshold = 0.8

// normalized fills in defaults.
func (o Options) normalized() Options {
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.Reps <= 0 {
		o.Reps = 1
	}
	if o.RootSeed == 0 {
		o.RootSeed = 1
	}
	if o.ShapeThreshold <= 0 {
		o.ShapeThreshold = DefaultShapeThreshold
	}
	if o.ShapeThreshold > 1 {
		o.ShapeThreshold = 1
	}
	return o
}

// Experiment is one catalogued entry of the harness.
type Experiment struct {
	ID, Title string
	// Replicable marks experiments whose measurements depend on the
	// seed; non-replicable ones (code-size scans) always run once.
	Replicable bool
	run        func(seed uint64) *Result
}

// catalog lists every experiment in run order.
var catalog = []Experiment{
	{"E1", "Charlotte simple remote operation latency (§3.3)", true, e1},
	{"E2", "Charlotte link-enclosure protocol (figure 2)", true, e2},
	{"E3", "SODA vs Charlotte latency sweep and crossover (§4.3)", true, e3},
	{"E4", "Chrysalis simple remote operation latency (§5.3)", true, e4},
	{"E5", "Run-time package size and special-case inventory", false, func(uint64) *Result { return e5() }},
	{"E6", "Link moving at both ends simultaneously (figure 1)", true, e6},
	{"E7", "Unwanted messages and NAK traffic (§6 claim 2)", true, e7},
	{"E8", "Fate of enclosures in aborted messages (§3.2.2)", true, e8},
	{"E9", "Chrysalis tuning ablation (§5.3)", true, e9},
	{"E10", "SODA hint repair: cache → discover → freeze (§4.2)", true, e10},
	{"E11", "Queue fairness under saturation (§2.1)", true, e11},
	{"E12", "EXT: per-pair request limits under many links (§4.2.1)", true, e12},
	{"E13", "EXT: discover success vs broadcast loss (§4.2)", true, e13},
}

// Catalog returns the experiment inventory (copy; run order).
func Catalog() []Experiment {
	out := make([]Experiment, len(catalog))
	copy(out, catalog)
	return out
}

// replicaSeed derives the seed handed to replica rep of experiment
// exp. Replica 0 is the canonical single-shot run (seed 0 keeps the
// legacy per-system seeds); later replicas double-split the root so
// every (experiment, replica) pair draws an independent stream.
func replicaSeed(root uint64, exp, rep int) uint64 {
	if rep == 0 {
		return 0
	}
	return sim.StreamSeed(sim.StreamSeed(root, uint64(exp)), uint64(rep))
}

// AllWith runs the full catalog under the given options. Every
// (experiment, replica) pair is an independent job fanned across the
// worker pool; results are assembled and aggregated in catalog order,
// so the output is byte-identical for any Parallel at a fixed
// (Reps, RootSeed).
func AllWith(o Options) []*Result {
	o = o.normalized()
	return runJobs(o, catalog)
}

// ByIDWith is AllWith for a single experiment id ("E1".."E13"); nil if
// unknown.
func ByIDWith(id string, o Options) *Result {
	o = o.normalized()
	for _, e := range catalog {
		if strings.EqualFold(e.ID, id) {
			return runJobs(o, []Experiment{e})[0]
		}
	}
	return nil
}

// runJobs fans (experiment, replica) jobs across o.Parallel workers
// and aggregates each experiment's replicas into one Result.
func runJobs(o Options, exps []Experiment) []*Result {
	type job struct{ exp, rep int }
	reps := func(e Experiment) int {
		if !e.Replicable {
			return 1
		}
		return o.Reps
	}
	perExp := make([][]*Result, len(exps))
	var jobs []job
	for i, e := range exps {
		perExp[i] = make([]*Result, reps(e))
		for r := range perExp[i] {
			jobs = append(jobs, job{i, r})
		}
	}
	workers := o.Parallel
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			perExp[j.exp][j.rep] = exps[j.exp].run(replicaSeed(o.RootSeed, j.exp, j.rep))
		}
	} else {
		var wg sync.WaitGroup
		ch := make(chan job)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range ch {
					perExp[j.exp][j.rep] = exps[j.exp].run(replicaSeed(o.RootSeed, j.exp, j.rep))
				}
			}()
		}
		for _, j := range jobs {
			ch <- j
		}
		close(ch)
		wg.Wait()
	}
	out := make([]*Result, len(exps))
	for i := range exps {
		out[i] = aggregateResults(perExp[i], o)
	}
	return out
}

// aggregateResults folds R replica results into one: cell-wise table
// aggregation (identical cells kept, numeric cells replaced by
// "mean ±ci", anything else marked varying), Pass under the
// replication tolerance policy (at least ShapeThreshold of the
// replicas match the paper's shape), and metric snapshots averaged per
// key. With one replica the result passes through untouched.
func aggregateResults(rs []*Result, o Options) *Result {
	if len(rs) == 1 {
		return rs[0]
	}
	agg := &Result{
		ID:       rs[0].ID,
		Title:    rs[0].Title,
		Columns:  rs[0].Columns,
		Notes:    rs[0].Notes,
		Replicas: len(rs),
		RootSeed: o.RootSeed,
	}
	passes := 0
	for _, r := range rs {
		if r.Pass {
			passes++
		}
	}
	agg.Pass = float64(passes) >= o.ShapeThreshold*float64(len(rs))-1e-9
	for row := range rs[0].Rows {
		cells := make([]string, len(rs[0].Rows[row]))
		for col := range cells {
			series := make([]string, len(rs))
			ok := true
			for i, r := range rs {
				if row >= len(r.Rows) || col >= len(r.Rows[row]) {
					ok = false
					break
				}
				series[i] = r.Rows[row][col]
			}
			if !ok {
				cells[col] = "(varies)"
				continue
			}
			cells[col] = aggregateCell(series)
		}
		agg.Rows = append(agg.Rows, cells)
	}
	agg.Metrics = aggregateMetrics(rs)
	agg.Notes = append(agg.Notes, fmt.Sprintf(
		"replication: R=%d (replica 0 = canonical seeds, rest from root seed %d); shape pass %d/%d (threshold %.2f); varying cells shown as mean ±1.96·sd/√R",
		len(rs), o.RootSeed, passes, len(rs), o.ShapeThreshold))
	return agg
}

// aggregateCell folds one table cell's per-replica values: identical
// strings pass through, numeric strings become "mean ±ci" (preserving
// the inputs' decimal precision), and anything else is marked.
func aggregateCell(series []string) string {
	allEqual := true
	for _, s := range series[1:] {
		if s != series[0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		return series[0]
	}
	vals := make([]float64, len(series))
	decimals := 0
	for i, s := range series {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return "(varies)"
		}
		vals[i] = v
		if dot := strings.IndexByte(s, '.'); dot >= 0 && len(s)-dot-1 > decimals {
			decimals = len(s) - dot - 1
		}
	}
	st := sweep.Summarize(vals)
	if decimals == 0 && st.CI95 != math.Trunc(st.CI95) {
		decimals = 1
	}
	return fmt.Sprintf("%.*f ±%.*f", decimals, st.Mean, decimals, st.CI95)
}

// aggregateMetrics averages each metric key over the replicas that
// carry it, keeping the values comparable to a single-shot run.
func aggregateMetrics(rs []*Result) map[string]int64 {
	sums := map[string]int64{}
	counts := map[string]int64{}
	for _, r := range rs {
		for k, v := range r.Metrics {
			sums[k] += v
			counts[k]++
		}
	}
	if len(sums) == 0 {
		return nil
	}
	out := make(map[string]int64, len(sums))
	for k, s := range sums {
		out[k] = s / counts[k]
	}
	return out
}

// RenderAll renders a result list the way lynxbench prints it — one
// table per experiment, blank-line separated, in a deterministic
// order. (Used by the determinism tests to pin parallel == serial.)
func RenderAll(rs []*Result) string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(r.Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// sortedMetricKeys is a test helper exposed for deterministic metric
// dumps.
func sortedMetricKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
