// Package expt is the experiment harness: one entry per table or figure
// in the paper's evaluation, each regenerating the corresponding
// measurement on the simulated substrates and reporting paper-vs-measured
// values. cmd/lynxbench drives it; bench_test.go wraps each experiment in
// a testing.B benchmark.
package expt

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/lynx"
)

// Result is one experiment's regenerated table.
type Result struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Pass reports whether the measured shape matches the paper's claim
	// (who wins, rough factors, crossover band).
	Pass bool
	// Metrics is the obs counter snapshot the numbers were computed
	// from, keyed "<substrate>/<metric>" (experiments that count from
	// the observability subsystem attach it; others leave it nil).
	// For a replicated result each value is the per-replica mean.
	Metrics map[string]int64 `json:",omitempty"`
	// Replicas and RootSeed record the replication an aggregated
	// result was computed over (zero for a single-shot run).
	Replicas int    `json:",omitempty"`
	RootSeed uint64 `json:",omitempty"`
}

// addMetrics merges a registry snapshot into r.Metrics under prefix.
func (r *Result) addMetrics(prefix string, m *obs.Metrics) {
	snap := m.Snapshot()
	if len(snap) == 0 {
		return
	}
	if r.Metrics == nil {
		r.Metrics = make(map[string]int64)
	}
	for k, v := range snap {
		r.Metrics[prefix+"/"+k] = v
	}
}

// Render formats the result as a text table.
func (r *Result) Render() string {
	var b strings.Builder
	status := "SHAPE OK"
	if !r.Pass {
		status = "SHAPE MISMATCH"
	}
	fmt.Fprintf(&b, "== %s: %s [%s]\n", r.ID, r.Title, status)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "  %-*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// All runs every experiment in order: the paper's E1-E11 plus the
// extension experiments E12-E13 (questions the paper could not answer
// without a SODA implementation). Experiments execute concurrently
// across GOMAXPROCS workers; the output is identical to a serial run
// (see AllWith for the replication/parallelism knobs).
func All() []*Result {
	return AllWith(Options{})
}

// ByID runs one experiment by id ("E1".."E13"), or nil if unknown.
func ByID(id string) *Result {
	return ByIDWith(id, Options{})
}

// The single-shot exported experiment entry points (benchmarks and
// tests call these): the canonical paper-seed run of each experiment.
func E1() *Result  { return e1(0) }
func E2() *Result  { return e2(0) }
func E3() *Result  { return e3(0) }
func E4() *Result  { return e4(0) }
func E5() *Result  { return e5() }
func E6() *Result  { return e6(0) }
func E7() *Result  { return e7(0) }
func E8() *Result  { return e8(0) }
func E9() *Result  { return e9(0) }
func E10() *Result { return e10(0) }
func E11() *Result { return e11(0) }
func E12() *Result { return e12(0) }
func E13() *Result { return e13(0) }

// sysSeed derives the seed for one System an experiment builds. Each
// call site passes the canonical seed its system used before
// replication existed; the legacy single-shot run (replica seed 0)
// keeps exactly that value, so default output is unchanged, while
// replicated runs stream-split the replica seed to give every System
// of every replica fresh, reproducible randomness.
func sysSeed(seed, canonical uint64) uint64 {
	if seed == 0 {
		return canonical
	}
	return sim.StreamSeed(seed, canonical)
}

// ms renders a duration in milliseconds.
func ms(d lynx.Duration) string {
	return fmt.Sprintf("%.2f", d.Milliseconds())
}

// echoRTT measures one simple remote operation's round trip with the
// given payload size in each direction, after a configurable number of
// warm-up operations.
func echoRTT(seed uint64, sub lynx.Substrate, payload, warmup int, tuned bool) lynx.Duration {
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: sysSeed(seed, 1), Chrysalis: lynx.ChrysalisOptions{Tuned: tuned}})
	data := make([]byte, payload)
	var rtt lynx.Duration
	c := sys.Spawn("client", func(th *lynx.Thread, boot []*lynx.End) {
		for i := 0; i < warmup; i++ {
			if _, err := th.Connect(boot[0], "echo", lynx.Msg{Data: data}); err != nil {
				return
			}
		}
		start := th.Now()
		if _, err := th.Connect(boot[0], "echo", lynx.Msg{Data: data}); err != nil {
			return
		}
		rtt = lynx.Duration(th.Now() - start)
		th.Destroy(boot[0])
	})
	s := sys.Spawn("server", func(th *lynx.Thread, boot []*lynx.End) {
		th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
			st.Reply(req, lynx.Msg{Data: req.Data()})
		})
	})
	sys.Join(c, s)
	if err := sys.Run(); err != nil {
		panic(fmt.Sprintf("expt: echoRTT(%v,%d): %v", sub, payload, err))
	}
	return rtt
}

// within reports whether v is within frac of target.
func within(v, target, frac float64) bool {
	if target == 0 {
		return v == 0
	}
	r := v / target
	return r >= 1-frac && r <= 1+frac
}
