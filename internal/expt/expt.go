// Package expt is the experiment harness: one entry per table or figure
// in the paper's evaluation, each regenerating the corresponding
// measurement on the simulated substrates and reporting paper-vs-measured
// values. cmd/lynxbench drives it; bench_test.go wraps each experiment in
// a testing.B benchmark.
package expt

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/lynx"
)

// Result is one experiment's regenerated table.
type Result struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Pass reports whether the measured shape matches the paper's claim
	// (who wins, rough factors, crossover band).
	Pass bool
	// Metrics is the obs counter snapshot the numbers were computed
	// from, keyed "<substrate>/<metric>" (experiments that count from
	// the observability subsystem attach it; others leave it nil).
	Metrics map[string]int64 `json:",omitempty"`
}

// addMetrics merges a registry snapshot into r.Metrics under prefix.
func (r *Result) addMetrics(prefix string, m *obs.Metrics) {
	snap := m.Snapshot()
	if len(snap) == 0 {
		return
	}
	if r.Metrics == nil {
		r.Metrics = make(map[string]int64)
	}
	for k, v := range snap {
		r.Metrics[prefix+"/"+k] = v
	}
}

// Render formats the result as a text table.
func (r *Result) Render() string {
	var b strings.Builder
	status := "SHAPE OK"
	if !r.Pass {
		status = "SHAPE MISMATCH"
	}
	fmt.Fprintf(&b, "== %s: %s [%s]\n", r.ID, r.Title, status)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "  %-*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// All runs every experiment in order: the paper's E1-E11 plus the
// extension experiments E12-E13 (questions the paper could not answer
// without a SODA implementation).
func All() []*Result {
	return []*Result{
		E1(), E2(), E3(), E4(), E5(), E6(), E7(), E8(), E9(), E10(), E11(),
		E12(), E13(),
	}
}

// ByID runs one experiment by id ("E1".."E13"), or nil if unknown.
func ByID(id string) *Result {
	switch strings.ToUpper(id) {
	case "E1":
		return E1()
	case "E2":
		return E2()
	case "E3":
		return E3()
	case "E4":
		return E4()
	case "E5":
		return E5()
	case "E6":
		return E6()
	case "E7":
		return E7()
	case "E8":
		return E8()
	case "E9":
		return E9()
	case "E10":
		return E10()
	case "E11":
		return E11()
	case "E12":
		return E12()
	case "E13":
		return E13()
	default:
		return nil
	}
}

// ms renders a duration in milliseconds.
func ms(d lynx.Duration) string {
	return fmt.Sprintf("%.2f", d.Milliseconds())
}

// echoRTT measures one simple remote operation's round trip with the
// given payload size in each direction, after a configurable number of
// warm-up operations.
func echoRTT(sub lynx.Substrate, payload, warmup int, tuned bool) lynx.Duration {
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 1, Chrysalis: lynx.ChrysalisOptions{Tuned: tuned}})
	data := make([]byte, payload)
	var rtt lynx.Duration
	c := sys.Spawn("client", func(th *lynx.Thread, boot []*lynx.End) {
		for i := 0; i < warmup; i++ {
			if _, err := th.Connect(boot[0], "echo", lynx.Msg{Data: data}); err != nil {
				return
			}
		}
		start := th.Now()
		if _, err := th.Connect(boot[0], "echo", lynx.Msg{Data: data}); err != nil {
			return
		}
		rtt = lynx.Duration(th.Now() - start)
		th.Destroy(boot[0])
	})
	s := sys.Spawn("server", func(th *lynx.Thread, boot []*lynx.End) {
		th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
			st.Reply(req, lynx.Msg{Data: req.Data()})
		})
	})
	sys.Join(c, s)
	if err := sys.Run(); err != nil {
		panic(fmt.Sprintf("expt: echoRTT(%v,%d): %v", sub, payload, err))
	}
	return rtt
}

// within reports whether v is within frac of target.
func within(v, target, frac float64) bool {
	if target == 0 {
		return v == 0
	}
	r := v / target
	return r >= 1-frac && r <= 1+frac
}
