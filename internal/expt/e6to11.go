package expt

import (
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/lynx"
)

// E6 regenerates figure 1: both ends of link 3 moved simultaneously and
// independently — what used to connect A to D afterwards connects B to
// C — on every substrate, with several randomized rounds.
func e6(seed uint64) *Result {
	res := &Result{
		ID:      "E6",
		Title:   "Link moving at both ends simultaneously (figure 1)",
		Columns: []string{"substrate", "rounds", "both-end moves OK", "post-move RPC OK"},
		Pass:    true,
	}
	const rounds = 5
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA, lynx.Chrysalis, lynx.Ideal} {
		movesOK, rpcOK := 0, 0
		for round := 0; round < rounds; round++ {
			ok1, ok2 := runFigure1(sub, sysSeed(seed, uint64(round+1)))
			if ok1 {
				movesOK++
			}
			if ok2 {
				rpcOK++
			}
		}
		if movesOK != rounds || rpcOK != rounds {
			res.Pass = false
		}
		res.Rows = append(res.Rows, []string{
			sub.String(), fmt.Sprint(rounds),
			fmt.Sprintf("%d/%d", movesOK, rounds),
			fmt.Sprintf("%d/%d", rpcOK, rounds),
		})
	}
	res.Notes = append(res.Notes,
		"A encloses its end of link3 to B (over link1) while D encloses the other end to C (over link2)",
		"afterwards B↔C complete an RPC over link3: no message lost, no end duplicated")
	return res
}

// runFigure1 performs one figure-1 episode; returns (movesHappened,
// rpcWorked).
func runFigure1(sub lynx.Substrate, seed uint64) (bool, bool) {
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: seed})
	var moved1, moved2, rpc bool

	a := sys.Spawn("A", func(th *lynx.Thread, boot []*lynx.End) {
		toB, l3a := boot[0], boot[1]
		if _, err := th.Connect(toB, "take3a", lynx.Msg{Links: []*lynx.End{l3a}}); err != nil {
			return
		}
		th.Destroy(toB)
	})
	d := sys.Spawn("D", func(th *lynx.Thread, boot []*lynx.End) {
		toC, l3d := boot[0], boot[1]
		if _, err := th.Connect(toC, "take3d", lynx.Msg{Links: []*lynx.End{l3d}}); err != nil {
			return
		}
		th.Destroy(toC)
	})
	b := sys.Spawn("B", func(th *lynx.Thread, boot []*lynx.End) {
		req, err := th.Receive(boot[0])
		if err != nil || len(req.Links()) != 1 {
			return
		}
		moved1 = true
		l3 := req.Links()[0]
		th.Reply(req, lynx.Msg{})
		// RPC over the doubly-moved link to whoever holds the far end.
		reply, err := th.Connect(l3, "hello", lynx.Msg{Data: []byte("B")})
		if err == nil && string(reply.Data) == "B-seen-by-C" {
			rpc = true
		}
		th.Destroy(l3)
	})
	c := sys.Spawn("C", func(th *lynx.Thread, boot []*lynx.End) {
		req, err := th.Receive(boot[0])
		if err != nil || len(req.Links()) != 1 {
			return
		}
		moved2 = true
		l3 := req.Links()[0]
		th.Reply(req, lynx.Msg{})
		r2, err := th.Receive(l3)
		if err != nil {
			return
		}
		th.Reply(r2, lynx.Msg{Data: append(r2.Data(), []byte("-seen-by-C")...)})
	})
	sys.Join(a, b) // link1: A-B
	sys.Join(d, c) // link2: D-C
	sys.Join(a, d) // link3: A-D (boot[1] on each side)
	if err := sys.Run(); err != nil {
		return false, false
	}
	return moved1 && moved2, rpc
}

// E7 regenerates §6's screening comparison: an adversarial workload of
// reverse-direction requests racing replies. Charlotte's kernel
// pre-receives unwanted messages and the run-time package must bounce
// them (retry/forbid/allow); SODA and Chrysalis receive only wanted
// messages.
func e7(seed uint64) *Result {
	res := &Result{
		ID:      "E7",
		Title:   "Unwanted messages and NAK traffic under reverse-request races (§6 claim 2)",
		Columns: []string{"substrate", "ops", "unwanted receives", "NAK msgs (retry/forbid/allow)", "held unaccepted"},
	}
	const rounds = 8
	type row struct {
		unwanted, naks, held int64
	}
	rows := map[lynx.Substrate]row{}
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA, lynx.Chrysalis} {
		sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: sysSeed(seed, 2)})
		a := sys.Spawn("A", func(th *lynx.Thread, boot []*lynx.End) {
			e := boot[0]
			for i := 0; i < rounds; i++ {
				if _, err := th.Connect(e, "fwd", lynx.Msg{}); err != nil {
					return
				}
				// Serve exactly one reverse request between rounds.
				req, err := th.Receive(e)
				if err != nil {
					return
				}
				th.Reply(req, lynx.Msg{})
			}
			th.Destroy(e)
		})
		b := sys.Spawn("B", func(th *lynx.Thread, boot []*lynx.End) {
			e := boot[0]
			th.Serve(e, func(st *lynx.Thread, req *lynx.Request) {
				st.Sleep(120 * lynx.Millisecond) // reply late so the reverse request races it
				st.Reply(req, lynx.Msg{})
			})
			for i := 0; i < rounds; i++ {
				if _, err := th.Connect(e, "rev", lynx.Msg{}); err != nil {
					return
				}
			}
		})
		sys.Join(a, b)
		if err := sys.Run(); err != nil {
			panic(fmt.Sprintf("E7(%v): %v", sub, err))
		}
		// All counts come from the obs metric registry — the same
		// counters Stats() views are built from.
		m := sys.Metrics()
		pa, pb := a.KernelPID(), b.KernelPID()
		var r row
		switch sub {
		case lynx.Charlotte:
			r.unwanted = m.ProcValue(obs.MUnwantedReceives, pa)
			for _, pid := range []int{pa, pb} {
				r.naks += m.ProcValue(obs.MRetries, pid) +
					m.ProcValue(obs.MForbids, pid) +
					m.ProcValue(obs.MAllows, pid)
			}
		case lynx.SODA:
			r.unwanted = 0 // the runtime never sees them
			r.naks = m.ProcValue(obs.MRejectedReplies, pa)
			r.held = m.ProcValue(obs.MSavedRequests, pa)
		case lynx.Chrysalis:
			r.naks = m.ProcValue(obs.MRejections, pa)
			r.held = 0 // flags simply stay set; nothing is queued
		}
		res.addMetrics(sub.String(), m)
		rows[sub] = r
		res.Rows = append(res.Rows, []string{
			sub.String(), fmt.Sprint(rounds), fmt.Sprint(r.unwanted),
			fmt.Sprint(r.naks), fmt.Sprint(r.held),
		})
	}
	res.Pass = rows[lynx.Charlotte].unwanted > 0 && rows[lynx.Charlotte].naks > 0 &&
		rows[lynx.SODA].unwanted == 0 && rows[lynx.SODA].naks == 0 &&
		rows[lynx.Chrysalis].unwanted == 0 && rows[lynx.Chrysalis].naks == 0
	res.Notes = append(res.Notes,
		"Charlotte must bounce messages its kernel pre-received; the low-level kernels screen for free")
	return res
}

// E8 regenerates §3.2.2's lost-enclosure scenario: a request enclosing a
// link end is received unintentionally, the sending coroutine aborts,
// and the receiver crashes before returning the enclosure. Under
// Charlotte the enclosed link is lost (destroyed); the low-level kernels
// never let the end leave the sender.
func e8(seed uint64) *Result {
	res := &Result{
		ID:      "E8",
		Title:   "Fate of enclosures in aborted messages when the peer crashes (§3.2.2)",
		Columns: []string{"substrate", "cancel recalled msg", "enclosure survives"},
	}
	type outcome struct{ recalled, survived bool }
	outcomes := map[lynx.Substrate]outcome{}
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA, lynx.Chrysalis} {
		o := runE8Scenario(seed, sub)
		outcomes[sub] = o
		res.Rows = append(res.Rows, []string{
			sub.String(), fmt.Sprint(o.recalled), fmt.Sprint(o.survived),
		})
	}
	res.Pass = !outcomes[lynx.Charlotte].survived &&
		outcomes[lynx.SODA].survived && outcomes[lynx.Chrysalis].survived
	res.Notes = append(res.Notes,
		"Charlotte: the kernel already delivered the message, so the abort cannot recall it; the crash then destroys the moved end",
		"SODA/Chrysalis: the message was never accepted/consumed, so the abort recalls it and the end never leaves home")
	return res
}

func runE8Scenario(seed uint64, sub lynx.Substrate) (o struct{ recalled, survived bool }) {
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: sysSeed(seed, 4)})
	var xAlive bool
	var abortErr error
	a := sys.Spawn("A", func(th *lynx.Thread, boot []*lynx.End) {
		e := boot[0]
		// B will connect to us and await a reply; we never serve it, so
		// B has a kernel receive posted that can swallow our request
		// unintentionally (Charlotte) — exactly the paper's setup.
		xMine, xTheirs, err := th.NewLink()
		if err != nil {
			return
		}
		th.Sleep(40 * lynx.Millisecond) // let B's reverse request go out
		victim := th.Fork("victim", func(tv *lynx.Thread) {
			tv.Connect(e, "withX", lynx.Msg{Links: []*lynx.End{xTheirs}})
		})
		th.Sleep(35 * lynx.Millisecond) // Charlotte: delivered (unwanted); SODA/Chrysalis: still pending
		th.Abort(victim)
		th.Sleep(300 * lynx.Millisecond) // B crashes meanwhile (below)
		// If the enclosure was lost, the kernel has destroyed the link
		// and our retained end is dead.
		xAlive = !xMine.Dead()
		th.Destroy(xMine)
		th.Destroy(e)
	})
	_ = abortErr
	b := sys.Spawn("B", func(th *lynx.Thread, boot []*lynx.End) {
		e := boot[0]
		// Reverse request: leaves a posted receive awaiting the reply.
		th.Fork("rev", func(tv *lynx.Thread) {
			tv.Connect(e, "reverse", lynx.Msg{})
		})
		// Crash inside the paper's window: after the kernel delivered the
		// enclosure-bearing request to us, but before our FORBID bounce
		// (returning the enclosure) reaches A.
		th.Sleep(85 * lynx.Millisecond)
		th.Process().Crash()
		th.Sleep(lynx.Millisecond)
	})
	sys.Join(a, b)
	if err := sys.Run(); err != nil {
		// Deadlock-free runs only; treat errors as a failed episode.
		return
	}
	o.survived = xAlive
	o.recalled = xAlive // recalled iff it never left (approximation reported)
	return
}

// E9 regenerates §5.3's forecast: "code tuning and protocol
// optimizations now under development are likely to improve both figures
// by 30 to 40%" — the Chrysalis kernel with tuned microcode paths.
func e9(seed uint64) *Result {
	base0 := echoRTT(seed, lynx.Chrysalis, 0, 1, false)
	base1k := echoRTT(seed, lynx.Chrysalis, 1000, 1, false)
	tuned0 := echoRTT(seed, lynx.Chrysalis, 0, 1, true)
	tuned1k := echoRTT(seed, lynx.Chrysalis, 1000, 1, true)
	imp0 := 100 * (1 - float64(tuned0)/float64(base0))
	imp1k := 100 * (1 - float64(tuned1k)/float64(base1k))
	res := &Result{
		ID:      "E9",
		Title:   "Chrysalis tuning ablation (§5.3's 30-40% forecast)",
		Columns: []string{"configuration", "base (ms)", "tuned (ms)", "improvement"},
		Rows: [][]string{
			{"no data", ms(base0), ms(tuned0), fmt.Sprintf("%.0f%%", imp0)},
			{"1000B both ways", ms(base1k), ms(tuned1k), fmt.Sprintf("%.0f%%", imp1k)},
		},
		Notes: []string{
			"tuning scales the fixed primitive paths; per-byte copies are untouched, so the 1000B row improves less",
		},
	}
	res.Pass = imp0 >= 15 && imp0 <= 45 && imp1k > 5 && imp1k <= imp0
	return res
}

// E10 regenerates §4.2's hint-maintenance economics: how a dormant
// link's stale hint is repaired as the safety nets degrade — move cache
// forwarding, discover broadcast, and the freeze/unfreeze search.
func e10(seed uint64) *Result {
	res := &Result{
		ID:      "E10",
		Title:   "SODA hint repair: cache -> discover -> freeze (§4.2)",
		Columns: []string{"configuration", "op latency (ms)", "forwards", "discovers", "freezes", "frozen proc-time (ms)", "hint hit rate"},
	}
	type cfgCase struct {
		name      string
		cache     int
		discovers int
		freeze    bool
	}
	cases := []cfgCase{
		{"move cache available", 64, 3, true},
		{"cache disabled, discover works", 0, 3, true},
		{"cache+discover disabled -> freeze", 0, 0, true},
	}
	var lat []float64
	var usedForward, usedDiscover, usedFreeze bool
	for _, c := range cases {
		opts := lynx.SODAOptions{
			CacheSize:       c.cache,
			DiscoverRetries: c.discovers,
			DisableFreeze:   !c.freeze,
			HintTimeout:     150 * lynx.Millisecond,
		}
		if c.cache == 0 {
			opts.CacheSize = -1 // 0 means "default" in SODAOptions
		}
		if c.discovers == 0 {
			opts.DiscoverRetries = -1
		}
		d, m, pids := runE10Scenario(seed, opts)
		lat = append(lat, d.Milliseconds())
		// All counts come from the obs metric registry.
		fwd := m.ProcValue(obs.MMovedForwards, pids[1])
		disc := m.ProcValue(obs.MDiscovers, pids[0])
		frz := m.ProcValue(obs.MFreezes, pids[0])
		var frozenMS float64
		for _, pid := range pids {
			frozenMS += float64(m.ProcValue(obs.MFrozenTimeNs, pid)) / 1e6
		}
		hits := m.SumPrefix(obs.MHintHits)
		misses := m.SumPrefix(obs.MHintMisses)
		rate := "-"
		if hits+misses > 0 {
			rate = fmt.Sprintf("%.2f", float64(hits)/float64(hits+misses))
		}
		if fwd > 0 {
			usedForward = true
		}
		if disc > 0 {
			usedDiscover = true
		}
		if frz > 0 {
			usedFreeze = true
		}
		res.Rows = append(res.Rows, []string{
			c.name, ms(d), fmt.Sprint(fwd), fmt.Sprint(disc), fmt.Sprint(frz),
			fmt.Sprintf("%.1f", frozenMS), rate,
		})
		res.addMetrics(fmt.Sprintf("soda[%s]", c.name), m)
	}
	// Shape: each degradation step engages the next (more expensive)
	// repair mechanism; the freeze search visibly halts other processes.
	_ = lat
	res.Pass = usedForward && usedDiscover && usedFreeze
	res.Notes = append(res.Notes,
		"the freeze search halts every process: its cost is the sum of frozen process-time, not just the searcher's latency")
	return res
}

// runE10Scenario: a dormant link's far end moves B->C while A is not
// watching; A then performs one operation on it and we observe which
// mechanism repaired the hint. Returns the op latency, the run's metric
// registry, and the kernel pids of A, B, C (per-proc metric keys).
func runE10Scenario(seed uint64, opts lynx.SODAOptions) (opLatency lynx.Duration, m *obs.Metrics, pids [3]int) {
	sys := lynx.NewSystem(lynx.Config{Substrate: lynx.SODA, Seed: sysSeed(seed, 6), SODA: opts})
	a := sys.Spawn("A", func(th *lynx.Thread, boot []*lynx.End) {
		e := boot[0]
		if _, err := th.Connect(e, "one", lynx.Msg{}); err != nil {
			return
		}
		th.Sleep(400 * lynx.Millisecond) // dormant while the end moves
		start := th.Now()
		if _, err := th.Connect(e, "two", lynx.Msg{}); err != nil {
			return
		}
		opLatency = lynx.Duration(th.Now() - start)
		th.Destroy(e)
	})
	b := sys.Spawn("B", func(th *lynx.Thread, boot []*lynx.End) {
		e, toC := boot[0], boot[1]
		req, err := th.Receive(e)
		if err != nil {
			return
		}
		th.Reply(req, lynx.Msg{})
		th.Sleep(100 * lynx.Millisecond) // let A's watch retire
		if _, err := th.Connect(toC, "take", lynx.Msg{Links: []*lynx.End{e}}); err != nil {
			return
		}
		th.Sleep(3 * lynx.Second) // stay alive to forward (or not)
		th.Destroy(toC)
	})
	c := sys.Spawn("C", func(th *lynx.Thread, boot []*lynx.End) {
		req, err := th.Receive(boot[0])
		if err != nil {
			return
		}
		moved := req.Links()[0]
		th.Reply(req, lynx.Msg{})
		th.Sleep(1500 * lynx.Millisecond) // dormant at C as well
		th.Serve(moved, func(st *lynx.Thread, r2 *lynx.Request) {
			st.Reply(r2, lynx.Msg{})
		})
	})
	sys.Join(a, b)
	sys.Join(b, c)
	m = sys.Metrics()
	pids = [3]int{a.KernelPID(), b.KernelPID(), c.KernelPID()}
	if err := sys.Run(); err != nil {
		return
	}
	return
}

// E11 regenerates §2.1's fairness requirement: "an implementation must
// guarantee that no queue is ignored forever". A single server owns many
// links, each hammered by a client; every queue must keep being served.
func e11(seed uint64) *Result {
	const nClients = 6
	const horizon = 4 * lynx.Second
	res := &Result{
		ID:      "E11",
		Title:   "Queue fairness under saturation (§2.1)",
		Columns: []string{"substrate", "clients", "min ops/queue", "max ops/queue", "max/min"},
		Pass:    true,
	}
	for _, sub := range []lynx.Substrate{lynx.Chrysalis, lynx.Ideal} {
		served := make([]int, nClients)
		sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: sysSeed(seed, 8)})
		server := sys.Spawn("server", func(th *lynx.Thread, boot []*lynx.End) {
			for i, e := range boot {
				i := i
				th.Serve(e, func(st *lynx.Thread, req *lynx.Request) {
					served[i]++
					st.Reply(req, lynx.Msg{})
				})
			}
		})
		for i := 0; i < nClients; i++ {
			cl := sys.Spawn(fmt.Sprint("client", i), func(th *lynx.Thread, boot []*lynx.End) {
				e := boot[0]
				for {
					if _, err := th.Connect(e, "op", lynx.Msg{}); err != nil {
						return
					}
				}
			})
			sys.Join(server, cl)
		}
		if err := sys.RunFor(horizon); err != nil && !errors.Is(err, errHorizon) {
			panic(fmt.Sprintf("E11(%v): %v", sub, err))
		}
		minOps, maxOps := served[0], served[0]
		for _, n := range served[1:] {
			if n < minOps {
				minOps = n
			}
			if n > maxOps {
				maxOps = n
			}
		}
		ratio := float64(maxOps) / float64(max(minOps, 1))
		if minOps == 0 || ratio > 2.0 {
			res.Pass = false
		}
		res.Rows = append(res.Rows, []string{
			sub.String(), fmt.Sprint(nClients), fmt.Sprint(minOps), fmt.Sprint(maxOps),
			fmt.Sprintf("%.2f", ratio),
		})
	}
	res.Notes = append(res.Notes,
		"FIFO event processing in the run-time package bounds every queue's wait: no starvation")
	return res
}

// errHorizon is a sentinel; RunFor returns nil at the horizon, so this
// exists only for future-proofing the error check above.
var errHorizon = errors.New("horizon")
