package expt

import "testing"

// Each experiment must run cleanly and match the paper's shape.

func checkResult(t *testing.T, r *Result) {
	t.Helper()
	if r == nil {
		t.Fatal("nil result")
	}
	t.Log("\n" + r.Render())
	if !r.Pass {
		t.Errorf("%s: measured shape does not match the paper", r.ID)
	}
}

func TestE1(t *testing.T)  { checkResult(t, E1()) }
func TestE2(t *testing.T)  { checkResult(t, E2()) }
func TestE3(t *testing.T)  { checkResult(t, E3()) }
func TestE4(t *testing.T)  { checkResult(t, E4()) }
func TestE5(t *testing.T)  { checkResult(t, E5()) }
func TestE6(t *testing.T)  { checkResult(t, E6()) }
func TestE7(t *testing.T)  { checkResult(t, E7()) }
func TestE8(t *testing.T)  { checkResult(t, E8()) }
func TestE9(t *testing.T)  { checkResult(t, E9()) }
func TestE10(t *testing.T) { checkResult(t, E10()) }
func TestE11(t *testing.T) { checkResult(t, E11()) }

func TestByID(t *testing.T) {
	if ByID("e3") == nil || ByID("E11") == nil {
		t.Fatal("ByID lookup failed")
	}
	if ByID("E99") != nil {
		t.Fatal("bogus id resolved")
	}
}

func TestE12(t *testing.T) { checkResult(t, E12()) }
func TestE13(t *testing.T) { checkResult(t, E13()) }
