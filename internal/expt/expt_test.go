package expt

import (
	"encoding/json"
	"reflect"
	"testing"
)

// Each experiment must run cleanly and match the paper's shape.

func checkResult(t *testing.T, r *Result) {
	t.Helper()
	if r == nil {
		t.Fatal("nil result")
	}
	t.Log("\n" + r.Render())
	if !r.Pass {
		t.Errorf("%s: measured shape does not match the paper", r.ID)
	}
}

func TestE1(t *testing.T)  { checkResult(t, E1()) }
func TestE2(t *testing.T)  { checkResult(t, E2()) }
func TestE3(t *testing.T)  { checkResult(t, E3()) }
func TestE4(t *testing.T)  { checkResult(t, E4()) }
func TestE5(t *testing.T)  { checkResult(t, E5()) }
func TestE6(t *testing.T)  { checkResult(t, E6()) }
func TestE7(t *testing.T)  { checkResult(t, E7()) }
func TestE8(t *testing.T)  { checkResult(t, E8()) }
func TestE9(t *testing.T)  { checkResult(t, E9()) }
func TestE10(t *testing.T) { checkResult(t, E10()) }
func TestE11(t *testing.T) { checkResult(t, E11()) }

func TestByID(t *testing.T) {
	if ByID("e3") == nil || ByID("E11") == nil {
		t.Fatal("ByID lookup failed")
	}
	if ByID("E99") != nil {
		t.Fatal("bogus id resolved")
	}
}

func TestE12(t *testing.T) { checkResult(t, E12()) }
func TestE13(t *testing.T) { checkResult(t, E13()) }

// TestE7JSONRoundTrip: `lynxbench -e E7 -json` must round-trip through
// encoding/json, metric snapshot included.
func TestE7JSONRoundTrip(t *testing.T) {
	r := E7()
	if len(r.Metrics) == 0 {
		t.Fatal("E7 result carries no obs metric snapshot")
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(*r, back) {
		t.Errorf("round trip lost data:\n got %+v\nwant %+v", back, *r)
	}
	if back.Metrics["charlotte/"+"unwanted_receives_total{proc=1}"] == 0 {
		t.Errorf("expected a nonzero charlotte unwanted-receive count in the snapshot")
	}
}
