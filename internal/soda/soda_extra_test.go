package soda

import (
	"testing"

	"repro/internal/calib"
	"repro/internal/sim"
)

// Additional SODA kernel tests: Withdraw, RequestDelivered, DataDelay,
// get-style requests, advertisement lifecycle.

func TestWithdrawUnaccepted(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	n := Name(5)
	env.Spawn("x", func(p *sim.Proc) {
		b.SetHandler(func(Interrupt) {})
		a.SetHandler(func(Interrupt) {})
		id, st := a.Request(p, b.ID(), n, OOB{}, []byte("x"), 0)
		if st != OK {
			t.Fatalf("Request: %v", st)
		}
		if st := a.Withdraw(p, id); st != OK {
			t.Fatalf("Withdraw: %v", st)
		}
		// Withdrawn requests cannot be accepted, even if the name is
		// advertised later.
		b.Advertise(p, n)
		p.Delay(50 * sim.Millisecond)
		if len(b.InboundRequests()) != 0 {
			t.Fatal("withdrawn request still inbound")
		}
		if _, st := b.Accept(p, id, OOB{}, nil, 10); st != NoSuchRequest {
			t.Fatalf("Accept withdrawn: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWithdrawAcceptedFails(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	n := Name(6)
	env.Spawn("x", func(p *sim.Proc) {
		b.Advertise(p, n)
		var req ReqID
		seen := sim.NewWaitQueue(env, "seen")
		b.SetHandler(func(ir Interrupt) {
			req = ir.Req
			seen.Wake()
		})
		a.SetHandler(func(Interrupt) {})
		id, _ := a.Request(p, b.ID(), n, OOB{}, []byte("x"), 0)
		seen.Wait(p)
		b.Accept(p, req, OOB{}, nil, 10)
		if st := a.Withdraw(p, id); st != NoSuchRequest {
			t.Fatalf("Withdraw after accept: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRequestDelivered(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	n := Name(7)
	env.Spawn("x", func(p *sim.Proc) {
		b.SetHandler(func(Interrupt) {})
		a.SetHandler(func(Interrupt) {})
		// Unadvertised: posted but undelivered.
		id, _ := a.Request(p, b.ID(), n, OOB{}, []byte("x"), 0)
		p.Delay(50 * sim.Millisecond)
		if a.RequestDelivered(id) {
			t.Fatal("undelivered request reported delivered")
		}
		b.Advertise(p, n)
		p.Delay(sim.Millisecond)
		if !a.RequestDelivered(id) {
			t.Fatal("delivered request not reported")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDataDelayScalesWithSize(t *testing.T) {
	_, k := newTestKernel()
	d1 := k.DataDelay(100)
	d2 := k.DataDelay(200)
	if d2 != 2*d1 || d1 <= 0 {
		t.Fatalf("DataDelay(100)=%v DataDelay(200)=%v", d1, d2)
	}
	// ≈13 µs/B at the calibrated rates (5 kernel + 8 wire).
	perByte := float64(d1) / 100
	if perByte < 12000 || perByte > 14000 {
		t.Fatalf("per-byte delay = %.0f ns", perByte)
	}
	_ = calib.DefaultSODA()
}

func TestGetStyleRequest(t *testing.T) {
	// A pure get: the requester sends nothing, receives the accepter's
	// data.
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	n := Name(8)
	done := sim.NewWaitQueue(env, "done")
	var completion Interrupt
	env.Spawn("b", func(p *sim.Proc) {
		b.Advertise(p, n)
		b.SetHandler(func(ir Interrupt) {
			if ir.IKind == IntRequest {
				if ir.ReqKind != Get {
					t.Errorf("kind = %v, want get", ir.ReqKind)
				}
				b.Accept(nil, ir.Req, OOB{}, []byte("served-data"), 0)
			}
		})
	})
	env.Spawn("a", func(p *sim.Proc) {
		a.SetHandler(func(ir Interrupt) {
			completion = ir
			done.Wake()
		})
		p.Delay(sim.Millisecond)
		a.Request(p, b.ID(), n, OOB{}, nil, 64)
		done.Wait(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if string(completion.Data) != "served-data" {
		t.Fatalf("got %q", completion.Data)
	}
}

func TestUnadvertiseStopsDelivery(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	n := Name(9)
	var got int
	env.Spawn("x", func(p *sim.Proc) {
		b.Advertise(p, n)
		b.SetHandler(func(ir Interrupt) { got++ })
		a.SetHandler(func(Interrupt) {})
		a.Request(p, b.ID(), n, OOB{}, []byte("1"), 0)
		p.Delay(20 * sim.Millisecond)
		if got != 1 {
			t.Fatalf("first request: got=%d", got)
		}
		b.Unadvertise(p, n)
		a.Request(p, b.ID(), n, OOB{}, []byte("2"), 0)
		p.Delay(50 * sim.Millisecond)
		if got != 1 {
			t.Fatalf("after unadvertise: got=%d", got)
		}
		if !b.Advertises(n) == false && got != 1 {
			t.Fail()
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInterruptKindStrings(t *testing.T) {
	if IntRequest.String() != "request" || IntCompletion.String() != "completion" || IntCrash.String() != "crash" {
		t.Error("interrupt kind strings")
	}
	for st := OK; st <= NotFound; st++ {
		if st.String() == "" {
			t.Errorf("status %d unnamed", st)
		}
	}
	for _, kd := range []Kind{Signal, Put, Get, Exchange} {
		if kd.String() == "" {
			t.Errorf("kind %d unnamed", kd)
		}
	}
}
