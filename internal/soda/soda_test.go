package soda

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/calib"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func newTestKernel() (*sim.Env, *Kernel) {
	env := sim.NewEnv(1)
	bus := netsim.NewCSMABus(env.Rand().Fork())
	k := NewKernel(env, bus, calib.DefaultSODA())
	return env, k
}

func TestOOBRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		v &= (1 << 48) - 1
		return OOBFromUint64(v).Uint64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOOBTruncatesTo48Bits(t *testing.T) {
	v := uint64(0xFFFF_FFFF_FFFF_FFFF)
	if got := OOBFromUint64(v).Uint64(); got != (1<<48)-1 {
		t.Fatalf("got %x", got)
	}
}

func TestKindOf(t *testing.T) {
	cases := []struct {
		s, r int
		want Kind
	}{
		{0, 0, Signal}, {5, 0, Put}, {0, 5, Get}, {5, 5, Exchange},
	}
	for _, c := range cases {
		if got := KindOf(c.s, c.r); got != c.want {
			t.Errorf("KindOf(%d,%d) = %v, want %v", c.s, c.r, got, c.want)
		}
	}
}

func TestNamesUnique(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	env.Spawn("a", func(p *sim.Proc) {
		seen := map[Name]bool{}
		for i := 0; i < 100; i++ {
			n := a.NewName(p)
			if seen[n] {
				t.Errorf("duplicate name %d", n)
			}
			seen[n] = true
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPutRequestInterruptAccept(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	var gotReq, completion Interrupt
	reqSeen := sim.NewWaitQueue(env, "reqSeen")
	doneSeen := sim.NewWaitQueue(env, "doneSeen")

	env.Spawn("b", func(p *sim.Proc) {
		n := b.NewName(p)
		b.Advertise(p, n)
		b.SetHandler(func(ir Interrupt) {
			gotReq = ir
			reqSeen.Wake()
		})
		env.Spawn("a", func(pa *sim.Proc) {
			a.SetHandler(func(ir Interrupt) {
				completion = ir
				doneSeen.Wake()
			})
			if _, st := a.Request(pa, b.ID(), n, OOBFromUint64(7), []byte("payload"), 0); st != OK {
				t.Errorf("Request: %v", st)
			}
		})
		reqSeen.Wait(p)
		if gotReq.IKind != IntRequest || gotReq.ReqKind != Put || gotReq.SendBytes != 7 {
			t.Errorf("request interrupt: %+v", gotReq)
		}
		if gotReq.OOB.Uint64() != 7 {
			t.Errorf("oob = %d", gotReq.OOB.Uint64())
		}
		got, st := b.Accept(p, gotReq.Req, OOBFromUint64(9), nil, 100)
		if st != OK || !bytes.Equal(got, []byte("payload")) {
			t.Errorf("Accept: %v %q", st, got)
		}
		doneSeen.Wait(p)
		if completion.IKind != IntCompletion || completion.OOB.Uint64() != 9 || completion.Sent != 7 {
			t.Errorf("completion: %+v", completion)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Stats().Requests != 1 || k.Stats().Accepts != 1 {
		t.Fatalf("stats %+v", k.Stats())
	}
}

func TestExchangeTransfersBothDirections(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	done := sim.NewWaitQueue(env, "done")
	var completion Interrupt
	n := Name(77)

	env.Spawn("b", func(p *sim.Proc) {
		b.Advertise(p, n)
		b.SetHandler(func(ir Interrupt) {
			if ir.IKind != IntRequest {
				return
			}
			// Accept from handler context (nil proc): take 4 of the 10
			// offered bytes, send 6 back.
			got, st := b.Accept(nil, ir.Req, OOB{}, []byte("reply!"), 4)
			if st != OK || string(got) != "0123" {
				t.Errorf("Accept: %v %q", st, got)
			}
		})
	})
	env.Spawn("a", func(p *sim.Proc) {
		a.SetHandler(func(ir Interrupt) {
			completion = ir
			done.Wake()
		})
		p.Delay(sim.Millisecond) // let b advertise
		if _, st := a.Request(p, b.ID(), n, OOB{}, []byte("0123456789"), 100); st != OK {
			t.Errorf("Request: %v", st)
		}
		done.Wait(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if string(completion.Data) != "reply!" || completion.Sent != 4 {
		t.Fatalf("completion %+v", completion)
	}
}

func TestTransferSizesAreMinOfDeclared(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	done := sim.NewWaitQueue(env, "done")
	var completion Interrupt
	n := Name(5)

	env.Spawn("b", func(p *sim.Proc) {
		b.Advertise(p, n)
		b.SetHandler(func(ir Interrupt) {
			if ir.IKind == IntRequest {
				// Accepter sends 10 bytes but requester only takes 3.
				b.Accept(nil, ir.Req, OOB{}, []byte("ABCDEFGHIJ"), 0)
			}
		})
	})
	env.Spawn("a", func(p *sim.Proc) {
		a.SetHandler(func(ir Interrupt) {
			completion = ir
			done.Wake()
		})
		p.Delay(sim.Millisecond)
		a.Request(p, b.ID(), n, OOB{}, nil, 3)
		done.Wait(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if string(completion.Data) != "ABC" {
		t.Fatalf("data %q", completion.Data)
	}
}

func TestRequestDelayedUntilAdvertised(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	n := Name(9)
	var delivered []Interrupt

	env.Spawn("b", func(p *sim.Proc) {
		b.SetHandler(func(ir Interrupt) { delivered = append(delivered, ir) })
		p.Delay(100 * sim.Millisecond)
		if len(delivered) != 0 {
			t.Error("request delivered before advertisement")
		}
		b.Advertise(p, n)
		p.Delay(sim.Millisecond)
		if len(delivered) != 1 {
			t.Errorf("delivered = %d after advertise", len(delivered))
		}
	})
	env.Spawn("a", func(p *sim.Proc) {
		a.SetHandler(func(Interrupt) {})
		if _, st := a.Request(p, b.ID(), n, OOB{}, []byte("x"), 0); st != OK {
			t.Errorf("Request: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Stats().Retries != 1 {
		t.Fatalf("retries = %d", k.Stats().Retries)
	}
}

func TestInterruptsQueueWhileMasked(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	n := Name(3)
	var got []Interrupt

	env.Spawn("b", func(p *sim.Proc) {
		b.Advertise(p, n)
		b.SetHandler(func(ir Interrupt) { got = append(got, ir) })
		b.CloseHandler()
		p.Delay(200 * sim.Millisecond)
		if len(got) != 0 {
			t.Error("interrupt delivered while masked")
		}
		b.OpenHandler()
		if len(got) != 2 {
			t.Errorf("flushed %d interrupts, want 2", len(got))
		}
		// FIFO order preserved.
		if len(got) == 2 && got[0].OOB.Uint64() >= got[1].OOB.Uint64() {
			t.Errorf("interrupts out of order: %v %v", got[0].OOB.Uint64(), got[1].OOB.Uint64())
		}
	})
	env.Spawn("a", func(p *sim.Proc) {
		a.SetHandler(func(Interrupt) {})
		a.Request(p, b.ID(), n, OOBFromUint64(1), []byte("x"), 0)
		p.Delay(10 * sim.Millisecond)
		a.Request(p, b.ID(), n, OOBFromUint64(2), []byte("y"), 0)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDiscoverFindsAdvertiser(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	n := Name(21)
	env.Spawn("b", func(p *sim.Proc) {
		b.Advertise(p, n)
	})
	env.Spawn("a", func(p *sim.Proc) {
		p.Delay(sim.Millisecond)
		id, st := a.Discover(p, n)
		if st != OK || id != b.ID() {
			t.Errorf("Discover = %v, %v", id, st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDiscoverNotFound(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	env.Spawn("a", func(p *sim.Proc) {
		start := p.Now()
		_, st := a.Discover(p, Name(999))
		if st != NotFound {
			t.Errorf("Discover: %v", st)
		}
		if sim.Duration(p.Now()-start) < calib.DefaultSODA().DiscoverTimeout {
			t.Error("failed discover returned before timeout")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashInterruptOnTargetDeath(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	n := Name(4)
	done := sim.NewWaitQueue(env, "done")
	var crash Interrupt

	env.Spawn("b", func(p *sim.Proc) {
		b.Advertise(p, n)
		p.Delay(50 * sim.Millisecond)
		b.Terminate()
	})
	env.Spawn("a", func(p *sim.Proc) {
		a.SetHandler(func(ir Interrupt) {
			crash = ir
			done.Wake()
		})
		p.Delay(sim.Millisecond)
		a.Request(p, b.ID(), n, OOB{}, []byte("x"), 0)
		done.Wait(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if crash.IKind != IntCrash || crash.From != b.ID() {
		t.Fatalf("crash interrupt %+v", crash)
	}
}

func TestRequestToDeadProcess(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("a", func(p *sim.Proc) {
		b.Terminate()
		if _, st := a.Request(p, b.ID(), Name(1), OOB{}, nil, 0); st != DeadProc {
			t.Errorf("Request to dead: %v", st)
		}
		if _, st := a.Request(p, ProcID(99), Name(1), OOB{}, nil, 0); st != NoSuchProc {
			t.Errorf("Request to unknown: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPairLimit(t *testing.T) {
	env, k := newTestKernel()
	k.PairLimit = 3
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("a", func(p *sim.Proc) {
		a.SetHandler(func(Interrupt) {})
		for i := 0; i < 3; i++ {
			if _, st := a.Request(p, b.ID(), Name(1), OOB{}, nil, 0); st != OK {
				t.Fatalf("request %d: %v", i, st)
			}
		}
		if _, st := a.Request(p, b.ID(), Name(1), OOB{}, nil, 0); st != TooManyRequests {
			t.Errorf("4th request: %v, want TooManyRequests", st)
		}
		if a.OutstandingTo(b.ID()) != 3 {
			t.Errorf("outstanding = %d", a.OutstandingTo(b.ID()))
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptUnknownRequest(t *testing.T) {
	env, k := newTestKernel()
	b := k.NewProcess(0)
	env.Spawn("b", func(p *sim.Proc) {
		if _, st := b.Accept(p, ReqID(42), OOB{}, nil, 0); st != NoSuchRequest {
			t.Errorf("Accept: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleAcceptFails(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	n := Name(8)
	env.Spawn("b", func(p *sim.Proc) {
		b.Advertise(p, n)
		var req ReqID
		seen := sim.NewWaitQueue(env, "seen")
		b.SetHandler(func(ir Interrupt) {
			req = ir.Req
			seen.Wake()
		})
		env.Spawn("a", func(pa *sim.Proc) {
			a.SetHandler(func(Interrupt) {})
			a.Request(pa, b.ID(), n, OOB{}, []byte("x"), 0)
		})
		seen.Wait(p)
		if _, st := b.Accept(p, req, OOB{}, nil, 10); st != OK {
			t.Errorf("first accept: %v", st)
		}
		if _, st := b.Accept(p, req, OOB{}, nil, 10); st != NoSuchRequest {
			t.Errorf("second accept: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveIDs(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	c := k.NewProcess(2)
	env.Spawn("x", func(p *sim.Proc) {
		ids := k.LiveIDs()
		if len(ids) != 3 {
			t.Fatalf("live = %v", ids)
		}
		b.Terminate()
		ids = k.LiveIDs()
		if len(ids) != 2 || ids[0] != a.ID() || ids[1] != c.ID() {
			t.Fatalf("live after kill = %v", ids)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallMessageRTTCalibration(t *testing.T) {
	// A LYNX-style round trip at kernel level is: request put (server
	// accepts, no data back) + server's reply put (client accepts). The
	// paper says SODA small-message RTT ≈ Charlotte/3 ≈ 18 ms.
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	n := Name(1)
	rn := Name(2)
	var rtt sim.Duration

	env.Spawn("b", func(p *sim.Proc) {
		b.Advertise(p, n)
		b.SetHandler(func(ir Interrupt) {
			switch ir.IKind {
			case IntRequest:
				b.Accept(nil, ir.Req, OOB{}, nil, 64)
				// Reply: put back to the client.
				b.Request(nil, ir.From, rn, OOB{}, nil, 0)
			case IntCompletion:
				// Client accepted the reply; nothing to do.
			}
		})
	})
	env.Spawn("a", func(p *sim.Proc) {
		done := sim.NewWaitQueue(env, "rtt")
		a.Advertise(p, rn)
		a.SetHandler(func(ir Interrupt) {
			if ir.IKind == IntRequest && ir.Name == rn {
				a.Accept(nil, ir.Req, OOB{}, nil, 0)
				done.Wake()
			}
		})
		p.Delay(sim.Millisecond)
		start := p.Now()
		a.Request(p, b.ID(), n, OOB{}, nil, 0)
		done.Wait(p)
		rtt = sim.Duration(p.Now() - start)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	ms := rtt.Milliseconds()
	if ms < 13 || ms > 24 {
		t.Fatalf("SODA small RTT = %.2f ms, want ≈ 18 ms", ms)
	}
}

func TestTerminateIdempotent(t *testing.T) {
	env, k := newTestKernel()
	b := k.NewProcess(0)
	env.Spawn("x", func(p *sim.Proc) {
		b.Terminate()
		b.Terminate()
		if !b.Dead() {
			t.Error("not dead")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
