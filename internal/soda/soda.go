// Package soda reimplements Kepecs & Solomon's SODA ("Simplified
// Operating system for Distributed Applications") kernel as described in
// §4 of the paper, running on the sim/netsim substrate.
//
// SODA is better described as a communications protocol for a broadcast
// medium with many single-process nodes. Each node pairs a client
// processor with a kernel processor; we model the pair as one simulated
// process whose kernel costs are charged in virtual time.
//
// The interface is the paper's:
//
//   - every process has a unique id and *advertises* names it will
//     respond to; a kernel call generates names unique over space & time;
//   - *discover* uses unreliable broadcast to find a process advertising
//     a given name;
//   - processes do not send messages: they *request a transfer* (name,
//     process id, small out-of-band data, bytes-to-send, bytes-willing-
//     to-receive) — put/get/signal/exchange by which counts are zero;
//   - the target feels a *software interrupt* (single handler, maskable)
//     describing the request, and may *accept* it at any later time,
//     completing the transfer in both directions at once;
//   - completion interrupts are queued while the handler is closed;
//     requests for unadvertised names are delayed and retried by the
//     requesting kernel; a crash interrupt is delivered if the target
//     dies first.
package soda

import (
	"fmt"
	"sort"

	"repro/internal/calib"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ProcID identifies a SODA process (equivalently, its node).
type ProcID int

// Name is a capability-like identifier, unique over space and time.
type Name uint64

// OOB is the small out-of-band datum carried by requests and accepts.
// SODA leaves its size unspecified but small; the paper's LYNX design
// wants at least 48 bits, so we provide exactly 48 (enforcing the
// scarcity that §4.2.1 worries about).
type OOB [6]byte

// OOBFromUint64 packs the low 48 bits of v into an OOB.
func OOBFromUint64(v uint64) OOB {
	var o OOB
	for i := 0; i < 6; i++ {
		o[i] = byte(v >> (8 * i))
	}
	return o
}

// Uint64 unpacks the OOB into the low 48 bits of a uint64.
func (o OOB) Uint64() uint64 {
	var v uint64
	for i := 0; i < 6; i++ {
		v |= uint64(o[i]) << (8 * i)
	}
	return v
}

// Status is the result of a SODA kernel call.
type Status int

// Kernel call status codes.
const (
	OK Status = iota
	// NoSuchProc: the target id names no live process.
	NoSuchProc
	// DeadProc: the target died (also delivered via crash interrupts).
	DeadProc
	// TooManyRequests: the per-pair outstanding-request limit would be
	// exceeded (§4.2.1's "unspecified constant").
	TooManyRequests
	// NoSuchRequest: Accept named an unknown or already-accepted request.
	NoSuchRequest
	// NotFound: Discover failed to find an advertiser.
	NotFound
)

func (s Status) String() string {
	switch s {
	case OK:
		return "OK"
	case NoSuchProc:
		return "NO_SUCH_PROC"
	case DeadProc:
		return "DEAD_PROC"
	case TooManyRequests:
		return "TOO_MANY_REQUESTS"
	case NoSuchRequest:
		return "NO_SUCH_REQUEST"
	case NotFound:
		return "NOT_FOUND"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ReqID identifies an outstanding request.
type ReqID int64

// Kind classifies a request by its transfer directions.
type Kind int

// Request kinds. The kind is implied by which byte counts are nonzero:
// put sends, get receives, signal does neither, exchange does both.
const (
	Signal Kind = iota
	Put
	Get
	Exchange
)

func (k Kind) String() string {
	switch k {
	case Signal:
		return "signal"
	case Put:
		return "put"
	case Get:
		return "get"
	default:
		return "exchange"
	}
}

// KindOf derives the kind from the requested transfer sizes.
func KindOf(sendBytes, recvBytes int) Kind {
	switch {
	case sendBytes > 0 && recvBytes > 0:
		return Exchange
	case sendBytes > 0:
		return Put
	case recvBytes > 0:
		return Get
	default:
		return Signal
	}
}

// Interrupt is a software interrupt delivered to a process's handler.
type Interrupt struct {
	// Kind of interrupt.
	IKind IntKind
	// Req identifies the request this interrupt concerns.
	Req ReqID
	// From is the peer process (requester for IntRequest, accepter for
	// IntCompletion, the dead process for IntCrash).
	From ProcID
	// Name is the advertised name the request specified (IntRequest).
	Name Name
	// OOB carries the request's or accept's out-of-band data.
	OOB OOB
	// Kind of the underlying request (IntRequest).
	ReqKind Kind
	// SendBytes/RecvBytes are the requester's declared sizes (IntRequest).
	SendBytes, RecvBytes int
	// Data is the payload received by this process in the completed
	// transfer (IntCompletion only; nil otherwise).
	Data []byte
	// Sent is how many bytes this process's outgoing payload actually
	// transferred (IntCompletion).
	Sent int
}

// IntKind classifies interrupts.
type IntKind int

// Interrupt kinds.
const (
	IntRequest IntKind = iota
	IntCompletion
	IntCrash
)

func (k IntKind) String() string {
	switch k {
	case IntRequest:
		return "request"
	case IntCompletion:
		return "completion"
	default:
		return "crash"
	}
}

// Handler receives software interrupts. Handlers run in scheduler
// context and must not block; they typically record state and wake a
// waiting simproc.
type Handler func(Interrupt)

// charge spends CPU time on the calling simproc. Kernel calls made from
// interrupt-handler context pass a nil proc: the kernel processor does
// the work asynchronously and no client CPU is charged.
func charge(p *sim.Proc, d sim.Duration) {
	if p != nil {
		p.Delay(d)
	}
}

// Stats is a snapshot of kernel activity for the experiment harness,
// computed on demand from the kernel's obs metrics.
type Stats struct {
	Requests   int64
	Accepts    int64
	Interrupts int64
	Discovers  int64
	Broadcasts int64
	Retries    int64
	Bytes      int64
}

// Kernel is the SODA network: the set of kernel processors and the bus.
//
// For conservative parallel runs the kernel is split into groups
// (Partition): each group owns a shard env, a bus segment, strided id
// allocators, and an overlay process map, so processes of different
// groups share no mutable kernel state mid-run. Processes registered
// before partitioning stay in the shared boot map, which is read-only
// from then on. A request addressed across groups fails with
// NoSuchProc — partition groups are connected components of the boot
// wiring, so no correct program crosses them.
type Kernel struct {
	env   *sim.Env
	bus   *netsim.CSMABus
	costs calib.SODACosts

	procs map[ProcID]*Process // boot map; read-only once partitioned

	def    *kgroup   // the unpartitioned group (boot allocator)
	groups []*kgroup // non-nil after Partition

	rec *obs.Recorder
	// PairLimit is the maximum outstanding requests between an ordered
	// pair of processes (§4.2.1). Zero means unlimited.
	PairLimit int
}

// kgroup is one partition group of the kernel: the shard env its
// processes run on, the bus segment they transmit over, an overlay map
// for processes registered mid-run, and strided id allocators whose
// output depends only on this group's own call order.
type kgroup struct {
	k   *Kernel
	idx int // -1 for the default (unpartitioned) group
	env *sim.Env
	bus *netsim.CSMABus

	procs    map[ProcID]*Process // == k.procs for the default group
	nextProc ProcID
	nextName uint64
	nextReq  ReqID
	stride   int
}

// findProc resolves a process id against the group overlay, then the
// shared boot map. The caller checks group membership before touching
// any mutable field of the result.
func (g *kgroup) findProc(id ProcID) (*Process, bool) {
	if p, ok := g.procs[id]; ok {
		return p, true
	}
	if g.idx >= 0 {
		p, ok := g.k.procs[id]
		return p, ok
	}
	return nil, false
}

// NewKernel creates a SODA kernel over the given bus.
func NewKernel(env *sim.Env, bus *netsim.CSMABus, costs calib.SODACosts) *Kernel {
	k := &Kernel{
		env:       env,
		bus:       bus,
		costs:     costs,
		procs:     make(map[ProcID]*Process),
		rec:       obs.NewRecorder(env, "soda"),
		PairLimit: 8,
	}
	k.def = &kgroup{k: k, idx: -1, env: env, bus: bus, procs: k.procs, nextProc: 1, nextName: 1, nextReq: 1, stride: 1}
	// Pre-create every instrument touched mid-run: the metrics registry
	// is unlocked, so lazily inserting from concurrently executing
	// groups would race on the name map.
	for _, name := range []string{
		obs.MKernelRequests, obs.MKernelAccepts, obs.MKernelInterrupts,
		obs.MKernelDiscovers, obs.MKernelBroadcasts, obs.MKernelRetries,
		obs.MKernelBytes,
	} {
		k.rec.Counter(name)
	}
	return k
}

// Partition splits the kernel into one group per shard env for a
// conservative parallel run: group i's processes run on envs[i] and
// transmit over buses[i] (its per-group medium segment). Ids allocated
// from here on are strided per group, so mid-run NewName/Request/
// NewProcessIn stay deterministic at any worker count. Call before the
// run starts, then AssignGroup every process.
func (k *Kernel) Partition(envs []*sim.Env, buses []*netsim.CSMABus) {
	if len(envs) != len(buses) {
		panic("soda: Partition needs one bus segment per shard env")
	}
	if k.groups != nil {
		panic("soda: Partition called twice")
	}
	stride := len(envs)
	k.groups = make([]*kgroup, stride)
	for i := range envs {
		k.groups[i] = &kgroup{
			k: k, idx: i, env: envs[i], bus: buses[i],
			procs:    make(map[ProcID]*Process),
			nextProc: k.def.nextProc + ProcID(i),
			nextName: k.def.nextName + uint64(i),
			nextReq:  k.def.nextReq + ReqID(i),
			stride:   stride,
		}
	}
}

// transmit charges one request/accept frame on the bus and schedules
// deliver at its arrival instant, consulting the bus's fault hook (if
// any) for the frame's fate. pre is the kernel path cost before the
// wire and post the cost after it (copy loops, interrupt dispatch);
// both are charged once regardless of retries. A dropped frame is
// resent after the kernel's RetryInterval — the same periodic retry
// SODA's kernel already uses for parked requests — and is re-judged by
// the hook on each attempt, so a healed partition lets the retry
// through. While a request frame is lost the requester still observes
// ReqInFlight, so bindings keep waiting instead of misreading the loss
// as a stale hint. A duplicated frame charges the bus for the ghost
// copy at delivery; the kernel discards the duplicate (request and
// completion handling are idempotent), so only bandwidth is lost. With
// no hook installed the path is byte-identical to SendTime + After.
func (g *kgroup) transmit(src, dst netsim.NodeID, nbytes int, pre, post sim.Duration, deliver func()) {
	wire := g.bus.SendTime(g.env.Now(), src, dst, nbytes)
	if h := g.bus.FaultHook(); h != nil {
		v := h.Frame(g.env.Now(), src, dst, nbytes, wire, false)
		if v.Drop {
			g.env.After(pre+g.k.costs.RetryInterval, func() { g.transmit(src, dst, nbytes, 0, post, deliver) })
			return
		}
		wire += v.Extra
		if v.Dup {
			g.env.After(pre+wire+post, func() {
				g.bus.SendTime(g.env.Now(), src, dst, nbytes) // ghost copy occupies the bus
				deliver()
			})
			return
		}
	}
	g.env.After(pre+wire+post, deliver)
}

// Env returns the simulation environment.
func (k *Kernel) Env() *sim.Env { return k.env }

// Obs returns the kernel's observability recorder; the binding shares
// it, and sinks attach to it.
func (k *Kernel) Obs() *obs.Recorder { return k.rec }

// Stats returns a snapshot of the kernel's counters.
func (k *Kernel) Stats() *Stats {
	m := k.rec.Metrics()
	return &Stats{
		Requests:   m.Value(obs.MKernelRequests),
		Accepts:    m.Value(obs.MKernelAccepts),
		Interrupts: m.Value(obs.MKernelInterrupts),
		Discovers:  m.Value(obs.MKernelDiscovers),
		Broadcasts: m.Value(obs.MKernelBroadcasts),
		Retries:    m.Value(obs.MKernelRetries),
		Bytes:      m.Value(obs.MKernelBytes),
	}
}

// eventKind maps a request kind onto its typed event kind.
func eventKind(k Kind) obs.Kind {
	switch k {
	case Put:
		return obs.KindPut
	case Get:
		return obs.KindGet
	case Exchange:
		return obs.KindExchange
	default:
		return obs.KindSignal
	}
}

// DataDelay reports how long n bytes of accepted payload take to become
// usable at the receiving client processor: kernel copy plus bus
// serialization. Bindings use it to defer message visibility to match
// the physical transfer the kernel charges on the completion path.
func (k *Kernel) DataDelay(n int) sim.Duration {
	wirePerByte := sim.Duration(8 * int64(sim.Second) / k.bus.BitRate)
	return sim.Duration(n) * (k.costs.PerByte + wirePerByte)
}

// LiveIDs returns the ids of all live processes in ascending order.
// SODA "makes it easy to guess their ids"; the freeze protocol needs
// this. On a partitioned kernel use Process.LiveIDs, which scopes the
// scan to the caller's group.
func (k *Kernel) LiveIDs() []ProcID {
	return k.def.liveIDs(nil)
}

// LiveIDs returns the ids of all live processes in this process's
// partition group, ascending. Groups are connected components of the
// boot wiring, so the group is "every process in existence" as far as
// any protocol of pr's can observe.
func (pr *Process) LiveIDs() []ProcID {
	return pr.g.liveIDs(pr.g)
}

// liveIDs scans the boot map plus the group overlay for live processes
// of group want (nil: no membership filter), ascending by id.
func (g *kgroup) liveIDs(want *kgroup) []ProcID {
	var ids []ProcID
	for id, p := range g.k.procs {
		if (want == nil || p.g == want) && !p.dead {
			ids = append(ids, id)
		}
	}
	if g.idx >= 0 {
		for id, p := range g.procs {
			if (want == nil || p.g == want) && !p.dead {
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// request is the kernel-side record of an outstanding request.
type request struct {
	id        ReqID
	from, to  ProcID
	name      Name
	oob       OOB
	data      []byte // requester's outgoing payload
	recvBytes int    // requester's willingness to receive
	arrived   bool   // request frame has crossed the bus to the target
	delivered bool   // interrupt raised at target (name was advertised)
	accepted  bool
	withdrawn bool
}

// Process is one SODA node: client processor + kernel processor.
type Process struct {
	k          *Kernel
	g          *kgroup
	id         ProcID
	node       netsim.NodeID
	advertised map[Name]bool
	handler    Handler
	open       bool
	queue      []Interrupt // interrupts queued while closed
	// inbound: requests addressed to this process, by id.
	inbound map[ReqID]*request
	// outbound: requests this process posted, by id.
	outbound map[ReqID]*request
	dead     bool
}

// NewProcess registers a process on the given node with its interrupt
// handler initially open.
func (k *Kernel) NewProcess(node netsim.NodeID) *Process {
	return newProcessIn(k.def, node)
}

// NewProcessIn registers a process directly in partition group g: the
// home-group placement for processes launched after the run has
// started. Its id comes from the group's strided allocator.
func (k *Kernel) NewProcessIn(g int, node netsim.NodeID) *Process {
	return newProcessIn(k.groups[g], node)
}

func newProcessIn(g *kgroup, node netsim.NodeID) *Process {
	pr := &Process{
		k:          g.k,
		g:          g,
		id:         g.nextProc,
		node:       node,
		advertised: make(map[Name]bool),
		open:       true,
		inbound:    make(map[ReqID]*request),
		outbound:   make(map[ReqID]*request),
	}
	g.nextProc += ProcID(g.stride)
	g.procs[pr.id] = pr
	return pr
}

// AssignGroup moves a boot-registered process into partition group g.
// Call after Kernel.Partition, before the run starts.
func (pr *Process) AssignGroup(g int) { pr.g = pr.k.groups[g] }

// Group returns the index of the process's partition group (-1 when
// unpartitioned).
func (pr *Process) Group() int { return pr.g.idx }

// ID returns the process id.
func (pr *Process) ID() ProcID { return pr.id }

// Node returns the process's node.
func (pr *Process) Node() netsim.NodeID { return pr.node }

// NewName generates a name unique over space and time.
func (pr *Process) NewName(p *sim.Proc) Name {
	n := pr.g.nextName
	pr.g.nextName += uint64(pr.g.stride)
	charge(p, pr.k.costs.ClientCall) // cheap local kernel call
	return Name(n)
}

// Advertise begins responding to a name. Requests that were delayed
// waiting for the advertisement are delivered now.
func (pr *Process) Advertise(p *sim.Proc, n Name) {
	charge(p, pr.k.costs.ClientCall)
	pr.advertised[n] = true
	if pr.k.rec.Active() {
		pr.k.rec.EmitEnv(pr.g.env, obs.Event{
			Kind: obs.KindMark, Proc: int(pr.id),
			Detail: fmt.Sprintf("advertise %d", n),
		})
	}
	for _, r := range pr.pendingFor(n) {
		pr.k.rec.Counter(obs.MKernelRetries).Inc()
		pr.deliverRequest(r)
	}
}

// Unadvertise stops responding to a name.
func (pr *Process) Unadvertise(p *sim.Proc, n Name) {
	charge(p, pr.k.costs.ClientCall)
	delete(pr.advertised, n)
}

// Advertises reports whether the process currently advertises n.
func (pr *Process) Advertises(n Name) bool { return pr.advertised[n] }

// pendingFor returns undelivered inbound requests naming n, oldest
// first (ascending request id; ids order by posting time within a
// group, and all of a process's inbound traffic is one group's).
func (pr *Process) pendingFor(n Name) []*request {
	var rs []*request
	for _, id := range pr.inboundIDs() {
		// Only frames that have physically arrived: an Advertise must not
		// deliver a request still serializing onto the bus.
		if r := pr.inbound[id]; r.arrived && !r.delivered && !r.accepted && r.name == n {
			rs = append(rs, r)
		}
	}
	return rs
}

// inboundIDs returns the keys of pr.inbound in ascending order.
func (pr *Process) inboundIDs() []ReqID {
	ids := make([]ReqID, 0, len(pr.inbound))
	for id := range pr.inbound {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SetHandler installs the single software-interrupt handler.
func (pr *Process) SetHandler(h Handler) { pr.handler = h }

// CloseHandler masks interrupts; they queue until OpenHandler.
func (pr *Process) CloseHandler() { pr.open = false }

// OpenHandler unmasks interrupts and flushes the queue in arrival order.
func (pr *Process) OpenHandler() {
	pr.open = true
	for len(pr.queue) > 0 && pr.open {
		ir := pr.queue[0]
		pr.queue = pr.queue[0:copy(pr.queue, pr.queue[1:])]
		pr.raise(ir)
	}
}

// HandlerOpen reports the mask state.
func (pr *Process) HandlerOpen() bool { return pr.open }

// raise delivers an interrupt to the handler, or queues it while masked.
func (pr *Process) raise(ir Interrupt) {
	if pr.dead {
		return
	}
	if !pr.open || pr.handler == nil {
		pr.queue = append(pr.queue, ir)
		return
	}
	if ir.IKind == IntCompletion {
		// The transfer's bookkeeping ends only now that the requester
		// actually sees the completion (see Accept).
		delete(pr.outbound, ir.Req)
	}
	pr.k.rec.Counter(obs.MKernelInterrupts).Inc()
	pr.handler(ir)
}

// Request posts a transfer request to process `to` under advertised name
// `name`. data is what the requester wants to send (put/exchange);
// recvBytes is how much it is willing to receive (get/exchange). The
// request id is returned immediately; completion (or crash) arrives as an
// interrupt. The requesting user can proceed meanwhile.
func (pr *Process) Request(p *sim.Proc, to ProcID, name Name, oob OOB, data []byte, recvBytes int) (ReqID, Status) {
	charge(p, pr.k.costs.ClientCall)
	pr.k.rec.Counter(obs.MKernelRequests).Inc()
	target, ok := pr.g.findProc(to)
	if !ok || target.g != pr.g {
		// A target outside the partition group is unreachable: groups are
		// connected components of the boot wiring, and its state belongs
		// to a concurrently executing shard. (Membership is checked before
		// any mutable field of target is read.)
		return 0, NoSuchProc
	}
	if target.dead {
		return 0, DeadProc
	}
	if lim := pr.k.PairLimit; lim > 0 {
		n := 0
		for _, r := range pr.outbound {
			if r.to == to && !r.accepted {
				n++
			}
		}
		if n >= lim {
			return 0, TooManyRequests
		}
	}
	rid := pr.g.nextReq
	pr.g.nextReq += ReqID(pr.g.stride)
	buf := make([]byte, len(data))
	copy(buf, data)
	r := &request{
		id: rid, from: pr.id, to: to, name: name,
		oob: oob, data: buf, recvBytes: recvBytes,
	}
	pr.outbound[r.id] = r
	target.inbound[r.id] = r

	// The request descriptor crosses the bus (a small frame).
	k := pr.k
	pr.g.transmit(pr.node, target.node, 32, k.costs.RequestPath, k.costs.InterruptDelivery, func() {
		if r.withdrawn || r.accepted || target.dead {
			return
		}
		r.arrived = true
		if target.advertised[r.name] {
			target.deliverRequest(r)
		}
		// Else: parked; Advertise will deliver it (the kernel's
		// periodic retry, modeled without the bus traffic).
	})
	if k.rec.Active() {
		k.rec.EmitEnv(pr.g.env, obs.Event{
			Kind: eventKind(KindOf(len(data), recvBytes)),
			Proc: int(pr.id), Peer: int(to), Seq: uint64(r.id), Bytes: len(buf),
			Detail: fmt.Sprintf("name=%d recv=%d", name, recvBytes),
		})
	}
	return r.id, OK
}

// deliverRequest raises the request interrupt at the target.
func (pr *Process) deliverRequest(r *request) {
	r.delivered = true
	pr.raise(Interrupt{
		IKind: IntRequest, Req: r.id, From: r.from, Name: r.name,
		OOB: r.oob, ReqKind: KindOf(len(r.data), r.recvBytes),
		SendBytes: len(r.data), RecvBytes: r.recvBytes,
	})
}

// Accept completes a previously posted request. data is what the
// accepter sends back toward the requester (bounded by the requester's
// recvBytes); recvBytes is how much of the requester's payload the
// accepter takes (bounded by what was sent). The transfer happens in
// both directions simultaneously; the requester feels a completion
// interrupt carrying oob. Accepting does not block the accepter.
func (pr *Process) Accept(p *sim.Proc, id ReqID, oob OOB, data []byte, recvBytes int) (got []byte, st Status) {
	charge(p, pr.k.costs.ClientCall)
	r, ok := pr.inbound[id]
	if !ok || r.accepted {
		return nil, NoSuchRequest
	}
	requester, ok := pr.g.findProc(r.from)
	if !ok || requester.dead {
		delete(pr.inbound, id)
		return nil, DeadProc
	}
	r.accepted = true
	delete(pr.inbound, id)
	// The requester's outbound entry survives (marked accepted) until its
	// completion interrupt is actually dispatched: RequestDelivered must
	// keep answering true across the accept→interrupt window, or a hint
	// timeout firing inside it would misread a successful transfer as a
	// stale hint and re-post a put that was already taken.
	pr.k.rec.Counter(obs.MKernelAccepts).Inc()

	// Transfer sizes: the smaller of the two parties' declarations.
	toAccepter := r.data
	if len(toAccepter) > recvBytes {
		toAccepter = toAccepter[:recvBytes]
	}
	toRequester := data
	if len(toRequester) > r.recvBytes {
		toRequester = toRequester[:r.recvBytes]
	}
	n := len(toAccepter) + len(toRequester)
	pr.k.rec.Counter(obs.MKernelBytes).Add(int64(n))

	copyCost := sim.Duration(n) * pr.k.costs.PerByte
	reply := make([]byte, len(toRequester))
	copy(reply, toRequester)
	sent := len(toAccepter)
	k := pr.k
	fromID := pr.id
	pr.g.transmit(pr.node, requester.node, n+32, k.costs.RequestPath, copyCost+k.costs.InterruptDelivery, func() {
		requester.raise(Interrupt{
			IKind: IntCompletion, Req: id, From: fromID, OOB: oob,
			Data: reply, Sent: sent,
		})
	})
	if k.rec.Active() {
		k.rec.EmitEnv(pr.g.env, obs.Event{
			Kind: obs.KindAccept, Proc: int(pr.id), Peer: int(r.from),
			Seq: uint64(id), Bytes: n,
			Detail: fmt.Sprintf("%dB back, %dB taken", len(reply), sent),
		})
	}
	return toAccepter, OK
}

// Discover broadcasts for a process advertising n and blocks for the
// first answer (or the discover timeout). The broadcast is unreliable:
// each advertiser independently misses it with the bus's loss rate.
func (pr *Process) Discover(p *sim.Proc, n Name) (ProcID, Status) {
	pr.k.rec.Counter(obs.MKernelDiscovers).Inc()
	pr.k.rec.Counter(obs.MKernelBroadcasts).Inc()
	if pr.k.rec.Active() {
		pr.k.rec.EmitEnv(pr.g.env, obs.Event{
			Kind: obs.KindDiscover, Proc: int(pr.id),
			Detail: fmt.Sprintf("name=%d", n),
		})
	}
	charge(p, pr.k.costs.ClientCall)
	g := pr.g
	wire := g.bus.BroadcastTime(g.env.Now(), pr.node, 16)
	p.Delay(wire)
	// Candidate advertisers, ascending by id, scoped to the caller's
	// partition group: a broadcast never leaves its bus segment, and the
	// rng draw per candidate must follow the group's own stream.
	var found, foundNode = ProcID(0), netsim.NodeID(0)
	for _, id := range g.liveIDs(liveWant(g)) {
		q, _ := g.findProc(id)
		if q.id == pr.id || !q.advertised[n] {
			continue
		}
		if g.bus.BroadcastDelivers(q.node) {
			found, foundNode = q.id, q.node
			break
		}
	}
	if found == 0 {
		// Wait out the timeout window for (absent) answers.
		p.Delay(pr.k.costs.DiscoverTimeout)
		return 0, NotFound
	}
	// The answer frame returns over the bus.
	back := g.bus.SendTime(g.env.Now(), foundNode, pr.node, 16)
	p.Delay(back)
	return found, OK
}

// liveWant is the membership filter for group-scoped scans: none for
// the default group (everything is one group), g itself otherwise.
func liveWant(g *kgroup) *kgroup {
	if g.idx < 0 {
		return nil
	}
	return g
}

// ReqState is the requester-visible lifecycle of an outstanding request.
type ReqState int

const (
	// ReqGone: not outstanding (completed, crashed, or withdrawn).
	ReqGone ReqState = iota
	// ReqInFlight: the request frame is still crossing the bus. Says
	// nothing about the hint's freshness — under load the shared medium
	// can hold a frame far longer than any staleness timeout.
	ReqInFlight
	// ReqUndeliverable: the frame arrived but the target does not
	// advertise the name. The hint is stale (or the advertiser is only
	// briefly between names); recovery is warranted.
	ReqUndeliverable
	// ReqDelivered: the target has seen the request and is simply not
	// accepting yet — normal stop-and-wait blocking.
	ReqDelivered
)

// RequestState reports where an outstanding request of ours is in its
// lifecycle. Bindings use this to tell bus congestion (ReqInFlight)
// apart from a stale hint (ReqUndeliverable): only the latter should
// trigger rediscovery.
func (pr *Process) RequestState(id ReqID) ReqState {
	r, ok := pr.outbound[id]
	switch {
	case !ok:
		return ReqGone
	case r.delivered:
		return ReqDelivered
	case r.arrived:
		return ReqUndeliverable
	default:
		return ReqInFlight
	}
}

// RequestDelivered reports whether an outstanding request of ours has
// had its interrupt raised at the target (i.e. the target advertises the
// name and has seen the descriptor). A LYNX binding uses this to
// distinguish "hint is stale / name unadvertised" (recovery needed) from
// "delivered but not yet accepted" (normal stop-and-wait blocking).
func (pr *Process) RequestDelivered(id ReqID) bool {
	r, ok := pr.outbound[id]
	return ok && r.delivered
}

// Withdraw retracts an unaccepted request this process posted: the
// requesting kernel simply stops retrying and the target forgets the
// descriptor. It fails with NoSuchRequest if the request was already
// accepted (the transfer happened).
func (pr *Process) Withdraw(p *sim.Proc, id ReqID) Status {
	charge(p, pr.k.costs.ClientCall)
	r, ok := pr.outbound[id]
	if !ok || r.accepted {
		return NoSuchRequest
	}
	r.withdrawn = true
	delete(pr.outbound, id)
	if target, tok := pr.g.findProc(r.to); tok {
		delete(target.inbound, id)
	}
	return OK
}

// OutstandingTo counts unaccepted requests this process has posted to a
// given target.
func (pr *Process) OutstandingTo(to ProcID) int {
	n := 0
	for _, r := range pr.outbound {
		if r.to == to && !r.accepted {
			n++
		}
	}
	return n
}

// InboundRequests returns ids of delivered, unaccepted inbound requests
// in arrival order (for tests and the freeze protocol).
func (pr *Process) InboundRequests() []ReqID {
	var ids []ReqID
	for _, id := range pr.inboundIDs() {
		if r := pr.inbound[id]; r.delivered && !r.accepted {
			ids = append(ids, id)
		}
	}
	return ids
}

// Terminate kills the process: its advertisements vanish, inbound
// requests die, and every process with an outstanding request to it
// feels a crash interrupt. Safe to call from OnKill hooks.
func (pr *Process) Terminate() {
	if pr.dead {
		return
	}
	pr.dead = true
	if pr.k.rec.Active() {
		pr.k.rec.EmitEnv(pr.g.env, obs.Event{Kind: obs.KindMark, Proc: int(pr.id), Detail: "terminate"})
	}
	// Walk inbound in request-id order: each entry schedules a timer,
	// and timer ties break by scheduling sequence, so randomized map
	// order would make same-seed runs diverge. The crash interrupts fire
	// on the group env — inbound traffic is group-local by construction.
	for _, id := range pr.inboundIDs() {
		r := pr.inbound[id]
		requester, live := pr.g.findProc(r.from)
		if !live || requester.dead {
			continue
		}
		delete(requester.outbound, id)
		reqID, from := id, pr.id
		pr.g.env.After(pr.k.costs.RetryInterval, func() {
			requester.raise(Interrupt{IKind: IntCrash, Req: reqID, From: from})
		})
	}
	pr.inbound = make(map[ReqID]*request)
	pr.advertised = make(map[Name]bool)
}

// Dead reports whether the process has terminated.
func (pr *Process) Dead() bool { return pr.dead }
