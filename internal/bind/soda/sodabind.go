// Package sodabind implements the LYNX run-time package's kernel-specific
// half for the SODA kernel — the design §4.2 of the paper describes (and
// never built; we build it):
//
//   - a link is a pair of names, one per end; the owner of an end
//     advertises its name and keeps a HINT naming the process it believes
//     owns the far end. Hints can be wrong; they are fixed lazily;
//   - a LYNX message is a SODA put to the hinted process; the enclosed
//     link ends travel as (name, far-name, hint) records in the payload.
//     "When the message is SODA-accepted by the receiver, the ends are
//     understood to have moved";
//   - screening is the application's own interrupt handler: an unwanted
//     request is simply not accepted until it becomes wanted, so every
//     received message is wanted and no RETRY/FORBID machinery exists;
//   - a process that wants traffic on an end posts a status SIGNAL to
//     the hinted owner; the signal is held unaccepted and is used by the
//     far side to announce destruction (accept with DESTROYED) or
//     movement (accept with MOVED + new owner);
//   - a process that moves or destroys an end must accept all pending
//     requests on it, redirecting (MOVED) or killing (DESTROYED) them;
//   - stale hints are repaired from the movers' caches (moved names stay
//     advertised and answer MOVED), then by unreliable-broadcast
//     discover, and finally by the freeze/unfreeze absolute search that
//     halts every process (§4.2's fallback; expensive, measured in E10).
package sodabind

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/soda"
)

// OOB verb layout: verb in the low byte, argument (a ProcID or a kind)
// in the remaining 40 bits.
const (
	oobData      = 1 // data put: arg = kind | seqLow32<<8
	oobWatch     = 2 // status signal
	oobOK        = 3 // accept: delivered
	oobMoved     = 4 // accept: end moved, arg = new owner pid
	oobDestroyed = 5 // accept: link destroyed
	oobRejected  = 6 // accept: reply no longer wanted
	oobFreeze    = 7 // freeze request (absolute search)
	oobUnfreeze  = 8 // unfreeze request posted by a frozen process
)

func packOOB(verb byte, arg uint64) soda.OOB {
	return soda.OOBFromUint64(uint64(verb) | arg<<8)
}

func unpackOOB(o soda.OOB) (verb byte, arg uint64) {
	v := o.Uint64()
	return byte(v & 0xFF), v >> 8
}

// packDataArg encodes message kind and seq (low 31 bits) for the data
// put's OOB: the 48-bit limit §4.2.1 worries about forces truncation;
// the full seq rides in the payload and is recovered after accept.
func packDataArg(kind core.MsgKind, seq uint64) uint64 {
	return uint64(kind) | (seq&0x7FFF_FFFF)<<8
}

func unpackDataArg(arg uint64) (core.MsgKind, uint64) {
	return core.MsgKind(arg & 0xFF), arg >> 8
}

// enclRecord is the 24-byte payload record moving one link end.
type enclRecord struct {
	name    soda.Name
	farName soda.Name
	hint    soda.ProcID
}

const enclRecordLen = 24

func encodeEncl(buf []byte, recs []enclRecord) []byte {
	for _, r := range recs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.name))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.farName))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.hint))
	}
	return buf
}

func decodeEncl(buf []byte, n int) ([]enclRecord, error) {
	if len(buf) != n*enclRecordLen {
		return nil, fmt.Errorf("sodabind: enclosure block %dB for %d ends", len(buf), n)
	}
	recs := make([]enclRecord, n)
	for i := range recs {
		off := i * enclRecordLen
		recs[i].name = soda.Name(binary.LittleEndian.Uint64(buf[off:]))
		recs[i].farName = soda.Name(binary.LittleEndian.Uint64(buf[off+8:]))
		recs[i].hint = soda.ProcID(binary.LittleEndian.Uint64(buf[off+16:]))
	}
	return recs, nil
}

// Stats counts binding-level activity (E5/E7/E10 read these). It is a
// point-in-time snapshot of the binding's obs counters.
type Stats struct {
	Puts            int64
	Accepts         int64
	SavedRequests   int64 // wanted-later requests held unaccepted
	RejectedReplies int64 // replies NAKed with REJECTED (server feels it)
	MovedForwards   int64 // MOVED redirections answered from the cache
	HintFixes       int64 // hints repaired via MOVED/cache
	HintHits        int64 // data puts delivered on the first post (hint was right)
	HintMisses      int64 // data puts that needed redirection or recovery
	Discovers       int64
	Freezes         int64 // freeze searches initiated
	FreezeHalts     int64 // process-freezes suffered (times this process froze)
	FrozenTime      sim.Duration
	LinkMoves       int64
	CacheEvictions  int64
	// PairLimitRetries counts puts re-posted after the kernel's per-pair
	// outstanding-request limit rejected them (§4.2.1).
	PairLimitRetries int64
}

// counters holds the binding's per-process obs counter handles.
type counters struct {
	puts             *obs.Counter
	accepts          *obs.Counter
	savedRequests    *obs.Counter
	rejectedReplies  *obs.Counter
	movedForwards    *obs.Counter
	hintFixes        *obs.Counter
	hintHits         *obs.Counter
	hintMisses       *obs.Counter
	discovers        *obs.Counter
	freezes          *obs.Counter
	freezeHalts      *obs.Counter
	frozenNs         *obs.Counter
	linkMoves        *obs.Counter
	cacheEvictions   *obs.Counter
	pairLimitRetries *obs.Counter
}

// Config tunes the hint machinery.
type Config struct {
	// BufCap is the maximum LYNX message size.
	BufCap int
	// CacheSize bounds the move cache ("a cache of links it has known
	// about recently"); 0 disables forwarding.
	CacheSize int
	// HintTimeout is how long a put may stay unaccepted before hint
	// recovery starts.
	HintTimeout sim.Duration
	// DiscoverRetries is how many discover broadcasts to attempt before
	// falling back to the freeze search.
	DiscoverRetries int
	// EnableFreeze enables the absolute-search fallback.
	EnableFreeze bool
}

// DefaultConfig returns sensible defaults.
func DefaultConfig() Config {
	return Config{
		BufCap:          4096,
		CacheSize:       64,
		HintTimeout:     250 * sim.Millisecond,
		DiscoverRetries: 3,
		EnableFreeze:    true,
	}
}

// Transport is one LYNX process's SODA binding.
type Transport struct {
	env    *sim.Env
	kernel *soda.Kernel
	kp     *soda.Process
	sink   func(core.Event)
	screen core.ScreenFunc
	proc   *sim.Proc
	cfg    Config
	rec    *obs.Recorder
	c      counters

	ends map[soda.Name]*endState
	// moveCache: forwarding addresses for ends we moved away; their
	// names stay advertised so we can answer MOVED.
	moveCache map[soda.Name]soda.ProcID
	cacheFIFO []soda.Name

	// pending: our outstanding puts/signals by request id.
	pending map[soda.ReqID]*pendingSend
	// saved: inbound wanted-later data requests by end name.
	saved map[soda.Name][]savedReq

	// janitor runs blocking recovery work (discover, freeze).
	janitor     *sim.Proc
	janitorWork *sim.Mailbox

	// freeze state.
	frozen     int
	frozeAt    sim.Time
	heldEvents []core.Event
	// unfreezeReq: unfreeze requests arrived at us (the searcher), held
	// unaccepted until our search finishes.
	unfreezeReq map[soda.ReqID]bool
	// unfreezePending: unfreeze requests we posted while frozen, keyed
	// for the resume completion.
	unfreezePending map[soda.ReqID]bool
	freezeName      soda.Name
	searchActive    bool
	searchWait      *sim.WaitQueue
	searchHint      soda.ProcID
	searchLeft      int

	dead bool
}

var _ core.Transport = (*Transport)(nil)
var _ core.Capable = (*Transport)(nil)
var _ core.Screened = (*Transport)(nil)

// endState is the binding's view of one owned link end.
type endState struct {
	myName  soda.Name
	farName soda.Name
	hint    soda.ProcID
	dead    bool
	moving  bool
	// movingTo is the believed destination while moving: incoming
	// traffic is redirected there instead of being held, which breaks
	// cross-move cycles (two processes moving ends over each other's
	// moving links would otherwise deadlock).
	movingTo soda.ProcID
	wantReq  bool
	wantRep  bool

	// watch: our posted status signal's request id (0 = none).
	watch soda.ReqID
	// peerWatch: the far end's status signal, held unaccepted.
	peerWatch soda.ReqID
	// outstanding maps a request's low-31 seq bits to the full seq (the
	// OOB field is too small for the whole thing — §4.2.1).
	outstanding map[uint64]uint64
}

// savedReq is an inbound request held unaccepted until wanted.
type savedReq struct {
	req  soda.ReqID
	from soda.ProcID
	kind core.MsgKind
	seq  uint64 // truncated (low 31 bits)
}

// pendingSend tracks one posted put/signal.
type pendingSend struct {
	end      *endState
	isWatch  bool
	wire     *core.WireMsg // data puts only
	payload  []byte
	tag      uint64
	encl     []*endState
	enclRecs []enclRecord
	done     bool
	cancel   bool
	// gen counts re-posts (MOVED redirects, recoveries); each post's
	// hint timeout is valid only for its own generation.
	gen int
}

// New creates the binding for one LYNX process on the given SODA node.
func New(env *sim.Env, kernel *soda.Kernel, kp *soda.Process, cfg Config) *Transport {
	rec := kernel.Obs()
	id := int(kp.ID())
	tr := &Transport{
		env:    env,
		kernel: kernel,
		kp:     kp,
		cfg:    cfg,
		rec:    rec,
		c: counters{
			puts:             rec.ProcCounter(obs.MPuts, id),
			accepts:          rec.ProcCounter(obs.MAccepts, id),
			savedRequests:    rec.ProcCounter(obs.MSavedRequests, id),
			rejectedReplies:  rec.ProcCounter(obs.MRejectedReplies, id),
			movedForwards:    rec.ProcCounter(obs.MMovedForwards, id),
			hintFixes:        rec.ProcCounter(obs.MHintFixes, id),
			hintHits:         rec.ProcCounter(obs.MHintHits, id),
			hintMisses:       rec.ProcCounter(obs.MHintMisses, id),
			discovers:        rec.ProcCounter(obs.MDiscovers, id),
			freezes:          rec.ProcCounter(obs.MFreezes, id),
			freezeHalts:      rec.ProcCounter(obs.MFreezeHalts, id),
			frozenNs:         rec.ProcCounter(obs.MFrozenTimeNs, id),
			linkMoves:        rec.ProcCounter(obs.MLinkMoves, id),
			cacheEvictions:   rec.ProcCounter(obs.MCacheEvictions, id),
			pairLimitRetries: rec.ProcCounter(obs.MPairLimitRetries, id),
		},
		ends:        make(map[soda.Name]*endState),
		moveCache:   make(map[soda.Name]soda.ProcID),
		pending:     make(map[soda.ReqID]*pendingSend),
		saved:       make(map[soda.Name][]savedReq),
		unfreezeReq: make(map[soda.ReqID]bool),
	}
	tr.unfreezePending = make(map[soda.ReqID]bool)
	tr.freezeName = soda.Name(uint64(1)<<48 | uint64(kp.ID()))
	return tr
}

// Obs returns the recorder this binding reports into (the kernel's).
func (tr *Transport) Obs() *obs.Recorder { return tr.rec }

// SetEnv rebinds the transport's scheduling env. A partitioned run
// calls this (before SetSink spawns the binding's simprocs) so its
// timers, mailboxes, and pumps live on its process's home shard env.
func (tr *Transport) SetEnv(env *sim.Env) { tr.env = env }

// obsEmit records a binding-protocol event when a trace sink is
// attached; counters are maintained unconditionally.
func (tr *Transport) obsEmit(kind obs.Kind, seq uint64, detail string) {
	if tr.rec.Active() {
		tr.rec.EmitEnv(tr.env, obs.Event{Kind: kind, Proc: int(tr.kp.ID()), Seq: seq, Detail: detail})
	}
}

// Stats returns a snapshot of the binding's counters.
func (tr *Transport) Stats() *Stats {
	return &Stats{
		Puts:             tr.c.puts.Value(),
		Accepts:          tr.c.accepts.Value(),
		SavedRequests:    tr.c.savedRequests.Value(),
		RejectedReplies:  tr.c.rejectedReplies.Value(),
		MovedForwards:    tr.c.movedForwards.Value(),
		HintFixes:        tr.c.hintFixes.Value(),
		HintHits:         tr.c.hintHits.Value(),
		HintMisses:       tr.c.hintMisses.Value(),
		Discovers:        tr.c.discovers.Value(),
		Freezes:          tr.c.freezes.Value(),
		FreezeHalts:      tr.c.freezeHalts.Value(),
		FrozenTime:       sim.Duration(tr.c.frozenNs.Value()),
		LinkMoves:        tr.c.linkMoves.Value(),
		CacheEvictions:   tr.c.cacheEvictions.Value(),
		PairLimitRetries: tr.c.pairLimitRetries.Value(),
	}
}

// KernelProcess returns the underlying SODA process (harness use).
func (tr *Transport) KernelProcess() *soda.Process { return tr.kp }

// Capabilities implements core.Capable: SODA detects all the exceptional
// conditions in the language definition without extra acknowledgments.
func (tr *Transport) Capabilities() core.Capabilities {
	return core.Capabilities{
		RejectsUnwantedReplies:    true,
		RecoversAbortedEnclosures: true,
	}
}

// SetScreen implements core.Screened.
func (tr *Transport) SetScreen(s core.ScreenFunc) { tr.screen = s }

// SetSink implements core.Transport: installs the interrupt handler and
// starts the janitor.
func (tr *Transport) SetSink(sink func(core.Event), sp *sim.Proc) {
	tr.sink = sink
	tr.proc = sp
	tr.kp.SetHandler(tr.interrupt)
	tr.kp.Advertise(nil, tr.freezeName)
	tr.janitorWork = sim.NewMailbox(tr.env, fmt.Sprintf("sodabind.janitor.p%d", tr.kp.ID()))
	tr.janitor = tr.env.Spawn(fmt.Sprintf("sodabind.janitor.p%d", tr.kp.ID()), func(p *sim.Proc) {
		for {
			task := tr.janitorWork.Get(p).(func(*sim.Proc))
			task(p)
		}
	})
}

// emit delivers an event unless the process is frozen, in which case the
// event is held until thaw ("ceases execution of everything but its own
// searches").
func (tr *Transport) emit(ev core.Event) {
	if tr.frozen > 0 {
		tr.heldEvents = append(tr.heldEvents, ev)
		return
	}
	tr.sink(ev)
}

// BootLink creates a link between two bindings before their processes
// start: loader wiring. Names come from the kernel's unique-over-time
// allocator — deriving them from len(ends) would recycle a name once an
// end dies, and a recycled name aliases the dead end in every layer
// that keys state by name (the run-time package's end table outlives
// the binding's). Mid-run Launch churn makes that collision real.
func BootLink(a, b *Transport) (core.TransEnd, core.TransEnd) {
	nameA := a.kp.NewName(nil)
	nameB := b.kp.NewName(nil)
	esA := &endState{myName: nameA, farName: nameB, hint: b.kp.ID(), outstanding: map[uint64]uint64{}}
	esB := &endState{myName: nameB, farName: nameA, hint: a.kp.ID(), outstanding: map[uint64]uint64{}}
	a.ends[nameA] = esA
	b.ends[nameB] = esB
	a.kp.Advertise(nil, nameA)
	b.kp.Advertise(nil, nameB)
	return nameA, nameB
}

// MakeLink implements core.Transport: both ends local, hints self.
func (tr *Transport) MakeLink() (core.TransEnd, core.TransEnd, error) {
	n1 := tr.kp.NewName(tr.proc)
	n2 := tr.kp.NewName(tr.proc)
	self := tr.kp.ID()
	e1 := &endState{myName: n1, farName: n2, hint: self, outstanding: map[uint64]uint64{}}
	e2 := &endState{myName: n2, farName: n1, hint: self, outstanding: map[uint64]uint64{}}
	tr.ends[n1] = e1
	tr.ends[n2] = e2
	tr.kp.Advertise(tr.proc, n1)
	tr.kp.Advertise(tr.proc, n2)
	return n1, n2, nil
}

func (tr *Transport) end(te core.TransEnd) (*endState, bool) {
	es, ok := tr.ends[te.(soda.Name)]
	return es, ok
}

// Destroy implements core.Transport: accept the far end's held signal
// and any saved puts with DESTROYED, then forget the end.
func (tr *Transport) Destroy(te core.TransEnd) error {
	es, ok := tr.end(te)
	if !ok || es.dead {
		return core.ErrLinkDestroyed
	}
	tr.killEnd(tr.proc, es, true)
	return nil
}

// killEnd tears down an end. If announce is set, held requests are
// accepted with DESTROYED so the far side learns.
func (tr *Transport) killEnd(p *sim.Proc, es *endState, announce bool) {
	if es.dead {
		return
	}
	es.dead = true
	if announce {
		if es.peerWatch != 0 {
			tr.kp.Accept(p, es.peerWatch, packOOB(oobDestroyed, 0), nil, 0)
			es.peerWatch = 0
		}
		for _, sr := range tr.saved[es.myName] {
			tr.kp.Accept(p, sr.req, packOOB(oobDestroyed, 0), nil, 0)
		}
	}
	delete(tr.saved, es.myName)
	if es.watch != 0 {
		tr.kp.Withdraw(p, es.watch)
		es.watch = 0
	}
	tr.kp.Unadvertise(p, es.myName)
	delete(tr.ends, es.myName)
}

// SetInterest implements core.Transport.
func (tr *Transport) SetInterest(te core.TransEnd, wantRequests, wantReplies bool) {
	es, ok := tr.end(te)
	if !ok || es.dead {
		return
	}
	es.wantReq, es.wantRep = wantRequests, wantReplies
	// Post or withdraw the status signal: we watch the far end whenever
	// we expect traffic from it.
	if (wantRequests || wantReplies) && es.watch == 0 {
		tr.postWatch(tr.proc, es)
	} else if !wantRequests && !wantReplies && es.watch != 0 {
		tr.kp.Withdraw(tr.proc, es.watch)
		delete(tr.pending, es.watch)
		es.watch = 0
	}
	// Newly-wanted saved requests can be accepted now.
	if wantRequests {
		tr.drainSaved(tr.proc, es)
	}
}

// ensureWatch posts the status signal if interest exists, none is
// posted yet, and the far owner is known (a freshly-created end's hint
// is self until the first peer message fixes it — the watch follows).
func (tr *Transport) ensureWatch(p *sim.Proc, es *endState) {
	if es.watch == 0 && (es.wantReq || es.wantRep) {
		tr.postWatch(p, es)
	}
}

// postWatch posts the status signal to the hinted far-end owner.
func (tr *Transport) postWatch(p *sim.Proc, es *endState) {
	if es.dead || es.hint == tr.kp.ID() {
		return // both ends local: no watch needed
	}
	id, st := tr.kp.Request(p, es.hint, es.farName, packOOB(oobWatch, 0), nil, 0)
	if st != soda.OK {
		if st == soda.DeadProc || st == soda.NoSuchProc {
			tr.scheduleRecovery(es, nil)
		}
		return
	}
	es.watch = id
	tr.pending[id] = &pendingSend{end: es, isWatch: true}
}

// drainSaved accepts saved requests that the screen now wants.
func (tr *Transport) drainSaved(p *sim.Proc, es *endState) {
	if es.moving {
		return // resolved at move completion or failure
	}
	list := tr.saved[es.myName]
	if len(list) == 0 {
		return
	}
	var keep []savedReq
	for _, sr := range list {
		if es.dead || !tr.wantSaved(es, sr) {
			keep = append(keep, sr)
			continue
		}
		tr.acceptData(p, es, sr.req)
	}
	if len(keep) > 0 {
		tr.saved[es.myName] = keep
	} else {
		delete(tr.saved, es.myName)
	}
}

// wantSaved screens a saved request.
func (tr *Transport) wantSaved(es *endState, sr savedReq) bool {
	if sr.kind == core.KindRequest {
		return tr.screen(es.myName, core.KindRequest, 0)
	}
	full, ok := es.outstanding[sr.seq]
	if !ok {
		return false
	}
	return tr.screen(es.myName, core.KindReply, full)
}

// StartSend implements core.Transport.
func (tr *Transport) StartSend(te core.TransEnd, m *core.WireMsg, tag uint64) error {
	es, ok := tr.end(te)
	if !ok || es.dead {
		return core.ErrLinkDestroyed
	}
	payload, err := m.Encode()
	if err != nil {
		return err
	}
	var encl []*endState
	var recs []enclRecord
	for _, e := range m.Encl {
		ees, ok := tr.end(e)
		if !ok || ees.dead {
			return core.ErrLinkDestroyed
		}
		ees.moving = true
		ees.movingTo = es.hint
		encl = append(encl, ees)
		recs = append(recs, enclRecord{name: ees.myName, farName: ees.farName, hint: ees.hint})
	}
	payload = encodeEncl(payload, recs)
	if len(payload) > tr.cfg.BufCap {
		for _, e := range encl {
			e.moving = false
		}
		return fmt.Errorf("sodabind: message %dB exceeds buffer capacity %dB", len(payload), tr.cfg.BufCap)
	}
	ps := &pendingSend{end: es, wire: m, payload: payload, tag: tag, encl: encl, enclRecs: recs}
	if m.Kind == core.KindRequest {
		es.outstanding[m.Seq&0x7FFF_FFFF] = m.Seq
	}
	tr.post(tr.proc, ps)
	return nil
}

// post issues the put for ps to the current hint and arms the hint
// timeout.
func (tr *Transport) post(p *sim.Proc, ps *pendingSend) {
	es := ps.end
	if es.dead {
		tr.releaseEnclosures(p, ps)
		tr.emit(core.Event{Kind: core.EvSendFailed, End: es.myName, Tag: ps.tag, Err: core.ErrLinkDestroyed})
		return
	}
	for _, e := range ps.encl {
		e.movingTo = es.hint
	}
	arg := packDataArg(ps.wire.Kind, ps.wire.Seq)
	ps.gen++
	id, st := tr.kp.Request(p, es.hint, es.farName, packOOB(oobData, arg), ps.payload, 0)
	switch st {
	case soda.OK:
		tr.c.puts.Inc()
		tr.pending[id] = ps
		tr.armTimeout(ps, id)
	case soda.DeadProc, soda.NoSuchProc:
		tr.scheduleRecovery(es, ps)
	case soda.TooManyRequests:
		// Per-pair limit (§4.2.1): retry shortly. The paper worries this
		// could deadlock; backing off and retrying turns it into latency.
		tr.c.pairLimitRetries.Inc()
		tr.env.After(10*sim.Millisecond, func() {
			if !ps.cancel && !ps.done && !tr.dead {
				tr.post(nil, ps)
			}
		})
	default:
		tr.releaseEnclosures(p, ps)
		tr.emit(core.Event{Kind: core.EvSendFailed, End: es.myName, Tag: ps.tag, Err: fmt.Errorf("sodabind: put: %v", st)})
	}
}

// armTimeout starts hint-staleness detection for a posted put.
func (tr *Transport) armTimeout(ps *pendingSend, id soda.ReqID) {
	if tr.cfg.HintTimeout <= 0 {
		return
	}
	gen := ps.gen
	var check func()
	check = func() {
		// A crashed process's watchdog must not outlive it: the kernel
		// only raises IntCrash to live requesters, so a put from a dead
		// process to a dead target stays ReqInFlight forever and an
		// unconditional rearm would keep the simulation alive.
		if ps.done || ps.cancel || ps.gen != gen || tr.dead {
			return
		}
		switch tr.kp.RequestState(id) {
		case soda.ReqDelivered, soda.ReqGone:
			// Delivered: the target saw it and is simply not accepting
			// yet (its queue is closed) — normal stop-and-wait blocking.
			// Gone: completion or crash already handled elsewhere.
			return
		case soda.ReqInFlight:
			// The frame is still crossing the bus. Congestion is not
			// evidence of a stale hint — under overload a saturated
			// medium holds frames far past any staleness timeout, and
			// reacting with rediscovery broadcasts only feeds the
			// congestion. Keep waiting.
			tr.env.After(tr.cfg.HintTimeout, check)
			return
		}
		// Undeliverable: the frame reached the hinted process and found
		// the name unadvertised. Withdraw and repair the hint.
		tr.kp.Withdraw(nil, id)
		delete(tr.pending, id)
		tr.scheduleRecovery(ps.end, ps)
	}
	tr.env.After(tr.cfg.HintTimeout, check)
}

// CancelSend implements core.Transport: withdraw the put if unaccepted.
func (tr *Transport) CancelSend(te core.TransEnd, tag uint64) bool {
	for id, ps := range tr.pending {
		if ps.tag != tag || ps.isWatch {
			continue
		}
		if tr.kp.Withdraw(tr.proc, id) == soda.OK {
			ps.cancel = true
			delete(tr.pending, id)
			tr.releaseEnclosures(tr.proc, ps)
			return true
		}
		return false
	}
	// Not currently posted (mid-recovery): cancellable.
	return true
}

// interrupt is the process's single software-interrupt handler — the
// screening function the kernel upcalls (lesson two).
func (tr *Transport) interrupt(ir soda.Interrupt) {
	if tr.dead {
		return
	}
	switch ir.IKind {
	case soda.IntRequest:
		tr.onRequest(ir)
	case soda.IntCompletion:
		tr.onCompletion(ir)
	case soda.IntCrash:
		tr.onCrash(ir)
	}
}

// onRequest handles an inbound SODA request descriptor.
func (tr *Transport) onRequest(ir soda.Interrupt) {
	verb, arg := unpackOOB(ir.OOB)
	switch verb {
	case oobFreeze:
		tr.onFreeze(ir)
		return
	case oobUnfreeze:
		// A frozen process answers; its hint rides in the OOB. Held
		// unaccepted until our search finishes.
		tr.onUnfreezeArrived(ir)
		return
	}
	// Forwarding: a request for an end we moved away.
	if dst, ok := tr.moveCache[ir.Name]; ok {
		tr.c.movedForwards.Inc()
		tr.kp.Accept(nil, ir.Req, packOOB(oobMoved, uint64(dst)), nil, 0)
		return
	}
	es, ok := tr.ends[ir.Name]
	if !ok {
		// Not ours and not cached: should not have been advertised;
		// ignore (the kernel will keep it pending harmlessly).
		return
	}
	switch verb {
	case oobWatch:
		if es.dead {
			tr.kp.Accept(nil, ir.Req, packOOB(oobDestroyed, 0), nil, 0)
			return
		}
		if es.moving {
			// "A process that moves a link end must accept any
			// previously-posted SODA request from the other end…
			// telling the other process where it moved its end."
			tr.kp.Accept(nil, ir.Req, packOOB(oobMoved, uint64(es.movingTo)), nil, 0)
			return
		}
		es.peerWatch = ir.Req
		// The watch also fixes OUR hint: its sender owns the far end.
		if es.hint != ir.From {
			es.hint = ir.From
			tr.c.hintFixes.Inc()
			tr.ensureWatch(nil, es)
		}
	case oobData:
		kind, seqLow := unpackDataArg(arg)
		if es.moving {
			// The end is being enclosed elsewhere: redirect the sender
			// toward the destination rather than holding the message
			// (holding can deadlock when two moves cross). If the move
			// later fails, the sender's put to the wrong process times
			// out and discover leads it back here.
			tr.c.movedForwards.Inc()
			tr.kp.Accept(nil, ir.Req, packOOB(oobMoved, uint64(es.movingTo)), nil, 0)
			return
		}
		if es.hint != ir.From {
			es.hint = ir.From
			tr.c.hintFixes.Inc()
			tr.ensureWatch(nil, es)
		}
		sr := savedReq{req: ir.Req, from: ir.From, kind: kind, seq: seqLow}
		if kind == core.KindReply && !tr.wantSaved(es, sr) {
			// An unwanted reply: NAK it so the server feels the
			// exception — SODA *can* do this without extra traffic.
			tr.c.rejectedReplies.Inc()
			tr.obsEmit(obs.KindUnwanted, uint64(ir.Req), "reply rejected")
			tr.kp.Accept(nil, ir.Req, packOOB(oobRejected, 0), nil, 0)
			return
		}
		if kind == core.KindRequest && !tr.screen(es.myName, core.KindRequest, 0) {
			// Unwanted request: simply don't accept yet. No bounce
			// traffic; the sender's coroutine stays blocked, which is
			// exactly LYNX's stop-and-wait semantics.
			tr.c.savedRequests.Inc()
			tr.saved[es.myName] = append(tr.saved[es.myName], sr)
			return
		}
		tr.acceptData(nil, es, ir.Req)
	}
}

// acceptData accepts a data put, decodes the LYNX message, adopts any
// enclosed ends, and surfaces EvIncoming after the transfer time.
func (tr *Transport) acceptData(p *sim.Proc, es *endState, req soda.ReqID) {
	got, st := tr.kp.Accept(p, req, packOOB(oobOK, 0), nil, tr.cfg.BufCap)
	if st != soda.OK {
		return
	}
	tr.c.accepts.Inc()
	wire, nencl, err := core.DecodeWire(got[:len(got)-nenclTrailer(got)])
	if err != nil {
		// Re-derive split: payload is wire||enclRecords; decode needs
		// the exact boundary, recover via trailer helper below.
		return
	}
	recs, err := decodeEncl(got[len(got)-nencl*enclRecordLen:], nencl)
	if err != nil {
		return
	}
	if wire.Kind == core.KindReply {
		delete(es.outstanding, wire.Seq&0x7FFF_FFFF)
	}
	wire.Encl = make([]core.TransEnd, 0, len(recs))
	for _, r := range recs {
		tr.adoptEnd(p, r)
		wire.Encl = append(wire.Encl, r.name)
	}
	// The payload physically crosses the bus at accept time; surface the
	// message after its transfer time so latency accounting holds.
	delay := tr.kernel.DataDelay(len(got))
	endName := es.myName
	tr.env.After(delay, func() {
		tr.emit(core.Event{Kind: core.EvIncoming, End: endName, Msg: wire})
	})
}

// nenclTrailer computes the enclosure-block length at the payload tail.
func nenclTrailer(got []byte) int {
	if len(got) < 2 {
		return 0
	}
	// Byte 1 of the wire encoding is the enclosure count.
	return int(got[1]) * enclRecordLen
}

// adoptEnd takes ownership of a moved end.
func (tr *Transport) adoptEnd(p *sim.Proc, r enclRecord) {
	tr.c.linkMoves.Inc()
	if tr.rec.Active() { // gate here: Sprintf allocates even when obsEmit drops the event
		tr.obsEmit(obs.KindLinkMove, uint64(r.name), fmt.Sprintf("adopt name=%d from hint=%d", r.name, r.hint))
	}
	es := &endState{myName: r.name, farName: r.farName, hint: r.hint, outstanding: map[uint64]uint64{}}
	tr.ends[r.name] = es
	tr.kp.Advertise(p, r.name)
	delete(tr.moveCache, r.name) // it came back to us
}

// onCompletion handles an accept of one of our requests.
func (tr *Transport) onCompletion(ir soda.Interrupt) {
	ps, ok := tr.pending[ir.Req]
	if !ok {
		// A freeze-search answer, perhaps.
		tr.onSearchAnswer(ir)
		return
	}
	delete(tr.pending, ir.Req)
	verb, arg := unpackOOB(ir.OOB)
	es := ps.end
	if ps.isWatch {
		es.watch = 0
		switch verb {
		case oobMoved:
			es.hint = soda.ProcID(arg)
			tr.c.hintFixes.Inc()
			tr.postWatch(nil, es)
		case oobDestroyed:
			tr.linkDead(es)
		}
		return
	}
	ps.done = true
	switch verb {
	case oobOK:
		// The far run-time package took the message: true receipt. A put
		// accepted on its first post means the hint was right (E10's hit
		// rate); re-posts mean the hint machinery had to intervene.
		if ps.gen == 1 {
			tr.c.hintHits.Inc()
		} else {
			tr.c.hintMisses.Inc()
		}
		tr.completeMove(ps, ir.From)
		// Make sure we watch the (possibly newly-learned) owner: without
		// a watch its later destroy/death would be invisible while we
		// await the reply.
		if es.hint != ir.From && !es.dead {
			es.hint = ir.From
			tr.c.hintFixes.Inc()
		}
		tr.ensureWatch(nil, es)
		tr.emit(core.Event{Kind: core.EvDelivered, End: es.myName, Tag: ps.tag})
	case oobMoved:
		es.hint = soda.ProcID(arg)
		tr.c.hintFixes.Inc()
		tr.ensureWatch(nil, es)
		ps.done = false
		tr.post(nil, ps)
	case oobDestroyed:
		tr.releaseEnclosures(nil, ps)
		tr.emit(core.Event{Kind: core.EvSendFailed, End: es.myName, Tag: ps.tag, Err: core.ErrLinkDestroyed})
		tr.linkDead(es)
	case oobRejected:
		tr.releaseEnclosures(nil, ps)
		tr.emit(core.Event{Kind: core.EvSendFailed, End: es.myName, Tag: ps.tag, Err: core.ErrUnwantedReply})
	}
}

// releaseEnclosures undoes the moving mark after a failed or cancelled
// move and re-examines any traffic that was held while the ends were in
// motion (otherwise saved requests on them would be stranded forever).
func (tr *Transport) releaseEnclosures(p *sim.Proc, ps *pendingSend) {
	for _, e := range ps.encl {
		if e.dead {
			continue
		}
		e.moving = false
		e.movingTo = 0
		tr.drainSaved(p, e)
	}
}

// completeMove finalizes enclosure transfer after a successful put: the
// moved ends leave this process; held traffic on them is redirected to
// newOwner (the process that accepted the message).
func (tr *Transport) completeMove(ps *pendingSend, newOwner soda.ProcID) {
	if len(ps.encl) == 0 {
		return
	}
	for _, e := range ps.encl {
		if e.dead {
			continue
		}
		if cur, ok := tr.ends[e.myName]; ok && cur != e {
			// Self-move: the message travelled a loopback link and our
			// own accept already re-adopted the end (a fresh endState).
			// Nothing left to hand over or forward.
			continue
		}
		if newOwner == tr.kp.ID() {
			// Self-move whose adoption kept the same record: keep it.
			e.moving = false
			tr.drainSaved(nil, e)
			continue
		}
		if e.watch != 0 {
			// We no longer own the end; stop watching its far side.
			tr.kp.Withdraw(nil, e.watch)
			delete(tr.pending, e.watch)
			e.watch = 0
		}
		if e.peerWatch != 0 {
			tr.kp.Accept(nil, e.peerWatch, packOOB(oobMoved, uint64(newOwner)), nil, 0)
			e.peerWatch = 0
		}
		for _, sr := range tr.saved[e.myName] {
			tr.kp.Accept(nil, sr.req, packOOB(oobMoved, uint64(newOwner)), nil, 0)
		}
		delete(tr.saved, e.myName)
		tr.cacheMove(e.myName, newOwner)
		delete(tr.ends, e.myName)
		// NOTE: the name stays advertised so the cache can forward.
	}
}

// cacheMove records a forwarding address, evicting FIFO beyond capacity
// (evicted names are unadvertised and forgotten — the discover/freeze
// path must find them).
func (tr *Transport) cacheMove(name soda.Name, to soda.ProcID) {
	if tr.cfg.CacheSize <= 0 {
		tr.kp.Unadvertise(nil, name)
		return
	}
	tr.moveCache[name] = to
	tr.cacheFIFO = append(tr.cacheFIFO, name)
	for len(tr.moveCache) > tr.cfg.CacheSize && len(tr.cacheFIFO) > 0 {
		old := tr.cacheFIFO[0]
		tr.cacheFIFO = tr.cacheFIFO[0:copy(tr.cacheFIFO, tr.cacheFIFO[1:])]
		if _, ok := tr.moveCache[old]; ok {
			delete(tr.moveCache, old)
			tr.kp.Unadvertise(nil, old)
			tr.c.cacheEvictions.Inc()
		}
	}
}

// onCrash handles the kernel's crash notification for a pending request.
func (tr *Transport) onCrash(ir soda.Interrupt) {
	if tr.onUnfreezeAccepted(ir.Req) {
		return // the searcher crashed; we resume
	}
	ps, ok := tr.pending[ir.Req]
	if !ok {
		return
	}
	delete(tr.pending, ir.Req)
	if ps.isWatch {
		ps.end.watch = 0
	}
	// The hinted owner died. The end may have moved on before the
	// crash: try recovery before declaring the link dead.
	tr.scheduleRecovery(ps.end, psIfData(ps))
}

func psIfData(ps *pendingSend) *pendingSend {
	if ps.isWatch {
		return nil
	}
	return ps
}

// linkDead marks an end destroyed and tells the run-time package.
func (tr *Transport) linkDead(es *endState) {
	if es.dead {
		return
	}
	tr.killEnd(nil, es, false)
	tr.emit(core.Event{Kind: core.EvLinkDead, End: es.myName, Err: core.ErrLinkDestroyed})
}

// Shutdown implements core.Transport.
func (tr *Transport) Shutdown() {
	if tr.dead {
		return
	}
	tr.dead = true
	tr.kp.Terminate()
	if tr.janitor != nil {
		tr.janitor.Kill()
	}
}
