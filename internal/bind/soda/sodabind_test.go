package sodabind_test

import (
	"errors"
	"testing"

	sodabind "repro/internal/bind/soda"
	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/soda"
)

// rig assembles a SODA kernel plus LYNX processes.
type rig struct {
	env    *sim.Env
	kernel *soda.Kernel
	trs    []*sodabind.Transport
}

func newRig(nodes int) *rig {
	env := sim.NewEnv(1)
	bus := netsim.NewCSMABus(env.Rand().Fork())
	k := soda.NewKernel(env, bus, calib.DefaultSODA())
	r := &rig{env: env, kernel: k}
	for i := 0; i < nodes; i++ {
		kp := k.NewProcess(netsim.NodeID(i))
		r.trs = append(r.trs, sodabind.New(env, k, kp, sodabind.DefaultConfig()))
	}
	return r
}

func newPair(mainA, mainB func(*core.Thread, *core.End)) *rig {
	r := newRig(2)
	ea, eb := sodabind.BootLink(r.trs[0], r.trs[1])
	costs := calib.DefaultSODARuntime()
	core.NewProcess(r.env, "A", r.trs[0], costs, func(th *core.Thread) {
		mainA(th, th.AdoptBootEnd(ea))
	})
	core.NewProcess(r.env, "B", r.trs[1], costs, func(th *core.Thread) {
		mainB(th, th.AdoptBootEnd(eb))
	})
	return r
}

func TestSodaSimpleRPC(t *testing.T) {
	var rtt sim.Duration
	r := newPair(
		func(th *core.Thread, e *core.End) {
			start := th.Now()
			reply, err := th.Connect(e, "echo", core.Msg{Data: []byte("ping")})
			if err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			rtt = sim.Duration(th.Now() - start)
			if string(reply.Data) != "ping" {
				t.Errorf("reply %q", reply.Data)
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Reply(req, core.Msg{Data: req.Data()})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	ms := rtt.Milliseconds()
	// §4.3 prediction: ≈3× faster than Charlotte's 57 ms ⇒ ≈19-22 ms
	// (including the runtime package overhead the paper says would be
	// similar to Charlotte's).
	if ms < 14 || ms > 30 {
		t.Fatalf("LYNX/SODA RTT = %.2f ms, want ≈ 20 ms", ms)
	}
}

func TestSodaLargeMessageSlowerThanCharlotteWire(t *testing.T) {
	// 2000 bytes each way should show SODA's slow-bus penalty: per §4.3
	// the kernel figures break even with Charlotte between 1K and 2K.
	var rtt sim.Duration
	payload := make([]byte, 2000)
	r := newPair(
		func(th *core.Thread, e *core.End) {
			start := th.Now()
			if _, err := th.Connect(e, "blob", core.Msg{Data: payload}); err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			rtt = sim.Duration(th.Now() - start)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Reply(req, core.Msg{Data: req.Data()})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	// 4000 bytes total at ≈13 µs/B ≈ 52 ms on top of ≈20ms fixed.
	ms := rtt.Milliseconds()
	if ms < 60 || ms > 100 {
		t.Fatalf("LYNX/SODA 2KB RTT = %.2f ms, want ≈ 72 ms", ms)
	}
}

func TestSodaMultiEnclosureSingleMessage(t *testing.T) {
	// "More than one link can be enclosed in the same message with no
	// more difficulty than a single end" — no goahead/enc machinery.
	const nLinks = 4
	r := newPair(
		func(th *core.Thread, e *core.End) {
			var keep, give []*core.End
			for i := 0; i < nLinks; i++ {
				m, o, err := th.NewLink()
				if err != nil {
					t.Errorf("NewLink: %v", err)
					return
				}
				keep = append(keep, m)
				give = append(give, o)
			}
			if _, err := th.Connect(e, "takeN", core.Msg{Links: give}); err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			for i, m := range keep {
				reply, err := th.Connect(m, "ping", core.Msg{Data: []byte{byte(i)}})
				if err != nil {
					t.Errorf("moved link %d: %v", i, err)
					continue
				}
				if reply.Data[0] != byte(i)+10 {
					t.Errorf("link %d reply %v", i, reply.Data)
				}
			}
			for _, m := range keep {
				th.Destroy(m)
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			req, err := th.Receive(e)
			if err != nil {
				t.Errorf("Receive: %v", err)
				return
			}
			if len(req.Links()) != nLinks {
				t.Errorf("enclosures = %d, want %d", len(req.Links()), nLinks)
			}
			for _, l := range req.Links() {
				th.Serve(l, func(st *core.Thread, r2 *core.Request) {
					st.Reply(r2, core.Msg{Data: []byte{r2.Data()[0] + 10}})
				})
			}
			th.Reply(req, core.Msg{})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	// One put for the request carrying all four ends (plus the reply and
	// the pings): verify movement took exactly one data put by checking
	// the binding saw 4 moves with zero forwarding traffic.
	if r.trs[1].Stats().LinkMoves != nLinks {
		t.Errorf("moves = %d", r.trs[1].Stats().LinkMoves)
	}
}

func TestSodaUnwantedRequestSavedNotBounced(t *testing.T) {
	// A's request queue is closed while B requests in the reverse
	// direction: the request is simply held unaccepted. No retry/forbid
	// analogue exists, and A's runtime never sees the message.
	r := newPair(
		func(th *core.Thread, e *core.End) {
			if _, err := th.Connect(e, "svc", core.Msg{}); err != nil {
				t.Errorf("A connect: %v", err)
			}
			// Only now serve B's reverse request.
			req, err := th.Receive(e)
			if err != nil {
				t.Errorf("A receive: %v", err)
				return
			}
			th.Reply(req, core.Msg{Data: []byte("late-ok")})
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Sleep(200 * sim.Millisecond)
				st.Reply(req, core.Msg{})
			})
			rep, err := th.Connect(e, "reverse", core.Msg{})
			if err != nil {
				t.Errorf("B reverse: %v", err)
				return
			}
			if string(rep.Data) != "late-ok" {
				t.Errorf("reverse reply %q", rep.Data)
			}
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if r.trs[0].Stats().SavedRequests == 0 {
		t.Error("reverse request was never held")
	}
	if r.trs[0].Stats().RejectedReplies != 0 {
		t.Error("spurious reply rejections")
	}
}

func TestSodaUnwantedReplyRejectsServer(t *testing.T) {
	// The client coroutine aborts; the server's reply is NAKed and the
	// server feels ErrUnwantedReply — the exception Charlotte cannot
	// deliver (§6 advantage 4).
	var connErr, replyErr error
	r := newPair(
		func(th *core.Thread, e *core.End) {
			victim := th.Fork("victim", func(tv *core.Thread) {
				_, connErr = tv.Connect(e, "slow", core.Msg{})
			})
			th.Sleep(80 * sim.Millisecond)
			th.Abort(victim)
			th.Sleep(400 * sim.Millisecond)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Sleep(120 * sim.Millisecond)
				replyErr = st.Reply(req, core.Msg{})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(connErr, core.ErrAborted) {
		t.Fatalf("connect err = %v", connErr)
	}
	if !errors.Is(replyErr, core.ErrUnwantedReply) {
		t.Fatalf("reply err = %v, want ErrUnwantedReply", replyErr)
	}
	if r.trs[0].Stats().RejectedReplies != 1 {
		t.Fatalf("rejected replies = %d", r.trs[0].Stats().RejectedReplies)
	}
}

func TestSodaDestroyNotifiesPeer(t *testing.T) {
	var errB error
	r := newPair(
		func(th *core.Thread, e *core.End) {
			th.Sleep(20 * sim.Millisecond)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			_, errB = th.Connect(e, "op", core.Msg{})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(errB, core.ErrLinkDestroyed) {
		t.Fatalf("B err = %v", errB)
	}
}

func TestSodaCrashDetected(t *testing.T) {
	var errA error
	r := newPair(
		func(th *core.Thread, e *core.End) {
			_, errA = th.Connect(e, "op", core.Msg{})
		},
		func(th *core.Thread, e *core.End) {
			th.Sleep(10 * sim.Millisecond)
			th.Process().Crash()
			th.Sleep(sim.Millisecond)
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(errA, core.ErrLinkDestroyed) {
		t.Fatalf("A err = %v, want ErrLinkDestroyed", errA)
	}
}

func TestSodaMovedLinkForwardedByCache(t *testing.T) {
	// A talks to B on link L; B moves its end to C; A's next message
	// hits B's move cache and is redirected MOVED -> C.
	r := newRig(3)
	l1a, l1b := sodabind.BootLink(r.trs[0], r.trs[1])
	l2b, l2c := sodabind.BootLink(r.trs[1], r.trs[2])
	costs := calib.DefaultSODARuntime()

	core.NewProcess(r.env, "A", r.trs[0], costs, func(th *core.Thread) {
		e := th.AdoptBootEnd(l1a)
		// First op reaches B.
		if _, err := th.Connect(e, "one", core.Msg{}); err != nil {
			t.Errorf("op one: %v", err)
			return
		}
		th.Sleep(300 * sim.Millisecond) // B moves its end to C meanwhile
		reply, err := th.Connect(e, "two", core.Msg{})
		if err != nil {
			t.Errorf("op two: %v", err)
			return
		}
		if string(reply.Data) != "from-C" {
			t.Errorf("op two reply %q (wrong owner served it)", reply.Data)
		}
		th.Destroy(e)
	})
	core.NewProcess(r.env, "B", r.trs[1], costs, func(th *core.Thread) {
		e := th.AdoptBootEnd(l1b)
		toC := th.AdoptBootEnd(l2b)
		req, err := th.Receive(e)
		if err != nil {
			t.Errorf("B receive: %v", err)
			return
		}
		th.Reply(req, core.Msg{Data: []byte("from-B")})
		// Let A's watch retire (its interest drops once the reply is in)
		// so the link is dormant when we move it — the cache, not the
		// watch, must do the forwarding.
		th.Sleep(100 * sim.Millisecond)
		if _, err := th.Connect(toC, "take", core.Msg{Links: []*core.End{e}}); err != nil {
			t.Errorf("B move: %v", err)
		}
		// Stay alive so the move cache can forward A's next message.
		th.Sleep(time2s)
		th.Destroy(toC)
	})
	core.NewProcess(r.env, "C", r.trs[2], costs, func(th *core.Thread) {
		e2 := th.AdoptBootEnd(l2c)
		req, err := th.Receive(e2)
		if err != nil {
			t.Errorf("C receive: %v", err)
			return
		}
		moved := req.Links()[0]
		th.Reply(req, core.Msg{})
		// The moved link stays DORMANT at C too (no Serve yet, so no
		// watch heals A's hint); only later does C start serving.
		th.Sleep(500 * sim.Millisecond)
		th.Serve(moved, func(st *core.Thread, r2 *core.Request) {
			st.Reply(r2, core.Msg{Data: []byte("from-C")})
		})
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if r.trs[1].Stats().MovedForwards == 0 {
		t.Error("B's move cache never forwarded")
	}
	if r.trs[0].Stats().HintFixes == 0 {
		t.Error("A's hint was never fixed")
	}
}

const time2s = 2 * sim.Second

func TestSodaDiscoverFallbackAfterCacheEviction(t *testing.T) {
	// Same scenario but B's cache is disabled: A's put times out, then
	// discover finds C.
	r := newRig(3)
	cfgNoCache := sodabind.DefaultConfig()
	cfgNoCache.CacheSize = 0
	// Rebuild B's binding with no cache.
	r.trs[1] = sodabind.New(r.env, r.kernel, kpOf(r, 1), cfgNoCache)
	l1a, l1b := sodabind.BootLink(r.trs[0], r.trs[1])
	l2b, l2c := sodabind.BootLink(r.trs[1], r.trs[2])
	costs := calib.DefaultSODARuntime()

	core.NewProcess(r.env, "A", r.trs[0], costs, func(th *core.Thread) {
		e := th.AdoptBootEnd(l1a)
		th.Sleep(400 * sim.Millisecond) // let the move finish first
		reply, err := th.Connect(e, "two", core.Msg{})
		if err != nil {
			t.Errorf("op: %v", err)
			return
		}
		if string(reply.Data) != "from-C" {
			t.Errorf("reply %q", reply.Data)
		}
		th.Destroy(e)
	})
	core.NewProcess(r.env, "B", r.trs[1], costs, func(th *core.Thread) {
		e := th.AdoptBootEnd(l1b)
		toC := th.AdoptBootEnd(l2b)
		// A is dormant (no watch posted); move the end while nobody is
		// looking, with forwarding disabled.
		if _, err := th.Connect(toC, "take", core.Msg{Links: []*core.End{e}}); err != nil {
			t.Errorf("B move: %v", err)
		}
		th.Destroy(toC)
	})
	core.NewProcess(r.env, "C", r.trs[2], costs, func(th *core.Thread) {
		e2 := th.AdoptBootEnd(l2c)
		req, err := th.Receive(e2)
		if err != nil {
			t.Errorf("C receive: %v", err)
			return
		}
		moved := req.Links()[0]
		th.Reply(req, core.Msg{})
		// Dormant at C until well after A's put has timed out and the
		// discover has run.
		th.Sleep(900 * sim.Millisecond)
		th.Serve(moved, func(st *core.Thread, r2 *core.Request) {
			st.Reply(r2, core.Msg{Data: []byte("from-C")})
		})
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if r.trs[0].Stats().Discovers == 0 {
		t.Error("A never used discover")
	}
}

// kpOf digs the kernel process back out for rebuilding a binding.
func kpOf(r *rig, i int) *soda.Process {
	return r.trs[i].KernelProcess()
}

func TestSodaStatsZeroNAKTraffic(t *testing.T) {
	// The §6 point: on SODA all received messages are wanted; there is
	// no bounce traffic at all in a normal workload.
	r := newPair(
		func(th *core.Thread, e *core.End) {
			for i := 0; i < 5; i++ {
				if _, err := th.Connect(e, "op", core.Msg{Data: []byte{1}}); err != nil {
					t.Errorf("op %d: %v", i, err)
				}
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Reply(req, core.Msg{Data: req.Data()})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, tr := range r.trs {
		st := tr.Stats()
		if st.RejectedReplies != 0 || st.Freezes != 0 {
			t.Errorf("binding %d: unexpected recovery traffic %+v", i, st)
		}
	}
}
