package sodabind

import (
	"encoding/binary"
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/soda"
)

// This file implements §4.2's hint-failure machinery: lazy repair from
// move caches (handled inline in sodabind.go), the discover broadcast,
// and the freeze/unfreeze absolute search that "has the considerable
// disadvantage of bringing every LYNX process in existence to a
// temporary halt".

// freezeNameOf is the well-known freeze name every process advertises
// ("SODA makes it easy to guess their ids").
func freezeNameOf(pid soda.ProcID) soda.Name {
	return soda.Name(uint64(1)<<48 | uint64(pid))
}

// scheduleRecovery hands a stale-hint episode to the janitor, which may
// block on discover and freeze searches. ps, when non-nil, is the data
// put to re-post once the hint is fixed.
func (tr *Transport) scheduleRecovery(es *endState, ps *pendingSend) {
	if es.dead {
		if ps != nil {
			tr.releaseEnclosures(nil, ps)
			tr.emit(core.Event{Kind: core.EvSendFailed, End: es.myName, Tag: ps.tag, Err: core.ErrLinkDestroyed})
		}
		return
	}
	tr.janitorWork.Put(func(p *sim.Proc) { tr.recoverHint(p, es, ps) })
}

// recoverHint runs in janitor context: discover first, then the freeze
// search, and if everything fails the link "must be assumed destroyed".
func (tr *Transport) recoverHint(p *sim.Proc, es *endState, ps *pendingSend) {
	if es.dead || tr.dead {
		return
	}
	for i := 0; i < tr.cfg.DiscoverRetries; i++ {
		tr.c.discovers.Inc()
		id, st := tr.kp.Discover(p, es.farName)
		if st == soda.OK {
			tr.hintFixed(p, es, ps, id)
			return
		}
	}
	if tr.cfg.EnableFreeze {
		if id, ok := tr.freezeSearch(p, es.farName); ok {
			tr.hintFixed(p, es, ps, id)
			return
		}
	}
	// "A process that is unable to find the far end of a link must
	// assume it has been destroyed."
	if ps != nil {
		tr.releaseEnclosures(p, ps)
	}
	tr.linkDead(es)
}

// hintFixed applies a repaired hint and resumes stalled traffic.
func (tr *Transport) hintFixed(p *sim.Proc, es *endState, ps *pendingSend, id soda.ProcID) {
	if es.dead {
		return
	}
	es.hint = id
	tr.c.hintFixes.Inc()
	if ps != nil && !ps.cancel && !ps.done {
		tr.post(p, ps)
	}
	if es.watch == 0 && (es.wantReq || es.wantRep) {
		tr.postWatch(p, es)
	}
}

// freezeSearch runs §4.2's absolute algorithm from janitor context:
// freeze every live process, collect hints from their unfreeze
// requests' out-of-band data, then accept the unfreeze requests so
// everyone resumes.
func (tr *Transport) freezeSearch(p *sim.Proc, target soda.Name) (soda.ProcID, bool) {
	tr.c.freezes.Inc()
	tr.obsEmit(obs.KindFreeze, uint64(target), "absolute search")
	if tr.searchWait == nil {
		tr.searchWait = sim.NewWaitQueue(tr.env, "sodabind.search")
	}
	tr.searchActive = true
	tr.searchHint = 0
	tr.searchLeft = 0
	payload := binary.LittleEndian.AppendUint64(nil, uint64(target))
	for _, id := range tr.kp.LiveIDs() {
		if id == tr.kp.ID() {
			continue
		}
		if _, st := tr.kp.Request(p, id, freezeNameOf(id), packOOB(oobFreeze, 0), payload, 0); st == soda.OK {
			tr.searchLeft++
		}
	}
	// Wait for answers (with a straggler deadline: frozen processes that
	// die never answer).
	deadline := false
	tr.env.After(2*sim.Second, func() {
		deadline = true
		tr.searchWait.WakeAll()
	})
	for tr.searchLeft > 0 && tr.searchHint == 0 && !deadline {
		tr.searchWait.Wait(p)
	}
	tr.searchActive = false
	tr.thawOthers()
	return tr.searchHint, tr.searchHint != 0
}

// onFreeze is the frozen side: accept the freeze immediately (reading
// the sought name from the payload), halt, and post an unfreeze request
// whose out-of-band data carries our hint (or zero).
func (tr *Transport) onFreeze(ir soda.Interrupt) {
	got, st := tr.kp.Accept(nil, ir.Req, packOOB(oobFreeze, 0), nil, 16)
	if st != soda.OK {
		return
	}
	var name soda.Name
	if len(got) >= 8 {
		name = soda.Name(binary.LittleEndian.Uint64(got))
	}
	var hint soda.ProcID
	if _, ok := tr.ends[name]; ok {
		hint = tr.kp.ID() // it is ours
	} else if to, ok := tr.moveCache[name]; ok {
		hint = to
	}
	tr.freezeSelf()
	id, st := tr.kp.Request(nil, ir.From, freezeNameOf(ir.From), packOOB(oobUnfreeze, uint64(hint)), nil, 0)
	if st != soda.OK {
		tr.thawSelf() // searcher vanished; resume
		return
	}
	tr.unfreezePending[id] = true
}

// freezeSelf halts language-level progress: events are held, the
// counter permits multiple concurrent searches.
func (tr *Transport) freezeSelf() {
	tr.c.freezeHalts.Inc()
	if tr.frozen == 0 {
		tr.frozeAt = tr.env.Now()
	}
	tr.frozen++
}

// thawSelf decrements the freeze counter and, at zero, releases held
// events.
func (tr *Transport) thawSelf() {
	if tr.frozen == 0 {
		return
	}
	tr.frozen--
	if tr.frozen == 0 {
		tr.c.frozenNs.Add(int64(tr.env.Now() - tr.frozeAt))
		tr.obsEmit(obs.KindUnfreeze, 0, "thawed")
		held := tr.heldEvents
		tr.heldEvents = nil
		for _, ev := range held {
			tr.sink(ev)
		}
	}
}

// onUnfreezeArrived records a frozen process's answer during our search.
// Called from the interrupt handler; the request itself is accepted only
// when the search finishes (thawOthers), keeping the sender frozen.
func (tr *Transport) onUnfreezeArrived(ir soda.Interrupt) {
	_, arg := unpackOOB(ir.OOB)
	tr.unfreezeReq[ir.Req] = true
	if tr.searchActive {
		tr.searchLeft--
		if arg != 0 && tr.searchHint == 0 {
			tr.searchHint = soda.ProcID(arg)
		}
		tr.searchWait.WakeAll()
		return
	}
	tr.thawOthers()
}

// thawOthers accepts all held unfreeze requests, releasing their
// senders.
func (tr *Transport) thawOthers() {
	if tr.searchActive {
		return
	}
	// Accept in request-id order: map iteration order is randomized,
	// and the kernel calls below advance virtual time, so a raw range
	// would make same-seed runs diverge.
	reqs := make([]soda.ReqID, 0, len(tr.unfreezeReq))
	for req := range tr.unfreezeReq {
		reqs = append(reqs, req)
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i] < reqs[j] })
	for _, req := range reqs {
		delete(tr.unfreezeReq, req)
		tr.kp.Accept(nil, req, packOOB(oobOK, 0), nil, 0)
	}
}

// onUnfreezeAccepted is the frozen side's resume path: our unfreeze
// request was accepted (or the searcher crashed).
func (tr *Transport) onUnfreezeAccepted(req soda.ReqID) bool {
	if !tr.unfreezePending[req] {
		return false
	}
	delete(tr.unfreezePending, req)
	tr.thawSelf()
	return true
}

// onSearchAnswer absorbs completions that are not tracked sends: freeze
// request completions (the target accepted our freeze — no action; the
// hint arrives via its unfreeze request).
func (tr *Transport) onSearchAnswer(ir soda.Interrupt) {
	if tr.onUnfreezeAccepted(ir.Req) {
		return
	}
	// Freeze-accept completions and other stragglers need no action.
}
