package sodabind_test

import (
	"errors"
	"testing"

	sodabind "repro/internal/bind/soda"
	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/sim"
)

// newRigCfg is newRig with per-binding configs.
func newRigCfg(nodes int, cfg sodabind.Config) *rig {
	r := newRig(0)
	for i := 0; i < nodes; i++ {
		kp := r.kernel.NewProcess(0)
		r.trs = append(r.trs, sodabind.New(r.env, r.kernel, kp, cfg))
	}
	return r
}

// TestSodaFreezeSearchFindsOwner drives the §4.2 absolute algorithm
// directly: caches and discover are disabled, so the only way to find
// the moved end is to freeze the world and ask.
func TestSodaFreezeSearchFindsOwner(t *testing.T) {
	cfg := sodabind.DefaultConfig()
	cfg.CacheSize = 0
	cfg.DiscoverRetries = 0
	cfg.EnableFreeze = true
	cfg.HintTimeout = 100 * sim.Millisecond
	r := newRigCfg(4, cfg)
	l1a, l1b := sodabind.BootLink(r.trs[0], r.trs[1])
	l2b, l2c := sodabind.BootLink(r.trs[1], r.trs[2])
	costs := calib.DefaultSODARuntime()
	var opOK bool

	core.NewProcess(r.env, "A", r.trs[0], costs, func(th *core.Thread) {
		e := th.AdoptBootEnd(l1a)
		if _, err := th.Connect(e, "one", core.Msg{}); err != nil {
			t.Errorf("one: %v", err)
			return
		}
		th.Sleep(400 * sim.Millisecond)
		if _, err := th.Connect(e, "two", core.Msg{}); err != nil {
			t.Errorf("two: %v", err)
			return
		}
		opOK = true
		th.Destroy(e)
	})
	core.NewProcess(r.env, "B", r.trs[1], costs, func(th *core.Thread) {
		e := th.AdoptBootEnd(l1b)
		toC := th.AdoptBootEnd(l2b)
		req, err := th.Receive(e)
		if err != nil {
			return
		}
		th.Reply(req, core.Msg{})
		th.Sleep(100 * sim.Millisecond)
		th.Connect(toC, "take", core.Msg{Links: []*core.End{e}})
		th.Sleep(2500 * sim.Millisecond)
		th.Destroy(toC)
	})
	core.NewProcess(r.env, "C", r.trs[2], costs, func(th *core.Thread) {
		req, err := th.Receive(th.AdoptBootEnd(l2c))
		if err != nil {
			return
		}
		moved := req.Links()[0]
		th.Reply(req, core.Msg{})
		// Dormant long enough for A's timeout + freeze search to run.
		th.Sleep(1500 * sim.Millisecond)
		th.Serve(moved, func(st *core.Thread, r2 *core.Request) {
			st.Reply(r2, core.Msg{})
		})
	})
	// A fourth, uninvolved process: it must be frozen and thawed too.
	core.NewProcess(r.env, "D", r.trs[3], costs, func(th *core.Thread) {
		th.Sleep(3 * sim.Second)
	})

	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !opOK {
		t.Fatal("operation never completed")
	}
	if r.trs[0].Stats().Freezes != 1 {
		t.Fatalf("freezes = %d, want 1", r.trs[0].Stats().Freezes)
	}
	// The frozen bystanders recorded their halt.
	halts := r.trs[1].Stats().FreezeHalts + r.trs[2].Stats().FreezeHalts + r.trs[3].Stats().FreezeHalts
	if halts < 2 {
		t.Fatalf("freeze halts = %d, want >= 2", halts)
	}
	frozen := r.trs[1].Stats().FrozenTime + r.trs[2].Stats().FrozenTime + r.trs[3].Stats().FrozenTime
	if frozen <= 0 {
		t.Fatal("no frozen time recorded")
	}
}

// TestSodaFreezeSearchFailureDeclaresDestroyed: when nobody knows the
// link (true destruction), the searcher must conclude ErrLinkDestroyed.
func TestSodaFreezeFailureMeansDestroyed(t *testing.T) {
	cfg := sodabind.DefaultConfig()
	cfg.CacheSize = 0
	cfg.DiscoverRetries = 0
	cfg.EnableFreeze = true
	cfg.HintTimeout = 80 * sim.Millisecond
	r := newRigCfg(3, cfg)
	l1a, l1b := sodabind.BootLink(r.trs[0], r.trs[1])
	costs := calib.DefaultSODARuntime()
	var errTwo error

	core.NewProcess(r.env, "A", r.trs[0], costs, func(th *core.Thread) {
		e := th.AdoptBootEnd(l1a)
		if _, err := th.Connect(e, "one", core.Msg{}); err != nil {
			return
		}
		th.Sleep(300 * sim.Millisecond)
		_, errTwo = th.Connect(e, "two", core.Msg{})
	})
	core.NewProcess(r.env, "B", r.trs[1], costs, func(th *core.Thread) {
		e := th.AdoptBootEnd(l1b)
		req, err := th.Receive(e)
		if err != nil {
			return
		}
		th.Reply(req, core.Msg{})
		// B dies without announcing; with its cache disabled, no trace
		// of the link remains anywhere.
		th.Sleep(100 * sim.Millisecond)
		th.Process().Crash()
		th.Sleep(sim.Millisecond)
	})
	core.NewProcess(r.env, "C", r.trs[2], costs, func(th *core.Thread) {
		th.Sleep(4 * sim.Second) // a bystander to freeze
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(errTwo, core.ErrLinkDestroyed) {
		t.Fatalf("errTwo = %v, want ErrLinkDestroyed", errTwo)
	}
	if r.trs[0].Stats().Freezes == 0 {
		t.Fatal("freeze search never ran")
	}
}

// TestSodaCancelSendWithdraws: aborting a coroutine whose put is still
// unaccepted withdraws it; the request never reaches the peer.
func TestSodaCancelSendWithdraws(t *testing.T) {
	r := newPair(
		func(th *core.Thread, e *core.End) {
			victim := th.Fork("victim", func(tv *core.Thread) {
				tv.Connect(e, "never-served", core.Msg{})
			})
			th.Sleep(60 * sim.Millisecond)
			th.Abort(victim)
			th.Sleep(60 * sim.Millisecond)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			// Never opens its request queue; the put stays unaccepted
			// until withdrawn.
			th.Sleep(200 * sim.Millisecond)
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if r.trs[1].Stats().Accepts != 0 {
		t.Fatalf("peer accepted %d messages, want 0", r.trs[1].Stats().Accepts)
	}
}

// TestSodaCacheEviction: a tiny cache evicts (and unadvertises) old
// forwarding entries.
func TestSodaCacheEviction(t *testing.T) {
	cfg := sodabind.DefaultConfig()
	cfg.CacheSize = 1
	r := newRigCfg(3, cfg)
	l1a, l1b := sodabind.BootLink(r.trs[0], r.trs[1])
	l2a, l2b := sodabind.BootLink(r.trs[0], r.trs[1])
	l3b, l3c := sodabind.BootLink(r.trs[1], r.trs[2])
	costs := calib.DefaultSODARuntime()

	core.NewProcess(r.env, "A", r.trs[0], costs, func(th *core.Thread) {
		e1 := th.AdoptBootEnd(l1a)
		e2 := th.AdoptBootEnd(l2a)
		th.Sleep(sim.Second)
		th.Destroy(e1)
		th.Destroy(e2)
	})
	core.NewProcess(r.env, "B", r.trs[1], costs, func(th *core.Thread) {
		e1 := th.AdoptBootEnd(l1b)
		e2 := th.AdoptBootEnd(l2b)
		toC := th.AdoptBootEnd(l3b)
		// Move both of our ends to C: with CacheSize=1 the first entry
		// is evicted when the second lands.
		if _, err := th.Connect(toC, "take", core.Msg{Links: []*core.End{e1, e2}}); err != nil {
			t.Errorf("move: %v", err)
		}
		th.Sleep(500 * sim.Millisecond)
		th.Destroy(toC)
	})
	core.NewProcess(r.env, "C", r.trs[2], costs, func(th *core.Thread) {
		req, err := th.Receive(th.AdoptBootEnd(l3c))
		if err != nil {
			return
		}
		for _, l := range req.Links() {
			th.Serve(l, func(st *core.Thread, r2 *core.Request) {
				st.Reply(r2, core.Msg{})
			})
		}
		th.Reply(req, core.Msg{})
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if r.trs[1].Stats().CacheEvictions == 0 {
		t.Fatal("no cache evictions with CacheSize=1 and 2 moves")
	}
}
