package chrbind_test

import (
	"errors"
	"testing"

	chrbind "repro/internal/bind/chrysalis"
	"repro/internal/calib"
	"repro/internal/chrysalis"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Additional Chrysalis binding tests: stale notices, cancel racing the
// consumer, self-loop links, notice/flag bookkeeping.

func TestChrysalisCancelBeforeConsumeWins(t *testing.T) {
	// The canceller clears the full flag before the (slow) receiver looks:
	// the message is recalled and the receiver sees nothing.
	r := newPair(
		func(th *core.Thread, e *core.End) {
			victim := th.Fork("victim", func(tv *core.Thread) {
				tv.Connect(e, "op", core.Msg{})
			})
			th.Yield() // victim's flag gets set
			th.Abort(victim)
			th.Sleep(20 * sim.Millisecond)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			// No interest for a while: the flag sits unconsumed, so the
			// abort's CancelSend wins the atomic race.
			th.Sleep(10 * sim.Millisecond)
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				t.Error("recalled message was served")
				st.Reply(req, core.Msg{})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChrysalisSelfLoopRPC(t *testing.T) {
	env := sim.NewEnv(1)
	k := newRigKernel(env)
	kp := k.NewProcess(0)
	tr := chrbind.New(env, k, kp, 1024)
	core.NewProcess(env, "solo", tr, calib.DefaultChrysalisRuntime(), func(th *core.Thread) {
		a, b, err := th.NewLink()
		if err != nil {
			t.Errorf("NewLink: %v", err)
			return
		}
		th.Serve(b, func(st *core.Thread, req *core.Request) {
			st.Reply(req, core.Msg{Data: append(req.Data(), '!')})
		})
		reply, err := th.Connect(a, "self", core.Msg{Data: []byte("hi")})
		if err != nil || string(reply.Data) != "hi!" {
			t.Errorf("self RPC: %v %q", err, reply)
		}
		th.Destroy(a)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChrysalisStaleNoticeCounted(t *testing.T) {
	// Destroying a link while a notice for it is queued produces a
	// validated-and-discarded notice at the peer.
	r := newPair(
		func(th *core.Thread, e *core.End) {
			// Two rapid ops then destroy; the final ack notice may chase a
			// dead end.
			th.Connect(e, "a", core.Msg{})
			th.Connect(e, "b", core.Msg{})
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Reply(req, core.Msg{})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	// Not asserting a count (timing-dependent); the suite passing with
	// destroys mid-traffic is the point. Stats should be readable.
	_ = r.trs[0].Stats().StaleNotices
}

func TestChrysalisOversizeMessageRejected(t *testing.T) {
	var sendErr error
	r := newPair(
		func(th *core.Thread, e *core.End) {
			_, sendErr = th.Connect(e, "big", core.Msg{Data: make([]byte, 8192)})
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Reply(req, core.Msg{})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if sendErr == nil {
		t.Fatal("oversize send succeeded")
	}
	if errors.Is(sendErr, core.ErrLinkDestroyed) {
		t.Fatalf("wrong error class: %v", sendErr)
	}
}

// newRigKernel builds a bare kernel for single-process tests.
func newRigKernel(env *sim.Env) *chrysalis.Kernel {
	return chrysalis.NewKernel(env, netsim.NewBackplane(), calib.DefaultChrysalis())
}
