// Package chrbind implements the LYNX run-time package's kernel-specific
// half for the Chrysalis (BBN Butterfly) kernel — the implementation
// §5.2 of the paper describes:
//
//   - every process allocates a single dual queue and event block through
//     which it learns of messages sent and received;
//   - a link is a MEMORY OBJECT mapped into both connected processes,
//     holding buffer space for one request and one reply in each
//     direction, a set of 16-bit atomic flag bits, and the (non-atomically
//     written) dual-queue names of the two owners;
//   - a sender gathers its message into the link buffer, atomically sets
//     a flag, and enqueues a notice on the far owner's dual queue; the
//     receiver consumes the buffer, clears the flag, sets the matching
//     ACK flag and notices back;
//   - notices are HINTS: on dequeue the owner validates that it still
//     owns the mentioned end and that the flag is really set, discarding
//     stale notices. "Every change to a flag is eventually reflected by a
//     notice on the appropriate dual queue, but not every dual queue
//     notice reflects a change to a flag";
//   - a link moves by passing its object name in a message: the receiver
//     maps the object, (non-atomically) writes its own dual-queue name,
//     then inspects the flags and self-notices any that are set — so
//     changes are never overlooked even if the far end read a torn name
//     and its notice went astray;
//   - destruction sets a flag bit, notices the peer, and unmaps; kernel
//     reference counting reclaims the object when both sides let go.
//
// Because the flags are ground truth and the run-time package checks them
// itself, screening is free: every message surfaced to the core is
// wanted, unwanted replies can be REJECTED so the server feels the
// exception, and multi-end moves cost one object name each.
package chrbind

import (
	"encoding/binary"
	"fmt"

	"repro/internal/chrysalis"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Link object layout.
const (
	offFlags  = 0  // 16-bit atomic flag word
	offQName0 = 4  // side 0 owner's dual queue name (non-atomic 32-bit)
	offQName1 = 8  // side 1 owner's dual queue name
	offBufs   = 12 // four buffer regions follow, each 4-byte length + cap
)

// Flag bits. "Full" means a message waits in the buffer; "ack" means the
// receiver consumed it; "rej" NAKs an unwanted reply.
const (
	fullReq0to1 uint16 = 1 << iota
	fullRep0to1
	fullReq1to0
	fullRep1to0
	ackReq0to1
	ackRep0to1
	ackReq1to0
	ackRep1to0
	rejRep0to1
	rejRep1to0
	flagDestroyed
)

// bufIndex returns the region index for messages of kind k sent by side.
func bufIndex(side int, k core.MsgKind) int {
	i := 0
	if k == core.KindReply {
		i = 1
	}
	return side*2 + i
}

// fullBit returns the "message waiting" bit for kind k sent by side.
func fullBit(side int, k core.MsgKind) uint16 {
	switch {
	case side == 0 && k == core.KindRequest:
		return fullReq0to1
	case side == 0:
		return fullRep0to1
	case k == core.KindRequest:
		return fullReq1to0
	default:
		return fullRep1to0
	}
}

// ackBit returns the consumption bit for kind k sent by side.
func ackBit(side int, k core.MsgKind) uint16 {
	return fullBit(side, k) << 4
}

// rejBit returns the rejection bit for replies sent by side.
func rejBit(side int) uint16 {
	if side == 0 {
		return rejRep0to1
	}
	return rejRep1to0
}

// EndID is the transport handle: object name + side.
type EndID struct {
	Obj  chrysalis.ObjName
	Side int
}

func (e EndID) String() string { return fmt.Sprintf("chr<%d.%d>", e.Obj, e.Side) }

// peerSide returns the other side.
func (e EndID) peerSide() int { return 1 - e.Side }

// Stats counts binding activity (E4/E5/E9 read these). It is a
// point-in-time snapshot of the binding's obs counters.
type Stats struct {
	Notices       int64 // notices enqueued
	StaleNotices  int64 // dequeued notices that failed validation
	FlagRescans   int64 // full-flag scans after moves/interest changes
	Moves         int64 // link ends adopted
	Rejections    int64 // unwanted replies NAKed
	LostNotices   int64 // enqueues that failed (torn queue name, dead queue)
	TornNameReads int64 // far queue name read while mid-write
}

// counters holds the binding's per-process obs counter handles.
type counters struct {
	notices       *obs.Counter
	staleNotices  *obs.Counter
	flagRescans   *obs.Counter
	moves         *obs.Counter
	rejections    *obs.Counter
	lostNotices   *obs.Counter
	tornNameReads *obs.Counter
}

// Transport is one LYNX process's Chrysalis binding.
type Transport struct {
	env  *sim.Env
	k    *chrysalis.Kernel
	kp   *chrysalis.Process
	sink func(core.Event)
	proc *sim.Proc
	pump *sim.Proc
	rec  *obs.Recorder
	c    counters

	queue chrysalis.QueueName
	event chrysalis.EventName

	bufCap int
	ends   map[EndID]*endState
	dead   bool
}

var _ core.Transport = (*Transport)(nil)
var _ core.Capable = (*Transport)(nil)

// endState is the binding's view of one owned link end.
type endState struct {
	id      EndID
	dead    bool
	wantReq bool
	wantRep bool
	// out tracks sends awaiting their ACK flag, by kind.
	out map[core.MsgKind]*outRec
}

type outRec struct {
	tag uint64
	// encl holds the endState records captured at send time; if a
	// loopback self-move re-adopted an end meanwhile, the live map entry
	// differs and the cleanup must not touch it.
	encl []*endState
}

// New creates the binding for one LYNX process. The process's dual queue
// and event block are allocated immediately (boot-time, uncharged).
func New(env *sim.Env, k *chrysalis.Kernel, kp *chrysalis.Process, bufCap int) *Transport {
	rec := k.Obs()
	id := kp.ID()
	tr := &Transport{
		env: env,
		k:   k,
		kp:  kp,
		rec: rec,
		c: counters{
			notices:       rec.ProcCounter(obs.MNotices, id),
			staleNotices:  rec.ProcCounter(obs.MStaleNotices, id),
			flagRescans:   rec.ProcCounter(obs.MFlagRescans, id),
			moves:         rec.ProcCounter(obs.MLinkMoves, id),
			rejections:    rec.ProcCounter(obs.MRejections, id),
			lostNotices:   rec.ProcCounter(obs.MLostNotices, id),
			tornNameReads: rec.ProcCounter(obs.MTornNameReads, id),
		},
		bufCap: bufCap,
		ends:   make(map[EndID]*endState),
	}
	tr.queue = kp.NewDualQueue(nil, 1024)
	tr.event = kp.NewEvent(nil)
	return tr
}

// Obs returns the recorder this binding reports into (the kernel's).
func (tr *Transport) Obs() *obs.Recorder { return tr.rec }

// SetEnv rebinds the transport's scheduling env. A partitioned run
// calls this (before SetSink spawns the binding's simprocs) so its
// timers, mailboxes, and pumps live on its process's home shard env.
func (tr *Transport) SetEnv(env *sim.Env) { tr.env = env }

// obsEmit records a binding-protocol event when a trace sink is
// attached; counters are maintained unconditionally.
func (tr *Transport) obsEmit(kind obs.Kind, link int, detail string) {
	if tr.rec.Active() {
		tr.rec.EmitEnv(tr.env, obs.Event{Kind: kind, Proc: tr.kp.ID(), Link: link, Detail: detail})
	}
}

// Stats returns a snapshot of the binding's counters.
func (tr *Transport) Stats() *Stats {
	return &Stats{
		Notices:       tr.c.notices.Value(),
		StaleNotices:  tr.c.staleNotices.Value(),
		FlagRescans:   tr.c.flagRescans.Value(),
		Moves:         tr.c.moves.Value(),
		Rejections:    tr.c.rejections.Value(),
		LostNotices:   tr.c.lostNotices.Value(),
		TornNameReads: tr.c.tornNameReads.Value(),
	}
}

// KernelProcess returns the underlying Chrysalis process (harness use).
func (tr *Transport) KernelProcess() *chrysalis.Process { return tr.kp }

// Capabilities implements core.Capable: the shared-memory protocol
// detects every exceptional condition without extra acknowledgments.
func (tr *Transport) Capabilities() core.Capabilities {
	return core.Capabilities{
		RejectsUnwantedReplies:    true,
		RecoversAbortedEnclosures: true,
	}
}

// objSize is the link object's total size for a given buffer capacity.
func objSize(bufCap int) int { return offBufs + 4*(4+bufCap) }

// bufOffset returns the byte offset of buffer region i.
func (tr *Transport) bufOffset(i int) int { return offBufs + i*(4+tr.bufCap) }

// SetSink implements core.Transport and starts the notice pump.
func (tr *Transport) SetSink(sink func(core.Event), sp *sim.Proc) {
	tr.sink = sink
	tr.proc = sp
	tr.pump = tr.env.Spawn(fmt.Sprintf("chrbind.pump.p%d", tr.kp.ID()), func(p *sim.Proc) {
		for {
			v, ok, st := tr.kp.Dequeue(p, tr.queue, tr.event)
			if st != chrysalis.OK {
				return
			}
			if !ok {
				d, st := tr.kp.EventWait(p, tr.event)
				if st != chrysalis.OK {
					return
				}
				v = d
			}
			tr.handleNotice(p, chrysalis.ObjName(v))
		}
	})
}

// BootLink creates a link between two bindings before their processes
// start (loader wiring).
func BootLink(a, b *Transport) (core.TransEnd, core.TransEnd) {
	obj := a.kp.AllocObject(nil, objSize(a.bufCap))
	b.kp.Map(nil, obj)
	a.kp.Write32(nil, obj, offQName0, uint32(a.queue))
	b.kp.Write32(nil, obj, offQName1, uint32(b.queue))
	ea := EndID{Obj: obj, Side: 0}
	eb := EndID{Obj: obj, Side: 1}
	a.ends[ea] = &endState{id: ea, out: map[core.MsgKind]*outRec{}}
	b.ends[eb] = &endState{id: eb, out: map[core.MsgKind]*outRec{}}
	return ea, eb
}

// MakeLink implements core.Transport: both sides owned locally until one
// end moves.
func (tr *Transport) MakeLink() (core.TransEnd, core.TransEnd, error) {
	obj := tr.kp.AllocObject(tr.proc, objSize(tr.bufCap))
	tr.kp.Write32(tr.proc, obj, offQName0, uint32(tr.queue))
	tr.kp.Write32(tr.proc, obj, offQName1, uint32(tr.queue))
	ea := EndID{Obj: obj, Side: 0}
	eb := EndID{Obj: obj, Side: 1}
	tr.ends[ea] = &endState{id: ea, out: map[core.MsgKind]*outRec{}}
	tr.ends[eb] = &endState{id: eb, out: map[core.MsgKind]*outRec{}}
	return ea, eb, nil
}

// notify enqueues a notice for the owner of the given side of obj,
// reading that side's (possibly torn) dual-queue name.
func (tr *Transport) notify(p *sim.Proc, obj chrysalis.ObjName, side int) {
	off := offQName0
	if side == 1 {
		off = offQName1
	}
	qn, st := tr.kp.Read32(p, obj, off)
	if st != chrysalis.OK {
		return
	}
	tr.c.notices.Inc()
	tr.obsEmit(obs.KindNotice, int(obj), "notify")
	if est := tr.kp.Enqueue(p, chrysalis.QueueName(qn), uint32(obj)); est != chrysalis.OK {
		// Torn or stale queue name: the notice is lost, but the flag is
		// already set and the mover's rescan will find it.
		tr.c.lostNotices.Inc()
	}
}

// Destroy implements core.Transport.
func (tr *Transport) Destroy(te core.TransEnd) error {
	id := te.(EndID)
	es, ok := tr.ends[id]
	if !ok || es.dead {
		return core.ErrLinkDestroyed
	}
	es.dead = true
	tr.kp.OrFlag16(tr.proc, id.Obj, offFlags, flagDestroyed)
	tr.notify(tr.proc, id.Obj, id.peerSide())
	delete(tr.ends, id)
	tr.kp.FreeWhenUnreferenced(tr.proc, id.Obj)
	// If we own both sides (never moved), drop the other too.
	if other, ok := tr.ends[EndID{Obj: id.Obj, Side: id.peerSide()}]; ok {
		other.dead = true
		delete(tr.ends, other.id)
		tr.sink(core.Event{Kind: core.EvLinkDead, End: other.id, Err: core.ErrLinkDestroyed})
	}
	tr.kp.Unmap(tr.proc, id.Obj)
	return nil
}

// SetInterest implements core.Transport: newly-opened interest rescans
// the flags for messages that were left waiting (screening is just "don't
// look yet" on this substrate).
func (tr *Transport) SetInterest(te core.TransEnd, wantRequests, wantReplies bool) {
	id := te.(EndID)
	es, ok := tr.ends[id]
	if !ok || es.dead {
		return
	}
	gotReq := !es.wantReq && wantRequests
	gotRep := !es.wantRep && wantReplies
	es.wantReq, es.wantRep = wantRequests, wantReplies
	if gotReq || gotRep {
		tr.scanEnd(tr.proc, es)
	}
}

// StartSend implements core.Transport: gather into the link buffer, set
// the full flag, notice the far owner.
func (tr *Transport) StartSend(te core.TransEnd, m *core.WireMsg, tag uint64) error {
	id := te.(EndID)
	es, ok := tr.ends[id]
	if !ok || es.dead {
		return core.ErrLinkDestroyed
	}
	payload, err := m.Encode()
	if err != nil {
		return err
	}
	var encl []*endState
	for _, e := range m.Encl {
		eid := e.(EndID)
		ees, ok := tr.ends[eid]
		if !ok {
			return core.ErrNotOwner
		}
		encl = append(encl, ees)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(eid.Obj))
		payload = append(payload, byte(eid.Side))
	}
	if len(payload)+4 > tr.bufCap+4 {
		return fmt.Errorf("chrbind: message %dB exceeds buffer %dB", len(payload), tr.bufCap)
	}
	base := tr.bufOffset(bufIndex(id.Side, m.Kind))
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(payload)))
	if st := tr.kp.WriteBytes(tr.proc, id.Obj, base, lenb[:]); st != chrysalis.OK {
		return tr.objGone(es, st)
	}
	if st := tr.kp.WriteBytes(tr.proc, id.Obj, base+4, payload); st != chrysalis.OK {
		return tr.objGone(es, st)
	}
	es.out[m.Kind] = &outRec{tag: tag, encl: encl}
	old, st := tr.kp.OrFlag16(tr.proc, id.Obj, offFlags, fullBit(id.Side, m.Kind))
	if st != chrysalis.OK {
		return tr.objGone(es, st)
	}
	if old&flagDestroyed != 0 {
		return core.ErrLinkDestroyed
	}
	tr.notify(tr.proc, id.Obj, id.peerSide())
	return nil
}

// objGone translates an object access failure (reclaimed link) into
// link death.
func (tr *Transport) objGone(es *endState, st chrysalis.Status) error {
	if st == chrysalis.NoSuchObject || st == chrysalis.NotMapped {
		tr.endDead(es)
		return core.ErrLinkDestroyed
	}
	return fmt.Errorf("chrbind: %v", st)
}

// CancelSend implements core.Transport: atomically clear the full flag;
// whoever clears it first (canceller or consumer) wins.
func (tr *Transport) CancelSend(te core.TransEnd, tag uint64) bool {
	id := te.(EndID)
	es, ok := tr.ends[id]
	if !ok {
		return true
	}
	for kind, rec := range es.out {
		if rec.tag != tag {
			continue
		}
		bit := fullBit(id.Side, kind)
		old, st := tr.kp.AndFlag16(tr.proc, id.Obj, offFlags, ^bit)
		if st != chrysalis.OK {
			return true // link gone; nothing will be received
		}
		if old&bit != 0 {
			// We cleared it before the receiver consumed: recalled.
			delete(es.out, kind)
			return true
		}
		return false // already consumed (ack on the way)
	}
	return false
}

// handleNotice validates and processes one dequeued notice (a hint).
func (tr *Transport) handleNotice(p *sim.Proc, obj chrysalis.ObjName) {
	var found bool
	for side := 0; side < 2; side++ {
		if es, ok := tr.ends[EndID{Obj: obj, Side: side}]; ok && !es.dead {
			tr.scanEnd(p, es)
			found = true
		}
	}
	if !found {
		// "If either check fails, the notice is discarded."
		tr.c.staleNotices.Inc()
	}
}

// scanEnd inspects the link's flags from es's perspective and acts on
// every relevant set bit. This is also the mover's rescan.
func (tr *Transport) scanEnd(p *sim.Proc, es *endState) {
	tr.c.flagRescans.Inc()
	id := es.id
	flags, st := tr.kp.Flag16(p, id.Obj, offFlags)
	if st != chrysalis.OK {
		tr.endDead(es)
		return
	}
	if flags&flagDestroyed != 0 {
		tr.kp.Unmap(p, id.Obj)
		tr.endDead(es)
		return
	}
	// ACKs for our sends.
	for _, kind := range []core.MsgKind{core.KindRequest, core.KindReply} {
		rec, ok := es.out[kind]
		if !ok {
			continue
		}
		ab := ackBit(id.Side, kind)
		if flags&ab != 0 {
			tr.kp.AndFlag16(p, id.Obj, offFlags, ^ab)
			delete(es.out, kind)
			for _, ees := range rec.encl {
				if cur, ok := tr.ends[ees.id]; !ok || cur != ees {
					// Already gone, or re-adopted by a loopback
					// self-move: leave the live record alone.
					continue
				}
				delete(tr.ends, ees.id)
				if _, keep := tr.ends[EndID{Obj: ees.id.Obj, Side: ees.id.peerSide()}]; !keep {
					tr.kp.Unmap(p, ees.id.Obj)
				}
			}
			tr.sink(core.Event{Kind: core.EvDelivered, End: id, Tag: rec.tag})
		}
		if kind == core.KindReply && flags&rejBit(id.Side) != 0 {
			tr.kp.AndFlag16(p, id.Obj, offFlags, ^rejBit(id.Side))
			if ok {
				delete(es.out, kind)
				tr.sink(core.Event{Kind: core.EvSendFailed, End: id, Tag: rec.tag, Err: core.ErrUnwantedReply})
			}
		}
	}
	// Incoming messages from the far side.
	far := id.peerSide()
	for _, kind := range []core.MsgKind{core.KindRequest, core.KindReply} {
		fb := fullBit(far, kind)
		if flags&fb == 0 {
			continue
		}
		wanted := (kind == core.KindRequest && es.wantReq) || (kind == core.KindReply && es.wantRep)
		if !wanted {
			if kind == core.KindReply {
				// NAK so the replying server feels the exception.
				if old, _ := tr.kp.AndFlag16(p, id.Obj, offFlags, ^fb); old&fb != 0 {
					tr.c.rejections.Inc()
					tr.obsEmit(obs.KindUnwanted, int(id.Obj), "reply rejected")
					tr.kp.OrFlag16(p, id.Obj, offFlags, rejBit(far))
					tr.notify(p, id.Obj, far)
				}
				continue
			}
			// Unwanted request: leave the flag set; we will come back to
			// it when interest opens (free screening).
			continue
		}
		// Claim the message by clearing the full flag atomically; a
		// concurrent Cancel can beat us.
		old, st := tr.kp.AndFlag16(p, id.Obj, offFlags, ^fb)
		if st != chrysalis.OK || old&fb == 0 {
			continue
		}
		tr.consume(p, es, far, kind)
	}
}

// consume reads one message out of the link buffer, adopts enclosures,
// ACKs, and surfaces it.
func (tr *Transport) consume(p *sim.Proc, es *endState, fromSide int, kind core.MsgKind) {
	id := es.id
	base := tr.bufOffset(bufIndex(fromSide, kind))
	lenb, st := tr.kp.ReadBytes(p, id.Obj, base, 4)
	if st != chrysalis.OK {
		return
	}
	n := int(binary.LittleEndian.Uint32(lenb))
	if n < 0 || n > tr.bufCap {
		return
	}
	payload, st := tr.kp.ReadBytes(p, id.Obj, base+4, n)
	if st != chrysalis.OK {
		return
	}
	// Split wire bytes from enclosure records (5 bytes each).
	nencl := 0
	if len(payload) >= 2 {
		nencl = int(payload[1])
	}
	wireLen := len(payload) - nencl*5
	if wireLen < 0 {
		return
	}
	wire, _, err := core.DecodeWire(payload[:wireLen])
	if err != nil {
		return
	}
	wire.Encl = make([]core.TransEnd, 0, nencl)
	for i := 0; i < nencl; i++ {
		off := wireLen + i*5
		obj := chrysalis.ObjName(binary.LittleEndian.Uint32(payload[off:]))
		side := int(payload[off+4])
		wire.Encl = append(wire.Encl, tr.adoptEnd(p, obj, side))
	}
	// ACK: the sender's coroutine can unblock.
	tr.kp.OrFlag16(p, id.Obj, offFlags, ackBit(fromSide, kind))
	tr.notify(p, id.Obj, fromSide)
	tr.sink(core.Event{Kind: core.EvIncoming, End: id, Msg: wire})
}

// adoptEnd maps a moved link end into this process: write our dual-queue
// name (non-atomic!), THEN inspect flags and self-notice anything set —
// the ordering §5.2 relies on so changes are never overlooked.
func (tr *Transport) adoptEnd(p *sim.Proc, obj chrysalis.ObjName, side int) EndID {
	id := EndID{Obj: obj, Side: side}
	tr.c.moves.Inc()
	if tr.rec.Active() { // gate here: Sprintf allocates even when obsEmit drops the event
		tr.obsEmit(obs.KindLinkMove, int(obj), fmt.Sprintf("adopt %v", id))
	}
	tr.kp.Map(p, obj)
	off := offQName0
	if side == 1 {
		off = offQName1
	}
	tr.kp.Write32(p, obj, off, uint32(tr.queue))
	es := &endState{id: id, out: map[core.MsgKind]*outRec{}}
	tr.ends[id] = es
	// Rescan: pending traffic written while the move was in flight.
	flags, st := tr.kp.Flag16(p, obj, offFlags)
	if st == chrysalis.OK && flags != 0 {
		tr.kp.Enqueue(p, tr.queue, uint32(obj))
		tr.c.notices.Inc()
	}
	return id
}

// endDead marks an end dead and tells the core.
func (tr *Transport) endDead(es *endState) {
	if es.dead {
		return
	}
	es.dead = true
	delete(tr.ends, es.id)
	tr.sink(core.Event{Kind: core.EvLinkDead, End: es.id, Err: core.ErrLinkDestroyed})
}

// Shutdown implements core.Transport: "before terminating, each process
// destroys all of its links" — Chrysalis lets even erroneous processes
// run this cleanup.
func (tr *Transport) Shutdown() {
	if tr.dead {
		return
	}
	tr.dead = true
	for id, es := range tr.ends {
		es.dead = true
		tr.kp.OrFlag16(nil, id.Obj, offFlags, flagDestroyed)
		tr.notify(nil, id.Obj, id.peerSide())
		tr.kp.FreeWhenUnreferenced(nil, id.Obj)
		delete(tr.ends, id)
	}
	tr.kp.Terminate()
	if tr.pump != nil {
		tr.pump.Kill()
	}
}
