package chrbind_test

import (
	"errors"
	"testing"

	chrbind "repro/internal/bind/chrysalis"
	"repro/internal/calib"
	"repro/internal/chrysalis"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
)

type rig struct {
	env    *sim.Env
	kernel *chrysalis.Kernel
	trs    []*chrbind.Transport
}

func newRig(nodes int) *rig {
	env := sim.NewEnv(1)
	k := chrysalis.NewKernel(env, netsim.NewBackplane(), calib.DefaultChrysalis())
	r := &rig{env: env, kernel: k}
	for i := 0; i < nodes; i++ {
		kp := k.NewProcess(netsim.NodeID(i))
		r.trs = append(r.trs, chrbind.New(env, k, kp, 4096))
	}
	return r
}

func newPair(mainA, mainB func(*core.Thread, *core.End)) *rig {
	r := newRig(2)
	ea, eb := chrbind.BootLink(r.trs[0], r.trs[1])
	costs := calib.DefaultChrysalisRuntime()
	core.NewProcess(r.env, "A", r.trs[0], costs, func(th *core.Thread) {
		mainA(th, th.AdoptBootEnd(ea))
	})
	core.NewProcess(r.env, "B", r.trs[1], costs, func(th *core.Thread) {
		mainB(th, th.AdoptBootEnd(eb))
	})
	return r
}

func TestChrysalisSimpleRPC(t *testing.T) {
	var rtt sim.Duration
	r := newPair(
		func(th *core.Thread, e *core.End) {
			start := th.Now()
			reply, err := th.Connect(e, "echo", core.Msg{Data: []byte("ping")})
			if err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			rtt = sim.Duration(th.Now() - start)
			if string(reply.Data) != "ping" {
				t.Errorf("reply %q", reply.Data)
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Reply(req, core.Msg{Data: req.Data()})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	ms := rtt.Milliseconds()
	// §5.3: "a simple remote operation requires about 2.4 ms".
	if ms < 1.9 || ms > 3.0 {
		t.Fatalf("LYNX/Chrysalis RTT = %.3f ms, want ≈ 2.4 ms", ms)
	}
}

func TestChrysalisPayloadSlope(t *testing.T) {
	// §5.3: ≈4.6 ms with 1000 bytes of parameters in both directions.
	var rtt sim.Duration
	payload := make([]byte, 1000)
	r := newPair(
		func(th *core.Thread, e *core.End) {
			start := th.Now()
			if _, err := th.Connect(e, "echo", core.Msg{Data: payload}); err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			rtt = sim.Duration(th.Now() - start)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Reply(req, core.Msg{Data: req.Data()})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	ms := rtt.Milliseconds()
	if ms < 3.8 || ms > 5.6 {
		t.Fatalf("LYNX/Chrysalis 1000B RTT = %.3f ms, want ≈ 4.6 ms", ms)
	}
}

func TestChrysalisOrderOfMagnitudeFasterThanCharlotte(t *testing.T) {
	// §5.3: "Message transmission times are also faster on the
	// Butterfly, by more than an order of magnitude" — checked
	// against the Charlotte targets (57 ms) by asserting < 5.7 ms.
	var rtt sim.Duration
	r := newPair(
		func(th *core.Thread, e *core.End) {
			start := th.Now()
			th.Connect(e, "op", core.Msg{})
			rtt = sim.Duration(th.Now() - start)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Reply(req, core.Msg{})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if rtt.Milliseconds() > 5.7 {
		t.Fatalf("RTT %.3f ms is not >10x faster than Charlotte's 57 ms", rtt.Milliseconds())
	}
}

func TestChrysalisMultiEnclosureMove(t *testing.T) {
	const nLinks = 3
	r := newPair(
		func(th *core.Thread, e *core.End) {
			var keep, give []*core.End
			for i := 0; i < nLinks; i++ {
				m, o, err := th.NewLink()
				if err != nil {
					t.Errorf("NewLink: %v", err)
					return
				}
				keep = append(keep, m)
				give = append(give, o)
			}
			if _, err := th.Connect(e, "takeN", core.Msg{Links: give}); err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			for i, m := range keep {
				reply, err := th.Connect(m, "ping", core.Msg{Data: []byte{byte(i)}})
				if err != nil {
					t.Errorf("moved link %d: %v", i, err)
					continue
				}
				if reply.Data[0] != byte(i)+1 {
					t.Errorf("link %d reply %v", i, reply.Data)
				}
			}
			for _, m := range keep {
				th.Destroy(m)
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			req, err := th.Receive(e)
			if err != nil {
				t.Errorf("Receive: %v", err)
				return
			}
			if len(req.Links()) != nLinks {
				t.Errorf("enclosures = %d", len(req.Links()))
			}
			for _, l := range req.Links() {
				th.Serve(l, func(st *core.Thread, r2 *core.Request) {
					st.Reply(r2, core.Msg{Data: []byte{r2.Data()[0] + 1}})
				})
			}
			th.Reply(req, core.Msg{})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if r.trs[1].Stats().Moves != nLinks {
		t.Errorf("moves = %d, want %d", r.trs[1].Stats().Moves, nLinks)
	}
}

func TestChrysalisUnwantedReplyRejected(t *testing.T) {
	var connErr, replyErr error
	r := newPair(
		func(th *core.Thread, e *core.End) {
			victim := th.Fork("victim", func(tv *core.Thread) {
				_, connErr = tv.Connect(e, "slow", core.Msg{})
			})
			th.Sleep(5 * sim.Millisecond)
			th.Abort(victim)
			th.Sleep(40 * sim.Millisecond)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Sleep(10 * sim.Millisecond)
				replyErr = st.Reply(req, core.Msg{})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(connErr, core.ErrAborted) {
		t.Fatalf("connect err = %v", connErr)
	}
	if !errors.Is(replyErr, core.ErrUnwantedReply) {
		t.Fatalf("reply err = %v, want ErrUnwantedReply", replyErr)
	}
	if r.trs[0].Stats().Rejections != 1 {
		t.Fatalf("rejections = %d", r.trs[0].Stats().Rejections)
	}
}

func TestChrysalisDestroyReclaimsObject(t *testing.T) {
	var errB error
	r := newPair(
		func(th *core.Thread, e *core.End) {
			th.Sleep(2 * sim.Millisecond)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			_, errB = th.Connect(e, "op", core.Msg{})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(errB, core.ErrLinkDestroyed) {
		t.Fatalf("B err = %v", errB)
	}
	if r.kernel.Stats().Reclaimed == 0 {
		t.Error("link object never reclaimed")
	}
}

func TestChrysalisCrashCleansUp(t *testing.T) {
	var errA error
	r := newPair(
		func(th *core.Thread, e *core.End) {
			_, errA = th.Connect(e, "op", core.Msg{})
		},
		func(th *core.Thread, e *core.End) {
			th.Sleep(2 * sim.Millisecond)
			th.Process().Crash()
			th.Sleep(sim.Millisecond)
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(errA, core.ErrLinkDestroyed) {
		t.Fatalf("A err = %v", errA)
	}
}

func TestChrysalisUnwantedRequestWaitsInBuffer(t *testing.T) {
	// Reverse-direction request with A's queue closed: the flag stays
	// set and nothing is consumed until A opens its queue. Zero NAK
	// traffic, zero unwanted receives.
	r := newPair(
		func(th *core.Thread, e *core.End) {
			if _, err := th.Connect(e, "svc", core.Msg{}); err != nil {
				t.Errorf("A connect: %v", err)
			}
			req, err := th.Receive(e)
			if err != nil {
				t.Errorf("A receive: %v", err)
				return
			}
			th.Reply(req, core.Msg{Data: []byte("late-ok")})
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Sleep(30 * sim.Millisecond)
				st.Reply(req, core.Msg{})
			})
			rep, err := th.Connect(e, "reverse", core.Msg{})
			if err != nil {
				t.Errorf("B reverse: %v", err)
				return
			}
			if string(rep.Data) != "late-ok" {
				t.Errorf("reverse reply %q", rep.Data)
			}
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if r.trs[0].Stats().Rejections != 0 {
		t.Error("spurious rejections")
	}
}

func TestChrysalisStaleNoticesDiscarded(t *testing.T) {
	// Move a busy link: notices already queued for the old owner must be
	// discarded by validation, and the moved end must still work (the
	// mover's rescan covers lost notices).
	r := newRig(3)
	l1a, l1b := chrbind.BootLink(r.trs[0], r.trs[1])
	l2b, l2c := chrbind.BootLink(r.trs[1], r.trs[2])
	costs := calib.DefaultChrysalisRuntime()

	core.NewProcess(r.env, "A", r.trs[0], costs, func(th *core.Thread) {
		e := th.AdoptBootEnd(l1a)
		// Two ops; between them the far end moves B -> C.
		if _, err := th.Connect(e, "one", core.Msg{}); err != nil {
			t.Errorf("one: %v", err)
		}
		th.Sleep(20 * sim.Millisecond)
		reply, err := th.Connect(e, "two", core.Msg{})
		if err != nil {
			t.Errorf("two: %v", err)
			return
		}
		if string(reply.Data) != "from-C" {
			t.Errorf("two served by %q", reply.Data)
		}
		th.Destroy(e)
	})
	core.NewProcess(r.env, "B", r.trs[1], costs, func(th *core.Thread) {
		e := th.AdoptBootEnd(l1b)
		toC := th.AdoptBootEnd(l2b)
		req, err := th.Receive(e)
		if err != nil {
			t.Errorf("B recv: %v", err)
			return
		}
		th.Reply(req, core.Msg{Data: []byte("from-B")})
		if _, err := th.Connect(toC, "take", core.Msg{Links: []*core.End{e}}); err != nil {
			t.Errorf("B move: %v", err)
		}
		th.Destroy(toC)
	})
	core.NewProcess(r.env, "C", r.trs[2], costs, func(th *core.Thread) {
		e2 := th.AdoptBootEnd(l2c)
		req, err := th.Receive(e2)
		if err != nil {
			t.Errorf("C recv: %v", err)
			return
		}
		moved := req.Links()[0]
		th.Serve(moved, func(st *core.Thread, r2 *core.Request) {
			st.Reply(r2, core.Msg{Data: []byte("from-C")})
		})
		th.Reply(req, core.Msg{})
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if r.trs[2].Stats().Moves != 1 {
		t.Errorf("C moves = %d", r.trs[2].Stats().Moves)
	}
}

func TestChrysalisTunedFactorSpeedsRPC(t *testing.T) {
	measure := func(tune float64) sim.Duration {
		r := newRig(2)
		r.kernel.TuneFactor = tune
		ea, eb := chrbind.BootLink(r.trs[0], r.trs[1])
		costs := calib.DefaultChrysalisRuntime()
		var rtt sim.Duration
		core.NewProcess(r.env, "A", r.trs[0], costs, func(th *core.Thread) {
			e := th.AdoptBootEnd(ea)
			start := th.Now()
			th.Connect(e, "op", core.Msg{})
			rtt = sim.Duration(th.Now() - start)
			th.Destroy(e)
		})
		core.NewProcess(r.env, "B", r.trs[1], costs, func(th *core.Thread) {
			e := th.AdoptBootEnd(eb)
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Reply(req, core.Msg{})
			})
		})
		if err := r.env.Run(); err != nil {
			t.Fatal(err)
		}
		return rtt
	}
	base := measure(1.0)
	tuned := measure(calib.ChrysalisTunedFactor)
	improvement := 1 - float64(tuned)/float64(base)
	// §5.3: optimizations "likely to improve both figures by 30 to 40%"
	// applies to kernel-path time; the runtime share dilutes it somewhat.
	if improvement < 0.15 || improvement > 0.45 {
		t.Fatalf("tuning improvement = %.0f%% (base %v, tuned %v)", improvement*100, base, tuned)
	}
}

func TestChrysalisSequentialOpsStatsSane(t *testing.T) {
	const n = 10
	r := newPair(
		func(th *core.Thread, e *core.End) {
			for i := 0; i < n; i++ {
				if _, err := th.Connect(e, "op", core.Msg{Data: []byte{byte(i)}}); err != nil {
					t.Errorf("op %d: %v", i, err)
				}
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Reply(req, core.Msg{Data: req.Data()})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if r.trs[0].Stats().Rejections != 0 || r.trs[1].Stats().Rejections != 0 {
		t.Error("spurious rejections in a clean workload")
	}
}
