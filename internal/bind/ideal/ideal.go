// Package ideal implements the core.Transport contract over a perfect
// in-memory fabric: reliable, screening-aware, multi-enclosure message
// delivery with configurable latency.
//
// §6 of the paper observes that "the 'ideal operating system' probably
// lies at one of two extremes: it either provides everything the
// language needs, or else provides almost nothing, but in a flexible and
// efficient form". This binding is the first extreme, built as a
// perfectly-fitting kernel for LYNX. It serves two purposes: a reference
// implementation of the Transport contract for the core runtime's tests,
// and the "everything the language needs" baseline column in the
// experiment harness.
package ideal

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Fabric is the shared medium connecting ideal transports: the analogue
// of one kernel instance.
//
// The fabric itself holds no timing state: every mutable structure is
// either per-link (links connect transports of one proc group, so only
// that group touches them), per partition group (the link table and id
// sequence — see Partition), or a commutative atomic counter.
// Transports carry the env that schedules them (a shard env under
// partitioned runs; see SetEnv).
type Fabric struct {
	env   *sim.Env
	links map[int]*link // boot map; read-only once partitioned

	def    *fgroup   // the unpartitioned group (boot allocator)
	groups []*fgroup // non-nil after Partition

	rec *obs.Recorder
	// Message counters are pre-created so the hot path never inserts
	// into the registry map (shard envs may count concurrently).
	msgs         *obs.Counter
	bytes        *obs.Counter
	linkDestroys *obs.Counter
	// Latency is the fixed one-way message latency; PerByte adds a
	// payload-proportional component.
	Latency sim.Duration
	PerByte sim.Duration
}

// NewFabric creates a fabric with the given base latency.
func NewFabric(env *sim.Env, latency sim.Duration, perByte sim.Duration) *Fabric {
	rec := obs.NewRecorder(env, "ideal")
	f := &Fabric{
		env:          env,
		links:        make(map[int]*link),
		rec:          rec,
		msgs:         rec.Counter(obs.MKernelMessages),
		bytes:        rec.Counter(obs.MKernelBytes),
		linkDestroys: rec.Counter(obs.MLinkDestroys),
		Latency:      latency,
		PerByte:      perByte,
	}
	f.def = &fgroup{f: f, idx: -1, links: f.links, nextLink: 1, stride: 1}
	return f
}

// fgroup is one partition group of the fabric: an overlay map for
// links created mid-run plus a strided id allocator whose output
// depends only on this group's own call order.
type fgroup struct {
	f        *Fabric
	idx      int // -1 for the default (unpartitioned) group
	links    map[int]*link
	nextLink int
	stride   int
}

// findLink resolves a link id against the group overlay, then the
// shared boot map.
func (g *fgroup) findLink(id int) (*link, bool) {
	if l, ok := g.links[id]; ok {
		return l, true
	}
	if g.idx >= 0 {
		l, ok := g.f.links[id]
		return l, ok
	}
	return nil, false
}

// Partition splits the fabric into k groups for a conservative
// parallel run. Link ids allocated from here on are strided per group,
// so mid-run MakeLink stays deterministic at any worker count. Call
// before the run starts, then AssignGroup every transport.
func (f *Fabric) Partition(k int) {
	if f.groups != nil {
		panic("ideal: Partition called twice")
	}
	f.groups = make([]*fgroup, k)
	for i := range f.groups {
		f.groups[i] = &fgroup{
			f: f, idx: i,
			links:    make(map[int]*link),
			nextLink: f.def.nextLink + i,
			stride:   k,
		}
	}
}

// Obs returns the fabric's recorder (the analogue of a kernel's).
func (f *Fabric) Obs() *obs.Recorder { return f.rec }

// EndID is the fabric's transport-end handle (comparable, as core
// requires).
type EndID struct {
	Link int
	Side int
}

func (e EndID) String() string { return fmt.Sprintf("ideal<%d.%d>", e.Link, e.Side) }

type link struct {
	id   int
	dead bool
	ends [2]endState
}

type endState struct {
	owner    *Transport
	wantReq  bool
	wantRep  bool
	inFlight map[uint64]*flight // tag -> undelivered send FROM this end
	// held are arrived-but-unwanted messages parked at the receiving
	// side until interest opens (the ideal kernel screens perfectly, so
	// they are invisible to the far process).
	held []*flight
}

type flight struct {
	msg       *core.WireMsg
	tag       uint64
	from      *Transport
	fromEnd   EndID
	delivered bool
	cancelled bool
}

// Transport is one process's view of the fabric.
type Transport struct {
	f     *Fabric
	g     *fgroup
	env   *sim.Env
	name  string
	sink  func(core.Event)
	owned map[EndID]bool
}

var _ core.Transport = (*Transport)(nil)
var _ core.Capable = (*Transport)(nil)

// NewTransport creates a process's transport.
func (f *Fabric) NewTransport(name string) *Transport {
	return &Transport{
		f:     f,
		g:     f.def,
		env:   f.env,
		name:  name,
		owned: make(map[EndID]bool),
	}
}

// NewTransportIn creates a transport directly in partition group g:
// the home-group placement for processes launched after the run has
// started.
func (f *Fabric) NewTransportIn(g int, name string) *Transport {
	tr := f.NewTransport(name)
	tr.g = f.groups[g]
	return tr
}

// AssignGroup moves a boot-created transport into partition group g.
// Call after Fabric.Partition, before the run starts.
func (tr *Transport) AssignGroup(g int) { tr.g = tr.f.groups[g] }

// SetEnv rebinds the transport's scheduling env. A partitioned run
// assigns each process's transport the shard env its proc group runs
// on, so message-delay timers land on that group's event set. Linked
// transports always share a group (links are created inside one
// process and enclosure passing cannot leave the group), so delivery
// stays group-local.
func (tr *Transport) SetEnv(env *sim.Env) { tr.env = env }

// SetSink implements core.Transport. The ideal fabric charges no kernel
// CPU, so the simproc is unused.
func (tr *Transport) SetSink(sink func(core.Event), _ *sim.Proc) { tr.sink = sink }

// Obs returns the fabric's recorder.
func (tr *Transport) Obs() *obs.Recorder { return tr.f.rec }

// Capabilities reports the full feature set: the ideal kernel does
// everything the language needs.
func (tr *Transport) Capabilities() core.Capabilities {
	return core.Capabilities{
		RejectsUnwantedReplies:    true,
		RecoversAbortedEnclosures: true,
	}
}

// MakeLink implements core.Transport. The link table and id sequence
// are per partition group, so mid-run link creation is legal under a
// parallel run and its ids depend only on the group's own call order.
func (tr *Transport) MakeLink() (core.TransEnd, core.TransEnd, error) {
	f := tr.f
	g := tr.g
	l := &link{id: g.nextLink}
	g.nextLink += g.stride
	for i := range l.ends {
		l.ends[i].owner = tr
		l.ends[i].inFlight = make(map[uint64]*flight)
	}
	g.links[l.id] = l
	a, b := EndID{l.id, 0}, EndID{l.id, 1}
	tr.owned[a] = true
	tr.owned[b] = true
	if f.rec.Active() {
		f.rec.EmitEnv(tr.env, obs.Event{Kind: obs.KindLinkMake, Link: l.id})
	}
	return a, b, nil
}

func (tr *Transport) end(te core.TransEnd) (*link, EndID, *endState, error) {
	id, ok := te.(EndID)
	if !ok {
		return nil, EndID{}, nil, fmt.Errorf("ideal: bad TransEnd %T", te)
	}
	l, ok := tr.g.findLink(id.Link)
	if !ok {
		return nil, id, nil, core.ErrLinkDestroyed
	}
	return l, id, &l.ends[id.Side], nil
}

// Destroy implements core.Transport.
func (tr *Transport) Destroy(te core.TransEnd) error {
	l, id, _, err := tr.end(te)
	if err != nil {
		return err
	}
	tr.destroyLink(l, id)
	return nil
}

func (tr *Transport) destroyLink(l *link, cause EndID) {
	if l.dead {
		return
	}
	l.dead = true
	tr.f.linkDestroys.Inc()
	if tr.f.rec.Active() {
		tr.f.rec.EmitEnv(tr.env, obs.Event{Kind: obs.KindLinkDestroy, Link: l.id})
	}
	for side := range l.ends {
		es := &l.ends[side]
		owner := es.owner
		delete(owner.owned, EndID{l.id, side})
		// Fail every undelivered send from this side.
		for tag, fl := range es.inFlight {
			fl.cancelled = true
			delete(es.inFlight, tag)
			owner.sink(core.Event{Kind: core.EvSendFailed, End: EndID{l.id, side}, Tag: tag, Err: core.ErrLinkDestroyed})
		}
		es.held = nil
		// The destroying end learns synchronously (core handles it);
		// every other end is notified by event.
		if (EndID{l.id, side}) != cause {
			owner.sink(core.Event{Kind: core.EvLinkDead, End: EndID{l.id, side}, Err: core.ErrLinkDestroyed})
		}
	}
}

// StartSend implements core.Transport: the message (with all enclosures)
// crosses the fabric in one piece and is delivered as soon as the far
// side's interest admits its kind.
func (tr *Transport) StartSend(te core.TransEnd, m *core.WireMsg, tag uint64) error {
	l, id, es, err := tr.end(te)
	if err != nil {
		return err
	}
	if l.dead {
		return core.ErrLinkDestroyed
	}
	if es.owner != tr {
		return core.ErrNotOwner
	}
	fl := &flight{msg: m, tag: tag, from: tr, fromEnd: id}
	es.inFlight[tag] = fl
	if tr.f.rec.Active() {
		tr.f.rec.EmitEnv(tr.env, obs.Event{Kind: obs.KindKernelSend, Link: l.id, Seq: m.Seq, Bytes: len(m.Data), Detail: id.String()})
	}
	delay := tr.f.Latency + sim.Duration(len(m.Data))*tr.f.PerByte
	tr.env.After(delay, func() {
		if fl.cancelled || l.dead {
			return
		}
		far := &l.ends[1-id.Side]
		far.held = append(far.held, fl)
		tr.f.flush(l, 1-id.Side, tr.env)
	})
	return nil
}

// flush delivers held messages on l's given side that are now wanted.
// env is the shard env executing the flush (the fabric env when serial).
func (f *Fabric) flush(l *link, side int, env *sim.Env) {
	es := &l.ends[side]
	farEnd := EndID{l.id, side}
	kept := es.held[:0]
	for _, fl := range es.held {
		wanted := (fl.msg.Kind == core.KindRequest && es.wantReq) ||
			(fl.msg.Kind == core.KindReply && es.wantRep)
		if !wanted {
			if fl.msg.Kind == core.KindReply && !es.wantRep {
				// The ideal kernel tells the replier immediately that
				// the reply is unwanted, returning its enclosures.
				src := &l.ends[fl.fromEnd.Side]
				delete(src.inFlight, fl.tag)
				fl.from.sink(core.Event{
					Kind: core.EvSendFailed, End: fl.fromEnd, Tag: fl.tag,
					Err: core.ErrUnwantedReply,
				})
				continue
			}
			kept = append(kept, fl)
			continue
		}
		fl.delivered = true
		src := &l.ends[fl.fromEnd.Side]
		delete(src.inFlight, fl.tag)
		f.msgs.Inc()
		f.bytes.Add(int64(len(fl.msg.Data)))
		if f.rec.Active() {
			f.rec.EmitEnv(env, obs.Event{Kind: obs.KindKernelDeliver, Link: l.id, Seq: fl.msg.Seq, Bytes: len(fl.msg.Data), Detail: farEnd.String()})
		}
		// Move enclosure ownership across transports (group-local: an
		// enclosure travels between transports of one partition group).
		for _, enc := range fl.msg.Encl {
			id := enc.(EndID)
			el, ok := es.owner.g.findLink(id.Link)
			if !ok {
				continue
			}
			ees := &el.ends[id.Side]
			delete(ees.owner.owned, id)
			ees.owner = es.owner
			es.owner.owned[id] = true
			if f.rec.Active() {
				f.rec.EmitEnv(env, obs.Event{Kind: obs.KindLinkMove, Link: id.Link, Detail: id.String()})
			}
		}
		es.owner.sink(core.Event{Kind: core.EvIncoming, End: farEnd, Msg: fl.msg})
		fl.from.sink(core.Event{Kind: core.EvDelivered, End: fl.fromEnd, Tag: fl.tag})
	}
	es.held = kept
}

// CancelSend implements core.Transport: succeeds unless delivered.
func (tr *Transport) CancelSend(te core.TransEnd, tag uint64) bool {
	_, _, es, err := tr.end(te)
	if err != nil {
		return true // link gone: nothing will be received
	}
	fl, ok := es.inFlight[tag]
	if !ok || fl.delivered {
		return false
	}
	fl.cancelled = true
	delete(es.inFlight, tag)
	// Remove from the far side's held list if it already arrived there.
	l, _ := tr.g.findLink(te.(EndID).Link)
	far := &l.ends[1-te.(EndID).Side]
	for i, h := range far.held {
		if h == fl {
			far.held = append(far.held[:i], far.held[i+1:]...)
			break
		}
	}
	return true
}

// SetInterest implements core.Transport.
func (tr *Transport) SetInterest(te core.TransEnd, wantRequests, wantReplies bool) {
	l, id, es, err := tr.end(te)
	if err != nil {
		return
	}
	es.wantReq, es.wantRep = wantRequests, wantReplies
	tr.f.flush(l, id.Side, tr.env)
}

// Shutdown implements core.Transport: destroy everything still owned.
// Must not block (it runs from kill hooks). Ends are destroyed in id
// order: destruction emits events, so randomized map order would make
// same-seed runs diverge.
func (tr *Transport) Shutdown() {
	ids := make([]EndID, 0, len(tr.owned))
	for id := range tr.owned {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Link != ids[j].Link {
			return ids[i].Link < ids[j].Link
		}
		return ids[i].Side < ids[j].Side
	})
	for _, id := range ids {
		if l, ok := tr.g.findLink(id.Link); ok {
			tr.destroyLink(l, id)
		}
	}
}

// MoveOwnership transfers a link end between transports outside any
// message — boot-time wiring for tests and examples (the loader handing
// a newborn process its initial links).
func MoveOwnership(f *Fabric, from, to *Transport, id EndID) {
	l, ok := from.g.findLink(id.Link)
	if !ok {
		return
	}
	es := &l.ends[id.Side]
	if es.owner != from {
		return
	}
	delete(from.owned, id)
	es.owner = to
	to.owned[id] = true
}
