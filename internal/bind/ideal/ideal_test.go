package ideal_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bind/ideal"
	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/sim"
)

func costs() calib.LynxRuntimeCosts {
	return calib.LynxRuntimeCosts{PerOperation: 10 * sim.Microsecond}
}

func pairRig(t *testing.T, mainA, mainB func(*core.Thread, *core.End)) *sim.Env {
	env := sim.NewEnv(1)
	fab := ideal.NewFabric(env, sim.Millisecond, sim.Microsecond)
	trA := fab.NewTransport("A")
	trB := fab.NewTransport("B")
	ea, eb, err := trA.MakeLink()
	if err != nil {
		t.Fatal(err)
	}
	ideal.MoveOwnership(fab, trA, trB, eb.(ideal.EndID))
	core.NewProcess(env, "A", trA, costs(), func(th *core.Thread) {
		mainA(th, th.AdoptBootEnd(ea))
	})
	core.NewProcess(env, "B", trB, costs(), func(th *core.Thread) {
		mainB(th, th.AdoptBootEnd(eb))
	})
	return env
}

func TestIdealLatencyIsConfigured(t *testing.T) {
	var rtt sim.Duration
	env := pairRig(t,
		func(th *core.Thread, e *core.End) {
			start := th.Now()
			if _, err := th.Connect(e, "op", core.Msg{Data: make([]byte, 100)}); err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			rtt = sim.Duration(th.Now() - start)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Reply(req, core.Msg{Data: req.Data()})
			})
		},
	)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Two crossings at 1ms + 100B/µs each, plus small runtime overhead.
	if rtt < 2200*sim.Microsecond || rtt > 2500*sim.Microsecond {
		t.Fatalf("ideal RTT = %v, want ≈ 2.2-2.3 ms", rtt)
	}
}

func TestIdealUnwantedReplyFailsSenderImmediately(t *testing.T) {
	var replyErr error
	env := pairRig(t,
		func(th *core.Thread, e *core.End) {
			victim := th.Fork("victim", func(tv *core.Thread) {
				tv.Connect(e, "slow", core.Msg{})
			})
			th.Sleep(3 * sim.Millisecond)
			th.Abort(victim)
			th.Sleep(30 * sim.Millisecond)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Sleep(10 * sim.Millisecond)
				replyErr = st.Reply(req, core.Msg{})
			})
		},
	)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(replyErr, core.ErrUnwantedReply) {
		t.Fatalf("reply err = %v", replyErr)
	}
}

func TestIdealScreeningHoldsUnwantedRequests(t *testing.T) {
	// A request sent before the receiver has any interest is held by the
	// fabric and delivered the moment interest opens.
	var got string
	env := pairRig(t,
		func(th *core.Thread, e *core.End) {
			if _, err := th.Connect(e, "early", core.Msg{}); err != nil {
				t.Errorf("connect: %v", err)
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Sleep(50 * sim.Millisecond) // no interest yet
			req, err := th.Receive(e)
			if err != nil {
				t.Errorf("receive: %v", err)
				return
			}
			got = req.Op()
			th.Reply(req, core.Msg{})
		},
	)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "early" {
		t.Fatalf("got %q", got)
	}
}

func TestIdealEndIDString(t *testing.T) {
	id := ideal.EndID{Link: 3, Side: 1}
	if !strings.Contains(id.String(), "3.1") {
		t.Fatalf("EndID string %q", id.String())
	}
}

func TestIdealMoveOwnershipGuards(t *testing.T) {
	env := sim.NewEnv(1)
	fab := ideal.NewFabric(env, sim.Millisecond, 0)
	trA := fab.NewTransport("A")
	trB := fab.NewTransport("B")
	ea, _, _ := trA.MakeLink()
	// Moving an end the source does not own is a no-op.
	ideal.MoveOwnership(fab, trB, trA, ea.(ideal.EndID))
	// Moving a nonexistent link is a no-op.
	ideal.MoveOwnership(fab, trA, trB, ideal.EndID{Link: 99, Side: 0})
}
