// Package chbind implements the LYNX run-time package's kernel-specific
// half for the Charlotte kernel — the implementation §3.2 of the paper
// describes, with all of its hard-won complications:
//
//   - request and reply queues are multiplexed onto Charlotte's single
//     receive activity per link end, so the binding can receive messages
//     it does not want and must bounce them back with RETRY (negative
//     acknowledgment) or FORBID/ALLOW (suppressing request traffic while
//     a reply is awaited);
//   - a Charlotte message can enclose at most ONE link end, so a LYNX
//     message moving several links is packetized: first packet (data +
//     first enclosure), a GOAHEAD from the receiver (requests only, so
//     the sender knows the request is wanted before committing more
//     ends), then one ENC message per remaining enclosure;
//   - Cancel of a posted receive can fail if a message snuck in, which
//     is exactly how unwanted messages arise;
//   - replies are always accepted; a reply whose coroutine has aborted
//     is silently discarded, because a top-level acknowledgment for
//     every reply "would increase message traffic by 50%" — so, unlike
//     the SODA and Chrysalis bindings, this transport CANNOT raise
//     ErrUnwantedReply at the server (Capabilities reflect that).
//
// Concurrency discipline: binding code runs in two simproc contexts —
// the LYNX process itself (core-facing methods) and the completion pump.
// Kernel calls park the calling context, so every function that can make
// a kernel call takes the charging proc explicitly, and binding state is
// made consistent BEFORE each parking call so the other context can
// interleave safely.
package chbind

import (
	"fmt"

	"repro/internal/charlotte"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ctrl is the binding-level message type carried in the first payload
// byte of every kernel message.
type ctrl byte

// Binding protocol message types (§3.2.1, §3.2.2).
const (
	ctrlData    ctrl = iota // first packet of a LYNX request or reply
	ctrlEnc                 // additional enclosure packet
	ctrlGoahead             // receiver wants the rest of a multi-enclosure request
	ctrlRetry               // negative ack: resend later (kernel will delay)
	ctrlForbid              // stop sending requests (reply still welcome)
	ctrlAllow               // requests welcome again
)

func (c ctrl) String() string {
	switch c {
	case ctrlData:
		return "data"
	case ctrlEnc:
		return "enc"
	case ctrlGoahead:
		return "goahead"
	case ctrlRetry:
		return "retry"
	case ctrlForbid:
		return "forbid"
	case ctrlAllow:
		return "allow"
	default:
		return fmt.Sprintf("ctrl(%d)", byte(c))
	}
}

// Stats counts binding-level protocol activity — the special-case
// traffic that exists only because of the kernel interface mismatch
// (E2/E5/E7 read these). It is a point-in-time snapshot of the
// binding's obs counters.
type Stats struct {
	KernelSends      int64
	UnwantedMessages int64 // received messages we had to bounce or drop
	Retries          int64 // RETRY messages sent
	Forbids          int64 // FORBID messages sent
	Allows           int64 // ALLOW messages sent
	Goaheads         int64 // GOAHEAD messages sent
	EncPackets       int64 // ENC messages sent
	DroppedReplies   int64 // unwanted replies silently discarded
	ResentRequests   int64 // requests resent after RETRY/ALLOW
	FailedCancels    int64 // kernel Cancel calls that failed
}

// counters holds the binding's per-process obs counter handles,
// resolved once at construction so the hot paths do no map lookups.
type counters struct {
	kernelSends    *obs.Counter
	unwanted       *obs.Counter
	retries        *obs.Counter
	forbids        *obs.Counter
	allows         *obs.Counter
	goaheads       *obs.Counter
	encPackets     *obs.Counter
	droppedReplies *obs.Counter
	resentRequests *obs.Counter
	failedCancels  *obs.Counter
}

// Transport is one LYNX process's Charlotte binding.
type Transport struct {
	env  *sim.Env
	kp   *charlotte.Process
	sink func(core.Event)
	proc *sim.Proc // the LYNX process's simproc
	pump *sim.Proc
	rec  *obs.Recorder
	c    counters

	ends map[charlotte.EndRef]*endState
	// bufCap is the receive buffer capacity posted with every kernel
	// Receive (the run-time package uses maximum-size buffers).
	bufCap int
	dead   bool
}

var _ core.Transport = (*Transport)(nil)
var _ core.Capable = (*Transport)(nil)

// endState is the binding's per-link-end protocol state.
type endState struct {
	ref     charlotte.EndRef
	dead    bool
	wantReq bool
	wantRep bool

	// recvPosted: a kernel receive activity is outstanding.
	recvPosted bool
	// recvBusy: a context is mid-Receive/Cancel kernel call; re-entrant
	// adjustReceive must back off and reconverge later.
	recvBusy bool
	// sendBusy: a kernel send activity is outstanding on this end.
	sendBusy bool
	// sendQ: kernel messages waiting for the send slot, FIFO. Control
	// messages jump the queue.
	sendQ []*kmsg
	// curSend is the kernel message occupying the send slot.
	curSend *kmsg

	// Outbound LYNX messages in protocol flight (at most one per kind,
	// by core's stop-and-wait).
	outbound map[core.MsgKind]*outMsg

	// Inbound multi-enclosure assembly.
	partial *inAssembly

	// bounceable maps request seq -> outMsg for requests the kernel has
	// delivered but whose LYNX-level acceptance is still unknown: a
	// RETRY/FORBID naming that seq means the receiver bounced it and it
	// must be resent; an incoming reply with that seq confirms it.
	bounceable map[uint64]*outMsg

	// weForbade: we sent FORBID and owe an ALLOW once our request queue
	// opens or we have no receive posted.
	weForbade bool
	// peerForbade: peer sent FORBID; requests wait for ALLOW.
	peerForbade bool
	// stashed requests forbidden or retried, to resend.
	stashed []*outMsg
}

// kmsg is one kernel message queued for the end's send slot.
type kmsg struct {
	payload   []byte
	enclosure charlotte.EndRef
	isData    bool // first packet of a LYNX message (cancellable)
	// onSent runs when the kernel reports the send activity complete
	// (the far side received it).
	onSent func(p *sim.Proc, ok bool)
}

// outMsg tracks one LYNX message through the multi-packet protocol.
type outMsg struct {
	wire *core.WireMsg
	tag  uint64
	encl []charlotte.EndRef
	// state
	firstSent    bool
	awaitGoahead bool
	nextEnc      int // index of next enclosure to ship (≥1; #0 rode the first packet)
	cancelled    bool
	delivered    bool
}

// inAssembly collects a multi-enclosure message on the receive side.
type inAssembly struct {
	wire     *core.WireMsg
	needEncl int
	gotEncl  []charlotte.EndRef
}

// New creates the binding for one LYNX process hosted on the given
// Charlotte kernel process. bufCap is the maximum message size.
func New(env *sim.Env, kp *charlotte.Process, bufCap int) *Transport {
	rec := kp.Kernel().Obs()
	id := kp.ID()
	return &Transport{
		env: env,
		kp:  kp,
		rec: rec,
		c: counters{
			kernelSends:    rec.ProcCounter(obs.MBindKernelSends, id),
			unwanted:       rec.ProcCounter(obs.MUnwantedReceives, id),
			retries:        rec.ProcCounter(obs.MRetries, id),
			forbids:        rec.ProcCounter(obs.MForbids, id),
			allows:         rec.ProcCounter(obs.MAllows, id),
			goaheads:       rec.ProcCounter(obs.MGoaheads, id),
			encPackets:     rec.ProcCounter(obs.MEncPackets, id),
			droppedReplies: rec.ProcCounter(obs.MDroppedReplies, id),
			resentRequests: rec.ProcCounter(obs.MResentRequests, id),
			failedCancels:  rec.ProcCounter(obs.MFailedCancels, id),
		},
		ends:   make(map[charlotte.EndRef]*endState),
		bufCap: bufCap,
	}
}

// Obs returns the recorder this binding reports into (the kernel's).
func (tr *Transport) Obs() *obs.Recorder { return tr.rec }

// SetEnv rebinds the transport's scheduling env. A partitioned run
// calls this (before SetSink spawns the pump) so the binding's
// simprocs and events live on its process's home shard env.
func (tr *Transport) SetEnv(env *sim.Env) { tr.env = env }

// Stats returns a snapshot of the binding's protocol counters.
func (tr *Transport) Stats() *Stats {
	return &Stats{
		KernelSends:      tr.c.kernelSends.Value(),
		UnwantedMessages: tr.c.unwanted.Value(),
		Retries:          tr.c.retries.Value(),
		Forbids:          tr.c.forbids.Value(),
		Allows:           tr.c.allows.Value(),
		Goaheads:         tr.c.goaheads.Value(),
		EncPackets:       tr.c.encPackets.Value(),
		DroppedReplies:   tr.c.droppedReplies.Value(),
		ResentRequests:   tr.c.resentRequests.Value(),
		FailedCancels:    tr.c.failedCancels.Value(),
	}
}

// emit records a binding-protocol event when a trace sink is attached.
// Counters are maintained unconditionally; events cost only when someone
// is watching.
func (tr *Transport) emit(kind obs.Kind, es *endState, seq uint64, detail string) {
	if tr.rec.Active() {
		var d string
		if tr.rec.WantDetail() {
			d = es.ref.String()
			if detail != "" {
				d = detail + " " + d
			}
		}
		tr.rec.EmitEnv(tr.env, obs.Event{Kind: kind, Proc: tr.kp.ID(), Seq: seq, Detail: d})
	}
}

// KernelProcess returns the underlying Charlotte process (harness use).
func (tr *Transport) KernelProcess() *charlotte.Process { return tr.kp }

// Capabilities implements core.Capable: Charlotte cannot reject unwanted
// replies (no final acknowledgment) nor guarantee enclosure recovery
// across crashes (§3.2.2).
func (tr *Transport) Capabilities() core.Capabilities {
	return core.Capabilities{}
}

// SetSink implements core.Transport and starts the completion pump: a
// helper context that performs the process's kernel Wait calls and runs
// the protocol state machine on each completion.
func (tr *Transport) SetSink(sink func(core.Event), sp *sim.Proc) {
	tr.sink = sink
	tr.proc = sp
	tr.pump = tr.env.Spawn(fmt.Sprintf("chbind.pump.p%d", tr.kp.ID()), func(p *sim.Proc) {
		for {
			d := tr.kp.Wait(p)
			tr.handleCompletion(p, d)
		}
	})
}

// AdoptBootEnd registers an end assigned before startup (loader wiring).
func (tr *Transport) AdoptBootEnd(ref charlotte.EndRef) core.TransEnd {
	tr.ensureEnd(ref)
	return ref
}

func (tr *Transport) ensureEnd(ref charlotte.EndRef) *endState {
	es, ok := tr.ends[ref]
	if !ok {
		es = &endState{
			ref:        ref,
			outbound:   make(map[core.MsgKind]*outMsg),
			bounceable: make(map[uint64]*outMsg),
		}
		tr.ends[ref] = es
	}
	return es
}

// MakeLink implements core.Transport.
func (tr *Transport) MakeLink() (core.TransEnd, core.TransEnd, error) {
	e1, e2, st := tr.kp.MakeLink(tr.proc)
	if st != charlotte.OK {
		return nil, nil, fmt.Errorf("chbind: MakeLink: %v", st)
	}
	tr.ensureEnd(e1)
	tr.ensureEnd(e2)
	return e1, e2, nil
}

// Destroy implements core.Transport.
func (tr *Transport) Destroy(te core.TransEnd) error {
	ref := te.(charlotte.EndRef)
	es := tr.ensureEnd(ref)
	es.dead = true
	st := tr.kp.Destroy(tr.proc, ref)
	if st != charlotte.OK && st != charlotte.Destroyed {
		return fmt.Errorf("chbind: Destroy: %v", st)
	}
	return nil
}

// SetInterest implements core.Transport: adjust the posted kernel
// receive to match what the run-time package currently wants, cancelling
// it when nothing is wanted (the Cancel may fail — that is how unwanted
// messages happen).
func (tr *Transport) SetInterest(te core.TransEnd, wantRequests, wantReplies bool) {
	ref := te.(charlotte.EndRef)
	es := tr.ensureEnd(ref)
	es.wantReq, es.wantRep = wantRequests, wantReplies
	if es.dead {
		return
	}
	// Owing an ALLOW and now willing to receive requests? Send it.
	if es.weForbade && es.wantReq {
		tr.sendAllow(tr.proc, es)
	}
	tr.adjustReceive(tr.proc, es)
}

// sendAllow lifts a FORBID we issued earlier.
func (tr *Transport) sendAllow(p *sim.Proc, es *endState) {
	if !es.weForbade || es.dead {
		return
	}
	es.weForbade = false
	tr.c.allows.Inc()
	tr.emit(obs.KindAllow, es, 0, "")
	tr.sendCtrl(p, es, ctrlAllow, charlotte.EndRef{}, nil)
}

// adjustReceive posts or cancels the kernel receive according to current
// interest and protocol obligations. It reconverges until stable (the
// desired state can change while a kernel call parks us).
func (tr *Transport) adjustReceive(p *sim.Proc, es *endState) {
	for {
		if es.dead || es.recvBusy {
			return
		}
		want := es.wantReq || es.wantRep || es.peerForbade || es.partial != nil || tr.expectingCtrl(es)
		if want == es.recvPosted {
			return
		}
		es.recvBusy = true
		if want {
			// Mark posted optimistically; roll back on failure.
			es.recvPosted = true
			st := tr.kp.Receive(p, es.ref, tr.bufCap)
			es.recvBusy = false
			if st != charlotte.OK {
				es.recvPosted = false
				if st == charlotte.Destroyed {
					tr.endDied(es)
				}
				return
			}
		} else {
			st := tr.kp.Cancel(p, es.ref, charlotte.RecvDir)
			es.recvBusy = false
			if st == charlotte.OK {
				es.recvPosted = false
				// With no receive posted the kernel delays senders; any
				// FORBID we owe can be lifted (retransmissions are
				// delayed anyway).
				if es.weForbade {
					tr.sendAllow(p, es)
				}
			} else {
				// Cancel failed: a message is on its way in. The
				// completion handler will deal with it (and likely
				// bounce it).
				tr.c.failedCancels.Inc()
				return
			}
		}
	}
}

// expectingCtrl reports whether this end awaits a protocol message
// (goahead for an outbound multi-enclosure request, or an ALLOW after
// the peer forbade us while we still have stashed traffic).
func (tr *Transport) expectingCtrl(es *endState) bool {
	for _, om := range es.outbound {
		if om.awaitGoahead {
			return true
		}
	}
	return len(es.stashed) > 0
}

// StartSend implements core.Transport.
func (tr *Transport) StartSend(te core.TransEnd, m *core.WireMsg, tag uint64) error {
	ref := te.(charlotte.EndRef)
	es := tr.ensureEnd(ref)
	if es.dead {
		return core.ErrLinkDestroyed
	}
	encl := make([]charlotte.EndRef, len(m.Encl))
	for i, e := range m.Encl {
		encl[i] = e.(charlotte.EndRef)
	}
	om := &outMsg{wire: m, tag: tag, encl: encl}
	es.outbound[m.Kind] = om
	// An enclosed end must have no outstanding kernel activities: the
	// run-time package "never tries to send on a moving end"; it also
	// withdraws its posted receives before the move (SetInterest will
	// repost if the move fails).
	for _, ref := range encl {
		ees := tr.ensureEnd(ref)
		if ees.recvPosted && !ees.recvBusy {
			if st := tr.kp.Cancel(tr.proc, ref, charlotte.RecvDir); st == charlotte.OK {
				ees.recvPosted = false
			} else {
				tr.c.failedCancels.Inc()
			}
		}
		if ees.sendBusy || ees.recvPosted || len(ees.sendQ) > 0 {
			// A message is arriving on (or leaving) the end being moved:
			// the move cannot proceed right now. Surface a retryable
			// failure instead of wedging the kernel.
			delete(es.outbound, m.Kind)
			return core.ErrEndMoving
		}
	}
	if m.Kind == core.KindRequest && es.peerForbade {
		// Requests are forbidden: stash until ALLOW.
		es.stashed = append(es.stashed, om)
		return nil
	}
	tr.shipFirstPacket(tr.proc, es, om)
	return nil
}

// shipFirstPacket queues the first kernel packet of a LYNX message.
func (tr *Transport) shipFirstPacket(p *sim.Proc, es *endState, om *outMsg) {
	payload, err := om.wire.Encode()
	if err == nil && len(payload)+1 > tr.bufCap {
		err = fmt.Errorf("chbind: message %dB exceeds buffer capacity %dB", len(payload)+1, tr.bufCap)
	}
	if err != nil {
		delete(es.outbound, om.wire.Kind)
		tr.sink(core.Event{Kind: core.EvSendFailed, End: es.ref, Tag: om.tag, Err: err})
		return
	}
	buf := append([]byte{byte(ctrlData)}, payload...)
	var enc charlotte.EndRef
	if len(om.encl) > 0 {
		enc = om.encl[0]
	}
	km := &kmsg{payload: buf, enclosure: enc, isData: true, onSent: func(p *sim.Proc, ok bool) {
		if om.cancelled {
			return
		}
		if !ok {
			// The kernel rejected or the link died mid-protocol; tell the
			// run-time package so the sending coroutine unblocks.
			if !om.delivered {
				delete(es.outbound, om.wire.Kind)
				tr.sink(core.Event{Kind: core.EvSendFailed, End: es.ref, Tag: om.tag, Err: core.ErrLinkDestroyed})
			}
			return
		}
		om.firstSent = true
		switch {
		case len(om.encl) > 1 && om.wire.Kind == core.KindRequest:
			// Wait for GOAHEAD before shipping more enclosures (the
			// receiver must prove it wants the request).
			om.awaitGoahead = true
			tr.adjustReceive(p, es)
		case len(om.encl) > 1:
			// Replies are always wanted: no goahead needed (figure 2).
			om.nextEnc = 1
			tr.shipNextEnc(p, es, om)
		default:
			tr.deliverComplete(p, es, om)
		}
	}}
	tr.enqueueKernel(p, es, km)
}

// shipNextEnc sends the next ENC packet, or completes the message.
func (tr *Transport) shipNextEnc(p *sim.Proc, es *endState, om *outMsg) {
	if om.nextEnc >= len(om.encl) {
		tr.deliverComplete(p, es, om)
		return
	}
	idx := om.nextEnc
	om.nextEnc++
	tr.c.encPackets.Inc()
	if tr.rec.Active() { // gate here: String() allocates even when emit drops the event
		tr.emit(obs.KindEnc, es, om.wire.Seq, om.encl[idx].String())
	}
	km := &kmsg{
		payload:   []byte{byte(ctrlEnc), byte(om.wire.Kind)},
		enclosure: om.encl[idx],
		onSent: func(p *sim.Proc, ok bool) {
			if !ok || om.cancelled {
				return
			}
			tr.shipNextEnc(p, es, om)
		},
	}
	tr.enqueueKernel(p, es, km)
}

// deliverComplete reports the whole LYNX message received. For requests
// the kernel-level completion is only a provisional acknowledgment: the
// receiver may still bounce the message with RETRY/FORBID, so the record
// stays bounceable until a reply with its seq arrives. EvDelivered fires
// only once; resends after a bounce are invisible to the run-time
// package (its reply matching is by seq, so transparency is safe).
func (tr *Transport) deliverComplete(p *sim.Proc, es *endState, om *outMsg) {
	if om.wire.Kind == core.KindRequest && !om.cancelled {
		es.bounceable[om.wire.Seq] = om
	}
	if om.delivered {
		return
	}
	om.delivered = true
	delete(es.outbound, om.wire.Kind)
	tr.sink(core.Event{Kind: core.EvDelivered, End: es.ref, Tag: om.tag})
	tr.adjustReceive(p, es)
}

// enqueueKernel queues a kernel message for the end's single send slot.
func (tr *Transport) enqueueKernel(p *sim.Proc, es *endState, km *kmsg) {
	es.sendQ = append(es.sendQ, km)
	tr.pumpSend(p, es)
}

// sendCtrl queues a control message at the front of the send queue.
// extra carries protocol payload (the bounced request's seq for
// RETRY/FORBID).
func (tr *Transport) sendCtrl(p *sim.Proc, es *endState, c ctrl, enclosure charlotte.EndRef, extra []byte) {
	km := &kmsg{payload: append([]byte{byte(c)}, extra...), enclosure: enclosure, onSent: func(*sim.Proc, bool) {}}
	// Control messages preempt queued data packets.
	es.sendQ = append([]*kmsg{km}, es.sendQ...)
	tr.pumpSend(p, es)
}

// pumpSend starts the next kernel send if the slot is free. State is
// updated before the (parking) kernel call so interleaved contexts see a
// busy slot.
func (tr *Transport) pumpSend(p *sim.Proc, es *endState) {
	if es.sendBusy || es.dead || len(es.sendQ) == 0 {
		return
	}
	km := es.sendQ[0]
	es.sendQ = es.sendQ[0:copy(es.sendQ, es.sendQ[1:])]
	es.sendBusy = true
	es.curSend = km
	st := tr.kp.Send(p, es.ref, km.payload, km.enclosure)
	if st != charlotte.OK {
		es.sendBusy = false
		es.curSend = nil
		km.onSent(p, false)
		if st == charlotte.Destroyed {
			tr.endDied(es)
		}
		return
	}
	tr.c.kernelSends.Inc()
}

// handleCompletion is the pump's dispatcher for kernel Wait results.
func (tr *Transport) handleCompletion(p *sim.Proc, d charlotte.Description) {
	es, ok := tr.ends[d.End]
	if !ok {
		return
	}
	if d.Dir == charlotte.SendDir {
		es.sendBusy = false
		km := es.curSend
		es.curSend = nil
		if d.Status == charlotte.Destroyed {
			tr.endDied(es)
			return
		}
		if km != nil {
			km.onSent(p, d.Status == charlotte.OK)
		}
		tr.pumpSend(p, es)
		return
	}
	// Receive completion.
	es.recvPosted = false
	if d.Status == charlotte.Destroyed {
		tr.endDied(es)
		return
	}
	if d.Status == charlotte.OK || d.Status == charlotte.Truncated {
		tr.handleInbound(p, es, d)
	}
	tr.adjustReceive(p, es)
}

// endDied propagates link death into the run-time package.
func (tr *Transport) endDied(es *endState) {
	if es.dead {
		return
	}
	es.dead = true
	for _, om := range es.outbound {
		if !om.delivered {
			tr.sink(core.Event{Kind: core.EvSendFailed, End: es.ref, Tag: om.tag, Err: core.ErrLinkDestroyed})
		}
	}
	es.outbound = make(map[core.MsgKind]*outMsg)
	es.stashed = nil
	es.bounceable = make(map[uint64]*outMsg)
	tr.sink(core.Event{Kind: core.EvLinkDead, End: es.ref, Err: core.ErrLinkDestroyed})
}

// handleInbound runs the receive-side protocol.
func (tr *Transport) handleInbound(p *sim.Proc, es *endState, d charlotte.Description) {
	if len(d.Data) == 0 {
		return
	}
	c := ctrl(d.Data[0])
	body := d.Data[1:]
	switch c {
	case ctrlData:
		tr.handleDataPacket(p, es, d, body)
	case ctrlEnc:
		tr.handleEncPacket(es, d)
	case ctrlGoahead:
		for _, om := range es.outbound {
			if om.awaitGoahead {
				om.awaitGoahead = false
				om.nextEnc = 1
				tr.shipNextEnc(p, es, om)
				break
			}
		}
	case ctrlRetry:
		// Our request came back; the peer has no receive posted now, so
		// resending will be delayed by the kernel until it re-opens.
		tr.recoverReturnedEnclosure(d)
		tr.requeueBouncedRequest(es, parseSeq(body))
		tr.resendStashed(p, es)
	case ctrlForbid:
		es.peerForbade = true
		tr.recoverReturnedEnclosure(d)
		tr.requeueBouncedRequest(es, parseSeq(body))
	case ctrlAllow:
		es.peerForbade = false
		tr.resendStashed(p, es)
	}
}

// requeueBouncedRequest pulls the bounced request (identified by seq in
// the RETRY/FORBID payload) back into the stash for resending.
func (tr *Transport) requeueBouncedRequest(es *endState, seq uint64) {
	om := es.bounceable[seq]
	if om == nil {
		// Maybe still protocol-in-flight (multi-enclosure awaiting
		// goahead that turned into a bounce instead).
		if o, ok := es.outbound[core.KindRequest]; ok && o.wire.Seq == seq {
			om = o
			om.awaitGoahead = false
		}
	}
	if om == nil || om.cancelled {
		return
	}
	delete(es.bounceable, seq)
	for _, s := range es.stashed {
		if s == om {
			return
		}
	}
	om.firstSent = false
	es.stashed = append(es.stashed, om)
}

// seqBytes encodes a request seq for a bounce payload.
func seqBytes(seq uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(seq >> (8 * i))
	}
	return b
}

// parseSeq decodes a bounce payload.
func parseSeq(b []byte) uint64 {
	var v uint64
	for i := 0; i < len(b) && i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// handleDataPacket processes the first packet of a LYNX message.
func (tr *Transport) handleDataPacket(p *sim.Proc, es *endState, d charlotte.Description, body []byte) {
	wire, nencl, err := core.DecodeWire(body)
	if err != nil {
		return
	}
	if wire.Kind == core.KindReply {
		// The reply is the request's true top-level acknowledgment: the
		// request with this seq can no longer bounce.
		delete(es.bounceable, wire.Seq)
	}
	wanted := (wire.Kind == core.KindRequest && es.wantReq) ||
		(wire.Kind == core.KindReply && es.wantRep)
	if !wanted {
		tr.c.unwanted.Inc()
		tr.emit(obs.KindUnwanted, es, wire.Seq, wire.Kind.String())
		if wire.Kind == core.KindReply {
			// Replies can always be discarded if unwanted (§3.2.1); no
			// acknowledgment exists to tell the sender.
			tr.c.droppedReplies.Inc()
			return
		}
		// Unwanted request: bounce it. If we are awaiting a reply we
		// must keep our receive posted, so a bare RETRY would invite
		// endless retransmission — send FORBID instead.
		if es.wantRep {
			tr.c.forbids.Inc()
			tr.emit(obs.KindForbid, es, wire.Seq, "")
			es.weForbade = true
			tr.sendCtrl(p, es, ctrlForbid, d.Enclosure, seqBytes(wire.Seq))
		} else {
			tr.c.retries.Inc()
			tr.emit(obs.KindRetry, es, wire.Seq, "")
			tr.sendCtrl(p, es, ctrlRetry, d.Enclosure, seqBytes(wire.Seq))
		}
		return
	}
	var got []charlotte.EndRef
	if !d.Enclosure.Nil() {
		got = append(got, d.Enclosure)
	}
	if nencl > len(got) {
		// Multi-enclosure: assemble, and for requests tell the sender to
		// go ahead with the remaining ends.
		es.partial = &inAssembly{wire: wire, needEncl: nencl, gotEncl: got}
		if wire.Kind == core.KindRequest {
			tr.c.goaheads.Inc()
			tr.emit(obs.KindGoahead, es, wire.Seq, "")
			tr.sendCtrl(p, es, ctrlGoahead, charlotte.EndRef{}, nil)
		}
		return
	}
	tr.finishInbound(es, wire, got)
}

// handleEncPacket attaches one more enclosure to the partial message.
func (tr *Transport) handleEncPacket(es *endState, d charlotte.Description) {
	pa := es.partial
	if pa == nil || d.Enclosure.Nil() {
		return
	}
	pa.gotEncl = append(pa.gotEncl, d.Enclosure)
	if len(pa.gotEncl) >= pa.needEncl {
		es.partial = nil
		tr.finishInbound(es, pa.wire, pa.gotEncl)
	}
}

// finishInbound surfaces a complete wanted message to the run-time
// package.
func (tr *Transport) finishInbound(es *endState, wire *core.WireMsg, encl []charlotte.EndRef) {
	wire.Encl = make([]core.TransEnd, len(encl))
	for i, ref := range encl {
		tr.ensureEnd(ref)
		wire.Encl[i] = ref
	}
	tr.sink(core.Event{Kind: core.EvIncoming, End: es.ref, Msg: wire})
}

// recoverReturnedEnclosure re-adopts an end the peer sent back in a
// RETRY/FORBID bounce.
func (tr *Transport) recoverReturnedEnclosure(d charlotte.Description) {
	if !d.Enclosure.Nil() {
		tr.ensureEnd(d.Enclosure)
	}
}

// resendStashed re-ships bounced requests.
func (tr *Transport) resendStashed(p *sim.Proc, es *endState) {
	if es.peerForbade {
		return
	}
	stash := es.stashed
	es.stashed = nil
	for _, om := range stash {
		// delivered does NOT disqualify: a bounced request has already
		// had its (provisional) EvDelivered and must still be resent.
		if om.cancelled {
			continue
		}
		tr.c.resentRequests.Inc()
		tr.shipFirstPacket(p, es, om)
	}
}

// CancelSend implements core.Transport.
func (tr *Transport) CancelSend(te core.TransEnd, tag uint64) bool {
	ref := te.(charlotte.EndRef)
	es := tr.ensureEnd(ref)
	for kind, om := range es.outbound {
		if om.tag != tag {
			continue
		}
		om.cancelled = true
		delete(es.outbound, kind)
		// Remove from stash if bounced.
		for i, s := range es.stashed {
			if s == om {
				es.stashed = append(es.stashed[:i], es.stashed[i+1:]...)
				break
			}
		}
		if om.firstSent {
			// First packet already received by the peer: too late.
			tr.c.failedCancels.Inc()
			return false
		}
		// Maybe still occupying our kernel send slot: try to recall it.
		if es.sendBusy && es.curSend != nil && es.curSend.isData {
			st := tr.kp.Cancel(tr.proc, es.ref, charlotte.SendDir)
			if st == charlotte.OK {
				es.sendBusy = false
				es.curSend = nil
				tr.pumpSend(tr.proc, es)
				return true
			}
			tr.c.failedCancels.Inc()
			return false
		}
		// Still in the binding queue: remove it.
		for i, km := range es.sendQ {
			if km.isData {
				es.sendQ = append(es.sendQ[:i], es.sendQ[i+1:]...)
				break
			}
		}
		return true
	}
	return false
}

// Shutdown implements core.Transport: kernel-level process termination
// destroys all links; the pump is stopped.
func (tr *Transport) Shutdown() {
	if tr.dead {
		return
	}
	tr.dead = true
	tr.kp.Terminate()
	if tr.pump != nil {
		tr.pump.Kill()
	}
}
