package chbind_test

import (
	"errors"
	"fmt"
	"testing"

	chbind "repro/internal/bind/charlotte"
	"repro/internal/calib"
	"repro/internal/charlotte"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// rig assembles a Charlotte kernel plus two LYNX processes joined by a
// boot link.
type rig struct {
	env    *sim.Env
	kernel *charlotte.Kernel
	trA    *chbind.Transport
	trB    *chbind.Transport
}

func newRig() (*rig, charlotte.EndRef, charlotte.EndRef) {
	env := sim.NewEnv(1)
	net := netsim.NewTokenRing(20)
	k := charlotte.NewKernel(env, net, calib.DefaultCharlotte())
	kpA := k.NewProcess(0)
	kpB := k.NewProcess(1)
	ea, eb := k.BootLink(kpA, kpB)
	r := &rig{
		env:    env,
		kernel: k,
		trA:    chbind.New(env, kpA, 4096),
		trB:    chbind.New(env, kpB, 4096),
	}
	return r, ea, eb
}

// newPair builds the rig and both processes in one call.
func newPair(t *testing.T, mainA, mainB func(*core.Thread, *core.End)) (*rig, *core.Process, *core.Process) {
	r, ea, eb := newRig()
	costs := calib.DefaultCharlotteRuntime()
	pa := core.NewProcess(r.env, "A", r.trA, costs, func(th *core.Thread) {
		mainA(th, th.AdoptBootEnd(r.trA.AdoptBootEnd(ea)))
	})
	pb := core.NewProcess(r.env, "B", r.trB, costs, func(th *core.Thread) {
		mainB(th, th.AdoptBootEnd(r.trB.AdoptBootEnd(eb)))
	})
	return r, pa, pb
}

func TestCharlotteSimpleRPC(t *testing.T) {
	var rtt sim.Duration
	r, _, _ := newPair(t,
		func(th *core.Thread, e *core.End) {
			start := th.Now()
			reply, err := th.Connect(e, "echo", core.Msg{Data: []byte("ping")})
			if err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			rtt = sim.Duration(th.Now() - start)
			if string(reply.Data) != "ping" {
				t.Errorf("reply %q", reply.Data)
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Reply(req, core.Msg{Data: req.Data()})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	ms := rtt.Milliseconds()
	// Paper: simple remote operation ≈ 57 ms under LYNX on Charlotte.
	if ms < 50 || ms > 64 {
		t.Fatalf("LYNX/Charlotte RTT = %.2f ms, want ≈ 57 ms", ms)
	}
}

func TestCharlottePayloadSlope(t *testing.T) {
	// 1000 bytes each way should land near the paper's 65 ms.
	var rtt sim.Duration
	payload := make([]byte, 1000)
	r, _, _ := newPair(t,
		func(th *core.Thread, e *core.End) {
			start := th.Now()
			if _, err := th.Connect(e, "echo", core.Msg{Data: payload}); err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			rtt = sim.Duration(th.Now() - start)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Reply(req, core.Msg{Data: req.Data()})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	ms := rtt.Milliseconds()
	if ms < 58 || ms > 72 {
		t.Fatalf("LYNX/Charlotte 1000B RTT = %.2f ms, want ≈ 65 ms", ms)
	}
}

func TestCharlotteSingleEnclosureMove(t *testing.T) {
	r, _, _ := newPair(t,
		func(th *core.Thread, e *core.End) {
			mine, theirs, err := th.NewLink()
			if err != nil {
				t.Errorf("NewLink: %v", err)
				return
			}
			if _, err := th.Connect(e, "take", core.Msg{Links: []*core.End{theirs}}); err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			reply, err := th.Connect(mine, "over-moved", core.Msg{Data: []byte("x")})
			if err != nil {
				t.Errorf("Connect over moved link: %v", err)
				return
			}
			if string(reply.Data) != "x!" {
				t.Errorf("reply %q", reply.Data)
			}
			th.Destroy(mine)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			req, err := th.Receive(e)
			if err != nil {
				t.Errorf("Receive: %v", err)
				return
			}
			if len(req.Links()) != 1 {
				t.Errorf("enclosures: %d", len(req.Links()))
				return
			}
			th.Serve(req.Links()[0], func(st *core.Thread, r2 *core.Request) {
				st.Reply(r2, core.Msg{Data: append(r2.Data(), '!')})
			})
			th.Reply(req, core.Msg{})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCharlotteMultiEnclosureUsesGoaheadAndEnc(t *testing.T) {
	// Moving 3 ends in one request: first packet + goahead + 2 enc
	// packets (figure 2).
	const nLinks = 3
	r, _, _ := newPair(t,
		func(th *core.Thread, e *core.End) {
			var keep, give []*core.End
			for i := 0; i < nLinks; i++ {
				m, tother, err := th.NewLink()
				if err != nil {
					t.Errorf("NewLink: %v", err)
					return
				}
				keep = append(keep, m)
				give = append(give, tother)
			}
			if _, err := th.Connect(e, "takeN", core.Msg{Links: give}); err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			// All three moved links must work.
			for i, m := range keep {
				reply, err := th.Connect(m, "ping", core.Msg{Data: []byte{byte(i)}})
				if err != nil {
					t.Errorf("link %d: %v", i, err)
					continue
				}
				if len(reply.Data) != 1 || reply.Data[0] != byte(i)+1 {
					t.Errorf("link %d reply %v", i, reply.Data)
				}
			}
			for _, m := range keep {
				th.Destroy(m)
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			req, err := th.Receive(e)
			if err != nil {
				t.Errorf("Receive: %v", err)
				return
			}
			if len(req.Links()) != nLinks {
				t.Errorf("got %d enclosures, want %d", len(req.Links()), nLinks)
			}
			for _, l := range req.Links() {
				th.Serve(l, func(st *core.Thread, r2 *core.Request) {
					st.Reply(r2, core.Msg{Data: []byte{r2.Data()[0] + 1}})
				})
			}
			th.Reply(req, core.Msg{})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	st := r.trA.Stats()
	if st.EncPackets != nLinks-1 {
		t.Errorf("enc packets = %d, want %d", st.EncPackets, nLinks-1)
	}
	if r.trB.Stats().Goaheads != 1 {
		t.Errorf("goaheads = %d, want 1", r.trB.Stats().Goaheads)
	}
}

func TestCharlotteMultiEnclosureReplyNoGoahead(t *testing.T) {
	// Replies with several enclosures need no goahead (always wanted).
	r, _, _ := newPair(t,
		func(th *core.Thread, e *core.End) {
			reply, err := th.Connect(e, "gimme", core.Msg{})
			if err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			if len(reply.Links) != 2 {
				t.Errorf("reply enclosures = %d", len(reply.Links))
			}
			for _, l := range reply.Links {
				th.Destroy(l)
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				_, g1, _ := st.NewLink()
				_, g2, _ := st.NewLink()
				st.Reply(req, core.Msg{Links: []*core.End{g1, g2}})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if r.trB.Stats().EncPackets != 1 {
		t.Errorf("enc packets = %d, want 1", r.trB.Stats().EncPackets)
	}
	if r.trA.Stats().Goaheads != 0 {
		t.Errorf("goaheads = %d, want 0", r.trA.Stats().Goaheads)
	}
}

func TestCharlotteUnwantedRequestBounced(t *testing.T) {
	// B requests an operation on the same link in the reverse direction
	// while A awaits a reply with its request queue closed: A receives
	// B's request unintentionally and must FORBID (§3.2.1 scenario 1).
	r, _, _ := newPair(t,
		func(th *core.Thread, e *core.End) {
			// A connects; its request queue stays closed.
			if _, err := th.Connect(e, "svc", core.Msg{}); err != nil {
				t.Errorf("A connect: %v", err)
			}
			// Now open the queue and serve B's reverse request.
			req, err := th.Receive(e)
			if err != nil {
				t.Errorf("A receive: %v", err)
				return
			}
			if err := th.Reply(req, core.Msg{Data: []byte("late-ok")}); err != nil {
				t.Errorf("A reply: %v", err)
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			// B: serve A's request, but first fire a reverse request from
			// another coroutine so it races ahead of the reply.
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Sleep(200 * sim.Millisecond) // let the reverse request go first
				st.Reply(req, core.Msg{})
			})
			rep, err := th.Connect(e, "reverse", core.Msg{})
			if err != nil {
				t.Errorf("B reverse connect: %v", err)
				return
			}
			if string(rep.Data) != "late-ok" {
				t.Errorf("reverse reply %q", rep.Data)
			}
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	// A must have bounced at least one unwanted message with FORBID
	// (it was awaiting a reply, so RETRY alone would not suppress
	// retransmission).
	if r.trA.Stats().UnwantedMessages == 0 {
		t.Error("no unwanted messages recorded at A")
	}
	if r.trA.Stats().Forbids == 0 {
		t.Error("no FORBID sent by A")
	}
	if r.trA.Stats().Allows == 0 {
		t.Error("no ALLOW sent by A")
	}
	if r.trB.Stats().ResentRequests == 0 {
		t.Error("B never resent the forbidden request")
	}
}

func TestCharlotteDestroyNotifiesPeer(t *testing.T) {
	var errB error
	r, _, _ := newPair(t,
		func(th *core.Thread, e *core.End) {
			th.Sleep(10 * sim.Millisecond)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			_, errB = th.Connect(e, "op", core.Msg{})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(errB, core.ErrLinkDestroyed) {
		t.Fatalf("B error = %v, want ErrLinkDestroyed", errB)
	}
}

func TestCharlotteCrashDestroysLinks(t *testing.T) {
	var errA error
	r, _, pb := newPair(t,
		func(th *core.Thread, e *core.End) {
			_, errA = th.Connect(e, "op", core.Msg{})
		},
		func(th *core.Thread, e *core.End) {
			th.Sleep(5 * sim.Millisecond)
			th.Process().Crash()
			th.Sleep(time1)
		},
	)
	_ = pb
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(errA, core.ErrLinkDestroyed) {
		t.Fatalf("A error = %v, want ErrLinkDestroyed", errA)
	}
}

const time1 = sim.Millisecond

func TestCharlotteManySequentialOps(t *testing.T) {
	const n = 20
	got := 0
	r, _, _ := newPair(t,
		func(th *core.Thread, e *core.End) {
			for i := 0; i < n; i++ {
				reply, err := th.Connect(e, "add", core.Msg{Data: []byte{byte(i)}})
				if err != nil {
					t.Errorf("op %d: %v", i, err)
					return
				}
				if reply.Data[0] != byte(i+1) {
					t.Errorf("op %d: got %d", i, reply.Data[0])
				}
				got++
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Reply(req, core.Msg{Data: []byte{req.Data()[0] + 1}})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("completed %d/%d ops", got, n)
	}
	// Two kernel messages per op in the simple case (plus boot noise).
	perOp := float64(r.kernel.Stats().Messages) / float64(n)
	if perOp > 2.5 {
		t.Errorf("%.1f kernel messages per simple op, want ≈ 2", perOp)
	}
}

func TestCharlotteAbortedConnectorDropsReply(t *testing.T) {
	// The client coroutine aborts after its request is received; the
	// client keeps a receive posted (its request queue is open), so the
	// no-longer-wanted reply is physically received and silently
	// discarded — and the server's Reply completes WITHOUT an exception.
	// This is §3.2.2's documented Charlotte deviation: "the server should
	// feel an exception... Such exceptions are not provided under
	// Charlotte".
	var replyErr error
	replied := false
	r, _, _ := newPair(t,
		func(th *core.Thread, e *core.End) {
			victim := th.Fork("victim", func(tv *core.Thread) {
				tv.Connect(e, "slow", core.Msg{})
			})
			th.Sleep(100 * sim.Millisecond) // request delivered; server replying slowly
			th.Abort(victim)
			// Keep a kernel receive posted so the unwanted reply actually
			// arrives (open request queue).
			th.OpenRequests(e)
			th.Sleep(400 * sim.Millisecond) // reply arrives, gets dropped
			th.CloseRequests(e)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Sleep(150 * sim.Millisecond)
				replyErr = st.Reply(req, core.Msg{})
				replied = true
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !replied {
		t.Fatal("server never completed its reply")
	}
	if replyErr != nil {
		t.Fatalf("server felt %v; Charlotte must NOT deliver reply exceptions", replyErr)
	}
	if r.trA.Stats().DroppedReplies == 0 {
		t.Fatal("reply was not recorded as dropped")
	}
}

func TestCharlotteStatsString(t *testing.T) {
	var s chbind.Stats
	_ = fmt.Sprintf("%+v", s)
}
