package cli

import (
	"bytes"
	"errors"
	"testing"
)

// capture routes the package seams into a buffer and records the exit
// code instead of terminating.
func capture(t *testing.T, f func()) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	code := -1
	oldErr, oldExit := Stderr, Exit
	Stderr, Exit = &buf, func(c int) { code = c }
	defer func() { Stderr, Exit = oldErr, oldExit }()
	f()
	return buf.String(), code
}

func TestUsagefExitsTwo(t *testing.T) {
	out, code := capture(t, func() { Usagef("tool", "bad flag %q", "-x") })
	if code != ExitUsage {
		t.Fatalf("exit = %d, want %d", code, ExitUsage)
	}
	if want := "tool: bad flag \"-x\"\n"; out != want {
		t.Fatalf("stderr = %q, want %q", out, want)
	}
}

func TestFailfExitsOne(t *testing.T) {
	out, code := capture(t, func() { Failf("tool", "boom") })
	if code != ExitFailure {
		t.Fatalf("exit = %d, want %d", code, ExitFailure)
	}
	if want := "tool: boom\n"; out != want {
		t.Fatalf("stderr = %q, want %q", out, want)
	}
}

func TestChecksPassThroughNil(t *testing.T) {
	out, code := capture(t, func() {
		Check("tool", nil)
		CheckUsage("tool", nil)
	})
	if out != "" || code != -1 {
		t.Fatalf("nil error must be a no-op, got (%q, %d)", out, code)
	}
	_, code = capture(t, func() { CheckUsage("tool", errors.New("e")) })
	if code != ExitUsage {
		t.Fatalf("CheckUsage exit = %d, want %d", code, ExitUsage)
	}
	_, code = capture(t, func() { Check("tool", errors.New("e")) })
	if code != ExitFailure {
		t.Fatalf("Check exit = %d, want %d", code, ExitFailure)
	}
}
