// Package cli fixes one exit-code convention for every repro binary:
//
//	exit 2 — usage error: bad flags or arguments; the invocation itself
//	         is wrong, rerunning it unchanged cannot succeed.
//	exit 1 — runtime failure: the invocation was well-formed but the
//	         work failed (simulation error, gate regression, I/O).
//	exit 0 — success.
//
// Both paths print one "tool: message" line to stderr, keeping stdout
// clean for machine-readable output (-json and friends).
package cli

import (
	"fmt"
	"io"
	"os"
)

// Exit codes.
const (
	ExitFailure = 1
	ExitUsage   = 2
)

// Stderr and Exit are seams for tests; production code never touches
// them.
var (
	Stderr io.Writer = os.Stderr
	Exit             = os.Exit
)

// Usagef reports a command-line usage error and exits 2.
func Usagef(tool, format string, args ...any) {
	fmt.Fprintf(Stderr, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	Exit(ExitUsage)
}

// Failf reports a runtime failure and exits 1.
func Failf(tool, format string, args ...any) {
	fmt.Fprintf(Stderr, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	Exit(ExitFailure)
}

// CheckUsage exits 2 with the error when err is non-nil.
func CheckUsage(tool string, err error) {
	if err != nil {
		Usagef(tool, "%v", err)
	}
}

// Check exits 1 with the error when err is non-nil.
func Check(tool string, err error) {
	if err != nil {
		Failf(tool, "%v", err)
	}
}
