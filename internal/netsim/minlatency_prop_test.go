package netsim

import (
	"testing"

	"repro/internal/sim"
)

// TestMinLatencyBoundsDeliveryProperty pins the conservative bound the
// finite-lookahead sharding leans on: over randomized ring and bus
// configurations and seeded traffic, MinLatency() never exceeds any
// observed cross-node delivery delay — neither on the parent medium nor
// on any per-group segment produced by Partition.
func TestMinLatencyBoundsDeliveryProperty(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		rng := sim.NewRand(seed)

		ring := NewTokenRing(2 + rng.Intn(30))
		ring.BitRate = int64(1+rng.Intn(100)) * 1_000_000
		ring.HopLatency = sim.Duration(rng.Intn(10)) * sim.Microsecond
		ring.FrameOverhead = rng.Intn(64)

		bus := NewCSMABus(sim.NewRand(seed * 7))
		bus.BitRate = int64(1+rng.Intn(20)) * 500_000
		bus.SenseDelay = sim.Duration(rng.Intn(200)) * sim.Microsecond
		bus.Backoff = sim.Duration(1+rng.Intn(800)) * sim.Microsecond
		bus.FrameOver = rng.Intn(32)

		nets := []Network{ring, bus}
		// Segments must honor the same bound: the parent's MinLatency is
		// the lookahead the partitioner quotes for every group.
		for _, seg := range ring.Partition(1 + rng.Intn(3)) {
			nets = append(nets, seg)
		}
		for _, seg := range bus.Partition(1 + rng.Intn(3)) {
			nets = append(nets, seg)
		}

		for _, n := range nets {
			min := MinLatency(n)
			if min <= 0 {
				t.Fatalf("seed %d: %s MinLatency = %v, want > 0", seed, n.Name(), min)
			}
			now := sim.Time(0)
			for i := 0; i < 200; i++ {
				src := NodeID(rng.Intn(32))
				dst := NodeID(rng.Intn(32))
				nbytes := rng.Intn(8192)
				var d sim.Duration
				if rng.Bool(0.2) {
					d = n.BroadcastTime(now, src, nbytes)
					if d < 0 {
						continue // medium has no broadcast
					}
				} else {
					d = n.SendTime(now, src, dst, nbytes)
				}
				if d < min {
					t.Fatalf("seed %d: %s delivery %v < MinLatency %v (iter %d, %dB)",
						seed, n.Name(), d, min, i, nbytes)
				}
				// Advance unevenly so some sends find the medium busy and
				// some find it idle.
				now += sim.Time(rng.DurationN(2 * min))
			}
		}
	}
}

// TestPartitionSegments pins the segment contract: config is inherited,
// per-segment rng streams are forked in segment-index order (so they
// depend only on the partition, not on scheduling), and the parent's
// Stats() aggregates parent-plus-segment traffic.
func TestPartitionSegments(t *testing.T) {
	mk := func() *CSMABus { return NewCSMABus(sim.NewRand(42)) }

	// Same partition twice from identically-seeded parents → segments
	// draw identical streams.
	a, b := mk(), mk()
	as, bs := a.Partition(3), b.Partition(3)
	for i := range as {
		for j := 0; j < 8; j++ {
			if x, y := as[i].rng.Uint64(), bs[i].rng.Uint64(); x != y {
				t.Fatalf("segment %d draw %d differs across identical partitions", i, j)
			}
		}
	}

	bus := mk()
	segs := bus.Partition(2)
	if segs[0].BitRate != bus.BitRate || segs[0].SenseDelay != bus.SenseDelay ||
		segs[0].Backoff != bus.Backoff || segs[0].FrameOver != bus.FrameOver ||
		segs[0].LossRate != bus.LossRate {
		t.Fatalf("segment did not inherit parent config")
	}
	bus.SendTime(0, 0, 1, 100)
	segs[0].SendTime(0, 2, 3, 200)
	segs[1].SendTime(0, 4, 5, 300)
	st := bus.Stats()
	if st.Messages != 3 || st.Bytes != 600 {
		t.Fatalf("aggregated stats = %+v, want 3 msgs / 600 bytes", *st)
	}
	// Segment occupancy is private: traffic on one segment leaves its
	// sibling's reservation untouched.
	if segs[1].m.busyUntil == segs[0].m.busyUntil && segs[0].m.busyUntil != 0 {
		// Both sent different sizes at t=0; equal busyUntil would mean a
		// shared reservation. (Different serialization times ⇒ different
		// completion instants.)
		t.Fatalf("segments appear to share occupancy state")
	}

	ring := NewTokenRing(8)
	rsegs := ring.Partition(2)
	if rsegs[0].Nodes != 8 || rsegs[0].BitRate != ring.BitRate {
		t.Fatalf("ring segment did not inherit parent config")
	}
	ring.SendTime(0, 0, 1, 10)
	rsegs[0].SendTime(0, 0, 1, 10)
	if ring.Stats().Messages != 2 {
		t.Fatalf("ring aggregated messages = %d, want 2", ring.Stats().Messages)
	}

	bp := NewBackplane()
	bsegs := bp.Partition(2)
	bp.SendTime(0, 0, 1, 10)
	bsegs[1].SendTime(0, 0, 1, 10)
	if bp.Stats().Messages != 2 {
		t.Fatalf("backplane aggregated messages = %d, want 2", bp.Stats().Messages)
	}
}
