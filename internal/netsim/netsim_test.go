package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestTokenRingSerializationSlope(t *testing.T) {
	r := NewTokenRing(20)
	d0 := r.SendTime(0, 1, 2, 0)
	// Move past busy period before measuring again.
	now := sim.Time(sim.Second)
	d1k := r.SendTime(now, 1, 2, 1000)
	slope := d1k - d0
	// 1000 bytes at 10 Mbit/s = 800 µs.
	want := sim.Duration(800 * sim.Microsecond)
	if slope < want || slope > want+100*sim.Microsecond {
		t.Fatalf("per-1000B slope = %v, want ≈ %v", slope, want)
	}
}

func TestTokenRingContentionSerializes(t *testing.T) {
	r := NewTokenRing(20)
	first := r.SendTime(0, 1, 2, 10000)
	second := r.SendTime(0, 3, 4, 10000)
	if second <= first {
		t.Fatalf("concurrent transfers did not serialize: %v then %v", first, second)
	}
}

func TestTokenRingNoBroadcast(t *testing.T) {
	r := NewTokenRing(20)
	if r.BroadcastTime(0, 1, 100) >= 0 {
		t.Fatal("ring claims broadcast support")
	}
	if r.BroadcastDelivers(1) {
		t.Fatal("ring delivered a broadcast")
	}
}

func TestCSMASlowerThanRing(t *testing.T) {
	rng := sim.NewRand(1)
	b := NewCSMABus(rng)
	r := NewTokenRing(20)
	db := b.SendTime(0, 1, 2, 1000)
	dr := r.SendTime(0, 1, 2, 1000)
	if db <= dr {
		t.Fatalf("CSMA (%v) should be slower than ring (%v) for 1000B", db, dr)
	}
	// Roughly 10x media-rate ratio for large transfers.
	db8k := b.SendTime(sim.Time(sim.Second), 1, 2, 8000)
	dr8k := r.SendTime(sim.Time(sim.Second), 1, 2, 8000)
	ratio := float64(db8k) / float64(dr8k)
	if ratio < 5 || ratio > 15 {
		t.Fatalf("8KB media ratio = %.1f, want ≈ 10", ratio)
	}
}

func TestCSMABackoffUnderContention(t *testing.T) {
	rng := sim.NewRand(1)
	b := NewCSMABus(rng)
	idle := b.SendTime(0, 1, 2, 100)
	// Bus is now busy; a second send at the same instant must pay backoff
	// plus queueing.
	busy := b.SendTime(0, 3, 4, 100)
	if busy <= idle {
		t.Fatalf("no contention penalty: idle %v, busy %v", idle, busy)
	}
}

func TestCSMABroadcastLoss(t *testing.T) {
	rng := sim.NewRand(12345)
	b := NewCSMABus(rng)
	delivered := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if b.BroadcastDelivers(NodeID(i % 16)) {
			delivered++
		}
	}
	rate := float64(n-delivered) / n
	if rate < 0.005 || rate > 0.02 {
		t.Fatalf("broadcast loss rate %.4f, want ≈ 0.01", rate)
	}
}

func TestBackplaneFastAndLinear(t *testing.T) {
	bp := NewBackplane()
	d0 := bp.SendTime(0, 1, 2, 0)
	d2k := bp.SendTime(0, 1, 2, 2000)
	slope := d2k - d0
	want := 2000 * bp.PerByte
	if slope != want {
		t.Fatalf("slope %v, want %v", slope, want)
	}
	if d0 > 100*sim.Microsecond {
		t.Fatalf("backplane setup too slow: %v", d0)
	}
}

func TestBackplaneNoContention(t *testing.T) {
	bp := NewBackplane()
	a := bp.SendTime(0, 1, 2, 1000)
	b := bp.SendTime(0, 3, 4, 1000)
	if a != b {
		t.Fatalf("backplane transfers interfered: %v vs %v", a, b)
	}
}

func TestStatsAccumulate(t *testing.T) {
	r := NewTokenRing(20)
	r.SendTime(0, 1, 2, 100)
	r.SendTime(0, 2, 1, 200)
	s := r.Stats()
	if s.Messages != 2 || s.Bytes != 300 {
		t.Fatalf("stats %+v", s)
	}
	rng := sim.NewRand(1)
	b := NewCSMABus(rng)
	b.BroadcastTime(0, 1, 50)
	if b.Stats().Broadcasts != 1 || b.Stats().Messages != 0 {
		t.Fatalf("csma stats %+v", b.Stats())
	}
}

// Property: send times are always positive and monotone in message size
// on an idle medium.
func TestSendTimeMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a, b := int(aRaw), int(bRaw)
		if a > b {
			a, b = b, a
		}
		for _, n := range []Network{
			NewTokenRing(20),
			NewCSMABus(sim.NewRand(1)),
			NewBackplane(),
		} {
			// Use far-apart instants so the medium is idle for each probe.
			da := n.SendTime(0, 1, 2, a)
			db := n.SendTime(sim.Time(sim.Second)*100, 1, 2, b)
			if da <= 0 || db < da {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCSMABroadcastOccupiesBus(t *testing.T) {
	rng := sim.NewRand(1)
	b := NewCSMABus(rng)
	d := b.BroadcastTime(0, 1, 100)
	if d <= 0 {
		t.Fatal("broadcast took no time")
	}
	// The broadcast holds the medium: a following send queues.
	d2 := b.SendTime(0, 2, 3, 100)
	if d2 <= d {
		t.Fatalf("send did not queue behind broadcast: %v then %v", d, d2)
	}
	if b.Stats().Broadcasts != 1 {
		t.Fatalf("broadcast count %d", b.Stats().Broadcasts)
	}
}

func TestNetworkNames(t *testing.T) {
	if NewTokenRing(20).Name() != "token-ring" {
		t.Error("ring name")
	}
	if NewCSMABus(sim.NewRand(1)).Name() != "csma-bus" {
		t.Error("bus name")
	}
	if NewBackplane().Name() != "backplane" {
		t.Error("backplane name")
	}
}

func TestStatsString(t *testing.T) {
	r := NewTokenRing(20)
	r.SendTime(0, 1, 2, 64)
	s := r.Stats().String()
	if s == "" || len(s) < 10 {
		t.Fatalf("stats string %q", s)
	}
}

func TestBackplaneNoBroadcast(t *testing.T) {
	bp := NewBackplane()
	if bp.BroadcastTime(0, 1, 10) >= 0 || bp.BroadcastDelivers(1) {
		t.Fatal("backplane claims broadcast support")
	}
}
