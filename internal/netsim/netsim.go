// Package netsim models the three interconnects of the paper's testbeds:
//
//   - a 10 Mbit/s Proteon token ring (Crystal multicomputer, Charlotte),
//   - a 1 Mbit/s CSMA broadcast bus (SODA's PDP-11/23 network),
//   - the BBN Butterfly's shared-memory backplane (Chrysalis).
//
// Each model answers one question: starting now, how long until nbytes
// initiated at src are available at dst? The answer accounts for medium
// acquisition (token rotation, CSMA backoff), serialization at the link
// rate, and per-frame overhead. Contention is modeled by tracking when
// the medium frees up; concurrent senders queue behind one another.
//
// The models are deliberately analytic rather than packet-level: the
// paper's latencies are dominated by kernel CPU path length, and what the
// reproduction needs from the network is the correct per-byte slope and
// ordering of media speeds (10 Mbit ring vs 1 Mbit bus vs memory bus).
//
// # Parallel-execution coupling
//
// The conservative parallel engine (sim.EnterParallel) partitions procs
// into groups and needs two facts from a network model:
//
//   - A lookahead lower bound: MinLatency reports the smallest possible
//     delay between initiating a transfer and any remote effect. For a
//     model with per-frame serialization this is the zero-payload frame
//     time; it is a sound conservative window width because no message
//     can influence another node sooner.
//   - Whether the medium couples otherwise-independent node groups. As
//     built, the ring and bus do: every SendTime call reads and writes
//     one shared busyUntil reservation (and the bus draws from a shared
//     rng when found busy). Partition splits that shared state into
//     per-group SEGMENTS — clones sharing the parent's configuration but
//     each carrying its own occupancy reservation, its own rng stream
//     (forked from the parent in segment-index order, so the assignment
//     of streams to groups is a pure function of the partition, not of
//     worker scheduling), its own traffic counters, and its own fault
//     hook slot. A group that only ever talks to itself then touches
//     only its own segment, which is exactly the case the run-time
//     layer's partitioner arranges: groups are connected components of
//     the boot link graph, and processes in different components never
//     exchange frames. The finite MinLatency bound is what makes the
//     decomposition conservative — no un-modeled sub-lookahead coupling
//     exists between segments — and the parent's Stats() aggregates its
//     own counters with every segment's, so whole-run totals are
//     unchanged (read it after the run; mid-run aggregation would race
//     with concurrently-executing segments).
package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// NodeID identifies a machine on a network.
type NodeID int

// FaultOutcome is the injected fate of one frame, as decided by a
// FaultHook. The zero value means "deliver normally". Which fields a
// medium honors depends on its reliability model: the droppable
// networks (ring, bus) honor Drop (kernels retransmit), Dup (the ghost
// copy occupies the medium and is discarded), and Extra; the reliable
// backplane honors Extra and Stall and converts Drop into a doubled
// transfer (the hardware retries, it cannot lose a write).
type FaultOutcome struct {
	// Drop loses the frame; the sender's reliability layer retransmits.
	Drop bool
	// Dup ghost-duplicates the frame; the copy is charged to the medium
	// at delivery time and discarded by the receiver.
	Dup bool
	// Extra is added latency (reorder jitter, slow-node penalty).
	Extra sim.Duration
	// Stall is how long a reliable medium blocks before the transfer
	// proceeds (a partition on the backplane stalls until the heal).
	Stall sim.Duration
}

// FaultHook lets a fault injector intercept frames on a network. A nil
// hook (the default) leaves every code path — including the medium's
// rng draw sequence — byte-identical to an unfaulted run.
type FaultHook interface {
	// Frame decides the fate of one frame about to be charged wire time
	// wire. It is consulted once per transmission attempt (so a
	// retransmitted frame is re-judged).
	Frame(now sim.Time, src, dst NodeID, nbytes int, wire sim.Duration, broadcast bool) FaultOutcome
	// BroadcastLoss returns an override for the medium's broadcast loss
	// rate, or a negative value to keep the medium's default. Override
	// semantics: the returned rate replaces the default, it never
	// compounds with it, and the medium still spends exactly one rng
	// draw per reception — so a hook that mirrors the default rate is
	// byte-identical to no hook.
	BroadcastLoss() float64
}

// Network is the interface the kernel models use to charge wire time.
type Network interface {
	// Name identifies the model in traces and reports.
	Name() string
	// SendTime returns the duration from initiating a point-to-point
	// transfer of nbytes from src to dst until it is fully delivered,
	// given the medium's state at virtual time now. It also reserves the
	// medium for that transfer.
	SendTime(now sim.Time, src, dst NodeID, nbytes int) sim.Duration
	// BroadcastTime is SendTime for a broadcast frame. Networks that do
	// not support broadcast return a negative duration.
	BroadcastTime(now sim.Time, src NodeID, nbytes int) sim.Duration
	// BroadcastDelivers reports whether an unreliable broadcast frame is
	// actually seen by the given destination (SODA's discover loses
	// frames). Deterministic given the network's random source.
	BroadcastDelivers(dst NodeID) bool
	// SetFaultHook installs (or, with nil, removes) a fault injector.
	SetFaultHook(FaultHook)
	// FaultHook returns the installed injector, or nil. Kernels consult
	// it at each transmission site.
	FaultHook() FaultHook
	// Stats exposes traffic counters.
	Stats() *Stats
}

// faultable is the embeddable FaultHook slot shared by every network
// model.
type faultable struct {
	hook FaultHook
}

// SetFaultHook implements Network.
func (f *faultable) SetFaultHook(h FaultHook) { f.hook = h }

// FaultHook implements Network.
func (f *faultable) FaultHook() FaultHook { return f.hook }

// Stats accumulates traffic counters for a network.
type Stats struct {
	Messages   int64
	Broadcasts int64
	Bytes      int64
	// BusyTime is total virtual time the medium was occupied.
	BusyTime sim.Duration
}

// add accumulates o into s (segment aggregation).
func (s *Stats) add(o *Stats) {
	s.Messages += o.Messages
	s.Broadcasts += o.Broadcasts
	s.Bytes += o.Bytes
	s.BusyTime += o.BusyTime
}

func (s *Stats) String() string {
	return fmt.Sprintf("msgs=%d bcasts=%d bytes=%d busy=%v",
		s.Messages, s.Broadcasts, s.Bytes, s.BusyTime)
}

// medium tracks serialized occupancy of a shared channel.
type medium struct {
	busyUntil sim.Time
	stats     Stats
}

// reserve occupies the medium for tx starting no earlier than now+acq and
// returns the completion instant.
func (m *medium) reserve(now sim.Time, acq, tx sim.Duration) sim.Time {
	start := now + sim.Time(acq)
	if m.busyUntil > start {
		start = m.busyUntil
	}
	end := start + sim.Time(tx)
	m.busyUntil = end
	m.stats.BusyTime += tx
	return end
}

// TokenRing models the Proteon 10 Mbit/s ring: a sender waits for the
// token (half a rotation on average, deterministically charged), then
// holds the ring for the frame's serialization time.
type TokenRing struct {
	faultable
	m             medium
	Nodes         int
	BitRate       int64        // bits per second
	HopLatency    sim.Duration // per-station token forwarding latency
	FrameOverhead int          // header+trailer bytes per frame

	segs []*TokenRing // per-group segments (see Partition)
	agg  Stats        // cached aggregate for Stats() when segmented
}

// NewTokenRing creates a ring with the Crystal testbed's parameters:
// 20 nodes at 10 Mbit/s.
func NewTokenRing(nodes int) *TokenRing {
	return &TokenRing{
		Nodes:         nodes,
		BitRate:       10_000_000,
		HopLatency:    2 * sim.Microsecond,
		FrameOverhead: 16,
	}
}

// Name implements Network.
func (r *TokenRing) Name() string { return "token-ring" }

// SendTime implements Network.
func (r *TokenRing) SendTime(now sim.Time, src, dst NodeID, nbytes int) sim.Duration {
	acq := sim.Duration(r.Nodes/2) * r.HopLatency // mean token wait
	tx := r.serialize(nbytes)
	end := r.m.reserve(now, acq, tx)
	r.m.stats.Messages++
	r.m.stats.Bytes += int64(nbytes)
	return sim.Duration(end - now)
}

// BroadcastTime implements Network; the Proteon ring has no broadcast in
// our model.
func (r *TokenRing) BroadcastTime(sim.Time, NodeID, int) sim.Duration { return -1 }

// BroadcastDelivers implements Network.
func (r *TokenRing) BroadcastDelivers(NodeID) bool { return false }

// Stats implements Network. When the ring has been Partitioned, the
// returned snapshot aggregates the parent's own counters with every
// segment's; read it only after the run (aggregating mid-run would race
// with concurrently-executing segments).
func (r *TokenRing) Stats() *Stats {
	if len(r.segs) == 0 {
		return &r.m.stats
	}
	r.agg = r.m.stats
	for _, s := range r.segs {
		r.agg.add(s.Stats())
	}
	return &r.agg
}

// Partition splits the ring into k segments for conservative parallel
// execution: each segment shares the parent's configuration but has its
// own occupancy reservation, counters, and fault hook slot, so node
// groups that never exchange frames can drive their segments
// concurrently. The parent's Stats() aggregates over the segments.
func (r *TokenRing) Partition(k int) []*TokenRing {
	segs := make([]*TokenRing, k)
	for i := range segs {
		segs[i] = &TokenRing{
			Nodes:         r.Nodes,
			BitRate:       r.BitRate,
			HopLatency:    r.HopLatency,
			FrameOverhead: r.FrameOverhead,
		}
	}
	r.segs = append(r.segs, segs...)
	return segs
}

// MinLatency reports the smallest possible cross-node delay: even with
// the token in hand, an empty frame still serializes its header and
// trailer at the link rate.
func (r *TokenRing) MinLatency() sim.Duration { return r.serialize(0) }

func (r *TokenRing) serialize(nbytes int) sim.Duration {
	bits := int64(nbytes+r.FrameOverhead) * 8
	return sim.Duration(bits * int64(sim.Second) / r.BitRate)
}

// CSMABus models SODA's 1 Mbit/s contention bus. Acquisition costs a
// fixed carrier-sense delay plus exponential-ish backoff when the bus is
// busy; broadcast frames are unreliable with a configurable loss rate.
type CSMABus struct {
	faultable
	m          medium
	BitRate    int64
	SenseDelay sim.Duration
	Backoff    sim.Duration // mean extra wait when the bus is found busy
	FrameOver  int
	// LossRate is the default broadcast frame loss probability per
	// receiver.
	//
	// Deprecated: prefer a fault plan's bcast drop rule
	// (fault.BroadcastLoss), which overrides this field through the
	// FaultHook; the field remains as the unfaulted default.
	LossRate float64
	rng      *sim.Rand

	segs []*CSMABus // per-group segments (see Partition)
	agg  Stats      // cached aggregate for Stats() when segmented
}

// NewCSMABus creates the SODA testbed bus: 1 Mbit/s with 1% broadcast
// loss, using rng for loss decisions and backoff jitter.
func NewCSMABus(rng *sim.Rand) *CSMABus {
	return &CSMABus{
		BitRate:    1_000_000,
		SenseDelay: 50 * sim.Microsecond,
		Backoff:    400 * sim.Microsecond,
		FrameOver:  12,
		LossRate:   0.01,
		rng:        rng,
	}
}

// Name implements Network.
func (b *CSMABus) Name() string { return "csma-bus" }

// SendTime implements Network.
func (b *CSMABus) SendTime(now sim.Time, src, dst NodeID, nbytes int) sim.Duration {
	acq := b.SenseDelay
	if b.m.busyUntil > now {
		acq += b.Backoff/2 + b.rng.DurationN(b.Backoff)
	}
	tx := b.serialize(nbytes)
	end := b.m.reserve(now, acq, tx)
	b.m.stats.Messages++
	b.m.stats.Bytes += int64(nbytes)
	return sim.Duration(end - now)
}

// BroadcastTime implements Network.
func (b *CSMABus) BroadcastTime(now sim.Time, src NodeID, nbytes int) sim.Duration {
	d := b.SendTime(now, src, -1, nbytes)
	b.m.stats.Messages--
	b.m.stats.Broadcasts++
	return d
}

// BroadcastDelivers implements Network. An installed fault hook's
// BroadcastLoss overrides (replaces) the default LossRate; either way
// exactly one rng draw is consumed per reception, so installing a hook
// that mirrors the default rate leaves the run byte-identical.
func (b *CSMABus) BroadcastDelivers(NodeID) bool {
	rate := b.LossRate
	if b.hook != nil {
		if r := b.hook.BroadcastLoss(); r >= 0 {
			rate = r
		}
	}
	return !b.rng.Bool(rate)
}

// Stats implements Network. When the bus has been Partitioned, the
// returned snapshot aggregates the parent's own counters with every
// segment's; read it only after the run.
func (b *CSMABus) Stats() *Stats {
	if len(b.segs) == 0 {
		return &b.m.stats
	}
	b.agg = b.m.stats
	for _, s := range b.segs {
		b.agg.add(s.Stats())
	}
	return &b.agg
}

// Partition splits the bus into k segments for conservative parallel
// execution: each segment shares the parent's configuration but carries
// its own occupancy reservation, counters, fault hook slot, and — the
// part the byte-identity contract leans on — its own rng stream, forked
// from the parent's in segment-index order so the stream a group draws
// backoff jitter and broadcast losses from depends only on the
// partition, never on worker scheduling. The parent's Stats()
// aggregates over the segments.
func (b *CSMABus) Partition(k int) []*CSMABus {
	segs := make([]*CSMABus, k)
	for i := range segs {
		segs[i] = &CSMABus{
			BitRate:    b.BitRate,
			SenseDelay: b.SenseDelay,
			Backoff:    b.Backoff,
			FrameOver:  b.FrameOver,
			LossRate:   b.LossRate,
			rng:        b.rng.Fork(),
		}
	}
	b.segs = append(b.segs, segs...)
	return segs
}

// MinLatency reports the smallest possible cross-node delay: carrier
// sense on an idle bus plus the zero-payload frame time.
func (b *CSMABus) MinLatency() sim.Duration { return b.SenseDelay + b.serialize(0) }

func (b *CSMABus) serialize(nbytes int) sim.Duration {
	bits := int64(nbytes+b.FrameOver) * 8
	return sim.Duration(bits * int64(sim.Second) / b.BitRate)
}

// Backplane models the Butterfly switch: processor-to-memory transfers at
// memcpy speed with negligible acquisition and per-block overhead. The
// Butterfly's log-depth switch means senders rarely serialize; we model
// the switch as contention-free but charge a per-transfer setup cost.
type Backplane struct {
	faultable
	stats     Stats
	SetupCost sim.Duration
	PerByte   sim.Duration

	segs []*Backplane // per-group segments (see Partition)
	agg  Stats        // cached aggregate for Stats() when segmented
}

// NewBackplane creates a Butterfly-calibrated backplane (68000-era block
// copy through the switch).
func NewBackplane() *Backplane {
	return &Backplane{
		SetupCost: 20 * sim.Microsecond,
		PerByte:   420 * sim.Nanosecond, // one direction
	}
}

// Name implements Network.
func (bp *Backplane) Name() string { return "backplane" }

// SendTime implements Network.
func (bp *Backplane) SendTime(now sim.Time, src, dst NodeID, nbytes int) sim.Duration {
	bp.stats.Messages++
	bp.stats.Bytes += int64(nbytes)
	d := bp.SetupCost + sim.Duration(nbytes)*bp.PerByte
	bp.stats.BusyTime += d
	return d
}

// BroadcastTime implements Network.
func (bp *Backplane) BroadcastTime(sim.Time, NodeID, int) sim.Duration { return -1 }

// BroadcastDelivers implements Network.
func (bp *Backplane) BroadcastDelivers(NodeID) bool { return false }

// Stats implements Network. When the backplane has been Partitioned,
// the returned snapshot aggregates the parent's own counters with every
// segment's; read it only after the run.
func (bp *Backplane) Stats() *Stats {
	if len(bp.segs) == 0 {
		return &bp.stats
	}
	bp.agg = bp.stats
	for _, s := range bp.segs {
		bp.agg.add(s.Stats())
	}
	return &bp.agg
}

// Partition splits the backplane into k segments for conservative
// parallel execution. The switch model is contention-free, so the only
// shared mutable state is the counters and the fault hook slot; each
// segment gets its own of both. The parent's Stats() aggregates over
// the segments.
func (bp *Backplane) Partition(k int) []*Backplane {
	segs := make([]*Backplane, k)
	for i := range segs {
		segs[i] = &Backplane{SetupCost: bp.SetupCost, PerByte: bp.PerByte}
	}
	bp.segs = append(bp.segs, segs...)
	return segs
}

// MinLatency reports the smallest possible cross-node delay: the
// per-transfer switch setup cost.
func (bp *Backplane) MinLatency() sim.Duration { return bp.SetupCost }

// MinLatency reports a conservative lookahead for n: the smallest delay
// between initiating any transfer and its remote effect, or 0 when the
// model does not expose one (0 disables windowed parallelism). A
// positive MinLatency is what licenses splitting the medium into
// per-group segments (Partition): it certifies that the model has no
// sub-lookahead coupling between node groups beyond the occupancy and
// rng state the segments privatize.
func MinLatency(n Network) sim.Duration {
	type minLatency interface{ MinLatency() sim.Duration }
	if m, ok := n.(minLatency); ok {
		return m.MinLatency()
	}
	return 0
}
