package netsim

import (
	"testing"

	"repro/internal/sim"
)

func TestMinLatency(t *testing.T) {
	ring := NewTokenRing(10)
	if got := MinLatency(ring); got != ring.serialize(0) || got <= 0 {
		t.Fatalf("ring MinLatency = %v, want zero-payload frame time %v", got, ring.serialize(0))
	}
	bus := NewCSMABus(sim.NewRand(1))
	if got := MinLatency(bus); got != bus.SenseDelay+bus.serialize(0) || got <= 0 {
		t.Fatalf("bus MinLatency = %v", got)
	}
	bp := NewBackplane()
	if got := MinLatency(bp); got != bp.SetupCost || got <= 0 {
		t.Fatalf("backplane MinLatency = %v, want %v", got, bp.SetupCost)
	}
	// MinLatency must be a true lower bound on the models' SendTime.
	for _, n := range []Network{NewTokenRing(10), NewCSMABus(sim.NewRand(1)), NewBackplane()} {
		min := MinLatency(n)
		for _, nbytes := range []int{0, 1, 64, 4096} {
			if d := n.SendTime(0, 0, 1, nbytes); d < min {
				t.Fatalf("%s: SendTime(%d bytes) = %v < MinLatency %v", n.Name(), nbytes, d, min)
			}
		}
	}
	// A model without the hook reports 0 (parallel windows disabled).
	if got := MinLatency(&nullNet{}); got != 0 {
		t.Fatalf("hookless MinLatency = %v, want 0", got)
	}
}

type nullNet struct{ faultable }

func (nullNet) Name() string                                        { return "null" }
func (nullNet) SendTime(sim.Time, NodeID, NodeID, int) sim.Duration { return 0 }
func (nullNet) BroadcastTime(sim.Time, NodeID, int) sim.Duration    { return -1 }
func (nullNet) BroadcastDelivers(NodeID) bool                       { return false }
func (nullNet) Stats() *Stats                                       { return &Stats{} }
