package netsim

import (
	"testing"

	"repro/internal/sim"
)

// Exact queueing math: three senders initiating at the same instant on
// an idle ring each pay the token wait once, then serialize strictly
// behind medium.busyUntil — completion instants are acq + k*tx.
func TestMediumQueueingExact(t *testing.T) {
	r := NewTokenRing(20)
	const nbytes = 1000
	acq := sim.Duration(r.Nodes/2) * r.HopLatency
	tx := r.serialize(nbytes)
	for k := 1; k <= 3; k++ {
		got := r.SendTime(0, NodeID(k), NodeID(k+10), nbytes)
		want := acq + sim.Duration(k)*tx
		if got != want {
			t.Fatalf("sender %d completion = %v, want %v (acq %v + %d*tx %v)", k, got, want, acq, k, tx)
		}
	}
	if r.m.busyUntil != sim.Time(acq+3*tx) {
		t.Fatalf("busyUntil = %v, want %v", r.m.busyUntil, acq+3*tx)
	}
}

// A sender arriving after the medium has drained pays no queueing: only
// acquisition plus its own serialization.
func TestMediumIdleAfterDrain(t *testing.T) {
	r := NewTokenRing(20)
	const nbytes = 500
	r.SendTime(0, 1, 2, nbytes)
	later := sim.Time(sim.Second) // well past busyUntil
	got := r.SendTime(later, 3, 4, nbytes)
	want := sim.Duration(r.Nodes/2)*r.HopLatency + r.serialize(nbytes)
	if got != want {
		t.Fatalf("idle-medium send = %v, want %v", got, want)
	}
}

// BusyTime counts occupancy (serialization) only, not acquisition or
// queueing: after k transfers of n bytes it is exactly k*tx(n).
func TestMediumBusyTimeExact(t *testing.T) {
	r := NewTokenRing(20)
	const nbytes, k = 750, 4
	for i := 0; i < k; i++ {
		r.SendTime(0, NodeID(i), NodeID(i+10), nbytes)
	}
	if want := sim.Duration(k) * r.serialize(nbytes); r.Stats().BusyTime != want {
		t.Fatalf("BusyTime = %v, want %v", r.Stats().BusyTime, want)
	}

	rng := sim.NewRand(1)
	b := NewCSMABus(rng)
	b.SendTime(0, 1, 2, nbytes)
	b.SendTime(0, 3, 4, nbytes) // pays backoff, which must not count as busy
	if want := 2 * b.serialize(nbytes); b.Stats().BusyTime != want {
		t.Fatalf("CSMA BusyTime = %v, want %v", b.Stats().BusyTime, want)
	}
}

// Interleaved sends and broadcasts keep the CSMA counters consistent:
// Messages counts only point-to-point sends, Broadcasts only broadcast
// frames, and Bytes covers both.
func TestCSMABroadcastStatsConsistent(t *testing.T) {
	rng := sim.NewRand(2)
	b := NewCSMABus(rng)
	b.SendTime(0, 1, 2, 100)
	b.BroadcastTime(0, 1, 40)
	b.SendTime(0, 2, 3, 100)
	b.BroadcastTime(0, 3, 40)
	b.BroadcastTime(0, 4, 40)
	s := b.Stats()
	if s.Messages != 2 || s.Broadcasts != 3 {
		t.Fatalf("counters inconsistent after interleaving: %+v", s)
	}
	if s.Bytes != 2*100+3*40 {
		t.Fatalf("Bytes = %d, want %d", s.Bytes, 2*100+3*40)
	}
}

// Broadcasts occupy the bus like any frame: a broadcast storm makes a
// later sender queue behind the accumulated busyUntil exactly.
func TestCSMABroadcastQueuesExact(t *testing.T) {
	rng := sim.NewRand(3)
	b := NewCSMABus(rng)
	end := b.BroadcastTime(0, 1, 200) // idle bus: sense + tx
	if want := b.SenseDelay + b.serialize(200); end != want {
		t.Fatalf("idle broadcast = %v, want %v", end, want)
	}
	// The next frame finds the bus busy: it completes no earlier than the
	// broadcast's end plus its own serialization (backoff is jittered, so
	// bound rather than pin it).
	d2 := b.SendTime(0, 2, 3, 200)
	if min := end + b.serialize(200); d2 < min {
		t.Fatalf("send under-queued behind broadcast: %v, want >= %v", d2, min)
	}
}

// reserve is the single queueing primitive every medium shares: starts
// clamp to busyUntil, occupancy accumulates exactly.
func TestReserveSemantics(t *testing.T) {
	var m medium
	if end := m.reserve(100, 10, 20); end != 130 {
		t.Fatalf("idle reserve end = %v, want 130", end)
	}
	// Second reservation at the same instant queues behind busyUntil even
	// though now+acq (110) is earlier.
	if end := m.reserve(100, 10, 20); end != 150 {
		t.Fatalf("queued reserve end = %v, want 150", end)
	}
	// A reservation after the medium drains starts fresh at now+acq.
	if end := m.reserve(1000, 10, 20); end != 1030 {
		t.Fatalf("post-drain reserve end = %v, want 1030", end)
	}
	if m.stats.BusyTime != 60 {
		t.Fatalf("BusyTime = %v, want 60", m.stats.BusyTime)
	}
}
