package calib

import (
	"testing"

	"repro/internal/sim"
)

// These tests lock the *relationships* the calibration encodes: the
// absolute values are asserted end-to-end by internal/expt, but the
// structural facts below must hold for the fits to make sense at all.

func TestCharlotteFitStructure(t *testing.T) {
	c := DefaultCharlotte()
	rt := DefaultCharlotteRuntime()
	if c.KernelCall <= 0 || c.MessagePath <= 0 || c.PerByte <= 0 {
		t.Fatal("non-positive Charlotte cost")
	}
	// The kernel message path dominates the kernel call (that is why
	// Charlotte is slow end-to-end even for tight call loops).
	if c.MessagePath < c.KernelCall {
		t.Error("MessagePath should exceed KernelCall")
	}
	// Moving a link costs extra kernel work.
	if c.MoveAgreement <= 0 {
		t.Error("MoveAgreement must be positive")
	}
	// The runtime adds ~2ms per op in the paper; ours is of that order.
	if rt.PerOperation < sim.Millisecond || rt.PerOperation > 10*sim.Millisecond {
		t.Errorf("Charlotte runtime PerOperation = %v", rt.PerOperation)
	}
}

func TestSODAFitStructure(t *testing.T) {
	s := DefaultSODA()
	ch := DefaultCharlotte()
	// SODA's kernel-processor path must be substantially cheaper than
	// Charlotte's per-message path (the 3x small-message claim).
	if s.RequestPath >= ch.MessagePath {
		t.Errorf("SODA RequestPath %v >= Charlotte MessagePath %v", s.RequestPath, ch.MessagePath)
	}
	// But SODA's per-byte cost must be higher (slow bus + copies), so the
	// crossover exists.
	if s.PerByte <= ch.PerByte {
		t.Errorf("SODA PerByte %v <= Charlotte PerByte %v: no crossover possible", s.PerByte, ch.PerByte)
	}
	// The client processor is not multiprogrammed and proceeds during
	// kernel work: its call cost is small.
	if s.ClientCall >= s.RequestPath {
		t.Error("ClientCall should be well below RequestPath")
	}
}

func TestChrysalisFitStructure(t *testing.T) {
	c := DefaultChrysalis()
	ch := DefaultCharlotte()
	// Microcoded primitives are orders of magnitude below kernel calls.
	if c.AtomicOp >= ch.KernelCall/10 {
		t.Errorf("AtomicOp %v not ≪ Charlotte KernelCall %v", c.AtomicOp, ch.KernelCall)
	}
	// Atomic flag ops are cheaper than queue operations, which include
	// the microcode's bookkeeping.
	if c.AtomicOp >= c.Enqueue {
		t.Error("AtomicOp should be below Enqueue")
	}
	// The non-atomic wide write is cheap — that is WHY it is non-atomic.
	if c.WideWrite >= c.Enqueue {
		t.Error("WideWrite should be below Enqueue")
	}
	if ChrysalisTunedFactor <= 0.5 || ChrysalisTunedFactor >= 1.0 {
		t.Errorf("tuned factor %v outside (0.5, 1.0)", ChrysalisTunedFactor)
	}
}

func TestRuntimeCostOrdering(t *testing.T) {
	// The three run-time packages have the same structure; their
	// magnitudes order by processor generation: VAX C (Charlotte) ≥
	// predicted SODA ≥ 68000-with-cheap-kernel (Chrysalis).
	chr := DefaultCharlotteRuntime()
	so := DefaultSODARuntime()
	bf := DefaultChrysalisRuntime()
	if !(chr.PerOperation >= so.PerOperation && so.PerOperation >= bf.PerOperation) {
		t.Errorf("per-op ordering violated: %v %v %v",
			chr.PerOperation, so.PerOperation, bf.PerOperation)
	}
}
