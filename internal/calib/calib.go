// Package calib holds the calibrated virtual-time cost models that make
// the simulated kernels land on the paper's published measurements.
//
// The paper reports (all round-trip, request + reply):
//
//	Charlotte, raw kernel (C):  55 ms @ 0 B,   60 ms @ 1000 B each way
//	Charlotte, LYNX:            57 ms @ 0 B,   65 ms @ 1000 B each way
//	SODA (predicted):           ≈3× faster than Charlotte for small
//	                            messages; break-even between 1 KB and 2 KB
//	Chrysalis, LYNX:            2.4 ms @ 0 B,  4.6 ms @ 1000 B each way
//
// Each constant below is documented with the measurement it was fitted
// to. The experiment harness (internal/expt) asserts the resulting
// virtual-time numbers, so a calibration change that breaks the fit fails
// tests rather than silently drifting.
package calib

import "repro/internal/sim"

// Charlotte models the VAX 11/750 Charlotte kernel's CPU path.
//
// Fit: a simple remote operation is two kernel messages (request, reply).
// Each message costs the sender a kernel call, the matcher a
// send/receive rendezvous, and the receiver a completion (Wait). With
// KernelCall = 6.5 ms and MessagePath = 19 ms the C-level round trip
// comes to ≈55 ms; the per-byte cost of 2.5 µs/B (copy in and out of
// kernel space plus the 10 Mbit/s wire) adds ≈5 ms for 1000 B each way.
type CharlotteCosts struct {
	// KernelCall is charged for every kernel call (Send, Receive, Cancel,
	// Wait, MakeLink, Destroy) on the caller's node.
	KernelCall sim.Duration
	// MessagePath is the kernel-to-kernel cost of carrying one message:
	// matching the send to a receive, the protocol's internal acks, and
	// scheduling the destination. Charged once per message on top of
	// wire time.
	MessagePath sim.Duration
	// PerByte is the kernel copy cost per payload byte (the wire's own
	// serialization is charged by netsim on top).
	PerByte sim.Duration
	// MoveAgreement is the extra kernel-level cost of the three-party
	// agreement run when a message encloses a link end.
	MoveAgreement sim.Duration
}

// DefaultCharlotte returns the fitted Charlotte cost model.
func DefaultCharlotte() CharlotteCosts {
	return CharlotteCosts{
		KernelCall:    5000 * sim.Microsecond,
		MessagePath:   15000 * sim.Microsecond,
		PerByte:       1700 * sim.Nanosecond,
		MoveAgreement: 9 * sim.Millisecond,
	}
}

// LynxRuntimeCosts models the language run-time package's own overhead,
// common in structure across the three implementations but with
// different magnitudes (VAX C vs 68000 C vs predicted SODA).
//
// Fit (Charlotte): LYNX adds 2 ms over raw kernel calls at 0 B
// (57 vs 55) and ≈2.5 µs/B of gather/scatter + type checking
// (65−60 = 5 ms over 2000 B total).
type LynxRuntimeCosts struct {
	// PerOperation covers blocking/unblocking coroutines, default
	// exception handlers, and table upkeep for one remote operation.
	PerOperation sim.Duration
	// PerByte covers parameter gather/scatter and type checking.
	PerByte sim.Duration
	// PerEnclosure covers link-table update and validity checks for each
	// enclosed link end.
	PerEnclosure sim.Duration
}

// DefaultCharlotteRuntime returns the fitted LYNX-on-Charlotte runtime
// overhead.
func DefaultCharlotteRuntime() LynxRuntimeCosts {
	return LynxRuntimeCosts{
		PerOperation: 6800 * sim.Microsecond,
		PerByte:      850 * sim.Nanosecond,
		PerEnclosure: 500 * sim.Microsecond,
	}
}

// SODACosts models the SODA kernel-processor pair.
//
// Fit: the paper's experimental figures say SODA's small-message kernel
// round trip was 3× faster than Charlotte's (≈18 vs 55 ms) despite a 10×
// slower wire, with break-even between 1 KB and 2 KB. A request is one
// bus frame carrying the request descriptor; the accept completes it
// with a data frame in each direction as needed. RequestPath covers the
// kernel-processor work per frame. Per-byte cost is dominated by the
// 1 Mbit/s bus (8 µs/B, charged by netsim) plus kernel copies here.
type SODACosts struct {
	// ClientCall is the client-processor cost of trapping to the kernel
	// processor (shared memory + interrupt); the requesting user can
	// proceed while the kernel processor works.
	ClientCall sim.Duration
	// RequestPath is the kernel-processor cost per request/accept frame,
	// charged on the delivery path (not to the calling client).
	RequestPath sim.Duration
	// PerByte is the kernel-processor copy cost per payload byte.
	PerByte sim.Duration
	// InterruptDelivery is the cost of raising a software interrupt on
	// the client processor.
	InterruptDelivery sim.Duration
	// DiscoverTimeout is how long a discover waits for answers to one
	// broadcast round before giving up.
	DiscoverTimeout sim.Duration
	// RetryInterval is the kernel's resend period for undelivered
	// requests ("the requesting kernel retries periodically").
	RetryInterval sim.Duration
}

// DefaultSODA returns the fitted SODA cost model.
func DefaultSODA() SODACosts {
	return SODACosts{
		ClientCall:        400 * sim.Microsecond,
		RequestPath:       8050 * sim.Microsecond,
		PerByte:           5 * sim.Microsecond,
		InterruptDelivery: 300 * sim.Microsecond,
		DiscoverTimeout:   40 * sim.Millisecond,
		RetryInterval:     25 * sim.Millisecond,
	}
}

// DefaultSODARuntime returns the predicted LYNX-on-SODA runtime
// overhead: the paper expects "relatively major differences in run-time
// package overhead appear to be unlikely", so it matches Charlotte's
// per-operation cost with slightly cheaper per-byte handling (no extra
// screening copies).
func DefaultSODARuntime() LynxRuntimeCosts {
	return LynxRuntimeCosts{
		PerOperation: 1800 * sim.Microsecond,
		PerByte:      1100 * sim.Nanosecond,
		PerEnclosure: 150 * sim.Microsecond,
	}
}

// ChrysalisCosts models the Butterfly's microcoded primitives.
//
// Fit: a simple remote op is ≈2.4 ms round trip: two flag-set + enqueue
// notices, two dequeues, plus runtime overhead; per-byte cost 1.1 µs/B
// total (both directions over 2000 B gives the extra 2.2 ms of the
// 4.6 ms figure; the backplane model supplies 0.55 µs/B per direction
// and BufferCopy the rest).
type ChrysalisCosts struct {
	// AtomicOp is a microcoded 16-bit atomic flag operation.
	AtomicOp sim.Duration
	// Enqueue and Dequeue are dual-queue operations.
	Enqueue sim.Duration
	Dequeue sim.Duration
	// EventPost and EventWait are event-block operations.
	EventPost sim.Duration
	EventWait sim.Duration
	// MapObject is the cost of mapping a memory object into an address
	// space (link move/creation).
	MapObject sim.Duration
	// BufferCopy is the per-byte cost of copying into/out of a link
	// object's buffer (in addition to backplane transfer time).
	BufferCopy sim.Duration
	// WideWrite is a non-atomic >16-bit write (dual queue name update).
	WideWrite sim.Duration
}

// DefaultChrysalis returns the fitted Chrysalis cost model.
func DefaultChrysalis() ChrysalisCosts {
	return ChrysalisCosts{
		AtomicOp:   79 * sim.Microsecond,
		Enqueue:    249 * sim.Microsecond,
		Dequeue:    249 * sim.Microsecond,
		EventPost:  157 * sim.Microsecond,
		EventWait:  183 * sim.Microsecond,
		MapObject:  400 * sim.Microsecond,
		BufferCopy: 420 * sim.Nanosecond,
		WideWrite:  46 * sim.Microsecond,
	}
}

// DefaultChrysalisRuntime returns the fitted LYNX-on-Chrysalis runtime
// overhead (68000 C, smaller and simpler than the Charlotte package).
func DefaultChrysalisRuntime() LynxRuntimeCosts {
	return LynxRuntimeCosts{
		PerOperation: 200 * sim.Microsecond,
		PerByte:      0,
		PerEnclosure: 100 * sim.Microsecond,
	}
}

// ChrysalisTunedFactor scales the Chrysalis fixed costs for the "code
// tuning and protocol optimizations now under development are likely to
// improve both figures by 30 to 40%" ablation (E9).
const ChrysalisTunedFactor = 0.65
