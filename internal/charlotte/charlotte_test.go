package charlotte

import (
	"bytes"
	"testing"

	"repro/internal/calib"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// harness bundles an env, network, and kernel for tests.
func newTestKernel() (*sim.Env, *Kernel) {
	env := sim.NewEnv(1)
	net := netsim.NewTokenRing(20)
	k := NewKernel(env, net, calib.DefaultCharlotte())
	return env, k
}

func TestMakeLinkOwnership(t *testing.T) {
	env, k := newTestKernel()
	pr := k.NewProcess(0)
	env.Spawn("a", func(p *sim.Proc) {
		e1, e2, st := pr.MakeLink(p)
		if st != OK {
			t.Errorf("MakeLink: %v", st)
		}
		if !pr.Owns(e1) || !pr.Owns(e2) {
			t.Error("creator does not own both ends")
		}
		if e1.peer() != e2 || e2.peer() != e1 {
			t.Error("peer refs wrong")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSimpleSendReceive(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	var e1, e2 EndRef

	env.Spawn("setup", func(p *sim.Proc) {
		var st Status
		e1, e2, st = a.MakeLink(p)
		if st != OK {
			t.Errorf("MakeLink: %v", st)
		}
		// Hand e2 to b out of band (simulating initial configuration).
		delete(a.ends, e2)
		k.links[e2.link].ends[e2.side].owner = b
		b.ends[e2] = true

		env.Spawn("sender", func(p *sim.Proc) {
			if st := a.Send(p, e1, []byte("hello"), EndRef{}); st != OK {
				t.Errorf("Send: %v", st)
			}
			d := a.Wait(p)
			if d.Status != OK || d.Dir != SendDir || d.Length != 5 {
				t.Errorf("send completion: %+v", d)
			}
		})
		env.Spawn("receiver", func(p *sim.Proc) {
			if st := b.Receive(p, e2, 100); st != OK {
				t.Errorf("Receive: %v", st)
			}
			d := b.Wait(p)
			if d.Status != OK || d.Dir != RecvDir {
				t.Errorf("recv completion: %+v", d)
			}
			if !bytes.Equal(d.Data, []byte("hello")) {
				t.Errorf("data %q", d.Data)
			}
		})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Stats().Messages != 1 {
		t.Fatalf("messages = %d", k.Stats().Messages)
	}
}

// giveEnd transfers an end between processes out of band (test setup).
func giveEnd(k *Kernel, e EndRef, from, to *Process) {
	delete(from.ends, e)
	k.links[e.link].ends[e.side].owner = to
	to.ends[e] = true
}

func TestOneOutstandingActivityPerDirection(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	env.Spawn("a", func(p *sim.Proc) {
		e1, _, _ := a.MakeLink(p)
		if st := a.Send(p, e1, []byte("x"), EndRef{}); st != OK {
			t.Errorf("first Send: %v", st)
		}
		if st := a.Send(p, e1, []byte("y"), EndRef{}); st != Busy {
			t.Errorf("second Send: %v, want Busy", st)
		}
		if st := a.Receive(p, e1, 10); st != OK {
			t.Errorf("first Receive: %v", st)
		}
		if st := a.Receive(p, e1, 10); st != Busy {
			t.Errorf("second Receive: %v, want Busy", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCancelUnmatchedSucceeds(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	env.Spawn("a", func(p *sim.Proc) {
		e1, _, _ := a.MakeLink(p)
		a.Receive(p, e1, 10)
		if st := a.Cancel(p, e1, RecvDir); st != OK {
			t.Errorf("Cancel: %v", st)
		}
		if st := a.Cancel(p, e1, RecvDir); st != NoActivity {
			t.Errorf("second Cancel: %v, want NoActivity", st)
		}
		// Slot must be reusable.
		if st := a.Receive(p, e1, 10); st != OK {
			t.Errorf("Receive after cancel: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCancelMatchedFails(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("setup", func(p *sim.Proc) {
		e1, e2, _ := a.MakeLink(p)
		giveEnd(k, e2, a, b)
		b.Receive(p, e2, 100)
		a.Send(p, e1, []byte("data"), EndRef{})
		// Matched immediately: the receive is now uncancellable — this is
		// exactly the paper's "If B has requested an operation in the
		// meantime, the Cancel will fail" scenario.
		if st := b.Cancel(p, e2, RecvDir); st != CancelFailed {
			t.Errorf("Cancel matched recv: %v, want CancelFailed", st)
		}
		// Completion still arrives.
		d := b.Wait(p)
		if d.Status != OK || string(d.Data) != "data" {
			t.Errorf("completion after failed cancel: %+v", d)
		}
		a.Wait(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEnclosureMovesOwnership(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("setup", func(p *sim.Proc) {
		e1, e2, _ := a.MakeLink(p)
		giveEnd(k, e2, a, b)
		// A second link whose end we will move.
		m1, m2, _ := a.MakeLink(p)
		b.Receive(p, e2, 100)
		if st := a.Send(p, e1, []byte("take this"), m2); st != OK {
			t.Errorf("Send with enclosure: %v", st)
		}
		d := b.Wait(p)
		if d.Enclosure != m2 {
			t.Errorf("enclosure = %v, want %v", d.Enclosure, m2)
		}
		if !b.Owns(m2) || a.Owns(m2) {
			t.Error("ownership did not move")
		}
		if !a.Owns(m1) {
			t.Error("fixed end moved")
		}
		a.Wait(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Stats().Enclosures != 1 {
		t.Fatalf("enclosures = %d", k.Stats().Enclosures)
	}
}

func TestEnclosureRules(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	env.Spawn("a", func(p *sim.Proc) {
		e1, e2, _ := a.MakeLink(p)
		m1, _, _ := a.MakeLink(p)
		// Cannot enclose an end of the link the message is sent on.
		if st := a.Send(p, e1, nil, e2); st != EnclosureSelf {
			t.Errorf("enclose own link: %v, want EnclosureSelf", st)
		}
		// Cannot enclose an end with an outstanding activity.
		a.Receive(p, m1, 10)
		if st := a.Send(p, e1, nil, m1); st != EnclosureBusy {
			t.Errorf("enclose busy end: %v, want EnclosureBusy", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMovingEndUnusable(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("setup", func(p *sim.Proc) {
		e1, e2, _ := a.MakeLink(p)
		giveEnd(k, e2, a, b)
		_, m2, _ := a.MakeLink(p)
		a.Send(p, e1, nil, m2) // m2 now moving (unmatched: b hasn't received)
		if st := a.Send(p, m2, []byte("x"), EndRef{}); st != Moving {
			t.Errorf("Send on moving end: %v, want Moving", st)
		}
		if st := a.Receive(p, m2, 10); st != Moving {
			t.Errorf("Receive on moving end: %v, want Moving", st)
		}
		// Cancel the enclosing send: the move is off, end usable again.
		if st := a.Cancel(p, e1, SendDir); st != OK {
			t.Errorf("Cancel: %v", st)
		}
		if st := a.Receive(p, m2, 10); st != OK {
			t.Errorf("Receive after cancelled move: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDestroyCompletesActivities(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("setup", func(p *sim.Proc) {
		e1, e2, _ := a.MakeLink(p)
		giveEnd(k, e2, a, b)
		b.Receive(p, e2, 100)
		if st := a.Destroy(p, e1); st != OK {
			t.Errorf("Destroy: %v", st)
		}
		d := b.Wait(p)
		if d.Status != Destroyed {
			t.Errorf("b completion: %+v, want Destroyed", d)
		}
		// Further use fails immediately.
		if st := b.Send(p, e2, nil, EndRef{}); st != Destroyed {
			t.Errorf("Send on destroyed: %v", st)
		}
		if st := a.Send(p, e1, nil, EndRef{}); st != Destroyed {
			t.Errorf("Send on own destroyed: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnsolicitedDestroyNotice(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("setup", func(p *sim.Proc) {
		e1, e2, _ := a.MakeLink(p)
		giveEnd(k, e2, a, b)
		a.Destroy(p, e1)
		// b had nothing posted; it must still learn of the destruction.
		d := b.Wait(p)
		if d.Status != Destroyed || d.End != e2 {
			t.Errorf("unsolicited notice: %+v", d)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessTerminationDestroysLinks(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("setup", func(p *sim.Proc) {
		e1, e2, _ := a.MakeLink(p)
		f1, f2, _ := a.MakeLink(p)
		giveEnd(k, e2, a, b)
		giveEnd(k, f2, a, b)
		_ = e1
		_ = f1
		a.Terminate()
		// b learns that both its ends died.
		seen := map[EndRef]bool{}
		d1 := b.Wait(p)
		d2 := b.Wait(p)
		seen[d1.End] = d1.Status == Destroyed
		seen[d2.End] = d2.Status == Destroyed
		if !seen[e2] || !seen[f2] {
			t.Errorf("termination notices: %+v %+v", d1, d2)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Stats().Destroys != 2 {
		t.Fatalf("destroys = %d", k.Stats().Destroys)
	}
}

func TestTruncationStatus(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("setup", func(p *sim.Proc) {
		e1, e2, _ := a.MakeLink(p)
		giveEnd(k, e2, a, b)
		b.Receive(p, e2, 3)
		a.Send(p, e1, []byte("0123456789"), EndRef{})
		d := b.Wait(p)
		if d.Status != Truncated || d.Length != 3 || string(d.Data) != "012" {
			t.Errorf("truncated completion: %+v", d)
		}
		a.Wait(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendBeforeReceiveRendezvous(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("setup", func(p *sim.Proc) {
		e1, e2, _ := a.MakeLink(p)
		giveEnd(k, e2, a, b)
		// Send first; no receive posted. Nothing should be delivered.
		a.Send(p, e1, []byte("early"), EndRef{})
		p.Delay(200 * sim.Millisecond)
		if b.PendingCompletions() != 0 {
			t.Error("message delivered without a posted receive")
		}
		b.Receive(p, e2, 100)
		d := b.Wait(p)
		if string(d.Data) != "early" {
			t.Errorf("data %q", d.Data)
		}
		a.Wait(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// The paper's figure-1 situation at kernel level: both ends of a link
// enclosed simultaneously in messages travelling on two other links.
func TestSimultaneousBothEndsMove(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	c := k.NewProcess(2)
	d := k.NewProcess(3)
	env.Spawn("setup", func(p *sim.Proc) {
		// link1: A-B, link2: D-C, link3: A-D.
		l1a, l1b, _ := a.MakeLink(p)
		giveEnd(k, l1b, a, b)
		l2d, l2c, _ := a.MakeLink(p)
		giveEnd(k, l2d, a, d)
		giveEnd(k, l2c, a, c)
		l3a, l3d, _ := a.MakeLink(p)
		giveEnd(k, l3d, a, d)

		env.Spawn("b", func(p *sim.Proc) {
			b.Receive(p, l1b, 10)
			desc := b.Wait(p)
			if desc.Enclosure != l3a || !b.Owns(l3a) {
				t.Errorf("b did not get l3a: %+v", desc)
			}
		})
		env.Spawn("c", func(p *sim.Proc) {
			c.Receive(p, l2c, 10)
			desc := c.Wait(p)
			if desc.Enclosure != l3d || !c.Owns(l3d) {
				t.Errorf("c did not get l3d: %+v", desc)
			}
		})
		env.Spawn("a2", func(p *sim.Proc) {
			if st := a.Send(p, l1a, nil, l3a); st != OK {
				t.Errorf("a send: %v", st)
			}
			a.Wait(p)
		})
		env.Spawn("d2", func(p *sim.Proc) {
			if st := d.Send(p, l2d, nil, l3d); st != OK {
				t.Errorf("d send: %v", st)
			}
			d.Wait(p)
		})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// After both moves: link3 connects B and C.
	l3 := k.links[3]
	owners := map[int]bool{l3.ends[0].owner.ID(): true, l3.ends[1].owner.ID(): true}
	if !owners[b.ID()] || !owners[c.ID()] {
		t.Fatalf("link3 owners: %v and %v, want B and C",
			l3.ends[0].owner.ID(), l3.ends[1].owner.ID())
	}
}

func TestKernelCallsCharged(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	var elapsed sim.Duration
	env.Spawn("a", func(p *sim.Proc) {
		start := p.Now()
		a.MakeLink(p)
		elapsed = sim.Duration(p.Now() - start)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != calib.DefaultCharlotte().KernelCall {
		t.Fatalf("MakeLink charged %v, want %v", elapsed, calib.DefaultCharlotte().KernelCall)
	}
}

func TestRoundTripLatencyCalibration(t *testing.T) {
	// A raw-kernel round trip (request + reply, no payload) should land
	// near the paper's 55 ms C-program figure.
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	var rtt sim.Duration
	env.Spawn("setup", func(p *sim.Proc) {
		e1, e2, _ := a.MakeLink(p)
		giveEnd(k, e2, a, b)
		env.Spawn("server", func(p *sim.Proc) {
			b.Receive(p, e2, 1000)
			b.Wait(p)
			b.Send(p, e2, nil, EndRef{})
			b.Wait(p)
		})
		env.Spawn("client", func(p *sim.Proc) {
			start := p.Now()
			a.Receive(p, e1, 1000) // reply receive posted up front
			a.Send(p, e1, nil, EndRef{})
			a.Wait(p) // send completion
			a.Wait(p) // reply arrival
			rtt = sim.Duration(p.Now() - start)
		})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	ms := rtt.Milliseconds()
	if ms < 50 || ms > 60 {
		t.Fatalf("raw kernel RTT = %.2f ms, want ≈ 55 ms", ms)
	}
}
