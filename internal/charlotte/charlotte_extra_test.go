package charlotte

import (
	"testing"

	"repro/internal/calib"
	"repro/internal/sim"
)

// Additional Charlotte kernel tests: TryWait, boot links, status
// plumbing, destroy/move interactions.

func TestBootLinkOwnership(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	ea, eb := k.BootLink(a, b)
	if !a.Owns(ea) || !b.Owns(eb) {
		t.Fatal("boot ends not owned")
	}
	if ea.peer() != eb {
		t.Fatal("boot ends not peers")
	}
	// BootLink charges no time: the clock must not have moved.
	if env.Now() != 0 {
		t.Fatalf("clock at %v", env.Now())
	}
}

func TestTryWait(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("x", func(p *sim.Proc) {
		ea, eb := k.BootLink(a, b)
		if _, ok := a.TryWait(p); ok {
			t.Error("TryWait on empty returned a completion")
		}
		b.Receive(p, eb, 64)
		a.Send(p, ea, []byte("x"), EndRef{})
		p.Delay(100 * sim.Millisecond)
		if d, ok := a.TryWait(p); !ok || d.Dir != SendDir {
			t.Errorf("TryWait after send: %v %v", d, ok)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStatusStrings(t *testing.T) {
	for st := OK; st <= Truncated; st++ {
		if st.String() == "" {
			t.Errorf("status %d has empty name", int(st))
		}
	}
	if Status(99).String() != "Status(99)" {
		t.Error("unknown status formatting")
	}
	if SendDir.String() != "send" || RecvDir.String() != "recv" {
		t.Error("direction strings")
	}
	var nilRef EndRef
	if nilRef.String() != "end<nil>" || !nilRef.Nil() {
		t.Error("nil ref formatting")
	}
}

func TestSendOnForeignEnd(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("x", func(p *sim.Proc) {
		_, eb := k.BootLink(a, b)
		if st := a.Send(p, eb, nil, EndRef{}); st != NotOwner {
			t.Errorf("Send on foreign end: %v", st)
		}
		if st := a.Receive(p, eb, 10); st != NotOwner {
			t.Errorf("Receive on foreign end: %v", st)
		}
		if st := a.Cancel(p, eb, SendDir); st != NotOwner {
			t.Errorf("Cancel on foreign end: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDestroyWhileMessageInFlight(t *testing.T) {
	// A matched transfer is in flight when the link is destroyed: both
	// parties must get Destroyed completions, and the late delivery event
	// must be harmless.
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("x", func(p *sim.Proc) {
		ea, eb := k.BootLink(a, b)
		b.Receive(p, eb, 64)
		a.Send(p, ea, []byte("doomed"), EndRef{})
		// Matched immediately; delivery is ~20+ms away. Destroy now.
		p.Delay(sim.Millisecond)
		if st := a.Destroy(p, ea); st != OK {
			t.Fatalf("Destroy: %v", st)
		}
		da := a.Wait(p)
		if da.Status != Destroyed {
			t.Errorf("a completion: %+v", da)
		}
		db := b.Wait(p)
		if db.Status != Destroyed {
			t.Errorf("b completion: %+v", db)
		}
		// Let the stale delivery event fire.
		p.Delay(200 * sim.Millisecond)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Stats().Messages != 0 {
		t.Fatalf("messages delivered on a destroyed link: %d", k.Stats().Messages)
	}
}

func TestEnclosureOfDestroyedLink(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("x", func(p *sim.Proc) {
		ea, eb := k.BootLink(a, b)
		_ = eb
		m1, _, _ := a.MakeLink(p)
		a.Destroy(p, m1)
		if st := a.Send(p, ea, nil, m1); st != Destroyed {
			t.Errorf("enclosing destroyed end: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveAgreementCostCharged(t *testing.T) {
	// An enclosure-bearing transfer takes MoveAgreement longer than a
	// plain one.
	measure := func(withEnc bool) sim.Duration {
		env, k := newTestKernel()
		a := k.NewProcess(0)
		b := k.NewProcess(1)
		var lat sim.Duration
		env.Spawn("x", func(p *sim.Proc) {
			ea, eb := k.BootLink(a, b)
			var enc EndRef
			if withEnc {
				_, enc2, _ := a.MakeLink(p)
				enc = enc2
			}
			b.Receive(p, eb, 64)
			start := p.Now()
			a.Send(p, ea, []byte("m"), enc)
			a.Wait(p)
			lat = sim.Duration(p.Now() - start)
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return lat
	}
	plain := measure(false)
	moved := measure(true)
	diff := moved - plain
	want := calib.DefaultCharlotte().MoveAgreement
	// MakeLink also charges a kernel call before the timed window, so
	// compare the transfer-time delta only.
	if diff < want || diff > want+sim.Millisecond {
		t.Fatalf("move agreement delta = %v, want ≈ %v", diff, want)
	}
}

func TestCancelSendReleasesSlot(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	env.Spawn("x", func(p *sim.Proc) {
		e1, _, _ := a.MakeLink(p)
		a.Send(p, e1, []byte("x"), EndRef{})
		if st := a.Cancel(p, e1, SendDir); st != OK {
			t.Fatalf("Cancel: %v", st)
		}
		// Slot must be free for a new send.
		if st := a.Send(p, e1, []byte("y"), EndRef{}); st != OK {
			t.Fatalf("Send after cancel: %v", st)
		}
		if st := a.Cancel(p, e1, RecvDir); st != NoActivity {
			t.Fatalf("Cancel recv with none: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTerminateIdempotentCharlotte(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	env.Spawn("x", func(p *sim.Proc) {
		a.MakeLink(p)
		a.Terminate()
		a.Terminate() // second call is a no-op
		// Calls after termination fail.
		if _, _, st := a.MakeLink(p); st != Destroyed {
			t.Errorf("MakeLink after terminate: %v", st)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroLengthMessage(t *testing.T) {
	env, k := newTestKernel()
	a := k.NewProcess(0)
	b := k.NewProcess(1)
	env.Spawn("x", func(p *sim.Proc) {
		ea, eb := k.BootLink(a, b)
		b.Receive(p, eb, 0)
		a.Send(p, ea, nil, EndRef{})
		d := b.Wait(p)
		if d.Status != OK || d.Length != 0 {
			t.Errorf("zero-length completion: %+v", d)
		}
		a.Wait(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
