// Package charlotte reimplements the Charlotte distributed operating
// system kernel (Artsy, Chang & Finkel; U. Wisconsin) as described in §3
// of the paper, running on the sim/netsim substrate.
//
// Charlotte is the paper's *high-level* kernel: links are a kernel
// abstraction. The kernel interface is exactly the paper's:
//
//	MakeLink(end1, end2)             create a link, return both ends
//	Destroy(myend)                   destroy the link with a given end
//	Send(L, buffer, enclosure)       start a send activity (≤1 enclosure)
//	Receive(L, buffer)               start a receive activity
//	Cancel(L, direction)             attempt to cancel an activity
//	Wait() description               block for an activity completion
//
// The kernel matches send and receive activities on opposite ends of a
// link; it allows only one outstanding activity in each direction on a
// given end, and a completion must be reported by Wait before another
// similar activity can be started. All calls but Wait complete in
// bounded time. Process termination destroys all the process's links,
// and any attempt to use a destroyed link fails with a status code.
//
// Link movement follows Charlotte's three-party agreement discipline: an
// end being enclosed in a message is unusable ("moving") until the
// transfer completes, and enclosing an end that has outstanding
// activities is rejected — these are the kernel-interface rules that §3.2
// of the paper has to program around.
package charlotte

import (
	"fmt"

	"repro/internal/calib"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Status is the result code returned by every kernel call and carried in
// every completion description.
type Status int

// Kernel call and completion status codes.
const (
	OK Status = iota
	// Destroyed: the link was destroyed (by the far end, the near end,
	// or process termination).
	Destroyed
	// Moving: the end is enclosed in an in-flight message and cannot be
	// used until the move completes.
	Moving
	// NotOwner: the calling process does not own the end.
	NotOwner
	// Busy: an activity in that direction is already outstanding.
	Busy
	// NoActivity: Cancel found nothing to cancel.
	NoActivity
	// CancelFailed: the activity has already matched or completed; its
	// completion will still be reported by Wait.
	CancelFailed
	// EnclosureBusy: the enclosed end has outstanding activities or is
	// already moving.
	EnclosureBusy
	// EnclosureSelf: a message may not enclose an end of the link it is
	// sent on.
	EnclosureSelf
	// Truncated: the received message was longer than the posted buffer.
	Truncated
)

func (s Status) String() string {
	switch s {
	case OK:
		return "OK"
	case Destroyed:
		return "DESTROYED"
	case Moving:
		return "MOVING"
	case NotOwner:
		return "NOT_OWNER"
	case Busy:
		return "BUSY"
	case NoActivity:
		return "NO_ACTIVITY"
	case CancelFailed:
		return "CANCEL_FAILED"
	case EnclosureBusy:
		return "ENCLOSURE_BUSY"
	case EnclosureSelf:
		return "ENCLOSURE_SELF"
	case Truncated:
		return "TRUNCATED"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Direction distinguishes send and receive activities.
type Direction int

// Activity directions.
const (
	SendDir Direction = iota
	RecvDir
)

func (d Direction) String() string {
	if d == SendDir {
		return "send"
	}
	return "recv"
}

// EndRef is a capability for one end of a link. The zero EndRef is "no
// end" (used for absent enclosures).
type EndRef struct {
	link int
	side int // 0 or 1
}

// Nil reports whether the reference denotes no end.
func (e EndRef) Nil() bool { return e.link == 0 }

func (e EndRef) String() string {
	if e.Nil() {
		return "end<nil>"
	}
	return fmt.Sprintf("end<%d.%d>", e.link, e.side)
}

// peer returns the reference for the opposite end of the same link.
func (e EndRef) peer() EndRef { return EndRef{link: e.link, side: 1 - e.side} }

// Description reports one completed activity, as returned by Wait.
type Description struct {
	End       EndRef
	Dir       Direction
	Status    Status
	Length    int    // bytes transferred
	Data      []byte // receive completions only
	Enclosure EndRef // moved end, if any (receive completions only)
}

// Stats is a snapshot of kernel activity for the experiment harness,
// computed on demand from the kernel's obs metrics.
type Stats struct {
	Calls      map[string]int64
	Messages   int64 // kernel messages delivered
	Bytes      int64
	Enclosures int64 // link ends moved
	Destroys   int64
}

// Kernel is the (logically replicated) Charlotte kernel. One Kernel
// value serves all nodes; per-node CPU costs are charged to the calling
// process's simproc and internode wire time to the netsim model.
//
// For conservative parallel runs the kernel is split into groups
// (Partition): each group owns a shard env, a network segment, a
// strided id allocator, and an overlay link map, so processes of
// different groups share no mutable kernel state mid-run. The links
// created before partitioning stay in the shared boot map, which is
// read-only from then on (destruction tombstones the link record, it
// never deletes the map entry).
type Kernel struct {
	env   *sim.Env
	net   netsim.Network
	costs calib.CharlotteCosts

	links map[int]*link // boot map; read-only once partitioned

	def    *kgroup   // the unpartitioned group (boot allocator)
	groups []*kgroup // non-nil after Partition

	rec   *obs.Recorder
	calls map[string]*obs.Counter // kernel-call name -> counter handle
}

// kgroup is one partition group of the kernel: the shard env its
// processes run on, the network segment they transmit over, an overlay
// map for links created mid-run, and strided id allocators whose output
// depends only on this group's own call order.
type kgroup struct {
	k   *Kernel
	idx int // -1 for the default (unpartitioned) group
	env *sim.Env
	net netsim.Network

	links    map[int]*link // == k.links for the default group
	nextLink int
	nextPID  int
	stride   int
}

// findLink resolves a link id against the group overlay, then the
// shared boot map.
func (g *kgroup) findLink(id int) (*link, bool) {
	if l, ok := g.links[id]; ok {
		return l, true
	}
	if g.idx >= 0 {
		l, ok := g.k.links[id]
		return l, ok
	}
	return nil, false
}

// NewKernel creates a Charlotte kernel over the given network model.
func NewKernel(env *sim.Env, net netsim.Network, costs calib.CharlotteCosts) *Kernel {
	k := &Kernel{
		env:   env,
		net:   net,
		costs: costs,
		links: make(map[int]*link),
		rec:   obs.NewRecorder(env, "charlotte"),
		calls: make(map[string]*obs.Counter),
	}
	k.def = &kgroup{k: k, idx: -1, env: env, net: net, links: k.links, nextLink: 1, nextPID: 1, stride: 1}
	// Pre-create every instrument touched mid-run: the metrics registry
	// is unlocked, so lazily inserting from concurrently executing
	// groups would race on the name map.
	for _, what := range []string{"MakeLink", "Send", "Receive", "Cancel", "Wait", "Destroy"} {
		k.calls[what] = k.rec.Counter(obs.MKernelCalls + "{call=" + what + "}")
	}
	for _, name := range []string{obs.MLinkDestroys, obs.MKernelMessages, obs.MKernelBytes, obs.MEnclosureMoves} {
		k.rec.Counter(name)
	}
	return k
}

// Partition splits the kernel into one group per shard env for a
// conservative parallel run: group i's processes run on envs[i] and
// transmit over nets[i] (its per-group medium segment). Ids allocated
// from here on are strided per group, so mid-run MakeLink/NewProcessIn
// stay deterministic at any worker count. Call before the run starts,
// then AssignGroup every process.
func (k *Kernel) Partition(envs []*sim.Env, nets []netsim.Network) {
	if len(envs) != len(nets) {
		panic("charlotte: Partition needs one network segment per shard env")
	}
	if k.groups != nil {
		panic("charlotte: Partition called twice")
	}
	stride := len(envs)
	k.groups = make([]*kgroup, stride)
	for i := range envs {
		k.groups[i] = &kgroup{
			k: k, idx: i, env: envs[i], net: nets[i],
			links:    make(map[int]*link),
			nextLink: k.def.nextLink + i,
			nextPID:  k.def.nextPID + i,
			stride:   stride,
		}
	}
}

// Env returns the simulation environment the kernel runs in.
func (k *Kernel) Env() *sim.Env { return k.env }

// Obs returns the kernel's observability recorder; the binding shares
// it, and sinks attach to it.
func (k *Kernel) Obs() *obs.Recorder { return k.rec }

// Stats returns a snapshot of the kernel's activity counters.
func (k *Kernel) Stats() *Stats {
	m := k.rec.Metrics()
	st := &Stats{
		Calls:      make(map[string]int64, len(k.calls)),
		Messages:   m.Value(obs.MKernelMessages),
		Bytes:      m.Value(obs.MKernelBytes),
		Enclosures: m.Value(obs.MEnclosureMoves),
		Destroys:   m.Value(obs.MLinkDestroys),
	}
	for name, c := range k.calls {
		st.Calls[name] = c.Value()
	}
	return st
}

// countCall bumps the per-call-name kernel counter. Every call name is
// pre-created in NewKernel (the map must not grow mid-run: groups read
// it concurrently).
func (k *Kernel) countCall(what string) {
	k.calls[what].Inc()
}

// link is the kernel's record of a link: two ends, each with at most one
// outstanding activity per direction.
type link struct {
	id        int
	destroyed bool
	ends      [2]endState
}

type endState struct {
	owner    *Process
	moving   bool // enclosed in an in-flight message
	send     *activity
	recv     *activity
	sendSeq  int64 // per-end send ordering (trace/debug)
	deadSeen bool  // destruction already reported via a completion
}

type activity struct {
	dir       Direction
	data      []byte // send: payload
	capacity  int    // recv: buffer capacity
	enclosure EndRef
	matched   bool // transfer in flight; Cancel must fail
}

// Process is a Charlotte process: the unit of link ownership and the
// target of activity-completion notifications.
type Process struct {
	k           *Kernel
	g           *kgroup
	id          int
	node        netsim.NodeID
	completions *sim.Mailbox
	dead        bool
	ends        map[EndRef]bool
}

// NewProcess registers a process living on the given node. The returned
// Process's kernel calls must be made from simproc context (they charge
// virtual CPU time via p).
func (k *Kernel) NewProcess(node netsim.NodeID) *Process {
	return k.newProcessIn(k.def, node)
}

// NewProcessIn registers a process directly into partition group g —
// the home-shard placement path for processes launched mid-run, whose
// pid comes from the group's strided allocator.
func (k *Kernel) NewProcessIn(g int, node netsim.NodeID) *Process {
	return k.newProcessIn(k.groups[g], node)
}

func (k *Kernel) newProcessIn(g *kgroup, node netsim.NodeID) *Process {
	id := g.nextPID
	g.nextPID += g.stride
	pr := &Process{
		k:           k,
		g:           g,
		id:          id,
		node:        node,
		completions: sim.NewMailbox(g.env, fmt.Sprintf("charlotte.p%d.completions", id)),
		ends:        make(map[EndRef]bool),
	}
	return pr
}

// AssignGroup moves a boot-time process into partition group g (its
// home shard). The completion mailbox is recreated on the group's env —
// safe before the run starts, when no waiter exists.
func (pr *Process) AssignGroup(g int) {
	kg := pr.k.groups[g]
	pr.g = kg
	pr.completions = sim.NewMailbox(kg.env, fmt.Sprintf("charlotte.p%d.completions", pr.id))
}

// Group reports the partition group pr was assigned to, or -1 before
// partitioning.
func (pr *Process) Group() int { return pr.g.idx }

// ID returns the process id.
func (pr *Process) ID() int { return pr.id }

// Kernel returns the kernel the process belongs to.
func (pr *Process) Kernel() *Kernel { return pr.k }

// Node returns the process's node.
func (pr *Process) Node() netsim.NodeID { return pr.node }

// Owns reports whether the process currently owns the given end.
func (pr *Process) Owns(e EndRef) bool { return pr.ends[e] }

// PendingCompletions reports how many completions are queued for Wait.
func (pr *Process) PendingCompletions() int { return pr.completions.Len() }

// charge spends one kernel-call's CPU on the calling simproc.
func (pr *Process) charge(p *sim.Proc, what string) {
	pr.k.countCall(what)
	p.Delay(pr.k.costs.KernelCall)
}

// MakeLink creates a new link with both ends owned by the caller.
func (pr *Process) MakeLink(p *sim.Proc) (end1, end2 EndRef, st Status) {
	pr.charge(p, "MakeLink")
	if pr.dead {
		return EndRef{}, EndRef{}, Destroyed
	}
	g := pr.g
	l := &link{id: g.nextLink}
	g.nextLink += g.stride
	l.ends[0].owner = pr
	l.ends[1].owner = pr
	g.links[l.id] = l
	e1 := EndRef{link: l.id, side: 0}
	e2 := EndRef{link: l.id, side: 1}
	pr.ends[e1] = true
	pr.ends[e2] = true
	if pr.k.rec.Active() {
		pr.k.rec.EmitEnv(g.env, obs.Event{Kind: obs.KindLinkMake, Proc: pr.id, Link: l.id})
	}
	return e1, e2, OK
}

// BootLink creates a link with one end owned by each of two processes,
// without charging kernel time: the loader's initial wiring. The link
// is allocated from a's group, so mid-run launches (both processes on
// one shard, per lynx's home-shard placement) get group-local strided
// ids; before partitioning a's group is the default group and the
// allocation is the classic serial sequence.
func (k *Kernel) BootLink(a, b *Process) (EndRef, EndRef) {
	g := a.g
	l := &link{id: g.nextLink}
	g.nextLink += g.stride
	l.ends[0].owner = a
	l.ends[1].owner = b
	g.links[l.id] = l
	e1 := EndRef{link: l.id, side: 0}
	e2 := EndRef{link: l.id, side: 1}
	a.ends[e1] = true
	b.ends[e2] = true
	return e1, e2
}

// lookup validates that e names a live link end owned by pr and returns
// the link. It maps every failure to the status the real kernel returns.
func (pr *Process) lookup(e EndRef) (*link, Status) {
	l, ok := pr.g.findLink(e.link)
	if !ok {
		return nil, Destroyed
	}
	if l.destroyed {
		return l, Destroyed
	}
	es := &l.ends[e.side]
	if es.owner != pr {
		if es.moving {
			return l, Moving
		}
		return l, NotOwner
	}
	if es.moving {
		return l, Moving
	}
	return l, OK
}

// Send starts a send activity on end e carrying data, optionally
// enclosing one other link end. It returns immediately; completion is
// reported by Wait.
func (pr *Process) Send(p *sim.Proc, e EndRef, data []byte, enclosure EndRef) Status {
	pr.charge(p, "Send")
	l, st := pr.lookup(e)
	if st != OK {
		return st
	}
	es := &l.ends[e.side]
	if es.send != nil {
		return Busy
	}
	if !enclosure.Nil() {
		if enclosure.link == e.link {
			return EnclosureSelf
		}
		el, est := pr.lookup(enclosure)
		if est != OK {
			return est
		}
		ees := &el.ends[enclosure.side]
		if ees.send != nil || ees.recv != nil || ees.moving {
			return EnclosureBusy
		}
		// The end is now moving: the three-party agreement begins. It
		// stays unusable until delivery (or send failure).
		ees.moving = true
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	es.send = &activity{dir: SendDir, data: buf, enclosure: enclosure}
	es.sendSeq++
	if pr.k.rec.Active() {
		var detail string
		if pr.k.rec.WantDetail() {
			detail = e.String()
			if !enclosure.Nil() {
				detail += " enc=" + enclosure.String()
			}
		}
		pr.k.rec.EmitEnv(pr.g.env, obs.Event{
			Kind: obs.KindKernelSend, Proc: pr.id, Link: e.link,
			Bytes: len(data), Detail: detail,
		})
	}
	pr.k.tryMatch(l, e.side)
	return OK
}

// Receive starts a receive activity on end e with the given buffer
// capacity. Completion is reported by Wait.
func (pr *Process) Receive(p *sim.Proc, e EndRef, capacity int) Status {
	pr.charge(p, "Receive")
	l, st := pr.lookup(e)
	if st != OK {
		return st
	}
	es := &l.ends[e.side]
	if es.recv != nil {
		return Busy
	}
	es.recv = &activity{dir: RecvDir, capacity: capacity}
	if pr.k.rec.Active() {
		var detail string
		if pr.k.rec.WantDetail() {
			detail = e.String()
		}
		pr.k.rec.EmitEnv(pr.g.env, obs.Event{
			Kind: obs.KindKernelReceive, Proc: pr.id, Link: e.link,
			Bytes: capacity, Detail: detail,
		})
	}
	// A send may be waiting on the far end.
	pr.k.tryMatch(l, 1-e.side)
	return OK
}

// Cancel attempts to cancel the outstanding activity in direction d on
// end e. It fails with CancelFailed if the activity has already matched
// (its completion will still arrive via Wait).
func (pr *Process) Cancel(p *sim.Proc, e EndRef, d Direction) Status {
	pr.charge(p, "Cancel")
	l, st := pr.lookup(e)
	if st != OK {
		return st
	}
	es := &l.ends[e.side]
	var slot **activity
	if d == SendDir {
		slot = &es.send
	} else {
		slot = &es.recv
	}
	if *slot == nil {
		return NoActivity
	}
	if (*slot).matched {
		return CancelFailed
	}
	if d == SendDir && !(*slot).enclosure.Nil() {
		// Release the moving end: the move never happened.
		if el, ok := pr.g.findLink((*slot).enclosure.link); ok {
			el.ends[(*slot).enclosure.side].moving = false
		}
	}
	*slot = nil
	if pr.k.rec.Active() {
		var detail string
		if pr.k.rec.WantDetail() {
			detail = fmt.Sprintf("%v %v", e, d)
		}
		pr.k.rec.EmitEnv(pr.g.env, obs.Event{
			Kind: obs.KindKernelCancel, Proc: pr.id, Link: e.link,
			Detail: detail,
		})
	}
	return OK
}

// Wait blocks until an activity completes and returns its description.
func (pr *Process) Wait(p *sim.Proc) Description {
	pr.k.countCall("Wait")
	d := pr.completions.Get(p).(Description)
	p.Delay(pr.k.costs.KernelCall)
	if pr.k.rec.Active() {
		var detail string
		if pr.k.rec.WantDetail() {
			detail = fmt.Sprintf("Wait -> %v %v %v", d.End, d.Dir, d.Status)
		}
		pr.k.rec.EmitEnv(pr.g.env, obs.Event{
			Kind: obs.KindQueueService, Proc: pr.id, Link: d.End.link, Bytes: d.Length,
			Detail: detail,
		})
	}
	return d
}

// TryWait returns a completion if one is queued, without blocking.
func (pr *Process) TryWait(p *sim.Proc) (Description, bool) {
	v, ok := pr.completions.TryGet()
	if !ok {
		return Description{}, false
	}
	pr.k.countCall("Wait")
	p.Delay(pr.k.costs.KernelCall)
	return v.(Description), true
}

// Destroy destroys the link with the given end. Outstanding activities
// on both ends complete with Destroyed status; the far end's owner also
// receives an unsolicited Destroyed notification if it had no activity
// posted (Charlotte guarantees destruction is eventually visible).
func (pr *Process) Destroy(p *sim.Proc, e EndRef) Status {
	pr.charge(p, "Destroy")
	l, st := pr.lookup(e)
	if st == Destroyed {
		return Destroyed
	}
	if st != OK {
		return st
	}
	pr.k.destroyLink(pr.g, l)
	return OK
}

// Terminate destroys all links attached to the process, as the kernel
// does when a process dies. Safe to call from OnKill hooks.
func (pr *Process) Terminate() {
	if pr.dead {
		return
	}
	pr.dead = true
	if pr.k.rec.Active() {
		pr.k.rec.EmitEnv(pr.g.env, obs.Event{Kind: obs.KindMark, Proc: pr.id, Detail: "terminate"})
	}
	for e := range pr.ends {
		if l, ok := pr.g.findLink(e.link); ok && !l.destroyed {
			pr.k.destroyLink(pr.g, l)
		}
	}
}

// destroyLink marks the link destroyed and flushes completions. The
// caller passes the partition group the link lives in (destruction
// tombstones the record; the link stays in its map so stale EndRefs
// keep resolving to Destroyed).
func (k *Kernel) destroyLink(g *kgroup, l *link) {
	l.destroyed = true
	k.rec.Counter(obs.MLinkDestroys).Inc()
	if k.rec.Active() {
		k.rec.EmitEnv(g.env, obs.Event{Kind: obs.KindLinkDestroy, Link: l.id})
	}
	for side := 0; side < 2; side++ {
		es := &l.ends[side]
		owner := es.owner
		if owner == nil {
			continue
		}
		notified := false
		if es.send != nil {
			if !es.send.enclosure.Nil() {
				// The move never completes; the enclosed end is released
				// back to the sender (best case; E8 explores the crash
				// case where even this is impossible).
				if el, ok := g.findLink(es.send.enclosure.link); ok {
					el.ends[es.send.enclosure.side].moving = false
				}
			}
			owner.complete(Description{End: EndRef{l.id, side}, Dir: SendDir, Status: Destroyed})
			es.send = nil
			notified = true
		}
		if es.recv != nil {
			owner.complete(Description{End: EndRef{l.id, side}, Dir: RecvDir, Status: Destroyed})
			es.recv = nil
			notified = true
		}
		if !notified && !owner.dead {
			// Unsolicited destruction notice so the owner eventually
			// learns; modeled as a zero-length recv completion.
			owner.complete(Description{End: EndRef{l.id, side}, Dir: RecvDir, Status: Destroyed})
		}
		delete(owner.ends, EndRef{l.id, side})
		es.owner = nil
	}
}

// complete queues a description for Wait.
func (pr *Process) complete(d Description) {
	if pr.dead {
		return
	}
	pr.completions.Put(d)
}

// tryMatch checks whether the send pending on l.ends[sendSide] can match
// a receive on the opposite end, and if so starts the transfer.
func (k *Kernel) tryMatch(l *link, sendSide int) {
	if l.destroyed {
		return
	}
	snd := &l.ends[sendSide]
	rcv := &l.ends[1-sendSide]
	if snd.send == nil || snd.send.matched || rcv.recv == nil || rcv.recv.matched {
		return
	}
	if snd.owner == nil || rcv.owner == nil || snd.moving || rcv.moving {
		return
	}
	snd.send.matched = true
	rcv.recv.matched = true

	n := len(snd.send.data)
	cost := k.costs.MessagePath + sim.Duration(n)*k.costs.PerByte
	if !snd.send.enclosure.Nil() {
		cost += k.costs.MoveAgreement
	}
	sendEnd := EndRef{l.id, sendSide}
	g := snd.owner.g
	if snd.owner.node != rcv.owner.node {
		g.transmit(snd.owner.node, rcv.owner.node, n, cost, func() { k.deliver(g, l, sendEnd) })
	} else {
		wire := sim.Duration(n) * 100 * sim.Nanosecond // local loopback copy
		g.env.After(cost+wire, func() { k.deliver(g, l, sendEnd) })
	}
}

// retransmitDelay is the kernel's frame-loss detection timeout: how
// long after initiating an internode frame the sender resends when an
// injected fault dropped it. Charlotte's real kernel piggybacked acks
// on the link protocol; the constant stands in for that round trip.
const retransmitDelay = 5 * sim.Millisecond

// transmit charges one internode frame on the wire and schedules done
// at its delivery instant, consulting the network's fault hook (if
// any) for the frame's fate. A dropped frame is retransmitted after
// retransmitDelay, re-reserving the medium at retransmission time and
// getting re-judged by the hook (so a healed partition lets the retry
// through). A duplicated frame charges the medium for the ghost copy
// at delivery; the receiver sees one delivery (the kernel's link
// protocol discards duplicates). Extra is injected latency. cpu is the
// kernel path cost, charged once regardless of retries. With no hook
// installed the path is byte-identical to a plain SendTime + After.
func (g *kgroup) transmit(src, dst netsim.NodeID, nbytes int, cpu sim.Duration, done func()) {
	wire := g.net.SendTime(g.env.Now(), src, dst, nbytes)
	if h := g.net.FaultHook(); h != nil {
		v := h.Frame(g.env.Now(), src, dst, nbytes, wire, false)
		if v.Drop {
			g.env.After(cpu+retransmitDelay, func() { g.transmit(src, dst, nbytes, 0, done) })
			return
		}
		wire += v.Extra
		if v.Dup {
			g.env.After(cpu+wire, func() {
				g.net.SendTime(g.env.Now(), src, dst, nbytes) // ghost copy occupies the medium
				done()
			})
			return
		}
	}
	g.env.After(cpu+wire, done)
}

// deliver completes a matched transfer: payload and enclosure reach the
// receiver, and both parties get completion descriptions.
func (k *Kernel) deliver(g *kgroup, l *link, sendEnd EndRef) {
	snd := &l.ends[sendEnd.side]
	rcv := &l.ends[1-sendEnd.side]
	act := snd.send
	ract := rcv.recv
	if act == nil || ract == nil {
		return // link destroyed while in flight; completions already sent
	}
	if l.destroyed {
		return
	}
	sender, receiver := snd.owner, rcv.owner
	snd.send = nil
	rcv.recv = nil

	st := OK
	n := len(act.data)
	data := act.data
	if n > ract.capacity {
		st = Truncated
		n = ract.capacity
		data = data[:n]
	}
	k.rec.Counter(obs.MKernelMessages).Inc()
	k.rec.Counter(obs.MKernelBytes).Add(int64(n))
	if k.rec.Active() {
		k.rec.EmitEnv(g.env, obs.Event{
			Kind: obs.KindKernelDeliver, Proc: sender.id, Peer: receiver.id,
			Link: l.id, Bytes: n,
		})
	}

	// Move the enclosure: ownership passes to the receiver; the
	// three-party agreement concludes.
	if !act.enclosure.Nil() {
		if el, ok := g.findLink(act.enclosure.link); ok {
			ees := &el.ends[act.enclosure.side]
			ees.moving = false
			if ees.owner != nil {
				delete(ees.owner.ends, act.enclosure)
			}
			ees.owner = receiver
			receiver.ends[act.enclosure] = true
			k.rec.Counter(obs.MEnclosureMoves).Inc()
			if k.rec.Active() {
				k.rec.EmitEnv(g.env, obs.Event{
					Kind: obs.KindLinkMove, Proc: sender.id, Peer: receiver.id,
					Link: act.enclosure.link, Detail: act.enclosure.String(),
				})
			}
		}
	}

	sender.complete(Description{End: sendEnd, Dir: SendDir, Status: OK, Length: n})
	receiver.complete(Description{
		End: sendEnd.peer(), Dir: RecvDir, Status: st,
		Length: n, Data: data, Enclosure: act.enclosure,
	})
}
