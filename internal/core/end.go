package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// End is the language-level handle for one end of a LYNX link, owned by
// exactly one process at a time. Each end has one queue of incoming
// requests and one of incoming replies (§2.1); outbound traffic is
// stop-and-wait per message kind, implemented as lists of blocked
// sending coroutines — "request and reply queues can be implemented by
// lists of blocked coroutines in the run-time package for each sending
// process".
type End struct {
	pr *Process
	te TransEnd

	dead    bool
	deadErr error
	// moving is set while the end is enclosed in an in-flight message.
	moving bool

	// Outbound stop-and-wait queues: the head record of each is in
	// flight at the transport; the rest wait their turn.
	outReq []*sendRecord
	outRep []*sendRecord

	// sentUnreceived counts this process's messages on this end that
	// have not yet been received by the far run-time package — the §2.1
	// move rule's first clause.
	sentUnreceived int
	// owedReplies counts requests received on this end and not yet
	// replied to — the move rule's second clause.
	owedReplies int

	// Receiving state.
	explicitOpen bool    // user opened the request queue without a pending Receive
	handler      Handler // Serve handler (spawns a thread per request)
	recvWaiters  []*Thread
	inReq        []*WireMsg         // wanted requests not yet claimed by a thread
	inReqAt      []sim.Time         // arrival time of each queued request (queue_wait_ns)
	replyWaiters map[uint64]*Thread // request seq -> blocked connector
	// earlyReplies holds replies that overtook the delivery confirmation
	// of the request they answer: the sender is still in its send block
	// (the request record is settling), so no replyWaiter exists yet.
	// finishSend hands the reply over the moment the record settles. A
	// transport whose receipt confirmation travels separately from the
	// reply (SODA's completion frame can be dropped and retried while
	// the reply proceeds) makes this ordering routine.
	earlyReplies map[uint64]*Msg

	// lastInterest caches what we last told the transport, to avoid
	// redundant kernel traffic.
	lastWantReq, lastWantRep bool
	interestInit             bool
}

// Handler serves incoming requests; see Process.Serve.
type Handler func(t *Thread, req *Request)

// sendRecord tracks one outbound message through the stop-and-wait
// pipeline.
type sendRecord struct {
	end      *End
	msg      *WireMsg
	t        *Thread // blocked sender; nil after an abort detached it
	tag      uint64
	inFlight bool
	encl     []*End // language-level ends enclosed in msg
}

func (e *End) String() string {
	return fmt.Sprintf("%s/%v", e.pr.name, e.te)
}

// takeQueued pops the head of e's request queue, recording how long the
// message sat waiting for a thread to claim it (queue_wait_ns).
func (e *End) takeQueued() *WireMsg {
	m := e.inReq[0]
	e.inReq = e.inReq[0:copy(e.inReq, e.inReq[1:])]
	if len(e.inReqAt) > 0 {
		at := e.inReqAt[0]
		e.inReqAt = e.inReqAt[0:copy(e.inReqAt, e.inReqAt[1:])]
		pr := e.pr
		wait := sim.Duration(pr.env.Now() - at)
		pr.queueHist.Observe(wait)
		if pr.rec.Active() {
			pr.rec.EmitEnv(pr.env, obs.Event{Kind: obs.KindQueueService, Src: pr.name, Seq: m.Seq, Wait: wait, Detail: m.Op})
		}
	}
	return m
}

// Dead reports whether the link has been destroyed.
func (e *End) Dead() bool { return e.dead }

// Transport returns the transport handle (tests and bindings).
func (e *End) Transport() TransEnd { return e.te }

// wantRequests reports whether incoming requests are currently wanted:
// the request queue is open if a handler is registered, a thread is
// blocked in Receive, or the program opened it explicitly.
func (e *End) wantRequests() bool {
	return !e.dead && (e.handler != nil || len(e.recvWaiters) > 0 || e.explicitOpen)
}

// wantReplies reports whether the reply queue is open: "reply queues are
// opened when a request has been SENT and a reply is expected" (§2.1) —
// so an outbound request still in the send pipeline already opens it,
// not just a registered reply waiter.
func (e *End) wantReplies() bool {
	if e.dead {
		return false
	}
	if len(e.replyWaiters) > 0 {
		return true
	}
	for _, rec := range e.outReq {
		if rec.t != nil {
			return true
		}
	}
	return false
}

// syncInterest pushes the current queue-open state to the transport if
// it changed.
func (e *End) syncInterest() {
	wq, wr := e.wantRequests(), e.wantReplies()
	if e.interestInit && wq == e.lastWantReq && wr == e.lastWantRep {
		return
	}
	e.interestInit = true
	e.lastWantReq, e.lastWantRep = wq, wr
	e.pr.tr.SetInterest(e.te, wq, wr)
}

// movable checks the §2.1 rule for enclosing this end in a message.
func (e *End) movable() error {
	switch {
	case e.dead:
		return ErrLinkDestroyed
	case e.moving:
		return ErrEndMoving
	case e.sentUnreceived > 0:
		return ErrMoveUnreceived
	case e.owedReplies > 0:
		return ErrMoveOwedReply
	}
	return nil
}

// queueFor returns the outbound queue for the given kind.
func (e *End) queueFor(k MsgKind) *[]*sendRecord {
	if k == KindRequest {
		return &e.outReq
	}
	return &e.outRep
}

// Request is an incoming remote-operation request, handed to a Receive
// caller or a Serve handler. The receiver must call Reply (or
// RejectReply) exactly once; until then the process owes a reply on the
// end and may not move it.
type Request struct {
	end     *End
	op      string
	seq     uint64
	data    []byte
	links   []*End
	replied bool
}

// Op returns the remote operation name.
func (r *Request) Op() string { return r.op }

// Data returns the request's parameter bytes.
func (r *Request) Data() []byte { return r.data }

// Links returns the link ends that moved to this process with the
// request.
func (r *Request) Links() []*End { return r.links }

// End returns the link end the request arrived on.
func (r *Request) End() *End { return r.end }
