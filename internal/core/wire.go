// Package core implements the LYNX language run-time package: coroutine
// threads executing in mutual exclusion within a process, duplex links
// carrying RPC-style request/reply traffic, link-by-link message queues
// with explicit open/close control, link movement by enclosure, and the
// exception model — everything §2 of the paper requires, independent of
// the underlying kernel.
//
// The kernel-specific half of each implementation lives in a Transport
// (internal/bind/...). The Transport seam is the exact interface the
// paper studies: which functions sit above it (in this package) and
// which below (in the kernel) determines the size, complexity and speed
// of each implementation.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgKind distinguishes the two LYNX message classes. Each link end has
// one incoming queue per kind.
type MsgKind uint8

// Message kinds.
const (
	KindRequest MsgKind = 1
	KindReply   MsgKind = 2
)

func (k MsgKind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindReply:
		return "reply"
	default:
		return fmt.Sprintf("MsgKind(%d)", uint8(k))
	}
}

// WireMsg is a LYNX message as handed to a Transport: operation name,
// correlation sequence, payload, and the transport handles of enclosed
// link ends. The self-descriptive header fields play the role of the
// "48 bits of descriptive information" §4.2.1 says every implementation
// must carry.
type WireMsg struct {
	Kind MsgKind
	// Op is the remote operation name (confirmed on reply, as the paper
	// notes the run-time package checks operation names and types).
	Op string
	// Seq correlates a reply with its request.
	Seq uint64
	// Data is the marshalled parameter block.
	Data []byte
	// Encl are the transport handles of enclosed link ends, in order.
	Encl []TransEnd
}

// maxOpLen bounds operation names on the wire.
const maxOpLen = 255

// headerLen is the fixed part of the encoding: kind(1) + nencl(1) +
// seq(8) + oplen(1) + datalen(4).
const headerLen = 15

// EncodedLen reports the wire size of the message's header+data (the
// bytes a kernel must carry; enclosures travel by each transport's own
// means).
func (m *WireMsg) EncodedLen() int {
	return headerLen + len(m.Op) + len(m.Data)
}

// Encode marshals header and payload into a fresh byte slice. Enclosure
// handles are NOT encoded — each transport moves them its own way — but
// their count is, so the receiver can verify none were lost.
func (m *WireMsg) Encode() ([]byte, error) {
	if len(m.Op) > maxOpLen {
		return nil, fmt.Errorf("core: op name %q too long (%d > %d)", m.Op, len(m.Op), maxOpLen)
	}
	if len(m.Encl) > 255 {
		return nil, fmt.Errorf("core: too many enclosures (%d)", len(m.Encl))
	}
	buf := make([]byte, 0, m.EncodedLen())
	buf = append(buf, byte(m.Kind), byte(len(m.Encl)))
	buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	buf = append(buf, byte(len(m.Op)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Data)))
	buf = append(buf, m.Op...)
	buf = append(buf, m.Data...)
	return buf, nil
}

// errShortMsg reports a malformed encoding.
var errShortMsg = errors.New("core: short or corrupt wire message")

// DecodeWire unmarshals an encoded message. The returned message has a
// nil Encl slice with the encoded count available via the second result;
// the caller attaches the transport-delivered enclosure handles and must
// check the count matches.
//
// Data aliases buf's tail rather than copying: decoding transfers
// ownership of buf to the message, and the caller must not reuse it.
func DecodeWire(buf []byte) (*WireMsg, int, error) {
	if len(buf) < headerLen {
		return nil, 0, errShortMsg
	}
	kind := MsgKind(buf[0])
	if kind != KindRequest && kind != KindReply {
		return nil, 0, fmt.Errorf("core: bad message kind %d", buf[0])
	}
	nencl := int(buf[1])
	seq := binary.LittleEndian.Uint64(buf[2:10])
	opLen := int(buf[10])
	dataLen := int(binary.LittleEndian.Uint32(buf[11:15]))
	if len(buf) != headerLen+opLen+dataLen {
		return nil, 0, errShortMsg
	}
	op := string(buf[headerLen : headerLen+opLen])
	return &WireMsg{Kind: kind, Op: op, Seq: seq, Data: buf[headerLen+opLen:]}, nencl, nil
}
