package core_test

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/bind/ideal"
	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/sim"
)

// rig is a two-process test rig over the ideal fabric. The link between
// them is created by procA and one end shipped to procB out of band via
// the fabric (MakeLink then hand-carry), modeling initial configuration.
type rig struct {
	env    *sim.Env
	fabric *ideal.Fabric
}

func newRig() *rig {
	env := sim.NewEnv(1)
	return &rig{env: env, fabric: ideal.NewFabric(env, sim.Millisecond, sim.Microsecond)}
}

func cheapCosts() calib.LynxRuntimeCosts {
	return calib.LynxRuntimeCosts{
		PerOperation: 10 * sim.Microsecond,
		PerByte:      10 * sim.Nanosecond,
		PerEnclosure: sim.Microsecond,
	}
}

// spawnPair starts two LYNX processes already joined by a link; mainA
// gets the A end, mainB the B end.
func (r *rig) spawnPair(mainA func(*core.Thread, *core.End), mainB func(*core.Thread, *core.End)) {
	trA := r.fabric.NewTransport("A")
	trB := r.fabric.NewTransport("B")
	// Create the link inside A's transport, then move end b's ownership
	// to B's transport before either process starts (boot-time wiring).
	ta, tb, err := trA.MakeLink()
	if err != nil {
		panic(err)
	}
	r.handCarry(trA, trB, tb)
	endCh := make(chan struct{}) // no concurrency: processes start after wiring
	_ = endCh
	core.NewProcess(r.env, "A", trA, cheapCosts(), func(t *core.Thread) {
		mainA(t, t.AdoptBootEnd(ta))
	})
	core.NewProcess(r.env, "B", trB, cheapCosts(), func(t *core.Thread) {
		mainB(t, t.AdoptBootEnd(tb))
	})
}

// handCarry moves a transport end between transports before processes
// run (test wiring only).
func (r *rig) handCarry(from, to *ideal.Transport, te core.TransEnd) {
	ideal.MoveOwnership(r.fabric, from, to, te.(ideal.EndID))
}

func TestSimpleRPC(t *testing.T) {
	r := newRig()
	var served, replied bool
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			reply, err := th.Connect(e, "double", core.Msg{Data: []byte{21}})
			if err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			if len(reply.Data) != 1 || reply.Data[0] != 42 {
				t.Errorf("reply data %v", reply.Data)
			}
			if reply.Op() != "double" {
				t.Errorf("reply op %q", reply.Op())
			}
			replied = true
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			req, err := th.Receive(e)
			if err != nil {
				t.Errorf("Receive: %v", err)
				return
			}
			if req.Op() != "double" {
				t.Errorf("op %q", req.Op())
			}
			served = true
			if err := th.Reply(req, core.Msg{Data: []byte{req.Data()[0] * 2}}); err != nil {
				t.Errorf("Reply: %v", err)
			}
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !served || !replied {
		t.Fatalf("served=%v replied=%v", served, replied)
	}
}

func TestServeHandlerSpawnsThreads(t *testing.T) {
	r := newRig()
	const n = 5
	got := 0
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			for i := 0; i < n; i++ {
				reply, err := th.Connect(e, "inc", core.Msg{Data: []byte{byte(i)}})
				if err != nil {
					t.Errorf("Connect %d: %v", i, err)
					return
				}
				if reply.Data[0] != byte(i+1) {
					t.Errorf("reply %d: %v", i, reply.Data)
				}
				got++
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Reply(req, core.Msg{Data: []byte{req.Data()[0] + 1}})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("got %d replies", got)
	}
}

func TestBlockedCoroutineDoesNotBlockProcess(t *testing.T) {
	// While one coroutine awaits a slow reply, other coroutines in the
	// same process must keep running (§2: "a blocked process waits...";
	// individual blocked threads release the processor).
	r := newRig()
	var workDone sim.Time
	var replyDone sim.Time
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			th.Fork("worker", func(t2 *core.Thread) {
				t2.Sleep(2 * sim.Millisecond)
				workDone = t2.Now()
			})
			if _, err := th.Connect(e, "slow", core.Msg{}); err != nil {
				t.Errorf("connect: %v", err)
			}
			replyDone = th.Now()
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Sleep(20 * sim.Millisecond) // slow server
				st.Reply(req, core.Msg{})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if workDone == 0 || replyDone == 0 {
		t.Fatalf("workDone=%v replyDone=%v", workDone, replyDone)
	}
	if workDone >= replyDone {
		t.Fatalf("worker (%v) was blocked behind the RPC (%v)", workDone, replyDone)
	}
}

func TestLinkMovesByEnclosure(t *testing.T) {
	// A creates a new link and sends one end to B inside a request; B
	// then serves an RPC on the moved link.
	r := newRig()
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			mine, theirs, err := th.NewLink()
			if err != nil {
				t.Errorf("NewLink: %v", err)
				return
			}
			if _, err := th.Connect(e, "take", core.Msg{Links: []*core.End{theirs}}); err != nil {
				t.Errorf("Connect take: %v", err)
				return
			}
			// Now RPC over the moved link.
			reply, err := th.Connect(mine, "ping", core.Msg{Data: []byte("hi")})
			if err != nil {
				t.Errorf("Connect ping: %v", err)
				return
			}
			if string(reply.Data) != "hi!" {
				t.Errorf("reply %q", reply.Data)
			}
			th.Destroy(mine)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			req, err := th.Receive(e)
			if err != nil {
				t.Errorf("Receive: %v", err)
				return
			}
			if len(req.Links()) != 1 {
				t.Errorf("links %v", req.Links())
				return
			}
			moved := req.Links()[0]
			th.Serve(moved, func(st *core.Thread, r2 *core.Request) {
				st.Reply(r2, core.Msg{Data: append(r2.Data(), '!')})
			})
			th.Reply(req, core.Msg{})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveRuleUnreceivedMessages(t *testing.T) {
	// A link end with an in-flight (unreceived) request cannot be moved.
	r := newRig()
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			busy, farEnd, _ := th.NewLink()
			// Fire a request on `busy` from another thread; the far end
			// (farEnd) is ours but nobody ever receives: stays in flight.
			th.Fork("fire", func(t2 *core.Thread) {
				t2.Connect(busy, "nowhere", core.Msg{}) // blocks forever-ish
			})
			th.Yield() // let the fork start its send
			_, err := th.Connect(e, "take", core.Msg{Links: []*core.End{busy}})
			if !errors.Is(err, core.ErrMoveUnreceived) {
				t.Errorf("move busy end: %v, want ErrMoveUnreceived", err)
			}
			// Cleanup: destroy to unblock the forked thread.
			th.Destroy(farEnd)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Reply(req, core.Msg{})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveRuleOwedReply(t *testing.T) {
	// An end on which a request has been received but not replied cannot
	// be moved.
	r := newRig()
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			if _, err := th.Connect(e, "hold", core.Msg{}); err != nil {
				t.Errorf("Connect: %v", err)
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			req, err := th.Receive(e)
			if err != nil {
				t.Errorf("Receive: %v", err)
				return
			}
			// Owing a reply on e: moving e must fail.
			spare, spareFar, _ := th.NewLink()
			_ = spareFar
			err = func() error {
				// Try to enclose e in a message on spare... but spare's
				// far end is also ours; use a self-check instead: the
				// validation happens before any send.
				_, err := th.Connect(spare, "x", core.Msg{Links: []*core.End{e}})
				return err
			}()
			if !errors.Is(err, core.ErrMoveOwedReply) {
				t.Errorf("move owed end: %v, want ErrMoveOwedReply", err)
			}
			th.Reply(req, core.Msg{})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDestroyRaisesExceptionAtPeer(t *testing.T) {
	r := newRig()
	var connErr error
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			_, connErr = th.Connect(e, "op", core.Msg{})
		},
		func(th *core.Thread, e *core.End) {
			th.Delay(5 * sim.Millisecond)
			th.Destroy(e)
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(connErr, core.ErrLinkDestroyed) {
		t.Fatalf("connect error = %v, want ErrLinkDestroyed", connErr)
	}
}

func TestCrashDestroysLinks(t *testing.T) {
	r := newRig()
	var connErr error
	var bProc *core.Process
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			_, connErr = th.Connect(e, "op", core.Msg{})
		},
		func(th *core.Thread, e *core.End) {
			bProc = th.Process()
			th.Delay(3 * sim.Millisecond)
			th.Process().Crash()
			// Crash kills the simproc at the next park; Delay parks.
			th.Delay(sim.Millisecond)
			t.Error("B survived crash")
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(connErr, core.ErrLinkDestroyed) {
		t.Fatalf("connect error = %v, want ErrLinkDestroyed", connErr)
	}
	if !bProc.Dead() {
		t.Fatal("B not marked dead")
	}
}

func TestAbortBlockedConnector(t *testing.T) {
	// A coroutine blocked awaiting a reply is aborted; the late reply is
	// unwanted, and with the ideal transport the server feels
	// ErrUnwantedReply.
	r := newRig()
	var connErr, replyErr error
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			victim := th.Fork("victim", func(tv *core.Thread) {
				_, connErr = tv.Connect(e, "slow", core.Msg{})
			})
			th.Sleep(5 * sim.Millisecond) // request delivered, reply pending
			th.Abort(victim)
			th.Sleep(50 * sim.Millisecond) // let the reply bounce
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Sleep(10 * sim.Millisecond)
				replyErr = st.Reply(req, core.Msg{})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(connErr, core.ErrAborted) {
		t.Fatalf("connect error = %v, want ErrAborted", connErr)
	}
	if !errors.Is(replyErr, core.ErrUnwantedReply) {
		t.Fatalf("reply error = %v, want ErrUnwantedReply", replyErr)
	}
}

func TestExplicitOpenCloseRequests(t *testing.T) {
	r := newRig()
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			if _, err := th.Connect(e, "op", core.Msg{Data: []byte("x")}); err != nil {
				t.Errorf("Connect: %v", err)
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.OpenRequests(e)
			// Request arrives while we compute; it queues.
			th.Delay(20 * sim.Millisecond)
			req, err := th.Receive(e)
			if err != nil {
				t.Errorf("Receive: %v", err)
				return
			}
			th.Reply(req, core.Msg{})
			th.CloseRequests(e)
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRepliesMatchedBySeq(t *testing.T) {
	// Two coroutines issue different ops on the same link; the server
	// replies out of order; each coroutine must get its own reply.
	r := newRig()
	results := map[string]string{}
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			done := 0
			finish := func(t2 *core.Thread) {
				done++
				if done == 2 {
					t2.Destroy(e)
				}
			}
			th.Fork("fast", func(t2 *core.Thread) {
				rep, err := t2.Connect(e, "fast", core.Msg{})
				if err == nil {
					results["fast"] = string(rep.Data)
				}
				finish(t2)
			})
			rep, err := th.Connect(e, "slow", core.Msg{})
			if err == nil {
				results["slow"] = string(rep.Data)
			}
			finish(th)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				if req.Op() == "slow" {
					st.Sleep(20 * sim.Millisecond)
				}
				st.Reply(req, core.Msg{Data: []byte("reply-" + req.Op())})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if results["fast"] != "reply-fast" || results["slow"] != "reply-slow" {
		t.Fatalf("results %v", results)
	}
}

func TestStopAndWaitOrdering(t *testing.T) {
	// Multiple requests from separate coroutines on one end are received
	// in the order sent (queue FIFO).
	r := newRig()
	var order []string
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			done := 0
			for i := 0; i < 3; i++ {
				name := fmt.Sprint("c", i)
				th.Fork(name, func(t2 *core.Thread) {
					t2.Connect(e, name, core.Msg{})
					done++
					if done == 3 {
						t2.Destroy(e)
					}
				})
			}
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				order = append(order, req.Op())
				st.Reply(req, core.Msg{})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[c0 c1 c2]" {
		t.Fatalf("order %v", order)
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	f := func(op string, seq uint64, data []byte, kindSel bool) bool {
		if len(op) > 200 {
			op = op[:200]
		}
		kind := core.KindRequest
		if kindSel {
			kind = core.KindReply
		}
		m := &core.WireMsg{Kind: kind, Op: op, Seq: seq, Data: data}
		buf, err := m.Encode()
		if err != nil {
			return false
		}
		if len(buf) != m.EncodedLen() {
			return false
		}
		got, nencl, err := core.DecodeWire(buf)
		if err != nil || nencl != 0 {
			return false
		}
		return got.Kind == m.Kind && got.Op == m.Op && got.Seq == m.Seq &&
			string(got.Data) == string(m.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWireDecodeRejectsCorrupt(t *testing.T) {
	m := &core.WireMsg{Kind: core.KindRequest, Op: "op", Data: []byte("data")}
	buf, _ := m.Encode()
	if _, _, err := core.DecodeWire(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated message decoded")
	}
	if _, _, err := core.DecodeWire(nil); err == nil {
		t.Fatal("nil message decoded")
	}
	bad := append([]byte{}, buf...)
	bad[0] = 99
	if _, _, err := core.DecodeWire(bad); err == nil {
		t.Fatal("bad kind decoded")
	}
}

func TestEncodeLimits(t *testing.T) {
	long := make([]byte, 300)
	m := &core.WireMsg{Kind: core.KindRequest, Op: string(long)}
	if _, err := m.Encode(); err == nil {
		t.Fatal("overlong op encoded")
	}
}

func TestProcessExitsWhenIdle(t *testing.T) {
	r := newRig()
	env := r.env
	tr := r.fabric.NewTransport("solo")
	p := core.NewProcess(env, "solo", tr, cheapCosts(), func(t *core.Thread) {
		t.Delay(sim.Millisecond)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !p.Dead() {
		t.Fatal("process did not exit")
	}
}

func TestForkJoinViaYield(t *testing.T) {
	r := newRig()
	tr := r.fabric.NewTransport("solo")
	var order []string
	core.NewProcess(r.env, "solo", tr, cheapCosts(), func(t *core.Thread) {
		order = append(order, "main1")
		t.Fork("child", func(c *core.Thread) {
			order = append(order, "child")
		})
		t.Yield()
		order = append(order, "main2")
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[main1 child main2]" {
		t.Fatalf("order %v", order)
	}
}
