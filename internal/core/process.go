package core

import (
	"fmt"
	"strings"

	"repro/internal/calib"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Observed is implemented by transports that report into an obs
// recorder; core uses it to account its own queue/block points against
// the same registry as the kernel underneath.
type Observed interface {
	Obs() *obs.Recorder
}

// Stats counts run-time package activity for the experiment harness.
type Stats struct {
	RequestsSent    int64
	RepliesSent     int64
	RequestsServed  int64
	UnwantedReplies int64 // replies that arrived with no waiting coroutine
	EnclosuresSent  int64
	EnclosuresRecv  int64
	Aborts          int64
	CancelFailures  int64 // aborted sends the transport could not recall
}

// Process is a LYNX process: an address space with coroutine threads, a
// set of link ends, and a kernel-specific Transport underneath.
type Process struct {
	name  string
	env   *sim.Env
	sp    *sim.Proc
	tr    Transport
	caps  Capabilities
	costs calib.LynxRuntimeCosts

	threads      map[int]*Thread
	readyThreads []*Thread
	yield        chan yieldInfo
	nextTID      int
	liveThreads  int

	ends         map[TransEnd]*End
	endOrder     []TransEnd // creation order, for seed-stable exit teardown
	events       eventQueue
	pendingSends map[uint64]*sendRecord
	pendingWakes []pendingWake
	nextSeq      uint64
	nextTag      uint64

	dead  bool
	stats Stats

	rec       *obs.Recorder  // nil when the transport is unobserved
	blockHist *obs.Histogram // proc_block_ns: time parked at the block point
	queueHist *obs.Histogram // queue_wait_ns: request time in an open queue
}

// NewProcess creates a LYNX process whose main thread runs mainFn, and
// schedules it on env. The transport tr must have been created for this
// process. Runtime overhead is charged per costs.
func NewProcess(env *sim.Env, name string, tr Transport, costs calib.LynxRuntimeCosts, mainFn func(*Thread)) *Process {
	pr := &Process{
		name:         name,
		env:          env,
		tr:           tr,
		caps:         TransportCaps(tr),
		costs:        costs,
		threads:      make(map[int]*Thread),
		yield:        make(chan yieldInfo),
		ends:         make(map[TransEnd]*End),
		pendingSends: make(map[uint64]*sendRecord),
	}
	if o, ok := tr.(Observed); ok {
		pr.rec = o.Obs()
	}
	pr.blockHist = pr.rec.Histogram(obs.MProcBlockNs)
	pr.queueHist = pr.rec.Histogram(obs.MQueueWaitNs)
	pr.events.init(env, "lynx:"+name+".events")
	pr.spawnThread("main", mainFn)
	pr.sp = env.Spawn("lynx:"+name, func(p *sim.Proc) {
		p.OnKill(func() {
			pr.dead = true
			pr.tr.Shutdown()
		})
		pr.dispatch(p)
	})
	// The simproc exists but has not run yet: safe to hand it to the
	// binding before any traffic.
	tr.SetSink(func(ev Event) { pr.events.put(ev) }, pr.sp)
	if sc, ok := tr.(Screened); ok {
		sc.SetScreen(pr.screen)
	}
	return pr
}

// screen is the process's message-screening predicate (see ScreenFunc).
// A reply is wanted if a coroutine awaits that seq — or if the request
// with that seq is still settling (its EvDelivered is queued but not yet
// processed, so the waiter registration is imminent).
func (pr *Process) screen(te TransEnd, kind MsgKind, seq uint64) bool {
	e, ok := pr.ends[te]
	if !ok || e.dead {
		return false
	}
	if kind == KindRequest {
		return e.wantRequests()
	}
	if _, ok := e.replyWaiters[seq]; ok {
		return true
	}
	for _, rec := range e.outReq {
		if rec.msg.Seq == seq && rec.t != nil {
			return true
		}
	}
	return false
}

// Name returns the process name.
func (pr *Process) Name() string { return pr.name }

// Stats returns the run-time package's counters.
func (pr *Process) Stats() *Stats { return &pr.stats }

// Env returns the simulation environment.
func (pr *Process) Env() *sim.Env { return pr.env }

// SimProc returns the underlying simproc (crash injection in tests).
func (pr *Process) SimProc() *sim.Proc { return pr.sp }

// Crash kills the process abruptly: links are destroyed by the kernel
// (transport Shutdown), blocked peers feel exceptions.
func (pr *Process) Crash() { pr.sp.Kill() }

// Dead reports whether the process has terminated or crashed.
func (pr *Process) Dead() bool { return pr.dead || pr.sp.Done() }

// DebugState renders the process's run-time state — live threads with
// their block reasons, pending sends, and per-end queue state — for
// diagnosing a wedged system.
func (pr *Process) DebugState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "process %s: dead=%v liveThreads=%d pendingSends=%d ends=%d\n",
		pr.name, pr.dead, pr.liveThreads, len(pr.pendingSends), len(pr.ends))
	for _, t := range pr.threads {
		fmt.Fprintf(&b, "  thread %d (%s): blocked=%v end=%v\n",
			t.id, t.name, t.blocked.kind, t.blocked.end)
	}
	for _, e := range pr.ends {
		fmt.Fprintf(&b, "  end %v: dead=%v moving=%v handler=%v outReq=%d outRep=%d owed=%d inReq=%d recvWait=%d replyWait=%d\n",
			e.te, e.dead, e.moving, e.handler != nil, len(e.outReq), len(e.outRep),
			e.owedReplies, len(e.inReq), len(e.recvWaiters), len(e.replyWaiters))
	}
	for tag, rec := range pr.pendingSends {
		fmt.Fprintf(&b, "  pending send tag=%d kind=%v end=%v inFlight=%v detached=%v\n",
			tag, rec.msg.Kind, rec.end.te, rec.inFlight, rec.t == nil)
	}
	return b.String()
}

// spawnThread creates a thread and marks it ready.
func (pr *Process) spawnThread(name string, fn func(*Thread)) *Thread {
	pr.nextTID++
	t := &Thread{
		pr:     pr,
		id:     pr.nextTID,
		name:   name,
		resume: make(chan wake),
	}
	pr.threads[t.id] = t
	pr.liveThreads++
	pr.readyThreads = append(pr.readyThreads, t)
	go t.run(fn)
	return t
}

// dispatch is the process's main loop, running on its simproc: run ready
// threads to their next block point; when none are ready, this is the
// process's block point — wait for transport events.
func (pr *Process) dispatch(p *sim.Proc) {
	for {
		// Drain any events that arrived while threads were running, so
		// woken threads and fresh messages interleave fairly.
		for {
			ev, ok := pr.events.tryGet()
			if !ok {
				break
			}
			pr.handleEvent(ev)
		}
		pr.flushWakes()
		if len(pr.readyThreads) > 0 {
			t := pr.readyThreads[0]
			pr.readyThreads = pr.readyThreads[0:copy(pr.readyThreads, pr.readyThreads[1:])]
			pr.resumeThread(t)
			continue
		}
		if pr.idle() {
			break
		}
		// Block point: wait for one of the open queues or a completion.
		blockedAt := pr.env.Now()
		ev := pr.events.get(p)
		wait := sim.Duration(pr.env.Now() - blockedAt)
		pr.blockHist.Observe(wait)
		if pr.rec.Active() {
			pr.rec.EmitEnv(pr.env, obs.Event{Kind: obs.KindQueueWait, Src: pr.name, Wait: wait})
		}
		pr.handleEvent(ev)
	}
	pr.dead = true
	// Orderly exit: destroy every still-live end first, so peers get the
	// language's link-destroyed exception through the normal protocol. A
	// silent disappearance would read as a crash on substrates (SODA)
	// whose crash recovery runs expensive searches. Creation order keeps
	// the announcement sequence seed-stable.
	for _, te := range pr.endOrder {
		if e, ok := pr.ends[te]; ok && !e.dead {
			e.dead = true
			pr.tr.Destroy(te)
		}
	}
	pr.tr.Shutdown()
	pr.env.Trace("lynx", "%s exits", pr.name)
}

// idle reports whether the process has no further work and should
// terminate: no live threads and no prospect of new ones (a Serve
// handler on a live end can still spawn threads).
func (pr *Process) idle() bool {
	if pr.liveThreads > 0 {
		return false
	}
	if len(pr.pendingSends) > 0 {
		return false
	}
	for _, e := range pr.ends {
		if e.handler != nil && !e.dead {
			return false
		}
		if len(e.inReq) > 0 {
			return false
		}
	}
	return true
}

// resumeThread hands the processor to t until it blocks or dies.
func (pr *Process) resumeThread(t *Thread) {
	if t.dead {
		return
	}
	w := wake{}
	if t.hasWake {
		w = t.pendingWake
		t.pendingWake = wake{}
		t.hasWake = false
	}
	t.resume <- w
	info := <-pr.yield
	if info.done {
		pr.liveThreads--
		delete(pr.threads, info.t.id)
	}
}

// wakeThread schedules t to resume with the given wake value at the next
// dispatch opportunity.
func (pr *Process) wakeThread(t *Thread, w wake) {
	pr.pendingWakes = append(pr.pendingWakes, pendingWake{t: t, w: w})
}

// pendingWake carries a wake value to a parked thread.
type pendingWake struct {
	t *Thread
	w wake
}

// deregisterReceiver removes t from every receive-waiter list it is on
// (a ReceiveAny waiter sits on several ends; once one end wakes it, the
// others must forget it immediately or a second delivery could double-
// wake it).
func (pr *Process) deregisterReceiver(t *Thread) {
	remove := func(e *End) {
		for i, wt := range e.recvWaiters {
			if wt == t {
				e.recvWaiters = append(e.recvWaiters[:i], e.recvWaiters[i+1:]...)
				e.syncInterest()
				return
			}
		}
	}
	if t.blocked.end != nil {
		remove(t.blocked.end)
	}
	for _, e := range t.blocked.multi {
		remove(e)
	}
}

// abortThread implements Thread.Abort and link-death unblocking.
func (pr *Process) abortThread(target *Thread, err error) {
	pr.stats.Aborts++
	b := target.blocked
	switch b.kind {
	case blockSend:
		rec := b.sendRec
		if rec.inFlight {
			if pr.tr.CancelSend(rec.end.te, rec.tag) {
				// Recalled before receipt: detach cleanly.
				pr.finishSend(rec, false)
				pr.unmoveEnclosures(rec)
			} else {
				// The message was (or will be) received anyway — the
				// paper's problem case. Detach the coroutine; the
				// eventual EvDelivered settles the record, and any
				// enclosures travel with the message.
				pr.stats.CancelFailures++
				rec.t = nil
			}
		} else {
			// Still queued locally: just remove it.
			q := rec.end.queueFor(rec.msg.Kind)
			for i, r := range *q {
				if r == rec {
					*q = append((*q)[:i], (*q)[i+1:]...)
					break
				}
			}
			delete(pr.pendingSends, rec.tag)
			pr.unmoveEnclosures(rec)
		}
		rec.end.syncInterest()
		pr.wakeThread(target, wake{err: err})
	case blockReply:
		delete(b.end.replyWaiters, b.seq)
		b.end.syncInterest()
		pr.wakeThread(target, wake{err: err})
	case blockReceive:
		pr.deregisterReceiver(target)
		pr.wakeThread(target, wake{err: err})
	default:
		// Ready or running: deliver at next block point.
		target.abortErr = err
	}
}

// handleEvent applies one transport event to runtime state.
func (pr *Process) handleEvent(ev Event) {
	switch ev.Kind {
	case EvIncoming:
		pr.handleIncoming(ev)
	case EvDelivered:
		rec, ok := pr.pendingSends[ev.Tag]
		if !ok {
			return
		}
		pr.finishSend(rec, true)
	case EvSendFailed:
		rec, ok := pr.pendingSends[ev.Tag]
		if !ok {
			return
		}
		pr.finishSend(rec, false)
		pr.unmoveEnclosures(rec)
		if rec.t != nil {
			err := ev.Err
			if err == nil {
				err = ErrLinkDestroyed
			}
			pr.wakeThread(rec.t, wake{err: err})
			rec.t = nil
		}
	case EvLinkDead:
		e, ok := pr.ends[ev.End]
		if !ok {
			return
		}
		pr.killEnd(e, ev.Err)
	case EvTick:
		// Internal wakeup; the work is in pendingWakes.
	}
	pr.flushWakes()
}

// flushWakes moves pending wakes into the ready queue, attaching each
// wake value to its thread for resumeThread to deliver.
func (pr *Process) flushWakes() {
	for i := range pr.pendingWakes {
		t, w := pr.pendingWakes[i].t, pr.pendingWakes[i].w
		pr.pendingWakes[i] = pendingWake{} // release references
		if t.dead {
			continue
		}
		pr.readyThreads = append(pr.readyThreads, t)
		// Stash the wake value for resumeThread delivery.
		t.pendingWake = w
		t.hasWake = true
	}
	pr.pendingWakes = pr.pendingWakes[:0]
}

// handleIncoming dispatches a wanted message.
func (pr *Process) handleIncoming(ev Event) {
	e, ok := pr.ends[ev.End]
	if !ok {
		// A message for an end we no longer own (it moved away after
		// the transport queued the event). The transport's hints will
		// redirect the sender; drop here.
		return
	}
	m := ev.Msg
	// Charge scatter/type-check cost for accepting the message.
	pr.sp.Delay(sim.Duration(len(m.Data)) * pr.costs.PerByte)
	// Adopt enclosures: the moved ends now belong to this process.
	links := make([]*End, 0, len(m.Encl))
	for _, te := range m.Encl {
		links = append(links, pr.adoptEnd(te))
		pr.stats.EnclosuresRecv++
	}
	switch m.Kind {
	case KindRequest:
		e.owedReplies++
		req := &Request{end: e, op: m.Op, seq: m.Seq, data: m.Data, links: links}
		pr.stats.RequestsServed++
		switch {
		case len(e.recvWaiters) > 0:
			t := e.recvWaiters[0]
			e.recvWaiters = e.recvWaiters[0:copy(e.recvWaiters, e.recvWaiters[1:])]
			pr.deregisterReceiver(t)
			pr.wakeThread(t, wake{val: req})
		case e.handler != nil:
			h := e.handler
			pr.spawnThread(fmt.Sprintf("serve:%s", m.Op), func(t *Thread) {
				h(t, req)
			})
		default:
			// Queue opened explicitly; a thread will Receive it later.
			e.inReq = append(e.inReq, m)
			e.inReqAt = append(e.inReqAt, pr.env.Now())
		}
		e.syncInterest()
	case KindReply:
		t, ok := e.replyWaiters[m.Seq]
		if !ok {
			// The reply may have overtaken the delivery confirmation of
			// the request it answers: the connector is then still in its
			// send block, registered on a settling record rather than as
			// a replyWaiter (the same window screen() admits). Hold the
			// reply; finishSend delivers it when the record settles.
			for _, rec := range e.outReq {
				if rec.msg.Seq == m.Seq && rec.t != nil {
					if e.earlyReplies == nil {
						e.earlyReplies = make(map[uint64]*Msg)
					}
					e.earlyReplies[m.Seq] = &Msg{Data: m.Data, Links: links, op: m.Op}
					return
				}
			}
			// No coroutine wants this reply (it was aborted). On
			// capable transports the *sender* has already been failed by
			// the binding; here we just account for it and recover any
			// enclosures back to... nobody: they stay adopted by this
			// process (the language calls this situation a program
			// error; the ends are reachable via Stats for the harness).
			pr.stats.UnwantedReplies++
			return
		}
		delete(e.replyWaiters, m.Seq)
		e.syncInterest()
		if t.blocked.kind == blockReply && t.blocked.op != "" && t.blocked.op != m.Op {
			// Operation-name confirmation failure: the reply does not
			// match the request the coroutine made.
			pr.wakeThread(t, wake{err: ErrBadReply})
			return
		}
		reply := &Msg{Data: m.Data, Links: links, op: m.Op}
		pr.wakeThread(t, wake{val: reply})
	}
}

// adoptEnd registers ownership of a transport end that just moved here
// (or returns the existing End if we already track it).
func (pr *Process) adoptEnd(te TransEnd) *End {
	if e, ok := pr.ends[te]; ok {
		e.moving = false
		return e
	}
	e := pr.newEnd(te)
	return e
}

func (pr *Process) newEnd(te TransEnd) *End {
	e := &End{
		pr:           pr,
		te:           te,
		replyWaiters: make(map[uint64]*Thread),
	}
	pr.ends[te] = e
	pr.endOrder = append(pr.endOrder, te)
	return e
}

// finishSend settles a send record: removes it from the pending map and
// the end's queue head, updates move-rule accounting, wakes the sender
// (delivered case), and pumps the next queued message of that kind.
func (pr *Process) finishSend(rec *sendRecord, delivered bool) {
	delete(pr.pendingSends, rec.tag)
	e := rec.end
	q := e.queueFor(rec.msg.Kind)
	for i, r := range *q {
		if r == rec {
			*q = append((*q)[:i], (*q)[i+1:]...)
			break
		}
	}
	if rec.inFlight {
		e.sentUnreceived--
	}
	rec.inFlight = false
	if delivered {
		// Enclosed ends have left this process for good — unless the
		// message travelled a loopback link and adoptEnd already
		// reclaimed the end (its moving flag was cleared on re-adoption).
		for _, enc := range rec.encl {
			if enc.moving {
				delete(pr.ends, enc.te)
			}
		}
		if rec.msg.Kind == KindReply {
			e.owedReplies--
			if rec.t != nil {
				pr.wakeThread(rec.t, wake{})
				rec.t = nil
			}
		}
		// Request senders stay blocked awaiting the reply; transition
		// their block state — unless the reply already overtook this
		// confirmation, in which case hand it over now.
		if rec.msg.Kind == KindRequest && rec.t != nil {
			if reply, ok := e.earlyReplies[rec.msg.Seq]; ok {
				delete(e.earlyReplies, rec.msg.Seq)
				if rec.msg.Op != "" && reply.op != rec.msg.Op {
					pr.wakeThread(rec.t, wake{err: ErrBadReply})
				} else {
					pr.wakeThread(rec.t, wake{val: reply})
				}
				rec.t = nil
			} else {
				rec.t.blocked = blockState{kind: blockReply, end: e, seq: rec.msg.Seq, op: rec.msg.Op}
				e.replyWaiters[rec.msg.Seq] = rec.t
				e.syncInterest()
			}
		}
	}
	if rec.msg.Kind == KindRequest {
		if _, ok := e.earlyReplies[rec.msg.Seq]; ok {
			// Settled without a live waiter (failed send or aborted
			// connector): the held reply is unwanted after all.
			delete(e.earlyReplies, rec.msg.Seq)
			pr.stats.UnwantedReplies++
		}
	}
	pr.pump(e, rec.msg.Kind)
	e.syncInterest()
}

// pump starts the next queued send of the given kind if none is in
// flight.
func (pr *Process) pump(e *End, k MsgKind) {
	if e.dead {
		return
	}
	q := *e.queueFor(k)
	if len(q) == 0 || q[0].inFlight {
		return
	}
	rec := q[0]
	rec.inFlight = true
	e.sentUnreceived++
	if err := pr.tr.StartSend(e.te, rec.msg, rec.tag); err != nil {
		rec.inFlight = false
		e.sentUnreceived--
		pr.finishSend(rec, false)
		pr.unmoveEnclosures(rec)
		if rec.t != nil {
			pr.wakeThread(rec.t, wake{err: err})
			rec.t = nil
		}
	}
}

// unmoveEnclosures releases the moving mark after a failed/aborted send.
func (pr *Process) unmoveEnclosures(rec *sendRecord) {
	for _, enc := range rec.encl {
		if !enc.dead {
			enc.moving = false
		}
	}
}

// killEnd marks an end dead and raises exceptions in every thread
// touching it.
func (pr *Process) killEnd(e *End, cause error) {
	if e.dead {
		return
	}
	if cause == nil {
		cause = ErrLinkDestroyed
	}
	e.dead = true
	e.deadErr = cause
	for _, rec := range append(append([]*sendRecord{}, e.outReq...), e.outRep...) {
		delete(pr.pendingSends, rec.tag)
		pr.unmoveEnclosures(rec)
		if rec.t != nil {
			pr.wakeThread(rec.t, wake{err: cause})
			rec.t = nil
		}
	}
	e.outReq, e.outRep = nil, nil
	for len(e.recvWaiters) > 0 {
		t := e.recvWaiters[0]
		e.recvWaiters = e.recvWaiters[0:copy(e.recvWaiters, e.recvWaiters[1:])]
		// A ReceiveAny waiter keeps waiting while any of its other ends
		// is still alive: only this end's queue died.
		if len(t.blocked.multi) > 0 {
			anyLive := false
			for _, me := range t.blocked.multi {
				if !me.dead {
					anyLive = true
					break
				}
			}
			if anyLive {
				continue
			}
		}
		pr.deregisterReceiver(t)
		pr.wakeThread(t, wake{err: cause})
	}
	for seq, t := range e.replyWaiters {
		delete(e.replyWaiters, seq)
		pr.wakeThread(t, wake{err: cause})
	}
	e.handler = nil
	e.inReq = nil
	e.inReqAt = nil
}
