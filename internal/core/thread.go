package core

import (
	"fmt"

	"repro/internal/sim"
)

// Thread is a LYNX thread of control: a coroutine within a process.
// Threads execute in mutual exclusion — exactly one thread (or the
// process's dispatcher) runs at a time, and control changes hands only
// at well-defined block points — mirroring §2's "threads execute in
// mutual exclusion and may be managed by the language run-time package,
// much like the coroutines of Modula-2".
//
// All Thread methods must be called from the thread's own goroutine
// while it is the running thread.
type Thread struct {
	pr   *Process
	id   int
	name string
	// resume carries the wake value when the dispatcher reschedules us.
	resume chan wake
	dead   bool
	// abortErr, when set by Abort, is delivered at the thread's next
	// (or current) block point.
	abortErr error
	// blocked describes what the thread is waiting on, for diagnostics
	// and for Abort to find and detach the waiter registration.
	blocked blockState
	// pendingWake carries the wake value attached by flushWakes until
	// resumeThread delivers it (valid only while hasWake is set).
	pendingWake wake
	hasWake     bool
}

// wake is what a parked thread receives on resumption.
type wake struct {
	val any
	err error
}

// blockState records why a thread is parked.
type blockState struct {
	kind    blockKind
	end     *End
	sendRec *sendRecord // kind == blockSend
	seq     uint64      // kind == blockReply
	op      string      // kind == blockReply: expected operation name
	multi   []*End      // kind == blockReceive via ReceiveAny
}

type blockKind int

const (
	blockNone    blockKind = iota
	blockSend              // awaiting delivery of a sent message
	blockReply             // awaiting a reply to a delivered request
	blockReceive           // awaiting an incoming request
	blockSleep             // in Thread.Sleep
)

// yieldInfo is what a thread sends the dispatcher when giving up the
// processor.
type yieldInfo struct {
	t    *Thread
	done bool // thread function returned
}

// ID returns the thread id (unique within its process).
func (t *Thread) ID() int { return t.id }

// Name returns the thread's label.
func (t *Thread) Name() string { return t.name }

// Process returns the owning process.
func (t *Thread) Process() *Process { return t.pr }

// park gives the processor back to the dispatcher and blocks until the
// dispatcher reschedules this thread, returning the wake value. If an
// abort is pending it is delivered here.
func (t *Thread) park() wake {
	t.pr.yield <- yieldInfo{t: t}
	w := <-t.resume
	if t.abortErr != nil && w.err == nil {
		w.err = t.abortErr
		t.abortErr = nil
	}
	t.blocked = blockState{}
	return w
}

// Yield voluntarily gives other threads (and incoming messages) a chance
// to run; the thread continues afterwards. This is a block point.
func (t *Thread) Yield() {
	t.pr.readyThreads = append(t.pr.readyThreads, t)
	t.park()
}

// Delay charges d of virtual compute time to the process while this
// thread runs (the thread keeps the processor; this is NOT a block
// point — other threads do not run, per the mutual exclusion rule).
func (t *Thread) Delay(d sim.Duration) {
	t.pr.sp.Delay(d)
}

// Sleep blocks this thread for d of virtual time. Unlike Delay, this IS
// a block point: other threads (and incoming messages) run meanwhile.
// It returns early with an error only if the thread is aborted.
func (t *Thread) Sleep(d sim.Duration) error {
	pr := t.pr
	th := t
	pr.env.After(d, func() {
		pr.wakeThread(th, wake{})
		pr.events.put(Event{Kind: EvTick})
	})
	t.blocked = blockState{kind: blockSleep}
	w := t.park()
	return w.err
}

// SleepUntil blocks this thread until absolute virtual time at (or
// returns immediately if at is not in the future). Like Sleep it is a
// block point; unlike Sleep it cannot drift — a generator thread that
// does work between wakeups still wakes exactly on its schedule, which
// is what open-loop arrival processes need.
func (t *Thread) SleepUntil(at sim.Time) error {
	if at <= t.Now() {
		return nil
	}
	pr := t.pr
	th := t
	pr.env.At(at, func() {
		pr.wakeThread(th, wake{})
		pr.events.put(Event{Kind: EvTick})
	})
	t.blocked = blockState{kind: blockSleep}
	w := t.park()
	return w.err
}

// Now reports current virtual time.
func (t *Thread) Now() sim.Time { return t.pr.sp.Now() }

// Fork creates a new thread running fn, scheduled after the current
// thread next blocks. It returns the new thread.
func (t *Thread) Fork(name string, fn func(*Thread)) *Thread {
	return t.pr.spawnThread(name, fn)
}

// Abort delivers an asynchronous exception to another thread of the same
// process: if target is blocked, it is unblocked with ErrAborted (its
// pending operation is cancelled as far as the transport allows); if it
// is ready or running, the exception surfaces at its next block point.
// Aborting yourself or a dead thread is a no-op. This models LYNX's
// local exceptions aborting a waiting coroutine (§3.2.1 scenario c).
func (t *Thread) Abort(target *Thread) {
	if target == t || target.dead {
		return
	}
	t.pr.abortThread(target, ErrAborted)
}

// run is the goroutine body of a thread.
func (t *Thread) run(fn func(*Thread)) {
	defer func() {
		if r := recover(); r != nil {
			if sim.IsKilled(r) {
				// The whole process was killed while this thread held the
				// proc token: finish the proc's lifecycle from here (the
				// dispatcher goroutine is abandoned).
				t.pr.sp.FinishFromBorrower()
				return
			}
			t.pr.env.Stop(fmt.Errorf("lynx: process %s thread %d (%s) panicked: %v",
				t.pr.name, t.id, t.name, r))
		}
		t.dead = true
		t.pr.yield <- yieldInfo{t: t, done: true}
	}()
	// Wait for the first dispatch.
	<-t.resume
	if t.abortErr != nil {
		return // aborted before it ever ran
	}
	fn(t)
}
