package core

import (
	"fmt"

	"repro/internal/sim"
)

// Msg is a language-level LYNX message: a parameter block plus link ends
// to move. Receipt of a message that encloses ends has the side effect
// of moving those ends from the sending process to the receiver (§2.1).
type Msg struct {
	Data  []byte
	Links []*End
	op    string // set on replies: the confirmed operation name
}

// Op returns the operation name carried by a reply Msg.
func (m *Msg) Op() string { return m.op }

// checkContext panics if the calling goroutine is not the running thread
// of its process; the blocking operations below hand the processor
// around and would corrupt state if misused. (Test-only misuse; real
// callers get threads from Fork/Serve.)
func (t *Thread) checkContext() {
	if t.dead {
		panic(ErrProcessDown)
	}
}

// NewLink creates a fresh link with both ends owned by this process —
// typically one end is immediately passed to another process by
// enclosure.
func (t *Thread) NewLink() (*End, *End, error) {
	t.checkContext()
	pr := t.pr
	ta, tb, err := pr.tr.MakeLink()
	if err != nil {
		return nil, nil, err
	}
	return pr.newEnd(ta), pr.newEnd(tb), nil
}

// Destroy destroys the link attached to e. The far end's process feels
// ErrLinkDestroyed on any operation touching its end.
func (t *Thread) Destroy(e *End) error {
	t.checkContext()
	if e.pr != t.pr {
		return ErrNotOwner
	}
	if e.dead {
		return ErrLinkDestroyed
	}
	if e.moving {
		return ErrEndMoving
	}
	err := t.pr.tr.Destroy(e.te)
	t.pr.killEnd(e, ErrLinkDestroyed)
	delete(t.pr.ends, e.te)
	return err
}

// validateEnclosures checks the §2.1 move rules for every enclosed end
// and marks them moving. On error nothing is marked.
func (t *Thread) validateEnclosures(onEnd *End, links []*End) ([]TransEnd, error) {
	pr := t.pr
	tes := make([]TransEnd, 0, len(links))
	for _, enc := range links {
		if enc.pr != pr {
			return nil, ErrNotOwner
		}
		if _, ok := pr.ends[enc.te]; !ok {
			return nil, ErrNotOwner
		}
		if enc == onEnd {
			return nil, fmt.Errorf("lynx: cannot enclose an end of the link it travels on")
		}
		if err := enc.movable(); err != nil {
			return nil, err
		}
		tes = append(tes, enc.te)
	}
	for _, enc := range links {
		enc.moving = true
	}
	return tes, nil
}

// startSend queues a message on the end's stop-and-wait pipeline and
// blocks the thread until the far run-time package receives it (replies)
// or until the reply arrives (requests, handled by caller via the
// blockReply transition in finishSend).
func (t *Thread) startSend(e *End, m *WireMsg, encl []*End) (*sendRecord, error) {
	pr := t.pr
	pr.nextTag++
	rec := &sendRecord{end: e, msg: m, t: t, tag: pr.nextTag, encl: encl}
	pr.pendingSends[rec.tag] = rec
	q := e.queueFor(m.Kind)
	*q = append(*q, rec)
	pr.stats.EnclosuresSent += int64(len(encl))
	// Charge the run-time package's gather/type-check/table overhead.
	t.Delay(pr.costs.PerOperation/2 +
		sim.Duration(len(m.Data))*pr.costs.PerByte +
		sim.Duration(len(encl))*pr.costs.PerEnclosure)
	pr.pump(e, m.Kind)
	return rec, nil
}

// Connect performs a remote operation: it sends a request on e and
// blocks the calling thread until the reply arrives. Link ends in
// msg.Links move to the far process. The process itself keeps running
// other threads meanwhile.
func (t *Thread) Connect(e *End, op string, msg Msg) (*Msg, error) {
	t.checkContext()
	pr := t.pr
	if e.pr != pr {
		return nil, ErrNotOwner
	}
	if e.dead {
		return nil, e.deadError()
	}
	if e.moving {
		return nil, ErrEndMoving
	}
	tes, err := t.validateEnclosures(e, msg.Links)
	if err != nil {
		return nil, err
	}
	pr.nextSeq++
	wm := &WireMsg{Kind: KindRequest, Op: op, Seq: pr.nextSeq, Data: msg.Data, Encl: tes}
	pr.stats.RequestsSent++
	rec, err := t.startSend(e, wm, msg.Links)
	if err != nil {
		return nil, err
	}
	// Sending a request opens the reply queue (§2.1).
	e.syncInterest()
	t.blocked = blockState{kind: blockSend, end: e, sendRec: rec}
	w := t.park()
	if w.err != nil {
		return nil, w.err
	}
	reply, ok := w.val.(*Msg)
	if !ok {
		return nil, fmt.Errorf("lynx: internal: bad wake value %T", w.val)
	}
	return reply, nil
}

// Receive blocks until a request arrives on e and returns it. The end's
// request queue is open while any thread waits in Receive.
func (t *Thread) Receive(e *End) (*Request, error) {
	t.checkContext()
	pr := t.pr
	if e.pr != pr {
		return nil, ErrNotOwner
	}
	if e.dead {
		return nil, e.deadError()
	}
	// A request may already be queued (explicitly-opened queue).
	if len(e.inReq) > 0 {
		m := e.takeQueued()
		links := make([]*End, 0, len(m.Encl))
		for _, te := range m.Encl {
			links = append(links, pr.adoptEnd(te))
		}
		return &Request{end: e, op: m.Op, seq: m.Seq, data: m.Data, links: links}, nil
	}
	e.recvWaiters = append(e.recvWaiters, t)
	e.syncInterest()
	t.blocked = blockState{kind: blockReceive, end: e}
	w := t.park()
	if w.err != nil {
		return nil, w.err
	}
	req, ok := w.val.(*Request)
	if !ok {
		return nil, fmt.Errorf("lynx: internal: bad wake value %T", w.val)
	}
	return req, nil
}

// ReceiveAny blocks until a request arrives on ANY of the given ends and
// returns it — §2.1's block point semantics: "a blocked process waits
// until … an incoming message is available in at least one of its open
// queues. In the latter case, the process chooses a non-empty queue,
// receives that queue's first message, and executes through to the next
// block point." All the listed ends' request queues are open while the
// thread waits.
func (t *Thread) ReceiveAny(ends ...*End) (*Request, error) {
	t.checkContext()
	pr := t.pr
	if len(ends) == 0 {
		return nil, fmt.Errorf("lynx: ReceiveAny with no ends")
	}
	live := 0
	for _, e := range ends {
		if e.pr != pr {
			return nil, ErrNotOwner
		}
		if e.dead {
			continue
		}
		live++
		// Already-queued request? Take the first (fair enough: callers
		// list ends in their preferred order, and arrival order decided
		// what is queued).
		if len(e.inReq) > 0 {
			m := e.takeQueued()
			links := make([]*End, 0, len(m.Encl))
			for _, te := range m.Encl {
				links = append(links, pr.adoptEnd(te))
			}
			return &Request{end: e, op: m.Op, seq: m.Seq, data: m.Data, links: links}, nil
		}
	}
	if live == 0 {
		return nil, ErrLinkDestroyed
	}
	// Register as a waiter on every live end; the first delivery wins
	// and the dispatcher deregisters us from the others.
	for _, e := range ends {
		if !e.dead {
			e.recvWaiters = append(e.recvWaiters, t)
			e.syncInterest()
		}
	}
	t.blocked = blockState{kind: blockReceive, multi: ends}
	w := t.park()
	// Deregister from all ends (the one that woke us already removed us).
	for _, e := range ends {
		for i, wt := range e.recvWaiters {
			if wt == t {
				e.recvWaiters = append(e.recvWaiters[:i], e.recvWaiters[i+1:]...)
				break
			}
		}
		if !e.dead {
			e.syncInterest()
		}
	}
	if w.err != nil {
		return nil, w.err
	}
	req, ok := w.val.(*Request)
	if !ok {
		return nil, fmt.Errorf("lynx: internal: bad wake value %T", w.val)
	}
	return req, nil
}

// Reply answers a received request and blocks the calling thread until
// the client's run-time package has taken the reply (stop-and-wait). On
// transports that support it, ErrUnwantedReply is raised here if the
// requesting coroutine aborted.
func (t *Thread) Reply(req *Request, msg Msg) error {
	t.checkContext()
	pr := t.pr
	e := req.end
	if req.replied {
		return fmt.Errorf("lynx: request %q already replied", req.op)
	}
	if e.dead {
		return e.deadError()
	}
	tes, err := t.validateEnclosures(e, msg.Links)
	if err != nil {
		return err
	}
	req.replied = true
	wm := &WireMsg{Kind: KindReply, Op: req.op, Seq: req.seq, Data: msg.Data, Encl: tes}
	pr.stats.RepliesSent++
	rec, err := t.startSend(e, wm, msg.Links)
	if err != nil {
		return err
	}
	t.blocked = blockState{kind: blockSend, end: e, sendRec: rec}
	w := t.park()
	return w.err
}

// Serve registers a handler for requests on e: each incoming request
// spawns a fresh thread running h, the LYNX entry-procedure model. Pass
// nil to deregister (closing the queue if nothing else holds it open).
func (pr *Process) ServeEnd(e *End, h Handler) error {
	if e.pr != pr {
		return ErrNotOwner
	}
	if e.dead {
		return e.deadError()
	}
	e.handler = h
	e.syncInterest()
	return nil
}

// Serve is the thread-context form of ServeEnd.
func (t *Thread) Serve(e *End, h Handler) error {
	t.checkContext()
	return t.pr.ServeEnd(e, h)
}

// OpenRequests opens e's request queue without a pending Receive; a
// matching CloseRequests revokes it. Arrived-but-unclaimed requests wait
// in the queue for a later Receive. This is the explicit open/close
// control of §2.1 (and the source of Charlotte's failed-Cancel traffic).
func (t *Thread) OpenRequests(e *End) error {
	t.checkContext()
	if e.pr != t.pr {
		return ErrNotOwner
	}
	if e.dead {
		return e.deadError()
	}
	e.explicitOpen = true
	e.syncInterest()
	return nil
}

// CloseRequests closes an explicitly-opened request queue.
func (t *Thread) CloseRequests(e *End) error {
	t.checkContext()
	if e.pr != t.pr {
		return ErrNotOwner
	}
	e.explicitOpen = false
	e.syncInterest()
	return nil
}

// AdoptBootEnd registers a transport end that was assigned to this
// process before it started (boot-time wiring: the way a LYNX process is
// born holding the link ends its loader gave it) and returns the
// language-level End.
func (t *Thread) AdoptBootEnd(te TransEnd) *End {
	t.checkContext()
	return t.pr.adoptEnd(te)
}

// deadError returns the recorded cause of death.
func (e *End) deadError() error {
	if e.deadErr != nil {
		return e.deadErr
	}
	return ErrLinkDestroyed
}
