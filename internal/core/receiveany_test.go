package core_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/bind/ideal"
	"repro/internal/core"
	"repro/internal/sim"
)

// multiRig wires one server to n clients over the ideal fabric.
func multiRig(t *testing.T, n int, serverMain func(*core.Thread, []*core.End),
	clientMain func(i int, th *core.Thread, e *core.End)) *sim.Env {
	env := sim.NewEnv(1)
	fab := ideal.NewFabric(env, sim.Millisecond, 0)
	srvTr := fab.NewTransport("server")
	srvEnds := make([]core.TransEnd, n)
	clTrs := make([]*ideal.Transport, n)
	clEnds := make([]core.TransEnd, n)
	for i := 0; i < n; i++ {
		a, b, err := srvTr.MakeLink()
		if err != nil {
			t.Fatal(err)
		}
		clTrs[i] = fab.NewTransport(fmt.Sprint("client", i))
		ideal.MoveOwnership(fab, srvTr, clTrs[i], b.(ideal.EndID))
		srvEnds[i], clEnds[i] = a, b
	}
	core.NewProcess(env, "server", srvTr, cheapCosts(), func(th *core.Thread) {
		ends := make([]*core.End, n)
		for i, te := range srvEnds {
			ends[i] = th.AdoptBootEnd(te)
		}
		serverMain(th, ends)
	})
	for i := 0; i < n; i++ {
		i := i
		core.NewProcess(env, fmt.Sprint("client", i), clTrs[i], cheapCosts(), func(th *core.Thread) {
			clientMain(i, th, th.AdoptBootEnd(clEnds[i]))
		})
	}
	return env
}

func TestReceiveAnyPicksWhicheverArrives(t *testing.T) {
	var served []string
	env := multiRig(t, 3,
		func(th *core.Thread, ends []*core.End) {
			for i := 0; i < 3; i++ {
				req, err := th.ReceiveAny(ends...)
				if err != nil {
					t.Errorf("ReceiveAny: %v", err)
					return
				}
				served = append(served, req.Op())
				th.Reply(req, core.Msg{})
			}
			for _, e := range ends {
				th.Destroy(e)
			}
		},
		func(i int, th *core.Thread, e *core.End) {
			// Stagger arrivals in reverse client order.
			th.Sleep(sim.Duration(3-i) * 10 * sim.Millisecond)
			if _, err := th.Connect(e, fmt.Sprint("op", i), core.Msg{}); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		},
	)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(served) != "[op2 op1 op0]" {
		t.Fatalf("served %v (want arrival order op2,op1,op0)", served)
	}
}

func TestReceiveAnyDrainsQueuedFirst(t *testing.T) {
	env := multiRig(t, 2,
		func(th *core.Thread, ends []*core.End) {
			// Open both queues explicitly; let requests arrive while we
			// compute, then ReceiveAny must return without blocking.
			th.OpenRequests(ends[0])
			th.OpenRequests(ends[1])
			th.Sleep(30 * sim.Millisecond)
			for i := 0; i < 2; i++ {
				req, err := th.ReceiveAny(ends...)
				if err != nil {
					t.Errorf("ReceiveAny: %v", err)
					return
				}
				th.Reply(req, core.Msg{})
			}
			for _, e := range ends {
				th.Destroy(e)
			}
		},
		func(i int, th *core.Thread, e *core.End) {
			if _, err := th.Connect(e, "op", core.Msg{}); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		},
	)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReceiveAnyAllEndsDead(t *testing.T) {
	env := multiRig(t, 2,
		func(th *core.Thread, ends []*core.End) {
			th.Destroy(ends[0])
			th.Destroy(ends[1])
			if _, err := th.ReceiveAny(ends...); !errors.Is(err, core.ErrLinkDestroyed) {
				t.Errorf("ReceiveAny on dead ends: %v", err)
			}
		},
		func(i int, th *core.Thread, e *core.End) {},
	)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReceiveAnyPeerDeathUnblocks(t *testing.T) {
	var recvErr error
	env := multiRig(t, 2,
		func(th *core.Thread, ends []*core.End) {
			_, recvErr = th.ReceiveAny(ends...)
			for _, e := range ends {
				if !e.Dead() {
					th.Destroy(e)
				}
			}
		},
		func(i int, th *core.Thread, e *core.End) {
			th.Sleep(5 * sim.Millisecond)
			if i == 0 {
				th.Process().Crash()
				th.Sleep(sim.Millisecond)
			}
		},
	)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(recvErr, core.ErrLinkDestroyed) {
		t.Fatalf("recv err = %v", recvErr)
	}
}

func TestReceiveAnyAbort(t *testing.T) {
	var recvErr error
	env := multiRig(t, 2,
		func(th *core.Thread, ends []*core.End) {
			waiter := th.Fork("waiter", func(tv *core.Thread) {
				_, recvErr = tv.ReceiveAny(ends...)
			})
			th.Sleep(5 * sim.Millisecond)
			th.Abort(waiter)
			th.Sleep(5 * sim.Millisecond)
			for _, e := range ends {
				th.Destroy(e)
			}
		},
		func(i int, th *core.Thread, e *core.End) {
			// Stay alive past the abort so the links outlive the wait.
			th.Sleep(50 * sim.Millisecond)
		},
	)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(recvErr, core.ErrAborted) {
		t.Fatalf("recv err = %v", recvErr)
	}
}

func TestReceiveAnyNoDoubleWake(t *testing.T) {
	// Two requests arrive in the same dispatch batch while one thread
	// multi-waits: it must be woken exactly once, and the second request
	// must stay queued for the next ReceiveAny.
	var got []string
	env := multiRig(t, 2,
		func(th *core.Thread, ends []*core.End) {
			for i := 0; i < 2; i++ {
				req, err := th.ReceiveAny(ends...)
				if err != nil {
					t.Errorf("ReceiveAny %d: %v", i, err)
					return
				}
				got = append(got, req.Op())
				th.Reply(req, core.Msg{})
			}
			for _, e := range ends {
				th.Destroy(e)
			}
		},
		func(i int, th *core.Thread, e *core.End) {
			// Both clients send at the same virtual instant.
			if _, err := th.Connect(e, fmt.Sprint("op", i), core.Msg{}); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		},
	)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] == got[1] {
		t.Fatalf("served %v", got)
	}
}
