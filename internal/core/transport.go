package core

import "repro/internal/sim"

// TransEnd is a transport's opaque handle for one end of a link. Handles
// must be comparable (they key maps in the run-time package): Charlotte
// uses kernel link-end capabilities, SODA a pair of advertised names,
// Chrysalis a memory-object name.
type TransEnd any

// EventKind classifies transport events delivered to the run-time
// package at block points.
type EventKind int

// Transport event kinds.
const (
	// EvIncoming: a wanted message has arrived on End. Msg is complete
	// (all enclosures present, already re-homed to this process's
	// transport).
	EvIncoming EventKind = iota
	// EvDelivered: a message this process sent (identified by Tag) has
	// been received by the far end's run-time package. Unblocks the
	// sending coroutine per §2.1's stop-and-wait discipline.
	EvDelivered
	// EvSendFailed: a sent message will never be received (link
	// destroyed, peer crashed, or — on transports that can detect it —
	// the reply was no longer wanted). Err says why.
	EvSendFailed
	// EvLinkDead: the link was destroyed by the far end or its owner
	// crashed. All operations on End must raise exceptions.
	EvLinkDead
	// EvTick is an internal wakeup used by the run-time package itself
	// (thread sleeps). Bindings never emit it.
	EvTick
)

func (k EventKind) String() string {
	switch k {
	case EvIncoming:
		return "incoming"
	case EvDelivered:
		return "delivered"
	case EvSendFailed:
		return "send-failed"
	case EvLinkDead:
		return "link-dead"
	case EvTick:
		return "tick"
	default:
		return "event?"
	}
}

// Event is one transport notification.
type Event struct {
	Kind EventKind
	End  TransEnd
	Msg  *WireMsg // EvIncoming only
	Tag  uint64   // EvDelivered / EvSendFailed
	Err  error    // EvSendFailed / EvLinkDead
}

// Transport is the kernel-specific half of a LYNX implementation: one
// instance per LYNX process. All methods are called from the process's
// simproc context (they may charge virtual time and block), except where
// noted.
//
// The interface is deliberately the *union* of what the three kernels
// can support; each binding implements the contract with whatever
// protocol its kernel demands (and the differences are the paper's
// subject). In particular:
//
//   - screening: EvIncoming must only deliver *wanted* messages, where
//     wanted means requests while SetInterest(_, true, _) is in effect
//     and replies while SetInterest(_, _, true) is in effect. Kernels
//     that pre-receive unwanted messages (Charlotte) must bounce them
//     back internally (retry/forbid/allow) without surfacing them.
//   - enclosures: StartSend may need several kernel messages to move
//     multiple ends (Charlotte's packetization); EvIncoming surfaces the
//     reassembled whole.
//   - delivery: EvDelivered means the far run-time package has the
//     message, not merely the far kernel.
type Transport interface {
	// SetSink installs the event delivery callback and hands the binding
	// the process's simproc (for charging kernel-call CPU time when
	// invoked from process context). The run-time package calls it
	// exactly once, before any other method. Bindings invoke the sink
	// from simproc or scheduler-callback context; it never blocks.
	SetSink(sink func(Event), sp *sim.Proc)
	// MakeLink creates a link; both end handles are initially owned by
	// this process.
	MakeLink() (TransEnd, TransEnd, error)
	// Destroy destroys the link one of whose ends is te. The far end's
	// process learns via EvLinkDead.
	Destroy(te TransEnd) error
	// StartSend begins transmitting m on te. The send is identified by
	// tag; its fate arrives as EvDelivered or EvSendFailed. Enclosed
	// ends in m.Encl leave this process's ownership when delivery
	// succeeds. At most one send per (end, message-kind) is in flight;
	// the run-time package serializes the rest (stop-and-wait).
	StartSend(te TransEnd, m *WireMsg, tag uint64) error
	// CancelSend tries to abort an in-flight send (a coroutine aborted
	// by an exception). It reports whether the message is guaranteed
	// unreceived; false means it was (or may yet be) received — the
	// paper's problematic case.
	CancelSend(te TransEnd, tag uint64) bool
	// SetInterest declares which incoming message kinds are currently
	// wanted on te (the end's request queue open state, and whether any
	// coroutine awaits a reply).
	SetInterest(te TransEnd, wantRequests, wantReplies bool)
	// Shutdown destroys every link still attached (process termination).
	// It must not block or charge time: it runs from crash hooks.
	Shutdown()
}

// ScreenFunc is the run-time package's message-screening predicate: it
// reports whether a message of the given kind (and, for replies, seq)
// arriving on te is currently wanted. Lesson two of the paper: instead
// of describing wanted messages to the kernel, the application layer
// provides the screening function itself. Transports whose kernels
// support application-level screening (SODA's interrupt handler,
// Chrysalis's shared-memory flags) call it at screening time.
type ScreenFunc func(te TransEnd, kind MsgKind, seq uint64) bool

// Screened is implemented by transports that accept a screen function.
type Screened interface {
	SetScreen(ScreenFunc)
}

// Capabilities describes optional transport behaviors that change
// language-level semantics; the run-time package consults them to decide
// which exceptions it can promise (§3.2.2's deviations).
type Capabilities struct {
	// RejectsUnwantedReplies: a reply arriving for an aborted coroutine
	// fails the *sender* with ErrUnwantedReply (SODA, Chrysalis). False
	// for Charlotte: that acknowledgment would add 50% message traffic.
	RejectsUnwantedReplies bool
	// RecoversAbortedEnclosures: enclosures in a message whose send was
	// aborted are guaranteed returned even across peer crashes.
	RecoversAbortedEnclosures bool
}

// Capable is implemented by transports to advertise capabilities.
type Capable interface {
	Capabilities() Capabilities
}

// TransportCaps returns t's capabilities (zero value if not Capable).
func TransportCaps(t Transport) Capabilities {
	if c, ok := t.(Capable); ok {
		return c.Capabilities()
	}
	return Capabilities{}
}
