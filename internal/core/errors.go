package core

import "errors"

// The LYNX exception set: conditions the language definition says a
// process must be able to feel as run-time exceptions.
var (
	// ErrLinkDestroyed: the link was destroyed or its far process died.
	ErrLinkDestroyed = errors.New("lynx: link destroyed")
	// ErrNotOwner: the process does not own the named link end.
	ErrNotOwner = errors.New("lynx: not owner of link end")
	// ErrEndMoving: the end is enclosed in an in-flight message.
	ErrEndMoving = errors.New("lynx: link end is being moved")
	// ErrMoveUnreceived: moving a link on which the process has sent
	// unreceived messages is forbidden (§2.1).
	ErrMoveUnreceived = errors.New("lynx: cannot move link with unreceived sent messages")
	// ErrMoveOwedReply: moving a link on which the process owes a reply
	// for an already-received request is forbidden (§2.1).
	ErrMoveOwedReply = errors.New("lynx: cannot move link with reply owed")
	// ErrAborted: the coroutine was aborted by a local exception while
	// blocked.
	ErrAborted = errors.New("lynx: coroutine aborted")
	// ErrUnwantedReply: the reply's target coroutine no longer exists.
	// Only transports with RejectsUnwantedReplies can raise it at the
	// replying server (the paper's Charlotte implementation cannot).
	ErrUnwantedReply = errors.New("lynx: reply no longer wanted")
	// ErrBadReply: a reply arrived whose operation name does not match
	// the outstanding request (type confirmation failure).
	ErrBadReply = errors.New("lynx: reply does not match request")
	// ErrProcessDown: operation on a process that has terminated.
	ErrProcessDown = errors.New("lynx: process terminated")
	// ErrWrongThread: a blocking operation was invoked outside the
	// thread that owns the process token (implementation misuse).
	ErrWrongThread = errors.New("lynx: operation called from wrong thread context")
	// ErrEnclosureLost: an enclosed link end was lost because the
	// enclosing message was aborted and the peer crashed before
	// returning it (§3.2.2's Charlotte deviation; E8).
	ErrEnclosureLost = errors.New("lynx: enclosed link end lost")
)
