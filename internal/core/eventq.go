package core

import "repro/internal/sim"

// eventQueue is a typed FIFO of transport events with blocking receive.
// It replaces a sim.Mailbox of boxed values on the per-message hot path:
// storing Event structs directly avoids one interface allocation per
// transport event, and the head index avoids shifting on every pop.
type eventQueue struct {
	wq    *sim.WaitQueue
	items []Event
	head  int
}

func (q *eventQueue) init(env *sim.Env, name string) {
	q.wq = sim.NewWaitQueue(env, name)
}

func (q *eventQueue) put(ev Event) {
	q.items = append(q.items, ev)
	q.wq.Wake()
}

// get removes and returns the oldest event, parking p while empty.
func (q *eventQueue) get(p *sim.Proc) Event {
	for q.head == len(q.items) {
		q.wq.Wait(p)
	}
	return q.pop()
}

// tryGet removes and returns the oldest event without blocking.
func (q *eventQueue) tryGet() (Event, bool) {
	if q.head == len(q.items) {
		return Event{}, false
	}
	return q.pop(), true
}

func (q *eventQueue) pop() Event {
	ev := q.items[q.head]
	q.items[q.head] = Event{} // release Msg/Err references
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return ev
}
