package core
