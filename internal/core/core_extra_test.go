package core_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bind/ideal"
	"repro/internal/core"
	"repro/internal/sim"
)

// Additional core tests: abort variants, accessor coverage, destroy
// behavior with queued senders, explicit-open receive paths.

func TestAbortBlockedReceiver(t *testing.T) {
	r := newRig()
	var recvErr error
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			victim := th.Fork("victim", func(tv *core.Thread) {
				_, recvErr = tv.Receive(e)
			})
			th.Sleep(5 * sim.Millisecond)
			th.Abort(victim)
			th.Sleep(5 * sim.Millisecond)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Sleep(20 * sim.Millisecond) // never sends
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(recvErr, core.ErrAborted) {
		t.Fatalf("recv err = %v, want ErrAborted", recvErr)
	}
}

func TestAbortQueuedSenderBeforeFlight(t *testing.T) {
	// Two coroutines send on the same end; the second's message is queued
	// behind the first (stop-and-wait). Aborting the second must remove
	// it from the local queue without touching the first.
	r := newRig()
	var err1, err2 error
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			th.Fork("first", func(tv *core.Thread) {
				_, err1 = tv.Connect(e, "slow", core.Msg{})
			})
			second := th.Fork("second", func(tv *core.Thread) {
				_, err2 = tv.Connect(e, "second", core.Msg{})
			})
			th.Yield() // let both start their sends
			th.Abort(second)
			th.Sleep(80 * sim.Millisecond)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				st.Sleep(10 * sim.Millisecond)
				st.Reply(req, core.Msg{Data: []byte(req.Op())})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if err1 != nil {
		t.Fatalf("first sender: %v", err1)
	}
	if !errors.Is(err2, core.ErrAborted) {
		t.Fatalf("second sender: %v, want ErrAborted", err2)
	}
}

func TestAbortRunningThreadDeliveredAtNextBlock(t *testing.T) {
	r := newRig()
	var sleepErr error
	reached := false
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			worker := th.Fork("worker", func(tv *core.Thread) {
				// Running (not blocked) when aborted; the exception
				// surfaces at the next block point.
				tv.Delay(2 * sim.Millisecond)
				sleepErr = tv.Sleep(50 * sim.Millisecond)
				reached = true
			})
			th.Yield()       // worker starts running and holds the processor
			th.Abort(worker) // worker is mid-Delay: abort is pending
			th.Sleep(100 * sim.Millisecond)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !reached {
		t.Fatal("worker never resumed after its block point")
	}
	if !errors.Is(sleepErr, core.ErrAborted) {
		t.Fatalf("sleep err = %v, want ErrAborted", sleepErr)
	}
}

func TestDestroyWithMultipleQueuedSenders(t *testing.T) {
	// Several coroutines blocked sending on one end; destroying the end
	// must wake all of them with ErrLinkDestroyed.
	r := newRig()
	errs := make([]error, 3)
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			for i := 0; i < 3; i++ {
				i := i
				th.Fork("s", func(tv *core.Thread) {
					_, errs[i] = tv.Connect(e, "op", core.Msg{})
				})
			}
			th.Yield()
			th.Sleep(2 * sim.Millisecond)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Sleep(50 * sim.Millisecond) // never serves
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if !errors.Is(err, core.ErrLinkDestroyed) {
			t.Errorf("sender %d: %v, want ErrLinkDestroyed", i, err)
		}
	}
}

func TestReceiveFromExplicitlyOpenedQueue(t *testing.T) {
	// Requests queue while the receiver computes with the queue open;
	// Receive later drains them in order without blocking.
	r := newRig()
	var got []string
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			for _, op := range []string{"a", "b"} {
				if _, err := th.Connect(e, op, core.Msg{}); err != nil {
					t.Errorf("connect %s: %v", op, err)
				}
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.OpenRequests(e)
			th.Sleep(30 * sim.Millisecond) // both requests arrive and queue
			for i := 0; i < 2; i++ {
				req, err := th.Receive(e)
				if err != nil {
					t.Errorf("receive %d: %v", i, err)
					return
				}
				got = append(got, req.Op())
				th.Reply(req, core.Msg{})
			}
			th.CloseRequests(e)
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != "a,b" {
		t.Fatalf("got %v", got)
	}
}

func TestDoubleReplyRejected(t *testing.T) {
	r := newRig()
	var second error
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			th.Connect(e, "op", core.Msg{})
			th.Sleep(10 * sim.Millisecond)
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			req, err := th.Receive(e)
			if err != nil {
				return
			}
			th.Reply(req, core.Msg{})
			second = th.Reply(req, core.Msg{})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if second == nil {
		t.Fatal("second Reply succeeded")
	}
}

func TestDestroyDeadEndErrors(t *testing.T) {
	r := newRig()
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			if err := th.Destroy(e); err != nil {
				t.Errorf("first destroy: %v", err)
			}
			if err := th.Destroy(e); !errors.Is(err, core.ErrLinkDestroyed) {
				t.Errorf("second destroy: %v", err)
			}
			if _, err := th.Connect(e, "op", core.Msg{}); !errors.Is(err, core.ErrLinkDestroyed) {
				t.Errorf("connect after destroy: %v", err)
			}
			if _, err := th.Receive(e); !errors.Is(err, core.ErrLinkDestroyed) {
				t.Errorf("receive after destroy: %v", err)
			}
		},
		func(th *core.Thread, e *core.End) {},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNotOwnerErrors(t *testing.T) {
	// Using another process's End is rejected cleanly.
	env := sim.NewEnv(1)
	fab := ideal.NewFabric(env, sim.Millisecond, 0)
	trA := fab.NewTransport("A")
	trB := fab.NewTransport("B")
	ea, eb, _ := trA.MakeLink()
	ideal.MoveOwnership(fab, trA, trB, eb.(ideal.EndID))
	var bEnd *core.End
	ready := sim.NewWaitQueue(env, "ready")
	core.NewProcess(env, "B", trB, cheapCosts(), func(th *core.Thread) {
		bEnd = th.AdoptBootEnd(eb)
		ready.WakeAll()
		th.Sleep(20 * sim.Millisecond)
		th.Destroy(bEnd)
	})
	core.NewProcess(env, "A", trA, cheapCosts(), func(th *core.Thread) {
		e := th.AdoptBootEnd(ea)
		th.Sleep(sim.Millisecond) // bEnd assigned by now
		if _, err := th.Connect(bEnd, "op", core.Msg{}); !errors.Is(err, core.ErrNotOwner) {
			t.Errorf("connect on foreign end: %v", err)
		}
		if err := th.Destroy(bEnd); !errors.Is(err, core.ErrNotOwner) {
			t.Errorf("destroy foreign end: %v", err)
		}
		if _, err := th.Connect(e, "op", core.Msg{Links: []*core.End{bEnd}}); !errors.Is(err, core.ErrNotOwner) {
			t.Errorf("enclose foreign end: %v", err)
		}
		th.Destroy(e)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	r := newRig()
	r.spawnPair(
		func(th *core.Thread, e *core.End) {
			if th.ID() == 0 || th.Name() != "main" {
				t.Errorf("thread accessors: id=%d name=%q", th.ID(), th.Name())
			}
			pr := th.Process()
			if pr.Name() != "A" {
				t.Errorf("process name %q", pr.Name())
			}
			if pr.Env() == nil || pr.SimProc() == nil || pr.Stats() == nil {
				t.Error("nil accessor")
			}
			if e.Dead() {
				t.Error("fresh end dead")
			}
			if e.Transport() == nil {
				t.Error("nil transport handle")
			}
			if !strings.Contains(e.String(), "A/") {
				t.Errorf("end string %q", e.String())
			}
			reply, err := th.Connect(e, "op", core.Msg{Data: []byte("d")})
			if err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			if reply.Op() != "op" {
				t.Errorf("reply op %q", reply.Op())
			}
			th.Destroy(e)
		},
		func(th *core.Thread, e *core.End) {
			th.Serve(e, func(st *core.Thread, req *core.Request) {
				if req.End() != e {
					t.Error("request End() mismatch")
				}
				if len(req.Links()) != 0 {
					t.Error("phantom links")
				}
				st.Reply(req, core.Msg{Data: req.Data()})
			})
		},
	)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventKindStrings(t *testing.T) {
	for _, k := range []core.EventKind{core.EvIncoming, core.EvDelivered, core.EvSendFailed, core.EvLinkDead, core.EvTick} {
		if k.String() == "event?" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if core.MsgKind(99).String() == "" || core.KindRequest.String() != "request" || core.KindReply.String() != "reply" {
		t.Error("MsgKind strings")
	}
}

func TestSelfLoopLink(t *testing.T) {
	// A link with both ends in one process: Connect on one end is served
	// on the other by the same process's handler — and moving an end to
	// yourself over it must not corrupt state (the stress suite's
	// self-move regression, pinned as a unit test).
	r := newRig()
	tr := r.fabric.NewTransport("solo")
	core.NewProcess(r.env, "solo", tr, cheapCosts(), func(th *core.Thread) {
		a, b, err := th.NewLink()
		if err != nil {
			t.Errorf("NewLink: %v", err)
			return
		}
		th.Serve(b, func(st *core.Thread, req *core.Request) {
			for _, l := range req.Links() {
				th.Process().ServeEnd(l, func(st2 *core.Thread, r2 *core.Request) {
					st2.Reply(r2, core.Msg{Data: []byte("via-moved")})
				})
			}
			st.Reply(req, core.Msg{Data: req.Data()})
		})
		// Plain self-RPC.
		reply, err := th.Connect(a, "self", core.Msg{Data: []byte("x")})
		if err != nil || string(reply.Data) != "x" {
			t.Errorf("self RPC: %v %q", err, reply)
			return
		}
		// Self-move: create another link, enclose one end to ourselves.
		m1, m2, _ := th.NewLink()
		if _, err := th.Connect(a, "move", core.Msg{Links: []*core.End{m2}}); err != nil {
			t.Errorf("self move: %v", err)
			return
		}
		// The moved end must still work.
		reply, err = th.Connect(m1, "ping", core.Msg{})
		if err != nil || string(reply.Data) != "via-moved" {
			t.Errorf("RPC over self-moved link: %v %v", err, reply)
		}
		th.Destroy(m1)
		th.Destroy(a)
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashWakesAllCoroutines(t *testing.T) {
	// When a process crashes, its peers' blocked coroutines (several, on
	// several links) all feel exceptions.
	r := newRig()
	trA := r.fabric.NewTransport("A")
	trB := r.fabric.NewTransport("B")
	var ends [3]core.TransEnd
	var farEnds [3]core.TransEnd
	for i := range ends {
		a, b, _ := trA.MakeLink()
		ideal.MoveOwnership(r.fabric, trA, trB, b.(ideal.EndID))
		ends[i], farEnds[i] = a, b
	}
	errs := make([]error, 3)
	core.NewProcess(r.env, "A", trA, cheapCosts(), func(th *core.Thread) {
		done := 0
		for i := range ends {
			i := i
			e := th.AdoptBootEnd(ends[i])
			th.Fork("c", func(tv *core.Thread) {
				_, errs[i] = tv.Connect(e, "op", core.Msg{})
				done++
			})
		}
		for done < 3 {
			th.Sleep(5 * sim.Millisecond)
		}
	})
	core.NewProcess(r.env, "B", trB, cheapCosts(), func(th *core.Thread) {
		for i := range farEnds {
			th.AdoptBootEnd(farEnds[i])
		}
		th.Sleep(3 * sim.Millisecond)
		th.Process().Crash()
		th.Sleep(sim.Millisecond)
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if !errors.Is(err, core.ErrLinkDestroyed) {
			t.Errorf("coroutine %d: %v", i, err)
		}
	}
}
