// Command sweepbench measures the parallel run harness's whole-system
// throughput (complete lynx.System simulations per second) at several
// worker counts, and gates throughput regressions.
//
// One "run" is a standard mixed workload: four clients hammering one
// server with 128-byte echo RPCs on the Chrysalis substrate, 25
// operations each — the same replica body at every worker count, fanned
// out by lynx/sweep. Results are recorded in BENCH_sweep.json:
//
//	sweepbench                 # measure + fail on >15% runs/sec regression
//	sweepbench -update         # measure + rewrite the "current" numbers
//	sweepbench -as-baseline    # measure + rewrite the "baseline" numbers
//
// The regression gate only engages when the recording machine matches
// (same NumCPU and GOMAXPROCS): wall-clock throughput is not portable
// across machines, so on different hardware the numbers are reported
// and the gate is skipped with a notice. The near-linear-scaling check
// (≥3x runs/sec at 4 workers vs 1) likewise requires ≥4 CPUs to be
// observable and is skipped below that.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cli"
	"repro/lynx"
	"repro/lynx/sweep"
)

// workerCounts are the parallelism points recorded per measurement.
var workerCounts = []int{1, 2, 4}

// repsPerMeasure is the replica count each timed sweep runs. Large
// enough that per-sweep setup is amortized, small enough to keep the
// bench under a second per point.
const repsPerMeasure = 96

// minScaling is the acceptance threshold for runs/sec at 4 workers
// versus 1 (only checkable on ≥4 CPUs).
const minScaling = 3.0

// measurement is one recording: runs/sec per worker count plus the
// recording machine's shape.
type measurement struct {
	RunsPerSec map[string]float64 `json:"runs_per_sec"`
	Scaling4v1 float64            `json:"scaling_4v1"`
	// ScalingGate records whether the near-linear-scaling check was
	// checked or hardware-skipped on the recording machine ("checked" or
	// "SKIP (n CPUs)"), so the skip reason is auditable from the artifact
	// alone.
	ScalingGate string `json:"scaling_gate"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
}

// benchFile is the BENCH_sweep.json schema (baseline/current, like
// BENCH_sched.json).
type benchFile struct {
	Note     string       `json:"note"`
	Baseline *measurement `json:"baseline,omitempty"`
	Current  *measurement `json:"current,omitempty"`
}

// body is the standard whole-system replica: 4 clients × 25 echo RPCs
// of 128 bytes against one server on Chrysalis.
func body(r sweep.Run) sweep.Outcome {
	const clients, ops, payload = 4, 25, 128
	sys := lynx.NewSystem(lynx.Config{Substrate: lynx.Chrysalis, Seed: r.Seed})
	data := make([]byte, payload)
	server := sys.Spawn("server", func(th *lynx.Thread, boot []*lynx.End) {
		for _, e := range boot {
			th.Serve(e, func(st *lynx.Thread, req *lynx.Request) {
				st.Reply(req, lynx.Msg{Data: req.Data()})
			})
		}
	})
	for i := 0; i < clients; i++ {
		cl := sys.Spawn(fmt.Sprint("client", i), func(th *lynx.Thread, boot []*lynx.End) {
			e := boot[0]
			for op := 0; op < ops; op++ {
				if _, err := th.Connect(e, "echo", lynx.Msg{Data: data}); err != nil {
					return
				}
			}
			th.Destroy(e)
		})
		sys.Join(server, cl)
	}
	return sweep.Outcome{Err: sys.Run()}
}

// measureAt times one sweep of repsPerMeasure replicas at the given
// worker count and returns runs/sec (best of three to shed scheduler
// noise).
func measureAt(workers int) float64 {
	best := 0.0
	for try := 0; try < 3; try++ {
		start := time.Now()
		agg := sweep.Sweep(sweep.Options{Replicas: repsPerMeasure, Parallel: workers, RootSeed: 1}, body)
		elapsed := time.Since(start)
		if len(agg.Errs) > 0 {
			cli.Failf("sweepbench", "replica errors: %v", agg.Errs[0])
		}
		if rps := float64(repsPerMeasure) / elapsed.Seconds(); rps > best {
			best = rps
		}
	}
	return best
}

func measure() *measurement {
	m := &measurement{
		RunsPerSec: map[string]float64{},
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, w := range workerCounts {
		rps := measureAt(w)
		m.RunsPerSec[key(w)] = rps
		fmt.Printf("sweep_macro workers=%d %10.0f runs/s\n", w, rps)
	}
	if one := m.RunsPerSec[key(1)]; one > 0 {
		m.Scaling4v1 = m.RunsPerSec[key(4)] / one
	}
	if m.NumCPU >= 4 {
		m.ScalingGate = "checked"
	} else {
		m.ScalingGate = fmt.Sprintf("SKIP (%d CPU)", m.NumCPU)
	}
	fmt.Printf("sweep_macro scaling 4v1 = %.2fx (NumCPU=%d)\n", m.Scaling4v1, m.NumCPU)
	return m
}

func key(workers int) string { return fmt.Sprint(workers) }

func load(path string) (*benchFile, error) {
	f := &benchFile{}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func save(path string, f *benchFile) error {
	f.Note = "Sweep macro benchmark: whole-system lynx runs/sec via lynx/sweep at N workers " +
		"(4 clients x 25 echo RPCs on Chrysalis per run). " +
		"make check fails on a >15% runs/sec regression vs current when run on the recording machine " +
		"(same NumCPU/GOMAXPROCS); refresh deliberately with `make bench-update`. " +
		"scaling_4v1 is asserted >= 3.0 only when NumCPU >= 4; scaling_gate plus " +
		"num_cpu/gomaxprocs record whether that check ran, so hardware-gated skips " +
		"are auditable from the artifact alone."
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	path := flag.String("file", "BENCH_sweep.json", "trajectory file")
	update := flag.Bool("update", false, "rewrite the current numbers")
	asBaseline := flag.Bool("as-baseline", false, "rewrite the baseline numbers")
	force := flag.Bool("force", false, "allow -update/-as-baseline to overwrite numbers recorded on a bigger machine")
	flag.Parse()

	f, err := load(*path)
	cli.Check("sweepbench", err)

	// Same update guard as schedbench: numbers recorded on real hardware
	// must not be silently replaced by a 1-CPU container run (which would
	// also re-disarm the scaling gate).
	if !*force && runtime.NumCPU() == 1 {
		if prior := pickRecorded(f, *update, *asBaseline); prior != nil && prior.NumCPU > 1 {
			cli.Failf("sweepbench",
				"refusing to overwrite %s recorded on %d CPUs with a 1-CPU run (re-record on comparable hardware, or pass -force)",
				*path, prior.NumCPU)
		}
	}

	m := measure()
	switch {
	case *asBaseline:
		f.Baseline = m
	case *update:
		f.Current = m
	default:
		if gateFails(f.Current, m) {
			os.Exit(1)
		}
		return
	}
	cli.Check("sweepbench", save(*path, f))
	fmt.Println("wrote", *path)
}

// pickRecorded returns the measurement the current invocation would
// overwrite (nil when none is recorded or nothing is being rewritten).
func pickRecorded(f *benchFile, update, asBaseline bool) *measurement {
	switch {
	case asBaseline:
		return f.Baseline
	case update:
		return f.Current
	}
	return nil
}

// gateFails applies the regression and scaling gates against the
// recorded current numbers; returns true when the build should fail.
func gateFails(rec, m *measurement) bool {
	failed := false
	if m.NumCPU < 4 {
		fmt.Printf("sweepbench: scaling gate %s: needs >= 4 CPUs to observe >= %.1fx at 4 workers\n",
			m.ScalingGate, minScaling)
	} else if m.Scaling4v1 < minScaling {
		fmt.Fprintf(os.Stderr,
			"sweepbench: scaling gate failed: %.2fx runs/sec at 4 workers vs 1 (want >= %.1fx on %d CPUs)\n",
			m.Scaling4v1, minScaling, m.NumCPU)
		failed = true
	}
	if rec == nil {
		fmt.Println("sweepbench: no recorded current numbers; record with `make bench-update`")
		return failed
	}
	if rec.NumCPU != m.NumCPU || rec.GOMAXPROCS != m.GOMAXPROCS {
		fmt.Printf("sweepbench: recorded on NumCPU=%d/GOMAXPROCS=%d, running on %d/%d; throughput gate skipped\n",
			rec.NumCPU, rec.GOMAXPROCS, m.NumCPU, m.GOMAXPROCS)
		return failed
	}
	for _, w := range workerCounts {
		recorded, got := rec.RunsPerSec[key(w)], m.RunsPerSec[key(w)]
		if recorded > 0 && got < recorded*0.85 {
			fmt.Fprintf(os.Stderr,
				"sweepbench: workers=%d runs/sec regressed: %.0f recorded, %.0f measured (>15%%)\n",
				w, recorded, got)
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "sweepbench: regression gate failed (refresh deliberately with `make bench-update`)")
	}
	return failed
}
