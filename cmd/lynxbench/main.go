// Command lynxbench regenerates the paper's evaluation: every table and
// figure, as the experiments E1-E11 catalogued in DESIGN.md.
//
// Usage:
//
//	lynxbench              # run all experiments
//	lynxbench -e E3        # run one experiment
//	lynxbench -e E7 -json  # machine-readable result + metric snapshot
//	lynxbench -list        # list experiment ids and titles
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/expt"
)

var experiments = []struct{ id, title string }{
	{"E1", "Charlotte simple remote operation latency (§3.3)"},
	{"E2", "Charlotte link-enclosure protocol (figure 2)"},
	{"E3", "SODA vs Charlotte latency sweep and crossover (§4.3)"},
	{"E4", "Chrysalis simple remote operation latency (§5.3)"},
	{"E5", "Run-time package size and special-case inventory"},
	{"E6", "Link moving at both ends simultaneously (figure 1)"},
	{"E7", "Unwanted messages and NAK traffic (§6 claim 2)"},
	{"E8", "Fate of enclosures in aborted messages (§3.2.2)"},
	{"E9", "Chrysalis tuning ablation (§5.3)"},
	{"E10", "SODA hint repair: cache → discover → freeze (§4.2)"},
	{"E11", "Queue fairness under saturation (§2.1)"},
	{"E12", "EXT: per-pair request limits under many links (§4.2.1)"},
	{"E13", "EXT: discover success vs broadcast loss (§4.2)"},
}

func main() {
	one := flag.String("e", "", "run a single experiment by id (E1..E13)")
	list := flag.Bool("list", false, "list experiments")
	asJSON := flag.Bool("json", false, "emit results as JSON (id, pass, table, obs metric snapshot)")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}
	if *one != "" {
		r := expt.ByID(*one)
		if r == nil {
			fmt.Fprintf(os.Stderr, "lynxbench: unknown experiment %q\n", *one)
			os.Exit(2)
		}
		if *asJSON {
			emitJSON(r)
		} else {
			fmt.Print(r.Render())
		}
		if !r.Pass {
			os.Exit(1)
		}
		return
	}
	results := expt.All()
	if *asJSON {
		emitJSON(results)
	}
	fail := 0
	for _, r := range results {
		if !*asJSON {
			fmt.Print(r.Render())
			fmt.Println()
		}
		if !r.Pass {
			fail++
		}
	}
	if fail > 0 {
		fmt.Fprintf(os.Stderr, "lynxbench: %d experiment(s) did not match the paper's shape\n", fail)
		os.Exit(1)
	}
	if !*asJSON {
		fmt.Println("all experiments match the paper's shape")
	}
}

// emitJSON writes v (one Result or a slice of them) to stdout.
func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "lynxbench: %v\n", err)
		os.Exit(1)
	}
}
