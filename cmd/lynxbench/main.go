// Command lynxbench regenerates the paper's evaluation: every table and
// figure, as the experiments E1-E11 catalogued in DESIGN.md, plus the
// E12-E13 extensions.
//
// Experiments fan out across worker goroutines, and each can be
// replicated R times with independent seeds to turn the paper's
// single-seed point estimates into mean ±95% CI tables. Output is
// byte-identical for any -parallel value at fixed -reps/-seed.
//
// Usage:
//
//	lynxbench                      # run all experiments (GOMAXPROCS workers)
//	lynxbench -parallel 4 -reps 8  # 8 replicas per experiment, 4 workers
//	lynxbench -e E3 -reps 32       # replicate one experiment
//	lynxbench -e E7 -json          # machine-readable result + metric snapshot
//	lynxbench -list                # list experiment ids and titles
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/expt"
)

func main() {
	one := flag.String("e", "", "run a single experiment by id (E1..E13)")
	list := flag.Bool("list", false, "list experiments")
	asJSON := flag.Bool("json", false, "emit results as JSON (id, pass, table, obs metric snapshot)")
	parallel := flag.Int("parallel", 0, "worker goroutines (default GOMAXPROCS)")
	reps := flag.Int("reps", 1, "replicas per experiment (tables gain mean ±95% CI cells)")
	seed := flag.Uint64("seed", 1, "root seed for replicas beyond the canonical first")
	flag.Parse()

	opts := expt.Options{Parallel: *parallel, Reps: *reps, RootSeed: *seed}

	if *list {
		for _, e := range expt.Catalog() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	if *one != "" {
		r := expt.ByIDWith(*one, opts)
		if r == nil {
			cli.Usagef("lynxbench", "unknown experiment %q", *one)
		}
		if *asJSON {
			emitJSON(r)
		} else {
			fmt.Print(r.Render())
		}
		if !r.Pass {
			os.Exit(1)
		}
		return
	}
	results := expt.AllWith(opts)
	if *asJSON {
		emitJSON(results)
	}
	fail := 0
	for _, r := range results {
		if !*asJSON {
			fmt.Print(r.Render())
			fmt.Println()
		}
		if !r.Pass {
			fail++
		}
	}
	if fail > 0 {
		cli.Failf("lynxbench", "%d experiment(s) did not match the paper's shape", fail)
	}
	if !*asJSON {
		fmt.Println("all experiments match the paper's shape")
	}
}

// emitJSON writes v (one Result or a slice of them) to stdout.
func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	cli.Check("lynxbench", enc.Encode(v))
}
