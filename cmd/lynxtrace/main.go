// Command lynxtrace replays the paper's two figures as annotated
// virtual-time protocol traces:
//
//	lynxtrace -fig 1                # link moving at both ends (figure 1)
//	lynxtrace -fig 2 -enclosures 3  # the enclosure protocol (figure 2)
//	lynxtrace -fig 2 -substrate soda
//
// The trace shows every kernel call and protocol message with its
// virtual timestamp, making the difference between the substrates'
// protocols directly visible.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/lynx"
)

func main() {
	fig := flag.Int("fig", 2, "figure to replay (1 or 2)")
	encl := flag.Int("enclosures", 3, "enclosures to move (figure 2)")
	subName := flag.String("substrate", "charlotte", "charlotte|soda|chrysalis|ideal")
	flag.Parse()

	var sub lynx.Substrate
	switch *subName {
	case "charlotte":
		sub = lynx.Charlotte
	case "soda":
		sub = lynx.SODA
	case "chrysalis":
		sub = lynx.Chrysalis
	case "ideal":
		sub = lynx.Ideal
	default:
		fmt.Fprintf(os.Stderr, "lynxtrace: unknown substrate %q\n", *subName)
		os.Exit(2)
	}

	switch *fig {
	case 1:
		figure1(sub)
	case 2:
		figure2(sub, *encl)
	default:
		fmt.Fprintf(os.Stderr, "lynxtrace: unknown figure %d\n", *fig)
		os.Exit(2)
	}
}

// figure2 traces one request moving k link ends (and its reply).
func figure2(sub lynx.Substrate, k int) {
	fmt.Printf("figure 2 on %v: request moving %d link end(s)\n\n", sub, k)
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 1})
	sys.Env().SetTracer(&sim.WriterTracer{W: os.Stdout})
	a := sys.Spawn("A", func(th *lynx.Thread, boot []*lynx.End) {
		var give []*lynx.End
		for i := 0; i < k; i++ {
			_, o, err := th.NewLink()
			if err != nil {
				return
			}
			give = append(give, o)
		}
		sys.Env().Trace("A", ">>> connect with %d enclosures", k)
		if _, err := th.Connect(boot[0], "move", lynx.Msg{Links: give}); err != nil {
			sys.Env().Trace("A", "connect failed: %v", err)
			return
		}
		sys.Env().Trace("A", "<<< reply received")
		th.Destroy(boot[0])
	})
	b := sys.Spawn("B", func(th *lynx.Thread, boot []*lynx.End) {
		th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
			sys.Env().Trace("B", "request %q arrived with %d links", req.Op(), len(req.Links()))
			st.Reply(req, lynx.Msg{})
		})
	})
	sys.Join(a, b)
	if err := sys.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "lynxtrace: %v\n", err)
		os.Exit(1)
	}
	if cs := a.CharlotteStats(); cs != nil {
		fmt.Printf("\nprotocol summary: kernel sends=%d goaheads(B)=%d enc packets=%d\n",
			cs.KernelSends, b.CharlotteStats().Goaheads, cs.EncPackets)
	}
}

// figure1 traces both ends of link 3 moving simultaneously.
func figure1(sub lynx.Substrate) {
	fmt.Printf("figure 1 on %v: link 3 moving at both ends (A->B and D->C)\n\n", sub)
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 1})
	sys.Env().SetTracer(&sim.WriterTracer{W: os.Stdout})
	a := sys.Spawn("A", func(th *lynx.Thread, boot []*lynx.End) {
		sys.Env().Trace("A", "moving link3 end to B")
		th.Connect(boot[0], "take3a", lynx.Msg{Links: []*lynx.End{boot[1]}})
		th.Destroy(boot[0])
	})
	d := sys.Spawn("D", func(th *lynx.Thread, boot []*lynx.End) {
		sys.Env().Trace("D", "moving link3 end to C")
		th.Connect(boot[0], "take3d", lynx.Msg{Links: []*lynx.End{boot[1]}})
		th.Destroy(boot[0])
	})
	b := sys.Spawn("B", func(th *lynx.Thread, boot []*lynx.End) {
		req, err := th.Receive(boot[0])
		if err != nil {
			return
		}
		l3 := req.Links()[0]
		th.Reply(req, lynx.Msg{})
		sys.Env().Trace("B", "got link3 end; calling through it")
		reply, err := th.Connect(l3, "hello", lynx.Msg{Data: []byte("B")})
		if err != nil {
			sys.Env().Trace("B", "call failed: %v", err)
			return
		}
		sys.Env().Trace("B", "reply: %q (link3 now connects B and C)", reply.Data)
		th.Destroy(l3)
	})
	c := sys.Spawn("C", func(th *lynx.Thread, boot []*lynx.End) {
		req, err := th.Receive(boot[0])
		if err != nil {
			return
		}
		l3 := req.Links()[0]
		th.Reply(req, lynx.Msg{})
		sys.Env().Trace("C", "got link3 end; serving on it")
		r2, err := th.Receive(l3)
		if err != nil {
			return
		}
		th.Reply(r2, lynx.Msg{Data: append(r2.Data(), []byte("-seen-by-C")...)})
	})
	sys.Join(a, b)
	sys.Join(d, c)
	sys.Join(a, d)
	if err := sys.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "lynxtrace: %v\n", err)
		os.Exit(1)
	}
}
