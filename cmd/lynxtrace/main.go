// Command lynxtrace replays the paper's two figures as annotated
// virtual-time protocol traces:
//
//	lynxtrace -fig 1                # link moving at both ends (figure 1)
//	lynxtrace -fig 2 -enclosures 3  # the enclosure protocol (figure 2)
//	lynxtrace -fig 2 -substrate soda
//	lynxtrace -fig 1 -format jsonl  # machine-readable event stream
//	lynxtrace -fig 1 -format chrome > trace.json   # chrome://tracing
//	lynxtrace -follow JOB -addr localhost:8080     # live lynxd job trace
//
// The trace shows every kernel call and protocol message with its
// virtual timestamp, making the difference between the substrates'
// protocols directly visible. -format selects the renderer: "text"
// interleaves typed kernel events with free-text annotations on
// stdout; "jsonl" emits one JSON event per line; "chrome" emits a
// Chrome trace-event document (load in chrome://tracing or Perfetto).
// In the machine formats only events go to stdout; narration goes to
// stderr.
//
// -follow switches lynxtrace from replaying a built-in figure to
// tailing a running lynxd job's flight-recorder stream
// (GET /jobs/{id}/trace): JSONL lines pass through verbatim ("jsonl",
// the default here) or re-render as a Chrome trace document ("chrome");
// the command exits when the job reaches a terminal state.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/lynx"
)

// narrate is where human-facing headers and summaries go: stdout for
// -format=text, stderr for the machine formats.
var narrate io.Writer = os.Stdout

func main() {
	fig := flag.Int("fig", 2, "figure to replay (1 or 2)")
	encl := flag.Int("enclosures", 3, "enclosures to move (figure 2)")
	subName := flag.String("substrate", "charlotte", "charlotte|soda|chrysalis|ideal")
	format := flag.String("format", "text", "trace output format: text|jsonl|chrome")
	follow := flag.String("follow", "", "follow a lynxd job's live trace stream by job ID (exits at job completion)")
	addr := flag.String("addr", "localhost:8080", "lynxd address for -follow")
	flag.Parse()

	switch *format {
	case "text", "jsonl", "chrome":
	default:
		cli.Usagef("lynxtrace", "unknown format %q (want text, jsonl or chrome)", *format)
	}

	if *follow != "" {
		followJob(*addr, *follow, *format)
		return
	}

	sub, err := lynx.ParseSubstrate(*subName)
	cli.CheckUsage("lynxtrace", err)

	switch *fig {
	case 1:
		figure1(sub, *format)
	case 2:
		figure2(sub, *format, *encl)
	default:
		cli.Usagef("lynxtrace", "unknown figure %d", *fig)
	}
}

// followJob tails a lynxd job's flight-recorder stream. The daemon
// holds the connection open until the job reaches a terminal state, so
// a plain GET is the whole protocol. Lines are either recorded events
// or dump envelopes ({"type":"dump",...}); envelopes pass through in
// jsonl mode and narrate to stderr in the rendered modes.
func followJob(addr, id, format string) {
	// Accept both a bare host:port and a full URL (lynxd announces
	// "listening on http://host:port", which scripts pass through).
	if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
		addr = "http://" + addr
	}
	url := fmt.Sprintf("%s/jobs/%s/trace", strings.TrimRight(addr, "/"), id)
	resp, err := http.Get(url)
	cli.Check("lynxtrace", err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		cli.Usagef("lynxtrace", "GET %s: %s: %s", url, resp.Status, body)
	}

	var render func(line []byte)
	switch format {
	case "text":
		text := &obs.TextExporter{W: os.Stdout}
		render = func(line []byte) { renderLine(line, text.Event) }
	case "jsonl":
		render = func(line []byte) {
			os.Stdout.Write(line)
			os.Stdout.Write([]byte{'\n'})
		}
	case "chrome":
		ch := obs.NewChromeStream(os.Stdout)
		defer func() { cli.Check("lynxtrace", ch.Close()) }()
		render = func(line []byte) { renderLine(line, ch.Event) }
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		render(sc.Bytes())
	}
	cli.Check("lynxtrace", sc.Err())
}

// renderLine decodes one stream line and hands recorded events to emit;
// dump envelopes and undecodable lines narrate to stderr instead.
func renderLine(line []byte, emit func(obs.Event)) {
	var probe struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(line, &probe); err != nil || probe.Type != "" {
		fmt.Fprintf(os.Stderr, "%s\n", line)
		return
	}
	var ev obs.Event
	if err := json.Unmarshal(line, &ev); err != nil {
		fmt.Fprintf(os.Stderr, "%s\n", line)
		return
	}
	emit(ev)
}

// attachOutput wires the chosen format into the system's recorder and
// tracer slot. It returns a finish func to call after the run (flushes
// buffered formats).
func attachOutput(sys *lynx.System, format string) (finish func()) {
	finish = func() {}
	switch format {
	case "text":
		// Free-text Trace() marks via the classic writer tracer; typed
		// kernel events via the text exporter. Same layout, one stream.
		sys.Env().SetTracer(&sim.WriterTracer{W: os.Stdout})
		sys.Obs().Attach(&obs.TextExporter{W: os.Stdout})
	case "jsonl":
		narrate = os.Stderr
		sys.Env().SetTracer(&obs.TraceAdapter{R: sys.Obs()})
		sys.Obs().Attach(&obs.JSONLExporter{W: os.Stdout})
	case "chrome":
		narrate = os.Stderr
		sys.Env().SetTracer(&obs.TraceAdapter{R: sys.Obs()})
		ch := obs.NewChromeExporter()
		sys.Obs().Attach(ch)
		finish = func() {
			cli.Check("lynxtrace", ch.Flush(os.Stdout))
		}
	}
	return finish
}

// figure2 traces one request moving k link ends (and its reply).
func figure2(sub lynx.Substrate, format string, k int) {
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 1})
	finish := attachOutput(sys, format)
	fmt.Fprintf(narrate, "figure 2 on %v: request moving %d link end(s)\n\n", sub, k)
	a := sys.Spawn("A", func(th *lynx.Thread, boot []*lynx.End) {
		var give []*lynx.End
		for i := 0; i < k; i++ {
			_, o, err := th.NewLink()
			if err != nil {
				return
			}
			give = append(give, o)
		}
		sys.Env().Trace("A", ">>> connect with %d enclosures", k)
		if _, err := th.Connect(boot[0], "move", lynx.Msg{Links: give}); err != nil {
			sys.Env().Trace("A", "connect failed: %v", err)
			return
		}
		sys.Env().Trace("A", "<<< reply received")
		th.Destroy(boot[0])
	})
	b := sys.Spawn("B", func(th *lynx.Thread, boot []*lynx.End) {
		th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
			sys.Env().Trace("B", "request %q arrived with %d links", req.Op(), len(req.Links()))
			st.Reply(req, lynx.Msg{})
		})
	})
	sys.Join(a, b)
	cli.Check("lynxtrace", sys.Run())
	finish()
	if cs := a.Stats().Charlotte(); cs != nil {
		fmt.Fprintf(narrate, "\nprotocol summary: kernel sends=%d goaheads(B)=%d enc packets=%d\n",
			cs.KernelSends, b.Stats().Charlotte().Goaheads, cs.EncPackets)
	}
}

// figure1 traces both ends of link 3 moving simultaneously.
func figure1(sub lynx.Substrate, format string) {
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 1})
	finish := attachOutput(sys, format)
	fmt.Fprintf(narrate, "figure 1 on %v: link 3 moving at both ends (A->B and D->C)\n\n", sub)
	a := sys.Spawn("A", func(th *lynx.Thread, boot []*lynx.End) {
		sys.Env().Trace("A", "moving link3 end to B")
		th.Connect(boot[0], "take3a", lynx.Msg{Links: []*lynx.End{boot[1]}})
		th.Destroy(boot[0])
	})
	d := sys.Spawn("D", func(th *lynx.Thread, boot []*lynx.End) {
		sys.Env().Trace("D", "moving link3 end to C")
		th.Connect(boot[0], "take3d", lynx.Msg{Links: []*lynx.End{boot[1]}})
		th.Destroy(boot[0])
	})
	b := sys.Spawn("B", func(th *lynx.Thread, boot []*lynx.End) {
		req, err := th.Receive(boot[0])
		if err != nil {
			return
		}
		l3 := req.Links()[0]
		th.Reply(req, lynx.Msg{})
		sys.Env().Trace("B", "got link3 end; calling through it")
		reply, err := th.Connect(l3, "hello", lynx.Msg{Data: []byte("B")})
		if err != nil {
			sys.Env().Trace("B", "call failed: %v", err)
			return
		}
		sys.Env().Trace("B", "reply: %q (link3 now connects B and C)", reply.Data)
		th.Destroy(l3)
	})
	c := sys.Spawn("C", func(th *lynx.Thread, boot []*lynx.End) {
		req, err := th.Receive(boot[0])
		if err != nil {
			return
		}
		l3 := req.Links()[0]
		th.Reply(req, lynx.Msg{})
		sys.Env().Trace("C", "got link3 end; serving on it")
		r2, err := th.Receive(l3)
		if err != nil {
			return
		}
		th.Reply(r2, lynx.Msg{Data: append(r2.Data(), []byte("-seen-by-C")...)})
	})
	sys.Join(a, b)
	sys.Join(d, c)
	sys.Join(a, d)
	cli.Check("lynxtrace", sys.Run())
	finish()
}
