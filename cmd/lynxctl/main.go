// Command lynxctl is the thin client for the lynxd daemon: submit a
// job, watch its JSONL stream, extract the verbatim result table,
// check status, or cancel.
//
//	lynxctl submit '{"kind":"load","load":{"substrates":["charlotte"],"rates":[30,60],"window":"100ms","seed":1}}'
//	lynxctl submit -f job.json
//	echo '{...}' | lynxctl submit
//	lynxctl stream j000001          # full stream: envelopes + result lines
//	lynxctl result j000001          # only the verbatim result table (CLI bytes)
//	lynxctl status j000001
//	lynxctl list
//	lynxctl cancel j000001
//	lynxctl metrics                 # service counters
//	lynxctl metrics j000001         # one job's pooled metric rollup
//
// The daemon address comes from -addr or LYNXD_ADDR (default
// http://127.0.0.1:8077).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/cli"
)

const usage = `usage: lynxctl [-addr URL] <command> [args]

commands:
  submit [-f FILE | JSON]   submit a job request (stdin when neither given)
  status ID                 one job's status
  list                      all job statuses
  stream ID                 follow the job's JSONL stream to completion
  result ID                 print only the verbatim result lines
  cancel ID                 request cancellation
  metrics [ID]              service counters, or one job's metric rollup`

func main() {
	addr := flag.String("addr", defaultAddr(), "lynxd base URL")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, usage)
		fmt.Fprintln(os.Stderr, "\nflags:")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		cli.Usagef("lynxctl", "no command\n%s", usage)
	}
	base := strings.TrimRight(*addr, "/")
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "submit":
		runSubmit(base, rest)
	case "status":
		runGet(base, rest, "status", func(id string) string { return "/jobs/" + id })
	case "list":
		if len(rest) != 0 {
			cli.Usagef("lynxctl", "list takes no arguments")
		}
		get(base + "/jobs")
	case "stream":
		runStream(base, rest, false)
	case "result":
		runStream(base, rest, true)
	case "cancel":
		runCancel(base, rest)
	case "metrics":
		if len(rest) == 0 {
			get(base + "/metrics")
		} else {
			runGet(base, rest, "metrics", func(id string) string { return "/jobs/" + id + "/metrics" })
		}
	default:
		cli.Usagef("lynxctl", "unknown command %q\n%s", cmd, usage)
	}
}

func defaultAddr() string {
	if a := os.Getenv("LYNXD_ADDR"); a != "" {
		return a
	}
	return "http://127.0.0.1:8077"
}

// fail reports the error payload of a non-2xx response and exits 1.
func fail(resp *http.Response) {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := strings.TrimSpace(string(body))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		msg += " (Retry-After: " + ra + "s)"
	}
	cli.Failf("lynxctl", "%s: %s", resp.Status, msg)
}

// get prints one JSON endpoint's body.
func get(url string) {
	resp, err := http.Get(url)
	cli.Check("lynxctl", err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail(resp)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	cli.Check("lynxctl", err)
}

func runGet(base string, rest []string, name string, path func(id string) string) {
	if len(rest) != 1 {
		cli.Usagef("lynxctl", "%s needs exactly one job id", name)
	}
	get(base + path(rest[0]))
}

// runSubmit reads the JobRequest JSON (inline argument, -f file, or
// stdin), posts it, and prints the accepted JobStatus.
func runSubmit(base string, rest []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	file := fs.String("f", "", "read the job request from this file")
	fs.Parse(rest)
	var body []byte
	var err error
	switch {
	case *file != "" && fs.NArg() > 0:
		cli.Usagef("lynxctl", "submit: give either -f FILE or inline JSON, not both")
	case *file != "":
		body, err = os.ReadFile(*file)
	case fs.NArg() == 1:
		body = []byte(fs.Arg(0))
	case fs.NArg() == 0:
		body, err = io.ReadAll(os.Stdin)
	default:
		cli.Usagef("lynxctl", "submit takes at most one inline JSON argument")
	}
	cli.Check("lynxctl", err)
	if !json.Valid(body) {
		cli.Usagef("lynxctl", "submit: request is not valid JSON")
	}
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(string(body)))
	cli.Check("lynxctl", err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		fail(resp)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	cli.Check("lynxctl", err)
}

// runStream follows a job's stream. resultOnly extracts just the
// verbatim result lines — the bytes the equivalent CLI run prints — and
// exits 1 when the job did not finish done.
func runStream(base string, rest []string, resultOnly bool) {
	name := "stream"
	if resultOnly {
		name = "result"
	}
	if len(rest) != 1 {
		cli.Usagef("lynxctl", "%s needs exactly one job id", name)
	}
	resp, err := http.Get(base + "/jobs/" + rest[0] + "/stream")
	cli.Check("lynxctl", err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail(resp)
	}
	if !resultOnly {
		_, err = io.Copy(os.Stdout, resp.Body)
		cli.Check("lynxctl", err)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pending := 0
	finalState, finalErr := "", ""
	for sc.Scan() {
		line := sc.Text()
		if pending > 0 {
			fmt.Println(line)
			pending--
			continue
		}
		var env struct {
			Type  string `json:"type"`
			Lines int    `json:"lines"`
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &env); err != nil {
			cli.Failf("lynxctl", "bad stream line %q: %v", line, err)
		}
		switch env.Type {
		case "result":
			pending = env.Lines
		case "done":
			finalState, finalErr = env.State, env.Error
		}
	}
	cli.Check("lynxctl", sc.Err())
	if finalState != "done" {
		cli.Failf("lynxctl", "job ended %s: %s", finalState, finalErr)
	}
}

func runCancel(base string, rest []string) {
	if len(rest) != 1 {
		cli.Usagef("lynxctl", "cancel needs exactly one job id")
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/jobs/"+rest[0], nil)
	cli.Check("lynxctl", err)
	resp, err := http.DefaultClient.Do(req)
	cli.Check("lynxctl", err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail(resp)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	cli.Check("lynxctl", err)
}
