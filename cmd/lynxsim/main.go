// Command lynxsim is a configurable workload generator for the LYNX
// reproduction: it assembles a topology of LYNX processes on a chosen
// kernel substrate, drives a workload through it, and reports latency,
// throughput, and kernel/protocol statistics.
//
// Examples:
//
//	lynxsim                                    # default echo workload
//	lynxsim -substrate soda -clients 4 -ops 50
//	lynxsim -mode mesh -procs 8 -ops 40 -seed 3
//	lynxsim -substrate charlotte -mode echo -payload 1000 -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cli"
	"repro/lynx"
)

func main() {
	var (
		subName = flag.String("substrate", "chrysalis", "charlotte|soda|chrysalis|ideal")
		mode    = flag.String("mode", "echo", "echo|mesh")
		clients = flag.Int("clients", 2, "echo: number of client processes")
		procs   = flag.Int("procs", 6, "mesh: number of peer processes")
		ops     = flag.Int("ops", 20, "operations per client/peer")
		payload = flag.Int("payload", 0, "echo/mesh: payload bytes per direction")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		stats   = flag.Bool("stats", false, "print kernel/binding statistics")
	)
	flag.Parse()

	sub, err := lynx.ParseSubstrate(*subName)
	cli.CheckUsage("lynxsim", err)

	switch *mode {
	case "echo":
		runEcho(sub, *clients, *ops, *payload, *seed, *stats)
	case "sweep":
		cli.Usagef("lynxsim", "-mode sweep was removed; use `lynxload -rates ...` or the lynx/grid package (README \"Configuration grids & load generation\")")
	case "mesh":
		runMesh(sub, *procs, *ops, *payload, *seed, *stats)
	default:
		cli.Usagef("lynxsim", "unknown mode %q", *mode)
	}
}

// latencySummary prints percentile stats over per-op RTTs.
func latencySummary(rtts []lynx.Duration) string {
	if len(rtts) == 0 {
		return "no samples"
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	pick := func(q float64) lynx.Duration {
		i := int(q * float64(len(rtts)-1))
		return rtts[i]
	}
	var sum lynx.Duration
	for _, d := range rtts {
		sum += d
	}
	return fmt.Sprintf("n=%d min=%.2fms p50=%.2fms p95=%.2fms max=%.2fms mean=%.2fms",
		len(rtts), rtts[0].Milliseconds(), pick(0.5).Milliseconds(),
		pick(0.95).Milliseconds(), rtts[len(rtts)-1].Milliseconds(),
		(sum / lynx.Duration(len(rtts))).Milliseconds())
}

// runEcho: N clients hammer one server over private links.
func runEcho(sub lynx.Substrate, clients, ops, payload int, seed uint64, showStats bool) {
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: seed})
	var rtts []lynx.Duration
	server := sys.Spawn("server", func(t *lynx.Thread, boot []*lynx.End) {
		for _, e := range boot {
			t.Serve(e, func(st *lynx.Thread, req *lynx.Request) {
				st.Reply(req, lynx.Msg{Data: req.Data()})
			})
		}
	})
	data := make([]byte, payload)
	for i := 0; i < clients; i++ {
		cl := sys.Spawn(fmt.Sprint("client", i), func(t *lynx.Thread, boot []*lynx.End) {
			for j := 0; j < ops; j++ {
				start := t.Now()
				if _, err := t.Connect(boot[0], "echo", lynx.Msg{Data: data}); err != nil {
					fmt.Fprintf(os.Stderr, "client op failed: %v\n", err)
					return
				}
				rtts = append(rtts, lynx.Duration(t.Now()-start))
			}
			t.Destroy(boot[0])
		})
		sys.Join(cl, server)
	}
	cli.Check("lynxsim", sys.Run())
	total := sys.Now()
	fmt.Printf("echo on %v: %d clients x %d ops, %dB payload\n", sub, clients, ops, payload)
	fmt.Printf("  latency: %s\n", latencySummary(rtts))
	fmt.Printf("  virtual time: %v  throughput: %.1f ops/s (virtual)\n",
		total, float64(clients*ops)/(float64(total)/1e9))
	if showStats {
		printStats(sys, server)
	}
}

// runMesh: peers in a ring+chords exchanging echoes and moving links.
func runMesh(sub lynx.Substrate, procs, ops, payload int, seed uint64, showStats bool) {
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: seed})
	refs := make([]*lynx.ProcRef, procs)
	var oks, errs int
	data := make([]byte, payload)
	for i := 0; i < procs; i++ {
		refs[i] = sys.Spawn(fmt.Sprint("peer", i), func(t *lynx.Thread, boot []*lynx.End) {
			for _, e := range boot {
				t.Serve(e, func(st *lynx.Thread, req *lynx.Request) {
					for _, l := range req.Links() {
						t.Process().ServeEnd(l, func(st2 *lynx.Thread, r2 *lynx.Request) {
							st2.Reply(r2, lynx.Msg{Data: r2.Data()})
						})
					}
					st.Reply(req, lynx.Msg{Data: req.Data()})
				})
			}
			for j := 0; j < ops; j++ {
				e := boot[j%len(boot)]
				if e.Dead() {
					continue
				}
				if _, err := t.Connect(e, "echo", lynx.Msg{Data: data}); err != nil {
					errs++
				} else {
					oks++
				}
			}
			t.Sleep(100 * lynx.Millisecond)
			for _, e := range boot {
				if !e.Dead() {
					t.Destroy(e)
				}
			}
		})
	}
	for i := 0; i < procs; i++ {
		sys.Join(refs[i], refs[(i+1)%procs])
	}
	for i := 0; i+2 < procs; i += 2 {
		sys.Join(refs[i], refs[i+2])
	}
	cli.Check("lynxsim", sys.Run())
	fmt.Printf("mesh on %v: %d peers x %d ops: %d ok, %d errors (link teardown races), %v virtual\n",
		sub, procs, ops, oks, errs, sys.Now())
	if showStats {
		printStats(sys, refs...)
	}
}

// printStats dumps kernel and binding counters.
func printStats(sys *lynx.System, procs ...*lynx.ProcRef) {
	if ks := sys.Stats().Charlotte(); ks != nil {
		fmt.Printf("  charlotte kernel: msgs=%d bytes=%d enclosures=%d destroys=%d\n",
			ks.Messages, ks.Bytes, ks.Enclosures, ks.Destroys)
		for _, p := range procs {
			if bs := p.Stats().Charlotte(); bs != nil && (bs.UnwantedMessages+bs.Retries+bs.Forbids) > 0 {
				fmt.Printf("  %s: unwanted=%d retries=%d forbids=%d allows=%d goaheads=%d enc=%d\n",
					p.Name(), bs.UnwantedMessages, bs.Retries, bs.Forbids, bs.Allows, bs.Goaheads, bs.EncPackets)
			}
		}
	}
	if ks := sys.Stats().SODA(); ks != nil {
		fmt.Printf("  soda kernel: requests=%d accepts=%d interrupts=%d discovers=%d bytes=%d\n",
			ks.Requests, ks.Accepts, ks.Interrupts, ks.Discovers, ks.Bytes)
	}
	if ks := sys.Stats().Chrysalis(); ks != nil {
		fmt.Printf("  chrysalis kernel: atomics=%d enq=%d deq=%d posts=%d waits=%d maps=%d bytes=%d torn=%d\n",
			ks.AtomicOps, ks.Enqueues, ks.Dequeues, ks.EventPosts, ks.EventWaits, ks.Maps, ks.BytesMoved, ks.TornReads)
	}
	if n := sys.Network(); n != nil {
		fmt.Printf("  network (%s): %v\n", n.Name(), n.Stats())
	}
}
