// Command schedbench measures the discrete-event scheduler's real-time
// throughput and gates allocation regressions.
//
// It runs the scheduler microbenchmarks (the same workloads as
// internal/sim's Benchmark* functions) via testing.Benchmark, then
// compares against the numbers recorded in BENCH_sched.json:
//
//	schedbench                 # measure + fail on >10% allocs/op regression
//	schedbench -update         # measure + rewrite the "current" numbers
//	schedbench -as-baseline    # measure + rewrite the "baseline" numbers
//
// The baseline section records the engine before the fast-path rewrite
// (PR 2) and is never touched by -update, so every future run shows the
// cumulative speedup; the current section is the regression reference.
//
// It also sweeps the conservative parallel engine (sim.EnterParallel)
// over a partitioned timer workload at 1, 2, and 4 workers and records
// the events/s per worker count as the "scaling" section. Wall-clock
// scaling is hardware-dependent, so the >= 2x-at-4-workers assertion
// only runs on machines with at least 4 CPUs (the artifact records
// num_cpu and the gate outcome, so a SKIP is auditable), and -update /
// -as-baseline refuse to overwrite numbers recorded on a bigger
// machine from a 1-CPU run unless -force is given.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/sim"
)

// measurement is one bench's recorded numbers.
type measurement struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// benchRecord pairs the pre-rewrite baseline with the latest recording.
type benchRecord struct {
	Baseline *measurement `json:"baseline,omitempty"`
	Current  *measurement `json:"current,omitempty"`
}

// benchFile is the BENCH_sched.json schema. NumCPU is the recording
// machine's CPU count — the update guard reads it so a 1-CPU run cannot
// silently clobber numbers recorded on real hardware.
type benchFile struct {
	Note    string                  `json:"note"`
	NumCPU  int                     `json:"num_cpu,omitempty"`
	Benches map[string]*benchRecord `json:"benches"`
	Scaling *scalingMeasurement     `json:"scaling,omitempty"`
}

// bench is one scheduler workload. eventsPerOp converts ns/op into
// sched-events/s.
type bench struct {
	name        string
	eventsPerOp float64
	fn          func(b *testing.B)
}

// benches mirrors internal/sim/bench_test.go — keep the workloads in
// sync.
var benches = []bench{
	{"sched_timer_8", 1, func(b *testing.B) {
		b.ReportAllocs()
		env := sim.NewEnv(1)
		const procs = 8
		for i := 0; i < procs; i++ {
			env.Spawn("p", func(p *sim.Proc) {
				for {
					p.Delay(sim.Microsecond)
				}
			})
		}
		b.ResetTimer()
		if err := env.RunUntil(sim.Time(b.N) * sim.Time(sim.Microsecond) / procs); err != nil {
			b.Fatal(err)
		}
	}},
	{"sched_yield", 2, func(b *testing.B) {
		b.ReportAllocs()
		env := sim.NewEnv(1)
		n := b.N
		for i := 0; i < 2; i++ {
			env.Spawn("y", func(p *sim.Proc) {
				for j := 0; j < n; j++ {
					p.Yield()
				}
			})
		}
		b.ResetTimer()
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	}},
	{"sched_timer_256", 1, func(b *testing.B) {
		b.ReportAllocs()
		env := sim.NewEnv(1)
		const procs = 256
		for i := 0; i < procs; i++ {
			env.Spawn("p", func(p *sim.Proc) {
				for {
					p.Delay(sim.Microsecond)
				}
			})
		}
		b.ResetTimer()
		if err := env.RunUntil(sim.Time(b.N) * sim.Time(sim.Microsecond) / procs); err != nil {
			b.Fatal(err)
		}
	}},
}

// Parallel-scaling workload shape: independent groups of procs looping
// on short timers — the partitionable topology class the conservative
// engine accelerates. 8 groups x 4 procs x 30k delay events per proc
// keeps a sweep under a second per worker count while dwarfing the
// per-window barrier cost.
const (
	scalingGroups        = 8
	scalingProcsPerGroup = 4
	scalingEventsPerProc = 30000
	// minScaling is the acceptance threshold for events/s at 4 workers
	// versus 1 (only checkable on >= 4 CPUs).
	minScaling = 2.0
)

var scalingWorkers = []int{1, 2, 4}

// scalingMeasurement records the parallel-engine sweep: events/s per
// worker count plus the gate outcome on the recording machine
// ("checked" or "SKIP (n CPU)").
type scalingMeasurement struct {
	EventsPerSec map[string]float64 `json:"events_per_sec"`
	Scaling4v1   float64            `json:"scaling_4v1"`
	ScalingGate  string             `json:"scaling_gate"`
}

// runScaling times one partitioned run at the given worker count and
// returns wall-clock events/s (best of three to shed OS-scheduler
// noise).
func runScaling(workers int) float64 {
	best := 0.0
	for try := 0; try < 3; try++ {
		root := sim.NewEnv(1)
		shards := root.EnterParallel(sim.ParallelOptions{Groups: scalingGroups, Workers: workers})
		for _, sh := range shards {
			for p := 0; p < scalingProcsPerGroup; p++ {
				sh.Spawn("p", func(p *sim.Proc) {
					for {
						p.Delay(sim.Microsecond)
					}
				})
			}
		}
		start := time.Now()
		horizon := sim.Time(scalingEventsPerProc) * sim.Time(sim.Microsecond)
		if err := root.RunUntil(horizon); err != nil {
			cli.Failf("schedbench", "scaling run: %v", err)
		}
		elapsed := time.Since(start).Seconds()
		events := float64(scalingGroups * scalingProcsPerGroup * scalingEventsPerProc)
		if eps := events / elapsed; eps > best {
			best = eps
		}
	}
	return best
}

// measureScaling sweeps the worker counts and applies the hardware-gated
// scaling assertion. Returns the recording and whether the gate failed.
func measureScaling() (*scalingMeasurement, bool) {
	m := &scalingMeasurement{EventsPerSec: map[string]float64{}}
	for _, w := range scalingWorkers {
		eps := runScaling(w)
		m.EventsPerSec[fmt.Sprint(w)] = eps
		fmt.Printf("sched_parallel workers=%d %12.0f events/s\n", w, eps)
	}
	if one := m.EventsPerSec["1"]; one > 0 {
		m.Scaling4v1 = m.EventsPerSec["4"] / one
	}
	failed := false
	if ncpu := runtime.NumCPU(); ncpu >= 4 {
		m.ScalingGate = "checked"
		if m.Scaling4v1 < minScaling {
			fmt.Fprintf(os.Stderr, "schedbench: parallel scaling 4v1 = %.2fx, want >= %.1fx\n",
				m.Scaling4v1, minScaling)
			failed = true
		}
		fmt.Printf("sched_parallel scaling 4v1 = %.2fx (NumCPU=%d)\n", m.Scaling4v1, ncpu)
	} else {
		m.ScalingGate = fmt.Sprintf("SKIP (%d CPU)", ncpu)
		fmt.Printf("sched_parallel scaling gate SKIP (%d CPU): 4v1 = %.2fx not asserted\n",
			ncpu, m.Scaling4v1)
	}
	return m, failed
}

func measure(bn bench) measurement {
	r := testing.Benchmark(bn.fn)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return measurement{
		NsPerOp:      ns,
		AllocsPerOp:  float64(r.AllocsPerOp()),
		BytesPerOp:   float64(r.AllocedBytesPerOp()),
		EventsPerSec: bn.eventsPerOp * 1e9 / ns,
	}
}

func load(path string) (*benchFile, error) {
	f := &benchFile{Benches: map[string]*benchRecord{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Benches == nil {
		f.Benches = map[string]*benchRecord{}
	}
	return f, nil
}

func save(path string, f *benchFile) error {
	f.Note = "Scheduler microbench trajectory. baseline = pre-fast-path engine (PR 2); " +
		"current = last recording (refresh with `make bench-update`). " +
		"make check fails on >10% allocs/op regression vs current. " +
		"scaling = parallel-engine events/s per worker count; its >=2x-at-4-workers " +
		"gate only runs on >=4-CPU machines (see scaling_gate/num_cpu)."
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	path := flag.String("file", "BENCH_sched.json", "trajectory file")
	update := flag.Bool("update", false, "rewrite the current numbers")
	asBaseline := flag.Bool("as-baseline", false, "rewrite the baseline numbers")
	force := flag.Bool("force", false, "allow -update/-as-baseline to overwrite numbers recorded on a bigger machine")
	flag.Parse()

	f, err := load(*path)
	cli.Check("schedbench", err)

	// The update guard: wall-clock numbers recorded on real hardware must
	// not be silently replaced by a 1-CPU container run (which would also
	// re-disarm the scaling gate). Closes the ROADMAP housekeeping note.
	if (*update || *asBaseline) && !*force && f.NumCPU > 1 && runtime.NumCPU() == 1 {
		cli.Failf("schedbench",
			"refusing to overwrite %s recorded on %d CPUs with a 1-CPU run (re-record on comparable hardware, or pass -force)",
			*path, f.NumCPU)
	}

	failed := false
	for _, bn := range benches {
		m := measure(bn)
		rec := f.Benches[bn.name]
		if rec == nil {
			rec = &benchRecord{}
			f.Benches[bn.name] = rec
		}
		fmt.Printf("%-16s %10.1f ns/op %8.0f events/s %6.0f B/op %5.0f allocs/op",
			bn.name, m.NsPerOp, m.EventsPerSec, m.BytesPerOp, m.AllocsPerOp)
		if rec.Baseline != nil {
			fmt.Printf("   (baseline: %.1f ns/op, %.0f allocs/op -> %.2fx events/s, %+.0f%% allocs)",
				rec.Baseline.NsPerOp, rec.Baseline.AllocsPerOp,
				m.EventsPerSec/rec.Baseline.EventsPerSec,
				pctDelta(m.AllocsPerOp, rec.Baseline.AllocsPerOp))
		}
		fmt.Println()
		switch {
		case *asBaseline:
			base := m
			rec.Baseline = &base
		case *update:
			cur := m
			rec.Current = &cur
		case rec.Current != nil:
			// The regression gate: allocs/op may not grow more than 10%
			// over the recorded current (a zero record forbids any alloc).
			if m.AllocsPerOp > rec.Current.AllocsPerOp*1.10 {
				fmt.Fprintf(os.Stderr,
					"schedbench: %s allocs/op regressed: %.0f recorded, %.0f measured (>10%%)\n",
					bn.name, rec.Current.AllocsPerOp, m.AllocsPerOp)
				failed = true
			}
		}
	}

	scaling, scalingFailed := measureScaling()
	failed = failed || scalingFailed

	if *asBaseline || *update {
		f.Scaling = scaling
		f.NumCPU = runtime.NumCPU()
		cli.Check("schedbench", save(*path, f))
		fmt.Println("wrote", *path)
		return
	}
	if failed {
		cli.Failf("schedbench", "regression gate failed (refresh deliberately with `make bench-update`)")
	}
}

// pctDelta reports the percent change from base to cur (0 when base is
// zero and cur is too; +Inf-ish large values are clamped for display).
func pctDelta(cur, base float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 100
	}
	return (cur - base) / base * 100
}
