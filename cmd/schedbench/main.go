// Command schedbench measures the discrete-event scheduler's real-time
// throughput and gates allocation regressions.
//
// It runs the scheduler microbenchmarks (the same workloads as
// internal/sim's Benchmark* functions) via testing.Benchmark, then
// compares against the numbers recorded in BENCH_sched.json:
//
//	schedbench                 # measure + fail on >10% allocs/op regression
//	schedbench -update         # measure + rewrite the "current" numbers
//	schedbench -as-baseline    # measure + rewrite the "baseline" numbers
//
// The baseline section records the engine before the fast-path rewrite
// (PR 2) and is never touched by -update, so every future run shows the
// cumulative speedup; the current section is the regression reference.
//
// It also sweeps the conservative parallel engine (sim.EnterParallel)
// over a partitioned timer workload at 1, 2, and 4 workers and records
// the events/s per worker count as the "scaling" section. Wall-clock
// scaling is hardware-dependent, so the >= 2x-at-4-workers assertion
// only runs on machines with at least 4 CPUs (the artifact records
// num_cpu and the gate outcome, so a SKIP is auditable), and -update /
// -as-baseline refuse to overwrite numbers recorded on a bigger
// machine from a 1-CPU run unless -force is given.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/sim"
	"repro/lynx"
	"repro/lynx/load"
)

// measurement is one bench's recorded numbers.
type measurement struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// benchRecord pairs the pre-rewrite baseline with the latest recording.
type benchRecord struct {
	Baseline *measurement `json:"baseline,omitempty"`
	Current  *measurement `json:"current,omitempty"`
}

// benchFile is the BENCH_sched.json schema. NumCPU is the recording
// machine's CPU count — the update guard reads it so a 1-CPU run cannot
// silently clobber numbers recorded on real hardware.
type benchFile struct {
	Note     string                  `json:"note"`
	NumCPU   int                     `json:"num_cpu,omitempty"`
	Benches  map[string]*benchRecord `json:"benches"`
	Scaling  *scalingMeasurement     `json:"scaling,omitempty"`
	Overhead *overheadMeasurement    `json:"recorder_overhead,omitempty"`
}

// bench is one scheduler workload. eventsPerOp converts ns/op into
// sched-events/s.
type bench struct {
	name        string
	eventsPerOp float64
	fn          func(b *testing.B)
}

// benches mirrors internal/sim/bench_test.go — keep the workloads in
// sync.
var benches = []bench{
	{"sched_timer_8", 1, func(b *testing.B) {
		b.ReportAllocs()
		env := sim.NewEnv(1)
		const procs = 8
		for i := 0; i < procs; i++ {
			env.Spawn("p", func(p *sim.Proc) {
				for {
					p.Delay(sim.Microsecond)
				}
			})
		}
		b.ResetTimer()
		if err := env.RunUntil(sim.Time(b.N) * sim.Time(sim.Microsecond) / procs); err != nil {
			b.Fatal(err)
		}
	}},
	{"sched_yield", 2, func(b *testing.B) {
		b.ReportAllocs()
		env := sim.NewEnv(1)
		n := b.N
		for i := 0; i < 2; i++ {
			env.Spawn("y", func(p *sim.Proc) {
				for j := 0; j < n; j++ {
					p.Yield()
				}
			})
		}
		b.ResetTimer()
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	}},
	{"sched_timer_256", 1, func(b *testing.B) {
		b.ReportAllocs()
		env := sim.NewEnv(1)
		const procs = 256
		for i := 0; i < procs; i++ {
			env.Spawn("p", func(p *sim.Proc) {
				for {
					p.Delay(sim.Microsecond)
				}
			})
		}
		b.ResetTimer()
		if err := env.RunUntil(sim.Time(b.N) * sim.Time(sim.Microsecond) / procs); err != nil {
			b.Fatal(err)
		}
	}},
}

// Parallel-scaling workload shape: independent groups of procs looping
// on short timers — the partitionable topology class the conservative
// engine accelerates. 8 groups x 4 procs x 30k delay events per proc
// keeps a sweep under a second per worker count while dwarfing the
// per-window barrier cost.
const (
	scalingGroups        = 8
	scalingProcsPerGroup = 4
	scalingEventsPerProc = 30000
	// minScaling is the acceptance threshold for events/s at 4 workers
	// versus 1 (only checkable on >= 4 CPUs).
	minScaling = 2.0
	// Connected-topology workload: a full lynx System on the Charlotte
	// token ring — a CONNECTED shared medium, partitioned into
	// per-group segments by the finite MinLatency bound — with 8
	// client/server pairs each shipping connOpsPerClient RPCs. This is
	// the finite-lookahead path end to end (kernel, binding, medium
	// segments), not just the bare timer engine, so its scaling floor
	// is lower: protocol work serializes on per-shard medium
	// reservations that the timer workload never touches.
	connGroups       = 8
	connOpsPerClient = 400
	minConnScaling   = 1.5
)

var scalingWorkers = []int{1, 2, 4}

// scalingMeasurement records the parallel-engine sweep: events/s per
// worker count plus the gate outcome on the recording machine
// ("checked" or "SKIP (n CPU)"). The connected_* fields are the same
// sweep over the finite-lookahead token-ring workload (lynx RPCs/s per
// worker count).
type scalingMeasurement struct {
	EventsPerSec  map[string]float64 `json:"events_per_sec"`
	Scaling4v1    float64            `json:"scaling_4v1"`
	ScalingGate   string             `json:"scaling_gate"`
	ConnOpsPerSec map[string]float64 `json:"connected_ops_per_sec,omitempty"`
	Conn4v1       float64            `json:"connected_4v1,omitempty"`
}

// runScaling times one partitioned run at the given worker count and
// returns wall-clock events/s (best of three to shed OS-scheduler
// noise).
func runScaling(workers int) float64 {
	best := 0.0
	for try := 0; try < 3; try++ {
		root := sim.NewEnv(1)
		shards := root.EnterParallel(sim.ParallelOptions{Groups: scalingGroups, Workers: workers})
		for _, sh := range shards {
			for p := 0; p < scalingProcsPerGroup; p++ {
				sh.Spawn("p", func(p *sim.Proc) {
					for {
						p.Delay(sim.Microsecond)
					}
				})
			}
		}
		start := time.Now()
		horizon := sim.Time(scalingEventsPerProc) * sim.Time(sim.Microsecond)
		if err := root.RunUntil(horizon); err != nil {
			cli.Failf("schedbench", "scaling run: %v", err)
		}
		elapsed := time.Since(start).Seconds()
		events := float64(scalingGroups * scalingProcsPerGroup * scalingEventsPerProc)
		if eps := events / elapsed; eps > best {
			best = eps
		}
	}
	return best
}

// runScalingConnected times the connected-topology workload at the
// given worker count and returns wall-clock RPCs/s (best of three).
// The System partitions because the boot graph has connGroups
// components and the token ring's MinLatency licenses finite-lookahead
// segments — a serial collapse here would silently turn this into a
// measurement of nothing, so the partition is asserted.
func runScalingConnected(workers int) float64 {
	best := 0.0
	for try := 0; try < 3; try++ {
		sys := lynx.NewSystem(lynx.Config{Substrate: lynx.Charlotte, Seed: 1, SimWorkers: workers})
		for g := 0; g < connGroups; g++ {
			client := sys.Spawn(fmt.Sprintf("client-%d", g), func(t *lynx.Thread, boot []*lynx.End) {
				data := make([]byte, 32)
				for i := 0; i < connOpsPerClient; i++ {
					if _, err := t.Connect(boot[0], "echo", lynx.Msg{Data: data}); err != nil {
						cli.Failf("schedbench", "connected scaling rpc: %v", err)
					}
				}
				t.Destroy(boot[0])
			})
			server := sys.Spawn(fmt.Sprintf("server-%d", g), func(t *lynx.Thread, boot []*lynx.End) {
				t.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
					st.Reply(req, lynx.Msg{Data: req.Data()})
				})
			})
			sys.Join(client, server)
		}
		start := time.Now()
		if err := sys.Run(); err != nil {
			cli.Failf("schedbench", "connected scaling run: %v", err)
		}
		if !sys.Partitioned() {
			cli.Failf("schedbench", "connected scaling workload did not partition (serial collapse)")
		}
		elapsed := time.Since(start).Seconds()
		if ops := float64(connGroups*connOpsPerClient) / elapsed; ops > best {
			best = ops
		}
	}
	return best
}

// measureScaling sweeps the worker counts and applies the hardware-gated
// scaling assertion. Returns the recording and whether the gate failed.
func measureScaling() (*scalingMeasurement, bool) {
	m := &scalingMeasurement{EventsPerSec: map[string]float64{}, ConnOpsPerSec: map[string]float64{}}
	for _, w := range scalingWorkers {
		eps := runScaling(w)
		m.EventsPerSec[fmt.Sprint(w)] = eps
		fmt.Printf("sched_parallel workers=%d %12.0f events/s\n", w, eps)
	}
	for _, w := range scalingWorkers {
		ops := runScalingConnected(w)
		m.ConnOpsPerSec[fmt.Sprint(w)] = ops
		fmt.Printf("sched_parallel_connected workers=%d %12.0f rpcs/s\n", w, ops)
	}
	if one := m.EventsPerSec["1"]; one > 0 {
		m.Scaling4v1 = m.EventsPerSec["4"] / one
	}
	if one := m.ConnOpsPerSec["1"]; one > 0 {
		m.Conn4v1 = m.ConnOpsPerSec["4"] / one
	}
	failed := false
	if ncpu := runtime.NumCPU(); ncpu >= 4 {
		m.ScalingGate = "checked"
		if m.Scaling4v1 < minScaling {
			fmt.Fprintf(os.Stderr, "schedbench: parallel scaling 4v1 = %.2fx, want >= %.1fx\n",
				m.Scaling4v1, minScaling)
			failed = true
		}
		if m.Conn4v1 < minConnScaling {
			fmt.Fprintf(os.Stderr, "schedbench: connected scaling 4v1 = %.2fx, want >= %.1fx\n",
				m.Conn4v1, minConnScaling)
			failed = true
		}
		fmt.Printf("sched_parallel scaling 4v1 = %.2fx, connected 4v1 = %.2fx (NumCPU=%d)\n",
			m.Scaling4v1, m.Conn4v1, ncpu)
	} else {
		m.ScalingGate = fmt.Sprintf("SKIP (%d CPU)", ncpu)
		fmt.Printf("sched_parallel scaling gate SKIP (%d CPU): 4v1 = %.2fx, connected 4v1 = %.2fx not asserted\n",
			ncpu, m.Scaling4v1, m.Conn4v1)
	}
	return m, failed
}

// Recorder-overhead probe. The penalty a recorder mode inflicts is
// per-event cost added / per-event cost of the untraced workload. The
// two factors are measured separately because they live at different
// scales: the added cost (tens of ns) comes from a testing.Benchmark
// tight loop over a representative instrumented site, which averages
// over millions of iterations and is stable even on shared 1-CPU CI
// hardware; the baseline (microseconds per protocol event) comes from
// CPU-timing a real open-loop load run. Timing two full runs and
// differencing them — the obvious approach — cannot resolve a 5%
// threshold on shared hardware: the identical deterministic run varies
// by ±20-40% CPU time with host frequency scaling, swamping the
// effect. Dividing instead keeps that noise where it is harmless: the
// baseline is taken as the MINIMUM over several runs (noise only adds
// time), which biases the denominator low and the reported penalty
// high — the strict direction for a gate.
const (
	overheadRate      = 400
	overheadWindow    = lynx.Second
	overheadBaseTries = 5
	overheadSampleK   = 64
	// Acceptance thresholds: events/s penalty vs the untraced run.
	maxCountersPenalty = 0.05
	maxSampledPenalty  = 0.15
)

// overheadMeasurement records the recorder-overhead probe: the
// workload's per-event baseline, each mode's added per-event cost, the
// derived events/s, and the penalty ratios the gate asserts.
type overheadMeasurement struct {
	Events             int                `json:"events"`
	BaseNsPerEvent     float64            `json:"base_ns_per_event"`
	CountersNsPerEvent float64            `json:"counters_ns_per_event"`
	SampledNsPerEvent  float64            `json:"sampled_ns_per_event"`
	EventsPerSec       map[string]float64 `json:"events_per_sec"`
	CountersPenaltyPct float64            `json:"counters_penalty_pct"`
	SampledPenaltyPct  float64            `json:"sampled_penalty_pct"`
	Gate               string             `json:"gate"`
}

// countSink tallies recorded events — the calibration run uses it to
// learn how many protocol events the overhead workload emits.
type countSink struct{ n int }

func (c *countSink) Event(obs.Event) { c.n++ }

// runOverhead times one run of the fixed overhead workload under the
// given trace configuration (nil = untraced) and returns the CPU
// seconds it consumed (wall seconds where rusage is unavailable).
func runOverhead(tr *flight.Config) float64 {
	runtime.GC()
	cpu0, wall0 := cpuSeconds(), time.Now()
	if _, err := load.Run(load.Options{
		Substrate: lynx.Charlotte,
		Rate:      overheadRate,
		Window:    overheadWindow,
		Seed:      1,
		Trace:     tr,
	}); err != nil {
		cli.Failf("schedbench", "overhead run: %v", err)
	}
	if cpu0 > 0 {
		return cpuSeconds() - cpu0
	}
	return time.Since(wall0).Seconds()
}

// emitBench is the instrumented-site shape the kernels use, as a tight
// benchmark loop: gate on Active, build a Detail string only when the
// recorder wants it, emit. Its ns/op is the per-event cost a workload
// pays once a flight recorder in the given mode is attached.
func emitBench(mode flight.Mode, sink obs.Sink) func(b *testing.B) {
	return func(b *testing.B) {
		rec := obs.NewRecorder(sim.NewEnv(1), "bench")
		rec.Attach(flight.New(flight.Config{Mode: mode, SampleK: overheadSampleK, Sink: sink}))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rec.Active() {
				var detail string
				if rec.WantDetail() {
					detail = fmt.Sprintf("Wait -> end<%d.%d> send OK", i&7, i&1)
				}
				rec.Emit(obs.Event{Kind: obs.KindQueueService, Proc: 1, Link: 2, Bytes: 64, Detail: detail})
			}
		}
	}
}

// minBenchNs runs fn under testing.Benchmark three times and returns
// the fastest ns/op — matching the minimum bias of the baseline so the
// ratio compares two fast-period measurements.
func minBenchNs(fn func(b *testing.B)) float64 {
	best := 0.0
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(fn)
		if ns := float64(r.T.Nanoseconds()) / float64(r.N); best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// measureOverhead measures the workload baseline and each mode's added
// per-event cost, derives the penalties, and applies the gates.
// Returns the recording and whether a gate failed.
func measureOverhead() (*overheadMeasurement, bool) {
	// Calibrate the event count once with a full-mode counting sink
	// (doubles as the warmup run).
	cnt := &countSink{}
	runOverhead(&flight.Config{Mode: flight.Full, Sink: cnt})
	events := cnt.n

	base := 0.0
	for i := 0; i < overheadBaseTries; i++ {
		if el := runOverhead(nil); base == 0 || el < base {
			base = el
		}
	}
	baseNs := base * 1e9 / float64(events)

	ctrNs := minBenchNs(emitBench(flight.Counters, nil))
	smpNs := minBenchNs(emitBench(flight.Sampled, &obs.JSONLExporter{W: io.Discard}))

	m := &overheadMeasurement{
		Events:             events,
		BaseNsPerEvent:     baseNs,
		CountersNsPerEvent: ctrNs,
		SampledNsPerEvent:  smpNs,
		EventsPerSec: map[string]float64{
			"untraced":      1e9 / baseNs,
			"counters-only": 1e9 / (baseNs + ctrNs),
			"sampled":       1e9 / (baseNs + smpNs),
		},
		CountersPenaltyPct: ctrNs / baseNs * 100,
		SampledPenaltyPct:  smpNs / baseNs * 100,
		Gate:               "checked",
	}
	fmt.Printf("recorder_overhead %d events: untraced %.0f ev/s, counters-only %+.1f%%, sampled(K=%d) %+.1f%%\n",
		events, m.EventsPerSec["untraced"], m.CountersPenaltyPct, overheadSampleK, m.SampledPenaltyPct)
	failed := false
	if m.CountersPenaltyPct > maxCountersPenalty*100 {
		fmt.Fprintf(os.Stderr, "schedbench: counters-only recorder penalty %.1f%%, want <= %.0f%%\n",
			m.CountersPenaltyPct, maxCountersPenalty*100)
		failed = true
	}
	if m.SampledPenaltyPct > maxSampledPenalty*100 {
		fmt.Fprintf(os.Stderr, "schedbench: sampled recorder penalty %.1f%%, want <= %.0f%%\n",
			m.SampledPenaltyPct, maxSampledPenalty*100)
		failed = true
	}
	return m, failed
}

func measure(bn bench) measurement {
	r := testing.Benchmark(bn.fn)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return measurement{
		NsPerOp:      ns,
		AllocsPerOp:  float64(r.AllocsPerOp()),
		BytesPerOp:   float64(r.AllocedBytesPerOp()),
		EventsPerSec: bn.eventsPerOp * 1e9 / ns,
	}
}

func loadFile(path string) (*benchFile, error) {
	f := &benchFile{Benches: map[string]*benchRecord{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Benches == nil {
		f.Benches = map[string]*benchRecord{}
	}
	return f, nil
}

func save(path string, f *benchFile) error {
	f.Note = "Scheduler microbench trajectory. baseline = pre-fast-path engine (PR 2); " +
		"current = last recording (refresh with `make bench-update`). " +
		"make check fails on >10% allocs/op regression vs current. " +
		"scaling = parallel-engine events/s per worker count; its >=2x-at-4-workers " +
		"gate only runs on >=4-CPU machines (see scaling_gate/num_cpu). " +
		"recorder_overhead = flight-recorder events/s penalty vs untraced " +
		"(ratio-based, always gated: counters-only <=5%, sampled K=64 <=15%)."
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	path := flag.String("file", "BENCH_sched.json", "trajectory file")
	update := flag.Bool("update", false, "rewrite the current numbers")
	asBaseline := flag.Bool("as-baseline", false, "rewrite the baseline numbers")
	force := flag.Bool("force", false, "allow -update/-as-baseline to overwrite numbers recorded on a bigger machine")
	flag.Parse()

	f, err := loadFile(*path)
	cli.Check("schedbench", err)

	// The update guard: wall-clock numbers recorded on real hardware must
	// not be silently replaced by a 1-CPU container run (which would also
	// re-disarm the scaling gate). Closes the ROADMAP housekeeping note.
	if (*update || *asBaseline) && !*force && f.NumCPU > 1 && runtime.NumCPU() == 1 {
		cli.Failf("schedbench",
			"refusing to overwrite %s recorded on %d CPUs with a 1-CPU run (re-record on comparable hardware, or pass -force)",
			*path, f.NumCPU)
	}

	// Overhead first: the microbenches and the scaling sweep park
	// thousands of never-terminating sim procs whose stacks every later
	// GC must scan, which would bill the recorder modes (the only
	// allocating runs) for garbage they didn't make.
	overhead, overheadFailed := measureOverhead()

	failed := overheadFailed
	for _, bn := range benches {
		m := measure(bn)
		rec := f.Benches[bn.name]
		if rec == nil {
			rec = &benchRecord{}
			f.Benches[bn.name] = rec
		}
		fmt.Printf("%-16s %10.1f ns/op %8.0f events/s %6.0f B/op %5.0f allocs/op",
			bn.name, m.NsPerOp, m.EventsPerSec, m.BytesPerOp, m.AllocsPerOp)
		if rec.Baseline != nil {
			fmt.Printf("   (baseline: %.1f ns/op, %.0f allocs/op -> %.2fx events/s, %+.0f%% allocs)",
				rec.Baseline.NsPerOp, rec.Baseline.AllocsPerOp,
				m.EventsPerSec/rec.Baseline.EventsPerSec,
				pctDelta(m.AllocsPerOp, rec.Baseline.AllocsPerOp))
		}
		fmt.Println()
		switch {
		case *asBaseline:
			base := m
			rec.Baseline = &base
		case *update:
			cur := m
			rec.Current = &cur
		case rec.Current != nil:
			// The regression gate: allocs/op may not grow more than 10%
			// over the recorded current (a zero record forbids any alloc).
			if m.AllocsPerOp > rec.Current.AllocsPerOp*1.10 {
				fmt.Fprintf(os.Stderr,
					"schedbench: %s allocs/op regressed: %.0f recorded, %.0f measured (>10%%)\n",
					bn.name, rec.Current.AllocsPerOp, m.AllocsPerOp)
				failed = true
			}
		}
	}

	scaling, scalingFailed := measureScaling()
	failed = failed || scalingFailed

	if *asBaseline || *update {
		f.Scaling = scaling
		f.Overhead = overhead
		f.NumCPU = runtime.NumCPU()
		cli.Check("schedbench", save(*path, f))
		fmt.Println("wrote", *path)
		return
	}
	if failed {
		cli.Failf("schedbench", "regression gate failed (refresh deliberately with `make bench-update`)")
	}
}

// pctDelta reports the percent change from base to cur (0 when base is
// zero and cur is too; +Inf-ish large values are clamped for display).
func pctDelta(cur, base float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 100
	}
	return (cur - base) / base * 100
}
