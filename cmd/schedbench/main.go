// Command schedbench measures the discrete-event scheduler's real-time
// throughput and gates allocation regressions.
//
// It runs the scheduler microbenchmarks (the same workloads as
// internal/sim's Benchmark* functions) via testing.Benchmark, then
// compares against the numbers recorded in BENCH_sched.json:
//
//	schedbench                 # measure + fail on >10% allocs/op regression
//	schedbench -update         # measure + rewrite the "current" numbers
//	schedbench -as-baseline    # measure + rewrite the "baseline" numbers
//
// The baseline section records the engine before the fast-path rewrite
// (PR 2) and is never touched by -update, so every future run shows the
// cumulative speedup; the current section is the regression reference.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/cli"
	"repro/internal/sim"
)

// measurement is one bench's recorded numbers.
type measurement struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// benchRecord pairs the pre-rewrite baseline with the latest recording.
type benchRecord struct {
	Baseline *measurement `json:"baseline,omitempty"`
	Current  *measurement `json:"current,omitempty"`
}

// benchFile is the BENCH_sched.json schema.
type benchFile struct {
	Note    string                  `json:"note"`
	Benches map[string]*benchRecord `json:"benches"`
}

// bench is one scheduler workload. eventsPerOp converts ns/op into
// sched-events/s.
type bench struct {
	name        string
	eventsPerOp float64
	fn          func(b *testing.B)
}

// benches mirrors internal/sim/bench_test.go — keep the workloads in
// sync.
var benches = []bench{
	{"sched_timer_8", 1, func(b *testing.B) {
		b.ReportAllocs()
		env := sim.NewEnv(1)
		const procs = 8
		for i := 0; i < procs; i++ {
			env.Spawn("p", func(p *sim.Proc) {
				for {
					p.Delay(sim.Microsecond)
				}
			})
		}
		b.ResetTimer()
		if err := env.RunUntil(sim.Time(b.N) * sim.Time(sim.Microsecond) / procs); err != nil {
			b.Fatal(err)
		}
	}},
	{"sched_yield", 2, func(b *testing.B) {
		b.ReportAllocs()
		env := sim.NewEnv(1)
		n := b.N
		for i := 0; i < 2; i++ {
			env.Spawn("y", func(p *sim.Proc) {
				for j := 0; j < n; j++ {
					p.Yield()
				}
			})
		}
		b.ResetTimer()
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	}},
	{"sched_timer_256", 1, func(b *testing.B) {
		b.ReportAllocs()
		env := sim.NewEnv(1)
		const procs = 256
		for i := 0; i < procs; i++ {
			env.Spawn("p", func(p *sim.Proc) {
				for {
					p.Delay(sim.Microsecond)
				}
			})
		}
		b.ResetTimer()
		if err := env.RunUntil(sim.Time(b.N) * sim.Time(sim.Microsecond) / procs); err != nil {
			b.Fatal(err)
		}
	}},
}

func measure(bn bench) measurement {
	r := testing.Benchmark(bn.fn)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return measurement{
		NsPerOp:      ns,
		AllocsPerOp:  float64(r.AllocsPerOp()),
		BytesPerOp:   float64(r.AllocedBytesPerOp()),
		EventsPerSec: bn.eventsPerOp * 1e9 / ns,
	}
}

func load(path string) (*benchFile, error) {
	f := &benchFile{Benches: map[string]*benchRecord{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Benches == nil {
		f.Benches = map[string]*benchRecord{}
	}
	return f, nil
}

func save(path string, f *benchFile) error {
	f.Note = "Scheduler microbench trajectory. baseline = pre-fast-path engine (PR 2); " +
		"current = last recording (refresh with `make bench-update`). " +
		"make check fails on >10% allocs/op regression vs current."
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	path := flag.String("file", "BENCH_sched.json", "trajectory file")
	update := flag.Bool("update", false, "rewrite the current numbers")
	asBaseline := flag.Bool("as-baseline", false, "rewrite the baseline numbers")
	flag.Parse()

	f, err := load(*path)
	cli.Check("schedbench", err)

	failed := false
	for _, bn := range benches {
		m := measure(bn)
		rec := f.Benches[bn.name]
		if rec == nil {
			rec = &benchRecord{}
			f.Benches[bn.name] = rec
		}
		fmt.Printf("%-16s %10.1f ns/op %8.0f events/s %6.0f B/op %5.0f allocs/op",
			bn.name, m.NsPerOp, m.EventsPerSec, m.BytesPerOp, m.AllocsPerOp)
		if rec.Baseline != nil {
			fmt.Printf("   (baseline: %.1f ns/op, %.0f allocs/op -> %.2fx events/s, %+.0f%% allocs)",
				rec.Baseline.NsPerOp, rec.Baseline.AllocsPerOp,
				m.EventsPerSec/rec.Baseline.EventsPerSec,
				pctDelta(m.AllocsPerOp, rec.Baseline.AllocsPerOp))
		}
		fmt.Println()
		switch {
		case *asBaseline:
			base := m
			rec.Baseline = &base
		case *update:
			cur := m
			rec.Current = &cur
		case rec.Current != nil:
			// The regression gate: allocs/op may not grow more than 10%
			// over the recorded current (a zero record forbids any alloc).
			if m.AllocsPerOp > rec.Current.AllocsPerOp*1.10 {
				fmt.Fprintf(os.Stderr,
					"schedbench: %s allocs/op regressed: %.0f recorded, %.0f measured (>10%%)\n",
					bn.name, rec.Current.AllocsPerOp, m.AllocsPerOp)
				failed = true
			}
		}
	}

	if *asBaseline || *update {
		cli.Check("schedbench", save(*path, f))
		fmt.Println("wrote", *path)
		return
	}
	if failed {
		cli.Failf("schedbench", "regression gate failed (refresh deliberately with `make bench-update`)")
	}
}

// pctDelta reports the percent change from base to cur (0 when base is
// zero and cur is too; +Inf-ish large values are clamped for display).
func pctDelta(cur, base float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 100
	}
	return (cur - base) / base * 100
}
