//go:build !unix

package main

// cpuSeconds falls back to zero where rusage is unavailable; the
// overhead probe then measures wall clock (see runOverhead).
func cpuSeconds() float64 { return 0 }
