//go:build unix

package main

import "syscall"

// cpuSeconds returns the process's cumulative user+system CPU time.
// The recorder-overhead gate measures with it instead of wall clock:
// on shared hardware (1-CPU CI containers) wall time includes whatever
// the OS scheduler stole from the run, which flaps a 5% threshold,
// while CPU time bills only the work the run actually did.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Utime.Nano()+ru.Stime.Nano()) / 1e9
}
