// Command lynxd is the resident simulation service: a daemon that
// accepts experiment, grid, and load jobs over an HTTP/JSON API,
// executes them through the same deterministic lynx/grid + lynx/sweep
// machinery the CLIs use, memoizes completed grid cells so repeated and
// overlapping sweeps are incremental, and streams progress and results
// as JSONL.
//
// A daemon-run sweep is byte-identical to the equivalent CLI run
// (`lynxload -json`, `lynxbench -json`) at any -workers value, cold or
// cached — the service exists to amortize and multiplex, never to
// change results.
//
//	lynxd                         # listen on 127.0.0.1:8077
//	lynxd -addr 127.0.0.1:0       # ephemeral port (printed on stdout)
//	lynxd -workers 4 -queue 128
//
// See README "Resident service (lynxd)" for the API walkthrough.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/lynx/service"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8077", "listen address (host:port; port 0 picks an ephemeral one)")
		workers = flag.Int("workers", 0, "concurrent jobs (default GOMAXPROCS); never changes results")
		queue   = flag.Int("queue", 64, "queued-job bound before submissions get 429")
		cache   = flag.Int("cache", 4096, "cell result cache entries")
		retry   = flag.Duration("retry-after", time.Second, "Retry-After hint sent with 429")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		cli.Usagef("lynxd", "unexpected arguments %q", flag.Args())
	}
	if *queue <= 0 || *cache <= 0 || *retry <= 0 {
		cli.Usagef("lynxd", "-queue, -cache and -retry-after must be positive")
	}

	ln, err := net.Listen("tcp", *addr)
	cli.Check("lynxd", err)

	svc := service.New(service.Config{
		Workers:    *workers,
		QueueLimit: *queue,
		CacheCells: *cache,
		RetryAfter: *retry,
	})
	srv := &http.Server{Handler: svc.Handler()}

	// The listen line is the machine-readable startup handshake: scripts
	// (make lynxd-smoke) read the actual port from it.
	fmt.Printf("lynxd: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("lynxd: %v, shutting down\n", sig)
	case err := <-errc:
		cli.Failf("lynxd", "serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "lynxd: shutdown: %v\n", err)
	}
	svc.Close()
}
