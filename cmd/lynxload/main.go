// Command lynxload is the traffic-generator frontend of the grid
// runner: it drives thousands of short LYNX Systems (an open-loop or
// max-throughput stream of echo/pipeline/mesh workloads, configurable
// mix) across the configured substrates and reports runs/sec,
// p50/p95/p99 completion time, and per-substrate protocol-event
// counts.
//
// Two dispatch modes:
//
//   - max-throughput (default, -rate 0): a closed loop through
//     lynx/grid — one grid cell per substrate, -runs replicas per cell,
//     each replica one short System whose kind is drawn from -mix by
//     its replica seed. This is the bench mode recorded in
//     BENCH_load.json.
//   - open-loop (-rate R -duration D): arrivals with exponential
//     interarrival gaps at R runs/sec aggregate for D, each run
//     dispatched on its own goroutine the moment it arrives (arrivals
//     never wait for completions); completion time is measured from
//     the scheduled arrival, so queueing delay under overload counts.
//
// Examples:
//
//	lynxload                                  # bench workload + regression gate
//	lynxload -update                          # rewrite BENCH_load.json current numbers
//	lynxload -runs 2000 -substrates chrysalis -mix echo=1
//	lynxload -rate 500 -duration 4s           # open-loop traffic at 500 runs/s
//
// The regression gate (>15% runs/sec, like sweepbench's) engages only
// when the recording machine (NumCPU/GOMAXPROCS) and the workload
// string both match the recorded ones; otherwise it reports and skips.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/lynx"
	"repro/lynx/grid"
	"repro/lynx/sweep"
)

// kinds are the short-System workload shapes, in mix-string order.
var kinds = []string{"echo", "pipeline", "mesh"}

// defaultMix is the standard traffic mix: mostly cheap echoes with a
// tail of heavier pipeline and mesh runs.
const defaultMix = "echo=7,pipeline=2,mesh=1"

// runOne builds and runs one short System of the given kind; the
// returned registry pools the run's protocol events plus a
// "load_runs_<kind>" marker counter.
func runOne(sub lynx.Substrate, kind string, seed uint64) (*obs.Metrics, error) {
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: seed})
	switch kind {
	case "echo":
		buildEcho(sys)
	case "pipeline":
		buildPipeline(sys)
	case "mesh":
		buildMesh(sys)
	default:
		return nil, fmt.Errorf("lynxload: unknown workload kind %q", kind)
	}
	err := sys.Run()
	m := obs.NewMetrics()
	m.Counter("load_runs_" + kind).Inc()
	m.Merge(sys.Metrics())
	return m, err
}

// buildEcho: one client hammering one server with 4 echo RPCs of 64 B.
func buildEcho(sys *lynx.System) {
	data := make([]byte, 64)
	cl := sys.Spawn("client", func(t *lynx.Thread, boot []*lynx.End) {
		for i := 0; i < 4; i++ {
			if _, err := t.Connect(boot[0], "echo", lynx.Msg{Data: data}); err != nil {
				return
			}
		}
		t.Destroy(boot[0])
	})
	sv := sys.Spawn("server", func(t *lynx.Thread, boot []*lynx.End) {
		t.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
			st.Reply(req, lynx.Msg{Data: req.Data()})
		})
	})
	sys.Join(cl, sv)
}

// buildPipeline: source → relay → sink; each of 3 ops traverses both
// hops (the relay's handler makes a nested remote call).
func buildPipeline(sys *lynx.System) {
	data := make([]byte, 128)
	src := sys.Spawn("source", func(t *lynx.Thread, boot []*lynx.End) {
		for i := 0; i < 3; i++ {
			if _, err := t.Connect(boot[0], "fwd", lynx.Msg{Data: data}); err != nil {
				return
			}
		}
		t.Destroy(boot[0])
	})
	relay := sys.Spawn("relay", func(t *lynx.Thread, boot []*lynx.End) {
		up, down := boot[0], boot[1]
		t.Serve(up, func(st *lynx.Thread, req *lynx.Request) {
			reply, err := st.Connect(down, "fwd", lynx.Msg{Data: req.Data()})
			if err != nil {
				st.Reply(req, lynx.Msg{})
				return
			}
			st.Reply(req, lynx.Msg{Data: reply.Data})
		})
	})
	sink := sys.Spawn("sink", func(t *lynx.Thread, boot []*lynx.End) {
		t.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
			st.Reply(req, lynx.Msg{Data: req.Data()})
		})
	})
	sys.Join(src, relay)
	sys.Join(relay, sink)
}

// buildMesh: 4 peers on a ring, each serving its ends and echoing 2
// ops to its clockwise neighbor.
func buildMesh(sys *lynx.System) {
	const peers = 4
	data := make([]byte, 32)
	refs := make([]*lynx.ProcRef, peers)
	for i := 0; i < peers; i++ {
		refs[i] = sys.Spawn(fmt.Sprint("peer", i), func(t *lynx.Thread, boot []*lynx.End) {
			for _, e := range boot {
				t.Serve(e, func(st *lynx.Thread, req *lynx.Request) {
					st.Reply(req, lynx.Msg{Data: req.Data()})
				})
			}
			for op := 0; op < 2; op++ {
				e := boot[op%len(boot)]
				if e.Dead() {
					continue
				}
				if _, err := t.Connect(e, "echo", lynx.Msg{Data: data}); err != nil {
					return
				}
			}
			t.Sleep(10 * lynx.Millisecond)
			for _, e := range boot {
				if !e.Dead() {
					t.Destroy(e)
				}
			}
		})
	}
	for i := 0; i < peers; i++ {
		sys.Join(refs[i], refs[(i+1)%peers])
	}
}

// mixTable is a parsed traffic mix: kinds with cumulative weights for
// seeded weighted picks.
type mixTable struct {
	names   []string
	weights []int
	total   int
}

func parseMix(s string) (*mixTable, error) {
	m := &mixTable{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix entry %q (want kind=weight)", part)
		}
		known := false
		for _, k := range kinds {
			if kv[0] == k {
				known = true
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown workload kind %q (have %s)", kv[0], strings.Join(kinds, "/"))
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", kv[1])
		}
		if w == 0 {
			continue
		}
		m.names = append(m.names, kv[0])
		m.weights = append(m.weights, w)
		m.total += w
	}
	if m.total == 0 {
		return nil, fmt.Errorf("mix %q has no positive weights", s)
	}
	return m, nil
}

// pick draws a kind from the mix using the run's seed stream, so the
// kind of run k is a pure function of the root seed.
func (m *mixTable) pick(r *sim.Rand) string {
	n := r.Intn(m.total)
	for i, w := range m.weights {
		if n < w {
			return m.names[i]
		}
		n -= w
	}
	return m.names[len(m.names)-1]
}

func parseSubstrates(s string) ([]lynx.Substrate, error) {
	table := map[string]lynx.Substrate{
		"charlotte": lynx.Charlotte,
		"soda":      lynx.SODA,
		"chrysalis": lynx.Chrysalis,
		"ideal":     lynx.Ideal,
	}
	var out []lynx.Substrate
	for _, name := range strings.Split(s, ",") {
		sub, ok := table[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown substrate %q", name)
		}
		out = append(out, sub)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no substrates")
	}
	return out, nil
}

// measurement is one BENCH_load.json recording.
type measurement struct {
	Workload   string                      `json:"workload"`
	Runs       int                         `json:"runs"`
	RunsPerSec float64                     `json:"runs_per_sec"`
	CompleteUS map[string]float64          `json:"complete_us"`
	MixRuns    map[string]int64            `json:"mix_runs"`
	Events     map[string]map[string]int64 `json:"substrate_events"`
	NumCPU     int                         `json:"num_cpu"`
	GOMAXPROCS int                         `json:"gomaxprocs"`
}

// benchFile is the BENCH_load.json schema (baseline/current, like
// BENCH_sweep.json).
type benchFile struct {
	Note     string       `json:"note"`
	Baseline *measurement `json:"baseline,omitempty"`
	Current  *measurement `json:"current,omitempty"`
}

// loadConfig is the resolved workload configuration.
type loadConfig struct {
	subs     []lynx.Substrate
	mix      *mixTable
	runs     int // per substrate (max-throughput mode)
	parallel int
	seed     uint64
	rate     float64 // >0 switches to open-loop arrivals
	duration time.Duration
}

// workloadKey canonicalizes the workload so the gate never compares
// measurements of different traffic.
func (c loadConfig) workloadKey() string {
	names := make([]string, len(c.subs))
	for i, s := range c.subs {
		names[i] = s.String()
	}
	mix := make([]string, len(c.mix.names))
	for i, n := range c.mix.names {
		mix[i] = fmt.Sprintf("%s=%d", n, c.mix.weights[i])
	}
	key := fmt.Sprintf("subs=%s mix=%s seed=%d",
		strings.Join(names, ","), strings.Join(mix, ","), c.seed)
	if c.rate > 0 {
		return key + fmt.Sprintf(" rate=%g duration=%s", c.rate, c.duration)
	}
	return key + fmt.Sprintf(" runs=%d", c.runs)
}

// runMax drives the closed-loop max-throughput workload through the
// grid runner: one cell per substrate, c.runs replicas each.
func runMax(c loadConfig) *measurement {
	subVals := make([]any, len(c.subs))
	for i, s := range c.subs {
		subVals[i] = s
	}
	start := time.Now()
	tbl := grid.Run(grid.Spec{
		Name:     "lynxload",
		Axes:     []grid.Axis{{Name: "substrate", Values: subVals}},
		Replicas: c.runs,
		Parallel: c.parallel,
		RootSeed: c.seed,
		Body: func(cell grid.Cell, r sweep.Run) sweep.Outcome {
			rnd := sim.NewRand(r.Seed)
			kind := c.mix.pick(rnd)
			t0 := time.Now()
			m, err := runOne(cell.Value("substrate").(lynx.Substrate), kind, rnd.Uint64())
			return sweep.Outcome{
				Values:  map[string]float64{"complete_us": float64(time.Since(t0).Microseconds())},
				Metrics: m,
				Err:     err,
			}
		},
	})
	elapsed := time.Since(start)
	if n := tbl.Errs(); n > 0 {
		for _, cr := range tbl.Cells {
			if len(cr.Agg.Errs) > 0 {
				fmt.Fprintf(os.Stderr, "lynxload: %s: %v\n", cr.Cell.Key(), cr.Agg.Errs[0])
			}
		}
		os.Exit(1)
	}
	var lats []float64
	events := map[string]map[string]int64{}
	mixRuns := map[string]int64{}
	for _, cr := range tbl.Cells {
		for _, out := range cr.Agg.Outcomes {
			lats = append(lats, out.Values["complete_us"])
		}
		events[cr.Cell.Str("substrate")] = substrateEvents(cr.Agg.Merged)
		for _, k := range kinds {
			mixRuns[k] += cr.Agg.Merged.Value("load_runs_" + k)
		}
	}
	total := c.runs * len(c.subs)
	return finishMeasurement(c, total, elapsed, lats, mixRuns, events)
}

// runOpen drives the open-loop workload: arrivals at c.rate runs/sec
// aggregate with exponential gaps for c.duration, each dispatched on
// its own goroutine at its scheduled instant.
func runOpen(c loadConfig) *measurement {
	type arrival struct {
		at   time.Duration
		sub  lynx.Substrate
		kind string
		seed uint64
	}
	rnd := sim.NewRand(c.seed)
	var arrivals []arrival
	var at time.Duration
	for at < c.duration {
		arrivals = append(arrivals, arrival{
			at:   at,
			sub:  c.subs[rnd.Intn(len(c.subs))],
			kind: c.mix.pick(rnd),
			seed: rnd.Uint64(),
		})
		// Exponential interarrival gap at the aggregate rate. The -ln(u)
		// transform of a uniform draw keeps the schedule a pure function
		// of the seed.
		gap := time.Duration(float64(time.Second) / c.rate * expDraw(rnd))
		at += gap
	}
	var (
		mu      sync.Mutex
		lats    []float64
		mixRuns = map[string]int64{}
		merged  = map[string]*obs.Metrics{}
		wg      sync.WaitGroup
	)
	for _, s := range c.subs {
		merged[s.String()] = obs.NewMetrics()
	}
	start := time.Now()
	for _, a := range arrivals {
		wg.Add(1)
		go func(a arrival) {
			defer wg.Done()
			if d := a.at - time.Since(start); d > 0 {
				time.Sleep(d)
			}
			m, err := runOne(a.sub, a.kind, a.seed)
			lat := float64((time.Since(start) - a.at).Microseconds())
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				fmt.Fprintf(os.Stderr, "lynxload: %v run failed: %v\n", a.sub, err)
				return
			}
			lats = append(lats, lat)
			mixRuns[a.kind]++
			merged[a.sub.String()].Merge(m)
		}(a)
	}
	wg.Wait()
	elapsed := time.Since(start)
	events := map[string]map[string]int64{}
	for name, m := range merged {
		events[name] = substrateEvents(m)
	}
	return finishMeasurement(c, len(arrivals), elapsed, lats, mixRuns, events)
}

// expDraw is a unit-mean exponential draw from the deterministic rand.
func expDraw(r *sim.Rand) float64 {
	u := r.Float64()
	if u <= 0 {
		u = 1e-12
	}
	return -math.Log(u)
}

// substrateEvents extracts the headline protocol-event counters from a
// pooled registry: bytes moved plus each substrate's message-level
// primitive (Charlotte messages, SODA requests/accepts, Chrysalis
// queue enqueues).
func substrateEvents(m *obs.Metrics) map[string]int64 {
	out := map[string]int64{}
	for _, name := range []string{
		obs.MKernelMessages, obs.MKernelBytes,
		obs.MKernelRequests, obs.MKernelAccepts,
		obs.MQueueEnqueues, obs.MEventPosts,
	} {
		if v := m.Value(name); v != 0 {
			out[name] = v
		}
	}
	return out
}

// finishMeasurement folds latencies and counts into the recorded form.
func finishMeasurement(c loadConfig, runs int, elapsed time.Duration, lats []float64,
	mixRuns map[string]int64, events map[string]map[string]int64) *measurement {
	st := sweep.Summarize(lats)
	for k, v := range mixRuns {
		if v == 0 {
			delete(mixRuns, k)
		}
	}
	return &measurement{
		Workload:   c.workloadKey(),
		Runs:       runs,
		RunsPerSec: float64(runs) / elapsed.Seconds(),
		CompleteUS: map[string]float64{
			"mean": st.Mean, "p50": st.P50, "p95": st.P95, "p99": st.P99,
		},
		MixRuns:    mixRuns,
		Events:     events,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// report prints the human-readable load report.
func report(m *measurement) {
	fmt.Printf("lynxload: %s\n", m.Workload)
	fmt.Printf("  %d runs, %.0f runs/s (NumCPU=%d GOMAXPROCS=%d)\n",
		m.Runs, m.RunsPerSec, m.NumCPU, m.GOMAXPROCS)
	fmt.Printf("  completion: mean %.0fµs p50 %.0fµs p95 %.0fµs p99 %.0fµs\n",
		m.CompleteUS["mean"], m.CompleteUS["p50"], m.CompleteUS["p95"], m.CompleteUS["p99"])
	var ks []string
	for k := range m.MixRuns {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		fmt.Printf("  mix %-10s %d runs\n", k, m.MixRuns[k])
	}
	var subs []string
	for s := range m.Events {
		subs = append(subs, s)
	}
	sort.Strings(subs)
	for _, s := range subs {
		var parts []string
		var names []string
		for n := range m.Events[s] {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			parts = append(parts, fmt.Sprintf("%s=%d", n, m.Events[s][n]))
		}
		fmt.Printf("  events %-10s %s\n", s, strings.Join(parts, " "))
	}
}

func load(path string) (*benchFile, error) {
	f := &benchFile{}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func save(path string, f *benchFile) error {
	f.Note = "Load-generator benchmark: short lynx Systems/sec through the lynx/grid runner " +
		"(mixed echo/pipeline/mesh traffic per substrate; see cmd/lynxload). " +
		"make check fails on a >15% runs/sec regression vs current when run on the recording " +
		"machine with the recorded workload (same NumCPU/GOMAXPROCS/workload string); " +
		"refresh deliberately with `make bench-update`. num_cpu/gomaxprocs make the " +
		"hardware-gated skips auditable from the artifact alone."
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// gateFails applies the machine- and workload-matched regression gate.
func gateFails(rec, m *measurement) bool {
	if rec == nil {
		fmt.Println("lynxload: no recorded current numbers; record with `make bench-update`")
		return false
	}
	if rec.NumCPU != m.NumCPU || rec.GOMAXPROCS != m.GOMAXPROCS {
		fmt.Printf("lynxload: recorded on NumCPU=%d/GOMAXPROCS=%d, running on %d/%d; gate skipped\n",
			rec.NumCPU, rec.GOMAXPROCS, m.NumCPU, m.GOMAXPROCS)
		return false
	}
	if rec.Workload != m.Workload {
		fmt.Printf("lynxload: recorded workload %q differs from %q; gate skipped\n",
			rec.Workload, m.Workload)
		return false
	}
	if m.RunsPerSec < rec.RunsPerSec*0.85 {
		fmt.Fprintf(os.Stderr,
			"lynxload: runs/sec regressed: %.0f recorded, %.0f measured (>15%%); refresh deliberately with `make bench-update`\n",
			rec.RunsPerSec, m.RunsPerSec)
		return true
	}
	return false
}

func main() {
	var (
		path       = flag.String("file", "BENCH_load.json", "trajectory file")
		update     = flag.Bool("update", false, "rewrite the current numbers")
		asBaseline = flag.Bool("as-baseline", false, "rewrite the baseline numbers")
		substrates = flag.String("substrates", "charlotte,soda,chrysalis", "comma-separated substrate list")
		mixFlag    = flag.String("mix", defaultMix, "traffic mix, kind=weight pairs")
		runs       = flag.Int("runs", 600, "max-throughput mode: runs per substrate")
		parallel   = flag.Int("parallel", 0, "max-throughput mode: worker goroutines (default GOMAXPROCS)")
		seed       = flag.Uint64("seed", 1, "root seed (workload shape and System seeds)")
		rate       = flag.Float64("rate", 0, "open-loop mode: aggregate arrivals/sec (0 = max throughput)")
		duration   = flag.Duration("duration", 2*time.Second, "open-loop mode: generation window")
	)
	flag.Parse()

	subs, err := parseSubstrates(*substrates)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lynxload:", err)
		os.Exit(2)
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lynxload:", err)
		os.Exit(2)
	}
	c := loadConfig{subs: subs, mix: mix, runs: *runs, parallel: *parallel,
		seed: *seed, rate: *rate, duration: *duration}

	var m *measurement
	if c.rate > 0 {
		m = runOpen(c)
	} else {
		// Best of 3: the throughput number feeds a regression gate, so
		// shave scheduler noise the same way sweepbench does.
		for i := 0; i < 3; i++ {
			if r := runMax(c); m == nil || r.RunsPerSec > m.RunsPerSec {
				m = r
			}
		}
	}
	report(m)

	f, err := load(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lynxload:", err)
		os.Exit(1)
	}
	switch {
	case *asBaseline:
		f.Baseline = m
	case *update:
		f.Current = m
	default:
		if gateFails(f.Current, m) {
			os.Exit(1)
		}
		return
	}
	if err := save(*path, f); err != nil {
		fmt.Fprintln(os.Stderr, "lynxload:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *path)
}
