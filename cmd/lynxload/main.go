// Command lynxload is the thin CLI over the lynx/load engine and the
// lynx/grid runner. It measures the three kernel bindings under load in
// two complementary ways:
//
//   - virtual-time overload sweep (default, and -rates R1,R2,...): the
//     open-loop load.Run engine injects Poisson arrivals of
//     echo/pipeline/mesh work units INSIDE one simulated System per
//     (substrate, rate) cell, sweeping offered rates that cross
//     saturation. Offered rate vs realized throughput and p50/p95/p99
//     virtual-time sojourn land in a pivoted matrix and in
//     BENCH_load.json's overload table. Every number is a pure function
//     of the seed: the recorded table is byte-identical on any machine
//     at any -parallel, and `make bench` fails on any drift.
//   - max-throughput (wall clock): a closed loop through lynx/grid —
//     one cell per substrate, -runs replicas, each one short System
//     from load.RunOnce. This measures the host's Systems/sec and gates
//     (>15%) only on the recording machine.
//
// The sweep itself lives in lynx/load (SweepSpec/Rows/Key), shared with
// the lynxd daemon, so a daemon job and a CLI run of the same options
// produce byte-identical tables. -json prints exactly that table (the
// grid's JSONL rendering) to stdout and nothing else.
//
// Examples:
//
//	lynxload                        # bench: wall gate + overload-table gate
//	lynxload -update                # rewrite BENCH_load.json current numbers
//	lynxload -rate 300 -window 2s   # one open-loop virtual-time run
//	lynxload -rates 10,100,1000 -substrates soda
//	lynxload -rates 30,60 -substrates charlotte -json   # machine-readable table
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/lynx"
	"repro/lynx/fault"
	"repro/lynx/grid"
	"repro/lynx/load"
	"repro/lynx/sweep"
)

// defaultRates sweeps from inside every substrate's capacity to well
// past SODA's and Charlotte's saturation points.
const defaultRates = "5,20,80,320"

// parseRates parses the -rates list; every entry must be a positive
// number of arrivals per virtual second.
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q", part)
		}
		if r <= 0 {
			return nil, fmt.Errorf("rate must be positive, got %g", r)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rates")
	}
	return out, nil
}

// parseFaults parses the -faults list: "/"-separated fault scenarios,
// each a registered name (drop10, part-heal, ...) or an inline plan
// string; "default" expands to every registered scenario.
func parseFaults(s string) ([]*fault.Plan, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []*fault.Plan
	for _, part := range strings.Split(s, "/") {
		part = strings.TrimSpace(part)
		if part == "default" {
			out = append(out, defaultScenarios()...)
			continue
		}
		p, err := fault.ParseScenario(part)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// defaultScenarios resolves the registered scenario set, in registry
// order.
func defaultScenarios() []*fault.Plan {
	names := fault.ScenarioNames()
	plans := make([]*fault.Plan, len(names))
	for i, name := range names {
		p, err := fault.ParseScenario(name)
		if err != nil {
			panic(err) // registered scenarios always parse
		}
		plans[i] = p
	}
	return plans
}

// loadConfig is the resolved workload configuration.
type loadConfig struct {
	subs       []lynx.Substrate
	mix        *load.Mix
	runs       int // closed-loop replicas per substrate
	parallel   int
	simWorkers int // in-System parallel worker cap; never changes results
	gens       int // load-generator processes per run; >1 changes the workload
	seed       uint64
	rates      []float64
	window     lynx.Duration
	faults     []*fault.Plan
}

// sweepOptions maps the config onto the shared overload-sweep engine.
func (c loadConfig) sweepOptions() load.SweepOptions {
	return load.SweepOptions{
		Substrates: c.subs,
		Rates:      c.rates,
		Window:     c.window,
		Mix:        c.mix,
		Seed:       c.seed,
		Parallel:   c.parallel,
		SimWorkers: c.simWorkers,
		Gens:       c.gens,
		Faults:     c.faults,
	}
}

// faultsOptions is the pinned overload-under-faults sweep bench mode
// records and gates: every registered scenario crossed with the
// configured substrates at one fixed rate inside a short window, so the
// scenario axis is the only varying stress.
func (c loadConfig) faultsOptions() load.SweepOptions {
	return load.SweepOptions{
		Substrates: c.subs,
		Rates:      []float64{40},
		Window:     250 * lynx.Millisecond,
		Mix:        c.mix,
		Seed:       c.seed,
		Parallel:   c.parallel,
		SimWorkers: c.simWorkers,
		Gens:       c.gens,
		Faults:     defaultScenarios(),
	}
}

// wallKey canonicalizes the closed-loop workload for the wall gate.
func (c loadConfig) wallKey() string {
	return fmt.Sprintf("subs=%s mix=%s seed=%d runs=%d",
		subNames(c.subs), c.mix, c.seed, c.runs)
}

func subNames(subs []lynx.Substrate) string {
	names := make([]string, len(subs))
	for i, s := range subs {
		names[i] = s.String()
	}
	return strings.Join(names, ",")
}

// runOverload executes the shared sweep and flattens the grid into
// table rows in enumeration order.
func runOverload(o load.SweepOptions) ([]load.Row, *grid.Table, error) {
	spec, err := load.SweepSpec(o)
	if err != nil {
		return nil, nil, err
	}
	tbl := grid.Run(spec)
	rows, err := load.Rows(tbl)
	if err != nil {
		return nil, tbl, err
	}
	if err := load.CheckShape(rows); err != nil {
		return nil, tbl, err
	}
	return rows, tbl, nil
}

// runSingle is the -rate mode: one open-loop virtual run, full detail.
func runSingle(c loadConfig, rate float64) (*load.Result, error) {
	return load.Run(load.Options{
		Substrate:  c.subs[0],
		Rate:       rate,
		Window:     c.window,
		Mix:        c.mix,
		Seed:       c.seed,
		SimWorkers: c.simWorkers,
		Gens:       c.gens,
	})
}

// measurement is one BENCH_load.json recording: the wall-clock
// closed-loop numbers (machine-matched gate) plus the virtual-time
// overload table (machine-independent byte-equality gate).
type measurement struct {
	Workload    string                      `json:"workload"`
	Runs        int                         `json:"runs"`
	RunsPerSec  float64                     `json:"runs_per_sec"`
	CompleteUS  map[string]float64          `json:"complete_us"`
	MixRuns     map[string]int64            `json:"mix_runs"`
	Events      map[string]map[string]int64 `json:"substrate_events"`
	NumCPU      int                         `json:"num_cpu"`
	GOMAXPROCS  int                         `json:"gomaxprocs"`
	OverloadKey string                      `json:"overload_key,omitempty"`
	Overload    []load.Row                  `json:"overload,omitempty"`
	FaultsKey   string                      `json:"faults_key,omitempty"`
	Faults      []load.Row                  `json:"faults,omitempty"`
}

// benchFile is the BENCH_load.json schema (baseline/current, like
// BENCH_sweep.json).
type benchFile struct {
	Note     string       `json:"note"`
	Baseline *measurement `json:"baseline,omitempty"`
	Current  *measurement `json:"current,omitempty"`
}

// runMax drives the closed-loop max-throughput workload through the
// grid runner: one cell per substrate, c.runs replicas each, every
// replica one load.RunOnce System with a mix-drawn kind.
func runMax(c loadConfig) *measurement {
	start := time.Now()
	tbl := grid.Run(grid.Spec{
		Name:     "lynxload",
		Axes:     []grid.Axis{grid.AxisOf("substrate", c.subs...)},
		Replicas: c.runs,
		Parallel: c.parallel,
		RootSeed: c.seed,
		Body: func(cell grid.Cell, r sweep.Run) sweep.Outcome {
			rnd := sim.NewRand(r.Seed)
			kind := c.mix.Pick(rnd)
			t0 := time.Now()
			m, err := load.RunOnce(grid.MustAs[lynx.Substrate](cell, "substrate"), kind, rnd.Uint64())
			return sweep.Outcome{
				Values:  map[string]float64{"complete_us": float64(time.Since(t0).Microseconds())},
				Metrics: m,
				Err:     err,
			}
		},
	})
	elapsed := time.Since(start)
	if n := tbl.Errs(); n > 0 {
		for _, cr := range tbl.Cells {
			if len(cr.Agg.Errs) > 0 {
				fmt.Fprintf(os.Stderr, "lynxload: %s: %v\n", cr.Cell.Key(), cr.Agg.Errs[0])
			}
		}
		os.Exit(1)
	}
	var lats []float64
	events := map[string]map[string]int64{}
	mixRuns := map[string]int64{}
	for _, cr := range tbl.Cells {
		for _, out := range cr.Agg.Outcomes {
			lats = append(lats, out.Values["complete_us"])
		}
		events[cr.Cell.Str("substrate")] = substrateEvents(cr.Agg.Merged)
		for _, k := range load.Kinds {
			mixRuns[k] += cr.Agg.Merged.Value("load_runs_" + k)
		}
	}
	for k, v := range mixRuns {
		if v == 0 {
			delete(mixRuns, k)
		}
	}
	st := sweep.Summarize(lats)
	total := c.runs * len(c.subs)
	return &measurement{
		Workload:   c.wallKey(),
		Runs:       total,
		RunsPerSec: float64(total) / elapsed.Seconds(),
		CompleteUS: map[string]float64{
			"mean": st.Mean, "p50": st.P50, "p95": st.P95, "p99": st.P99,
		},
		MixRuns:    mixRuns,
		Events:     events,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// substrateEvents extracts the headline protocol-event counters from a
// pooled registry: bytes moved plus each substrate's message-level
// primitive (Charlotte messages, SODA requests/accepts, Chrysalis
// queue enqueues).
func substrateEvents(m *obs.Metrics) map[string]int64 {
	out := map[string]int64{}
	for _, name := range []string{
		obs.MKernelMessages, obs.MKernelBytes,
		obs.MKernelRequests, obs.MKernelAccepts,
		obs.MQueueEnqueues, obs.MEventPosts,
	} {
		if v := m.Value(name); v != 0 {
			out[name] = v
		}
	}
	return out
}

// report prints the human-readable load report.
func report(m *measurement, tbl *grid.Table) {
	fmt.Printf("lynxload: %s\n", m.Workload)
	fmt.Printf("  %d runs, %.0f runs/s (NumCPU=%d GOMAXPROCS=%d)\n",
		m.Runs, m.RunsPerSec, m.NumCPU, m.GOMAXPROCS)
	fmt.Printf("  completion: mean %.0fµs p50 %.0fµs p95 %.0fµs p99 %.0fµs\n",
		m.CompleteUS["mean"], m.CompleteUS["p50"], m.CompleteUS["p95"], m.CompleteUS["p99"])
	var ks []string
	for k := range m.MixRuns {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		fmt.Printf("  mix %-10s %d runs\n", k, m.MixRuns[k])
	}
	var subs []string
	for s := range m.Events {
		subs = append(subs, s)
	}
	sort.Strings(subs)
	for _, s := range subs {
		var parts []string
		var names []string
		for n := range m.Events[s] {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			parts = append(parts, fmt.Sprintf("%s=%d", n, m.Events[s][n]))
		}
		fmt.Printf("  events %-10s %s\n", s, strings.Join(parts, " "))
	}
	if tbl != nil {
		fmt.Printf("overload sweep: %s\n", m.OverloadKey)
		fmt.Print(tbl.RenderMatrix("substrate", "rate",
			"realized", "sojourn_p50_ms", "sojourn_p95_ms", "sojourn_p99_ms"))
	}
}

// reportFaults prints the overload-under-faults table: one line per
// (substrate, scenario), completion against arrivals plus realized
// throughput and tail sojourn.
func reportFaults(m *measurement) {
	if len(m.Faults) == 0 {
		return
	}
	fmt.Printf("faults sweep: %s\n", m.FaultsKey)
	for _, r := range m.Faults {
		fmt.Printf("  %-10s %-36s completed %3d/%-3d realized %7.2f/s p95 %8.3fms\n",
			r.Substrate, r.Scenario, r.Completed, r.Arrivals, r.Realized, r.P95MS)
	}
}

// reportSingle prints one -rate run in full.
func reportSingle(sub lynx.Substrate, res *load.Result) {
	fmt.Printf("lynxload: %v open-loop rate %g/s window %s\n",
		sub, res.Offered, time.Duration(res.Window))
	fmt.Printf("  arrivals %d completed %d makespan %s realized %.2f/s\n",
		res.Arrivals, res.Completed, time.Duration(res.Makespan), res.Realized)
	fmt.Printf("  sojourn ms: p50 %.3f p95 %.3f p99 %.3f max %.3f\n",
		res.Sojourn.P50, res.Sojourn.P95, res.Sojourn.P99, res.Sojourn.Max)
	kinds := make([]string, 0, len(res.ByKind))
	for k := range res.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		s := res.ByKind[k]
		fmt.Printf("  %-10s n=%-5d sojourn ms: p50 %.3f p95 %.3f p99 %.3f\n",
			k, s.N, s.P50, s.P95, s.P99)
	}
}

func loadFile(path string) (*benchFile, error) {
	f := &benchFile{}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		// An empty file (e.g. freshly touched, or /dev/null) means the
		// same thing as a missing one: nothing recorded yet.
		return f, nil
	}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func save(path string, f *benchFile) error {
	f.Note = "Load benchmark (cmd/lynxload). runs_per_sec: short lynx Systems/sec through the " +
		"lynx/grid runner (mixed echo/pipeline/mesh traffic per substrate); make check fails on " +
		"a >15% regression vs current only on the recording machine (same NumCPU/GOMAXPROCS/" +
		"workload string). overload: the virtual-time open-loop sweep (lynx/load) — offered rate " +
		"vs realized throughput and p50/p95/p99 virtual sojourn; every number is a pure function " +
		"of the seed, so the gate demands byte-identical tables on ANY machine at any -parallel. " +
		"Refresh deliberately with `make bench-update`."
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// wallGateFails applies the machine- and workload-matched wall-clock
// regression gate.
func wallGateFails(rec, m *measurement) bool {
	if rec == nil {
		fmt.Println("lynxload: no recorded current numbers; record with `make bench-update`")
		return false
	}
	if rec.NumCPU != m.NumCPU || rec.GOMAXPROCS != m.GOMAXPROCS {
		fmt.Printf("lynxload: recorded on NumCPU=%d/GOMAXPROCS=%d, running on %d/%d; wall gate skipped\n",
			rec.NumCPU, rec.GOMAXPROCS, m.NumCPU, m.GOMAXPROCS)
		return false
	}
	if rec.Workload != m.Workload {
		fmt.Printf("lynxload: recorded workload %q differs from %q; wall gate skipped\n",
			rec.Workload, m.Workload)
		return false
	}
	if m.RunsPerSec < rec.RunsPerSec*0.85 {
		fmt.Fprintf(os.Stderr,
			"lynxload: runs/sec regressed: %.0f recorded, %.0f measured (>15%%); refresh deliberately with `make bench-update`\n",
			rec.RunsPerSec, m.RunsPerSec)
		return true
	}
	return false
}

// overloadGateFails applies the machine-independent table gate: the
// recomputed overload table must be byte-identical to the recorded one.
func overloadGateFails(rec, m *measurement) bool {
	if rec == nil || len(rec.Overload) == 0 {
		fmt.Println("lynxload: no recorded overload table; record with `make bench-update`")
		return false
	}
	if rec.OverloadKey != m.OverloadKey {
		fmt.Printf("lynxload: recorded overload sweep %q differs from %q; table gate skipped\n",
			rec.OverloadKey, m.OverloadKey)
		return false
	}
	recJSON, _ := json.Marshal(rec.Overload)
	gotJSON, _ := json.Marshal(m.Overload)
	if string(recJSON) != string(gotJSON) {
		fmt.Fprintf(os.Stderr,
			"lynxload: overload table drifted from BENCH_load.json (virtual-time results are seed-pure; "+
				"this is a behavior change, not noise).\nrecorded: %s\nmeasured: %s\n"+
				"Refresh deliberately with `make bench-update`.\n", recJSON, gotJSON)
		return true
	}
	fmt.Println("lynxload: overload table matches recorded (byte-identical)")
	return false
}

// faultsGateFails applies the same byte-equality gate to the
// overload-under-faults table: faulted runs are still pure functions of
// (spec, seed), so any drift is a behavior change.
func faultsGateFails(rec, m *measurement) bool {
	if rec == nil || len(rec.Faults) == 0 {
		fmt.Println("lynxload: no recorded faults table; record with `make bench-update`")
		return false
	}
	if rec.FaultsKey != m.FaultsKey {
		fmt.Printf("lynxload: recorded faults sweep %q differs from %q; table gate skipped\n",
			rec.FaultsKey, m.FaultsKey)
		return false
	}
	recJSON, _ := json.Marshal(rec.Faults)
	gotJSON, _ := json.Marshal(m.Faults)
	if string(recJSON) != string(gotJSON) {
		fmt.Fprintf(os.Stderr,
			"lynxload: faults table drifted from BENCH_load.json (faulted runs are seed-pure; "+
				"this is a behavior change, not noise).\nrecorded: %s\nmeasured: %s\n"+
				"Refresh deliberately with `make bench-update`.\n", recJSON, gotJSON)
		return true
	}
	fmt.Println("lynxload: faults table matches recorded (byte-identical)")
	return false
}

func main() {
	var (
		path       = flag.String("file", "BENCH_load.json", "trajectory file")
		update     = flag.Bool("update", false, "rewrite the current numbers")
		asBaseline = flag.Bool("as-baseline", false, "rewrite the baseline numbers")
		force      = flag.Bool("force", false, "allow -update/-as-baseline to overwrite numbers recorded on a bigger machine")
		substrates = flag.String("substrates", "charlotte,soda,chrysalis", "comma-separated substrate list")
		mixFlag    = flag.String("mix", load.DefaultMix, "traffic mix, kind=weight pairs")
		runs       = flag.Int("runs", 600, "max-throughput mode: runs per substrate")
		parallel   = flag.Int("parallel", 0, "worker goroutines (default GOMAXPROCS); never changes results")
		simWorkers = flag.Int("simworkers", 1, "in-System parallel worker cap (lynx.Config.SimWorkers); never changes results")
		gens       = flag.Int("gens", 1, "load-generator processes per run; >=2 partitions the run (workload parameter: changes arrival schedules)")
		seed       = flag.Uint64("seed", 1, "root seed (workload shape and System seeds)")
		rate       = flag.Float64("rate", 0, "single open-loop virtual-time run at this rate (first -substrates entry)")
		rates      = flag.String("rates", defaultRates, "overload sweep: offered rates, arrivals per virtual second")
		window     = flag.Duration("window", time.Second, "open-loop arrival window (virtual time)")
		faults     = flag.String("faults", "", "fault scenarios crossed with the sweep: '/'-separated names or inline plans; 'default' = all registered")
		jsonOut    = flag.Bool("json", false, "print the overload sweep's grid table as JSONL to stdout and exit")
	)
	flag.Parse()

	subs, err := lynx.ParseSubstrates(*substrates)
	cli.CheckUsage("lynxload", err)
	mix, err := load.ParseMix(*mixFlag)
	cli.CheckUsage("lynxload", err)
	rateList, err := parseRates(*rates)
	if err != nil {
		cli.Usagef("lynxload", "-rates: %v", err)
	}
	if *window <= 0 {
		cli.Usagef("lynxload", "-window must be positive")
	}
	faultList, err := parseFaults(*faults)
	if err != nil {
		cli.Usagef("lynxload", "-faults: %v", err)
	}
	c := loadConfig{subs: subs, mix: mix, runs: *runs, parallel: *parallel,
		simWorkers: *simWorkers, gens: *gens, seed: *seed, rates: rateList,
		window: lynx.Duration(*window), faults: faultList}

	if *jsonOut {
		// Machine-readable mode: exactly the grid's JSONL table, the
		// byte-level contract shared with a lynxd job of the same spec.
		_, tbl, err := runOverload(c.sweepOptions())
		cli.Check("lynxload", err)
		fmt.Print(tbl.RenderJSONL())
		return
	}

	if *rate != 0 {
		res, err := runSingle(c, *rate)
		cli.Check("lynxload", err)
		reportSingle(c.subs[0], res)
		return
	}

	// Same update guard as schedbench/sweepbench, checked before the
	// (slow) measurement: wall-clock numbers recorded on real hardware
	// must not be silently replaced by a 1-CPU container run.
	if (*update || *asBaseline) && !*force && runtime.NumCPU() == 1 {
		f, err := loadFile(*path)
		cli.Check("lynxload", err)
		prior := f.Current
		if *asBaseline {
			prior = f.Baseline
		}
		if prior != nil && prior.NumCPU > 1 {
			cli.Failf("lynxload",
				"refusing to overwrite %s recorded on %d CPUs with a 1-CPU run (re-record on comparable hardware, or pass -force)",
				*path, prior.NumCPU)
		}
	}

	// Bench mode: wall-clock closed loop (best of 3, like sweepbench)
	// plus the deterministic virtual-time overload sweep.
	var m *measurement
	for i := 0; i < 3; i++ {
		if r := runMax(c); m == nil || r.RunsPerSec > m.RunsPerSec {
			m = r
		}
	}
	overload, tbl, err := runOverload(c.sweepOptions())
	if err != nil {
		cli.Failf("lynxload", "overload sweep: %v", err)
	}
	m.OverloadKey = c.sweepOptions().Key()
	m.Overload = overload
	frows, _, err := runOverload(c.faultsOptions())
	if err != nil {
		cli.Failf("lynxload", "faults sweep: %v", err)
	}
	m.FaultsKey = c.faultsOptions().Key()
	m.Faults = frows
	report(m, tbl)
	reportFaults(m)

	f, err := loadFile(*path)
	cli.Check("lynxload", err)
	switch {
	case *asBaseline:
		f.Baseline = m
	case *update:
		f.Current = m
	default:
		bad := wallGateFails(f.Current, m)
		if overloadGateFails(f.Current, m) {
			bad = true
		}
		if faultsGateFails(f.Current, m) {
			bad = true
		}
		if bad {
			os.Exit(1)
		}
		return
	}
	cli.Check("lynxload", save(*path, f))
	fmt.Println("wrote", *path)
}
