package main

import (
	"encoding/json"
	"testing"
	"time"

	"repro/lynx"
	"repro/lynx/load"
)

func testConfig(t *testing.T) loadConfig {
	t.Helper()
	mix, err := load.ParseMix(load.DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	return loadConfig{
		subs:   []lynx.Substrate{lynx.Charlotte},
		mix:    mix,
		seed:   3,
		rates:  []float64{25, 200},
		window: lynx.Duration(200 * time.Millisecond),
	}
}

func TestParseRates(t *testing.T) {
	got, err := parseRates("5, 20,80.5")
	if err != nil || len(got) != 3 || got[2] != 80.5 {
		t.Fatalf("parseRates = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-5", "5,0", "5,-1", "x", "5,,20"} {
		if _, err := parseRates(bad); err == nil {
			t.Fatalf("parseRates(%q) should fail", bad)
		}
	}
}

func TestParseSubstrates(t *testing.T) {
	subs, err := lynx.ParseSubstrates("soda, charlotte")
	if err != nil || len(subs) != 2 || subs[0] != lynx.SODA {
		t.Fatalf("ParseSubstrates = %v, %v", subs, err)
	}
	for _, bad := range []string{"", "mars", "soda,mars"} {
		if _, err := lynx.ParseSubstrates(bad); err == nil {
			t.Fatalf("ParseSubstrates(%q) should fail", bad)
		}
	}
}

// runSingle is one single-System open-loop run; zero and negative
// rates are rejected by the engine, not silently clamped.
func TestRunSingleEdgeRates(t *testing.T) {
	c := testConfig(t)
	for _, bad := range []float64{0, -10} {
		if _, err := runSingle(c, bad); err == nil {
			t.Fatalf("rate %g should be rejected", bad)
		}
	}
	res, err := runSingle(c, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Arrivals || res.Arrivals == 0 {
		t.Fatalf("arrivals=%d completed=%d", res.Arrivals, res.Completed)
	}
}

// The overload sweep flattens grid cells into rows in enumeration
// order and passes the shape check.
func TestRunOverloadRows(t *testing.T) {
	c := testConfig(t)
	rows, tbl, err := runOverload(c.sweepOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(c.subs)*len(c.rates) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Rate != c.rates[i%len(c.rates)] || r.Substrate != "charlotte" {
			t.Fatalf("row %d out of enumeration order: %+v", i, r)
		}
		if r.Completed != r.Arrivals {
			t.Fatalf("row %d did not drain: %+v", i, r)
		}
	}
	if tbl.RenderMatrix("substrate", "rate", "realized") == "" {
		t.Fatal("matrix render empty")
	}
}

func TestCheckShape(t *testing.T) {
	if err := load.CheckShape([]load.Row{{Arrivals: 5, Completed: 4}}); err == nil {
		t.Fatal("undrained row should fail the shape check")
	}
	if err := load.CheckShape([]load.Row{{Rate: 10, Arrivals: 50, Completed: 50, Realized: 100}}); err == nil {
		t.Fatal("realized far above offered should fail the shape check")
	}
	if err := load.CheckShape([]load.Row{{Rate: 10, Arrivals: 50, Completed: 50, Realized: 9}}); err != nil {
		t.Fatal(err)
	}
}

// The overload gate: skip on sweep mismatch, pass on byte-identical
// tables, fail on any drift.
func TestOverloadGate(t *testing.T) {
	rows := []load.Row{{Substrate: "soda", Rate: 20, Arrivals: 3, Completed: 3, Realized: 2.5}}
	rec := &measurement{OverloadKey: "k", Overload: rows}
	same := &measurement{OverloadKey: "k", Overload: append([]load.Row(nil), rows...)}
	if overloadGateFails(rec, same) {
		t.Fatal("identical tables must pass")
	}
	if overloadGateFails(nil, same) || overloadGateFails(&measurement{}, same) {
		t.Fatal("missing recording must not fail the gate")
	}
	other := &measurement{OverloadKey: "other", Overload: rows}
	if overloadGateFails(rec, other) {
		t.Fatal("different sweep key must skip, not fail")
	}
	drift := &measurement{OverloadKey: "k",
		Overload: []load.Row{{Substrate: "soda", Rate: 20, Arrivals: 3, Completed: 3, Realized: 2.6}}}
	if !overloadGateFails(rec, drift) {
		t.Fatal("drifted table must fail")
	}
}

// The recorded measurement round-trips through the JSON schema.
func TestMeasurementRoundTrip(t *testing.T) {
	c := testConfig(t)
	rows, _, err := runOverload(c.sweepOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := &measurement{Workload: c.wallKey(), OverloadKey: c.sweepOptions().Key(), Overload: rows}
	data, err := json.Marshal(benchFile{Current: m})
	if err != nil {
		t.Fatal(err)
	}
	var back benchFile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if overloadGateFails(back.Current, m) {
		t.Fatal("round-tripped table must still be byte-identical")
	}
}
