GO ?= go

.PHONY: check fmt vet build test race bench bench-update bench-all lynxd-smoke

# check is the CI gate: formatting, vet, build, the full test suite
# under the race detector, and the scheduler allocation-regression gate.
check: fmt vet build race bench

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt: files need formatting:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the scheduler microbenches (-benchmem equivalents), the
# sweep macro benchmark, and the load-generator benchmark; it fails on a
# >10% allocs/op regression against BENCH_sched.json or a >15% runs/sec
# regression against BENCH_sweep.json / BENCH_load.json (the throughput
# gates only when run on the recording machine).
bench:
	$(GO) run ./cmd/schedbench
	$(GO) run ./cmd/sweepbench
	$(GO) run ./cmd/lynxload

# bench-update refreshes the current numbers in BENCH_sched.json,
# BENCH_sweep.json, and BENCH_load.json after a deliberate change (the
# pre-rewrite baselines are preserved).
bench-update:
	$(GO) run ./cmd/schedbench -update
	$(GO) run ./cmd/sweepbench -update
	$(GO) run ./cmd/lynxload -update

# bench-all runs the full experiment + RPC benchmark suite once.
bench-all:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# lynxd-smoke boots the daemon on an ephemeral port, runs a seeded
# one-cell job through lynxctl, and asserts the streamed table is
# byte-identical to the CLI's `lynxload -json` bytes (plus a clean
# SIGTERM shutdown). It also runs a traced job and follows its live
# event stream with `lynxtrace -follow`, asserting well-formed JSONL
# and a non-empty end-of-run ring dump.
lynxd-smoke:
	$(GO) build -o bin/ ./cmd/lynxd ./cmd/lynxctl ./cmd/lynxload ./cmd/lynxtrace
	sh scripts/lynxd_smoke.sh bin
