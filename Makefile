GO ?= go

.PHONY: check fmt vet build test race bench bench-update bench-all

# check is the CI gate: formatting, vet, build, the full test suite
# under the race detector, and the scheduler allocation-regression gate.
check: fmt vet build race bench

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt: files need formatting:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the scheduler microbenches (-benchmem equivalents) and
# fails on a >10% allocs/op regression against BENCH_sched.json.
bench:
	$(GO) run ./cmd/schedbench

# bench-update refreshes BENCH_sched.json's current numbers after a
# deliberate scheduler change (the pre-rewrite baseline is preserved).
bench-update:
	$(GO) run ./cmd/schedbench -update

# bench-all runs the full experiment + RPC benchmark suite once.
bench-all:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
