#!/bin/sh
# lynxd end-to-end smoke: start the daemon on an ephemeral port, submit
# a seeded one-cell load job through lynxctl, and assert the streamed
# result table is byte-identical to the same sweep run via the CLI
# (`lynxload -json`) — the daemon's determinism contract — then check
# the daemon shuts down cleanly on SIGTERM.
#
# Usage: scripts/lynxd_smoke.sh [BIN_DIR]   (default ./bin)
set -eu

BIN=${1:-./bin}
OUT=$(mktemp -d)
DPID=
cleanup() {
	[ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
	rm -rf "$OUT"
}
trap cleanup EXIT

"$BIN/lynxd" -addr 127.0.0.1:0 >"$OUT/lynxd.log" 2>&1 &
DPID=$!

# The daemon's first stdout line announces the actual address.
ADDR=
i=0
while [ $i -lt 100 ]; do
	ADDR=$(sed -n 's/^lynxd: listening on //p' "$OUT/lynxd.log")
	[ -n "$ADDR" ] && break
	kill -0 "$DPID" 2>/dev/null || { echo "lynxd-smoke: daemon died at startup"; cat "$OUT/lynxd.log"; exit 1; }
	sleep 0.1
	i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "lynxd-smoke: daemon never announced its address"; cat "$OUT/lynxd.log"; exit 1; }
export LYNXD_ADDR="$ADDR"

# One seeded single-cell sweep: charlotte at 40/s over a 200ms window
# (the same cell CI's seeded lynxload run exercises).
"$BIN/lynxctl" submit '{"kind":"load","client":"smoke","load":{"substrates":["charlotte"],"rates":[40],"window":"200ms","seed":1}}' >"$OUT/submit.json"
ID=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$OUT/submit.json")
[ -n "$ID" ] || { echo "lynxd-smoke: submit returned no job id"; cat "$OUT/submit.json"; exit 1; }

# `result` blocks on the stream until the job completes, emitting only
# the verbatim table lines.
"$BIN/lynxctl" result "$ID" >"$OUT/daemon.jsonl"
"$BIN/lynxload" -substrates charlotte -rates 40 -window 200ms -seed 1 -json >"$OUT/cli.jsonl"
if ! cmp -s "$OUT/daemon.jsonl" "$OUT/cli.jsonl"; then
	echo "lynxd-smoke: daemon result differs from lynxload -json (determinism contract broken)"
	diff "$OUT/daemon.jsonl" "$OUT/cli.jsonl" | head -10 || true
	exit 1
fi

# Second leg: a faulted load job. The scenario name rides through the
# job spec, becomes a grid axis value on the daemon side, and the
# streamed table must still match the CLI byte for byte.
"$BIN/lynxctl" submit '{"kind":"load","client":"smoke","load":{"substrates":["charlotte"],"rates":[40],"window":"200ms","seed":1,"faults":["drop10"]}}' >"$OUT/submit2.json"
FID=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$OUT/submit2.json")
[ -n "$FID" ] || { echo "lynxd-smoke: faults submit returned no job id"; cat "$OUT/submit2.json"; exit 1; }
"$BIN/lynxctl" result "$FID" >"$OUT/daemon_faults.jsonl"
"$BIN/lynxload" -substrates charlotte -rates 40 -window 200ms -seed 1 -faults drop10 -json >"$OUT/cli_faults.jsonl"
if ! cmp -s "$OUT/daemon_faults.jsonl" "$OUT/cli_faults.jsonl"; then
	echo "lynxd-smoke: daemon faults result differs from lynxload -faults -json"
	diff "$OUT/daemon_faults.jsonl" "$OUT/cli_faults.jsonl" | head -10 || true
	exit 1
fi

# Third leg: the flight recorder. Submit a sampled-mode job at a rate
# no earlier leg used (25/s — a cached cell would run nothing and emit
# no events), follow its live trace with `lynxtrace -follow`, and
# assert the stream is well-formed JSONL carrying both sampled events
# and a non-empty end-of-run ring dump.
"$BIN/lynxctl" submit '{"kind":"load","client":"smoke","load":{"substrates":["charlotte"],"rates":[25],"window":"200ms","seed":1,"trace":"sampled"}}' >"$OUT/submit3.json"
TID=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$OUT/submit3.json")
[ -n "$TID" ] || { echo "lynxd-smoke: traced submit returned no job id"; cat "$OUT/submit3.json"; exit 1; }
"$BIN/lynxtrace" -follow "$TID" -addr "$ADDR" -format jsonl >"$OUT/trace.jsonl"
[ -s "$OUT/trace.jsonl" ] || { echo "lynxd-smoke: traced job streamed no trace lines"; exit 1; }
# Every line must be a JSON object (JSONL), and the stream must carry a
# dump header whose ring is non-empty.
if grep -qv '^{.*}$' "$OUT/trace.jsonl"; then
	echo "lynxd-smoke: trace stream is not well-formed JSONL:"
	grep -v '^{.*}$' "$OUT/trace.jsonl" | head -3
	exit 1
fi
grep -q '"type":"dump"' "$OUT/trace.jsonl" || { echo "lynxd-smoke: trace stream carried no ring dump"; exit 1; }
if grep '"type":"dump"' "$OUT/trace.jsonl" | grep -q '"ring":0'; then
	echo "lynxd-smoke: ring dump is empty"
	grep '"type":"dump"' "$OUT/trace.jsonl"
	exit 1
fi
grep -qv '"type":"dump"' "$OUT/trace.jsonl" || { echo "lynxd-smoke: trace stream carried no sampled events"; exit 1; }

# Clean shutdown: SIGTERM must end the process with exit 0.
kill "$DPID"
st=0
wait "$DPID" || st=$?
DPID=
if [ "$st" -ne 0 ]; then
	echo "lynxd-smoke: daemon exited $st on SIGTERM, want 0"
	cat "$OUT/lynxd.log"
	exit 1
fi
grep -q "shutting down" "$OUT/lynxd.log" || { echo "lynxd-smoke: no shutdown line"; cat "$OUT/lynxd.log"; exit 1; }

echo "lynxd-smoke: ok (daemon table byte-identical to CLI, clean shutdown)"
