package load

import (
	"repro/lynx"
	"repro/lynx/fault"
	"repro/lynx/grid"
	"repro/lynx/sweep"
)

// GridBody is one registered, daemon-runnable grid body: a cell
// function plus the axes it requires. The registry is shared by
// lynx/service (lynxd grid jobs) and cmd/lynxload, so a body behaves
// identically whether a grid is run in-process or submitted to the
// daemon — axis values arrive as strings over the wire, so bodies
// parse axis values from their rendered form rather than type-assert.
type GridBody struct {
	// Axes the body requires present on the grid spec.
	Axes []string
	// Body runs one cell replica.
	Body func(c grid.Cell, r sweep.Run) sweep.Outcome
}

// GridBodies returns the body registry. Registered bodies:
//
//	echo     — one echo round trip (axes: payload, substrate); reports rtt_ms
//	pipeline — one closed-loop 3-stage pipeline unit (axis: substrate)
//	mesh     — one closed-loop 4-peer mesh unit (axis: substrate)
//	faults   — one open-loop load run under a fault scenario
//	           (axes: substrate, scenario); scenario values are
//	           registered names or inline fault-plan strings
func GridBodies() map[string]GridBody { return gridBodyRegistry }

var gridBodyRegistry = map[string]GridBody{
	"echo":     {Axes: []string{"payload", "substrate"}, Body: echoBody},
	"pipeline": {Axes: []string{"substrate"}, Body: unitBody("pipeline")},
	"mesh":     {Axes: []string{"substrate"}, Body: unitBody("mesh")},
	"faults":   {Axes: []string{"substrate", "scenario"}, Body: faultsBody},
}

// echoBody measures one echo round trip: a client/server pair on the
// cell's substrate exchanging the cell's payload in both directions.
func echoBody(c grid.Cell, r sweep.Run) sweep.Outcome {
	sub, err := lynx.ParseSubstrate(c.Str("substrate"))
	if err != nil {
		return sweep.Outcome{Err: err}
	}
	payload := c.Int("payload")
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: r.Seed, Trace: TraceConfig(r.Trace)})
	AttachTrace(sys, r.Trace)
	data := make([]byte, payload)
	var rtt lynx.Duration
	cl := sys.Spawn("client", func(th *lynx.Thread, boot []*lynx.End) {
		start := th.Now()
		if _, err := th.Connect(boot[0], "echo", lynx.Msg{Data: data}); err != nil {
			return
		}
		rtt = lynx.Duration(th.Now() - start)
		th.Destroy(boot[0])
	})
	sv := sys.Spawn("server", func(th *lynx.Thread, boot []*lynx.End) {
		th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
			st.Reply(req, lynx.Msg{Data: req.Data()})
		})
	})
	sys.Join(cl, sv)
	if err := sys.Run(); err != nil {
		return sweep.Outcome{Err: err}
	}
	sys.Flight().Dump("run-complete")
	return sweep.Outcome{
		Values:  map[string]float64{"rtt_ms": float64(rtt) / 1e6},
		Metrics: sys.Metrics(),
	}
}

// unitBody runs one closed-loop work unit (Build form) of the given
// kind on the cell's substrate and reports its makespan.
func unitBody(kind string) func(c grid.Cell, r sweep.Run) sweep.Outcome {
	return func(c grid.Cell, r sweep.Run) sweep.Outcome {
		sub, err := lynx.ParseSubstrate(c.Str("substrate"))
		if err != nil {
			return sweep.Outcome{Err: err}
		}
		sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: r.Seed, Trace: TraceConfig(r.Trace)})
		AttachTrace(sys, r.Trace)
		if err := Build(sys, kind); err != nil {
			return sweep.Outcome{Err: err}
		}
		if err := sys.Run(); err != nil {
			return sweep.Outcome{Err: err}
		}
		sys.Flight().Dump("run-complete")
		return sweep.Outcome{
			Values:  map[string]float64{"makespan_ms": float64(sys.Now()) / 1e6},
			Metrics: sys.Metrics(),
		}
	}
}

// The faults body's fixed cell shape: every cell offers the same
// open-loop load, so the scenario axis is the only varying stress.
const (
	faultsBodyRate   = 40
	faultsBodyWindow = 250 * lynx.Millisecond
)

// faultsBody runs one open-loop load run under the cell's fault
// scenario (a registered name like "drop10" or an inline plan string).
func faultsBody(c grid.Cell, r sweep.Run) sweep.Outcome {
	sub, err := lynx.ParseSubstrate(c.Str("substrate"))
	if err != nil {
		return sweep.Outcome{Err: err}
	}
	plan, err := fault.ParseScenario(c.Str("scenario"))
	if err != nil {
		return sweep.Outcome{Err: err}
	}
	res, err := Run(Options{
		Substrate: sub,
		Rate:      faultsBodyRate,
		Window:    faultsBodyWindow,
		Seed:      r.Seed,
		Faults:    plan,
		Trace:     r.Trace,
	})
	if err != nil {
		return sweep.Outcome{Err: err}
	}
	return sweep.Outcome{
		Values: map[string]float64{
			"arrivals":       float64(res.Arrivals),
			"completed":      float64(res.Completed),
			"makespan_ms":    float64(res.Makespan) / 1e6,
			"realized":       res.Realized,
			"sojourn_p95_ms": res.Sojourn.P95,
		},
		Metrics: res.Metrics,
	}
}
