package load

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Kinds are the short-System workload shapes, in mix-string order.
var Kinds = []string{"echo", "pipeline", "mesh"}

// DefaultMix is the standard traffic mix: mostly cheap echoes with a
// tail of heavier pipeline and mesh runs.
const DefaultMix = "echo=7,pipeline=2,mesh=1"

// Mix is a parsed traffic mix: kinds with relative integer weights for
// seeded weighted picks. Weights need not sum to any particular total —
// echo=7,pipeline=2,mesh=1 and echo=70,pipeline=20,mesh=10 describe the
// same traffic.
type Mix struct {
	names   []string
	weights []int
	total   int
}

// ParseMix parses a "kind=weight,kind=weight" mix string. Unknown
// kinds, malformed entries, and negative weights are errors;
// zero-weight entries are dropped; a mix with no positive weight is an
// error.
func ParseMix(s string) (*Mix, error) {
	m := &Mix{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix entry %q (want kind=weight)", part)
		}
		known := false
		for _, k := range Kinds {
			if kv[0] == k {
				known = true
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown workload kind %q (have %s)", kv[0], strings.Join(Kinds, "/"))
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", kv[1])
		}
		if w == 0 {
			continue
		}
		m.names = append(m.names, kv[0])
		m.weights = append(m.weights, w)
		m.total += w
	}
	if m.total == 0 {
		return nil, fmt.Errorf("mix %q has no positive weights", s)
	}
	return m, nil
}

// Pick draws a kind from the mix using the given seeded stream, so the
// kind of draw k is a pure function of the stream's seed.
func (m *Mix) Pick(r *sim.Rand) string {
	n := r.Intn(m.total)
	for i, w := range m.weights {
		if n < w {
			return m.names[i]
		}
		n -= w
	}
	return m.names[len(m.names)-1]
}

// String renders the mix canonically as "kind=weight,..." in entry
// order — the form workload keys embed.
func (m *Mix) String() string {
	parts := make([]string, len(m.names))
	for i, n := range m.names {
		parts[i] = fmt.Sprintf("%s=%d", n, m.weights[i])
	}
	return strings.Join(parts, ",")
}
