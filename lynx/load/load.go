// Package load is the virtual-time load engine: an open-loop arrival
// process that runs INSIDE one simulated System, so queueing and
// saturation are measured in virtual time and every number is a pure
// function of the seed.
//
// A generator simproc draws exponential interarrival gaps from a
// private seeded stream (sim.ArrivalStream), sleeps until each arrival
// instant, and LaunchGroup-es a multi-process work unit — an echo pair,
// a three-stage pipeline, or a four-peer mesh — into the running
// System. Arrivals never wait for completions (open loop), so offered
// load beyond the substrate's capacity builds a real queue: work units
// contend for the same simulated kernels and network as every other
// process, and their arrival-to-completion sojourn, recorded in virtual
// time into obs histograms, grows without bound past saturation.
//
// Contrast with wall-clock load generation (cmd/lynxload's
// max-throughput mode): there the host CPU is the resource under test
// and numbers vary run to run; here the simulated machine is, and the
// same seed yields byte-identical overload tables at any parallelism on
// any host. That is what turns capacity and backpressure claims about
// the three kernel bindings into pinned artifacts.
//
// Typical use:
//
//	res, err := load.Run(load.Options{
//	    Substrate: lynx.Charlotte,
//	    Rate:      400,              // arrivals per virtual second
//	    Window:    2 * lynx.Second,  // generation window (virtual)
//	    Seed:      1,
//	})
//	fmt.Println(res.Realized, res.Sojourn.P99) // deterministic
package load

import (
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/sim"
	"repro/lynx"
	"repro/lynx/fault"
	"repro/lynx/sweep"
)

// Metric names the engine records into the System's obs registry.
const (
	// MSojournNs is the per-unit virtual-time sojourn histogram
	// (arrival instant → completion report); per-kind variants are
	// filed under MSojournNs + "{kind=<kind>}".
	MSojournNs = "load_sojourn_ns"
	// MArrivals counts launched work units; per-kind variants are
	// filed under MArrivals + "{kind=<kind>}".
	MArrivals = "load_arrivals_total"
	// MCompleted counts work units that reported completion.
	MCompleted = "load_completed_total"
)

// KindKey derives the per-kind variant of an engine metric name, e.g.
// KindKey(MSojournNs, "echo") = "load_sojourn_ns{kind=echo}".
func KindKey(name, kind string) string {
	return fmt.Sprintf("%s{kind=%s}", name, kind)
}

// Options parameterizes one open-loop run.
type Options struct {
	// Substrate picks the kernel under load. Default Charlotte.
	Substrate lynx.Substrate
	// Seed drives everything: the System, the arrival schedule, and
	// the workload mix draws, through disjoint stream splits. Default 1.
	Seed uint64
	// Rate is the offered load in work-unit arrivals per virtual
	// second. It must be positive.
	Rate float64
	// Window is the arrival-generation window in virtual time:
	// arrivals are injected on schedule until the first instant past
	// it, then generation stops and the backlog drains. Default 1
	// virtual second.
	Window lynx.Duration
	// Mix is the traffic mix. Default DefaultMix.
	Mix *Mix
	// Nodes is the simulated machine size (lynx.Config.Nodes). 0 =
	// lynx default.
	Nodes int
	// SimWorkers is lynx.Config.SimWorkers: the in-System parallel
	// worker cap. It never changes results — with Gens <= 1 the boot
	// graph is the single loadgen process (nothing to partition); with
	// Gens >= 2 the run partitions into one shard per generator and
	// SimWorkers only sets how many execute concurrently, with
	// byte-identical tables at every value. Either way it is an
	// execution hint, not a parameter, and is excluded from sweep cache
	// keys. 0 = serial.
	SimWorkers int
	// Gens is the number of independent load-generator processes.
	// Each generator is its own boot-join component with its own
	// arrival and mix streams, offering Rate/Gens arrivals per virtual
	// second (total offered load stays Rate) and launching work units
	// onto its own shard of a partitioned run. Gens >= 2 therefore
	// turns the engine into an end-to-end exercise of per-shard media
	// and mid-run LaunchGroup under SimWorkers > 1. Unlike SimWorkers,
	// Gens changes the arrival schedule and so the results: it is a
	// workload parameter and part of sweep keys. Default (and any
	// value <= 1): the classic single-loadgen run, stream-for-stream
	// identical to previous releases. With Gens >= 2 and a Deadline,
	// which breach fires the (trace-only) anomaly dump first is
	// execution-order dependent; results are unaffected.
	Gens int
	// MaxUnits caps the number of arrivals as a runaway guard when
	// Rate×Window is enormous. Default 100000.
	MaxUnits int
	// Faults is an optional declarative fault plan applied to the run
	// (lynx.Config.Faults). The injector draws from its own seed
	// streams, so a nil plan leaves the run byte-identical and the
	// faulted run is still a pure function of (Options, Seed). A plan
	// that crashes the generator ("loadgen") or work-unit processes
	// ("u<seq>.<role>") makes Completed lag Arrivals — see CheckShape.
	Faults *fault.Plan
	// Trace, when non-nil, engages the flight recorder for the run:
	// Mode/SampleK/Ring shape lynx.Config.Trace, Sink receives the
	// exported event stream, DumpTo receives ring dumps. Dumps fire on
	// the run's anomaly hooks — a run error or fault-plan panic, a
	// Deadline breach, a shape-check failure — and once at end of run.
	// Recording never changes Result, so Trace is excluded from sweep
	// keys and cache identity.
	Trace *flight.Config
	// Deadline, when positive, is the per-unit virtual sojourn budget:
	// the first completion whose arrival→completion sojourn exceeds it
	// fires the deadline-breach anomaly hook (recording only — units
	// are never cancelled). 0 = no deadline.
	Deadline lynx.Duration
}

// TraceConfig lowers a thread-through flight config onto
// lynx.Config.Trace (the zero TraceOptions for nil — mode Off).
func TraceConfig(t *flight.Config) lynx.TraceOptions {
	if t == nil {
		return lynx.TraceOptions{}
	}
	return lynx.TraceOptions{Mode: t.Mode, SampleK: t.SampleK, Ring: t.Ring}
}

// AttachTrace wires a thread-through flight config's destinations onto
// a freshly built System's flight recorder: the export sink attaches
// to the recorder (so sampling applies) and the dump writer is set.
// No-op when either side is absent.
func AttachTrace(sys *lynx.System, t *flight.Config) {
	fr := sys.Flight()
	if t == nil || fr == nil {
		return
	}
	if t.Sink != nil {
		fr.Attach(t.Sink)
	}
	if t.DumpTo != nil {
		fr.SetDumpWriter(t.DumpTo)
	}
}

// Result is one run's report. Every field is virtual-time derived and
// therefore deterministic in Options.
type Result struct {
	// Offered echoes Options.Rate.
	Offered float64
	// Arrivals is the number of work units injected inside Window.
	Arrivals int
	// Completed is how many reported completion before the System
	// drained.
	Completed int
	// Window echoes Options.Window.
	Window lynx.Duration
	// Makespan is the virtual instant the last work unit reported
	// completion — under overload it exceeds Window by the time needed
	// to clear the backlog. (Not the System drain instant: that trails
	// the last completion by protocol teardown and recovery timers,
	// which are not useful work.)
	Makespan lynx.Duration
	// Realized is Completed per virtual second of Makespan: the
	// throughput the substrate actually sustained. It saturates at the
	// substrate's capacity as Offered crosses it.
	Realized float64
	// Sojourn summarizes per-unit virtual sojourn (arrival instant to
	// completion report) in milliseconds, exact percentiles over all
	// completed units.
	Sojourn sweep.Stat
	// ByKind holds the per-kind sojourn summaries (same units).
	ByKind map[string]sweep.Stat
	// Metrics is the System's pooled registry: kernel protocol events
	// plus the engine's own load_* instruments.
	Metrics *obs.Metrics
}

// Run executes one open-loop virtual-time load run.
func Run(o Options) (*Result, error) {
	if o.Rate <= 0 {
		return nil, fmt.Errorf("load: rate must be positive, got %g", o.Rate)
	}
	if o.Window < 0 {
		return nil, fmt.Errorf("load: negative window %v", o.Window)
	}
	if o.Window == 0 {
		o.Window = lynx.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxUnits <= 0 {
		o.MaxUnits = 100000
	}
	mix := o.Mix
	if mix == nil {
		var err error
		if mix, err = ParseMix(DefaultMix); err != nil {
			panic(err) // DefaultMix always parses
		}
	}

	sys := lynx.NewSystem(lynx.Config{
		Substrate:  o.Substrate,
		Seed:       sim.StreamSeed(o.Seed, 0),
		Nodes:      o.Nodes,
		SimWorkers: o.SimWorkers,
		Faults:     o.Faults,
		Trace:      TraceConfig(o.Trace),
	})
	AttachTrace(sys, o.Trace)
	fr := sys.Flight()
	m := sys.Metrics()
	gens := o.Gens
	if gens < 1 {
		gens = 1
	}
	// The accumulators are shared by every generator's completion
	// callbacks; with Gens >= 2 those run on concurrent shards, so the
	// mutex is load-bearing. Order inside never matters for results:
	// sojourn percentiles are sorted in Summarize, counts are counts,
	// and lastDone is a max.
	var (
		mu         sync.Mutex
		sojournsMS []float64
		byKindMS   = map[string][]float64{}
		arrivals   int
		completed  int
		lastDone   lynx.Duration
		breached   bool
	)
	for gi := 0; gi < gens; gi++ {
		gi := gi
		// Gens <= 1 must stay stream-for-stream identical to the classic
		// single-generator run: same process name, same stream seeds,
		// same rate, seq 0,1,2,... Gens >= 2 gives each generator its
		// own split of the arrival and mix streams and a 1/Gens share of
		// the offered rate, with unit sequence numbers strided so names
		// ("u<seq>.<role>") stay globally unique.
		name := "loadgen"
		arrSeed := sim.StreamSeed(o.Seed, 1)
		kindSeed := sim.StreamSeed(o.Seed, 2)
		rate := o.Rate
		if gens > 1 {
			name = fmt.Sprintf("loadgen-%d", gi)
			arrSeed = sim.StreamSeed2(o.Seed, 1, uint64(gi))
			kindSeed = sim.StreamSeed2(o.Seed, 2, uint64(gi))
			rate = o.Rate / float64(gens)
		}
		sys.Spawn(name, func(t *lynx.Thread, _ []*lynx.End) {
			arr := sim.NewArrivalStream(arrSeed, rate)
			kindRnd := sim.NewRand(kindSeed)
			for seq := gi; seq < o.MaxUnits; seq += gens {
				at := arr.Next()
				if lynx.Duration(at) > o.Window {
					return
				}
				if err := t.SleepUntil(at); err != nil {
					return
				}
				kind := mix.Pick(kindRnd)
				specs, wires := unitSpecs(kind, seq)
				head, _ := sys.LaunchGroup(t, specs, wires)
				mu.Lock()
				arrivals++
				mu.Unlock()
				m.Counter(MArrivals).Inc()
				m.Counter(KindKey(MArrivals, kind)).Inc()
				t.Serve(head, func(st *lynx.Thread, req *lynx.Request) {
					sojourn := lynx.Duration(st.Now() - at)
					done := lynx.Duration(st.Now())
					ms := float64(sojourn) / 1e6
					mu.Lock()
					if o.Deadline > 0 && sojourn > o.Deadline && !breached {
						// First breach only: one dump shows the lead-up, and
						// an overloaded run would otherwise dump per unit.
						breached = true
						fr.Anomaly(fmt.Sprintf("deadline breach: unit sojourn %v > %v",
							sojourn, o.Deadline))
					}
					if done > lastDone {
						lastDone = done
					}
					completed++
					sojournsMS = append(sojournsMS, ms)
					byKindMS[kind] = append(byKindMS[kind], ms)
					mu.Unlock()
					m.Counter(MCompleted).Inc()
					m.Histogram(MSojournNs).Observe(sojourn)
					m.Histogram(KindKey(MSojournNs, kind)).Observe(sojourn)
					st.Reply(req, lynx.Msg{})
				})
			}
		})
	}
	if err := runGuarded(sys, fr); err != nil {
		return nil, fmt.Errorf("load: %v run failed: %w", o.Substrate, err)
	}

	res := &Result{
		Offered:   o.Rate,
		Arrivals:  arrivals,
		Completed: completed,
		Window:    o.Window,
		Makespan:  lastDone,
		Sojourn:   sweep.Summarize(sojournsMS),
		ByKind:    map[string]sweep.Stat{},
		Metrics:   m,
	}
	if res.Makespan > 0 {
		res.Realized = float64(completed) / (float64(res.Makespan) / float64(lynx.Second))
	}
	for kind, s := range byKindMS {
		res.ByKind[kind] = sweep.Summarize(s)
	}
	if fr != nil {
		if reason := shapeAnomaly(o, res); reason != "" {
			fr.Anomaly("shape: " + reason)
		}
		// The on-demand end-of-run dump: even a clean sampled or
		// counters-only run leaves a full last-N ring in the trace
		// stream. (sys.Run already fired the run-error anomaly if the
		// run failed.)
		if err := fr.Dump("run-complete"); err != nil {
			return nil, fmt.Errorf("load: trace dump: %w", err)
		}
	}
	return res, nil
}

// runGuarded executes the system, converting a mid-run panic (a
// fault-plan defect, an injector bug) into a flight-recorder anomaly —
// the ring dump lands before the panic unwinds past the caller.
func runGuarded(sys *lynx.System, fr *flight.Recorder) error {
	defer func() {
		if p := recover(); p != nil {
			fr.Anomaly(fmt.Sprintf("panic: %v", p))
			panic(p)
		}
	}()
	return sys.Run()
}

// shapeAnomaly applies CheckShape's physics to a single run's result,
// returning a non-empty reason on violation: completions beyond
// arrivals, an incomplete drain without a churn scenario, or realized
// throughput wildly exceeding offered load.
func shapeAnomaly(o Options, res *Result) string {
	churns := o.Faults.Churns()
	switch {
	case res.Completed > res.Arrivals:
		return fmt.Sprintf("%d completed exceeds %d arrivals", res.Completed, res.Arrivals)
	case !churns && res.Completed != res.Arrivals:
		return fmt.Sprintf("%d of %d units completed", res.Completed, res.Arrivals)
	case res.Arrivals > 10 && res.Realized > res.Offered*1.5:
		return fmt.Sprintf("realized %g exceeds offered %g", res.Realized, res.Offered)
	}
	return ""
}
