package load

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs/flight"
	"repro/lynx"
	"repro/lynx/fault"
	"repro/lynx/grid"
	"repro/lynx/sweep"
)

// SweepOptions parameterizes a substrate × offered-rate overload sweep
// (× fault scenario, when Faults is set): one deterministic open-loop
// Run per cell. cmd/lynxload's -rates mode and lynxd's "load" jobs both
// build their grids here, which is what makes a daemon-run sweep
// byte-identical to the CLI run of the same options.
type SweepOptions struct {
	// Substrates lists the kernels under load; at least one.
	Substrates []lynx.Substrate
	// Rates lists the offered loads (arrivals per virtual second); all
	// positive, at least one.
	Rates []float64
	// Window is the arrival-generation window (virtual). Default 1s.
	Window lynx.Duration
	// Mix is the traffic mix. Default DefaultMix.
	Mix *Mix
	// Seed is the sweep's root seed. Default 1.
	Seed uint64
	// Faults optionally crosses the sweep with fault scenarios: each
	// plan becomes one value of a third "scenario" grid axis (its
	// canonical string is the axis value, so it flows into cell keys,
	// fingerprints, and the lynxd cell cache unchanged). Empty means no
	// scenario axis at all — the sweep enumerates, seeds, and renders
	// exactly as before, byte for byte.
	Faults []*fault.Plan
	// Parallel is the grid worker count; never changes results.
	Parallel int
	// SimWorkers is the in-System parallel worker cap passed to every
	// cell's run (load.Options.SimWorkers); like Parallel it never
	// changes results, so it is EXCLUDED from Key() — a sweep at any
	// SimWorkers must hit the same cache entries and match the same
	// gates as the serial sweep.
	SimWorkers int
	// Gens is the per-cell generator count (load.Options.Gens). Unlike
	// SimWorkers it is a workload parameter — Gens >= 2 changes every
	// cell's arrival schedule — so it IS part of Key(), but only when
	// set above 1: the default keys exactly as before the knob existed.
	Gens int
	// Trace is the flight-recorder configuration handed to every cell's
	// run (load.Options.Trace). Recording never changes results, so —
	// exactly like SimWorkers — Trace is EXCLUDED from Key(): a sampled
	// or counters-only sweep keys identically to an untraced one and
	// must hit the same cache entries and match the same gates.
	Trace *flight.Config
	// Hook and Progress pass through to the grid spec (cache injection
	// and progress streaming; see grid.Spec).
	Hook     func(c grid.Cell, run func() *sweep.Aggregate) *sweep.Aggregate
	Progress func(done, total int)
}

// normalized fills in defaults and validates.
func (o SweepOptions) normalized() (SweepOptions, error) {
	if len(o.Substrates) == 0 {
		return o, fmt.Errorf("load: sweep needs at least one substrate")
	}
	if len(o.Rates) == 0 {
		return o, fmt.Errorf("load: sweep needs at least one rate")
	}
	for _, r := range o.Rates {
		if r <= 0 {
			return o, fmt.Errorf("load: rate must be positive, got %g", r)
		}
	}
	if o.Window < 0 {
		return o, fmt.Errorf("load: negative window %v", o.Window)
	}
	if o.Window == 0 {
		o.Window = lynx.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Mix == nil {
		mix, err := ParseMix(DefaultMix)
		if err != nil {
			panic(err) // DefaultMix always parses
		}
		o.Mix = mix
	}
	for i, p := range o.Faults {
		if p == nil {
			o.Faults[i] = &fault.Plan{} // nil plan = the "none" scenario
		} else if err := p.Validate(); err != nil {
			return o, err
		}
	}
	return o, nil
}

// Key canonicalizes the sweep for gate matching and job identity: the
// string BENCH_load.json records as overload_key (or faults_key for a
// faulted sweep). A sweep without fault scenarios keys exactly as it
// did before the scenario axis existed.
func (o SweepOptions) Key() string {
	o, err := o.normalized()
	if err != nil {
		return "invalid: " + err.Error()
	}
	subs := make([]string, len(o.Substrates))
	for i, s := range o.Substrates {
		subs[i] = s.String()
	}
	rs := make([]string, len(o.Rates))
	for i, r := range o.Rates {
		rs[i] = fmt.Sprintf("%g", r)
	}
	key := fmt.Sprintf("subs=%s rates=%s mix=%s seed=%d window=%s",
		strings.Join(subs, ","), strings.Join(rs, ","), o.Mix, o.Seed,
		time.Duration(o.Window))
	if len(o.Faults) > 0 {
		fs := make([]string, len(o.Faults))
		for i, p := range o.Faults {
			fs[i] = p.String()
		}
		key += " faults=" + strings.Join(fs, "/")
	}
	if o.Gens > 1 {
		key += fmt.Sprintf(" gens=%d", o.Gens)
	}
	return key
}

// SweepSpec builds the substrate × rate (× scenario) grid: each cell is
// one load.Run, seeded by the grid's two-level stream split, so the
// whole table is a pure function of (options, seed) at any Parallel.
// The scenario axis exists only when Faults is non-empty; without it
// the grid's enumeration order and per-cell seeds are unchanged from
// the pre-fault layout.
func SweepSpec(o SweepOptions) (grid.Spec, error) {
	o, err := o.normalized()
	if err != nil {
		return grid.Spec{}, err
	}
	axes := []grid.Axis{
		grid.AxisOf("substrate", o.Substrates...),
		grid.AxisOf("rate", o.Rates...),
	}
	if len(o.Faults) > 0 {
		axes = append(axes, grid.AxisOf("scenario", o.Faults...))
	}
	return grid.Spec{
		Name:     "lynxload overload",
		Axes:     axes,
		Replicas: 1,
		Parallel: o.Parallel,
		RootSeed: o.Seed,
		Hook:     o.Hook,
		Progress: o.Progress,
		Trace:    o.Trace,
		Body: func(cell grid.Cell, r sweep.Run) sweep.Outcome {
			opts := Options{
				Substrate:  grid.MustAs[lynx.Substrate](cell, "substrate"),
				Rate:       grid.MustAs[float64](cell, "rate"),
				Window:     o.Window,
				Mix:        o.Mix,
				Seed:       r.Seed,
				SimWorkers: o.SimWorkers,
				Gens:       o.Gens,
				Trace:      r.Trace,
			}
			if cell.Has("scenario") {
				opts.Faults = grid.MustAs[*fault.Plan](cell, "scenario")
			}
			res, err := Run(opts)
			if err != nil {
				return sweep.Outcome{Err: err}
			}
			return sweep.Outcome{
				Values: map[string]float64{
					"arrivals":       float64(res.Arrivals),
					"completed":      float64(res.Completed),
					"makespan_ms":    float64(res.Makespan) / 1e6,
					"realized":       res.Realized,
					"sojourn_p50_ms": res.Sojourn.P50,
					"sojourn_p95_ms": res.Sojourn.P95,
					"sojourn_p99_ms": res.Sojourn.P99,
				},
				Metrics: res.Metrics,
			}
		},
	}, nil
}

// Row is one (substrate, offered rate[, scenario]) line of an overload
// table — the record BENCH_load.json stores. All fields are
// virtual-time derived and machine independent. Scenario is the fault
// plan's canonical string, present only on faulted sweeps (rows of an
// unfaulted sweep marshal byte-identically to the pre-fault format).
type Row struct {
	Substrate  string  `json:"substrate"`
	Rate       float64 `json:"rate"`
	Arrivals   int     `json:"arrivals"`
	Completed  int     `json:"completed"`
	MakespanMS float64 `json:"makespan_ms"`
	Realized   float64 `json:"realized"`
	P50MS      float64 `json:"sojourn_p50_ms"`
	P95MS      float64 `json:"sojourn_p95_ms"`
	P99MS      float64 `json:"sojourn_p99_ms"`
	Scenario   string  `json:"scenario,omitempty"`
}

// Rows flattens an overload grid table into Row records in cell
// enumeration order, surfacing the first replica error if any cell
// failed.
func Rows(tbl *grid.Table) ([]Row, error) {
	if tbl.Errs() > 0 {
		for _, cr := range tbl.Cells {
			if len(cr.Agg.Errs) > 0 {
				return nil, fmt.Errorf("%s: %v", cr.Cell.Key(), cr.Agg.Errs[0])
			}
		}
	}
	rows := make([]Row, len(tbl.Cells))
	for i, cr := range tbl.Cells {
		v := cr.Agg.Values
		rows[i] = Row{
			Substrate:  cr.Cell.Str("substrate"),
			Rate:       grid.MustAs[float64](cr.Cell, "rate"),
			Arrivals:   int(v["arrivals"].Mean),
			Completed:  int(v["completed"].Mean),
			MakespanMS: v["makespan_ms"].Mean,
			Realized:   v["realized"].Mean,
			P50MS:      v["sojourn_p50_ms"].Mean,
			P95MS:      v["sojourn_p95_ms"].Mean,
			P99MS:      v["sojourn_p99_ms"].Mean,
		}
		if cr.Cell.Has("scenario") {
			rows[i].Scenario = cr.Cell.Str("scenario")
		}
	}
	if err := CheckShape(rows); err != nil {
		return nil, err
	}
	return rows, nil
}

// CheckShape asserts the physics every overload table must satisfy
// before it is recorded or gated: open-loop runs drain completely and
// realized throughput never wildly exceeds offered load (the engine
// measures, it does not invent work). Rows under a churn scenario — a
// plan that crashes or restarts processes — are exempt from the full
// drain requirement (killed units never report), but completions can
// still never exceed arrivals.
func CheckShape(rows []Row) error {
	for _, r := range rows {
		churns := false
		if r.Scenario != "" {
			if p, err := fault.Parse(r.Scenario); err == nil {
				churns = p.Churns()
			}
		}
		switch {
		case r.Completed > r.Arrivals:
			return fmt.Errorf("%s rate %g: %d completed exceeds %d arrivals",
				r.Substrate, r.Rate, r.Completed, r.Arrivals)
		case !churns && r.Completed != r.Arrivals:
			return fmt.Errorf("%s rate %g: %d of %d units completed",
				r.Substrate, r.Rate, r.Completed, r.Arrivals)
		}
		// Realized is completed/makespan; a short burst can nominally
		// exceed the offered average, but never wildly.
		if r.Arrivals > 10 && r.Realized > r.Rate*1.5 {
			return fmt.Errorf("%s rate %g: realized %g exceeds offered",
				r.Substrate, r.Rate, r.Realized)
		}
	}
	return nil
}
