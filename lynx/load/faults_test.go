package load

import (
	"reflect"
	"testing"

	"repro/lynx"
	"repro/lynx/fault"
	"repro/lynx/grid"
)

// faultedRun is one cheap faulted load window.
func faultedRun(t *testing.T, sub lynx.Substrate, plan *fault.Plan, seed uint64) *Result {
	t.Helper()
	res, err := Run(Options{
		Substrate: sub,
		Seed:      seed,
		Rate:      40,
		Window:    150 * lynx.Millisecond,
		Faults:    plan,
	})
	if err != nil {
		t.Fatalf("%v under %s seed %d: %v", sub, plan, seed, err)
	}
	return res
}

// TestFaultScenarioDeterminism runs every registered scenario on every
// substrate twice with the same seed and demands identical results:
// faulted runs must stay pure functions of (spec, seed). Crash/restart
// scenarios exercise the kernels' termination sweeps — a regression
// that wedges the drain shows up here as a hang cut short by the sim's
// deadlock detector or the test timeout.
func TestFaultScenarioDeterminism(t *testing.T) {
	subs := []lynx.Substrate{lynx.Charlotte, lynx.SODA, lynx.Chrysalis}
	for _, sub := range subs {
		for _, name := range fault.ScenarioNames() {
			plan, err := fault.ParseScenario(name)
			if err != nil {
				t.Fatalf("scenario %q: %v", name, err)
			}
			a := faultedRun(t, sub, plan, 3)
			b := faultedRun(t, sub, plan, 3)
			if a.Arrivals != b.Arrivals || a.Completed != b.Completed ||
				a.Makespan != b.Makespan || a.Realized != b.Realized {
				t.Errorf("%v/%s: same seed diverged: %+v vs %+v", sub, name, a, b)
			}
			if !reflect.DeepEqual(a.Sojourn, b.Sojourn) || !reflect.DeepEqual(a.ByKind, b.ByKind) {
				t.Errorf("%v/%s: sojourn stats diverged", sub, name)
			}
			if a.Completed > a.Arrivals {
				t.Errorf("%v/%s: completed %d > arrivals %d", sub, name, a.Completed, a.Arrivals)
			}
			if !plan.Churns() && a.Completed != a.Arrivals {
				t.Errorf("%v/%s: non-churn scenario lost work: %d of %d", sub, name, a.Completed, a.Arrivals)
			}
		}
	}
}

// TestFaultsSweepParallelByteIdentical: the faulted sweep's JSONL bytes
// are independent of the worker count — the property the BENCH gate and
// the lynxd cell cache both stand on.
func TestFaultsSweepParallelByteIdentical(t *testing.T) {
	plans := []*fault.Plan{
		fault.MustParse("none"),
		fault.MustParse("drop(*->*,0.1)"),
		fault.MustParse("crash(u1.*,60ms)"),
	}
	render := func(parallel int) string {
		spec, err := SweepSpec(SweepOptions{
			Substrates: []lynx.Substrate{lynx.Charlotte, lynx.SODA},
			Rates:      []float64{40},
			Window:     150 * lynx.Millisecond,
			Seed:       2,
			Faults:     plans,
			Parallel:   parallel,
		})
		if err != nil {
			t.Fatalf("SweepSpec: %v", err)
		}
		return grid.Run(spec).RenderJSONL()
	}
	seq, par := render(1), render(8)
	if seq != par {
		t.Errorf("faulted sweep not parallel-invariant:\n-- parallel=1 --\n%s\n-- parallel=8 --\n%s", seq, par)
	}
}

// TestHeavyDropCompletes: a 30% point-to-point drop is well past the
// default scenarios' severity; retransmission must still deliver every
// unit on every seed (the lynx-level early-reply regression test covers
// the same regime at the protocol layer).
func TestHeavyDropCompletes(t *testing.T) {
	plan := fault.MustParse("drop(*->*,0.3)")
	for seed := uint64(1); seed <= 20; seed++ {
		res := faultedRun(t, lynx.SODA, plan, seed)
		if res.Completed != res.Arrivals {
			t.Errorf("seed %d: drop scenario lost work: %d of %d", seed, res.Completed, res.Arrivals)
		}
	}
}

// TestWholeUnitCrashDrains pins the watchdog regression found by fault
// injection: crashing both halves of a unit left the dead client's
// hint-staleness watchdog rearming forever (the kernel only raises
// IntCrash to live requesters), so the run never drained. The fix bails
// the watchdog when its transport is dead; a regression here hangs
// until the test timeout.
func TestWholeUnitCrashDrains(t *testing.T) {
	plan := fault.MustParse("crash(u1.*,60ms)")
	for seed := uint64(1); seed <= 5; seed++ {
		res := faultedRun(t, lynx.SODA, plan, seed)
		if res.Completed > res.Arrivals {
			t.Errorf("seed %d: completed %d > arrivals %d", seed, res.Completed, res.Arrivals)
		}
	}
}
