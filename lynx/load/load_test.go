package load

import (
	"strings"
	"testing"

	"repro/lynx"
	"repro/lynx/grid"
	"repro/lynx/sweep"
)

// overloadSpec is the PR's pinned experiment: an open-loop rate sweep
// crossing saturation on two substrates, run through the grid harness.
// The low rate is well inside both substrates' capacity; the high rate
// is at least 2× over it (asserted by TestOverloadSemantics, not
// assumed).
func overloadSpec(parallel int) grid.Spec {
	return grid.Spec{
		Name: "virtual-time overload",
		Axes: []grid.Axis{
			{Name: "substrate", Values: []any{lynx.Charlotte, lynx.SODA}},
			{Name: "rate", Values: []any{20, 150}},
		},
		Replicas: 1,
		Parallel: parallel,
		RootSeed: 11,
		Body:     overloadBody,
	}
}

func overloadBody(c grid.Cell, r sweep.Run) sweep.Outcome {
	res, err := Run(Options{
		Substrate: c.Value("substrate").(lynx.Substrate),
		Rate:      float64(c.Int("rate")),
		Window:    lynx.Second / 2,
		Seed:      r.Seed,
	})
	if err != nil {
		return sweep.Outcome{Err: err}
	}
	return sweep.Outcome{
		Values: map[string]float64{
			"offered":        res.Offered,
			"realized":       res.Realized,
			"arrivals":       float64(res.Arrivals),
			"completed":      float64(res.Completed),
			"makespan_ms":    float64(res.Makespan) / 1e6,
			"sojourn_p50_ms": res.Sojourn.P50,
			"sojourn_p95_ms": res.Sojourn.P95,
			"sojourn_p99_ms": res.Sojourn.P99,
		},
		Metrics: res.Metrics,
	}
}

// The acceptance pin: the same seeded overload sweep at Parallel=1 and
// Parallel=8 renders byte-identical tables — text, JSONL, and the
// pivoted matrix — under -race (`make race` runs this file). Workload
// generation lives inside the DES, so host scheduling cannot reach it.
func TestOverloadSweepDeterministicAcrossParallelism(t *testing.T) {
	serial := grid.Run(overloadSpec(1))
	wide := grid.Run(overloadSpec(8))
	if s, w := serial.Render(), wide.Render(); s != w {
		t.Fatalf("text render differs across parallelism:\n--- serial\n%s\n--- parallel\n%s", s, w)
	}
	if s, w := serial.RenderJSONL(), wide.RenderJSONL(); s != w {
		t.Fatalf("JSONL differs across parallelism")
	}
	sm := serial.RenderMatrix("substrate", "rate", "realized", "sojourn_p95_ms", "sojourn_p99_ms")
	wm := wide.RenderMatrix("substrate", "rate", "realized", "sojourn_p95_ms", "sojourn_p99_ms")
	if sm != wm {
		t.Fatalf("matrix differs across parallelism:\n--- serial\n%s\n--- parallel\n%s", sm, wm)
	}
	if serial.Errs() != 0 {
		t.Fatalf("replica errors: %d\n%s", serial.Errs(), serial.Render())
	}
}

// The sweep's physics: every arrival eventually completes; at the high
// rate both substrates are genuinely ≥2× past saturation (realized at
// most half of offered) and queueing shows up as sojourn growth.
func TestOverloadSemantics(t *testing.T) {
	tbl := grid.Run(overloadSpec(0))
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA} {
		lo := tbl.CellAt(sub, 20).Agg.Values
		hi := tbl.CellAt(sub, 150).Agg.Values
		for _, cell := range []map[string]sweep.Stat{lo, hi} {
			if cell["completed"].Mean != cell["arrivals"].Mean {
				t.Fatalf("%v: %g of %g units completed", sub, cell["completed"].Mean, cell["arrivals"].Mean)
			}
		}
		if cap, offered := hi["realized"].Mean, hi["offered"].Mean; cap > offered/2 {
			t.Fatalf("%v: offered %g is not ≥2× realized capacity %g — deepen the sweep", sub, offered, cap)
		}
		if lo["sojourn_p95_ms"].Mean >= hi["sojourn_p95_ms"].Mean {
			t.Fatalf("%v: p95 sojourn did not grow past saturation (%.3f → %.3f ms)",
				sub, lo["sojourn_p95_ms"].Mean, hi["sojourn_p95_ms"].Mean)
		}
	}
}

// One run's self-consistency: counters match counts, per-kind series
// partition the total, and the mix draws every kind at this size.
func TestRunAccounting(t *testing.T) {
	res, err := Run(Options{Substrate: lynx.Charlotte, Rate: 200, Window: lynx.Second / 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals == 0 || res.Completed != res.Arrivals {
		t.Fatalf("arrivals=%d completed=%d", res.Arrivals, res.Completed)
	}
	if got := res.Metrics.Value(MArrivals); got != int64(res.Arrivals) {
		t.Fatalf("%s=%d, want %d", MArrivals, got, res.Arrivals)
	}
	if got := res.Metrics.Value(MCompleted); got != int64(res.Completed) {
		t.Fatalf("%s=%d, want %d", MCompleted, got, res.Completed)
	}
	var kindTotal int
	for _, kind := range Kinds {
		n := int(res.Metrics.Value(KindKey(MArrivals, kind)))
		if n == 0 {
			t.Fatalf("mix never drew kind %q in %d arrivals", kind, res.Arrivals)
		}
		kindTotal += n
		if _, ok := res.ByKind[kind]; !ok {
			t.Fatalf("no ByKind summary for %q", kind)
		}
	}
	if kindTotal != res.Arrivals {
		t.Fatalf("per-kind arrivals sum %d != total %d", kindTotal, res.Arrivals)
	}
	if res.Sojourn.N != res.Completed {
		t.Fatalf("sojourn N=%d, want %d", res.Sojourn.N, res.Completed)
	}
	if res.Makespan <= res.Window {
		t.Fatalf("overloaded run's makespan %v should exceed the window %v", res.Makespan, res.Window)
	}
}

// Option validation and defaults.
func TestRunOptionErrors(t *testing.T) {
	for _, rate := range []float64{0, -3} {
		if _, err := Run(Options{Rate: rate}); err == nil {
			t.Fatalf("rate %g should be rejected", rate)
		}
	}
	if _, err := Run(Options{Rate: 10, Window: -lynx.Second}); err == nil {
		t.Fatal("negative window should be rejected")
	}
	if _, err := Run(Options{Rate: 10, Mix: mustMix(t, "echo=1")}); err != nil {
		t.Fatalf("single-kind mix: %v", err)
	}
}

func mustMix(t *testing.T, s string) *Mix {
	t.Helper()
	m, err := ParseMix(s)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// The closed-loop unit builders still run standalone (the wall-clock
// bench path): one short System per kind on every substrate.
func TestRunOnceAllKinds(t *testing.T) {
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA, lynx.Chrysalis} {
		for _, kind := range Kinds {
			m, err := RunOnce(sub, kind, 9)
			if err != nil {
				t.Fatalf("%v/%s: %v", sub, kind, err)
			}
			if m.Value("load_runs_"+kind) != 1 {
				t.Fatalf("%v/%s: marker counter missing", sub, kind)
			}
		}
	}
	if _, err := RunOnce(lynx.Charlotte, "bogus", 1); err == nil ||
		!strings.Contains(err.Error(), "unknown workload kind") {
		t.Fatalf("unknown kind error = %v", err)
	}
}
