package load

import (
	"testing"

	"repro/lynx"
	"repro/lynx/grid"
)

// The factored-out sweep must stay a pure function of its options: same
// table bytes at any Parallel, rows that satisfy the physics check, and
// a stable canonical key (the BENCH_load.json overload_key format).
func TestSweepSpecDeterministicAcrossParallel(t *testing.T) {
	opts := SweepOptions{
		Substrates: []lynx.Substrate{lynx.Charlotte},
		Rates:      []float64{30, 60},
		Window:     100 * lynx.Millisecond,
		Seed:       1,
	}
	if got, want := opts.Key(), "subs=charlotte rates=30,60 mix=echo=7,pipeline=2,mesh=1 seed=1 window=100ms"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	render := func(parallel int) (string, []Row) {
		o := opts
		o.Parallel = parallel
		spec, err := SweepSpec(o)
		if err != nil {
			t.Fatal(err)
		}
		tbl := grid.Run(spec)
		rows, err := Rows(tbl)
		if err != nil {
			t.Fatal(err)
		}
		return tbl.RenderJSONL(), rows
	}
	j1, rows := render(1)
	j4, _ := render(4)
	if j1 != j4 {
		t.Fatalf("sweep table depends on Parallel:\n%s\nvs\n%s", j1, j4)
	}
	if len(rows) != 2 || rows[0].Rate != 30 || rows[1].Rate != 60 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Arrivals == 0 || r.Completed != r.Arrivals {
			t.Fatalf("row did not drain: %+v", r)
		}
	}
}

func TestSweepSpecValidates(t *testing.T) {
	if _, err := SweepSpec(SweepOptions{Rates: []float64{1}}); err == nil {
		t.Fatal("want error for empty substrate list")
	}
	if _, err := SweepSpec(SweepOptions{Substrates: []lynx.Substrate{lynx.SODA}}); err == nil {
		t.Fatal("want error for empty rate list")
	}
	if _, err := SweepSpec(SweepOptions{Substrates: []lynx.Substrate{lynx.SODA}, Rates: []float64{-1}}); err == nil {
		t.Fatal("want error for negative rate")
	}
}
