package load

import (
	"testing"

	"repro/internal/sim"
)

func TestParseMix(t *testing.T) {
	// Weights are relative: nothing requires them to sum to 100 (or any
	// other total), and scaled mixes describe identical traffic.
	for _, good := range []string{
		DefaultMix, "echo=1", "echo=70,pipeline=20,mesh=10",
		"echo=3,pipeline=94", "mesh=1,echo=0",
	} {
		if _, err := ParseMix(good); err != nil {
			t.Fatalf("ParseMix(%q): %v", good, err)
		}
	}
	for _, bad := range []string{
		"", "echo", "echo=", "echo=x", "echo=-1", "frob=1",
		"echo=0", "echo=0,mesh=0", "echo=1;mesh=1",
	} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) should fail", bad)
		}
	}
}

// Pick respects the weights and is a pure function of the stream; the
// canonical String form preserves entry order and drops zero weights.
func TestMixPickAndString(t *testing.T) {
	a, _ := ParseMix("echo=7,pipeline=2,mesh=1")
	if a.String() != "echo=7,pipeline=2,mesh=1" {
		t.Fatalf("String = %q", a.String())
	}
	if m, _ := ParseMix("mesh=2,echo=0,pipeline=1"); m.String() != "mesh=2,pipeline=1" {
		t.Fatalf("zero-weight entry survived: %q", m.String())
	}
	counts := map[string]int{}
	ra := sim.NewRand(42)
	for i := 0; i < 1000; i++ {
		counts[a.Pick(ra)]++
	}
	if counts["echo"] < counts["pipeline"] || counts["pipeline"] < counts["mesh"] {
		t.Fatalf("weights not respected: %v", counts)
	}
	// Same seed, same sequence: the draw is a pure function of the stream.
	r1, r2 := sim.NewRand(7), sim.NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Pick(r1) != a.Pick(r2) {
			t.Fatal("mix draw is not deterministic in the seed")
		}
	}
}
