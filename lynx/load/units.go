package load

import (
	"fmt"

	"repro/internal/obs"
	"repro/lynx"
)

// The three work-unit shapes. Each exists in two forms: a closed-loop
// Spawn+Join build (one short System per unit, the wall-clock bench
// workload) and an open-loop LaunchGroup spec (many units launched
// mid-run inside ONE simulated System, the virtual-time engine's
// workload). Both forms move the same operations over the same
// payloads, so the two modes stress the kernels with the same traffic.

// Build assembles one closed-loop work unit of the given kind into sys
// (Spawn+Join form, before Run). Unknown kinds are an error.
func Build(sys *lynx.System, kind string) error {
	switch kind {
	case "echo":
		buildEcho(sys)
	case "pipeline":
		buildPipeline(sys)
	case "mesh":
		buildMesh(sys)
	default:
		return fmt.Errorf("load: unknown workload kind %q", kind)
	}
	return nil
}

// RunOnce builds and runs one short System of the given kind; the
// returned registry pools the run's protocol events plus a
// "load_runs_<kind>" marker counter. This is the closed-loop unit the
// wall-clock max-throughput bench drives through the grid runner.
func RunOnce(sub lynx.Substrate, kind string, seed uint64) (*obs.Metrics, error) {
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: seed})
	if err := Build(sys, kind); err != nil {
		return nil, err
	}
	err := sys.Run()
	m := obs.NewMetrics()
	m.Counter("load_runs_" + kind).Inc()
	m.Merge(sys.Metrics())
	return m, err
}

// buildEcho: one client hammering one server with 4 echo RPCs of 64 B.
func buildEcho(sys *lynx.System) {
	data := make([]byte, 64)
	cl := sys.Spawn("client", func(t *lynx.Thread, boot []*lynx.End) {
		echoClientOps(t, boot[0], data)
	})
	sv := sys.Spawn("server", func(t *lynx.Thread, boot []*lynx.End) {
		serveEcho(t, boot[0])
	})
	sys.Join(cl, sv)
}

// buildPipeline: source → relay → sink; each of 3 ops traverses both
// hops (the relay's handler makes a nested remote call).
func buildPipeline(sys *lynx.System) {
	data := make([]byte, 128)
	src := sys.Spawn("source", func(t *lynx.Thread, boot []*lynx.End) {
		pipelineSourceOps(t, boot[0], data)
	})
	relay := sys.Spawn("relay", func(t *lynx.Thread, boot []*lynx.End) {
		serveRelay(t, boot[0], boot[1])
	})
	sink := sys.Spawn("sink", func(t *lynx.Thread, boot []*lynx.End) {
		serveEcho(t, boot[0])
	})
	sys.Join(src, relay)
	sys.Join(relay, sink)
}

// buildMesh: 4 peers on a ring, each serving its ends and echoing 2
// ops to its clockwise neighbor.
func buildMesh(sys *lynx.System) {
	const peers = 4
	data := make([]byte, 32)
	refs := make([]*lynx.ProcRef, peers)
	for i := 0; i < peers; i++ {
		refs[i] = sys.Spawn(fmt.Sprint("peer", i), func(t *lynx.Thread, boot []*lynx.End) {
			meshPeerOps(t, boot, data)
		})
	}
	for i := 0; i < peers; i++ {
		sys.Join(refs[i], refs[(i+1)%peers])
	}
}

// echoClientOps is the echo unit's client body: 4 RPCs then teardown.
// Teardown is unconditional — an op failing mid-unit (a link-death race
// under overload) must not leak a live link, or the peer process never
// exits and the drain never finishes.
func echoClientOps(t *lynx.Thread, server *lynx.End, data []byte) {
	for i := 0; i < 4; i++ {
		if _, err := t.Connect(server, "echo", lynx.Msg{Data: data}); err != nil {
			break
		}
	}
	if !server.Dead() {
		t.Destroy(server)
	}
}

// serveEcho registers the reply-what-you-got handler.
func serveEcho(t *lynx.Thread, e *lynx.End) {
	t.Serve(e, func(st *lynx.Thread, req *lynx.Request) {
		st.Reply(req, lynx.Msg{Data: req.Data()})
	})
}

// pipelineSourceOps is the pipeline unit's source body: 3 forwarded ops
// then teardown (unconditional, as in echoClientOps).
func pipelineSourceOps(t *lynx.Thread, relay *lynx.End, data []byte) {
	for i := 0; i < 3; i++ {
		if _, err := t.Connect(relay, "fwd", lynx.Msg{Data: data}); err != nil {
			break
		}
	}
	if !relay.Dead() {
		t.Destroy(relay)
	}
}

// serveRelay forwards each request over the downstream link.
func serveRelay(t *lynx.Thread, up, down *lynx.End) {
	t.Serve(up, func(st *lynx.Thread, req *lynx.Request) {
		reply, err := st.Connect(down, "fwd", lynx.Msg{Data: req.Data()})
		if err != nil {
			st.Reply(req, lynx.Msg{})
			return
		}
		st.Reply(req, lynx.Msg{Data: reply.Data})
	})
}

// meshPeerOps is the mesh unit's peer body over its ring ends.
func meshPeerOps(t *lynx.Thread, ring []*lynx.End, data []byte) {
	for _, e := range ring {
		serveEcho(t, e)
	}
	for op := 0; op < 2; op++ {
		e := ring[op%len(ring)]
		if e.Dead() {
			continue
		}
		if _, err := t.Connect(e, "echo", lynx.Msg{Data: data}); err != nil {
			break
		}
	}
	t.Sleep(10 * lynx.Millisecond)
	for _, e := range ring {
		if !e.Dead() {
			t.Destroy(e)
		}
	}
}

// reportDone signals unit completion to the generator over the
// launcher link and tears it down.
func reportDone(t *lynx.Thread, gen *lynx.End) {
	if _, err := t.Connect(gen, "done", lynx.Msg{}); err == nil {
		t.Destroy(gen)
	}
}

// unitSpecs returns the LaunchGroup form of a work unit: process specs
// (index 0 is the head, which receives the launcher link as boot[0] and
// reports completion on it) and the sibling wires. The unit's traffic
// is identical to the closed-loop Build form.
func unitSpecs(kind string, seq int) (specs []lynx.ProcSpec, wires [][2]int) {
	tag := func(role string) string { return fmt.Sprintf("u%d.%s", seq, role) }
	switch kind {
	case "echo":
		data := make([]byte, 64)
		return []lynx.ProcSpec{
			{Name: tag("client"), Main: func(t *lynx.Thread, boot []*lynx.End) {
				echoClientOps(t, boot[1], data)
				reportDone(t, boot[0])
			}},
			{Name: tag("server"), Main: func(t *lynx.Thread, boot []*lynx.End) {
				serveEcho(t, boot[0])
			}},
		}, [][2]int{{0, 1}}
	case "pipeline":
		data := make([]byte, 128)
		return []lynx.ProcSpec{
			{Name: tag("source"), Main: func(t *lynx.Thread, boot []*lynx.End) {
				pipelineSourceOps(t, boot[1], data)
				reportDone(t, boot[0])
			}},
			{Name: tag("relay"), Main: func(t *lynx.Thread, boot []*lynx.End) {
				serveRelay(t, boot[0], boot[1])
			}},
			{Name: tag("sink"), Main: func(t *lynx.Thread, boot []*lynx.End) {
				serveEcho(t, boot[0])
			}},
		}, [][2]int{{0, 1}, {1, 2}}
	case "mesh":
		const peers = 4
		data := make([]byte, 32)
		specs = make([]lynx.ProcSpec, peers)
		for i := 0; i < peers; i++ {
			head := i == 0
			specs[i] = lynx.ProcSpec{Name: tag(fmt.Sprint("peer", i)), Main: func(t *lynx.Thread, boot []*lynx.End) {
				ring := boot
				var gen *lynx.End
				if head {
					gen, ring = boot[0], boot[1:]
				}
				meshPeerOps(t, ring, data)
				if head {
					reportDone(t, gen)
				}
			}}
		}
		return specs, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	}
	return nil, nil
}
