package load

import (
	"testing"

	"repro/lynx"
	"repro/lynx/fault"
	"repro/lynx/grid"
)

// renderSweep runs the sweep and returns its JSONL table.
func renderSweep(t *testing.T, o SweepOptions) string {
	t.Helper()
	spec, err := SweepSpec(o)
	if err != nil {
		t.Fatal(err)
	}
	tbl := grid.Run(spec)
	if _, err := Rows(tbl); err != nil {
		t.Fatal(err)
	}
	return tbl.RenderJSONL()
}

// TestGensSweepWorkerInvariance is the load engine's finite-lookahead
// acceptance gate: with Gens >= 2 every cell's run partitions (one
// shard per generator, work units LaunchGroup-ed mid-run onto their
// generator's shard), and the sweep table must stay byte-identical at
// SimWorkers 1 and 4 on the connected kernel substrates.
func TestGensSweepWorkerInvariance(t *testing.T) {
	opts := SweepOptions{
		Substrates: []lynx.Substrate{lynx.Charlotte, lynx.SODA},
		Rates:      []float64{30, 60},
		Window:     150 * lynx.Millisecond,
		Seed:       1,
		Gens:       4,
	}
	serial := opts
	serial.SimWorkers = 1
	par := opts
	par.SimWorkers = 4
	j1 := renderSweep(t, serial)
	j4 := renderSweep(t, par)
	if j1 != j4 {
		t.Fatalf("gens=4 sweep table depends on SimWorkers:\n%s\nvs\n%s", j1, j4)
	}
}

// TestFaultedSweepWorkerInvariance pins the other half of the same
// contract: fault plans no longer force a serial collapse, so the
// scenario-crossed sweep (the BENCH_load.json faults matrix shape) is
// byte-identical at SimWorkers 1 and 4 — with the default single
// generator AND with Gens >= 2, where the per-shard fault schedules
// actually run concurrently.
func TestFaultedSweepWorkerInvariance(t *testing.T) {
	for _, gens := range []int{1, 2} {
		opts := SweepOptions{
			Substrates: []lynx.Substrate{lynx.SODA},
			Rates:      []float64{40},
			Window:     150 * lynx.Millisecond,
			Seed:       1,
			Gens:       gens,
			Faults: []*fault.Plan{
				{},
				{Events: []fault.Event{fault.Crash{Proc: "u1.server", At: 60 * lynx.Millisecond}}},
			},
		}
		serial := opts
		serial.SimWorkers = 1
		par := opts
		par.SimWorkers = 4
		j1 := renderSweep(t, serial)
		j4 := renderSweep(t, par)
		if j1 != j4 {
			t.Fatalf("gens=%d faulted sweep depends on SimWorkers:\n%s\nvs\n%s", gens, j1, j4)
		}
	}
}

// TestGensKeyAndCompat: the Gens knob is a workload parameter — it
// appears in Key() when set above 1 — but the default must key and run
// exactly as before the knob existed (Gens 0 and 1 are the classic
// single-generator path, stream for stream).
func TestGensKeyAndCompat(t *testing.T) {
	base := SweepOptions{
		Substrates: []lynx.Substrate{lynx.Charlotte},
		Rates:      []float64{30},
		Window:     100 * lynx.Millisecond,
		Seed:       1,
	}
	want := "subs=charlotte rates=30 mix=echo=7,pipeline=2,mesh=1 seed=1 window=100ms"
	if got := base.Key(); got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	one := base
	one.Gens = 1
	if got := one.Key(); got != want {
		t.Fatalf("Gens=1 Key() = %q, want the pre-knob key %q", got, want)
	}
	four := base
	four.Gens = 4
	if got := four.Key(); got != want+" gens=4" {
		t.Fatalf("Gens=4 Key() = %q, want %q", got, want+" gens=4")
	}

	// Run-level compatibility: Gens 0 and Gens 1 are the same run.
	runOnce := func(gens int) string {
		o := base
		o.Gens = gens
		return renderSweep(t, o)
	}
	if a, b := runOnce(0), runOnce(1); a != b {
		t.Fatalf("Gens=1 diverged from the default run:\n%s\nvs\n%s", a, b)
	}
}
