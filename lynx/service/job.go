package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/expt"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/lynx"
	"repro/lynx/fault"
	"repro/lynx/grid"
	"repro/lynx/load"
)

// JobRequest is the POST /jobs body: a kind selector plus the matching
// spec block. Client, when set, names the fair-queue lane the job joins
// (unset falls back to the submitter's remote address, so separate
// machines are separate lanes by default).
type JobRequest struct {
	Kind   string   `json:"kind"` // "expt" | "grid" | "load"
	Client string   `json:"client,omitempty"`
	Expt   *ExptJob `json:"expt,omitempty"`
	Grid   *GridJob `json:"grid,omitempty"`
	Load   *LoadJob `json:"load,omitempty"`
}

// ExptJob runs catalogued experiments: one of the paper's E1..E13 by
// id, or "all" for the full catalog, optionally replicated. The result
// stream carries one JSON line per experiment Result — the same record
// `lynxbench -json` renders.
type ExptJob struct {
	ID       string `json:"id"`
	Reps     int    `json:"reps,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	Parallel int    `json:"parallel,omitempty"`
}

// GridAxis mirrors grid.Axis for the wire: JSON numbers that are whole
// become ints (so keys render "payload=1024", matching in-process
// specs), other numbers stay floats, strings stay strings.
type GridAxis struct {
	Name   string `json:"name"`
	Values []any  `json:"values"`
}

// GridJob runs a configuration grid over a registered body. Bodies are
// server-side (functions cannot travel in JSON): "echo" measures one
// echo round trip per replica over substrate/payload axes.
type GridJob struct {
	Body     string     `json:"body"`
	Axes     []GridAxis `json:"axes"`
	Replicas int        `json:"replicas,omitempty"`
	Seed     uint64     `json:"seed,omitempty"`
	Parallel int        `json:"parallel,omitempty"`
	// Trace engages the flight recorder for every cell run: "full",
	// "sampled" or "counters" ("" = off). The live event stream and ring
	// dumps are served at GET /jobs/{id}/trace as JSONL. Recording never
	// changes results, so — like Parallel — the mode is excluded from
	// the job key and the cell-cache identity.
	Trace string `json:"trace,omitempty"`
}

// LoadJob runs the substrate × offered-rate overload sweep — exactly
// the grid `lynxload -rates` builds, so the streamed result table is
// byte-identical to the CLI run of the same options. Faults optionally
// crosses the sweep with fault scenarios (registered names like
// "drop10" or inline fault-plan strings), mirroring `lynxload -faults`.
type LoadJob struct {
	Substrates []string  `json:"substrates"`
	Rates      []float64 `json:"rates"`
	Window     string    `json:"window,omitempty"` // Go duration, default "1s"
	Mix        string    `json:"mix,omitempty"`    // kind=weight pairs, default load.DefaultMix
	Seed       uint64    `json:"seed,omitempty"`
	Parallel   int       `json:"parallel,omitempty"`
	// SimWorkers is the in-System parallel worker cap
	// (load.SweepOptions.SimWorkers). Like Parallel it never changes
	// results, so it is excluded from the job key and the cell-cache
	// body identity: a SimWorkers=4 job hits the cache entries a
	// SimWorkers=1 job populated.
	SimWorkers int      `json:"sim_workers,omitempty"`
	Faults     []string `json:"faults,omitempty"` // scenario names or inline plans
	// Trace engages the flight recorder for every cell run: "full",
	// "sampled" or "counters" ("" = off). The live event stream and ring
	// dumps are served at GET /jobs/{id}/trace as JSONL. Like
	// SimWorkers, the mode never changes results and is excluded from
	// the job key and the cell-cache body identity: a sampled job hits
	// the cache entries a full-mode (or untraced) job populated.
	Trace string `json:"trace,omitempty"`
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobStatus is the GET /jobs/{id} record (also embedded in submit
// responses and the job list).
type JobStatus struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Client string `json:"client"`
	// Key names the job's workload identity: the overload sweep key for
	// load jobs, body+fingerprint for grid jobs, the experiment id for
	// expt jobs.
	Key             string `json:"key"`
	State           string `json:"state"`
	CancelRequested bool   `json:"cancel_requested,omitempty"`
	Done            int    `json:"progress_done"`
	Total           int    `json:"progress_total"`
	CacheHits       int64  `json:"cache_hits"`
	CacheMisses     int64  `json:"cache_misses"`
	ResultLines     int    `json:"result_lines"`
	TraceLines      int    `json:"trace_lines,omitempty"`
	Error           string `json:"error,omitempty"`
	Submitted       string `json:"submitted"`
}

// job is the daemon-side state of one submission. The stream history
// (lines) is append-only: every subscriber replays it from the start
// and then follows live appends, so a client attaching after completion
// still reads the full deterministic stream.
type job struct {
	id     string
	kind   string
	client string
	key    string

	ctx       context.Context
	cancel    context.CancelFunc
	submitted time.Time
	// run executes the job body; it must end by calling j.finish.
	run func(s *Service, j *job)

	// traced marks a job submitted with a trace mode; GET
	// /jobs/{id}/trace is 404 otherwise.
	traced bool

	mu              sync.Mutex
	state           string
	cancelRequested bool
	// counted guards the service-level terminal-state counters: a job
	// can reach a terminal state from either the worker or a cancel
	// racing it, and must be tallied exactly once.
	counted     bool
	errText     string
	lines       [][]byte
	resultLines int
	changed     chan struct{}
	// traceLines is the append-only trace stream history (event lines
	// and ring-dump lines), replayed+followed by /jobs/{id}/trace
	// subscribers exactly like lines is by /stream subscribers.
	traceLines   [][]byte
	traceChanged chan struct{}
	done         int
	total        int
	cacheHits    int64
	cacheMisses  int64
	// rollup is the per-job pooled metric registry (every cell's
	// instruments under its cell-key prefix), served at
	// /jobs/{id}/metrics.
	rollup *obs.Metrics
}

func newJob(id, kind, client, key string, now time.Time) *job {
	ctx, cancel := context.WithCancel(context.Background())
	return &job{
		id: id, kind: kind, client: client, key: key,
		ctx: ctx, cancel: cancel, submitted: now,
		state: StateQueued, changed: make(chan struct{}),
		traceChanged: make(chan struct{}),
	}
}

// append adds one stream line (no trailing newline) and wakes
// subscribers.
func (j *job) append(line []byte) {
	j.mu.Lock()
	j.lines = append(j.lines, line)
	close(j.changed)
	j.changed = make(chan struct{})
	j.mu.Unlock()
}

// emit marshals an envelope record onto the stream.
func (j *job) emit(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	j.append(b)
}

// appendTrace adds trace stream lines (no trailing newlines) in one
// lock acquisition — a multi-line ring dump lands atomically — and
// wakes trace subscribers.
func (j *job) appendTrace(lines [][]byte) {
	if len(lines) == 0 {
		return
	}
	j.mu.Lock()
	j.traceLines = append(j.traceLines, lines...)
	close(j.traceChanged)
	j.traceChanged = make(chan struct{})
	j.mu.Unlock()
}

// jobTraceSink adapts the job trace stream to obs.Sink: each exported
// event becomes one JSONL line. Marshalling happens outside the job
// lock, so concurrent cells of a parallel sweep can export at once —
// lines from different cells interleave, but each line is whole.
type jobTraceSink struct{ j *job }

func (t jobTraceSink) Event(ev obs.Event) {
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	t.j.appendTrace([][]byte{b})
}

// jobTraceWriter adapts the job trace stream to io.Writer for ring
// dumps: the buffer (one dump = one Write, by the flight recorder's
// dump contract) is split into lines and appended atomically. Bytes
// are copied — the recorder reuses its dump buffer.
type jobTraceWriter struct{ j *job }

func (t jobTraceWriter) Write(p []byte) (int, error) {
	var lines [][]byte
	for _, ln := range strings.Split(strings.TrimRight(string(p), "\n"), "\n") {
		if ln != "" {
			lines = append(lines, []byte(ln))
		}
	}
	t.j.appendTrace(lines)
	return len(p), nil
}

// traceConfig builds the flight thread-through config wiring a job's
// trace destinations (nil for mode Off).
func (j *job) traceConfig(mode flight.Mode) *flight.Config {
	if mode == flight.Off {
		return nil
	}
	return &flight.Config{
		Mode:   mode,
		Sink:   jobTraceSink{j},
		DumpTo: jobTraceWriter{j},
	}
}

// envelope is the typed stream record. Verbatim result lines carry no
// "type" key; everything else on the stream is an envelope.
type envelope struct {
	Type        string `json:"type"`
	ID          string `json:"id,omitempty"`
	Kind        string `json:"kind,omitempty"`
	Key         string `json:"key,omitempty"`
	State       string `json:"state,omitempty"`
	Done        int    `json:"done,omitempty"`
	Total       int    `json:"total,omitempty"`
	Lines       int    `json:"lines,omitempty"`
	CacheHits   int64  `json:"cache_hits,omitempty"`
	CacheMisses int64  `json:"cache_misses,omitempty"`
	Error       string `json:"error,omitempty"`
}

// progress records replica completion and emits a progress envelope.
func (j *job) progress(done, total int) {
	j.mu.Lock()
	if done > j.done {
		j.done = done
	}
	j.total = total
	j.mu.Unlock()
	j.emit(envelope{Type: "progress", Done: done, Total: total})
}

// terminal reports whether the job reached a final state.
func (j *job) terminal() bool {
	return j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
}

// finish transitions the job to a terminal state, appending the result
// section (a "result" envelope announcing the verbatim line count, then
// the lines byte-for-byte) and the closing "done" envelope.
func (j *job) finish(state string, result [][]byte, err error) {
	j.mu.Lock()
	if j.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	if err != nil {
		j.errText = err.Error()
	}
	j.resultLines = len(result)
	hits, misses := j.cacheHits, j.cacheMisses
	if len(result) > 0 {
		head, _ := json.Marshal(envelope{Type: "result", Lines: len(result)})
		j.lines = append(j.lines, head)
		j.lines = append(j.lines, result...)
	}
	tail, _ := json.Marshal(envelope{
		Type: "done", State: state, Error: j.errText,
		CacheHits: hits, CacheMisses: misses,
	})
	j.lines = append(j.lines, tail)
	close(j.changed)
	j.changed = make(chan struct{})
	// Wake trace followers too: they return at terminal state and would
	// otherwise wait for a trace line that never comes.
	close(j.traceChanged)
	j.traceChanged = make(chan struct{})
	j.mu.Unlock()
}

// status snapshots the job for the HTTP status endpoints.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.id, Kind: j.kind, Client: j.client, Key: j.key,
		State: j.state, CancelRequested: j.cancelRequested,
		Done: j.done, Total: j.total,
		CacheHits: j.cacheHits, CacheMisses: j.cacheMisses,
		ResultLines: j.resultLines, TraceLines: len(j.traceLines),
		Error:     j.errText,
		Submitted: j.submitted.UTC().Format(time.RFC3339Nano),
	}
}

// splitLines turns a rendered multi-line string into stream lines.
func splitLines(s string) [][]byte {
	s = strings.TrimRight(s, "\n")
	if s == "" {
		return nil
	}
	parts := strings.Split(s, "\n")
	out := make([][]byte, len(parts))
	for i, p := range parts {
		out[i] = []byte(p)
	}
	return out
}

// buildJob validates a request and constructs the runnable job.
func (s *Service) buildJob(req JobRequest, client string, now time.Time) (*job, error) {
	if req.Client != "" {
		client = req.Client
	}
	switch req.Kind {
	case "expt":
		if req.Expt == nil {
			return nil, fmt.Errorf("kind %q needs an %q block", "expt", "expt")
		}
		return buildExptJob(*req.Expt, client, now)
	case "grid":
		if req.Grid == nil {
			return nil, fmt.Errorf("kind %q needs a %q block", "grid", "grid")
		}
		return s.buildGridJob(*req.Grid, client, now)
	case "load":
		if req.Load == nil {
			return nil, fmt.Errorf("kind %q needs a %q block", "load", "load")
		}
		return s.buildLoadJob(*req.Load, client, now)
	default:
		return nil, fmt.Errorf("unknown job kind %q (want expt, grid or load)", req.Kind)
	}
}

// buildExptJob validates and constructs a catalog-experiment job.
// Experiment runs are not cell-cached (they flow through the expt
// harness, not the grid runner); cancellation is honored while queued
// and between experiments of an "all" run.
func buildExptJob(spec ExptJob, client string, now time.Time) (*job, error) {
	id := strings.ToUpper(strings.TrimSpace(spec.ID))
	all := strings.EqualFold(spec.ID, "all")
	if !all {
		found := false
		for _, e := range expt.Catalog() {
			if strings.EqualFold(e.ID, id) {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown experiment %q (want E1..E%d or all)", spec.ID, len(expt.Catalog()))
		}
	}
	opts := expt.Options{Parallel: spec.Parallel, Reps: spec.Reps, RootSeed: spec.Seed}
	key := fmt.Sprintf("expt:%s reps=%d seed=%d", strings.ToLower(id), max(1, spec.Reps), defaultSeed(spec.Seed))
	j := newJob("", "expt", client, key, now)
	j.run = func(s *Service, j *job) {
		if j.ctx.Err() != nil {
			j.finish(StateCanceled, nil, j.ctx.Err())
			return
		}
		var results []*expt.Result
		if all {
			results = expt.AllWith(opts)
		} else {
			results = []*expt.Result{expt.ByIDWith(id, opts)}
		}
		lines := make([][]byte, 0, len(results))
		for _, r := range results {
			b, err := json.Marshal(r)
			if err != nil {
				j.finish(StateFailed, nil, err)
				return
			}
			lines = append(lines, b)
		}
		j.progress(len(results), len(results))
		j.finish(StateDone, lines, nil)
	}
	return j, nil
}

// buildLoadJob validates and constructs an overload-sweep job.
func (s *Service) buildLoadJob(spec LoadJob, client string, now time.Time) (*job, error) {
	subs := make([]lynx.Substrate, 0, len(spec.Substrates))
	for _, name := range spec.Substrates {
		sub, err := lynx.ParseSubstrate(name)
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
	}
	window := lynx.Duration(0)
	if spec.Window != "" {
		d, err := time.ParseDuration(spec.Window)
		if err != nil {
			return nil, fmt.Errorf("bad window %q: %v", spec.Window, err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("window must be positive, got %s", d)
		}
		window = lynx.Duration(d)
	}
	var mix *load.Mix
	if spec.Mix != "" {
		m, err := load.ParseMix(spec.Mix)
		if err != nil {
			return nil, err
		}
		mix = m
	}
	var plans []*fault.Plan
	for _, f := range spec.Faults {
		p, err := fault.ParseScenario(f)
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	opts := load.SweepOptions{
		Substrates: subs,
		Rates:      spec.Rates,
		Window:     window,
		Mix:        mix,
		Seed:       spec.Seed,
		Parallel:   spec.Parallel,
		SimWorkers: spec.SimWorkers,
		Faults:     plans,
	}
	mode, err := flight.ParseMode(spec.Trace)
	if err != nil {
		return nil, err
	}
	// Validate eagerly so submit reports bad specs as 400, not as a
	// failed job.
	if _, err := load.SweepSpec(opts); err != nil {
		return nil, err
	}
	key := opts.Key()
	// Everything outside the axes that shapes a cell's result belongs in
	// the cache body identity; the seed-bearing parts are keyed per cell.
	// The trace mode is deliberately absent from both the key and the
	// body identity: recording never changes results, so a sampled job
	// must hit the cells a full-mode or untraced job populated.
	bodyID := fmt.Sprintf("load|window=%s|mix=%s",
		keyField(key, "window"), keyField(key, "mix"))
	j := newJob("", "load", client, key, now)
	j.traced = mode != flight.Off
	j.run = func(s *Service, j *job) {
		o := opts
		o.Hook = s.cacheHook(j, bodyID, 1, defaultSeed(o.Seed))
		o.Progress = j.progress
		o.Trace = j.traceConfig(mode)
		gspec, err := load.SweepSpec(o)
		if err != nil {
			j.finish(StateFailed, nil, err)
			return
		}
		tbl := grid.Run(gspec)
		s.finishGridJob(j, tbl)
	}
	return j, nil
}

// keyField extracts "name=value" values from a canonical sweep key.
func keyField(key, name string) string {
	for _, part := range strings.Fields(key) {
		if v, ok := strings.CutPrefix(part, name+"="); ok {
			return v
		}
	}
	return ""
}

// buildGridJob validates and constructs a declarative-grid job. Bodies
// come from the shared load.GridBodies registry, so a grid submitted
// to the daemon runs the same cell function cmd/lynxload runs
// in-process.
func (s *Service) buildGridJob(spec GridJob, client string, now time.Time) (*job, error) {
	bodies := load.GridBodies()
	bdef, ok := bodies[spec.Body]
	if !ok {
		names := make([]string, 0, len(bodies))
		for n := range bodies {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("unknown grid body %q (have %s)", spec.Body, strings.Join(names, ", "))
	}
	if spec.Replicas < 0 {
		return nil, fmt.Errorf("negative replicas %d", spec.Replicas)
	}
	axes := make([]grid.Axis, 0, len(spec.Axes))
	seen := map[string]bool{}
	for _, a := range spec.Axes {
		if a.Name == "" || len(a.Values) == 0 {
			return nil, fmt.Errorf("axis needs a name and at least one value")
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
		vals := make([]any, len(a.Values))
		for i, v := range a.Values {
			vals[i] = normalizeAxisValue(v)
		}
		axes = append(axes, grid.Axis{Name: a.Name, Values: vals})
	}
	for _, want := range bdef.Axes {
		if !seen[want] {
			return nil, fmt.Errorf("body %q needs axis %q", spec.Body, want)
		}
	}
	// Validate every cell's axis values up front (substrate names,
	// integer payloads) so bad specs fail the submit, not the run.
	if err := validateCells(spec.Body, axes); err != nil {
		return nil, err
	}
	mode, err := flight.ParseMode(spec.Trace)
	if err != nil {
		return nil, err
	}
	gspec := grid.Spec{
		Name:     "lynxd " + spec.Body,
		Axes:     axes,
		Replicas: spec.Replicas,
		Parallel: spec.Parallel,
		RootSeed: spec.Seed,
		Body:     bdef.Body,
	}
	key := fmt.Sprintf("grid:%s seed=%d fp=%s", spec.Body, defaultSeed(spec.Seed), grid.Fingerprint(gspec)[:16])
	bodyID := "grid:" + spec.Body
	j := newJob("", "grid", client, key, now)
	j.traced = mode != flight.Off
	j.run = func(s *Service, j *job) {
		run := gspec
		run.Hook = s.cacheHook(j, bodyID, normReplicas(run.Replicas), defaultSeed(run.RootSeed))
		run.Progress = j.progress
		run.Trace = j.traceConfig(mode)
		tbl := grid.Run(run)
		s.finishGridJob(j, tbl)
	}
	return j, nil
}

// validateCells dry-checks body-specific axis values.
func validateCells(body string, axes []grid.Axis) error {
	for _, a := range axes {
		for _, v := range a.Values {
			switch a.Name {
			case "substrate":
				if _, err := lynx.ParseSubstrate(fmt.Sprint(v)); err != nil {
					return err
				}
			case "payload":
				n, ok := v.(int)
				if !ok || n < 0 {
					return fmt.Errorf("payload axis values must be non-negative integers, got %v", v)
				}
			case "scenario":
				if _, err := fault.ParseScenario(fmt.Sprint(v)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// normalizeAxisValue maps JSON decoding artifacts onto the value types
// in-process specs use: whole float64s become ints (so cell keys render
// "payload=1024" identically in both worlds).
func normalizeAxisValue(v any) any {
	if f, ok := v.(float64); ok && f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return int(f)
	}
	return v
}

func defaultSeed(s uint64) uint64 {
	if s == 0 {
		return 1
	}
	return s
}

func normReplicas(r int) int {
	if r <= 0 {
		return 1
	}
	return r
}
