package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

// collectTrace reads a job's trace stream to completion and returns the
// raw JSONL lines.
func collectTrace(t *testing.T, url, id string) []string {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content-type = %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestTraceEndpointStreamsEventsAndDumps: a sampled-mode load job
// serves its trace at /jobs/{id}/trace — well-formed JSONL where every
// line is either an obs.Event or a {"type":"dump"} ring dump, with at
// least one of each (the load bodies dump the ring at run completion).
func TestTraceEndpointStreamsEventsAndDumps(t *testing.T) {
	_, ts := startService(t, Config{Workers: 1})
	req := loadReq()
	req.Load.Trace = "sampled"
	resp, st := submit(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	final := waitState(t, ts, st.ID, StateDone)
	if final.TraceLines == 0 {
		t.Fatal("finished sampled job reports no trace lines")
	}

	lines := collectTrace(t, ts.URL, st.ID)
	if len(lines) != final.TraceLines {
		t.Fatalf("trace stream = %d lines, status reports %d", len(lines), final.TraceLines)
	}
	events, dumps, dumped := 0, 0, 0
	for i, line := range lines {
		var probe struct {
			Type string `json:"type"`
			Ring int    `json:"ring"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("trace line %d is not JSON: %v", i, err)
		}
		if probe.Type == "dump" {
			dumps++
			dumped = probe.Ring
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %d is not an event: %v", i, err)
		}
		events++
	}
	if events == 0 {
		t.Error("trace carried no sampled events")
	}
	if dumps == 0 || dumped == 0 {
		t.Errorf("trace carried %d dumps (last ring %d), want a non-empty end-of-run dump", dumps, dumped)
	}

	// The trace replays identically for a late subscriber.
	if again := collectTrace(t, ts.URL, st.ID); strings.Join(again, "\n") != strings.Join(lines, "\n") {
		t.Error("late trace subscriber saw a different stream")
	}
}

// TestTraceEndpointRejectsUntracedJob: jobs submitted without a trace
// mode have no trace stream — 404, not an empty 200.
func TestTraceEndpointRejectsUntracedJob(t *testing.T) {
	_, ts := startService(t, Config{Workers: 1})
	_, st := submit(t, ts, loadReq())
	waitState(t, ts, st.ID, StateDone)
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("untraced trace status = %d, want 404", resp.StatusCode)
	}
}

// TestTraceModeValidation: an unknown trace mode fails at submit time.
func TestTraceModeValidation(t *testing.T) {
	_, ts := startService(t, Config{Workers: 1})
	req := loadReq()
	req.Load.Trace = "verbose"
	resp, _ := submit(t, ts, req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad trace mode status = %d, want 400", resp.StatusCode)
	}
}

// TestTraceModeSharesCache: like SimWorkers, the trace mode is an
// observation knob, not a workload parameter — recording never changes
// results, so a sampled job submitted after a full-mode job must be
// served entirely from the cells the first job populated, with the
// identical key and byte-identical table.
func TestTraceModeSharesCache(t *testing.T) {
	_, ts := startService(t, Config{Workers: 1})

	runWith := func(mode string) (JobStatus, []string) {
		req := loadReq()
		req.Load.Trace = mode
		resp, st := submit(t, ts, req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status = %d", resp.StatusCode)
		}
		_, result := collectStream(t, ts, st.ID)
		return waitState(t, ts, st.ID, StateDone), result
	}

	full, fullLines := runWith("full")
	if full.CacheMisses != 2 || full.CacheHits != 0 {
		t.Fatalf("full run cache = %d hits / %d misses, want 0/2", full.CacheHits, full.CacheMisses)
	}

	sampled, sampledLines := runWith("sampled")
	if sampled.CacheHits != 2 || sampled.CacheMisses != 0 {
		t.Fatalf("sampled cache = %d hits / %d misses, want 2/0 (trace mode leaked into the cache identity)",
			sampled.CacheHits, sampled.CacheMisses)
	}
	if sampled.Key != full.Key {
		t.Fatalf("trace mode leaked into the job key:\n%s\nvs\n%s", sampled.Key, full.Key)
	}
	if got, want := strings.Join(sampledLines, "\n"), strings.Join(fullLines, "\n"); got != want {
		t.Fatalf("trace mode changed the table:\n%s\nvs\n%s", got, want)
	}
}
