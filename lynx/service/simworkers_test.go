package service

import (
	"net/http"
	"strings"
	"testing"
)

// TestSimWorkersSharesCache: SimWorkers is an execution hint, not a
// workload parameter — a job at any SimWorkers value must carry the
// same key as the serial job and be served from the cells it cached.
// A SimWorkers=4 sweep submitted after a SimWorkers=1 sweep therefore
// runs nothing: every cell is a cache hit, and the table is
// byte-identical.
func TestSimWorkersSharesCache(t *testing.T) {
	_, ts := startService(t, Config{Workers: 1})

	runWith := func(workers int) (JobStatus, []string) {
		req := loadReq()
		req.Load.SimWorkers = workers
		resp, st := submit(t, ts, req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status = %d", resp.StatusCode)
		}
		_, result := collectStream(t, ts, st.ID)
		return waitState(t, ts, st.ID, StateDone), result
	}

	serial, serialLines := runWith(1)
	if serial.CacheMisses != 2 || serial.CacheHits != 0 {
		t.Fatalf("serial run cache = %d hits / %d misses, want 0/2", serial.CacheHits, serial.CacheMisses)
	}

	wide, wideLines := runWith(4)
	if wide.CacheHits != 2 || wide.CacheMisses != 0 {
		t.Fatalf("SimWorkers=4 cache = %d hits / %d misses, want 2/0 (worker count leaked into the cache identity)",
			wide.CacheHits, wide.CacheMisses)
	}
	if wide.Key != serial.Key {
		t.Fatalf("SimWorkers leaked into the job key:\n%s\nvs\n%s", wide.Key, serial.Key)
	}
	if got, want := strings.Join(wideLines, "\n"), strings.Join(serialLines, "\n"); got != want {
		t.Fatalf("SimWorkers changed the table:\n%s\nvs\n%s", got, want)
	}
}
