package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/lynx/grid"
	"repro/lynx/sweep"
)

// cellCache memoizes completed grid cells across jobs. The key commits
// to everything that determines a cell's aggregate — the body identity
// (workload kind plus every parameter outside the axes), the cell's
// axis-order-independent coordinates, the replica count, and the exact
// replica seeds — so a hit is byte-equivalent to a re-run by
// construction, and repeated or overlapping sweeps only pay for the
// cells they have not seen. Aggregates are stored by reference and must
// never be mutated after insertion (the grid runner's Hook contract).
//
// Eviction is FIFO at a fixed entry bound: the daemon's steady state is
// many clients resubmitting recent sweeps, where insertion order is a
// good-enough recency proxy and the bookkeeping stays O(1).
type cellCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*sweep.Aggregate
	order   []string
	hits    int64
	misses  int64
}

func newCellCache(max int) *cellCache {
	return &cellCache{max: max, entries: map[string]*sweep.Aggregate{}}
}

// cellKey derives the cache key of one cell run: a SHA-256 over the
// body identity, canonical cell coordinates, replica count, and the
// exact seeds grid.Run will hand the replicas. Including the seeds
// makes hits exact rather than heuristic — two sweeps share a cell only
// when the cell would genuinely reproduce byte-identically.
func cellKey(bodyID string, c grid.Cell, replicas int, root uint64) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|R=%d", bodyID, c.CanonicalKey(), replicas)
	for k := 0; k < replicas; k++ {
		fmt.Fprintf(h, "|%d", sweep.CellSeed(root, c.Index, k))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (cc *cellCache) get(key string) (*sweep.Aggregate, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	agg, ok := cc.entries[key]
	if ok {
		cc.hits++
	} else {
		cc.misses++
	}
	return agg, ok
}

func (cc *cellCache) put(key string, agg *sweep.Aggregate) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if _, ok := cc.entries[key]; ok {
		return
	}
	for len(cc.entries) >= cc.max && len(cc.order) > 0 {
		oldest := cc.order[0]
		cc.order = cc.order[1:]
		delete(cc.entries, oldest)
	}
	cc.entries[key] = agg
	cc.order = append(cc.order, key)
}

// stats reports (entries, hits, misses).
func (cc *cellCache) stats() (int, int64, int64) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.entries), cc.hits, cc.misses
}
