package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/expt"
	"repro/lynx"
	"repro/lynx/grid"
	"repro/lynx/load"
)

// startService spins up a daemon plus its HTTP surface for one test.
func startService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// submit POSTs a job request and decodes the response body.
func submit(t *testing.T, ts *httptest.Server, req JobRequest) (*http.Response, JobStatus) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp, st
}

// collectStream reads a job's stream to completion and splits it into
// envelopes and the verbatim result section.
func collectStream(t *testing.T, ts *httptest.Server, id string) (envs []envelope, result []string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pending := 0
	for sc.Scan() {
		line := sc.Text()
		if pending > 0 {
			result = append(result, line)
			pending--
			continue
		}
		var env envelope
		if err := json.Unmarshal([]byte(line), &env); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		envs = append(envs, env)
		if env.Type == "result" {
			pending = env.Lines
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return envs, result
}

// waitState polls a job over HTTP until it reaches want.
func waitState(t *testing.T, ts *httptest.Server, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func doneEnvelope(t *testing.T, envs []envelope) envelope {
	t.Helper()
	for _, e := range envs {
		if e.Type == "done" {
			return e
		}
	}
	t.Fatal("stream carried no done envelope")
	return envelope{}
}

// loadReq is the canonical small overload job used across tests.
func loadReq() JobRequest {
	return JobRequest{Kind: "load", Client: "tester", Load: &LoadJob{
		Substrates: []string{"charlotte"},
		Rates:      []float64{30, 60},
		Window:     "100ms",
		Seed:       1,
	}}
}

// loadWant renders the same sweep through the CLI path (lynx/load +
// grid.Run directly) — the byte-level contract the daemon must match.
func loadWant(t *testing.T) string {
	t.Helper()
	spec, err := load.SweepSpec(load.SweepOptions{
		Substrates: []lynx.Substrate{lynx.Charlotte},
		Rates:      []float64{30, 60},
		Window:     100 * lynx.Millisecond,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimRight(grid.Run(spec).RenderJSONL(), "\n")
}

// The acceptance gate: a daemon load job streams a result table
// byte-identical to the CLI run of the same spec — cold, replayed from
// the cell cache, and at a different worker count.
func TestLoadJobByteIdenticalToCLI(t *testing.T) {
	want := loadWant(t)

	runOnce := func(ts *httptest.Server) (JobStatus, []envelope, []string) {
		resp, st := submit(t, ts, loadReq())
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status = %d", resp.StatusCode)
		}
		envs, result := collectStream(t, ts, st.ID)
		final := waitState(t, ts, st.ID, StateDone)
		return final, envs, result
	}

	_, ts := startService(t, Config{Workers: 1})
	cold, coldEnvs, coldLines := runOnce(ts)
	if got := strings.Join(coldLines, "\n"); got != want {
		t.Fatalf("cold daemon table != CLI table:\n%s\nvs\n%s", got, want)
	}
	if cold.CacheMisses != 2 || cold.CacheHits != 0 {
		t.Fatalf("cold run cache = %d hits / %d misses, want 0/2", cold.CacheHits, cold.CacheMisses)
	}
	if d := doneEnvelope(t, coldEnvs); d.State != StateDone || d.CacheMisses != 2 {
		t.Fatalf("cold done envelope = %+v", d)
	}

	// Same sweep again: served entirely from the cell cache, same bytes.
	hit, _, hitLines := runOnce(ts)
	if got := strings.Join(hitLines, "\n"); got != want {
		t.Fatalf("cache-hit table != CLI table:\n%s\nvs\n%s", got, want)
	}
	if hit.CacheHits != 2 || hit.CacheMisses != 0 {
		t.Fatalf("replay cache = %d hits / %d misses, want 2/0", hit.CacheHits, hit.CacheMisses)
	}

	// A separate daemon with more workers: still the same bytes.
	_, wide := startService(t, Config{Workers: 3})
	_, _, wideLines := runOnce(wide)
	if got := strings.Join(wideLines, "\n"); got != want {
		t.Fatalf("worker count changed the table:\n%s\nvs\n%s", got, want)
	}
}

// An overlapping sweep pays only for the cells it has not seen. Cell
// seeds are positional (stream-split from the cell index), so the
// sharing pattern is extending a sweep: rates [30,60] then [30,60,90]
// reuses the first two cells and computes only the third.
func TestLoadJobOverlappingSweepIsIncremental(t *testing.T) {
	_, ts := startService(t, Config{Workers: 1})
	resp, st := submit(t, ts, loadReq())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	waitState(t, ts, st.ID, StateDone)

	over := loadReq()
	over.Load.Rates = []float64{30, 60, 90} // 30 and 60 cached, 90 fresh
	_, st2 := submit(t, ts, over)
	final := waitState(t, ts, st2.ID, StateDone)
	if final.CacheHits != 2 || final.CacheMisses != 1 {
		t.Fatalf("overlap cache = %d hits / %d misses, want 2/1", final.CacheHits, final.CacheMisses)
	}
}

// A grid job over the server-side echo body streams the same table an
// in-process grid.Run of the equivalent spec renders, and a replay is
// pure cache hits.
func TestGridEchoJobDeterministicAndCached(t *testing.T) {
	direct := grid.Run(grid.Spec{
		Axes: []grid.Axis{
			{Name: "payload", Values: []any{64, 1024}},
			{Name: "substrate", Values: []any{"charlotte", "soda"}},
		},
		Replicas: 2,
		RootSeed: 7,
		Body:     load.GridBodies()["echo"].Body,
	})
	want := strings.TrimRight(direct.RenderJSONL(), "\n")

	req := JobRequest{Kind: "grid", Client: "tester", Grid: &GridJob{
		Body: "echo",
		Axes: []GridAxis{
			{Name: "payload", Values: []any{64, 1024}},
			{Name: "substrate", Values: []any{"charlotte", "soda"}},
		},
		Replicas: 2,
		Seed:     7,
	}}
	_, ts := startService(t, Config{Workers: 2})
	resp, st := submit(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	_, result := collectStream(t, ts, st.ID)
	if got := strings.Join(result, "\n"); got != want {
		t.Fatalf("daemon grid table != in-process table:\n%s\nvs\n%s", got, want)
	}
	final := waitState(t, ts, st.ID, StateDone)
	if final.CacheMisses != 4 || final.CacheHits != 0 {
		t.Fatalf("cold grid cache = %d hits / %d misses, want 0/4", final.CacheHits, final.CacheMisses)
	}
	if final.Total == 0 || final.Done != final.Total {
		t.Fatalf("progress = %d/%d, want complete", final.Done, final.Total)
	}

	_, st2 := submit(t, ts, req)
	_, replay := collectStream(t, ts, st2.ID)
	if got := strings.Join(replay, "\n"); got != want {
		t.Fatalf("cached grid table != in-process table")
	}
	if final2 := waitState(t, ts, st2.ID, StateDone); final2.CacheHits != 4 {
		t.Fatalf("replay cache hits = %d, want 4", final2.CacheHits)
	}

	// The per-job metrics rollup is served once the job is done.
	mresp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("job metrics status = %d", mresp.StatusCode)
	}
}

// An experiment job streams the same record the expt harness produces
// in process.
func TestExptJobMatchesHarness(t *testing.T) {
	wantBytes, err := json.Marshal(expt.ByIDWith("E1", expt.Options{Reps: 2, RootSeed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startService(t, Config{Workers: 1})
	resp, st := submit(t, ts, JobRequest{Kind: "expt", Client: "tester", Expt: &ExptJob{
		ID: "e1", Reps: 2, Seed: 3,
	}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	_, result := collectStream(t, ts, st.ID)
	if len(result) != 1 {
		t.Fatalf("result lines = %d, want 1", len(result))
	}
	if result[0] != string(wantBytes) {
		t.Fatalf("daemon expt record != harness record:\n%s\nvs\n%s", result[0], wantBytes)
	}
}

// blockingJob parks the single worker until release is closed.
func blockingJob(release chan struct{}) *job {
	j := newJob("", "test", "blocker", "block", time.Now())
	j.run = func(s *Service, j *job) {
		select {
		case <-release:
			j.finish(StateDone, nil, nil)
		case <-j.ctx.Done():
			j.finish(StateCanceled, nil, j.ctx.Err())
		}
	}
	return j
}

// Backpressure: with the worker busy and the queue at its bound,
// submissions get 429 plus a Retry-After hint, and succeed again once
// the queue drains.
func TestSubmitBackpressure429(t *testing.T) {
	s, ts := startService(t, Config{Workers: 1, QueueLimit: 1, RetryAfter: 2 * time.Second})
	release := make(chan struct{})
	defer close(release)

	blocker := blockingJob(release)
	if _, err := s.enqueue(blocker); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, blocker.id, StateRunning)

	resp, queued := submit(t, ts, loadReq())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first queued submit status = %d", resp.StatusCode)
	}
	resp2, _ := submit(t, ts, loadReq())
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound submit status = %d, want 429", resp2.StatusCode)
	}
	if got := resp2.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q", got, "2")
	}

	// Drain and verify the lane reopens.
	release <- struct{}{}
	waitState(t, ts, queued.ID, StateDone)
	resp3, _ := submit(t, ts, loadReq())
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain submit status = %d", resp3.StatusCode)
	}
}

// Cancellation: a queued job dies immediately; a running one stops via
// context cancellation, and its stream still terminates with a done
// envelope.
func TestCancelQueuedAndRunning(t *testing.T) {
	s, ts := startService(t, Config{Workers: 1, QueueLimit: 8})
	release := make(chan struct{})
	defer close(release)

	runner := blockingJob(release)
	if _, err := s.enqueue(runner); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, runner.id, StateRunning)

	_, queued := submit(t, ts, loadReq())
	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+queued.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	st := waitState(t, ts, queued.ID, StateCanceled)
	if !st.CancelRequested {
		t.Fatal("canceled job must record cancel_requested")
	}

	// Now the running blocker: DELETE fires its context.
	del2, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+runner.id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(del2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	waitState(t, ts, runner.id, StateCanceled)
	envs, _ := collectStream(t, ts, runner.id)
	if d := doneEnvelope(t, envs); d.State != StateCanceled {
		t.Fatalf("done envelope state = %q, want canceled", d.State)
	}
}

// Validation failures surface as 400 at submit time, not as failed
// jobs.
func TestSubmitValidation(t *testing.T) {
	_, ts := startService(t, Config{Workers: 1})
	cases := []JobRequest{
		{Kind: "nope"},
		{Kind: "expt"},
		{Kind: "expt", Expt: &ExptJob{ID: "E99"}},
		{Kind: "load", Load: &LoadJob{Substrates: []string{"warp"}, Rates: []float64{1}}},
		{Kind: "load", Load: &LoadJob{Substrates: []string{"soda"}, Rates: []float64{1}, Window: "banana"}},
		{Kind: "grid", Grid: &GridJob{Body: "echo", Axes: []GridAxis{{Name: "payload", Values: []any{64}}}}},
		{Kind: "grid", Grid: &GridJob{Body: "mystery"}},
	}
	for i, req := range cases {
		resp, _ := submit(t, ts, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status = %d, want 400", i, resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
		}
	}
}

// The list and service-metrics endpoints reflect submitted work.
func TestListAndMetricsEndpoints(t *testing.T) {
	_, ts := startService(t, Config{Workers: 1})
	_, st := submit(t, ts, loadReq())
	waitState(t, ts, st.ID, StateDone)

	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]int64
	err = json.NewDecoder(mresp.Body).Decode(&snap)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap[MJobsSubmitted] != 1 || snap[MJobsDone] != 1 {
		t.Fatalf("metrics = %v", snap)
	}
	if snap["lynxd_cache_misses"] != 2 {
		t.Fatalf("cache misses = %d, want 2", snap["lynxd_cache_misses"])
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hresp.StatusCode)
	}
}

// Submitting "all" experiments streams one line per catalog entry.
func TestExptAllStreamsWholeCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog run")
	}
	_, ts := startService(t, Config{Workers: 1})
	resp, st := submit(t, ts, JobRequest{Kind: "expt", Expt: &ExptJob{ID: "all", Reps: 1, Seed: 1}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	_, result := collectStream(t, ts, st.ID)
	if want := len(expt.Catalog()); len(result) != want {
		t.Fatalf("result lines = %d, want %d", len(result), want)
	}
	for i, line := range result {
		var r expt.Result
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
	}
}

// Stream subscribers attaching after completion replay the full
// deterministic history.
func TestStreamReplayAfterCompletion(t *testing.T) {
	_, ts := startService(t, Config{Workers: 1})
	_, st := submit(t, ts, loadReq())
	waitState(t, ts, st.ID, StateDone)
	envs1, res1 := collectStream(t, ts, st.ID)
	envs2, res2 := collectStream(t, ts, st.ID)
	if fmt.Sprint(envs1) != fmt.Sprint(envs2) || strings.Join(res1, "\n") != strings.Join(res2, "\n") {
		t.Fatal("late subscribers must replay the identical stream")
	}
}
