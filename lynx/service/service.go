// Package service is lynxd's engine: a resident simulation service
// that accepts experiment and load jobs over a message-style HTTP/JSON
// API, schedules them through a bounded worker pool with fair
// FIFO-per-client queueing and 429 backpressure, memoizes completed
// grid cells so repeated and overlapping sweeps are incremental, and
// streams progress and results back as JSONL.
//
// The paper's lesson — a small message-based interface beats a rich
// one — is applied one level up: the whole API is five verbs over
// JSON lines.
//
//	POST   /jobs             submit (202 + status; 429 + Retry-After when full)
//	GET    /jobs             list job statuses
//	GET    /jobs/{id}        one job's status
//	GET    /jobs/{id}/stream JSONL: envelopes + verbatim result lines (chunked)
//	GET    /jobs/{id}/metrics  per-job pooled obs registry snapshot
//	DELETE /jobs/{id}        cancel (context cancellation; cells are the grain)
//	GET    /metrics          service registry snapshot
//	GET    /healthz          liveness
//
// Determinism is the contract: a job is executed by the same
// lynx/grid + lynx/sweep machinery the CLIs use, with the same
// stream-split seeds, so a daemon-run sweep produces byte-identical
// result tables to the equivalent CLI invocation at any worker count —
// cold or served from the cell cache. The stream frames verbatim
// result lines behind a {"type":"result","lines":N} envelope, so
// clients can extract exactly the CLI bytes.
package service

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/lynx/grid"
	"repro/lynx/sweep"
)

// Service metric names (the /metrics registry).
const (
	MJobsSubmitted = "lynxd_jobs_submitted_total"
	MJobsRejected  = "lynxd_jobs_rejected_total"
	MJobsDone      = "lynxd_jobs_done_total"
	MJobsFailed    = "lynxd_jobs_failed_total"
	MJobsCanceled  = "lynxd_jobs_canceled_total"
	MCacheHits     = "lynxd_cache_hits_total"
	MCacheMisses   = "lynxd_cache_misses_total"
)

// Config parameterizes the service. The zero value is a working
// daemon: GOMAXPROCS workers, a 64-job queue, a 4096-cell cache.
type Config struct {
	// Workers is the number of jobs executed concurrently. Worker count
	// changes throughput only, never results — each job's seeds are
	// stream-split from its own spec.
	Workers int
	// QueueLimit bounds the number of queued (not yet running) jobs;
	// past it, submissions get 429 + Retry-After instead of unbounded
	// queue growth.
	QueueLimit int
	// CacheCells bounds the cell result cache (entries, FIFO eviction).
	CacheCells int
	// RetryAfter is the backpressure hint returned with 429. Default 1s.
	RetryAfter time.Duration
}

func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.CacheCells <= 0 {
		c.CacheCells = 4096
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Service is the resident job engine. Create with New, serve its
// Handler, Close on shutdown.
type Service struct {
	cfg   Config
	queue *fairQueue
	cache *cellCache

	// statsMu guards stats: obs.Metrics is single-writer by design (it
	// lives inside one simulation), so the service keeps its own
	// lock-guarded counters for the concurrent HTTP world.
	statsMu sync.Mutex
	stats   map[string]int64

	// ready carries one token per queued job; its capacity equals the
	// queue bound so push never blocks.
	ready chan struct{}
	quit  chan struct{}
	wg    sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // job ids in submission order, for GET /jobs
	seq    int
	closed bool
}

// New starts a Service: cfg.Workers goroutines draining the fair queue.
func New(cfg Config) *Service {
	cfg = cfg.normalized()
	s := &Service{
		cfg:   cfg,
		queue: newFairQueue(cfg.QueueLimit),
		cache: newCellCache(cfg.CacheCells),
		stats: map[string]int64{},
		ready: make(chan struct{}, cfg.QueueLimit),
		quit:  make(chan struct{}),
		jobs:  map[string]*job{},
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops accepting jobs, cancels everything outstanding, and waits
// for the workers to drain.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
	close(s.quit)
	s.wg.Wait()
	// Queued jobs the workers never picked up terminate as canceled.
	for q := s.queue.pop(); q != nil; q = s.queue.pop() {
		q.finish(StateCanceled, nil, fmt.Errorf("service shut down"))
		s.noteTerminal(q)
	}
}

// worker drains the fair queue until shutdown.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ready:
			j := s.queue.pop()
			if j == nil {
				continue
			}
			s.runJob(j)
		case <-s.quit:
			return
		}
	}
}

// runJob executes one job end to end.
func (s *Service) runJob(j *job) {
	j.mu.Lock()
	if j.terminal() {
		j.mu.Unlock()
		return // canceled while queued
	}
	j.state = StateRunning
	j.mu.Unlock()
	j.emit(envelope{Type: "status", ID: j.id, State: StateRunning})
	j.run(s, j)
	s.noteTerminal(j)
}

// noteTerminal tallies a job's terminal state into the service
// counters exactly once, however the job got there (worker completion
// or a cancel racing one).
func (s *Service) noteTerminal(j *job) {
	j.mu.Lock()
	if j.counted || !j.terminal() {
		j.mu.Unlock()
		return
	}
	j.counted = true
	state := j.state
	j.mu.Unlock()
	switch state {
	case StateDone:
		s.count(MJobsDone)
	case StateFailed:
		s.count(MJobsFailed)
	case StateCanceled:
		s.count(MJobsCanceled)
	}
}

// count bumps one service counter.
func (s *Service) count(name string) {
	s.statsMu.Lock()
	s.stats[name]++
	s.statsMu.Unlock()
}

// statsSnapshot copies the service counters.
func (s *Service) statsSnapshot() map[string]int64 {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	snap := make(map[string]int64, len(s.stats))
	for k, v := range s.stats {
		snap[k] = v
	}
	return snap
}

// cacheHook builds the grid Hook injecting the cell cache into a job's
// run: identical (body, cell, seeds) aggregates are reused, fresh cells
// are computed and stored, and a canceled job context short-circuits
// remaining cells (cancellation's grain is the cell boundary).
func (s *Service) cacheHook(j *job, bodyID string, replicas int, root uint64) func(c grid.Cell, run func() *sweep.Aggregate) *sweep.Aggregate {
	return func(c grid.Cell, run func() *sweep.Aggregate) *sweep.Aggregate {
		if err := j.ctx.Err(); err != nil {
			return &sweep.Aggregate{
				Replicas: replicas,
				Values:   map[string]sweep.Stat{},
				Metrics:  map[string]sweep.Stat{},
				Merged:   obs.NewMetrics(),
				Errs:     []error{err},
			}
		}
		key := cellKey(bodyID, c, replicas, root)
		if agg, ok := s.cache.get(key); ok {
			j.mu.Lock()
			j.cacheHits++
			j.mu.Unlock()
			s.count(MCacheHits)
			return agg
		}
		j.mu.Lock()
		j.cacheMisses++
		j.mu.Unlock()
		s.count(MCacheMisses)
		agg := run()
		if len(agg.Errs) == 0 {
			s.cache.put(key, agg)
		}
		return agg
	}
}

// finishGridJob folds a completed grid table into the job's terminal
// state: canceled if the job context was canceled, failed on the first
// replica error, otherwise done with the table's JSONL rendering as the
// verbatim result section and its pooled registry as the metrics
// rollup.
func (s *Service) finishGridJob(j *job, tbl *grid.Table) {
	if err := j.ctx.Err(); err != nil {
		j.finish(StateCanceled, nil, err)
		return
	}
	if tbl.Errs() > 0 {
		for _, cr := range tbl.Cells {
			if len(cr.Agg.Errs) > 0 {
				j.finish(StateFailed, nil, fmt.Errorf("%s: %v", cr.Cell.Key(), cr.Agg.Errs[0]))
				return
			}
		}
	}
	j.mu.Lock()
	j.rollup = tbl.Merged()
	j.mu.Unlock()
	j.finish(StateDone, splitLines(tbl.RenderJSONL()), nil)
}

// Submit validates, registers, and enqueues a job, returning its
// status. The error is ErrQueueFull when backpressure applies, or a
// validation error.
func (s *Service) Submit(req JobRequest, client string) (JobStatus, error) {
	j, err := s.buildJob(req, client, time.Now())
	if err != nil {
		return JobStatus{}, &badRequestError{err}
	}
	return s.enqueue(j)
}

// ErrQueueFull is returned (wrapped) when the admission queue is at its
// bound; HTTP maps it to 429 + Retry-After.
var ErrQueueFull = fmt.Errorf("queue full")

type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }

// enqueue registers j and admits it to the fair queue.
func (s *Service) enqueue(j *job) (JobStatus, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("service is shutting down")
	}
	s.seq++
	j.id = fmt.Sprintf("j%06d", s.seq)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()

	if !s.queue.push(j.client, j) {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		s.count(MJobsRejected)
		return JobStatus{}, ErrQueueFull
	}
	s.count(MJobsSubmitted)
	j.emit(envelope{Type: "job", ID: j.id, Kind: j.kind, Key: j.key, State: StateQueued})
	s.ready <- struct{}{}
	return j.status(), nil
}

// job looks a job up by id.
func (s *Service) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Cancel requests cancellation of a job: queued jobs terminate
// immediately, running jobs stop at the next cell boundary.
func (s *Service) Cancel(id string) (JobStatus, bool) {
	j := s.job(id)
	if j == nil {
		return JobStatus{}, false
	}
	j.mu.Lock()
	j.cancelRequested = true
	queued := j.state == StateQueued
	j.mu.Unlock()
	j.cancel()
	if queued {
		j.finish(StateCanceled, nil, fmt.Errorf("canceled while queued"))
		s.noteTerminal(j)
	}
	return j.status(), true
}

// Handler returns the HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /jobs/{id}/metrics", s.handleJobMetrics)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// clientKey derives the fair-queue lane from the remote address (the
// host without the port, so one machine is one lane by default).
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || host == "" {
		return r.RemoteAddr
	}
	return host
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad job request: %v", err)
		return
	}
	st, err := s.Submit(req, clientKey(r))
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case err == ErrQueueFull:
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests, "queue full (%d jobs pending); retry later", s.cfg.QueueLimit)
	default:
		if _, ok := err.(*badRequestError); ok {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	rollup := j.rollup
	j.mu.Unlock()
	if rollup == nil {
		writeError(w, http.StatusNotFound, "job %s has no metrics rollup (not finished, failed, or not a grid job)", j.id)
		return
	}
	writeJSON(w, http.StatusOK, rollup.Snapshot())
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	entries, hits, misses := s.cache.stats()
	snap := s.statsSnapshot()
	snap["lynxd_cache_entries"] = int64(entries)
	snap["lynxd_cache_hits"] = hits
	snap["lynxd_cache_misses"] = misses
	snap["lynxd_queue_depth"] = int64(s.queue.depth())
	writeJSON(w, http.StatusOK, snap)
}

// handleTrace streams the job's flight-recorder trace as JSONL: replay
// of everything recorded so far, then live follow until the job reaches
// a terminal state or the client hangs up. Only jobs submitted with a
// trace mode have a trace; others get 404.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if !j.traced {
		writeError(w, http.StatusNotFound, "job %s was not submitted with a trace mode", j.id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	fl, _ := w.(http.Flusher)
	i := 0
	for {
		j.mu.Lock()
		lines := j.traceLines[i:]
		i = len(j.traceLines)
		terminal := j.terminal()
		changed := j.traceChanged
		j.mu.Unlock()
		for _, ln := range lines {
			// Two writes, never append(ln, '\n'): trace lines are shared
			// across subscribers and must not be mutated.
			if _, err := w.Write(ln); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
		}
		if len(lines) > 0 && fl != nil {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleStream replays the job's full line history and then follows
// live appends as chunked JSONL, flushing after every batch so clients
// see progress as it happens; it returns when the job reaches a
// terminal state (after emitting its "done" envelope) or the client
// hangs up.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	fl, _ := w.(http.Flusher)
	i := 0
	for {
		j.mu.Lock()
		lines := j.lines[i:]
		i = len(j.lines)
		terminal := j.terminal()
		changed := j.changed
		j.mu.Unlock()
		for _, ln := range lines {
			// Two writes, not append(ln, '\n'): lines are shared across
			// subscribers and must never be mutated (append could write
			// into spare capacity of the shared backing array).
			if _, err := w.Write(ln); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
		}
		if len(lines) > 0 && fl != nil {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
