package service

import (
	"fmt"
	"testing"

	"repro/lynx/sweep"
)

func TestCellCacheHitMissAndStats(t *testing.T) {
	cc := newCellCache(4)
	if _, ok := cc.get("k1"); ok {
		t.Fatal("empty cache must miss")
	}
	agg := &sweep.Aggregate{}
	cc.put("k1", agg)
	got, ok := cc.get("k1")
	if !ok || got != agg {
		t.Fatal("cache must return the stored aggregate by reference")
	}
	entries, hits, misses := cc.stats()
	if entries != 1 || hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d, %d, %d), want (1, 1, 1)", entries, hits, misses)
	}
}

func TestCellCacheFIFOEviction(t *testing.T) {
	cc := newCellCache(2)
	for i := 0; i < 3; i++ {
		cc.put(fmt.Sprintf("k%d", i), &sweep.Aggregate{})
	}
	if _, ok := cc.get("k0"); ok {
		t.Fatal("oldest entry must be evicted at the bound")
	}
	for _, k := range []string{"k1", "k2"} {
		if _, ok := cc.get(k); !ok {
			t.Fatalf("entry %s must survive", k)
		}
	}
}

func TestCellCacheDuplicatePutKeepsFirst(t *testing.T) {
	cc := newCellCache(2)
	first := &sweep.Aggregate{}
	cc.put("k", first)
	cc.put("k", &sweep.Aggregate{})
	got, _ := cc.get("k")
	if got != first {
		t.Fatal("duplicate put must keep the first aggregate")
	}
	if entries, _, _ := cc.stats(); entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
}
