package service

import (
	"testing"
	"time"
)

func qjob(id string) *job { return newJob(id, "test", "", "", time.Time{}) }

func TestFairQueueRoundRobin(t *testing.T) {
	q := newFairQueue(10)
	// Client A bursts three jobs before B submits one: B's job must be
	// served one round in, not after A's whole burst.
	for _, id := range []string{"a1", "a2", "a3"} {
		if !q.push("A", qjob(id)) {
			t.Fatalf("push %s failed", id)
		}
	}
	if !q.push("B", qjob("b1")) {
		t.Fatal("push b1 failed")
	}
	var got []string
	for j := q.pop(); j != nil; j = q.pop() {
		got = append(got, j.id)
	}
	want := []string{"a1", "b1", "a2", "a3"}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v", got, want)
		}
	}
	if q.depth() != 0 {
		t.Fatalf("depth = %d after drain", q.depth())
	}
}

func TestFairQueueBound(t *testing.T) {
	q := newFairQueue(2)
	if !q.push("A", qjob("a1")) || !q.push("B", qjob("b1")) {
		t.Fatal("pushes under the bound must succeed")
	}
	if q.push("C", qjob("c1")) {
		t.Fatal("push past the bound must fail")
	}
	q.pop()
	if !q.push("C", qjob("c1")) {
		t.Fatal("push must succeed again after a pop frees a slot")
	}
}

func TestFairQueuePreservesPerClientFIFO(t *testing.T) {
	q := newFairQueue(10)
	q.push("A", qjob("a1"))
	q.push("A", qjob("a2"))
	if got := q.pop().id; got != "a1" {
		t.Fatalf("pop = %s, want a1", got)
	}
	q.push("A", qjob("a3"))
	if got := q.pop().id; got != "a2" {
		t.Fatalf("pop = %s, want a2", got)
	}
	if got := q.pop().id; got != "a3" {
		t.Fatalf("pop = %s, want a3", got)
	}
	if q.pop() != nil {
		t.Fatal("pop on empty queue must return nil")
	}
}
