package service

import "sync"

// fairQueue is the daemon's admission queue: a bounded set of pending
// jobs organized as one FIFO per client, drained round-robin across
// clients. One client submitting a burst of a hundred sweeps cannot
// starve another's single job — the second client's head-of-line job is
// at most one full round away — while each client's own jobs still run
// in submission order. The bound is global: when size reaches limit,
// push fails and the HTTP layer answers 429 with Retry-After instead of
// queueing without bound.
type fairQueue struct {
	mu        sync.Mutex
	limit     int
	size      int
	perClient map[string][]*job
	// ring holds the clients that have pending jobs, in first-seen
	// order; next is the round-robin cursor.
	ring []string
	next int
}

func newFairQueue(limit int) *fairQueue {
	return &fairQueue{limit: limit, perClient: map[string][]*job{}}
}

// push appends j to client's FIFO; false when the global bound is hit.
func (q *fairQueue) push(client string, j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size >= q.limit {
		return false
	}
	if _, ok := q.perClient[client]; !ok {
		q.ring = append(q.ring, client)
	}
	q.perClient[client] = append(q.perClient[client], j)
	q.size++
	return true
}

// pop removes and returns the next job round-robin across clients, or
// nil when the queue is empty.
func (q *fairQueue) pop() *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.ring) == 0 {
		return nil
	}
	if q.next >= len(q.ring) {
		q.next = 0
	}
	client := q.ring[q.next]
	list := q.perClient[client]
	j := list[0]
	if len(list) == 1 {
		delete(q.perClient, client)
		q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		// The cursor now points at the client that followed the removed
		// one (or wraps on the next pop), preserving the rotation.
	} else {
		q.perClient[client] = list[1:]
		q.next++
	}
	q.size--
	return j
}

// depth reports the number of queued jobs.
func (q *fairQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}
