// Package sweep is the deterministic parallel run harness: it fans R
// independent replicas of a simulation out across P worker goroutines
// and aggregates their measurements into per-metric means, percentiles,
// and confidence intervals.
//
// Each lynx.System is single-threaded by construction (the simulation
// kernel hands one token among its procs), but distinct Systems share
// no mutable state, so whole runs are embarrassingly parallel. The
// harness exploits that: replica k receives the seed
// sim.StreamSeed(RootSeed, k) — a stateless splitmix64 stream split —
// so its run is a pure function of (k, RootSeed) no matter which worker
// executes it or in what order, and the aggregate is assembled in
// replica order. Consequently the output is bit-identical for
// Parallel=1 and Parallel=N: parallelism changes wall-clock time and
// nothing else.
//
// Typical use:
//
//	agg := sweep.Sweep(sweep.Options{Replicas: 32, RootSeed: 7},
//	    func(r sweep.Run) sweep.Outcome {
//	        sys := lynx.NewSystem(lynx.Config{Substrate: lynx.Chrysalis, Seed: r.Seed})
//	        ... spawn processes, sys.Run() ...
//	        return sweep.Outcome{
//	            Values:  map[string]float64{"rtt_ms": rtt.Milliseconds()},
//	            Metrics: sys.Metrics(),
//	        }
//	    })
//	st := agg.Values["rtt_ms"]   // Mean, P50/P95/P99, CI95 over 32 replicas
package sweep

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/sim"
)

// Options parameterizes a sweep. The zero value runs one replica with
// root seed 1 on GOMAXPROCS workers.
type Options struct {
	// Replicas is R, the number of independent runs. Default 1.
	Replicas int
	// Parallel is the worker goroutine count. Default GOMAXPROCS;
	// values above Replicas are clamped.
	Parallel int
	// RootSeed seeds the whole sweep; replica k runs with
	// sim.StreamSeed(RootSeed, k). Default 1.
	RootSeed uint64
	// Seeds, when non-nil, overrides the replica→seed derivation: replica
	// k runs with Seeds(k) instead of sim.StreamSeed(RootSeed, k). It
	// must be a pure function of k (no shared mutable state) or the
	// determinism contract breaks. This is the cell-seeding hook the
	// lynx/grid runner uses to hand each grid cell its own seed stream
	// (see CellSeed) while still fanning replicas through Sweep.
	Seeds func(replica int) uint64
	// Progress, when non-nil, is called after each replica's body
	// returns, with the number completed so far and Replicas. With
	// Parallel > 1 calls arrive concurrently from worker goroutines and
	// may be slightly out of order (completed is monotonic per call, not
	// across calls); the callback must be safe for concurrent use and
	// must not influence results — it is observation only, so the
	// determinism contract is unaffected.
	Progress func(completed, total int)
	// Trace, when non-nil, is the flight-recorder configuration handed
	// to every replica via Run.Trace. Like Parallel it is pure
	// observation — recording never changes simulation results — so it
	// is no part of a sweep's identity (cache keys exclude it). Bodies
	// that honor it configure lynx.Config.Trace from its mode fields and
	// attach its Sink/DumpTo to the System's flight recorder; with
	// Parallel > 1 those destinations receive events from several
	// replicas concurrently and must serialize internally (the lynxd job
	// trace writer does).
	Trace *flight.Config
}

// CellSeed derives the seed of replica rep of grid cell c under root: a
// two-level stateless stream split, so the seed depends only on
// (root, cell, replica) and never on worker scheduling. Pass
// Options{Seeds: func(k int) uint64 { return CellSeed(root, c, k) }}
// to run one cell of a keyed configuration grid.
func CellSeed(root uint64, cell, rep int) uint64 {
	return sim.StreamSeed2(root, uint64(cell), uint64(rep))
}

// normalized fills in defaults.
func (o Options) normalized() Options {
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.Parallel > o.Replicas {
		o.Parallel = o.Replicas
	}
	if o.RootSeed == 0 {
		o.RootSeed = 1
	}
	return o
}

// Run identifies one replica: its index and its derived seed. The body
// function must derive ALL randomness from Seed (typically by passing
// it as lynx.Config.Seed) for the determinism contract to hold.
type Run struct {
	Replica int
	Seed    uint64
	// Trace echoes Options.Trace (nil when the sweep is untraced); see
	// there for the contract.
	Trace *flight.Config
}

// Outcome is one replica's report: named scalar measurements, an
// optional metric registry, and an error if the run failed. A failed
// replica's Values/Metrics are still aggregated if present.
type Outcome struct {
	Values  map[string]float64
	Metrics *obs.Metrics
	Err     error
}

// Stat summarizes one named series across replicas: mean, nearest-rank
// percentiles, extrema, and the half-width of the normal-approximation
// 95% confidence interval on the mean (zero when N < 2).
type Stat struct {
	N             int
	Mean          float64
	P50, P95, P99 float64
	Min, Max      float64
	CI95          float64
}

// Aggregate is the sweep's combined result.
type Aggregate struct {
	Replicas int
	RootSeed uint64
	// Values holds a Stat per Outcome.Values key.
	Values map[string]Stat
	// Metrics holds a Stat per metric-snapshot key (counters under
	// their names, histograms as name_count/name_sum_ns/name_max_ns),
	// each series being that key's per-replica values.
	Metrics map[string]Stat
	// Merged pools every replica's registry: counter sums, histogram
	// bucket merges. Quantiles of pooled histograms come from
	// Merged.Histogram(name).Quantile.
	Merged *obs.Metrics
	// Outcomes lists each replica's report in replica order.
	Outcomes []Outcome
	// Errs collects the non-nil replica errors (replica order).
	Errs []error
}

// Sweep runs body for replicas 0..R-1 across the configured workers and
// aggregates the outcomes. body must be safe to call from multiple
// goroutines at once (distinct lynx.Systems are; see the lynx package
// docs for the concurrency contract).
func Sweep(o Options, body func(r Run) Outcome) *Aggregate {
	o = o.normalized()
	seed := o.Seeds
	if seed == nil {
		seed = func(i int) uint64 { return sim.StreamSeed(o.RootSeed, uint64(i)) }
	}
	outcomes := make([]Outcome, o.Replicas)
	var completed atomic.Int64
	runOne := func(i int) {
		outcomes[i] = body(Run{Replica: i, Seed: seed(i), Trace: o.Trace})
		if o.Progress != nil {
			o.Progress(int(completed.Add(1)), o.Replicas)
		}
	}
	if o.Parallel == 1 {
		for i := range outcomes {
			runOne(i)
		}
	} else {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < o.Parallel; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					runOne(i)
				}
			}()
		}
		for i := range outcomes {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	return aggregate(o, outcomes)
}

// aggregate folds replica outcomes into the sweep result, in replica
// order so that every derived number is independent of scheduling.
func aggregate(o Options, outcomes []Outcome) *Aggregate {
	a := &Aggregate{
		Replicas: o.Replicas,
		RootSeed: o.RootSeed,
		Values:   map[string]Stat{},
		Metrics:  map[string]Stat{},
		Merged:   obs.NewMetrics(),
		Outcomes: outcomes,
	}
	valueSeries := map[string][]float64{}
	metricSeries := map[string][]float64{}
	for _, out := range outcomes {
		if out.Err != nil {
			a.Errs = append(a.Errs, out.Err)
		}
		for k, v := range out.Values {
			valueSeries[k] = append(valueSeries[k], v)
		}
		for k, v := range out.Metrics.Snapshot() {
			metricSeries[k] = append(metricSeries[k], float64(v))
		}
		a.Merged.Merge(out.Metrics)
	}
	for k, s := range valueSeries {
		a.Values[k] = Summarize(s)
	}
	for k, s := range metricSeries {
		a.Metrics[k] = Summarize(s)
	}
	return a
}

// Summarize computes the Stat of one series. The series is not
// modified; percentiles are nearest-rank on a sorted copy.
func Summarize(series []float64) Stat {
	n := len(series)
	if n == 0 {
		return Stat{}
	}
	sorted := make([]float64, n)
	copy(sorted, series)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(n)
	st := Stat{
		N:    n,
		Mean: mean,
		Min:  sorted[0],
		Max:  sorted[n-1],
		P50:  rank(sorted, 0.50),
		P95:  rank(sorted, 0.95),
		P99:  rank(sorted, 0.99),
	}
	if n >= 2 {
		var ss float64
		for _, v := range sorted {
			d := v - mean
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(n-1))
		st.CI95 = 1.96 * sd / math.Sqrt(float64(n))
	}
	return st
}

// rank returns the nearest-rank q-quantile of a sorted series.
func rank(sorted []float64, q float64) float64 {
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// String renders a Stat as "mean ±ci [p50 p95 p99]" with three
// significant decimals — the format experiment tables embed. A series
// of fewer than two samples has no confidence interval, so its CI
// renders as "n/a" rather than a spuriously certain ±0.000.
func (s Stat) String() string {
	ci := "n/a"
	if s.N >= 2 {
		ci = fmt.Sprintf("%.3f", s.CI95)
	}
	return fmt.Sprintf("%.3f ±%s [p50 %.3f, p95 %.3f, p99 %.3f]",
		s.Mean, ci, s.P50, s.P95, s.P99)
}

// Render writes the aggregate as a deterministic text report: header,
// then every value and metric stat sorted by name.
func (a *Aggregate) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: R=%d rootseed=%d errors=%d\n", a.Replicas, a.RootSeed, len(a.Errs))
	writeStats(&b, "value", a.Values)
	writeStats(&b, "metric", a.Metrics)
	return b.String()
}

// writeStats renders one stat map sorted by key.
func writeStats(b *strings.Builder, kind string, stats map[string]Stat) {
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(b, "  %s %-40s %s\n", kind, n, stats[n])
	}
}
