package sweep

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/lynx"
)

// echoBody is a real whole-system replica: one RPC echo pair on the
// Chrysalis substrate, measuring the round trip and reporting the run's
// metric registry.
func echoBody(r Run) Outcome {
	sys := lynx.NewSystem(lynx.Config{Substrate: lynx.Chrysalis, Seed: r.Seed})
	var rtt lynx.Duration
	c := sys.Spawn("client", func(th *lynx.Thread, boot []*lynx.End) {
		start := th.Now()
		if _, err := th.Connect(boot[0], "echo", lynx.Msg{Data: []byte("x")}); err != nil {
			return
		}
		rtt = lynx.Duration(th.Now() - start)
		th.Destroy(boot[0])
	})
	s := sys.Spawn("server", func(th *lynx.Thread, boot []*lynx.End) {
		th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
			st.Reply(req, lynx.Msg{Data: req.Data()})
		})
	})
	sys.Join(c, s)
	err := sys.Run()
	return Outcome{
		Values:  map[string]float64{"rtt_ms": rtt.Milliseconds()},
		Metrics: sys.Metrics(),
		Err:     err,
	}
}

// The determinism contract: the aggregate must be byte-identical for
// Parallel=1 and Parallel=8 at the same root seed, replicas included.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	const reps = 12
	serial := Sweep(Options{Replicas: reps, Parallel: 1, RootSeed: 99}, echoBody)
	wide := Sweep(Options{Replicas: reps, Parallel: 8, RootSeed: 99}, echoBody)
	if s, w := serial.Render(), wide.Render(); s != w {
		t.Fatalf("aggregate differs between Parallel=1 and Parallel=8:\n--- serial\n%s\n--- parallel\n%s", s, w)
	}
	for i := range serial.Outcomes {
		if serial.Outcomes[i].Values["rtt_ms"] != wide.Outcomes[i].Values["rtt_ms"] {
			t.Fatalf("replica %d rtt differs across parallelism", i)
		}
	}
	if len(serial.Errs) != 0 {
		t.Fatalf("replica errors: %v", serial.Errs)
	}
}

// Replica seeds are pure functions of (root, index): a sweep at R=4
// must agree with the prefix of a sweep at R=8.
func TestSweepSeedsStableAcrossReplicaCount(t *testing.T) {
	seeds := func(r int) []uint64 {
		var got []uint64
		Sweep(Options{Replicas: r, Parallel: 1, RootSeed: 5}, func(run Run) Outcome {
			got = append(got, run.Seed)
			return Outcome{}
		})
		return got
	}
	four, eight := seeds(4), seeds(8)
	for i := range four {
		if four[i] != eight[i] {
			t.Fatalf("seed %d differs: %#x vs %#x", i, four[i], eight[i])
		}
	}
}

func TestSweepMergedMetrics(t *testing.T) {
	const reps = 5
	agg := Sweep(Options{Replicas: reps, Parallel: 4, RootSeed: 3}, echoBody)
	// The echo exchange is structurally identical in every replica, so
	// the per-replica dual-queue enqueue count is a constant series and
	// the pooled counter is exactly reps times it.
	st, ok := agg.Metrics["queue_enqueues_total"]
	if !ok {
		t.Fatalf("no per-replica stat for queue_enqueues_total; have %d metric stats", len(agg.Metrics))
	}
	if st.N != reps || st.Min == 0 || st.Min != st.Max || st.CI95 != 0 {
		t.Fatalf("per-replica stat = %+v, want N=%d and a constant nonzero series", st, reps)
	}
	pooled := agg.Merged.Value("queue_enqueues_total")
	if pooled != int64(st.Mean)*int64(reps) {
		t.Fatalf("pooled queue_enqueues_total = %d, want %d", pooled, int64(st.Mean)*int64(reps))
	}
}

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{4, 1, 3, 2, 5})
	if st.N != 5 || st.Mean != 3 || st.Min != 1 || st.Max != 5 {
		t.Fatalf("basic stats wrong: %+v", st)
	}
	if st.P50 != 3 || st.P95 != 5 || st.P99 != 5 {
		t.Fatalf("percentiles wrong: %+v", st)
	}
	// sd of 1..5 is sqrt(2.5); CI95 = 1.96*sd/sqrt(5).
	want := 1.96 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(st.CI95-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", st.CI95, want)
	}
	if got := Summarize(nil); got != (Stat{}) {
		t.Fatalf("empty series: %+v", got)
	}
	if got := Summarize([]float64{7}); got.CI95 != 0 || got.Mean != 7 {
		t.Fatalf("singleton series: %+v", got)
	}
}

// The Seeds hook overrides seed derivation per replica; CellSeed is the
// grid runner's two-level split, stable across worker scheduling.
func TestSweepSeedsHook(t *testing.T) {
	const root, cell = uint64(11), 3
	var got []uint64
	Sweep(Options{Replicas: 4, Parallel: 1, Seeds: func(k int) uint64 {
		return CellSeed(root, cell, k)
	}}, func(r Run) Outcome {
		got = append(got, r.Seed)
		return Outcome{}
	})
	for k, s := range got {
		if want := CellSeed(root, cell, k); s != want {
			t.Fatalf("replica %d seed = %#x, want CellSeed %#x", k, s, want)
		}
	}
	// The hook must also feed the parallel path identically.
	wide := Sweep(Options{Replicas: 4, Parallel: 4, Seeds: func(k int) uint64 {
		return CellSeed(root, cell, k)
	}}, func(r Run) Outcome {
		return Outcome{Values: map[string]float64{"seed": float64(r.Seed % 1000)}}
	})
	for k := range got {
		if wide.Outcomes[k].Values["seed"] != float64(got[k]%1000) {
			t.Fatalf("parallel replica %d saw a different seed", k)
		}
	}
}

// A single-replica sweep has no confidence interval: the stat must
// carry CI95=0 and render it as "n/a", never NaN or ±0.000.
func TestSweepSingleReplicaCI(t *testing.T) {
	agg := Sweep(Options{Replicas: 1, Parallel: 1, RootSeed: 2}, echoBody)
	st := agg.Values["rtt_ms"]
	if st.N != 1 {
		t.Fatalf("stat N = %d, want 1", st.N)
	}
	if math.IsNaN(st.CI95) || st.CI95 != 0 {
		t.Fatalf("CI95 = %v, want 0 for a singleton series", st.CI95)
	}
	s := st.String()
	if !strings.Contains(s, "±n/a") {
		t.Fatalf("singleton Stat renders %q, want ±n/a", s)
	}
	if strings.Contains(agg.Render(), "NaN") {
		t.Fatalf("aggregate render contains NaN:\n%s", agg.Render())
	}
	// Two replicas DO have a CI and render it numerically.
	if s := Summarize([]float64{1, 2}).String(); strings.Contains(s, "n/a") {
		t.Fatalf("two-sample stat should render a numeric CI, got %q", s)
	}
}

// Failed replicas surface in Errs but do not poison aggregation.
func TestSweepCollectsErrors(t *testing.T) {
	agg := Sweep(Options{Replicas: 4, Parallel: 2}, func(r Run) Outcome {
		if r.Replica%2 == 1 {
			return Outcome{Err: fmt.Errorf("replica %d failed", r.Replica)}
		}
		return Outcome{Values: map[string]float64{"v": 1}}
	})
	if len(agg.Errs) != 2 {
		t.Fatalf("errs = %v, want 2", agg.Errs)
	}
	if agg.Values["v"].N != 2 {
		t.Fatalf("value stat over surviving replicas: %+v", agg.Values["v"])
	}
}

// Progress fires once per replica with a monotonic completed count and
// never perturbs the aggregate (observation only).
func TestSweepProgress(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	agg := Sweep(Options{Replicas: 8, Parallel: 4, Progress: func(completed, total int) {
		if total != 8 {
			t.Errorf("total = %d, want 8", total)
		}
		mu.Lock()
		seen = append(seen, completed)
		mu.Unlock()
	}}, func(r Run) Outcome {
		return Outcome{Values: map[string]float64{"seed": float64(r.Seed % 1000)}}
	})
	if len(seen) != 8 {
		t.Fatalf("progress called %d times, want 8", len(seen))
	}
	sort.Ints(seen)
	for i, c := range seen {
		if c != i+1 {
			t.Fatalf("completed counts = %v, want a permutation of 1..8", seen)
		}
	}
	want := Sweep(Options{Replicas: 8, Parallel: 1}, func(r Run) Outcome {
		return Outcome{Values: map[string]float64{"seed": float64(r.Seed % 1000)}}
	})
	if agg.Values["seed"] != want.Values["seed"] {
		t.Fatal("progress callback changed the aggregate")
	}
}
