package lynx_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/lynx"
)

// TestLaunchDynamicProcess exercises §2's "compiled and loaded at
// disparate times": a running process launches new worker processes
// mid-run and talks to them over fresh boot links.
func TestLaunchDynamicProcess(t *testing.T) {
	allSubstrates(t, func(t *testing.T, sub lynx.Substrate) {
		sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 1})
		var results []string
		boss := sys.Spawn("boss", func(th *lynx.Thread, boot []*lynx.End) {
			for i := 0; i < 3; i++ {
				name := fmt.Sprint("worker", i)
				link, ref := sys.Launch(th, name, func(wt *lynx.Thread, wboot []*lynx.End) {
					wt.Serve(wboot[0], func(st *lynx.Thread, req *lynx.Request) {
						st.Reply(req, lynx.Msg{Data: append(req.Data(), '!')})
					})
				})
				if ref.Name() != name {
					t.Errorf("child name %q", ref.Name())
				}
				reply, err := th.Connect(link, "work", lynx.Msg{Data: []byte(name)})
				if err != nil {
					t.Errorf("call %s: %v", name, err)
					continue
				}
				results = append(results, string(reply.Data))
				th.Destroy(link)
			}
		})
		_ = boss
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(results) != "[worker0! worker1! worker2!]" {
			t.Fatalf("results %v", results)
		}
	})
}

// TestLaunchedProcessCanLaunch: children can themselves play loader
// (recursively-built process trees).
func TestLaunchedProcessCanLaunch(t *testing.T) {
	sys := lynx.NewSystem(lynx.Config{Substrate: lynx.Chrysalis, Seed: 2})
	var deepest string
	root := sys.Spawn("root", func(th *lynx.Thread, boot []*lynx.End) {
		link, _ := sys.Launch(th, "mid", func(mt *lynx.Thread, mboot []*lynx.End) {
			leafLink, _ := sys.Launch(mt, "leaf", func(lt *lynx.Thread, lboot []*lynx.End) {
				lt.Serve(lboot[0], func(st *lynx.Thread, req *lynx.Request) {
					st.Reply(req, lynx.Msg{Data: []byte("leaf-reply")})
				})
			})
			mt.Serve(mboot[0], func(st *lynx.Thread, req *lynx.Request) {
				r, err := st.Connect(leafLink, "down", lynx.Msg{})
				if err != nil {
					st.Reply(req, lynx.Msg{Data: []byte("error")})
					return
				}
				st.Reply(req, lynx.Msg{Data: r.Data})
			})
		})
		r, err := th.Connect(link, "ping", lynx.Msg{})
		if err != nil {
			t.Errorf("root call: %v", err)
			return
		}
		deepest = string(r.Data)
		th.Destroy(link)
	})
	_ = root
	if err := sys.RunFor(60 * lynx.Second); err != nil {
		t.Fatal(err)
	}
	if deepest != "leaf-reply" {
		t.Fatalf("deepest = %q", deepest)
	}
}

// TestLaunchGroupWiresSiblings: one LaunchGroup call assembles a
// three-process pipeline mid-run — head wired to a relay, relay wired
// to a sink — and the head reports completion on the launcher link.
// Exercised on every substrate: this is the dynamic-composition surface
// the virtual-time load engine builds its work units with.
func TestLaunchGroupWiresSiblings(t *testing.T) {
	allSubstrates(t, func(t *testing.T, sub lynx.Substrate) {
		sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 11})
		var got string
		boss := sys.Spawn("boss", func(th *lynx.Thread, boot []*lynx.End) {
			specs := []lynx.ProcSpec{
				{Name: "head", Main: func(ht *lynx.Thread, hboot []*lynx.End) {
					// hboot[0] = launcher link, hboot[1] = relay link.
					r, err := ht.Connect(hboot[1], "fwd", lynx.Msg{Data: []byte("ping")})
					ht.Destroy(hboot[1])
					msg := "error"
					if err == nil {
						msg = string(r.Data)
					}
					if _, err := ht.Connect(hboot[0], "done", lynx.Msg{Data: []byte(msg)}); err != nil {
						t.Errorf("done: %v", err)
					}
					ht.Destroy(hboot[0])
				}},
				{Name: "relay", Main: func(rt *lynx.Thread, rboot []*lynx.End) {
					// rboot[0] = head link, rboot[1] = sink link.
					rt.Serve(rboot[0], func(st *lynx.Thread, req *lynx.Request) {
						r, err := st.Connect(rboot[1], "fwd", lynx.Msg{Data: req.Data()})
						if err != nil {
							st.Reply(req, lynx.Msg{Data: []byte("relay-error")})
							return
						}
						st.Reply(req, lynx.Msg{Data: r.Data})
					})
				}},
				{Name: "sink", Main: func(kt *lynx.Thread, kboot []*lynx.End) {
					kt.Serve(kboot[0], func(st *lynx.Thread, req *lynx.Request) {
						st.Reply(req, lynx.Msg{Data: append(req.Data(), []byte("-pong")...)})
					})
				}},
			}
			head, refs := sys.LaunchGroup(th, specs, [][2]int{{0, 1}, {1, 2}})
			if len(refs) != 3 || refs[1].Name() != "relay" {
				t.Errorf("refs: %v", refs)
			}
			req, err := th.Receive(head)
			if err != nil {
				t.Errorf("receive done: %v", err)
				return
			}
			got = string(req.Data())
			th.Reply(req, lynx.Msg{})
		})
		_ = boss
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if got != "ping-pong" {
			t.Fatalf("got %q", got)
		}
	})
}

// TestLaunchUnderPartition pins the home-shard placement contract on
// every substrate: a two-component topology partitions, each
// component's boss then launches workers mid-run (one via Launch, one
// via LaunchGroup) while the other shard is executing, and the JSONL
// trace stays byte-identical at SimWorkers 1, 2, and 4 — the launched
// processes, their kernel ids, node placements, and boot links all
// allocate from the launcher's group, so the worker count never shows.
func TestLaunchUnderPartition(t *testing.T) {
	allSubstrates(t, func(t *testing.T, sub lynx.Substrate) {
		trace := func(workers int) []byte {
			sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 5, SimWorkers: workers})
			var buf bytes.Buffer
			sys.Obs().Attach(&obs.JSONLExporter{W: &buf})

			// Component 0: boss launches two workers one at a time.
			boss0 := sys.Spawn("boss-0", func(th *lynx.Thread, boot []*lynx.End) {
				for i := 0; i < 2; i++ {
					link, _ := sys.Launch(th, fmt.Sprint("w0-", i), func(wt *lynx.Thread, wboot []*lynx.End) {
						wt.Serve(wboot[0], func(st *lynx.Thread, req *lynx.Request) {
							st.Reply(req, lynx.Msg{Data: append(req.Data(), '!')})
						})
					})
					reply, err := th.Connect(link, "work", lynx.Msg{Data: []byte{byte(i)}})
					if err != nil {
						t.Errorf("boss-0 call %d: %v", i, err)
					} else if len(reply.Data) != 2 {
						t.Errorf("boss-0 reply %d: %v", i, reply.Data)
					}
					th.Destroy(link)
				}
				th.Destroy(boot[0])
			})
			peer0 := sys.Spawn("peer-0", func(th *lynx.Thread, boot []*lynx.End) {
				th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
					st.Reply(req, lynx.Msg{})
				})
			})
			sys.Join(boss0, peer0)

			// Component 1: boss assembles a head+sink pair with LaunchGroup.
			boss1 := sys.Spawn("boss-1", func(th *lynx.Thread, boot []*lynx.End) {
				specs := []lynx.ProcSpec{
					{Name: "head", Main: func(ht *lynx.Thread, hboot []*lynx.End) {
						r, err := ht.Connect(hboot[1], "fwd", lynx.Msg{Data: []byte("ping")})
						ht.Destroy(hboot[1])
						msg := "error"
						if err == nil {
							msg = string(r.Data)
						}
						if _, err := ht.Connect(hboot[0], "done", lynx.Msg{Data: []byte(msg)}); err != nil {
							t.Errorf("done: %v", err)
						}
						ht.Destroy(hboot[0])
					}},
					{Name: "sink", Main: func(kt *lynx.Thread, kboot []*lynx.End) {
						kt.Serve(kboot[0], func(st *lynx.Thread, req *lynx.Request) {
							st.Reply(req, lynx.Msg{Data: append(req.Data(), []byte("-pong")...)})
						})
					}},
				}
				head, _ := sys.LaunchGroup(th, specs, [][2]int{{0, 1}})
				req, err := th.Receive(head)
				if err != nil {
					t.Errorf("receive done: %v", err)
					return
				}
				if got := string(req.Data()); got != "ping-pong" {
					t.Errorf("group result %q", got)
				}
				th.Reply(req, lynx.Msg{})
				th.Destroy(boot[0])
			})
			peer1 := sys.Spawn("peer-1", func(th *lynx.Thread, boot []*lynx.End) {
				th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
					st.Reply(req, lynx.Msg{})
				})
			})
			sys.Join(boss1, peer1)

			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if !sys.Partitioned() {
				t.Fatalf("Partitioned() = false at SimWorkers=%d, want true", workers)
			}
			if wantPar := workers > 1; sys.Parallel() != wantPar {
				t.Fatalf("Parallel() = %v at SimWorkers=%d, want %v", sys.Parallel(), workers, wantPar)
			}
			return buf.Bytes()
		}
		base := trace(1)
		if len(base) == 0 {
			t.Fatal("no events emitted")
		}
		for _, workers := range []int{2, 4} {
			if got := trace(workers); !bytes.Equal(got, base) {
				t.Errorf("launch trace differs at SimWorkers=%d: got %d bytes, want %d",
					workers, len(got), len(base))
			}
		}
	})
}

// TestLaunchMovesChildLinkOnward: the launcher hands the child's link to
// a third process (broker pattern with dynamically-created services).
func TestLaunchMovesChildLinkOnward(t *testing.T) {
	sys := lynx.NewSystem(lynx.Config{Substrate: lynx.SODA, Seed: 3})
	var got string
	consumer := sys.Spawn("consumer", func(th *lynx.Thread, boot []*lynx.End) {
		req, err := th.Receive(boot[0])
		if err != nil {
			t.Errorf("receive: %v", err)
			return
		}
		svc := req.Links()[0]
		th.Reply(req, lynx.Msg{})
		r, err := th.Connect(svc, "use", lynx.Msg{})
		if err != nil {
			t.Errorf("use: %v", err)
			return
		}
		got = string(r.Data)
		th.Destroy(svc)
		th.Destroy(boot[0])
	})
	launcher := sys.Spawn("launcher", func(th *lynx.Thread, boot []*lynx.End) {
		link, _ := sys.Launch(th, "service", func(st0 *lynx.Thread, sboot []*lynx.End) {
			st0.Serve(sboot[0], func(st *lynx.Thread, req *lynx.Request) {
				st.Reply(req, lynx.Msg{Data: []byte("dynamic-service")})
			})
		})
		// Move the freshly-launched service's link to the consumer.
		if _, err := th.Connect(boot[0], "take", lynx.Msg{Links: []*lynx.End{link}}); err != nil {
			t.Errorf("move: %v", err)
		}
	})
	sys.Join(launcher, consumer)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "dynamic-service" {
		t.Fatalf("got %q", got)
	}
}
