package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// Parse parses the canonical plan grammar:
//
//	plan    := "none" | event (";" event)*
//	event   := crash(proc,at) | restart(proc,at)
//	         | drop(match,rate[,from,until]) | dup(match,rate[,from,until])
//	         | reorder(match,rate,window[,from,until])
//	         | part(groups,at,heal) | slow(node,factor[,from,until])
//	         | storm(rate[,from,until])
//	match   := "bcast" | node "->" node        (node := int | "*")
//	groups  := group ("|" group)*              (group := run ("." run)*, run := n | a-b)
//	at, from, until, window, heal := Go durations ("40ms", "1.5s")
//	rate    := float (probability for drop/dup/reorder, ×factor for slow,
//	           frames/sec for storm)
//
// storm with one argument defaults to a one-second active window
// (storms must be bounded; see LinkStorm). Parse validates the plan;
// String() of the result is the canonical rendering.
func Parse(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return &Plan{}, nil
	}
	p := &Plan{}
	for _, part := range strings.Split(s, ";") {
		e, err := parseEvent(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		p.Events = append(p.Events, e)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParse is Parse for known-good literals; it panics on error.
func MustParse(s string) *Plan {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

func parseEvent(s string) (Event, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("fault: event %q is not name(args)", s)
	}
	name := s[:open]
	args := strings.Split(s[open+1:len(s)-1], ",")
	for i := range args {
		args[i] = strings.TrimSpace(args[i])
	}
	fail := func(want string) (Event, error) {
		return nil, fmt.Errorf("fault: %s takes %s, got %q", name, want, s)
	}
	switch name {
	case "crash", "restart":
		if len(args) != 2 {
			return fail("(proc,at)")
		}
		at, err := parseDur(args[1])
		if err != nil {
			return nil, err
		}
		if strings.ContainsAny(args[0], "();|") {
			return nil, fmt.Errorf("fault: process name %q contains grammar characters", args[0])
		}
		if name == "crash" {
			return Crash{Proc: args[0], At: at}, nil
		}
		return Restart{Proc: args[0], At: at}, nil
	case "drop", "dup":
		if len(args) != 2 && len(args) != 4 {
			return fail("(match,rate[,from,until])")
		}
		m, err := parseMatch(args[0])
		if err != nil {
			return nil, err
		}
		r, err := parseRate(name, args[1])
		if err != nil {
			return nil, err
		}
		from, until, err := parseWindow(args[2:])
		if err != nil {
			return nil, err
		}
		if name == "drop" {
			return Drop{Match: m, Rate: r, From: from, Until: until}, nil
		}
		return Duplicate{Match: m, Rate: r, From: from, Until: until}, nil
	case "reorder":
		if len(args) != 3 && len(args) != 5 {
			return fail("(match,rate,window[,from,until])")
		}
		m, err := parseMatch(args[0])
		if err != nil {
			return nil, err
		}
		r, err := parseRate(name, args[1])
		if err != nil {
			return nil, err
		}
		w, err := parseDur(args[2])
		if err != nil {
			return nil, err
		}
		from, until, err := parseWindow(args[3:])
		if err != nil {
			return nil, err
		}
		return Reorder{Match: m, Rate: r, Window: w, From: from, Until: until}, nil
	case "part":
		if len(args) != 3 {
			return fail("(groups,at,heal)")
		}
		groups, err := parseGroups(args[0])
		if err != nil {
			return nil, err
		}
		at, err := parseDur(args[1])
		if err != nil {
			return nil, err
		}
		heal, err := parseDur(args[2])
		if err != nil {
			return nil, err
		}
		return Partition{Groups: groups, At: at, Heal: heal}, nil
	case "slow":
		if len(args) != 2 && len(args) != 4 {
			return fail("(node,factor[,from,until])")
		}
		node, err := strconv.Atoi(args[0])
		if err != nil {
			return nil, fmt.Errorf("fault: slow node id %q: %v", args[0], err)
		}
		f, err := parseRate(name, args[1])
		if err != nil {
			return nil, err
		}
		from, until, err := parseWindow(args[2:])
		if err != nil {
			return nil, err
		}
		return SlowNode{Node: node, Factor: f, From: from, Until: until}, nil
	case "storm":
		if len(args) != 1 && len(args) != 3 {
			return fail("(rate[,from,until])")
		}
		r, err := parseRate(name, args[0])
		if err != nil {
			return nil, err
		}
		from, until := sim.Duration(0), sim.Duration(sim.Second)
		if len(args) == 3 {
			if from, until, err = parseWindow(args[1:]); err != nil {
				return nil, err
			}
		}
		return LinkStorm{Rate: r, From: from, Until: until}, nil
	}
	return nil, fmt.Errorf("fault: unknown event %q (want crash|restart|drop|dup|reorder|part|slow|storm)", name)
}

func parseMatch(s string) (Match, error) {
	if s == "bcast" {
		return Match{Bcast: true}, nil
	}
	from, to, ok := strings.Cut(s, "->")
	if !ok {
		return Match{}, fmt.Errorf("fault: match %q is neither bcast nor src->dst", s)
	}
	f, err := parseNode(from)
	if err != nil {
		return Match{}, err
	}
	t, err := parseNode(to)
	if err != nil {
		return Match{}, err
	}
	return Match{From: f, To: t}, nil
}

func parseNode(s string) (int, error) {
	if s == "*" {
		return Any, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("fault: node %q is neither * nor a non-negative int", s)
	}
	return n, nil
}

func parseRate(name, s string) (float64, error) {
	r, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("fault: %s rate %q: %v", name, s, err)
	}
	return r, nil
}

func parseDur(s string) (sim.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("fault: duration %q: %v", s, err)
	}
	return sim.Duration(d), nil
}

// parseWindow parses an optional [from, until] argument pair (empty
// slice means unbounded).
func parseWindow(args []string) (from, until sim.Duration, err error) {
	if len(args) == 0 {
		return 0, 0, nil
	}
	if from, err = parseDur(args[0]); err != nil {
		return 0, 0, err
	}
	if until, err = parseDur(args[1]); err != nil {
		return 0, 0, err
	}
	return from, until, nil
}

// parseGroups parses "0-9|10-19" / "0.3.7|1-2" partition group syntax.
func parseGroups(s string) ([][]int, error) {
	var groups [][]int
	for _, gs := range strings.Split(s, "|") {
		var g []int
		for _, run := range strings.Split(gs, ".") {
			lo, hi, isRange := strings.Cut(run, "-")
			a, err := strconv.Atoi(lo)
			if err != nil {
				return nil, fmt.Errorf("fault: partition node %q: %v", run, err)
			}
			if !isRange {
				g = append(g, a)
				continue
			}
			b, err := strconv.Atoi(hi)
			if err != nil || b < a {
				return nil, fmt.Errorf("fault: partition range %q is not a-b with b >= a", run)
			}
			for n := a; n <= b; n++ {
				g = append(g, n)
			}
		}
		groups = append(groups, g)
	}
	return groups, nil
}

// scenarios is the named scenario registry: short handles for the
// covering set of fault plans used by `lynxload -faults`, the bench
// faults table, and lynxd fault jobs. Every fault type appears at
// least once. Times are tuned for the default overload cell shape
// (rate 40/s, 250ms window, 20 nodes).
var scenarios = []struct{ name, plan string }{
	{"none", "none"},
	{"crash-unit", "crash(u1.*,60ms)"},
	{"churn-gen", "crash(loadgen,60ms);restart(loadgen,90ms)"},
	{"drop10", "drop(*->*,0.1)"},
	{"dup10", "dup(*->*,0.1)"},
	{"reorder1ms", "reorder(*->*,0.25,1ms)"},
	{"part-heal", "part(0-9|10-19,40ms,120ms)"},
	{"slow3x", "slow(3,3)"},
	{"storm2k", "storm(2000,0s,1s)"},
}

// ScenarioNames lists the registered scenario names in canonical order
// (the order the default faults table enumerates).
func ScenarioNames() []string {
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.name
	}
	return names
}

// ParseScenario resolves a registered scenario name, or falls back to
// parsing s as an inline plan in the canonical grammar.
func ParseScenario(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	for _, sc := range scenarios {
		if sc.name == s {
			return Parse(sc.plan)
		}
	}
	return Parse(s)
}
