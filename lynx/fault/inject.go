package fault

import (
	"sort"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Seed-stream tags for the injector's private draws. The injector never
// touches the environment's shared Rand: frame-fate draws and storm
// arrival schedules come from stateless StreamSeed splits of the run
// seed, so adding a fault plan perturbs no other seeded stream and the
// faulted run stays a pure function of (spec, seed).
const (
	faultTag    = 0x464c54 // "FLT": root tag for all fault streams
	frameStream = 0        // frame-fate draws (drop/dup/reorder)
	stormStream = 1        // per-storm arrival schedules
	// Per-group frame streams for a partitioned run start here: child i
	// of Split draws from stream groupStream0+i, disjoint from the serial
	// frameStream by construction.
	groupStream0 = 16
)

// Injector compiles a Plan onto a running simulation. It implements
// netsim.FaultHook for the frame-level rules; process-level events
// (crash/restart) and storm scheduling are driven by virtual-time
// timers the owning system registers at construction.
type Injector struct {
	env    *sim.Env
	plan   *Plan
	seed   uint64
	nodes  int
	rng    *sim.Rand
	counts map[string]int64

	// children are the per-group injectors of a partitioned run (see
	// Split); non-nil only on the parent, whose Counts aggregate them.
	children []*Injector
}

// NewInjector builds an injector for plan over a system with the given
// node count, drawing from stateless child streams of seed. The plan
// must be valid (see Plan.Validate); NewInjector panics otherwise —
// an invalid plan is a configuration error, not a runtime condition.
func NewInjector(env *sim.Env, plan *Plan, seed uint64, nodes int) *Injector {
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	return &Injector{
		env:    env,
		plan:   plan,
		seed:   seed,
		nodes:  nodes,
		rng:    sim.NewRand(sim.StreamSeed2(seed, faultTag, frameStream)),
		counts: map[string]int64{},
	}
}

// Plan returns the compiled plan.
func (in *Injector) Plan() *Plan { return in.plan }

// Split compiles the plan into one child injector per partition group
// of a parallel run. Child i runs on envs[i], keeps its own counters
// (each group's medium segment and churn timers touch only that
// group's child, so no counter is shared across shards), and draws
// frame fates from its own stateless stream — a function of (seed,
// group index) alone, so the fault schedule each group observes is
// identical at every worker count. The parent retains the children
// and aggregates their counters in Counts; after Split the parent
// itself must not be installed as a hook.
func (in *Injector) Split(envs []*sim.Env) []*Injector {
	if in.children != nil {
		panic("fault: Split called twice")
	}
	kids := make([]*Injector, len(envs))
	for i, env := range envs {
		kids[i] = &Injector{
			env:    env,
			plan:   in.plan,
			seed:   in.seed,
			nodes:  in.nodes,
			rng:    sim.NewRand(sim.StreamSeed2(in.seed, faultTag, uint64(groupStream0+i))),
			counts: map[string]int64{},
		}
	}
	in.children = kids
	return kids
}

// Note records one occurrence of a named fault effect (the owning
// system uses it for crash/restart/miss events it fires itself).
func (in *Injector) Note(event string) { in.counts[event]++ }

// Counts returns a copy of the per-effect occurrence counters
// (drop, dup, reorder, partition, slow, storm, crash, restart, miss).
// On the parent of a Split partition it sums the children's counters
// into its own; call it only from serial context (before the run or
// after it ends).
func (in *Injector) Counts() map[string]int64 {
	out := make(map[string]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	for _, kid := range in.children {
		for k, v := range kid.counts {
			out[k] += v
		}
	}
	return out
}

// CountKeys returns the recorded effect names in sorted order, for
// deterministic rendering.
func (in *Injector) CountKeys() []string {
	agg := in.Counts()
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Frame decides the fate of one point-to-point frame. Rules are
// evaluated in plan order; every active, matching probabilistic rule
// consumes exactly one draw (two for a reorder that fires) regardless
// of earlier rules' outcomes, so the draw sequence is a function of the
// frame sequence alone. Broadcast receptions are governed by
// BroadcastLoss, not Frame.
func (in *Injector) Frame(now sim.Time, src, dst netsim.NodeID, nbytes int, wire sim.Duration, broadcast bool) (out netsim.FaultOutcome) {
	if broadcast {
		return out
	}
	elapsed := sim.Duration(now)
	s, d := int(src), int(dst)
	for _, ev := range in.plan.Events {
		switch e := ev.(type) {
		case Drop:
			if e.Match.Bcast || !activeAt(elapsed, e.From, e.Until) || !e.Match.matches(s, d) {
				continue
			}
			if in.rng.Bool(e.Rate) {
				out.Drop = true
				in.counts["drop"]++
			}
		case Duplicate:
			if !activeAt(elapsed, e.From, e.Until) || !e.Match.matches(s, d) {
				continue
			}
			if in.rng.Bool(e.Rate) {
				out.Dup = true
				in.counts["dup"]++
			}
		case Reorder:
			if !activeAt(elapsed, e.From, e.Until) || !e.Match.matches(s, d) {
				continue
			}
			if in.rng.Bool(e.Rate) {
				out.Extra += in.rng.DurationN(e.Window)
				in.counts["reorder"]++
			}
		case Partition:
			if e.cuts(now, s, d) {
				out.Drop = true
				if stall := e.Heal - elapsed; stall > out.Stall {
					out.Stall = stall
				}
				in.counts["partition"]++
			}
		case SlowNode:
			if !activeAt(elapsed, e.From, e.Until) {
				continue
			}
			if s == e.Node || d == e.Node {
				out.Extra += sim.Duration(float64(wire) * (e.Factor - 1))
				in.counts["slow"]++
			}
		}
	}
	return out
}

// BroadcastLoss returns the loss rate the medium should apply to
// broadcast receptions right now: the last active bcast drop rule's
// rate (override semantics — it replaces the medium's default, it does
// not compound with it), or -1 when no rule overrides.
func (in *Injector) BroadcastLoss() float64 {
	elapsed := sim.Duration(in.env.Now())
	rate := -1.0
	for _, ev := range in.plan.Events {
		if e, ok := ev.(Drop); ok && e.Match.Bcast && activeAt(elapsed, e.From, e.Until) {
			rate = e.Rate
		}
	}
	return rate
}

// StartStorms registers the virtual-time timer chains that inject each
// LinkStorm's junk frames into the medium. Each storm frame occupies
// the medium exactly as a real one would (via SendTime, whose
// contention model charges and reserves bandwidth); the result is
// discarded — nothing is delivered. Storm sources rotate round-robin
// over the node set, so no rng draw is spent on placement. Storms are
// validated time-bounded, so the timer chain always terminates.
func (in *Injector) StartStorms(net netsim.Network) {
	if net == nil || in.nodes < 2 {
		return
	}
	for i, ev := range in.plan.Events {
		e, ok := ev.(LinkStorm)
		if !ok {
			continue
		}
		arr := sim.NewArrivalStream(sim.StreamSeed2(in.seed, stormStream, uint64(i)), e.Rate)
		frame := 0
		var schedule func()
		schedule = func() {
			t := sim.Time(e.From) + sim.Time(arr.Next())
			if t >= sim.Time(e.Until) {
				return
			}
			in.env.At(t, func() {
				src := netsim.NodeID(frame % in.nodes)
				dst := netsim.NodeID((frame + 1) % in.nodes)
				frame++
				net.SendTime(in.env.Now(), src, dst, stormFrameBytes)
				in.counts["storm"]++
				schedule()
			})
		}
		schedule()
	}
}

// activeAt reports whether a windowed rule is active at elapsed virtual
// time t (until 0 = forever).
func activeAt(t, from, until sim.Duration) bool {
	return t >= from && (until == 0 || t < until)
}
