// Package fault defines declarative, seed-deterministic fault plans.
//
// A Plan is an ordered schedule of typed fault events — process crashes
// and restarts, probabilistic frame drop/duplication/reorder, timed
// partitions, slow nodes, and link storms — that a lynx.System compiles
// onto hooks in the network simulator and the process table. A faulted
// run remains a pure function of (spec, seed): the injector draws from
// its own stateless seed stream (never the environment's shared Rand),
// every probabilistic rule consumes exactly one draw per matching frame,
// and process-level events fire from ordinary virtual-time timers. The
// same seed therefore yields a byte-identical trace at any parallelism.
//
// Plans have a canonical string grammar (see Parse) so a plan can ride
// on a grid axis: the canonical string is the axis value, which flows
// into grid canonicalization, fingerprints, and the lynxd cell cache
// key unchanged.
package fault

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// Any is the wildcard node id in a Match.
const Any = -1

// Match selects the frames a probabilistic rule applies to: a directed
// (From, To) node pair with Any as wildcard, or — when Bcast is set —
// broadcast receptions (which have no directed pair on a shared
// medium).
type Match struct {
	From, To int
	Bcast    bool
}

// MatchAll matches every point-to-point frame.
func MatchAll() Match { return Match{From: Any, To: Any} }

func (m Match) String() string {
	if m.Bcast {
		return "bcast"
	}
	return nodeStr(m.From) + "->" + nodeStr(m.To)
}

func nodeStr(n int) string {
	if n == Any {
		return "*"
	}
	return fmt.Sprintf("%d", n)
}

func (m Match) matches(src, dst int) bool {
	if m.Bcast {
		return false
	}
	return (m.From == Any || m.From == src) && (m.To == Any || m.To == dst)
}

// Event is one typed entry in a Plan. Concrete types: Crash, Restart,
// Drop, Duplicate, Reorder, Partition, SlowNode, LinkStorm.
type Event interface {
	// String renders the event in the canonical grammar.
	String() string
	// validate reports why the event is ill-formed, or nil.
	validate() error
}

// Crash kills the named process at virtual time At. Proc is an exact
// process name, or a trailing-* prefix pattern ("u1.*") that kills
// every live process whose name matches. A crash that resolves to no
// live process at fire time is counted as a miss, not an error — under
// open-loop load the population at any instant is seed-dependent.
type Crash struct {
	Proc string
	At   sim.Duration
}

func (e Crash) String() string { return fmt.Sprintf("crash(%s,%s)", e.Proc, dur(e.At)) }

func (e Crash) validate() error {
	if e.Proc == "" {
		return fmt.Errorf("crash: empty process name")
	}
	if e.At < 0 {
		return fmt.Errorf("crash(%s): negative time", e.Proc)
	}
	return nil
}

// Restart starts a fresh incarnation of the named process at virtual
// time At: a new process with the same name and main function, empty
// boot links (a restarted process re-acquires capabilities through the
// substrate, it does not inherit the dead incarnation's ends). Proc
// must name a process spec exactly (no wildcard — each restart is one
// incarnation).
type Restart struct {
	Proc string
	At   sim.Duration
}

func (e Restart) String() string { return fmt.Sprintf("restart(%s,%s)", e.Proc, dur(e.At)) }

func (e Restart) validate() error {
	if e.Proc == "" {
		return fmt.Errorf("restart: empty process name")
	}
	if strings.HasSuffix(e.Proc, "*") {
		return fmt.Errorf("restart(%s): wildcard restart is ambiguous; name one process", e.Proc)
	}
	if e.At < 0 {
		return fmt.Errorf("restart(%s): negative time", e.Proc)
	}
	return nil
}

// Drop loses matching frames with probability Rate. Point-to-point
// drops are repaired by the kernel's retransmission machinery (the
// frame is lost, the operation is delayed); a Bcast match instead
// overrides the medium's default broadcast loss rate (replacing, not
// compounding with, netsim.CSMABus.LossRate). From/Until bound the
// active window; Until 0 means forever, which requires Rate < 1 so
// retransmission terminates.
type Drop struct {
	Match       Match
	Rate        float64
	From, Until sim.Duration
}

func (e Drop) String() string { return ruleStr("drop", e.Match, e.Rate, e.From, e.Until) }

func (e Drop) validate() error { return ruleCheck("drop", e.Rate, e.From, e.Until, !e.Match.Bcast) }

// Duplicate ghost-copies matching frames with probability Rate: the
// copy occupies the medium at delivery time and is then discarded by
// the receiver (kernels never double-deliver), so duplication shows up
// as deterministic bandwidth waste and extra contention.
type Duplicate struct {
	Match       Match
	Rate        float64
	From, Until sim.Duration
}

func (e Duplicate) String() string { return ruleStr("dup", e.Match, e.Rate, e.From, e.Until) }

func (e Duplicate) validate() error {
	if e.Match.Bcast {
		return fmt.Errorf("dup: bcast duplication is not modeled (broadcasts already reach every node)")
	}
	if e.Rate < 0 || e.Rate > 1 {
		return fmt.Errorf("dup: rate %g outside [0,1]", e.Rate)
	}
	return windowCheck("dup", e.From, e.Until)
}

// Reorder delays matching frames, with probability Rate, by an extra
// uniform draw in [0, Window) — enough to overtake frames sent later.
type Reorder struct {
	Match       Match
	Rate        float64
	Window      sim.Duration
	From, Until sim.Duration
}

func (e Reorder) String() string {
	s := fmt.Sprintf("reorder(%s,%s,%s", e.Match, rate(e.Rate), dur(e.Window))
	return s + windowStr(e.From, e.Until) + ")"
}

func (e Reorder) validate() error {
	if e.Match.Bcast {
		return fmt.Errorf("reorder: bcast reorder is not modeled")
	}
	if e.Rate < 0 || e.Rate > 1 {
		return fmt.Errorf("reorder: rate %g outside [0,1]", e.Rate)
	}
	if e.Window <= 0 {
		return fmt.Errorf("reorder: window must be positive")
	}
	return windowCheck("reorder", e.From, e.Until)
}

// Partition splits the nodes into Groups during [At, Heal): frames
// crossing a group boundary are dropped (kernels keep retransmitting,
// so traffic resumes after the heal), and on a reliable backplane the
// transfer instead stalls until the heal instant. Broadcasts are not
// partitioned (a shared medium has no boundary to cut); nodes not
// listed in any group are unaffected. Heal must be after At — an
// unhealed partition would retransmit forever.
type Partition struct {
	Groups   [][]int
	At, Heal sim.Duration
}

func (e Partition) String() string {
	gs := make([]string, len(e.Groups))
	for i, g := range e.Groups {
		gs[i] = groupStr(g)
	}
	return fmt.Sprintf("part(%s,%s,%s)", strings.Join(gs, "|"), dur(e.At), dur(e.Heal))
}

func (e Partition) validate() error {
	if len(e.Groups) < 2 {
		return fmt.Errorf("part: need at least two groups")
	}
	seen := map[int]bool{}
	for _, g := range e.Groups {
		if len(g) == 0 {
			return fmt.Errorf("part: empty group")
		}
		for _, n := range g {
			if n < 0 {
				return fmt.Errorf("part: negative node id %d", n)
			}
			if seen[n] {
				return fmt.Errorf("part: node %d in two groups", n)
			}
			seen[n] = true
		}
	}
	if e.Heal <= e.At {
		return fmt.Errorf("part: heal (%s) must be after at (%s)", dur(e.Heal), dur(e.At))
	}
	return nil
}

// active reports whether the partition cuts src from dst at time now.
func (e Partition) cuts(now sim.Time, src, dst int) bool {
	if sim.Duration(now) < e.At || sim.Duration(now) >= e.Heal {
		return false
	}
	gs, gd := e.groupOf(src), e.groupOf(dst)
	return gs >= 0 && gd >= 0 && gs != gd
}

func (e Partition) groupOf(n int) int {
	for i, g := range e.Groups {
		for _, m := range g {
			if m == n {
				return i
			}
		}
	}
	return -1
}

// SlowNode multiplies the wire time of frames to or from Node by
// Factor (>= 1) — a degraded NIC or an overloaded host, modeled as
// extra latency without extra medium occupancy.
type SlowNode struct {
	Node        int
	Factor      float64
	From, Until sim.Duration
}

func (e SlowNode) String() string {
	return fmt.Sprintf("slow(%d,%s%s)", e.Node, rate(e.Factor), windowStr(e.From, e.Until))
}

func (e SlowNode) validate() error {
	if e.Node < 0 {
		return fmt.Errorf("slow: negative node id")
	}
	if e.Factor < 1 {
		return fmt.Errorf("slow: factor %g < 1 (a fast node is not a fault)", e.Factor)
	}
	return windowCheck("slow", e.From, e.Until)
}

// LinkStorm injects 64-byte junk frames into the shared medium at Rate
// frames per virtual second (Poisson gaps from a private stream),
// occupying bandwidth that real traffic must contend with. A storm must
// be time-bounded — an unbounded storm's self-rescheduling timer would
// keep the simulation's clock advancing forever after the last process
// exits — so Until > From is required (Parse defaults a one-second
// bound). On a contention-free backplane a storm has no effect.
type LinkStorm struct {
	Rate        float64
	From, Until sim.Duration
}

// stormFrameBytes is the size of one injected junk frame.
const stormFrameBytes = 64

func (e LinkStorm) String() string {
	return fmt.Sprintf("storm(%s,%s,%s)", rate(e.Rate), dur(e.From), dur(e.Until))
}

func (e LinkStorm) validate() error {
	if e.Rate <= 0 {
		return fmt.Errorf("storm: rate must be positive")
	}
	if e.From < 0 || e.Until <= e.From {
		return fmt.Errorf("storm: requires a bounded window (until > from)")
	}
	return nil
}

// Plan is an ordered, seed-deterministic schedule of fault events. The
// zero Plan (and nil) injects nothing. Event order is significant only
// for rule evaluation order (each frame consults rules in plan order);
// timed events fire at their own instants regardless of position.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// String renders the plan in the canonical grammar: events joined by
// ";", or "none" for an empty plan. Parse(p.String()) round-trips.
func (p *Plan) String() string {
	if p.Empty() {
		return "none"
	}
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// Validate reports the first ill-formed event, or nil.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, e := range p.Events {
		if err := e.validate(); err != nil {
			return fmt.Errorf("fault: %w", err)
		}
	}
	return nil
}

// Churns reports whether the plan kills or restarts processes — the
// scenarios under which a load window may complete fewer units than
// arrived (shape checks relax accordingly).
func (p *Plan) Churns() bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		switch e.(type) {
		case Crash, Restart:
			return true
		}
	}
	return false
}

// BroadcastLoss builds the one-rule plan that overrides the medium's
// broadcast loss rate — the declarative replacement for setting
// netsim.CSMABus.LossRate directly. Point-to-point frames are
// untouched, so a run under BroadcastLoss(r) is byte-identical to one
// under the deprecated raw field.
func BroadcastLoss(rate float64) *Plan {
	return &Plan{Events: []Event{Drop{Match: Match{Bcast: true}, Rate: rate}}}
}

// --- shared rendering helpers ---

// dur renders a virtual duration via time.Duration formatting (the
// parseable inverse of time.ParseDuration).
func dur(d sim.Duration) string { return time.Duration(d).String() }

// rate renders a probability or factor minimally (%g).
func rate(r float64) string { return fmt.Sprintf("%g", r) }

// windowStr renders an optional ",from,until" suffix, omitted when the
// rule is unbounded.
func windowStr(from, until sim.Duration) string {
	if from == 0 && until == 0 {
		return ""
	}
	return "," + dur(from) + "," + dur(until)
}

func ruleStr(name string, m Match, r float64, from, until sim.Duration) string {
	return fmt.Sprintf("%s(%s,%s%s)", name, m, rate(r), windowStr(from, until))
}

func ruleCheck(name string, r float64, from, until sim.Duration, retransmitted bool) error {
	if r < 0 || r > 1 {
		return fmt.Errorf("%s: rate %g outside [0,1]", name, r)
	}
	if retransmitted && r >= 1 && until == 0 {
		return fmt.Errorf("%s: rate 1 forever would retransmit forever; bound the window", name)
	}
	return windowCheck(name, from, until)
}

func windowCheck(name string, from, until sim.Duration) error {
	if from < 0 || until < 0 {
		return fmt.Errorf("%s: negative window bound", name)
	}
	if until != 0 && until <= from {
		return fmt.Errorf("%s: until (%s) must be after from (%s)", name, dur(until), dur(from))
	}
	return nil
}

// groupStr renders a node set canonically: sorted, consecutive runs
// collapsed to a-b ranges, runs joined by ".".
func groupStr(g []int) string {
	ns := append([]int(nil), g...)
	sort.Ints(ns)
	var parts []string
	for i := 0; i < len(ns); {
		j := i
		for j+1 < len(ns) && ns[j+1] == ns[j]+1 {
			j++
		}
		switch {
		case j == i:
			parts = append(parts, fmt.Sprintf("%d", ns[i]))
		default:
			parts = append(parts, fmt.Sprintf("%d-%d", ns[i], ns[j]))
		}
		i = j + 1
	}
	return strings.Join(parts, ".")
}
