package fault

import (
	"strings"
	"testing"
)

// TestParseStringRoundTrip: every event type's canonical form survives
// Parse → String unchanged, and re-parsing the rendered form is a fixed
// point. The canonical string is a grid axis value and a cell-cache key
// component, so any drift here silently splits caches.
func TestParseStringRoundTrip(t *testing.T) {
	cases := []string{
		"crash(u1.*,60ms)",
		"restart(loadgen,90ms)",
		"drop(*->*,0.1)",
		"drop(bcast,0.25)",
		"drop(3->*,0.5,10ms,20ms)",
		"dup(*->7,0.1)",
		"reorder(*->*,0.25,1ms)",
		"part(0-9|10-19,40ms,120ms)",
		"slow(3,3)",
		"slow(2,1.5,5ms,50ms)",
		"storm(2000,0s,1s)",
		"crash(loadgen,60ms);restart(loadgen,90ms)",
	}
	for _, src := range cases {
		p, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		got := p.String()
		if got != src {
			t.Errorf("Parse(%q).String() = %q, want input unchanged", src, got)
		}
		p2, err := Parse(got)
		if err != nil {
			t.Errorf("re-Parse(%q): %v", got, err)
			continue
		}
		if p2.String() != got {
			t.Errorf("String not a fixed point: %q -> %q", got, p2.String())
		}
		if len(p2.Events) != len(p.Events) {
			t.Errorf("%q: event count %d != %d after round trip", src, len(p2.Events), len(p.Events))
		}
	}
}

func TestParseEmptyAndNone(t *testing.T) {
	for _, src := range []string{"", "none", "  none  "} {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if !p.Empty() {
			t.Errorf("Parse(%q) not empty: %v", src, p)
		}
		if p.String() != "none" {
			t.Errorf("empty plan String() = %q, want none", p.String())
		}
	}
	if !(*Plan)(nil).Empty() {
		t.Error("nil plan should be Empty")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"crash", "name(args)"},
		{"bogus(1)", "unknown"},
		{"crash()", ""},
		{"crash(p,-5ms)", "negative"},
		{"restart(u*,10ms)", "wildcard"},
		{"drop(*->*,1.5)", ""},
		{"drop(*->*,-0.1)", ""},
		{"dup(bcast,0.5)", "bcast"},
		{"reorder(bcast,0.5,1ms)", "bcast"},
		{"reorder(*->*,0.25,0ms)", "window"},
		{"part(0-9,40ms,120ms)", "two groups"},
		{"part(0-4|3-9,40ms,120ms)", "two groups"},
		{"part(0-9|10-19,120ms,40ms)", "heal"},
		{"slow(3,0.5)", "factor"},
		{"storm(0)", "positive"},
		{"storm(2000,10ms,10ms)", "bounded"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error", c.src)
			continue
		}
		if c.frag != "" && !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error %q does not mention %q", c.src, err, c.frag)
		}
	}
}

// TestScenarioRegistry: every registered name resolves, "none" is the
// empty plan, order is stable (it is the faults table's row order), and
// inline grammar falls through.
func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	if len(names) == 0 || names[0] != "none" {
		t.Fatalf("ScenarioNames() = %v, want none first", names)
	}
	for _, n := range names {
		p, err := ParseScenario(n)
		if err != nil {
			t.Errorf("ParseScenario(%q): %v", n, err)
			continue
		}
		if n == "none" && !p.Empty() {
			t.Errorf("scenario none not empty: %v", p)
		}
		if n != "none" && p.Empty() {
			t.Errorf("scenario %q parsed empty", n)
		}
	}
	inline, err := ParseScenario("drop(*->*,0.2)")
	if err != nil || len(inline.Events) != 1 {
		t.Fatalf("inline fallback: %v, %v", inline, err)
	}
	if _, err := ParseScenario("no-such-scenario"); err == nil {
		t.Error("garbage scenario name should error")
	}
}

func TestChurns(t *testing.T) {
	for src, want := range map[string]bool{
		"crash(p,10ms)":               true,
		"restart(p,10ms)":             true,
		"drop(*->*,0.1);crash(p,1ms)": true,
		"drop(*->*,0.1)":              false,
		"none":                        false,
	} {
		if got := MustParse(src).Churns(); got != want {
			t.Errorf("Churns(%q) = %v, want %v", src, got, want)
		}
	}
	if (*Plan)(nil).Churns() {
		t.Error("nil plan should not churn")
	}
}

func TestBroadcastLoss(t *testing.T) {
	p := BroadcastLoss(0.25)
	if err := p.Validate(); err != nil {
		t.Fatalf("BroadcastLoss plan invalid: %v", err)
	}
	if len(p.Events) != 1 || p.Churns() {
		t.Fatalf("BroadcastLoss plan shape: %v", p)
	}
	back, err := Parse(p.String())
	if err != nil || back.String() != p.String() {
		t.Errorf("BroadcastLoss round trip: %q, %v", p.String(), err)
	}
}
