package lynx_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/lynx"
	"repro/lynx/fault"
)

// updateGolden regenerates the scheduler-determinism golden traces:
//
//	go test ./lynx -run TestSchedulerGoldenTraces -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden traces")

// compareGolden pins got against the named golden file (rewriting it
// under -update-golden).
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	if len(got) == 0 {
		t.Fatal("no events emitted")
	}
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden trace (run with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSONL trace drifted from golden %s:\ngot %d bytes, want %d bytes",
			path, len(got), len(want))
	}
}

// TestSchedulerGoldenTraces pins the exact JSONL event stream of the
// figure-1 workload on every substrate, at SimWorkers 1, 2, and 4. The
// golden files were recorded before the fast-path scheduler rewrite
// (PR 2) and before the parallel engine existed; any scheduling-order
// or virtual-time drift in the discrete-event engine shows up here as a
// byte-level diff, and so would any worker-count dependence (figure 1
// is a single connected component — nothing to split on any substrate —
// so every worker count must collapse to the identical serial run).
// Regenerate deliberately with -update-golden.
func TestSchedulerGoldenTraces(t *testing.T) {
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA, lynx.Chrysalis, lynx.Ideal} {
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/w%d", sub, workers), func(t *testing.T) {
				if *updateGolden && workers != 1 {
					t.Skip("goldens are recorded at SimWorkers=1")
				}
				var got bytes.Buffer
				runFigure1Cfg(t, lynx.Config{Substrate: sub, Seed: 1, SimWorkers: workers},
					&obs.JSONLExporter{W: &got})
				compareGolden(t, "golden_trace_"+sub.String()+".jsonl", got.Bytes())
			})
		}
	}
}

// runEchoTrio runs the parallel-engine acceptance workload: three
// independent client/server echo pairs — a boot-join graph with three
// connected components, the shape every substrate partitions (Ideal
// trivially; the kernels via their media's finite MinLatency). Each
// client ships a few round trips with virtual-time pauses so shard
// clocks interleave nontrivially. Returns the JSONL trace and the
// finished system for Partitioned/Parallel assertions.
func runEchoTrio(t *testing.T, cfg lynx.Config) ([]byte, *lynx.System) {
	t.Helper()
	sys := lynx.NewSystem(cfg)
	var buf bytes.Buffer
	sys.Obs().Attach(&obs.JSONLExporter{W: &buf})
	for i := 0; i < 3; i++ {
		i := i
		client := sys.Spawn(fmt.Sprintf("client-%d", i), func(th *lynx.Thread, boot []*lynx.End) {
			for n := 0; n < 3; n++ {
				reply, err := th.Connect(boot[0], "echo", lynx.Msg{Data: []byte{byte(i), byte(n)}})
				if err != nil {
					t.Errorf("client-%d: %v", i, err)
					return
				}
				if len(reply.Data) != 2 {
					t.Errorf("client-%d: bad echo %v", i, reply.Data)
				}
				th.Delay(lynx.Duration(i+1) * 100 * lynx.Microsecond)
			}
			th.Destroy(boot[0])
		})
		server := sys.Spawn(fmt.Sprintf("server-%d", i), func(th *lynx.Thread, boot []*lynx.End) {
			th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
				st.Reply(req, lynx.Msg{Data: req.Data()})
			})
		})
		sys.Join(client, server)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return buf.Bytes(), sys
}

// checkPartition asserts the partition/parallel state the new contract
// prescribes: a multi-component topology partitions at EVERY worker
// count, and shards execute concurrently exactly when SimWorkers > 1.
func checkPartition(t *testing.T, sys *lynx.System, workers int) {
	t.Helper()
	if !sys.Partitioned() {
		t.Fatalf("Partitioned() = false at SimWorkers=%d, want true (multi-component topology)", workers)
	}
	if wantPar := workers > 1; sys.Parallel() != wantPar {
		t.Fatalf("Parallel() = %v at SimWorkers=%d, want %v", sys.Parallel(), workers, wantPar)
	}
}

// TestParallelWorkerGoldenTraces: a genuinely partitionable workload
// must produce byte-identical JSONL traces at every SimWorkers value,
// pinned against a golden recorded at SimWorkers=1 (shards driven
// sequentially). This is the tentpole determinism contract on all four
// substrates: the kernel substrates partition their shared media into
// per-group segments bounded by MinLatency (token-ring serialization,
// CSMA sense delay, backplane setup cost), and the parallel engine's
// replay reconstructs the exact serial interleave.
func TestParallelWorkerGoldenTraces(t *testing.T) {
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA, lynx.Chrysalis, lynx.Ideal} {
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/w%d", sub, workers), func(t *testing.T) {
				cfg := lynx.Config{Substrate: sub, Seed: 7, SimWorkers: workers}
				got, sys := runEchoTrio(t, cfg)
				checkPartition(t, sys, workers)
				if *updateGolden && workers != 1 {
					t.Skip("goldens are recorded at SimWorkers=1")
				}
				compareGolden(t, "golden_trace_parallel_"+sub.String()+".jsonl", got)
			})
		}
	}
}

// TestFaultedWorkerGoldenTraces: fault plans no longer force a serial
// collapse — the injector splits into per-shard children (per-group
// frame-fate streams, churn timers on each shard, storms replicated per
// segment), so a faulted multi-component run partitions like an
// unfaulted one and must stay byte-identical at every worker count.
// Pinned as a golden (recorded at SimWorkers=1) on a medium-bearing
// substrate and on Ideal, plus a fault-counter cross-check.
func TestFaultedWorkerGoldenTraces(t *testing.T) {
	plan := &fault.Plan{Events: []fault.Event{fault.Crash{Proc: "server-1", At: 300 * lynx.Microsecond}}}
	for _, sub := range []lynx.Substrate{lynx.SODA, lynx.Ideal} {
		var baseFaults map[string]int64
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/w%d", sub, workers), func(t *testing.T) {
				cfg := lynx.Config{Substrate: sub, Seed: 7, SimWorkers: workers, Faults: plan}
				got, sys := runFaultedTrio(t, cfg)
				checkPartition(t, sys, workers)
				fs := sys.FaultStats()
				if fs["crash"] != 1 {
					t.Errorf("crash count = %d, want 1 (stats: %v)", fs["crash"], fs)
				}
				if baseFaults == nil {
					baseFaults = fs
				} else if fmt.Sprint(fs) != fmt.Sprint(baseFaults) {
					t.Errorf("fault stats differ at SimWorkers=%d: got %v, want %v", workers, fs, baseFaults)
				}
				if *updateGolden && workers != 1 {
					t.Skip("goldens are recorded at SimWorkers=1")
				}
				compareGolden(t, "golden_trace_faulted_"+sub.String()+".jsonl", got)
			})
		}
	}
}

// runFaultedTrio is runEchoTrio's crash-tolerant twin: clients swallow
// link errors (the fault plan kills server-1 mid-run) and the run is
// bounded in virtual time so the orphaned client cannot hang the test.
func runFaultedTrio(t *testing.T, cfg lynx.Config) ([]byte, *lynx.System) {
	t.Helper()
	sys := lynx.NewSystem(cfg)
	var buf bytes.Buffer
	sys.Obs().Attach(&obs.JSONLExporter{W: &buf})
	for i := 0; i < 3; i++ {
		i := i
		client := sys.Spawn(fmt.Sprintf("client-%d", i), func(th *lynx.Thread, boot []*lynx.End) {
			for n := 0; n < 3; n++ {
				if _, err := th.Connect(boot[0], "echo", lynx.Msg{Data: []byte{byte(i), byte(n)}}); err != nil {
					return // server crashed under us: expected for pair 1
				}
				th.Delay(lynx.Duration(i+1) * 100 * lynx.Microsecond)
			}
			th.Destroy(boot[0])
		})
		server := sys.Spawn(fmt.Sprintf("server-%d", i), func(th *lynx.Thread, boot []*lynx.End) {
			th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
				st.Reply(req, lynx.Msg{Data: req.Data()})
			})
		})
		sys.Join(client, server)
	}
	if err := sys.RunFor(20 * lynx.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	return buf.Bytes(), sys
}
